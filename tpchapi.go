package cleo

import (
	"fmt"

	"cleo/internal/workload/tpch"
)

// TPC-H workload access. Table registration lives on the System itself
// (System.RegisterTPCH, defined in internal/engine) so the serving layer
// can bootstrap TPC-H tenants too.

// TPCHQuery returns the logical plan of TPC-H query n (1..22).
func TPCHQuery(n int) (*Query, error) {
	b, ok := tpch.Queries()[n]
	if !ok {
		return nil, fmt.Errorf("cleo: no TPC-H query %d", n)
	}
	return b(), nil
}
