package cleo

import (
	"fmt"

	"cleo/internal/workload/tpch"
)

// RegisterTPCH installs the TPC-H tables (at the given scale factor) and
// the standard predicate selectivities into the system's catalog.
// lineitem, orders and part are registered as stored hash-partitioned
// inputs, as in the paper's SCOPE deployment.
func (s *System) RegisterTPCH(scaleFactor float64) {
	tpch.Register(s.Catalog(), scaleFactor)
}

// TPCHQuery returns the logical plan of TPC-H query n (1..22).
func TPCHQuery(n int) (*Query, error) {
	b, ok := tpch.Queries()[n]
	if !ok {
		return nil, fmt.Errorf("cleo: no TPC-H query %d", n)
	}
	return b(), nil
}
