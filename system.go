package cleo

import (
	"fmt"
	"math/rand"
	"sync"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/learned"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// SystemConfig configures a System.
type SystemConfig struct {
	// Seed identifies the simulated cluster: its hidden hardware and data
	// complexity factors derive from it.
	Seed uint64
	// MaxPartitions caps per-stage parallelism (default 3000).
	MaxPartitions int
	// NoiseSigma is the cloud latency noise (default 0.18; 0 keeps the
	// default, use Exec to disable noise entirely).
	NoiseSigma float64
	// Exec, when non-nil, overrides the full cluster configuration.
	Exec *ExecConfig
}

// System bundles a statistics catalog, a simulated cluster, the optimizer
// and the learned-model feedback loop — everything a single tenant needs.
// Methods are safe for concurrent use except Retrain, which must not race
// with Run.
type System struct {
	catalog *stats.Catalog
	cluster *exec.Cluster
	maxP    int

	mu     sync.Mutex
	log    []telemetry.Record
	models *learned.Predictor
}

// NewSystem builds a System.
func NewSystem(cfg SystemConfig) *System {
	ec := exec.DefaultConfig(cfg.Seed)
	if cfg.NoiseSigma > 0 {
		ec.NoiseSigma = cfg.NoiseSigma
	}
	if cfg.Exec != nil {
		ec = *cfg.Exec
	}
	if cfg.MaxPartitions > 0 {
		ec.MaxPartitions = cfg.MaxPartitions
	}
	return &System{
		catalog: stats.NewCatalog(cfg.Seed),
		cluster: exec.NewCluster(ec),
		maxP:    ec.MaxPartitions,
	}
}

// Catalog exposes the statistics catalog for table registration and
// selectivity overrides.
func (s *System) Catalog() *Catalog { return s.catalog }

// RegisterTable installs a stored input's statistics.
func (s *System) RegisterTable(name string, ts TableStats) { s.catalog.PutTable(name, ts) }

// RunOptions controls one query execution.
type RunOptions struct {
	// Seed drives per-instance statistics drift and execution noise.
	Seed int64
	// Param is the job parameter (the PM feature); defaults to 1.
	Param float64
	// UseLearnedModels prices operators with the trained CLEO models
	// instead of the default cost model. Requires a prior Retrain or
	// LoadModels.
	UseLearnedModels bool
	// ResourceAware enables partition exploration during planning, using
	// the analytical strategy over the active cost model.
	ResourceAware bool
	// SafePlanSelection applies the paper's Section 6.7 regression
	// mitigation: the query is optimized twice — with the default cost
	// model and with the learned models — and the plan whose latency the
	// learned models predict to be lower is executed. Requires
	// UseLearnedModels.
	SafePlanSelection bool
	// SkipLogging suppresses appending telemetry to the feedback log.
	SkipLogging bool
}

// RunResult is one executed query.
type RunResult struct {
	Plan                *PhysicalPlan
	PredictedCost       float64
	Latency             float64
	TotalProcessingTime float64
	Containers          int
	Records             []Record
}

// Optimize plans the query without executing it.
func (s *System) Optimize(q *Query, opts RunOptions) (*PhysicalPlan, float64, error) {
	coster, chooser, err := s.costing(opts)
	if err != nil {
		return nil, 0, err
	}
	opt := &cascades.Optimizer{
		Catalog:       s.catalog,
		Cost:          coster,
		MaxPartitions: s.maxP,
		ResourceAware: opts.ResourceAware,
		Chooser:       chooser,
		JobSeed:       opts.Seed,
	}
	res, err := opt.Optimize(q)
	if err != nil {
		return nil, 0, err
	}
	if !opts.UseLearnedModels && !opts.SkipLogging {
		// Telemetry-collection runs (logged, default-model-planned) jitter
		// the plan's partition counts, emulating production heuristic
		// variability so the learned models see a range of counts per
		// template. Evaluation runs (SkipLogging) and learned runs keep
		// clean optimized counts.
		cascades.JitterPlanPartitions(res.Plan, opts.Seed, s.maxP, coster)
	}
	return res.Plan, res.Plan.TotalCostEst(), nil
}

func (s *System) costing(opts RunOptions) (cascades.Coster, cascades.PartitionChooser, error) {
	var coster cascades.Coster = costmodel.Default{}
	if opts.UseLearnedModels {
		s.mu.Lock()
		m := s.models
		s.mu.Unlock()
		if m == nil {
			return nil, nil, fmt.Errorf("cleo: no trained models; call Retrain or LoadModels first")
		}
		param := opts.Param
		if param == 0 {
			param = 1
		}
		coster = &learned.Coster{Predictor: m, Param: param, Fallback: costmodel.Default{}}
	}
	var chooser cascades.PartitionChooser
	if opts.ResourceAware {
		chooser = &learned.AnalyticalChooser{Cost: coster}
	}
	return coster, chooser, nil
}

// Run optimizes and executes the query, logging telemetry into the
// feedback loop (unless opts.SkipLogging).
func (s *System) Run(q *Query, opts RunOptions) (*RunResult, error) {
	var p *PhysicalPlan
	var cost float64
	var err error
	if opts.SafePlanSelection && opts.UseLearnedModels {
		p, cost, err = s.optimizeSafe(q, opts)
	} else {
		p, cost, err = s.Optimize(q, opts)
	}
	if err != nil {
		return nil, err
	}
	execRes, err := s.cluster.Run(p, rand.New(rand.NewSource(opts.Seed)))
	if err != nil {
		return nil, err
	}
	param := opts.Param
	if param == 0 {
		param = 1
	}
	job := &workload.Job{
		ID:    fmt.Sprintf("run-%d", opts.Seed),
		Seed:  opts.Seed,
		Param: param,
	}
	records := telemetry.Extract(job, p)
	if !opts.SkipLogging {
		s.mu.Lock()
		s.log = append(s.log, records...)
		s.mu.Unlock()
	}
	return &RunResult{
		Plan:                p,
		PredictedCost:       cost,
		Latency:             execRes.Latency,
		TotalProcessingTime: execRes.TotalProcessingTime,
		Containers:          execRes.Containers,
		Records:             records,
	}, nil
}

// optimizeSafe implements the paper's optimize-twice mitigation
// (Section 6.7): plan with the default model and with the learned models,
// then keep the plan the learned models predict to be cheaper — they are
// the accurate judge even when the default model found the plan.
func (s *System) optimizeSafe(q *Query, opts RunOptions) (*PhysicalPlan, float64, error) {
	defOpts := opts
	defOpts.UseLearnedModels = false
	defOpts.ResourceAware = false
	defPlan, _, err := s.Optimize(q, defOpts)
	if err != nil {
		return nil, 0, err
	}
	cleoPlan, cleoCost, err := s.Optimize(q, opts)
	if err != nil {
		return nil, 0, err
	}
	m := s.Models()
	param := opts.Param
	if param == 0 {
		param = 1
	}
	// Score the default plan with the learned models.
	var defScore float64
	defPlan.Walk(func(n *PhysicalPlan) { defScore += m.PredictNode(n, param).Cost })
	if defScore < cleoCost {
		return defPlan, defScore, nil
	}
	return cleoPlan, cleoCost, nil
}

// LogSize reports the telemetry log length.
func (s *System) LogSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// TelemetryLog returns a copy of the accumulated telemetry.
func (s *System) TelemetryLog() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Record(nil), s.log...)
}

// AppendTelemetry merges externally collected records (e.g. from a
// workload trace run) into the feedback log.
func (s *System) AppendTelemetry(recs []Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, recs...)
}

// Retrain fits the four individual model families and the combined
// meta-ensemble from the accumulated telemetry (the paper's periodic
// training, Section 5.1).
func (s *System) Retrain() error {
	s.mu.Lock()
	recs := append([]telemetry.Record(nil), s.log...)
	s.mu.Unlock()
	pr, err := learned.TrainSplit(recs, learned.DefaultTrainConfig())
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.models = pr
	s.mu.Unlock()
	return nil
}

// Models returns the trained predictor (nil before training).
func (s *System) Models() *Predictor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.models
}

// SetModels installs an externally trained predictor.
func (s *System) SetModels(pr *Predictor) {
	s.mu.Lock()
	s.models = pr
	s.mu.Unlock()
}

// SaveModels serializes the trained models to a file.
func (s *System) SaveModels(path string) error {
	m := s.Models()
	if m == nil {
		return fmt.Errorf("cleo: no trained models to save")
	}
	return m.SaveFile(path)
}

// LoadModels reads models from a file written by SaveModels.
func (s *System) LoadModels(path string) error {
	pr, err := learned.LoadFile(path)
	if err != nil {
		return err
	}
	s.SetModels(pr)
	return nil
}

// EvaluateModels scores the trained models against records (e.g. a held-out
// day of telemetry).
func (s *System) EvaluateModels(recs []Record) (Accuracy, error) {
	m := s.Models()
	if m == nil {
		return Accuracy{}, fmt.Errorf("cleo: no trained models")
	}
	return m.Evaluate(recs), nil
}

// ExplainDiff optimizes q under the default cost model and under the
// learned models and reports both plans — the paper's plan-change analysis
// (Section 6.6).
func (s *System) ExplainDiff(q *Query, opts RunOptions) (defPlan, cleoPlan *PhysicalPlan, changed bool, err error) {
	defOpts := opts
	defOpts.UseLearnedModels = false
	defOpts.ResourceAware = false
	defPlan, _, err = s.Optimize(q, defOpts)
	if err != nil {
		return nil, nil, false, err
	}
	cleoOpts := opts
	cleoOpts.UseLearnedModels = true
	cleoPlan, _, err = s.Optimize(q, cleoOpts)
	if err != nil {
		return nil, nil, false, err
	}
	return defPlan, cleoPlan, defPlan.String() != cleoPlan.String(), nil
}

// Summarize re-exports plan summarization.
func Summarize(p *PhysicalPlan) PlanSummary { return plan.Summarize(p) }
