package cleo

import (
	"cleo/internal/cascades"
	"cleo/internal/engine"
	"cleo/internal/plan"
)

// The single-tenant engine lives in internal/engine; these aliases keep the
// whole public surface under the cleo package. The multi-tenant serving
// layer over it is re-exported in serveapi.go.

type (
	// SystemConfig configures a System.
	SystemConfig = engine.SystemConfig
	// System bundles a statistics catalog, a simulated cluster, the
	// optimizer and the learned-model feedback loop — everything a single
	// tenant needs. All methods are safe for concurrent use: Retrain and
	// SetModels hot-swap the predictor atomically and may race with Run.
	System = engine.System
	// RunOptions controls one query execution.
	RunOptions = engine.RunOptions
	// RunResult is one executed query.
	RunResult = engine.RunResult
	// TemplateCacheStats snapshots the recurring-job memo-template cache
	// counters (System.TemplateStats, and per tenant in /v1/stats).
	TemplateCacheStats = cascades.TemplateCacheStats
)

// NewSystem builds a System.
func NewSystem(cfg SystemConfig) *System { return engine.NewSystem(cfg) }

// Summarize re-exports plan summarization.
func Summarize(p *PhysicalPlan) PlanSummary { return plan.Summarize(p) }
