// Package cleo is a from-scratch reproduction of "Cost Models for Big Data
// Query Processing: Learning, Retrofitting, and Our Findings" (Siddiqui et
// al., SIGMOD 2020): CLEO, a CLoud LEarning Optimizer that learns a large
// collection of specialized cost models from workload telemetry, combines
// them with a FastTree meta-ensemble, and retrofits them — together with
// resource-aware partition exploration — into a Cascades-style query
// optimizer over a simulated SCOPE-like big-data cluster.
//
// The typical loop mirrors the paper's feedback loop (Section 5.1):
//
//	sys := cleo.NewSystem(cleo.SystemConfig{Seed: 1})
//	sys.RegisterTable("clicks_2026_06_12", cleo.TableStats{Rows: 1e8, RowLength: 120})
//	q := cleo.NewOutput(cleo.NewAggregate(cleo.NewSelect(
//	        cleo.NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
//	res, _ := sys.Run(q, cleo.RunOptions{Seed: 42})   // plan + execute + log
//	_ = sys.Retrain()                                  // learn cost models
//	res2, _ := sys.Run(q, cleo.RunOptions{Seed: 43, UseLearnedModels: true,
//	        ResourceAware: true})                      // CLEO-optimized plan
//	fmt.Println(res.Latency, res2.Latency)
package cleo

import (
	"cleo/internal/exec"
	"cleo/internal/learned"
	"cleo/internal/ml"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// Re-exported core types. These alias the implementation packages so the
// whole public surface lives under the cleo package.
type (
	// Query is a logical query-plan tree.
	Query = plan.Logical
	// Column names a column.
	Column = plan.Column
	// PhysicalPlan is an optimized physical operator tree.
	PhysicalPlan = plan.Physical
	// PlanSummary describes a physical plan's operator mix.
	PlanSummary = plan.PlanSummary
	// Signature is a 64-bit operator-subgraph hash.
	Signature = plan.Signature
	// TableStats describes a stored input.
	TableStats = stats.TableStats
	// Catalog resolves statistics.
	Catalog = stats.Catalog
	// Record is one per-operator telemetry observation.
	Record = telemetry.Record
	// Predictor is a trained CLEO model set.
	Predictor = learned.Predictor
	// Accuracy summarises prediction quality.
	Accuracy = ml.Accuracy
	// Job is one workload query instance.
	Job = workload.Job
	// WorkloadConfig sizes a generated production-style trace.
	WorkloadConfig = workload.Config
	// Trace is a generated workload.
	Trace = workload.Trace
)

// Logical plan builders (re-exported from the plan algebra).

// NewGet builds a scan of a stored input; template is the normalized
// (date-stripped) input name shared by recurring instances.
func NewGet(table, template string) *Query { return plan.NewGet(table, template) }

// NewSelect builds a filter; pred identifies the predicate for statistics.
func NewSelect(child *Query, pred string) *Query { return plan.NewSelect(child, pred) }

// NewProject builds a projection onto keys.
func NewProject(child *Query, keys ...Column) *Query { return plan.NewProject(child, keys...) }

// NewJoin builds an inner equi-join on keys.
func NewJoin(l, r *Query, pred string, keys ...Column) *Query {
	return plan.NewJoin(l, r, pred, keys...)
}

// NewAggregate builds a group-by (global aggregate when keys are empty).
func NewAggregate(child *Query, keys ...Column) *Query { return plan.NewAggregate(child, keys...) }

// NewSort builds an order-by.
func NewSort(child *Query, keys ...Column) *Query { return plan.NewSort(child, keys...) }

// NewTopN builds a top-n on keys.
func NewTopN(child *Query, n int, keys ...Column) *Query { return plan.NewTopN(child, n, keys...) }

// NewUnion builds a union-all.
func NewUnion(children ...*Query) *Query { return plan.NewUnion(children...) }

// NewProcess builds a user-defined processor (black-box UDF).
func NewProcess(child *Query, udf string) *Query { return plan.NewProcess(child, udf) }

// NewOutput builds the output sink; every query needs one at the root.
func NewOutput(child *Query) *Query { return plan.NewOutput(child) }

// GenerateWorkload builds a production-style multi-cluster trace of
// recurring and ad-hoc jobs (Section 2.2 of the paper).
func GenerateWorkload(cfg WorkloadConfig) *Trace { return workload.Generate(cfg) }

// DefaultWorkloadConfig returns a small but structurally faithful trace
// configuration.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// ExecConfig re-exports the simulated cluster's configuration.
type ExecConfig = exec.Config
