module cleo

go 1.22
