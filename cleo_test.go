package cleo

import (
	"path/filepath"
	"testing"
)

// demoQuery builds a small aggregation query over a registered table.
func demoSystem(t *testing.T) (*System, *Query) {
	t.Helper()
	sys := NewSystem(SystemConfig{Seed: 5})
	sys.RegisterTable("clicks_2026_06_12", TableStats{Rows: 2e7, RowLength: 120})
	q := NewOutput(NewAggregate(NewSelect(
		NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
	return sys, q
}

func TestRunProducesResultAndLogs(t *testing.T) {
	sys, q := demoSystem(t)
	res, err := sys.Run(q, RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 || res.TotalProcessingTime <= 0 || res.Plan == nil {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Records) == 0 || sys.LogSize() != len(res.Records) {
		t.Fatalf("telemetry: %d records, log %d", len(res.Records), sys.LogSize())
	}
}

func TestFeedbackLoopEndToEnd(t *testing.T) {
	sys, q := demoSystem(t)
	// Recurring instances with drifting seeds feed the loop.
	for seed := int64(1); seed <= 40; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed, Param: float64(seed % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	if sys.Models() == nil || sys.Models().NumModels() == 0 {
		t.Fatal("no models trained")
	}
	// Evaluate on fresh runs.
	var test []Record
	for seed := int64(100); seed < 110; seed++ {
		res, err := sys.Run(q, RunOptions{Seed: seed, SkipLogging: true})
		if err != nil {
			t.Fatal(err)
		}
		test = append(test, res.Records...)
	}
	acc, err := sys.EvaluateModels(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Pearson < 0.5 {
		t.Fatalf("learned accuracy too low: %+v", acc)
	}
	// Learned, resource-aware run must work end to end.
	res, err := sys.Run(q, RunOptions{Seed: 200, UseLearnedModels: true, ResourceAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Fatal("no latency")
	}
}

func TestUseLearnedModelsRequiresTraining(t *testing.T) {
	sys, q := demoSystem(t)
	if _, err := sys.Run(q, RunOptions{Seed: 1, UseLearnedModels: true}); err == nil {
		t.Fatal("expected error without trained models")
	}
}

func TestSaveLoadModels(t *testing.T) {
	sys, q := demoSystem(t)
	for seed := int64(1); seed <= 25; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "models.json")
	if err := sys.SaveModels(path); err != nil {
		t.Fatal(err)
	}
	sys2 := NewSystem(SystemConfig{Seed: 5})
	if err := sys2.LoadModels(path); err != nil {
		t.Fatal(err)
	}
	if sys2.Models().NumModels() != sys.Models().NumModels() {
		t.Fatal("model counts differ after reload")
	}
}

func TestSaveModelsWithoutTraining(t *testing.T) {
	sys, _ := demoSystem(t)
	if err := sys.SaveModels("/tmp/x.json"); err == nil {
		t.Fatal("expected error")
	}
}

func TestExplainDiff(t *testing.T) {
	sys, q := demoSystem(t)
	for seed := int64(1); seed <= 25; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	defPlan, cleoPlan, _, err := sys.ExplainDiff(q, RunOptions{Seed: 99, ResourceAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if defPlan == nil || cleoPlan == nil {
		t.Fatal("nil plans")
	}
	if Summarize(defPlan).NumOps == 0 {
		t.Fatal("empty summary")
	}
}

func TestGenerateWorkloadViaFacade(t *testing.T) {
	cfg := DefaultWorkloadConfig()
	cfg.Clusters = 1
	cfg.Days = 1
	cfg.TemplatesPerCluster = 3
	tr := GenerateWorkload(cfg)
	if len(tr.Jobs) == 0 {
		t.Fatal("no jobs")
	}
}

func TestQueryBuilders(t *testing.T) {
	a := NewGet("t1", "t_")
	b := NewGet("t2", "t_")
	q := NewOutput(NewTopN(NewSort(NewAggregate(NewProcess(NewProject(NewUnion(
		NewJoin(NewSelect(a, "p"), b, "jp", "k"),
	), "k"), "udf1"), "k"), "k"), 5, "k"))
	// Get, Get, Select, Join, Union, Project, Process, Aggregate, Sort,
	// TopN, Output = 11 operators.
	if q.Count() != 11 {
		t.Fatalf("ops = %d, want 11", q.Count())
	}
}

func TestSafePlanSelection(t *testing.T) {
	sys, q := demoSystem(t)
	for seed := int64(1); seed <= 30; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	safe, err := sys.Run(q, RunOptions{
		Seed: 50, SkipLogging: true,
		UseLearnedModels: true, ResourceAware: true, SafePlanSelection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := sys.Run(q, RunOptions{
		Seed: 50, SkipLogging: true,
		UseLearnedModels: true, ResourceAware: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Safe selection must never pick a plan the models score worse than
	// the raw CLEO plan's own score.
	if safe.PredictedCost > raw.PredictedCost+1e-9 {
		t.Fatalf("safe plan predicted %v > raw %v", safe.PredictedCost, raw.PredictedCost)
	}
	if safe.Latency <= 0 {
		t.Fatal("safe run did not execute")
	}
}
