// Command cleotrain trains CLEO cost models from a telemetry log.
//
// Usage:
//
//	cleotrain -in telemetry.jsonl -out models.json [-meta-fraction 0.3]
//	cleotrain -demo -out models.json      # generate a demo workload first
//
// The input is a JSON-lines file of per-operator records (the format
// telemetry.WriteRecords emits); the output is the serialized model store
// the optimizer loads (Section 5.1 of the paper).
package main

import (
	"flag"
	"fmt"
	"os"

	"cleo/internal/costmodel"
	"cleo/internal/learned"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

func main() {
	in := flag.String("in", "", "input telemetry JSONL file")
	out := flag.String("out", "models.json", "output model store")
	metaFraction := flag.Float64("meta-fraction", 0.3, "fraction of records held out for the combined model")
	demo := flag.Bool("demo", false, "generate and execute a demo workload instead of reading -in")
	flag.Parse()

	var recs []telemetry.Record
	switch {
	case *demo:
		tr := workload.Generate(workload.Config{
			Clusters: 1, Days: 3, TemplatesPerCluster: 20,
			InstancesPerTemplatePerDay: 3, AdHocFraction: 0.1, Seed: 1,
		})
		runner := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}, Jitter: true}
		col, err := runner.RunAll()
		if err != nil {
			fatal(err)
		}
		recs = col.Records
		fmt.Printf("generated %d records from %d demo jobs\n", len(recs), len(col.Jobs))
	case *in != "":
		var err error
		recs, err = telemetry.ReadRecordsFile(*in)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("read %d records from %s\n", len(recs), *in)
	default:
		fmt.Fprintln(os.Stderr, "cleotrain: provide -in or -demo")
		os.Exit(2)
	}

	cfg := learned.DefaultTrainConfig()
	cfg.MetaFraction = *metaFraction
	pr, err := learned.TrainSplit(recs, cfg)
	if err != nil {
		fatal(err)
	}
	if err := pr.SaveFile(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("trained %d individual models (+combined) -> %s\n", pr.NumModels(), *out)
	for fam := 0; fam < learned.NumFamilies; fam++ {
		fm := pr.Families[fam]
		fmt.Printf("  %-20s %d models, coverage %.0f%%\n",
			fm.Family, fm.NumModels(), 100*fm.Coverage(recs))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cleotrain:", err)
	os.Exit(1)
}
