// Command cleoserve runs the multi-tenant CLEO optimizer service: an
// HTTP/JSON API over named optimizer sessions with telemetry ingestion,
// threshold-triggered background retraining and versioned model hot-swap
// (the paper's Section 5.1 feedback loop as a long-lived server).
//
// Usage:
//
//	cleoserve [-addr :8080] [-exec-backend simulate] [-retrain-threshold 500]
//	          [-ingest-buffer 128] [-parallelism 0]
//	          [-state-dir ""] [-fsync] [-retain-snapshots 0]
//	          [-node-id ""] [-peers ""] [-replication-factor 2] [-coalesce]
//	          [-debug-addr ""] [-slow-query 0]
//
// -exec-backend selects how queries execute: "simulate" (default) models
// latencies on the simulated cluster; "stream" runs them on the in-process
// streaming vectorized executor, so responses carry real result rows and
// the feedback loop trains on measured wall-clock operator times.
//
// With -state-dir, tenant state is durable: every published model version
// is snapshotted and ingested telemetry is journaled, and a restart
// against the same directory resumes warm — latest models live under
// their original version ids, pending telemetry replayed into the
// retraining pipeline.
//
// Cluster mode (-node-id + -peers) shards tenants across nodes on a
// consistent-hash ring: each tenant has an owner plus replication-factor-1
// followers, model publishes replicate snapshot artifacts to the
// followers, requests landing on a non-owner node are forwarded to the
// owner (failing over down the replica list when it is unreachable), and
// identical in-flight optimize requests coalesce into one search
// (-coalesce, on by default). -peers lists every member as id=baseURL
// pairs, comma-separated, and must include this node's own id:
//
//	cleoserve -addr :8081 -node-id n1 -state-dir /var/lib/cleo/n1 \
//	  -peers n1=http://h1:8081,n2=http://h2:8082,n3=http://h3:8083
//
// Observability: GET /metrics serves the full metric registry in
// Prometheus text format; -debug-addr starts a second listener with
// net/http/pprof (/debug/pprof/) plus the same /metrics, kept off the
// public address; -slow-query logs requests slower than the threshold
// with tenant and trace id; and `"trace": true` on /v1/query returns an
// EXPLAIN ANALYZE-style span tree in the response.
//
// Endpoints:
//
//	POST /v1/query    {"tenant":"ads","mode":"run","plan":{...},"tables":{...}}
//	POST /v1/retrain  {"tenant":"ads"}
//	POST /v1/tenants/{name}/snapshot
//	GET  /v1/models?tenant=ads
//	GET  /v1/stats[?tenant=ads]
//	GET  /metrics
//	GET  /healthz
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{
//	  "tenant": "ads", "seed": 1,
//	  "tables": {"clicks_2026_06_12": {"Rows": 2e7, "RowLength": 120}},
//	  "plan": {"op":"Output","children":[{"op":"Aggregate","keys":["user"],
//	    "children":[{"op":"Select","pred":"market=us","children":[
//	      {"op":"Get","table":"clicks_2026_06_12","template":"clicks_"}]}]}]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cleo/internal/cluster"
	"cleo/internal/obs"
	"cleo/internal/serve"
)

// parsePeers parses the -peers flag: comma-separated id=baseURL pairs.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, base, found := strings.Cut(pair, "=")
		if !found || id == "" || base == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=baseURL)", pair)
		}
		peers[id] = strings.TrimRight(base, "/")
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("-peers is empty")
	}
	return peers, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	execBackend := flag.String("exec-backend", "simulate",
		`query execution backend: "simulate" (modeled latencies) or "stream" (in-process streaming executor, measured latencies)`)
	retrainThreshold := flag.Int("retrain-threshold", 500,
		"new telemetry records that trigger a background retrain (0 disables)")
	ingestBuffer := flag.Int("ingest-buffer", 128, "per-tenant telemetry channel capacity")
	parallelism := flag.Int("parallelism", 0,
		"per-tenant optimizer search parallelism (0 = 1: rely on request-level concurrency)")
	execWorkers := flag.Int("exec-workers", 0,
		"streaming executor pipeline width per stage (0 = follow -parallelism; only with -exec-backend stream)")
	stateDir := flag.String("state-dir", "",
		"durable tenant state directory: snapshots + telemetry journal (empty = in-memory only)")
	fsync := flag.Bool("fsync", false, "fsync the telemetry journal on every append")
	retainSnapshots := flag.Int("retain-snapshots", 0, "snapshots kept per tenant (0 = all)")
	nodeID := flag.String("node-id", "",
		"this node's id in cluster mode (must be a key of -peers; empty = single-node)")
	peersFlag := flag.String("peers", "",
		"cluster membership as comma-separated id=baseURL pairs, including this node")
	replicationFactor := flag.Int("replication-factor", 2,
		"nodes holding each tenant (owner + followers; clamped to the cluster size)")
	coalesce := flag.Bool("coalesce", true,
		"coalesce identical in-flight optimize requests into one search per tenant")
	debugAddr := flag.String("debug-addr", "",
		"debug listen address serving net/http/pprof under /debug/pprof/ plus /metrics (empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0,
		"log /v1/query requests slower than this threshold, with tenant and trace id (0 disables)")
	flag.Parse()

	if *execBackend != "simulate" && *execBackend != "stream" {
		fmt.Fprintf(os.Stderr, "cleoserve: unknown -exec-backend %q (want simulate or stream)\n", *execBackend)
		os.Exit(1)
	}
	if *stateDir != "" {
		// Fail fast on an unusable state directory rather than silently
		// serving without durability.
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "cleoserve: state dir:", err)
			os.Exit(1)
		}
	}
	if (*nodeID == "") != (*peersFlag == "") {
		fmt.Fprintln(os.Stderr, "cleoserve: -node-id and -peers must be set together")
		os.Exit(1)
	}
	reg := obs.NewRegistry()
	svc := serve.NewService(serve.Config{
		StreamingExec:    *execBackend == "stream",
		RetrainThreshold: *retrainThreshold,
		IngestBuffer:     *ingestBuffer,
		Parallelism:      *parallelism,
		ExecWorkers:      *execWorkers,
		Coalesce:         *coalesce,
		StateDir:         *stateDir,
		Fsync:            *fsync,
		RetainSnapshots:  *retainSnapshots,
		Metrics:          reg,
		SlowQuery:        *slowQuery,
	})
	var clu *cluster.Cluster
	if *nodeID != "" {
		peers, err := parsePeers(*peersFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cleoserve:", err)
			os.Exit(1)
		}
		clu, err = cluster.New(cluster.Config{
			NodeID:            *nodeID,
			Peers:             peers,
			ReplicationFactor: *replicationFactor,
			Metrics:           reg,
		}, svc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cleoserve:", err)
			os.Exit(1)
		}
		fmt.Printf("cleoserve cluster mode: node %s of %d (replication factor %d)\n",
			*nodeID, len(peers), clu.ReplicationFactor())
	}
	if *debugAddr != "" {
		// The debug listener stays separate so pprof and raw metrics can
		// bind to localhost while the API serves publicly.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				fmt.Fprintln(os.Stderr, "cleoserve: debug listener:", err)
			}
		}()
		fmt.Printf("cleoserve debug (pprof, metrics) on %s\n", *debugAddr)
	}
	if *stateDir != "" {
		if names := svc.TenantNames(); len(names) > 0 {
			fmt.Printf("cleoserve: recovered %d tenant(s) from %s: %v\n", len(names), *stateDir, names)
		}
	}
	handler := serve.NewHandler(svc)
	if clu != nil {
		// The cluster layer wraps the API: tenant requests route to their
		// owner, and the internal replication endpoints come live.
		handler = clu.Handler(handler)
	}
	server := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	fmt.Printf("cleoserve listening on %s (backend %s, retrain threshold %d)\n",
		*addr, *execBackend, *retrainThreshold)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cleoserve:", err)
		os.Exit(1)
	}
	// ListenAndServe returns as soon as Shutdown *starts*; wait for
	// in-flight requests to drain before closing the service, so no
	// request's telemetry is dropped by a closed ingestion pipeline. Then
	// the cluster layer finishes in-flight replication pushes, and finally
	// the service drains its ingestion queues and syncs every tenant's
	// telemetry journal to disk — the graceful-shutdown contract: a
	// SIGTERM loses neither acknowledged requests nor their telemetry.
	<-shutdownDone
	if clu != nil {
		clu.Close()
	}
	svc.Close()
	fmt.Println("cleoserve: drained, journals flushed, stopped")
}
