// Command cleoserve runs the multi-tenant CLEO optimizer service: an
// HTTP/JSON API over named optimizer sessions with telemetry ingestion,
// threshold-triggered background retraining and versioned model hot-swap
// (the paper's Section 5.1 feedback loop as a long-lived server).
//
// Usage:
//
//	cleoserve [-addr :8080] [-exec-backend simulate] [-retrain-threshold 500]
//	          [-ingest-buffer 128] [-parallelism 0]
//	          [-state-dir ""] [-fsync] [-retain-snapshots 0]
//	          [-debug-addr ""] [-slow-query 0]
//
// -exec-backend selects how queries execute: "simulate" (default) models
// latencies on the simulated cluster; "stream" runs them on the in-process
// streaming vectorized executor, so responses carry real result rows and
// the feedback loop trains on measured wall-clock operator times.
//
// With -state-dir, tenant state is durable: every published model version
// is snapshotted and ingested telemetry is journaled, and a restart
// against the same directory resumes warm — latest models live under
// their original version ids, pending telemetry replayed into the
// retraining pipeline.
//
// Observability: GET /metrics serves the full metric registry in
// Prometheus text format; -debug-addr starts a second listener with
// net/http/pprof (/debug/pprof/) plus the same /metrics, kept off the
// public address; -slow-query logs requests slower than the threshold
// with tenant and trace id; and `"trace": true` on /v1/query returns an
// EXPLAIN ANALYZE-style span tree in the response.
//
// Endpoints:
//
//	POST /v1/query    {"tenant":"ads","mode":"run","plan":{...},"tables":{...}}
//	POST /v1/retrain  {"tenant":"ads"}
//	POST /v1/tenants/{name}/snapshot
//	GET  /v1/models?tenant=ads
//	GET  /v1/stats[?tenant=ads]
//	GET  /metrics
//	GET  /healthz
//
// Example:
//
//	curl -s localhost:8080/v1/query -d '{
//	  "tenant": "ads", "seed": 1,
//	  "tables": {"clicks_2026_06_12": {"Rows": 2e7, "RowLength": 120}},
//	  "plan": {"op":"Output","children":[{"op":"Aggregate","keys":["user"],
//	    "children":[{"op":"Select","pred":"market=us","children":[
//	      {"op":"Get","table":"clicks_2026_06_12","template":"clicks_"}]}]}]}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cleo/internal/obs"
	"cleo/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	execBackend := flag.String("exec-backend", "simulate",
		`query execution backend: "simulate" (modeled latencies) or "stream" (in-process streaming executor, measured latencies)`)
	retrainThreshold := flag.Int("retrain-threshold", 500,
		"new telemetry records that trigger a background retrain (0 disables)")
	ingestBuffer := flag.Int("ingest-buffer", 128, "per-tenant telemetry channel capacity")
	parallelism := flag.Int("parallelism", 0,
		"per-tenant optimizer search parallelism (0 = 1: rely on request-level concurrency)")
	execWorkers := flag.Int("exec-workers", 0,
		"streaming executor pipeline width per stage (0 = follow -parallelism; only with -exec-backend stream)")
	stateDir := flag.String("state-dir", "",
		"durable tenant state directory: snapshots + telemetry journal (empty = in-memory only)")
	fsync := flag.Bool("fsync", false, "fsync the telemetry journal on every append")
	retainSnapshots := flag.Int("retain-snapshots", 0, "snapshots kept per tenant (0 = all)")
	debugAddr := flag.String("debug-addr", "",
		"debug listen address serving net/http/pprof under /debug/pprof/ plus /metrics (empty = disabled)")
	slowQuery := flag.Duration("slow-query", 0,
		"log /v1/query requests slower than this threshold, with tenant and trace id (0 disables)")
	flag.Parse()

	if *execBackend != "simulate" && *execBackend != "stream" {
		fmt.Fprintf(os.Stderr, "cleoserve: unknown -exec-backend %q (want simulate or stream)\n", *execBackend)
		os.Exit(1)
	}
	if *stateDir != "" {
		// Fail fast on an unusable state directory rather than silently
		// serving without durability.
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "cleoserve: state dir:", err)
			os.Exit(1)
		}
	}
	reg := obs.NewRegistry()
	svc := serve.NewService(serve.Config{
		StreamingExec:    *execBackend == "stream",
		RetrainThreshold: *retrainThreshold,
		IngestBuffer:     *ingestBuffer,
		Parallelism:      *parallelism,
		ExecWorkers:      *execWorkers,
		StateDir:         *stateDir,
		Fsync:            *fsync,
		RetainSnapshots:  *retainSnapshots,
		Metrics:          reg,
		SlowQuery:        *slowQuery,
	})
	if *debugAddr != "" {
		// The debug listener stays separate so pprof and raw metrics can
		// bind to localhost while the API serves publicly.
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg.Handle("/metrics", reg.Handler())
		go func() {
			if err := http.ListenAndServe(*debugAddr, dbg); err != nil {
				fmt.Fprintln(os.Stderr, "cleoserve: debug listener:", err)
			}
		}()
		fmt.Printf("cleoserve debug (pprof, metrics) on %s\n", *debugAddr)
	}
	if *stateDir != "" {
		if names := svc.TenantNames(); len(names) > 0 {
			fmt.Printf("cleoserve: recovered %d tenant(s) from %s: %v\n", len(names), *stateDir, names)
		}
	}
	server := &http.Server{Addr: *addr, Handler: serve.NewHandler(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = server.Shutdown(shutdownCtx)
	}()

	fmt.Printf("cleoserve listening on %s (backend %s, retrain threshold %d)\n",
		*addr, *execBackend, *retrainThreshold)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cleoserve:", err)
		os.Exit(1)
	}
	// ListenAndServe returns as soon as Shutdown *starts*; wait for
	// in-flight requests to drain before closing the service, so no
	// request's telemetry is dropped by a closed ingestion pipeline.
	<-shutdownDone
	svc.Close()
	fmt.Println("cleoserve: drained and stopped")
}
