// Command cleobench regenerates the paper's tables and figures.
//
// Usage:
//
//	cleobench -list
//	cleobench [-scale small|full] all
//	cleobench [-scale small|full] table5 fig19 fig20 ...
//
// Each experiment prints a text table with a "paper:" note recording the
// published numbers for side-by-side comparison (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cleo/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "small", "experiment scale: small or full")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-18s %s\n", e.Name, e.Description)
		}
		return
	}

	scale := experiments.ScaleSmall
	switch *scaleFlag {
	case "small":
	case "full":
		scale = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "cleobench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "cleobench: pass experiment names or 'all' (-list to enumerate)")
		os.Exit(2)
	}
	var entries []experiments.Entry
	if len(names) == 1 && names[0] == "all" {
		entries = experiments.Registry()
	} else {
		for _, n := range names {
			e, err := experiments.Find(n)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cleobench:", err)
				os.Exit(2)
			}
			entries = append(entries, e)
		}
	}

	for _, e := range entries {
		start := time.Now()
		res, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cleobench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
