// Command cleoexplain optimizes one TPC-H query under the default cost
// model and under CLEO's learned models and prints both physical plans —
// the plan-change analysis of Section 6.6.2.
//
// Usage:
//
//	cleoexplain -q 8 [-sf 1000] [-runs 6]
//
// The tool first executes `runs` randomized runs of all 22 queries to
// collect training telemetry, trains the models, then explains the chosen
// query.
package main

import (
	"flag"
	"fmt"
	"os"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/learned"
	"cleo/internal/plan"
	"cleo/internal/telemetry"
	"cleo/internal/workload/tpch"
)

func main() {
	q := flag.Int("q", 8, "TPC-H query number (1-22)")
	sf := flag.Float64("sf", 1000, "scale factor")
	runs := flag.Int("runs", 6, "training runs of the 22-query workload")
	flag.Parse()
	if *q < 1 || *q > 22 {
		fmt.Fprintln(os.Stderr, "cleoexplain: -q must be 1..22")
		os.Exit(2)
	}

	tr := tpch.Trace(*sf, *runs, 11)
	cluster := exec.NewCluster(exec.DefaultConfig(11))
	runner := &telemetry.Runner{Trace: tr, Clusters: []*exec.Cluster{cluster}, Cost: costmodel.Default{}, Jitter: true}
	col, err := runner.RunAll()
	if err != nil {
		fatal(err)
	}
	pr, err := learned.TrainByDay(col.Records, *runs-2, learned.DefaultTrainConfig())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trained %d models from %d records\n\n", pr.NumModels(), len(col.Records))

	query := tpch.Queries()[*q]()
	cat := tr.Catalogs[0]

	defOpt := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
		MaxPartitions: cluster.MaxPartitions(), JobSeed: 99}
	defRes, err := defOpt.Optimize(query)
	if err != nil {
		fatal(err)
	}
	coster := &learned.Coster{Predictor: pr, Param: 12, Fallback: costmodel.Default{}}
	cleoOpt := &cascades.Optimizer{Catalog: cat, Cost: coster,
		MaxPartitions: cluster.MaxPartitions(), JobSeed: 99,
		ResourceAware: true, Chooser: &learned.AnalyticalChooser{Cost: coster}}
	cleoRes, err := cleoOpt.Optimize(query)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("== TPC-H %s (SF %.0f) ==\n\n", tpch.QueryName(*q), *sf)
	fmt.Println("default plan:")
	printPlan(defRes.Plan)
	fmt.Printf("  predicted cost: %.1f s\n\n", defRes.Cost)
	fmt.Println("CLEO plan (learned models + partition exploration):")
	printPlan(cleoRes.Plan)
	fmt.Printf("  predicted cost: %.1f s, model look-ups: %d\n\n", cleoRes.Cost, cleoRes.ModelLookups)
	if defRes.Plan.String() == cleoRes.Plan.String() {
		fmt.Println("plans are identical")
	} else {
		fmt.Println("plans DIFFER")
	}
}

// printPlan renders an indented operator tree with partitions and costs.
func printPlan(p *plan.Physical) {
	var walk func(n *plan.Physical, depth int)
	walk = func(n *plan.Physical, depth int) {
		for i := 0; i < depth; i++ {
			fmt.Print("  ")
		}
		extra := ""
		if n.Table != "" {
			extra = " " + n.Table
		}
		fmt.Printf("- %s%s  [partitions=%d, estRows=%.3g, estCost=%.2fs]\n",
			n.Op, extra, n.Partitions, n.Stats.EstCard, n.ExclusiveCostEst)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p, 1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cleoexplain:", err)
	os.Exit(1)
}
