// Command planqual measures what the transformation rules actually buy,
// by execution rather than by cost-model opinion. For every TPC-H query it
// optimizes twice — with the full rule set and with rules disabled (the
// plan as written) — executes both best plans on the streaming backend,
// and reports the executed work (the sum of observed per-operator
// cardinalities, which is deterministic) and measured wall time side by
// side. Both runs must produce bit-identical answers; any divergence is an
// equivalence violation and exits nonzero.
//
// Usage:
//
//	planqual [-rows 20000] [-out report.json]
//	planqual -baseline testdata/planqual_baseline.json   # CI gate
//	planqual -write-baseline testdata/planqual_baseline.json
//
// With -baseline, the deterministic work numbers are diffed against the
// committed baseline: a changed rewrite or cost decision shows up as a
// work delta, which fails the run until the baseline is regenerated. Wall
// times are reported but never compared — they are machine noise. The run
// also fails unless the rules improve executed work on at least one query
// (the whole point of having them).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/workload/tpch"
)

// QueryReport is one query's measured comparison.
type QueryReport struct {
	Query string `json:"query"`
	// WorkWith/WorkWithout sum every operator's observed output
	// cardinality across the executed plan — rows moved through the
	// pipeline, the deterministic executed-cost metric.
	WorkWith    uint64 `json:"work_with_rules"`
	WorkWithout uint64 `json:"work_without_rules"`
	// WorkDelta is (without-with)/without: positive means the rules
	// removed work.
	WorkDelta float64 `json:"work_delta"`
	// Wall times are informational only (never compared against baselines).
	SecondsWith    float64 `json:"seconds_with_rules"`
	SecondsWithout float64 `json:"seconds_without_rules"`
	// OutputRows/OutputChecksum are identical for both plans by
	// construction — the run aborts otherwise.
	OutputRows     uint64            `json:"output_rows"`
	OutputChecksum string            `json:"output_checksum"`
	RuleFires      map[string]uint64 `json:"rule_fires,omitempty"`
	PlanChanged    bool              `json:"plan_changed"`
}

// Report is the tool's full output.
type Report struct {
	Rows     int           `json:"max_table_rows"`
	RuleSet  string        `json:"rule_set"`
	Queries  []QueryReport `json:"queries"`
	Improved int           `json:"queries_improved"`
}

// Baseline is the committed subset: only the deterministic fields.
type Baseline struct {
	Rows    int    `json:"max_table_rows"`
	RuleSet string `json:"rule_set"`
	Work    []struct {
		Query       string `json:"query"`
		WorkWith    uint64 `json:"work_with_rules"`
		WorkWithout uint64 `json:"work_without_rules"`
	} `json:"work"`
}

func main() {
	rows := flag.Int("rows", 20000, "streaming executor table-row cap (determines the deterministic dataset)")
	out := flag.String("out", "", "write the full JSON report to this path")
	baseline := flag.String("baseline", "", "compare deterministic work numbers against this committed baseline")
	writeBaseline := flag.String("write-baseline", "", "write the deterministic baseline to this path")
	flag.Parse()

	rep, err := run(*rows)
	if err != nil {
		fatal(err)
	}

	for _, q := range rep.Queries {
		marker := " "
		if q.WorkDelta > 0 {
			marker = "+"
		} else if q.WorkDelta < 0 {
			marker = "-"
		}
		fmt.Printf("%-4s %s work %9d -> %9d  (%+6.2f%%)  wall %7.2fms -> %7.2fms\n",
			q.Query, marker, q.WorkWithout, q.WorkWith, 100*q.WorkDelta,
			1e3*q.SecondsWithout, 1e3*q.SecondsWith)
	}
	fmt.Printf("rules improved executed work on %d/%d queries\n", rep.Improved, len(rep.Queries))

	if rep.Improved == 0 {
		fatal(fmt.Errorf("the rule set improved executed work on no query"))
	}
	if *out != "" {
		if err := writeJSON(*out, rep); err != nil {
			fatal(err)
		}
	}
	if *writeBaseline != "" {
		if err := writeJSON(*writeBaseline, toBaseline(rep)); err != nil {
			fatal(err)
		}
	}
	if *baseline != "" {
		if err := compare(rep, *baseline); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline %s: OK\n", *baseline)
	}
}

func run(rows int) (*Report, error) {
	cat := stats.NewCatalog(1)
	tpch.Register(cat, 1)
	cfg := exec.StreamConfig{MaxTableRows: rows, MaxWorkers: 2}
	rep := &Report{Rows: rows, RuleSet: cascades.DefaultRules().Identity()}

	for q := 1; q <= 22; q++ {
		name := fmt.Sprintf("Q%d", q)
		on, fires, err := optimize(cat, tpch.Queries()[q](), int64(q), cascades.DefaultRules())
		if err != nil {
			return nil, fmt.Errorf("%s: optimize with rules: %w", name, err)
		}
		off, _, err := optimize(cat, tpch.Queries()[q](), int64(q), cascades.EmptyRules())
		if err != nil {
			return nil, fmt.Errorf("%s: optimize without rules: %w", name, err)
		}

		onRes, onWork, onSec, err := execute(cfg, on)
		if err != nil {
			return nil, fmt.Errorf("%s: execute with rules: %w", name, err)
		}
		offRes, offWork, offSec, err := execute(cfg, off)
		if err != nil {
			return nil, fmt.Errorf("%s: execute without rules: %w", name, err)
		}

		// The hard gate: a rewrite that changes the answer is a bug, full
		// stop — no report, nonzero exit.
		if onRes.OutputRows != offRes.OutputRows || onRes.OutputChecksum != offRes.OutputChecksum {
			return nil, fmt.Errorf(
				"%s: OUTPUT EQUIVALENCE VIOLATION: with rules %d rows / %x, without %d rows / %x\nwith:    %s\nwithout: %s",
				name, onRes.OutputRows, onRes.OutputChecksum,
				offRes.OutputRows, offRes.OutputChecksum, on, off)
		}

		qr := QueryReport{
			Query:          name,
			WorkWith:       onWork,
			WorkWithout:    offWork,
			SecondsWith:    onSec,
			SecondsWithout: offSec,
			OutputRows:     onRes.OutputRows,
			OutputChecksum: fmt.Sprintf("%016x", onRes.OutputChecksum),
			RuleFires:      fires,
			PlanChanged:    on.String() != off.String(),
		}
		if offWork > 0 {
			qr.WorkDelta = (float64(offWork) - float64(onWork)) / float64(offWork)
		}
		if onWork < offWork {
			rep.Improved++
		}
		rep.Queries = append(rep.Queries, qr)
	}
	return rep, nil
}

func optimize(cat *stats.Catalog, q *plan.Logical, seed int64, rules *cascades.RuleSet) (*plan.Physical, map[string]uint64, error) {
	o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
		MaxPartitions: 3000, JobSeed: seed, Rules: rules}
	res, err := o.Optimize(q)
	if err != nil {
		return nil, nil, err
	}
	return res.Plan, res.RuleFires, nil
}

// execute runs p on the streaming engine and reports the result, the
// total observed cardinality across all operators, and the wall time.
func execute(cfg exec.StreamConfig, p *plan.Physical) (exec.Result, uint64, float64, error) {
	clone := p.Clone()
	start := time.Now()
	res, err := exec.NewEngine(cfg).Run(clone, nil)
	if err != nil {
		return exec.Result{}, 0, 0, err
	}
	sec := time.Since(start).Seconds()
	var work uint64
	clone.Walk(func(n *plan.Physical) { work += uint64(n.Stats.ActCard) })
	return res, work, sec, nil
}

func toBaseline(rep *Report) *Baseline {
	b := &Baseline{Rows: rep.Rows, RuleSet: rep.RuleSet}
	for _, q := range rep.Queries {
		b.Work = append(b.Work, struct {
			Query       string `json:"query"`
			WorkWith    uint64 `json:"work_with_rules"`
			WorkWithout uint64 `json:"work_without_rules"`
		}{q.Query, q.WorkWith, q.WorkWithout})
	}
	return b
}

func compare(rep *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if b.Rows != rep.Rows {
		return fmt.Errorf("baseline recorded at -rows %d, run used %d", b.Rows, rep.Rows)
	}
	if b.RuleSet != rep.RuleSet {
		return fmt.Errorf("baseline rule set %q differs from current %q — regenerate with -write-baseline", b.RuleSet, rep.RuleSet)
	}
	if len(b.Work) != len(rep.Queries) {
		return fmt.Errorf("baseline has %d queries, run has %d", len(b.Work), len(rep.Queries))
	}
	for i, w := range b.Work {
		got := rep.Queries[i]
		if w.Query != got.Query {
			return fmt.Errorf("baseline query %d is %s, run has %s", i, w.Query, got.Query)
		}
		if w.WorkWith != got.WorkWith || w.WorkWithout != got.WorkWithout {
			return fmt.Errorf("%s: executed work diverged from baseline: with rules %d (baseline %d), without %d (baseline %d) — regenerate with -write-baseline if intended",
				w.Query, got.WorkWith, w.WorkWith, got.WorkWithout, w.WorkWithout)
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "planqual:", err)
	os.Exit(1)
}
