// Command benchjson runs a set of Go benchmarks and writes their results
// as JSON, seeding the repository's performance trajectory: committed
// baselines (BENCH_baseline.json) let future changes diff recorded numbers
// instead of re-measuring the past.
//
// Usage:
//
//	go run ./cmd/benchjson -bench 'OptimizeLearned|ExprFingerprint' -pkgs ./... -o BENCH_baseline.json
//
// ns/op, B/op and allocs/op of repeated runs of the same benchmark are
// averaged; custom metrics are snapshotted from the first run.
//
// Results are keyed "BenchmarkName@GOMAXPROCS", and writing merges with an
// existing baseline instead of replacing it: entries recorded at other
// widths are kept, so one file can hold the 1-proc and 4-proc gates for
// parallel benchmarks side by side (legacy un-keyed entries are migrated
// to the file's recorded width on the next write).
//
// Compare mode turns the committed baseline into a regression gate: run
// the benchmarks, diff ns/op against the baseline, and exit 1 when any
// benchmark tracked by both regresses beyond the threshold (nothing is
// written in this mode):
//
//	go run ./cmd/benchjson -compare BENCH_baseline.json -threshold 0.2
//
// Ratio mode gates one benchmark against another measured in the same
// run — e.g. asserting the instrumented optimizer stays within 2% of the
// uninstrumented one (nothing is written when -ratio is given without
// -compare; with -compare both gates apply):
//
//	go run ./cmd/benchjson -bench 'OptimizeLearnedResourceAware' -pkgs ./internal/engine \
//	  -ratio 'BenchmarkOptimizeLearnedResourceAwareInstrumented:BenchmarkOptimizeLearnedResourceAware' \
//	  -ratio-max 0.02
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's recorded numbers.
type Result struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp   float64 `json:"bytes_per_op,omitempty"`
	Runs         int     `json:"runs"`
	ExtraMetrics string  `json:"extra_metrics,omitempty"`
}

// Baseline is the file format: environment plus per-benchmark results.
type Baseline struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GOMAXPROCS records the width of the most recent recording. Entries
	// are width-keyed ("Name@procs") so one file holds baselines from
	// several widths; this field only disambiguates legacy un-keyed
	// entries (0 in old baselines = unknown, compared anyway).
	GOMAXPROCS int               `json:"gomaxprocs,omitempty"`
	Bench      string            `json:"bench"`
	BenchTime  string            `json:"benchtime"`
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  1234  567 ns/op  89 B/op  3 allocs/op  0.5 extra`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

func main() {
	bench := flag.String("bench", "OptimizeLearned|ExprFingerprint|PredictOperator|TrainModels", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime value")
	pkgs := flag.String("pkgs", "./...", "package pattern to benchmark")
	count := flag.Int("count", 1, "go test -count value")
	out := flag.String("o", "BENCH_baseline.json", "output JSON path")
	note := flag.String("note", "", "free-form note recorded in the baseline")
	benchmem := flag.Bool("benchmem", true, "pass -benchmem")
	compare := flag.String("compare", "", "baseline JSON to diff against instead of writing; exit 1 on regression")
	threshold := flag.Float64("threshold", 0.20, "allowed fractional ns/op regression in -compare mode (0.20 = 20%)")
	ratio := flag.String("ratio", "",
		"comma-separated 'NumBench:DenBench' pairs measured this run; exit 1 when num/den-1 exceeds -ratio-max")
	ratioMax := flag.Float64("ratio-max", 0.02, "allowed fractional overhead per -ratio pair (0.02 = 2%)")
	strictProcs := flag.Bool("strict-procs", false,
		"in -compare mode, fail (exit 1) on a GOMAXPROCS mismatch with the baseline instead of skipping the comparison")
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
	if *benchmem {
		args = append(args, "-benchmem")
	}
	args = append(args, *pkgs)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	sums := map[string]*Result{}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := sums[name]
		if r == nil {
			r = &Result{}
			sums[name] = r
		}
		r.Runs++
		r.NsPerOp += ns
		rest := strings.TrimSpace(m[4])
		for _, metric := range splitMetrics(rest) {
			switch {
			case strings.HasSuffix(metric, " B/op"):
				v, _ := strconv.ParseFloat(strings.TrimSuffix(metric, " B/op"), 64)
				r.BytesPerOp += v
			case strings.HasSuffix(metric, " allocs/op"):
				v, _ := strconv.ParseFloat(strings.TrimSuffix(metric, " allocs/op"), 64)
				r.AllocsPerOp += v
			default:
				// Custom metrics (e.g. hit-ratio) are snapshotted from the
				// first run; only ns/op, B/op and allocs/op are averaged.
				if r.ExtraMetrics == "" {
					r.ExtraMetrics = metric
				}
			}
		}
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	ratioRC := 0
	if *ratio != "" {
		ratioRC = checkRatios(*ratio, sums, *ratioMax)
	}
	if *compare != "" {
		if rc := compareBaseline(*compare, sums, *threshold, *strictProcs); rc != 0 {
			ratioRC = rc
		}
		os.Exit(ratioRC)
	}
	if *ratio != "" {
		os.Exit(ratioRC)
	}

	procs := runtime.GOMAXPROCS(0)
	b := Baseline{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: procs,
		Bench:      *bench,
		BenchTime:  *benchtime,
		Note:       *note,
		Benchmarks: map[string]Result{},
	}
	// Merge: keep existing entries recorded at other widths (migrating
	// legacy un-keyed entries to the old file's recorded width); entries
	// at this width are superseded by this run.
	if data, err := os.ReadFile(*out); err == nil {
		var old Baseline
		if json.Unmarshal(data, &old) == nil {
			for key, r := range old.Benchmarks {
				if _, _, keyed := splitProcsKey(key); !keyed {
					if old.GOMAXPROCS == 0 {
						continue // unknown width: no meaningful gate
					}
					key = procsKey(key, old.GOMAXPROCS)
				}
				if _, w, _ := splitProcsKey(key); w != procs {
					b.Benchmarks[key] = r
				}
			}
		}
	}
	for name, r := range sums {
		n := float64(r.Runs)
		b.Benchmarks[procsKey(name, procs)] = Result{
			NsPerOp:      round1(r.NsPerOp / n),
			AllocsPerOp:  round1(r.AllocsPerOp / n),
			BytesPerOp:   round1(r.BytesPerOp / n),
			Runs:         r.Runs,
			ExtraMetrics: r.ExtraMetrics,
		}
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	var names []string
	for n := range b.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-55s %12.0f ns/op  (%d run(s))\n", n, b.Benchmarks[n].NsPerOp, b.Benchmarks[n].Runs)
	}
	fmt.Println("wrote", *out)
}

// compareBaseline diffs freshly measured sums against the baseline file
// and returns the process exit code: 1 when any benchmark present in both
// regresses its ns/op beyond the threshold, 0 otherwise. Benchmarks only
// on one side are reported but never gate — a fresh benchmark has no
// history and a retired one no measurement. Lookup is by width-qualified
// key ("Name@procs") first; a legacy un-keyed entry gates only when the
// file's recorded GOMAXPROCS matches this machine (ns/op across widths is
// meaningless for parallel benchmarks) — on a mismatch the legacy entry
// is skipped, or fails the gate under strictProcs: CI pins GOMAXPROCS and
// must never skip silently.
func compareBaseline(path string, sums map[string]*Result, threshold float64, strictProcs bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse %s: %v\n", path, err)
		return 1
	}
	procs := runtime.GOMAXPROCS(0)
	mismatch := base.GOMAXPROCS != 0 && base.GOMAXPROCS != procs

	var names []string
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	regressed := 0
	compared := 0
	skippedWidth := 0
	for _, name := range names {
		got := sums[name].NsPerOp / float64(sums[name].Runs)
		want, ok := base.Benchmarks[procsKey(name, procs)]
		if !ok {
			if legacy, legacyOK := base.Benchmarks[name]; legacyOK {
				if mismatch {
					if strictProcs {
						fmt.Fprintf(os.Stderr, "benchjson: %s in %s was recorded at GOMAXPROCS=%d, this machine runs %d — failing (-strict-procs): set GOMAXPROCS=%d or re-record the baseline\n",
							name, path, base.GOMAXPROCS, procs, base.GOMAXPROCS)
						return 1
					}
					fmt.Printf("%-55s %12.0f ns/op  (baseline width %d != %d, skipped)\n",
						name, got, base.GOMAXPROCS, procs)
					skippedWidth++
					continue
				}
				want, ok = legacy, true
			}
		}
		if !ok || want.NsPerOp <= 0 {
			fmt.Printf("%-55s %12.0f ns/op  (not in baseline, skipped)\n", name, got)
			continue
		}
		compared++
		ratio := got/want.NsPerOp - 1
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-55s %12.0f ns/op  baseline %12.0f  %+6.1f%%  %s\n",
			name, got, want.NsPerOp, ratio*100, verdict)
	}
	if compared == 0 {
		if skippedWidth > 0 {
			fmt.Printf("benchjson: every matching entry in %s was recorded at GOMAXPROCS=%d, this machine runs %d — nothing gated (re-record at this width to gate here)\n",
				path, base.GOMAXPROCS, procs)
			return 0
		}
		fmt.Fprintln(os.Stderr, "benchjson: no benchmarks matched the baseline")
		return 1
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %.0f%% vs %s\n",
			regressed, threshold*100, path)
		return 1
	}
	fmt.Printf("no regression beyond %.0f%% across %d benchmark(s)\n", threshold*100, compared)
	return 0
}

// checkRatios gates benchmark pairs measured in the same run: for each
// "NumBench:DenBench" pair, num's mean ns/op must stay within max of
// den's. Both benchmarks must have been measured — a typo'd name fails
// the gate instead of silently passing it.
func checkRatios(spec string, sums map[string]*Result, max float64) int {
	mean := func(name string) (float64, bool) {
		r, ok := sums[name]
		if !ok || r.Runs == 0 {
			return 0, false
		}
		return r.NsPerOp / float64(r.Runs), true
	}
	failed := 0
	for _, pair := range strings.Split(spec, ",") {
		num, den, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: bad -ratio pair %q (want Num:Den)\n", pair)
			failed++
			continue
		}
		a, okA := mean(num)
		b, okB := mean(den)
		if !okA || !okB {
			fmt.Fprintf(os.Stderr, "benchjson: -ratio pair %q: benchmark not measured (num=%v den=%v)\n",
				pair, okA, okB)
			failed++
			continue
		}
		overhead := a/b - 1
		verdict := "ok"
		if overhead > max {
			verdict = "EXCEEDED"
			failed++
		}
		fmt.Printf("ratio %s / %s: %.0f / %.0f ns/op = %+.2f%% (max %+.0f%%)  %s\n",
			num, den, a, b, overhead*100, max*100, verdict)
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// procsKey is the width-qualified baseline key for a benchmark: ns/op is
// only comparable between runs at the same GOMAXPROCS.
func procsKey(name string, procs int) string {
	return fmt.Sprintf("%s@%d", name, procs)
}

// splitProcsKey splits a "Name@procs" key; keyed is false for legacy
// un-keyed entries.
func splitProcsKey(key string) (name string, procs int, keyed bool) {
	i := strings.LastIndex(key, "@")
	if i < 0 {
		return key, 0, false
	}
	p, err := strconv.Atoi(key[i+1:])
	if err != nil || p <= 0 {
		return key, 0, false
	}
	return key[:i], p, true
}

// splitMetrics splits the tail of a benchmark line ("8 B/op\t3 allocs/op")
// into individual metrics.
func splitMetrics(s string) []string {
	var out []string
	for _, f := range strings.Split(s, "\t") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func round1(v float64) float64 {
	return float64(int64(v*10+0.5)) / 10
}
