// Durability demo: runs the serving layer against a state directory,
// trains two model versions, then "crashes" (closes) the service and
// starts a fresh one over the same directory — the restarted service
// plans with the latest learned model on its very first query, under its
// original version id, and the telemetry that had not been trained on yet
// is replayed into the feedback loop.
//
//	go run ./examples/durability
package main

import (
	"fmt"
	"log"
	"os"

	"cleo"
)

func demoPlan() *cleo.Query {
	return cleo.NewOutput(cleo.NewAggregate(cleo.NewSelect(
		cleo.NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
}

func register(t *cleo.Tenant) {
	t.System().RegisterTable("clicks_2026_06_12", cleo.TableStats{Rows: 2e7, RowLength: 120})
}

func traffic(t *cleo.Tenant, from, n int) {
	q := demoPlan()
	for seed := from; seed < from+n; seed++ {
		if _, err := t.Run(q, cleo.RunOptions{Seed: int64(seed), Param: float64(seed%5) + 1}); err != nil {
			log.Fatal(err)
		}
	}
}

func main() {
	stateDir, err := os.MkdirTemp("", "cleo-state-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(stateDir)
	cfg := cleo.ServeConfig{StateDir: stateDir, Logf: func(string, ...any) {}}

	// Life 1: telemetry traffic, two published versions, pending tail.
	fmt.Println("» life 1: train two model versions against", stateDir)
	svc := cleo.NewService(cfg)
	ads := svc.Tenant("ads")
	register(ads)
	traffic(ads, 1, 40)
	v1, err := ads.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	traffic(ads, 41, 40)
	v2, err := ads.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  published v%d (%d records) then v%d (%d records)\n",
		v1.ID, v1.TrainRecords, v2.ID, v2.TrainRecords)
	traffic(ads, 81, 10) // journaled, not yet trained
	svc.Close()          // flushes the journal and the async snapshots
	fmt.Printf("  stopped; log had %d records, %d of them not yet trained\n",
		ads.System().LogSize(), ads.System().LogSize()-v2.TrainRecords)

	// Life 2: a fresh process over the same directory resumes warm.
	fmt.Println("» life 2: restart against the same state directory")
	svc2 := cleo.NewService(cfg)
	defer svc2.Close()
	ads2, ok := svc2.Lookup("ads")
	if !ok {
		log.Fatal("tenant not recovered")
	}
	register(ads2)
	st := ads2.Stats()
	fmt.Printf("  recovered model v%d (%d models), replayed %d journal records\n",
		st.ModelVersion, st.NumModels, st.Persist.RecoveredRecords)

	// The FIRST query plans with the learned models — no retrain happened.
	res, version, err := ads2.RunWithVersion(demoPlan(),
		cleo.RunOptions{Seed: 999, Param: 2, UseLearnedModels: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  first query served with model v%d (latency %.3fs, %d containers), retrains so far: %d\n",
		version, res.Latency, res.Containers, ads2.Stats().Retrains)

	// The replayed records count toward the next retrain: v3 resumes the
	// id sequence.
	v3, err := ads2.Retrain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  next retrain publishes v%d on %d replayed+new records\n", v3.ID, v3.TrainRecords)
}
