// Recurring pipeline: the paper's motivating scenario (Figure 2) — an
// hourly job that extracts facts from a clickstream with a UDF, whose
// input sizes and parameters drift across instances. The example runs two
// weeks of instances, retrains the cost models periodically (the paper
// retrains every ~10 days; here every 5 simulated days), and reports how
// model accuracy holds up on each day's fresh instances.
package main

import (
	"fmt"
	"log"

	"cleo"
)

func main() {
	sys := cleo.NewSystem(cleo.SystemConfig{Seed: 7})

	const days = 14
	const instancesPerDay = 6

	fmt.Println("day  instances  medianErr(learned)  pearson  note")
	for day := 0; day < days; day++ {
		// Each day's instances read a fresh, drifted input.
		var dayRecords []cleo.Record
		for inst := 0; inst < instancesPerDay; inst++ {
			seed := int64(day*100 + inst + 1)
			table := fmt.Sprintf("clickstream_d%02d_i%d", day, inst)
			rows := 4e7 * (1 + 0.04*float64(day)) * (0.8 + 0.4*float64(inst%3))
			sys.RegisterTable(table, cleo.TableStats{Rows: rows, RowLength: 150})

			query := cleo.NewOutput(
				cleo.NewAggregate(
					cleo.NewProcess(
						cleo.NewSelect(cleo.NewGet(table, "clickstream_"), "valid=true"),
						"extractFacts"),
					"page"))

			res, err := sys.Run(query, cleo.RunOptions{Seed: seed, Param: float64(inst + 1)})
			if err != nil {
				log.Fatal(err)
			}
			dayRecords = append(dayRecords, res.Records...)
		}

		note := ""
		if sys.Models() != nil {
			acc, err := sys.EvaluateModels(dayRecords)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d  %9d  %17.0f%%  %7.2f  %s\n",
				day, instancesPerDay, acc.MedianErr*100, acc.Pearson, note)
		} else {
			fmt.Printf("%3d  %9d  %18s  %7s  collecting telemetry\n", day, instancesPerDay, "-", "-")
		}

		// Periodic retraining, as in the paper's feedback loop.
		if (day+1)%5 == 0 {
			if err := sys.Retrain(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("     [retrained on %d records: %d models]\n",
				sys.LogSize(), sys.Models().NumModels())
		}
	}
}
