// Resource planning: Section 5.2's motivating example (Figure 8b) on a
// concrete stage. A shuffle-and-aggregate stage is priced at a range of
// partition counts to show the locally-optimal vs stage-optimal gap, then
// the learned analytical strategy finds the stage optimum with 5 model
// look-ups per operator.
package main

import (
	"fmt"
	"log"

	"cleo"
)

func main() {
	sys := cleo.NewSystem(cleo.SystemConfig{Seed: 3})
	sys.RegisterTable("events_2026_06_12", cleo.TableStats{Rows: 1.2e9, RowLength: 100})

	// Extract -> Filter -> Sort -> Output: one stage whose only degree of
	// freedom is the partition count, isolating the effect of partition
	// exploration (Section 5.2) from operator choice.
	query := cleo.NewOutput(
		cleo.NewSort(
			cleo.NewSelect(cleo.NewGet("events_2026_06_12", "events_"), "recent"),
			"k1"))

	// Collect telemetry so the models know this pipeline.
	for seed := int64(1); seed <= 80; seed++ {
		if _, err := sys.Run(query, cleo.RunOptions{Seed: seed, Param: float64(seed % 5)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		log.Fatal(err)
	}

	// Compare: default heuristic partitioning vs resource-aware planning.
	defRes, err := sys.Run(query, cleo.RunOptions{Seed: 99, SkipLogging: true})
	if err != nil {
		log.Fatal(err)
	}
	cleoRes, err := sys.Run(query, cleo.RunOptions{
		Seed: 99, SkipLogging: true, UseLearnedModels: true, ResourceAware: true,
		SafePlanSelection: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("stage partition counts (default heuristic vs resource-aware):")
	fmt.Printf("  default plan:        %v\n", stagePartitions(defRes.Plan))
	fmt.Printf("  resource-aware plan: %v\n", stagePartitions(cleoRes.Plan))
	fmt.Printf("default:        latency %6.1fs, processing %8.0f container-seconds\n",
		defRes.Latency, defRes.TotalProcessingTime)
	fmt.Printf("resource-aware: latency %6.1fs, processing %8.0f container-seconds\n",
		cleoRes.Latency, cleoRes.TotalProcessingTime)
}

// stagePartitions lists the distinct partition counts along the plan.
func stagePartitions(p *cleo.PhysicalPlan) []int {
	var out []int
	last := -1
	p.Walk(func(n *cleo.PhysicalPlan) {
		if n.Partitions != last {
			out = append(out, n.Partitions)
			last = n.Partitions
		}
	})
	return out
}
