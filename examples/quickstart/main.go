// Quickstart: build a query, run it on the simulated cluster, close the
// feedback loop, and watch CLEO's learned cost models beat the default
// model and pick a cheaper plan.
package main

import (
	"fmt"
	"log"

	"cleo"
)

func main() {
	// A System is one tenant's view: statistics catalog, simulated
	// cluster, optimizer and feedback loop.
	sys := cleo.NewSystem(cleo.SystemConfig{Seed: 42})

	// Register today's input. The template name ("clicks_") groups
	// recurring instances of the same logical input.
	sys.RegisterTable("clicks_2026_06_12", cleo.TableStats{Rows: 5e7, RowLength: 120})
	sys.RegisterTable("users_2026_06_12", cleo.TableStats{Rows: 2e6, RowLength: 80})

	// SELECT region, agg(...) FROM clicks JOIN users ON user
	// WHERE market='us' GROUP BY region ORDER BY region
	query := cleo.NewOutput(
		cleo.NewSort(
			cleo.NewAggregate(
				cleo.NewJoin(
					cleo.NewSelect(cleo.NewGet("clicks_2026_06_12", "clicks_"), "market=us"),
					cleo.NewGet("users_2026_06_12", "users_"),
					"clicks.user=users.id", "user"),
				"region"),
			"region"))

	// Run the recurring job 30 times (instances drift); telemetry is
	// logged automatically.
	fmt.Println("running 30 instances under the default cost model...")
	var lastDefault *cleo.RunResult
	for seed := int64(1); seed <= 30; seed++ {
		res, err := sys.Run(query, cleo.RunOptions{Seed: seed, Param: float64(seed%24) + 1})
		if err != nil {
			log.Fatal(err)
		}
		lastDefault = res
	}
	fmt.Printf("  last run: latency %.1fs, processing %.0f container-seconds, %d containers\n",
		lastDefault.Latency, lastDefault.TotalProcessingTime, lastDefault.Containers)

	// Train the learned cost models from the accumulated telemetry.
	if err := sys.Retrain(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d individual cost models (+ combined meta-model)\n", sys.Models().NumModels())

	// Re-run with learned models and resource-aware partition planning.
	res, err := sys.Run(query, cleo.RunOptions{
		Seed: 31, Param: 8, UseLearnedModels: true, ResourceAware: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLEO run: latency %.1fs, processing %.0f container-seconds, %d containers\n",
		res.Latency, res.TotalProcessingTime, res.Containers)

	// Show what changed.
	defPlan, cleoPlan, changed, err := sys.ExplainDiff(query, cleo.RunOptions{Seed: 31, Param: 8, ResourceAware: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan changed: %v\n", changed)
	fmt.Printf("  default: %d ops, %d total partitions\n",
		cleo.Summarize(defPlan).NumOps, cleo.Summarize(defPlan).TotalPartition)
	fmt.Printf("  CLEO:    %d ops, %d total partitions\n",
		cleo.Summarize(cleoPlan).NumOps, cleo.Summarize(cleoPlan).TotalPartition)
}
