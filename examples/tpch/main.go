// TPC-H: reproduce the paper's Section 6.6.2 analysis on two headline
// queries — Q8, where CLEO exploits the part table's stored partitioning
// to skip a shuffle and re-partition more cheaply, and Q17, the
// partial-aggregation change that regressed in the paper.
package main

import (
	"fmt"
	"log"

	"cleo"
)

func main() {
	sys := cleo.NewSystem(cleo.SystemConfig{Seed: 11})
	sys.RegisterTPCH(100) // scale factor 100

	// Training: run all 22 queries several times with varying parameters
	// (the paper runs each 10 times), logging telemetry.
	fmt.Println("collecting training telemetry from 22 queries x 6 runs...")
	for run := 0; run < 6; run++ {
		for q := 1; q <= 22; q++ {
			query, err := cleo.TPCHQuery(q)
			if err != nil {
				log.Fatal(err)
			}
			seed := int64(run*100 + q)
			if _, err := sys.Run(query, cleo.RunOptions{Seed: seed, Param: float64(run + 1)}); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.Retrain(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d models from %d records\n\n", sys.Models().NumModels(), sys.LogSize())

	for _, q := range []int{8, 17} {
		query, err := cleo.TPCHQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		seed := int64(999 + q)

		defRes, err := sys.Run(query, cleo.RunOptions{Seed: seed, SkipLogging: true})
		if err != nil {
			log.Fatal(err)
		}
		cleoRes, err := sys.Run(query, cleo.RunOptions{
			Seed: seed, SkipLogging: true, UseLearnedModels: true, ResourceAware: true,
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== Q%d ==\n", q)
		ds, cs := cleo.Summarize(defRes.Plan), cleo.Summarize(cleoRes.Plan)
		fmt.Printf("  default: latency %6.1fs  processing %9.0fs  partitions %5d  ops %v\n",
			defRes.Latency, defRes.TotalProcessingTime, ds.TotalPartition, ds.Operators)
		fmt.Printf("  CLEO:    latency %6.1fs  processing %9.0fs  partitions %5d  ops %v\n",
			cleoRes.Latency, cleoRes.TotalProcessingTime, cs.TotalPartition, cs.Operators)
		fmt.Printf("  latency change: %+.1f%%, processing change: %+.1f%%\n\n",
			100*(cleoRes.Latency/defRes.Latency-1),
			100*(cleoRes.TotalProcessingTime/defRes.TotalProcessingTime-1))
	}
}
