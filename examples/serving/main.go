// Serving demo: runs the multi-tenant optimizer service in-process,
// drives two tenants with concurrent HTTP traffic, retrains and hot-swaps
// a model version mid-traffic, then prints the model registries and
// serving stats — the paper's Section 5.1 feedback loop end to end over
// the wire.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"cleo"
)

const planJSON = `{
  "op": "Output", "children": [
    {"op": "Aggregate", "keys": ["user"], "children": [
      {"op": "Select", "pred": "market=us", "children": [
        {"op": "Get", "table": "clicks_2026_06_12", "template": "clicks_"}]}]}]}`

const tablesJSON = `{"clicks_2026_06_12": {"Rows": 2e7, "RowLength": 120}}`

func post(base, path, body string) (map[string]any, error) {
	resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %d: %v", path, resp.StatusCode, out["error"])
	}
	return out, nil
}

func get(base, path string, out any) error {
	resp, err := http.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

func queryBody(tenant string, seed int) string {
	return fmt.Sprintf(`{"tenant":%q,"seed":%d,"param":%d,"tables":%s,"plan":%s}`,
		tenant, seed, seed%5+1, tablesJSON, planJSON)
}

func main() {
	// The service behind its HTTP handler, on an ephemeral local port —
	// exactly what cmd/cleoserve serves.
	svc := cleo.NewService(cleo.ServeConfig{})
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(ln, cleo.NewServeHandler(svc)) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("cleoserve demo listening on", base)

	tenants := []string{"ads", "search"}

	// Phase 1: 32 concurrent default-model queries per tenant feed the
	// telemetry log.
	fmt.Println("\n» phase 1: concurrent telemetry traffic (default cost model)")
	hammer := func(phase int) {
		var wg sync.WaitGroup
		for _, tenant := range tenants {
			for i := 0; i < 32; i++ {
				wg.Add(1)
				go func(tenant string, seed int) {
					defer wg.Done()
					if _, err := post(base, "/v1/query", queryBody(tenant, seed)); err != nil {
						log.Fatal(err)
					}
				}(tenant, phase*32+i+1)
			}
		}
		wg.Wait()
	}
	hammer(0)

	// Phase 2: retrain both tenants — each publishes model version 1 and
	// hot-swaps it in while the service stays up.
	fmt.Println("» phase 2: retrain + hot-swap model version 1")
	for _, tenant := range tenants {
		out, err := post(base, "/v1/retrain", fmt.Sprintf(`{"tenant":%q}`, tenant))
		if err != nil {
			log.Fatal(err)
		}
		v := out["version"].(map[string]any)
		fmt.Printf("  %-7s version %v trained on %v records (%v models)\n",
			tenant, v["id"], v["train_records"], v["num_models"])
	}

	// Phase 3: the same traffic now plans with the learned models (auto
	// mode) and fills the per-version prediction cache; a second retrain
	// swaps version 2 mid-traffic.
	fmt.Println("» phase 3: learned traffic + mid-traffic hot-swap to version 2")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hammer(1)
		hammer(1) // repeat the same recurring instances → cache hits
	}()
	if _, err := post(base, "/v1/retrain", `{"tenant":"ads"}`); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	// Wrap-up: registries and serving stats.
	fmt.Println("\n» model registries")
	for _, tenant := range tenants {
		var models struct {
			Current  int64            `json:"current"`
			Versions []map[string]any `json:"versions"`
		}
		if err := get(base, "/v1/models?tenant="+tenant, &models); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s current=v%d, %d version(s) published\n",
			tenant, models.Current, len(models.Versions))
	}

	fmt.Println("\n» serving stats")
	var stats []cleo.TenantStats
	if err := get(base, "/v1/stats", &stats); err != nil {
		log.Fatal(err)
	}
	for _, st := range stats {
		fmt.Printf("  %-7s queries=%d errors=%d retrains=%d log=%d model=v%d cache: %d hits / %d misses (%.0f%%)\n",
			st.Tenant, st.Queries, st.Errors, st.Retrains, st.LogSize,
			st.ModelVersion, st.Cache.Hits, st.Cache.Misses, 100*st.Cache.HitRatio())
	}
}
