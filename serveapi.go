package cleo

import (
	"net/http"

	"cleo/internal/learned"
	"cleo/internal/serve"
)

// Re-exports of the multi-tenant serving layer (internal/serve): named
// optimizer sessions behind a sharded session map, versioned model
// hot-swap, prediction caching and the HTTP/JSON API cmd/cleoserve binds.

type (
	// Service is the multi-tenant optimizer service.
	Service = serve.Service
	// ServeConfig configures a Service.
	ServeConfig = serve.Config
	// Tenant is one named optimizer session.
	Tenant = serve.Tenant
	// ModelVersionInfo is one published model version's metadata.
	ModelVersionInfo = serve.ModelVersionInfo
	// TenantStats snapshots one tenant's serving counters.
	TenantStats = serve.TenantStats
	// QueryRequest is the POST /v1/query body.
	QueryRequest = serve.QueryRequest
	// QueryResponse is the POST /v1/query response.
	QueryResponse = serve.QueryResponse
	// PredictionCache memoizes learned-coster predictions (RunOptions.Cache).
	PredictionCache = learned.PredictionCache
	// CacheStats snapshots prediction-cache counters.
	CacheStats = learned.CacheStats
)

// NewService builds a multi-tenant optimizer service.
func NewService(cfg ServeConfig) *Service { return serve.NewService(cfg) }

// NewServeHandler builds the service's HTTP handler (the cmd/cleoserve
// API), for embedding the service in another server.
func NewServeHandler(svc *Service) http.Handler { return serve.NewHandler(svc) }

// NewPredictionCache builds an empty learned-coster prediction cache for
// direct (non-service) System use. Set it on RunOptions.Cache together
// with RunOptions.Models pinning the predictor it belongs to — without a
// pinned predictor the cache is ignored, so a Retrain hot-swap can never
// serve another version's cached costs.
func NewPredictionCache() *PredictionCache { return learned.NewPredictionCache() }
