package cleo

// Benchmarks: one per paper table/figure (wrapping the experiment harness —
// run `go test -bench Table5 -v` to also see the rendered result with
// -benchtime 1x), plus micro-benchmarks of the core components (training,
// prediction, optimization, simulation).

import (
	"fmt"
	"sync/atomic"
	"testing"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/experiments"
	"cleo/internal/learned"
	"cleo/internal/obs"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
	"cleo/internal/workload/tpch"
)

// benchExperiment runs one registered experiment per iteration at small
// scale. The shared lab is built once and memoized across benchmarks.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := experiments.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if testing.Verbose() && i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig01HandcraftedModels(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig02RecurringJob(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig03AdhocShare(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkTable01LossFunctions(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable04MLAlgorithms(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable05ModelLadder(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable06MetaLearners(b *testing.B)    { benchExperiment(b, "table6") }
func BenchmarkFig05FeatureWeights(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig06FeatureWeights(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig07ErrorBands(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig08cModelLookups(b *testing.B)     { benchExperiment(b, "fig8c") }
func BenchmarkFig09WorkloadSummary(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10WorkloadChange(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11PerFamilyCV(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkTable07AdhocBreakdown(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable08PerCluster(b *testing.B)      { benchExperiment(b, "table8") }
func BenchmarkFig12AllJobsCDF(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13AdhocCDF(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14Robustness(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15CardLearner(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16JoinContexts(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17PartitionSampling(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18FeatureAblation(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkFig19ProductionJobs(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkFig20TPCH(b *testing.B)              { benchExperiment(b, "fig20") }
func BenchmarkAblationStrawman(b *testing.B)       { benchExperiment(b, "ablation-strawman") }

// --- Component micro-benchmarks ---

// benchTelemetry builds a small executed trace once.
func benchTelemetry(b *testing.B) *telemetry.Collected {
	b.Helper()
	tr := workload.Generate(workload.Config{
		Clusters: 1, Days: 2, TemplatesPerCluster: 8,
		InstancesPerTemplatePerDay: 3, AdHocFraction: 0.1, Seed: 5,
	})
	r := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}, Jitter: true}
	col, err := r.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	return col
}

// BenchmarkOptimizeJob measures end-to-end planning of one production-style
// job under the default cost model.
func BenchmarkOptimizeJob(b *testing.B) {
	tr := workload.Generate(workload.Config{
		Clusters: 1, Days: 1, TemplatesPerCluster: 1,
		InstancesPerTemplatePerDay: 1, Seed: 9,
	})
	job := tr.Jobs[0]
	r := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := (&telemetry.Runner{
			Trace:    &workload.Trace{Jobs: []workload.Job{job}, Catalogs: tr.Catalogs},
			Clusters: nil, Cost: r.Cost,
		}).RunAll()
		if err != nil {
			b.Fatal(err)
		}
		_ = col
	}
}

// BenchmarkTrainModels measures the full training pass (four families +
// combined) over a day of telemetry.
func BenchmarkTrainModels(b *testing.B) {
	col := benchTelemetry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learned.TrainByDay(col.Records, 1, learned.DefaultTrainConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictOperator measures one combined-model cost prediction —
// the per-operator overhead CLEO adds inside Optimize Inputs.
func BenchmarkPredictOperator(b *testing.B) {
	col := benchTelemetry(b)
	pr, err := learned.TrainByDay(col.Records, 1, learned.DefaultTrainConfig())
	if err != nil {
		b.Fatal(err)
	}
	rec := &col.Records[len(col.Records)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pr.PredictRecord(rec)
	}
}

// BenchmarkSignature measures the four-signature computation per operator.
func BenchmarkSignature(b *testing.B) {
	col := benchTelemetry(b)
	p := col.Jobs[0].Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Walk(func(n *PhysicalPlan) { _ = n })
		_ = p.Count()
	}
}

// --- Serving benchmarks (internal/serve + the prediction cache) ---

// benchQuery is the recurring aggregation query the serving benchmarks
// re-optimize.
func benchQuery() *Query {
	return NewOutput(NewAggregate(NewSelect(
		NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
}

// benchTrainedSystem returns a System with telemetry collected and models
// trained, ready for learned optimization.
func benchTrainedSystem(b *testing.B) *System {
	return benchTrainedSystemCfg(b, SystemConfig{Seed: 5})
}

func benchTrainedSystemCfg(b *testing.B, cfg SystemConfig) *System {
	b.Helper()
	sys := NewSystem(cfg)
	sys.RegisterTable("clicks_2026_06_12", TableStats{Rows: 2e7, RowLength: 120})
	q := benchQuery()
	for seed := int64(1); seed <= 30; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			b.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		b.Fatal(err)
	}
	return sys
}

// benchOptimizeLearned measures repeated recurring-job resource-aware
// optimization under the learned coster — the batched costing pipeline —
// with or without the signature-keyed prediction cache. Compare against
// the forced-scalar baseline:
//
//	go test -bench 'OptimizeLearned' -benchtime 2s
func benchOptimizeLearned(b *testing.B, cache *PredictionCache) {
	benchOptimizeLearnedSys(b, benchTrainedSystem(b), cache)
}

func benchOptimizeLearnedSys(b *testing.B, sys *System, cache *PredictionCache) {
	q := benchQuery()
	opts := RunOptions{
		Seed: 7, Param: 2,
		UseLearnedModels: true, ResourceAware: true, SkipLogging: true,
		Models: sys.Models(), // a cache is only active with a pinned predictor
		Cache:  cache,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Optimize(q, opts); err != nil {
			b.Fatal(err)
		}
	}
	if cache != nil {
		st := cache.Stats()
		b.ReportMetric(st.HitRatio(), "hit-ratio")
	}
}

// BenchmarkOptimizeLearnedResourceAware is the headline number of the
// batched costing refactor: partition exploration prices all candidate
// variants through CostBatch/IndividualCostBatch matrix inference.
func BenchmarkOptimizeLearnedResourceAware(b *testing.B) { benchOptimizeLearned(b, nil) }

// BenchmarkOptimizeLearnedResourceAwareCached adds the serving layer's
// signature-keyed prediction cache on top of the batched path.
func BenchmarkOptimizeLearnedResourceAwareCached(b *testing.B) {
	benchOptimizeLearned(b, NewPredictionCache())
}

// BenchmarkOptimizeLearnedResourceAwareInstrumented is the identical
// workload on a metrics-backed System: the always-on observability tier
// (optimize wall histogram, template counters, arbitration timers, batch
// costing timers) live on the hot path. CI gates the ratio of this to
// BenchmarkOptimizeLearnedResourceAware at <2% via benchjson -ratio.
func BenchmarkOptimizeLearnedResourceAwareInstrumented(b *testing.B) {
	sys := benchTrainedSystemCfg(b, SystemConfig{Seed: 5, Metrics: obs.NewRegistry()})
	benchOptimizeLearnedSys(b, sys, nil)
}

// scalarCoster hides the learned coster's batch methods while preserving
// the individual-model preference, forcing partition exploration down the
// operator-at-a-time pricing path. Note this understates the full refactor
// win: scalar predictions themselves now run through the pooled batch
// kernel (size-1 batches), so the only difference left is grid batching.
// The true pre-refactor scalar number (BenchmarkOptimizeLearnedUncached at
// commit 18a9fe6, ~280,500 ns/op) is recorded in BENCH_baseline.json.
type scalarCoster struct{ c *learned.Coster }

func (s scalarCoster) Name() string                            { return s.c.Name() }
func (s scalarCoster) OperatorCost(n *plan.Physical) float64   { return s.c.OperatorCost(n) }
func (s scalarCoster) IndividualCost(n *plan.Physical) float64 { return s.c.IndividualCost(n) }

// BenchmarkOptimizeLearnedResourceAwareScalar is the pre-refactor
// baseline: the same optimization with batch upgrades hidden, so every
// candidate is priced by a scalar model walk. The ratio of this to
// BenchmarkOptimizeLearnedResourceAware is the batched pipeline's win.
func BenchmarkOptimizeLearnedResourceAwareScalar(b *testing.B) {
	sys := benchTrainedSystem(b)
	q := benchQuery()
	sc := scalarCoster{c: &learned.Coster{
		Predictor: sys.Models(),
		Param:     2,
		Fallback:  costmodel.Default{},
	}}
	opt := &cascades.Optimizer{
		Catalog:       sys.Catalog(),
		Cost:          sc,
		MaxPartitions: exec.DefaultConfig(5).MaxPartitions,
		ResourceAware: true,
		Chooser:       &learned.AnalyticalChooser{Cost: sc},
		JobSeed:       7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Optimize(q); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParallelQueries is the multi-query workload BenchmarkOptimizeParallelJobs
// pushes through one shared search pool: distinct recurring shapes over the
// trained tenant's table (aggregations, joins, unions, top-n).
func benchParallelQueries() []*Query {
	clicks := func() *Query { return NewGet("clicks_2026_06_12", "clicks_") }
	return []*Query{
		benchQuery(),
		NewOutput(NewAggregate(NewSelect(clicks(), "market=eu"), "region")),
		NewOutput(NewSort(NewAggregate(clicks(), "user"), "user")),
		NewOutput(NewTopN(NewAggregate(NewSelect(clicks(), "recent"), "user"), 10, "score")),
		NewOutput(NewAggregate(NewJoin(NewSelect(clicks(), "market=us"), clicks(), "c.user=d.user", "user"), "region")),
		NewOutput(NewUnion(NewAggregate(NewSelect(clicks(), "market=us"), "user"), NewAggregate(NewSelect(clicks(), "market=eu"), "user"))),
		NewOutput(NewAggregate(NewProcess(clicks(), "extractFacts"), "user")),
		NewOutput(NewAggregate(NewSelect(clicks(), "device=mobile"), "user")),
	}
}

// BenchmarkOptimizeParallelJobs measures multi-query optimizer throughput:
// one iteration plans the whole workload through OptimizeAll, whose
// queries' group-optimization tasks share a single bounded worker pool.
// Sub-benchmarks pin the parallelism knob — par=1 runs the searches fully
// inline (the sequential baseline), par=4 fans them across four workers;
// the throughput ratio is the concurrent search's win and only shows on
// multi-core hardware (GOMAXPROCS caps the effective width). Plans are
// equivalence-tested against sequential search in TestParallelOptimize*.
func BenchmarkOptimizeParallelJobs(b *testing.B) {
	sys := benchTrainedSystem(b)
	queries := benchParallelQueries()
	coster := &learned.Coster{
		Predictor: sys.Models(),
		Param:     2,
		Fallback:  costmodel.Default{},
	}
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			opt := &cascades.Optimizer{
				Catalog:       sys.Catalog(),
				Cost:          coster,
				MaxPartitions: exec.DefaultConfig(5).MaxPartitions,
				ResourceAware: true,
				Chooser:       &learned.AnalyticalChooser{Cost: coster},
				JobSeed:       7,
				Parallelism:   par,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.OptimizeAll(queries); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
		})
	}
}

// BenchmarkOptimizeRecurringTemplate measures repeated optimization of one
// recurring job template, fresh (template cache disabled — every instance
// rebuilds and re-explores its memo) versus cached (instances after the
// first reuse the memo snapshot and re-run only costing/arbitration). The
// fresh/cached ns/op gap is the template cache's win; sub-benchmarks cover
// both coster kinds. Template-cached plans are equivalence-pinned against
// fresh ones in TestGoldenPlans and cascades' TestTemplateHitMatchesFresh.
func BenchmarkOptimizeRecurringTemplate(b *testing.B) {
	for _, mode := range []string{"fresh", "cached"} {
		for _, learned := range []bool{false, true} {
			coster := "default"
			if learned {
				coster = "learned"
			}
			b.Run(fmt.Sprintf("%s/%s", coster, mode), func(b *testing.B) {
				size := 0 // cached: default capacity
				if mode == "fresh" {
					size = -1 // disabled: every instance is a cold template
				}
				sys := NewSystem(SystemConfig{Seed: 5, TemplateCacheSize: size})
				sys.RegisterTable("clicks_2026_06_12", TableStats{Rows: 2e7, RowLength: 120})
				q := benchQuery()
				opts := RunOptions{Seed: 7, Param: 2, SkipLogging: true}
				if learned {
					ls := benchTrainedSystem(b)
					sys.SetModels(ls.Models())
					opts.UseLearnedModels = true
					opts.ResourceAware = true
					opts.Models = sys.Models()
				}
				// Each iteration is one recurring instance with its own seed
				// (fresh statistics drift), as production traffic would be.
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opts.Seed = int64(i % 16)
					if _, _, err := sys.Optimize(q, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(sys.TemplateStats().TemplateHits)/float64(b.N), "template-hit-ratio")
			})
		}
	}
}

// benchServeTenant builds a single-tenant service with a published model
// version (so the registry's cache is on the hot path).
func benchServeTenant(b *testing.B) (*Service, *Tenant) {
	b.Helper()
	svc := NewService(ServeConfig{})
	tn := svc.Tenant("bench")
	tn.System().RegisterTable("clicks_2026_06_12", TableStats{Rows: 2e7, RowLength: 120})
	q := benchQuery()
	for seed := int64(1); seed <= 30; seed++ {
		if _, err := tn.Run(q, RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			b.Fatal(err)
		}
	}
	// Retrain's internal flush barrier covers the runs above.
	if _, err := tn.Retrain(); err != nil {
		b.Fatal(err)
	}
	return svc, tn
}

// BenchmarkServeConcurrentRun measures multi-goroutine learned Run
// throughput through the serving layer (session lookup, version pinning,
// prediction cache, execution, telemetry ingestion skipped for stability).
func BenchmarkServeConcurrentRun(b *testing.B) {
	svc, tn := benchServeTenant(b)
	defer svc.Close()
	q := benchQuery()
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			seed := seq.Add(1) % 16 // recurring instances repeat
			opts := RunOptions{Seed: seed, Param: float64(seed%4) + 1,
				UseLearnedModels: true, SkipLogging: true}
			if _, err := tn.Run(q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeTenantLookup measures the sharded session map under
// parallel get-or-create traffic.
func BenchmarkServeTenantLookup(b *testing.B) {
	svc := NewService(ServeConfig{})
	defer svc.Close()
	names := [8]string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	for _, n := range names {
		svc.Tenant(n)
	}
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = svc.Tenant(names[seq.Add(1)%8])
		}
	})
}

// BenchmarkCardinalityAnnotation measures bottom-up stats annotation of a
// plan.
func BenchmarkCardinalityAnnotation(b *testing.B) {
	col := benchTelemetry(b)
	tr := workload.Generate(workload.Config{
		Clusters: 1, Days: 1, TemplatesPerCluster: 1,
		InstancesPerTemplatePerDay: 1, Seed: 9,
	})
	_ = col
	cat := tr.Catalogs[0]
	job := tr.Jobs[0]
	r := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}}
	out, err := r.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	plan := out.Jobs[0].Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cat.Annotate(plan, job.Seed, stats.Estimated); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming executor benchmarks (internal/exec) ---

// benchExecPlan optimizes a join+aggregate-heavy TPC-H query once, for
// executing repeatedly on either backend.
func benchExecPlan(b *testing.B, q int) *PhysicalPlan {
	b.Helper()
	cat := stats.NewCatalog(1)
	tpch.Register(cat, 1)
	o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
		MaxPartitions: 3000, JobSeed: int64(q)}
	res, err := o.Optimize(tpch.Queries()[q]())
	if err != nil {
		b.Fatal(err)
	}
	return res.Plan
}

// benchExecCfg pins MaxWorkers to 1: BenchmarkExecStreaming measures the
// single-pipeline engine (comparable across baseline records regardless of
// the runner's GOMAXPROCS); BenchmarkExecStreamingParallel below owns the
// width axis explicitly.
var benchExecCfg = exec.StreamConfig{MaxTableRows: 50000, BatchSize: 2048, MaxWorkers: 1}

// benchExecBackend re-executes the plan per iteration. A warm-up run first
// writes observed cardinalities back into the plan, so both backends size
// their scans identically and iterations are steady-state.
func benchExecBackend(b *testing.B, backend exec.Backend, q int) {
	b.Helper()
	p := benchExecPlan(b, q)
	if _, err := backend.Run(p, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := backend.Run(p, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.OutputRows == 0 {
			b.Fatal("benchmark query produced no rows")
		}
	}
}

// BenchmarkExecStreaming and BenchmarkExecMaterialized execute the same
// optimized TPC-H Q21 (supplier ⋈ lineitem ⋈ orders ⋈ nation feeding an
// aggregate and top-100) on the streaming batch executor and on the
// materialize-every-operator reference — the pipelining + buffer-reuse
// payoff in one pair of numbers: the reference writes every join's output
// to memory before the next operator reads it back, the streaming engine
// keeps one cache-resident batch moving through the whole pipeline.
func BenchmarkExecStreaming(b *testing.B) {
	benchExecBackend(b, exec.NewEngine(benchExecCfg), 21)
}

func BenchmarkExecMaterialized(b *testing.B) {
	benchExecBackend(b, exec.NewReference(benchExecCfg), 21)
}

// BenchmarkExecStreamingParallel runs the same Q21 pipeline at exchange
// width 1 and 4 — the intra-query parallelism payoff (morsel-driven scans,
// partitioned join builds and aggregates) isolated from everything else.
// On a multi-core runner w4 should beat w1 by well over the CI gate's
// 1.5×; on a single-core machine it degrades to roughly w1 plus exchange
// overhead, which is itself worth watching.
func BenchmarkExecStreamingParallel(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) {
			cfg := benchExecCfg
			cfg.MaxWorkers = w
			benchExecBackend(b, exec.NewEngine(cfg), 21)
		})
	}
}

// BenchmarkExecStreamingMixedTenants drives concurrent queries from two
// tenants (distinct scale factors, so distinct cached materializations)
// through one engine with intra-query parallelism on top — the worst case
// for the executor's process-wide shared state: the singleflight table
// cache, the batch pool and the metrics counters all under simultaneous
// load from every direction.
func BenchmarkExecStreamingMixedTenants(b *testing.B) {
	var plans []*PhysicalPlan
	for _, scale := range []float64{1, 2} {
		cat := stats.NewCatalog(uint64(scale))
		tpch.Register(cat, scale)
		for _, q := range []int{3, 18, 21} {
			o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
				MaxPartitions: 3000, JobSeed: int64(q)}
			res, err := o.Optimize(tpch.Queries()[q]())
			if err != nil {
				b.Fatal(err)
			}
			plans = append(plans, res.Plan)
		}
	}
	cfg := benchExecCfg
	cfg.MaxWorkers = 2
	eng := exec.NewEngine(cfg)
	kept := plans[:0]
	for _, p := range plans {
		res, err := eng.Run(p, nil) // warm caches, write ActCards back
		if err != nil {
			b.Fatal(err)
		}
		if res.OutputRows > 0 { // some tenants' queries are empty at this scale
			kept = append(kept, p)
		}
	}
	plans = kept
	if len(plans) < 2 {
		b.Fatal("mixed-tenant corpus collapsed to fewer than two plans")
	}
	var next atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			p := plans[next.Add(1)%int64(len(plans))]
			res, err := eng.Run(p.Clone(), nil) // clone: Run writes telemetry into the plan
			if err != nil {
				b.Fatal(err)
			}
			if res.OutputRows == 0 {
				b.Fatal("benchmark query produced no rows")
			}
		}
	})
}
