package cleo

// Benchmarks: one per paper table/figure (wrapping the experiment harness —
// run `go test -bench Table5 -v` to also see the rendered result with
// -benchtime 1x), plus micro-benchmarks of the core components (training,
// prediction, optimization, simulation).

import (
	"testing"

	"cleo/internal/costmodel"
	"cleo/internal/experiments"
	"cleo/internal/learned"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// benchExperiment runs one registered experiment per iteration at small
// scale. The shared lab is built once and memoized across benchmarks.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := experiments.Find(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := e.Run(experiments.ScaleSmall)
		if err != nil {
			b.Fatal(err)
		}
		if testing.Verbose() && i == 0 {
			b.Log("\n" + res.Render())
		}
	}
}

func BenchmarkFig01HandcraftedModels(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig02RecurringJob(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig03AdhocShare(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkTable01LossFunctions(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable04MLAlgorithms(b *testing.B)    { benchExperiment(b, "table4") }
func BenchmarkTable05ModelLadder(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable06MetaLearners(b *testing.B)    { benchExperiment(b, "table6") }
func BenchmarkFig05FeatureWeights(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig06FeatureWeights(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig07ErrorBands(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig08cModelLookups(b *testing.B)     { benchExperiment(b, "fig8c") }
func BenchmarkFig09WorkloadSummary(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10WorkloadChange(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11PerFamilyCV(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkTable07AdhocBreakdown(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable08PerCluster(b *testing.B)      { benchExperiment(b, "table8") }
func BenchmarkFig12AllJobsCDF(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13AdhocCDF(b *testing.B)          { benchExperiment(b, "fig13") }
func BenchmarkFig14Robustness(b *testing.B)        { benchExperiment(b, "fig14") }
func BenchmarkFig15CardLearner(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16JoinContexts(b *testing.B)      { benchExperiment(b, "fig16") }
func BenchmarkFig17PartitionSampling(b *testing.B) { benchExperiment(b, "fig17") }
func BenchmarkFig18FeatureAblation(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkFig19ProductionJobs(b *testing.B)    { benchExperiment(b, "fig19") }
func BenchmarkFig20TPCH(b *testing.B)              { benchExperiment(b, "fig20") }
func BenchmarkAblationStrawman(b *testing.B)       { benchExperiment(b, "ablation-strawman") }

// --- Component micro-benchmarks ---

// benchTelemetry builds a small executed trace once.
func benchTelemetry(b *testing.B) *telemetry.Collected {
	b.Helper()
	tr := workload.Generate(workload.Config{
		Clusters: 1, Days: 2, TemplatesPerCluster: 8,
		InstancesPerTemplatePerDay: 3, AdHocFraction: 0.1, Seed: 5,
	})
	r := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}, Jitter: true}
	col, err := r.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	return col
}

// BenchmarkOptimizeJob measures end-to-end planning of one production-style
// job under the default cost model.
func BenchmarkOptimizeJob(b *testing.B) {
	tr := workload.Generate(workload.Config{
		Clusters: 1, Days: 1, TemplatesPerCluster: 1,
		InstancesPerTemplatePerDay: 1, Seed: 9,
	})
	job := tr.Jobs[0]
	r := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := (&telemetry.Runner{
			Trace:    &workload.Trace{Jobs: []workload.Job{job}, Catalogs: tr.Catalogs},
			Clusters: nil, Cost: r.Cost,
		}).RunAll()
		if err != nil {
			b.Fatal(err)
		}
		_ = col
	}
}

// BenchmarkTrainModels measures the full training pass (four families +
// combined) over a day of telemetry.
func BenchmarkTrainModels(b *testing.B) {
	col := benchTelemetry(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := learned.TrainByDay(col.Records, 1, learned.DefaultTrainConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictOperator measures one combined-model cost prediction —
// the per-operator overhead CLEO adds inside Optimize Inputs.
func BenchmarkPredictOperator(b *testing.B) {
	col := benchTelemetry(b)
	pr, err := learned.TrainByDay(col.Records, 1, learned.DefaultTrainConfig())
	if err != nil {
		b.Fatal(err)
	}
	rec := &col.Records[len(col.Records)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pr.PredictRecord(rec)
	}
}

// BenchmarkSignature measures the four-signature computation per operator.
func BenchmarkSignature(b *testing.B) {
	col := benchTelemetry(b)
	p := col.Jobs[0].Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Walk(func(n *PhysicalPlan) { _ = n })
		_ = p.Count()
	}
}

// BenchmarkCardinalityAnnotation measures bottom-up stats annotation of a
// plan.
func BenchmarkCardinalityAnnotation(b *testing.B) {
	col := benchTelemetry(b)
	tr := workload.Generate(workload.Config{
		Clusters: 1, Days: 1, TemplatesPerCluster: 1,
		InstancesPerTemplatePerDay: 1, Seed: 9,
	})
	_ = col
	cat := tr.Catalogs[0]
	job := tr.Jobs[0]
	r := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}}
	out, err := r.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	plan := out.Jobs[0].Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cat.Annotate(plan, job.Seed, stats.Estimated); err != nil {
			b.Fatal(err)
		}
	}
}
