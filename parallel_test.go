package cleo

// End-to-end pinning of the concurrent Cascades search: parallel and
// sequential searches must return bit-identical plans and costs across the
// TPC-H-style example workload, under both the hand-crafted and the
// learned cost models.

import (
	"fmt"
	"testing"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/learned"
)

// TestParallelOptimizeMatchesSequentialTPCH plans all 22 TPC-H queries
// with the sequential search (Parallelism 1) and the parallel search
// (Parallelism 8) and requires bit-identical plans, costs, look-up counts
// and memo sizes, resource-aware and not.
func TestParallelOptimizeMatchesSequentialTPCH(t *testing.T) {
	sys := NewSystem(SystemConfig{Seed: 3})
	sys.RegisterTPCH(1)
	mk := func(par int, ra bool) *cascades.Optimizer {
		o := &cascades.Optimizer{
			Catalog:       sys.Catalog(),
			Cost:          costmodel.Tuned{},
			MaxPartitions: exec.DefaultConfig(3).MaxPartitions,
			JobSeed:       11,
			Parallelism:   par,
		}
		if ra {
			o.ResourceAware = true
			o.Chooser = &cascades.SamplingChooser{Cost: o.Cost, Strategy: cascades.Geometric, SkipCoefficient: 2}
		}
		return o
	}
	for n := 1; n <= 22; n++ {
		q, err := TPCHQuery(n)
		if err != nil {
			t.Fatal(err)
		}
		for _, ra := range []bool{false, true} {
			t.Run(fmt.Sprintf("Q%d/ra=%v", n, ra), func(t *testing.T) {
				seq, err := mk(1, ra).Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				par, err := mk(8, ra).Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				if seq.Plan.String() != par.Plan.String() {
					t.Fatalf("plans differ:\nseq: %s\npar: %s", seq.Plan, par.Plan)
				}
				if seq.Cost != par.Cost {
					t.Fatalf("costs differ: seq %v, par %v", seq.Cost, par.Cost)
				}
				if seq.ModelLookups != par.ModelLookups || seq.MemoGroups != par.MemoGroups {
					t.Fatalf("diagnostics differ: lookups %d/%d, groups %d/%d",
						seq.ModelLookups, par.ModelLookups, seq.MemoGroups, par.MemoGroups)
				}
			})
		}
	}
}

// TestParallelOptimizeLearnedMatchesSequential repeats the equivalence
// check under the trained learned coster (the batched in-search costing
// path) and additionally pins OptimizeAll against per-query Optimize.
func TestParallelOptimizeLearnedMatchesSequential(t *testing.T) {
	sys := NewSystem(SystemConfig{Seed: 5})
	sys.RegisterTable("clicks_2026_06_12", TableStats{Rows: 2e7, RowLength: 120})
	q := benchQuery()
	for seed := int64(1); seed <= 30; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	coster := &learned.Coster{
		Predictor: sys.Models(),
		Param:     2,
		Fallback:  costmodel.Default{},
	}
	mk := func(par int) *cascades.Optimizer {
		return &cascades.Optimizer{
			Catalog:       sys.Catalog(),
			Cost:          coster,
			MaxPartitions: exec.DefaultConfig(5).MaxPartitions,
			ResourceAware: true,
			Chooser:       &learned.AnalyticalChooser{Cost: coster},
			JobSeed:       7,
			Parallelism:   par,
		}
	}
	queries := benchParallelQueries()
	seqBatch, err := mk(1).OptimizeAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	parBatch, err := mk(4).OptimizeAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, query := range queries {
		single, err := mk(4).Optimize(query)
		if err != nil {
			t.Fatal(err)
		}
		if seqBatch[i].Plan.String() != parBatch[i].Plan.String() {
			t.Fatalf("query %d: plans differ:\nseq: %s\npar: %s", i, seqBatch[i].Plan, parBatch[i].Plan)
		}
		if seqBatch[i].Cost != parBatch[i].Cost {
			t.Fatalf("query %d: costs differ: %v vs %v", i, seqBatch[i].Cost, parBatch[i].Cost)
		}
		if single.Plan.String() != seqBatch[i].Plan.String() || single.Cost != seqBatch[i].Cost {
			t.Fatalf("query %d: OptimizeAll diverges from Optimize", i)
		}
	}
}
