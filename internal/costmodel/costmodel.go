// Package costmodel implements the hand-crafted cost models the paper
// evaluates against: SCOPE's default model and the manually-tuned variant
// available "under a flag" (Section 2.4). Both combine estimated statistics
// with fixed constants; neither knows the cluster's hidden complexity
// factors, pipeline effects or key skew, which is why their estimates
// diverge from actual runtimes by orders of magnitude.
package costmodel

import (
	"math"

	"cleo/internal/plan"
)

// Model predicts the exclusive latency (seconds) of one physical operator
// from estimated statistics. Implementations must be safe for concurrent
// use.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// OperatorCost returns the predicted exclusive cost of n using the
	// estimated cardinalities in n.Stats and n.Partitions.
	OperatorCost(n *plan.Physical) float64
}

// PlanCost sums m's exclusive operator costs over the plan, the way
// Cascades' Optimize Inputs task combines local costs with children costs.
func PlanCost(m Model, root *plan.Physical) float64 {
	var sum float64
	root.Walk(func(n *plan.Physical) {
		c := m.OperatorCost(n)
		n.ExclusiveCostEst = c
		sum += c
	})
	return sum
}

// Default is SCOPE's default cost model: one generic processing rate for
// all CPU operators, bandwidth terms for IO and shuffle, no
// context-sensitivity, no per-partition overheads.
type Default struct{}

// Name implements Model.
func (Default) Name() string { return "Default" }

// genericRate is the default model's single CPU processing rate (rows/s).
const genericRate = 1.0e6

// OperatorCost implements Model.
func (Default) OperatorCost(n *plan.Physical) float64 {
	p := float64(n.Partitions)
	if p < 1 {
		p = 1
	}
	in := n.InputCardinality(true)
	out := n.Stats.EstCard
	rowLen := n.Stats.RowLength
	if rowLen <= 0 {
		rowLen = 50
	}

	switch n.Op {
	case plan.PExtract:
		return out * rowLen / 100e6 / p
	case plan.POutput:
		return out * rowLen / 100e6 / p
	case plan.PExchange:
		return in * rowLen / 100e6 / p
	case plan.PSort:
		per := in/p + 2
		return in * math.Log2(per) / genericRate / 20 / p
	case plan.PHashJoin:
		probe, build := estChildCards(n)
		return (probe + 1.5*build) / genericRate / p
	case plan.PMergeJoin:
		probe, build := estChildCards(n)
		return (probe + build) / 1.8e6 / p
	case plan.PHashAggregate:
		return in / 0.9e6 / p
	case plan.PStreamAggregate:
		return in / 2.5e6 / p
	case plan.PPartialAggregate:
		return in / 1.8e6 / p
	default:
		return in / genericRate / p
	}
}

func estChildCards(n *plan.Physical) (probe, build float64) {
	if len(n.Children) == 0 {
		return 0, 0
	}
	probe = n.Children[0].Stats.EstCard
	if len(n.Children) > 1 {
		build = n.Children[1].Stats.EstCard
	} else {
		build = probe
	}
	return probe, build
}

// Tuned is the manually-improved model: per-operator rates closer to the
// hardware, an exchange connection-overhead term, and a sort
// materialization penalty. It still misses hidden data complexity, UDF
// costs and skew, so it improves on Default only modestly — matching the
// 0.04 → 0.10 correlation gain the paper reports.
type Tuned struct{}

// Name implements Model.
func (Tuned) Name() string { return "Manually-Tuned" }

// OperatorCost implements Model.
func (Tuned) OperatorCost(n *plan.Physical) float64 {
	p := float64(n.Partitions)
	if p < 1 {
		p = 1
	}
	in := n.InputCardinality(true)
	out := n.Stats.EstCard
	rowLen := n.Stats.RowLength
	if rowLen <= 0 {
		rowLen = 50
	}

	var cost float64
	switch n.Op {
	case plan.PExtract:
		cost = out*rowLen/85e6/p + 0.002*p
	case plan.POutput:
		cost = out * rowLen / 75e6 / p
	case plan.PExchange:
		cost = in*rowLen/65e6/p + 0.01*p
	case plan.PFilter:
		cost = in / 2.0e6 / p
	case plan.PProject:
		cost = in / 3.5e6 / p
	case plan.PSort:
		per := in/p + 2
		cost = in * math.Log2(per) / 1.3e6 / math.Log2(1e6) / p * 1.2
	case plan.PHashJoin:
		probe, build := tunedChildCards(n)
		cost = (probe + 1.4*build) / 1.6e6 / p
	case plan.PMergeJoin:
		probe, build := tunedChildCards(n)
		cost = (probe + build) / 2.4e6 / p
	case plan.PHashAggregate:
		cost = in / 1.2e6 / p
	case plan.PStreamAggregate:
		cost = in / 2.8e6 / p
	case plan.PPartialAggregate:
		cost = in / 2.0e6 / p
	case plan.PTopN:
		cost = in / 2.4e6 / p
	case plan.PUnionAll:
		cost = in / 4.5e6 / p
	case plan.PProcess:
		cost = in / 1.0e6 / p // UDFs assumed to cost one generic pass
	default:
		cost = in / 1.0e6 / p
	}
	return cost + 0.05
}

func tunedChildCards(n *plan.Physical) (probe, build float64) {
	if len(n.Children) == 0 {
		return 0, 0
	}
	probe = n.Children[0].Stats.EstCard
	if len(n.Children) > 1 {
		build = n.Children[1].Stats.EstCard
	} else {
		build = probe
	}
	return probe, build
}

// DerivePartitions is the default partition-count heuristic partitioning
// operators use (Section 5.2): size the stage so each partition processes
// about targetBytesPerPartition, clamped to the cluster cap. It looks only
// at the operator's local estimated statistics — the locally-optimal
// behaviour the paper's resource-aware planning replaces. The small target
// reproduces SCOPE's tendency to over-partition and scale out (Section
// 6.7), which is exactly the headroom resource-aware planning recovers.
func DerivePartitions(n *plan.Physical, maxPartitions int) int {
	const targetBytesPerPartition = 64 << 20
	rowLen := n.Stats.RowLength
	if rowLen <= 0 {
		rowLen = 50
	}
	card := n.Stats.EstCard
	if n.Op == plan.PExchange {
		card = n.InputCardinality(true)
	}
	p := int(math.Ceil(card * rowLen / targetBytesPerPartition))
	if p < 1 {
		p = 1
	}
	if maxPartitions > 0 && p > maxPartitions {
		p = maxPartitions
	}
	return p
}
