package costmodel

import (
	"testing"

	"cleo/internal/plan"
)

func annotated(op plan.PhysicalOp, card float64, partitions int) *plan.Physical {
	child := plan.NewPhysical(plan.PExtract)
	child.Partitions = partitions
	child.Stats = plan.NodeStats{EstCard: card, ActCard: card, RowLength: 100}
	n := plan.NewPhysical(op, child)
	n.Partitions = partitions
	n.Stats = plan.NodeStats{EstCard: card / 2, ActCard: card / 2, RowLength: 100}
	return n
}

func TestModelsReturnPositiveCosts(t *testing.T) {
	models := []Model{Default{}, Tuned{}}
	for _, m := range models {
		for _, op := range plan.AllPhysicalOps() {
			n := annotated(op, 1e6, 8)
			if c := m.OperatorCost(n); c < 0 {
				t.Errorf("%s(%v) = %v, want >= 0", m.Name(), op, c)
			}
		}
	}
}

func TestCostDecreasesWithPartitionsForDefault(t *testing.T) {
	m := Default{}
	lo := m.OperatorCost(annotated(plan.PFilter, 1e7, 1))
	hi := m.OperatorCost(annotated(plan.PFilter, 1e7, 100))
	if hi >= lo {
		t.Fatalf("default model: 100 partitions (%v) should cost less than 1 (%v)", hi, lo)
	}
}

func TestTunedHasPartitionOverheadOnExchange(t *testing.T) {
	m := Tuned{}
	small := m.OperatorCost(annotated(plan.PExchange, 1e3, 10))
	big := m.OperatorCost(annotated(plan.PExchange, 1e3, 2000))
	if big <= small {
		t.Fatalf("tuned exchange should penalize huge partition counts: %v <= %v", big, small)
	}
}

func TestPlanCostSumsAndAnnotates(t *testing.T) {
	n := annotated(plan.PFilter, 1e6, 4)
	total := PlanCost(Default{}, n)
	var sum float64
	n.Walk(func(x *plan.Physical) {
		if x.ExclusiveCostEst < 0 {
			t.Errorf("%v est cost %v", x.Op, x.ExclusiveCostEst)
		}
		sum += x.ExclusiveCostEst
	})
	if total != sum {
		t.Fatalf("PlanCost %v != sum %v", total, sum)
	}
}

func TestDerivePartitions(t *testing.T) {
	n := plan.NewPhysical(plan.PExtract)
	n.Stats = plan.NodeStats{EstCard: 1e9, RowLength: 100} // 100 GB
	p := DerivePartitions(n, 3000)
	if p < 100 || p > 3000 {
		t.Fatalf("partitions = %d for 100GB", p)
	}
	// Tiny input: 1 partition.
	n.Stats = plan.NodeStats{EstCard: 10, RowLength: 100}
	if p := DerivePartitions(n, 3000); p != 1 {
		t.Fatalf("tiny input partitions = %d, want 1", p)
	}
	// Cap respected.
	n.Stats = plan.NodeStats{EstCard: 1e12, RowLength: 1000}
	if p := DerivePartitions(n, 500); p != 500 {
		t.Fatalf("cap: partitions = %d, want 500", p)
	}
}

func TestDerivePartitionsUsesInputForExchange(t *testing.T) {
	child := plan.NewPhysical(plan.PExtract)
	child.Stats = plan.NodeStats{EstCard: 1e9, RowLength: 100}
	x := plan.NewPhysical(plan.PExchange, child)
	x.Stats = plan.NodeStats{EstCard: 1, RowLength: 100} // output tiny
	if p := DerivePartitions(x, 3000); p < 100 {
		t.Fatalf("exchange should size by input: %d", p)
	}
}
