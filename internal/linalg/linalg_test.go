package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil) = %v, want 0", got)
	}
}

// dotScalar is the straightforward sequential reference loop the unrolled
// kernel is checked against.
func dotScalar(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// TestDotMatchesScalarLoop checks the 4-way unrolled kernel against the
// scalar reference across every tail length and randomized magnitudes. The
// unrolled reduction associates differently, so equality is relative, not
// bitwise.
func TestDotMatchesScalarLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n <= 67; n++ {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
			b[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
		got := Dot(a, b)
		want := dotScalar(a, b)
		tol := 1e-12 * (math.Abs(want) + 1)
		if !almostEq(got, want, tol) {
			t.Fatalf("n=%d: Dot = %v, scalar = %v", n, got, want)
		}
	}
}

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{14, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = float64(i%7) * 0.5
				y[i] = float64(i%5) * 1.5
			}
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Dot(x, y)
			}
			_ = sink
		})
	}
}

func BenchmarkMulVecInto(b *testing.B) {
	m := NewMatrix(30, 14)
	for i := range m.Data {
		m.Data[i] = float64(i%9) * 0.25
	}
	x := make([]float64, 14)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	out := make([]float64, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecInto(x, out)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v, want [7 9]", y)
	}
}

func TestScale(t *testing.T) {
	x := []float64{1, -2}
	Scale(-3, x)
	if x[0] != -3 || x[1] != 6 {
		t.Fatalf("Scale = %v", x)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm1(x); got != 7 {
		t.Fatalf("Norm1 = %v, want 7", got)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(x); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(x); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should report 0")
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ z, g, want float64 }{
		{3, 1, 2},
		{-3, 1, -2},
		{0.5, 1, 0},
		{-0.5, 1, 0},
		{1, 1, 0},
	}
	for _, c := range cases {
		if got := SoftThreshold(c.z, c.g); got != c.want {
			t.Errorf("SoftThreshold(%v,%v) = %v, want %v", c.z, c.g, got, c.want)
		}
	}
}

// Property: soft-thresholding shrinks magnitude and never flips sign.
func TestSoftThresholdProperties(t *testing.T) {
	f := func(z, g float64) bool {
		g = math.Abs(math.Mod(g, 1e6))
		z = math.Mod(z, 1e6)
		s := SoftThreshold(z, g)
		if math.Abs(s) > math.Abs(z)+1e-12 {
			return false
		}
		return s == 0 || (s > 0) == (z > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 1) != 4 {
		t.Fatalf("At(1,1) = %v", m.At(1, 1))
	}
	m.Set(1, 1, 10)
	if m.At(1, 1) != 10 {
		t.Fatal("Set failed")
	}
	col := m.Col(0)
	if col[0] != 1 || col[1] != 3 || col[2] != 5 {
		t.Fatalf("Col = %v", col)
	}
	clone := m.Clone()
	clone.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone aliases original")
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestColMeansStdDevs(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 10}})
	means := m.ColMeans()
	if means[0] != 2 || means[1] != 10 {
		t.Fatalf("ColMeans = %v", means)
	}
	stds := m.ColStdDevs()
	if !almostEq(stds[0], 1, 1e-12) || stds[1] != 0 {
		t.Fatalf("ColStdDevs = %v", stds)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {1}})
}

func TestEmptyMatrix(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty dims = %dx%d", m.Rows, m.Cols)
	}
	if got := m.ColMeans(); len(got) != 0 {
		t.Fatalf("ColMeans on empty = %v", got)
	}
}
