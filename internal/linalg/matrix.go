package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dims %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// MulVec computes m · x and returns a freshly allocated result vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecInto(x, out)
	return out
}

// MulVecInto computes m · x into out without allocating. out must have
// length m.Rows; the batched prediction kernels reuse one buffer across
// many calls. Each row product goes through the unrolled Dot kernel.
func (m *Matrix) MulVecInto(x, out []float64) {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with vec %d", m.Rows, m.Cols, len(x)))
	}
	if len(out) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecInto out length %d, want %d", len(out), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
}

// RowViews returns per-row views (not copies) of m, the [][]float64 shape
// the batch predictors consume.
func (m *Matrix) RowViews() [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// ColMeans returns per-column means.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}

// ColStdDevs returns per-column population standard deviations; columns with
// zero variance report 0.
func (m *Matrix) ColStdDevs() []float64 {
	means := m.ColMeans()
	stds := make([]float64, m.Cols)
	if m.Rows < 2 {
		return stds
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			d := v - means[j]
			stds[j] += d * d
		}
	}
	for j := range stds {
		stds[j] = math.Sqrt(stds[j] / float64(m.Rows))
	}
	return stds
}
