// Package linalg provides the small dense linear-algebra kernel used by the
// machine-learning packages. It is deliberately minimal: vectors are plain
// []float64 slices and matrices are row-major, which keeps the learners
// allocation-friendly and easy to audit.
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b. It panics if lengths differ,
// since a length mismatch is always a programming error in this codebase.
//
// The loop is 4-way unrolled into independent accumulators so the CPU can
// overlap the multiply-adds (the scalar loop chains every add through one
// register); this is the kernel behind the elastic-net family models and
// the matrix-vector product (MulVecInto) the MLP batch predictor runs.
// Note the four-accumulator reduction associates differently from a
// strictly sequential sum, so results may differ from the scalar loop in
// the last few ulps — callers needing bit-stability get it from Dot being
// deterministic for fixed inputs, not from a particular association.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// elements.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SoftThreshold returns the soft-thresholding operator S(z, gamma) used by
// coordinate-descent lasso/elastic-net solvers:
//
//	S(z, g) = sign(z) * max(|z|-g, 0)
func SoftThreshold(z, gamma float64) float64 {
	switch {
	case z > gamma:
		return z - gamma
	case z < -gamma:
		return z + gamma
	default:
		return 0
	}
}
