package serve

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cleo/internal/engine"
	"cleo/internal/exec"
	"cleo/internal/obs"
	"cleo/internal/persist"
)

// Config configures a Service.
type Config struct {
	// SeedOf derives the simulated-cluster seed for a new tenant's System
	// (default: FNV-1a of the tenant name, so distinct tenants get
	// distinct hidden hardware/data factors).
	SeedOf func(name string) uint64
	// NewSystem, when non-nil, fully overrides System construction for
	// new tenants (takes precedence over SeedOf).
	NewSystem func(name string) *engine.System
	// RetrainThreshold is the number of new telemetry records since the
	// last published version that triggers a background retrain; 0
	// disables the background loop (explicit Retrain still works).
	RetrainThreshold int
	// IngestBuffer is the per-tenant telemetry channel capacity in
	// batches (default 128).
	IngestBuffer int
	// Parallelism bounds each tenant's optimizer search parallelism
	// (cascades worker-pool width). The serving default is 1 — the service
	// already parallelizes across concurrent requests, and per-request
	// pools of GOMAXPROCS width would oversubscribe the machine by the
	// in-flight request count; raise it deliberately for tenants whose
	// single-query latency matters more than aggregate throughput.
	// Ignored when NewSystem overrides construction — configure the
	// System directly there.
	Parallelism int
	// TemplateCacheSize bounds each tenant's recurring-job memo-template
	// cache (0 = default capacity, negative disables; see
	// engine.SystemConfig.TemplateCacheSize). Recurring instances of the
	// same logical plan reuse the explored memo and re-run only costing,
	// with hits/misses surfaced per tenant in /v1/stats. Ignored when
	// NewSystem overrides construction.
	TemplateCacheSize int
	// StreamingExec runs every tenant's queries on the in-process
	// streaming vectorized executor instead of the simulated cluster, so
	// telemetry (and thus retrained models) reflects measured wall-clock
	// operator times. Ignored when NewSystem overrides construction.
	StreamingExec bool
	// ExecWorkers caps the streaming executor's per-stage pipeline width
	// (exchange fan-out and morsel-scan instances) for every tenant.
	// 0 follows Parallelism — one knob then governs search and execution
	// width together; set it to give queries intra-query parallelism
	// without widening optimizer search (or vice versa). Meaningful only
	// with StreamingExec; ignored when NewSystem overrides construction.
	ExecWorkers int
	// Coalesce collapses identical in-flight optimize-mode requests into
	// one search per tenant: concurrent duplicates (same plan signature,
	// params, model version, stats epoch) wait for the first request's
	// optimization and share its bit-identical result. Runs and traced
	// requests never coalesce. Counted per tenant in /v1/stats
	// (coalesced / coalesce_leaders) and in cleo_cluster_coalesced_total.
	Coalesce bool
	// StateDir, when set, makes tenant state durable: published model
	// versions are snapshotted there and ingested telemetry is journaled
	// before it reaches the in-memory log, and NewService recovers every
	// tenant found under the directory — latest model version live (same
	// id), pending telemetry replayed — so a restarted server serves
	// learned-cost plans on its first request. Empty disables persistence.
	StateDir string
	// Fsync syncs the telemetry journal on every append (model snapshots
	// always sync). Off by default: journal-tail durability is traded for
	// ingestion throughput, exactly like a database WAL without fsync.
	Fsync bool
	// RetainSnapshots caps the snapshots kept per tenant (0 = keep all).
	RetainSnapshots int
	// Logf receives persistence warnings and recovery notices rendered as
	// plain lines — the legacy printf-style hook, kept so existing callers
	// and tests work unchanged. Ignored when Logger is set.
	Logf func(format string, args ...any)
	// Logger is the service's structured logger. Every record carries the
	// tenant (and, on request paths, route and trace id) as attributes.
	// Defaults to Logf bridged into slog, else slog.Default().
	Logger *slog.Logger
	// Metrics, when non-nil, turns on the observability layer: HTTP
	// middleware, per-tenant derived gauges, and the engine / persistence
	// instruments all register here, and NewHandler mounts GET /metrics.
	// One registry is shared across tenants (metrics aggregate; per-tenant
	// series carry a tenant label).
	Metrics *obs.Registry
	// SlowQuery, when positive, logs any /v1/query request slower than the
	// threshold at Warn level with tenant, mode, duration and trace id.
	SlowQuery time.Duration
}

// sessionShards sizes the sharded session map; tenants hash across shards
// so lookups under concurrent traffic do not serialize on one lock.
const sessionShards = 16

type tenantShard struct {
	mu sync.RWMutex
	m  map[string]*Tenant
}

// Service is the multi-tenant optimizer service: a sharded session map of
// named Tenants, each a System plus model registry plus ingestion
// pipeline. All methods are safe for concurrent use.
type Service struct {
	cfg     Config
	log     *slog.Logger
	obs     *serviceObs      // nil without Config.Metrics
	persist *persist.Manager // nil without a state directory
	shards  [sessionShards]tenantShard

	// onPublish is the cluster layer's replication hook, fired after every
	// locally trained publish; clusterInfo augments the /v1/stats response
	// with cluster state. Both are registered after construction
	// (OnPublish / SetClusterInfo) and read atomically on hot paths.
	onPublish   atomic.Pointer[func(*Tenant, *ModelVersion)]
	clusterInfo atomic.Pointer[func() any]

	closeOnce sync.Once
}

// OnPublish registers fn to run after every locally trained model publish
// (replica installs do not re-fire it). The cluster layer uses this as its
// replication trigger; fn must not block — publish runs on the retraining
// path.
func (s *Service) OnPublish(fn func(t *Tenant, v *ModelVersion)) {
	s.onPublish.Store(&fn)
}

// SetClusterInfo registers a provider of cluster-level state; when set,
// the all-tenants /v1/stats response wraps the tenant array together with
// this value.
func (s *Service) SetClusterInfo(fn func() any) {
	s.clusterInfo.Store(&fn)
}

// notifyPublish is handed to every tenant as its publish callback; it
// forwards to whatever hook is currently registered.
func (s *Service) notifyPublish(t *Tenant, v *ModelVersion) {
	if fn := s.onPublish.Load(); fn != nil {
		(*fn)(t, v)
	}
}

// NewService builds a Service. With Config.StateDir set it also runs
// crash recovery: every tenant with state on disk is brought up warm
// before the first request can reach it.
func NewService(cfg Config) *Service {
	s := &Service{cfg: cfg, log: resolveLogger(cfg), obs: newServiceObs(cfg.Metrics)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*Tenant)
	}
	if cfg.StateDir != "" {
		mgr, err := persist.NewManager(persist.Config{
			Dir:     cfg.StateDir,
			Fsync:   cfg.Fsync,
			Retain:  cfg.RetainSnapshots,
			Logf:    s.warnf,
			Metrics: cfg.Metrics,
		})
		if err != nil {
			// Degrade, never crash: the service still serves, just cold.
			s.log.Warn("serve: persistence disabled", "err", err)
		} else {
			s.persist = mgr
			s.recoverTenants()
		}
	}
	return s
}

// warnf adapts the persist layer's printf-style warning hook onto the
// service's structured logger.
func (s *Service) warnf(format string, args ...any) {
	s.log.Warn(fmt.Sprintf(format, args...))
}

// recoverTenants warms up every tenant with durable state: Tenant()
// attaches the on-disk state during construction, which restores the
// latest snapshot and replays the journal.
func (s *Service) recoverTenants() {
	names, err := s.persist.TenantNames()
	if err != nil {
		s.log.Warn("serve: enumerating tenant state", "err", err)
		return
	}
	for _, name := range names {
		s.Tenant(name)
	}
}

// PersistEnabled reports whether the service runs with a state directory.
func (s *Service) PersistEnabled() bool { return s.persist != nil }

// shard picks the session shard by an inline FNV-1a over the name (no
// allocation on the per-request lookup path).
func (s *Service) shard(name string) *tenantShard {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &s.shards[h%sessionShards]
}

// Tenant returns the named tenant, creating it on first use.
func (s *Service) Tenant(name string) *Tenant {
	sh := s.shard(name)
	sh.mu.RLock()
	t := sh.m[name]
	sh.mu.RUnlock()
	if t != nil {
		return t
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t := sh.m[name]; t != nil {
		return t
	}
	// Opening durable state (and recovering from it, inside newTenant)
	// does disk I/O under the shard lock. That is deliberate: creation
	// must be atomic per name, startup recovery already warms every
	// on-disk tenant before traffic arrives, so a first-touch creation
	// here only ever touches an empty state directory (mkdir + empty
	// journal) — there is no large journal to scan while others wait.
	var state *persist.TenantState
	if s.persist != nil {
		var err error
		if state, err = s.persist.Tenant(name); err != nil {
			// The tenant still serves, just without durability.
			s.log.Warn("serve: tenant persistence disabled", "tenant", name, "err", err)
			state = nil
		}
	}
	t = newTenant(name, s.newSystem(name), s.cfg.RetrainThreshold, s.cfg.IngestBuffer,
		state, s.log, s.obs, s.cfg.Coalesce, s.notifyPublish)
	s.obs.registerTenantGauges(t)
	sh.m[name] = t
	return t
}

func (s *Service) newSystem(name string) *engine.System {
	if s.cfg.NewSystem != nil {
		return s.cfg.NewSystem(name)
	}
	seedOf := s.cfg.SeedOf
	if seedOf == nil {
		seedOf = func(name string) uint64 {
			h := fnv.New64a()
			h.Write([]byte(name))
			return h.Sum64()
		}
	}
	par := s.cfg.Parallelism
	if par <= 0 {
		par = 1 // request-level concurrency is the serving default
	}
	sysCfg := engine.SystemConfig{
		Seed:              seedOf(name),
		Parallelism:       par,
		TemplateCacheSize: s.cfg.TemplateCacheSize,
		StreamingExec:     s.cfg.StreamingExec,
		Metrics:           s.cfg.Metrics,
	}
	if s.cfg.ExecWorkers > 0 {
		sysCfg.Stream = &exec.StreamConfig{MaxWorkers: s.cfg.ExecWorkers}
	}
	return engine.NewSystem(sysCfg)
}

// Lookup returns the named tenant without creating it.
func (s *Service) Lookup(name string) (*Tenant, bool) {
	sh := s.shard(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	t, ok := sh.m[name]
	return t, ok
}

// TenantNames lists the live tenants, sorted.
func (s *Service) TenantNames() []string {
	var names []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name := range sh.m {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(names)
	return names
}

// Stats snapshots every tenant's serving counters, sorted by tenant name.
func (s *Service) Stats() []TenantStats {
	names := s.TenantNames()
	out := make([]TenantStats, 0, len(names))
	for _, name := range names {
		if t, ok := s.Lookup(name); ok {
			out = append(out, t.Stats())
		}
	}
	return out
}

// Close drains every tenant's ingestion pipeline and waits for in-flight
// background retrains. The service must not be used afterwards.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		for i := range s.shards {
			sh := &s.shards[i]
			sh.mu.Lock()
			for _, t := range sh.m {
				t.close()
			}
			sh.mu.Unlock()
		}
	})
}
