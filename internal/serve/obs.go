package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"cleo/internal/obs"
)

// serviceObs bundles the serving layer's observability state: the shared
// registry plus the service-wide instruments resolved once at startup.
// A nil *serviceObs (no Config.Metrics) disables every hook.
type serviceObs struct {
	reg              *obs.Registry
	inflight         *obs.Gauge
	recoveredTenants *obs.Counter
	retrainSeconds   *obs.Histogram
	coalesced        *obs.Counter
}

func newServiceObs(r *obs.Registry) *serviceObs {
	if r == nil {
		return nil
	}
	return &serviceObs{
		reg: r,
		inflight: r.Gauge("cleo_http_inflight_requests",
			"HTTP requests currently being served."),
		recoveredTenants: r.Counter("cleo_recovered_tenants_total",
			"Tenants restored from durable state (snapshot or journal) at startup."),
		// Same metric name as the engine's Retrain timer: tenant retrains
		// go through the serving pipeline, not engine.Retrain, but both
		// paths should land in one series.
		retrainSeconds: r.Histogram("cleo_retrain_seconds",
			"Model training duration per retrain (telemetry to published predictor)."),
		// Named with the cluster prefix: request coalescing is part of the
		// cluster-mode story (a burst of one recurring job across the fleet
		// costs one search), though it works single-node too.
		coalesced: r.Counter("cleo_cluster_coalesced_total",
			"Optimize requests coalesced onto an identical in-flight search."),
	}
}

// noteCoalesced counts one piggybacked optimize request (nil-safe).
func (so *serviceObs) noteCoalesced() {
	if so != nil {
		so.coalesced.Inc()
	}
}

// statusWriter captures the response status for the status-class counters.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route's handler with the HTTP middleware: per-route
// latency histogram, status-class counters and the in-flight gauge. Routes
// are named explicitly at registration (labels must be low-cardinality and
// known up front — request paths are not).
func (so *serviceObs) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if so == nil {
		return h
	}
	hist := so.reg.Histogram("cleo_http_request_seconds",
		"HTTP request latency by route.", "route", route)
	var classes [5]*obs.Counter
	for i := range classes {
		classes[i] = so.reg.Counter("cleo_http_requests_total",
			"HTTP requests by route and status class.",
			"route", route, "class", fmt.Sprintf("%dxx", i+1))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		so.inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// Deferred so a panicking handler still balances the inflight gauge
		// and records the request.
		defer func() {
			so.inflight.Add(-1)
			hist.Record(time.Since(t0))
			if c := sw.status / 100; c >= 1 && c <= 5 {
				classes[c-1].Inc()
			}
		}()
		h(sw, r)
	}
}

// registerTenantGauges binds the per-tenant derived gauges — cache hit
// ratios evaluated at scrape time, and the recovery counters CI asserts
// on after a restart. Re-registration (tenant re-created after a restart)
// rebinds the functions in place.
func (so *serviceObs) registerTenantGauges(t *Tenant) {
	if so == nil {
		return
	}
	const help = "Derived cache hit ratio by cache kind and tenant (0..1; 0 when idle)."
	so.reg.GaugeFunc("cleo_cache_hit_ratio", help, func() float64 {
		if v := t.reg.Current(); v != nil {
			return v.Cache.Stats().HitRatio()
		}
		return 0
	}, "cache", "prediction", "tenant", t.Name)
	so.reg.GaugeFunc("cleo_cache_hit_ratio", help, func() float64 {
		if v := t.reg.Current(); v != nil {
			cs := v.Cache.Stats()
			if tot := cs.FitHits + cs.FitMisses; tot > 0 {
				return float64(cs.FitHits) / float64(tot)
			}
		}
		return 0
	}, "cache", "stage_fit", "tenant", t.Name)
	so.reg.GaugeFunc("cleo_cache_hit_ratio", help, func() float64 {
		ts := t.sys.TemplateStats()
		if tot := ts.TemplateHits + ts.TemplateMisses; tot > 0 {
			return float64(ts.TemplateHits) / float64(tot)
		}
		return 0
	}, "cache", "template", "tenant", t.Name)
	if t.state != nil {
		ps := t.state.Stats()
		so.reg.Gauge("cleo_recovered_model_version",
			"Model version restored from durable state at startup (0 = cold start).",
			"tenant", t.Name).Set(ps.RecoveredVersion)
		so.reg.Gauge("cleo_recovered_records",
			"Journaled telemetry records replayed at startup.",
			"tenant", t.Name).Set(ps.RecoveredRecords)
		if ps.RecoveredVersion > 0 || ps.RecoveredRecords > 0 {
			so.recoveredTenants.Inc()
		}
	}
}

// logfHandler adapts slog records onto a legacy printf-style sink, so a
// caller-supplied Config.Logf keeps receiving every log line (rendered as
// "msg key=val ...") — the compatibility bridge that keeps pre-slog
// callers and tests working unchanged.
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	emit := func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value)
		return true
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(emit)
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return &logfHandler{logf: h.logf, attrs: merged}
}

// WithGroup flattens groups — the printf sink has no structure to nest.
func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// resolveLogger picks the service's structured logger: an explicit Logger
// wins, a legacy Logf is bridged, otherwise slog's process default (which
// writes through the log package, matching the old log.Printf behavior).
func resolveLogger(cfg Config) *slog.Logger {
	if cfg.Logger != nil {
		return cfg.Logger
	}
	if cfg.Logf != nil {
		return slog.New(&logfHandler{logf: cfg.Logf})
	}
	return slog.Default()
}
