package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"cleo/internal/obs"
)

// TestStreamingBackendServing runs the service on the streaming executor:
// queries return real result rows, the trace carries per-operator exec
// spans under execute, the executor's operator instruments land in
// /metrics, and retrain-on-measured-telemetry serves learned plans.
func TestStreamingBackendServing(t *testing.T) {
	reg := obs.NewRegistry()
	svc := NewService(Config{StreamingExec: true, Metrics: reg, Logf: quiet})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	status, body := postJSON(t, srv.URL+"/v1/query", queryBody("ads", 1, `,"trace":true`))
	if status != 200 {
		t.Fatalf("traced query: %d: %s", status, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.OutputRows == 0 || qr.OutputChecksum == 0 {
		t.Fatalf("streaming run returned no result rows: %s", body)
	}
	if qr.Latency <= 0 || qr.TotalProcessingTime <= 0 {
		t.Fatalf("no measured latency: %+v", qr)
	}
	if qr.Trace == nil {
		t.Fatal("no trace")
	}
	var execute *obs.SpanJSON
	for _, s := range qr.Trace.Spans {
		if s.Name == "execute" {
			execute = s
		}
	}
	if execute == nil || execute.DurationNs <= 0 || execute.Attrs["containers"] == "" {
		t.Fatalf("execute span: %+v", execute)
	}
	if len(execute.Children) == 0 {
		t.Fatal("execute span has no operator children")
	}
	var sawRows bool
	var walk func(s *obs.SpanJSON)
	walk = func(s *obs.SpanJSON) {
		if !strings.HasPrefix(s.Name, "exec:") {
			t.Fatalf("unexpected child span under execute: %q", s.Name)
		}
		if s.Attrs["rows"] != "" && s.Attrs["rows"] != "0" {
			sawRows = true
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, c := range execute.Children {
		walk(c)
	}
	if !sawRows {
		t.Fatal("no operator span carries observed rows")
	}

	// Determinism across requests: same plan, same result.
	status, body = postJSON(t, srv.URL+"/v1/query", queryBody("ads", 2, ""))
	if status != 200 {
		t.Fatalf("second query: %d: %s", status, body)
	}
	var qr2 QueryResponse
	if err := json.Unmarshal(body, &qr2); err != nil {
		t.Fatal(err)
	}
	if qr2.OutputRows != qr.OutputRows || qr2.OutputChecksum != qr.OutputChecksum {
		t.Fatalf("streaming result drifted across requests: %+v vs %+v", qr, qr2)
	}

	// The executor's operator instruments are live in the exposition.
	expo := scrape(t, srv.URL)
	for _, series := range []string{
		"cleo_exec_operator_seconds", "cleo_exec_rows_total", "cleo_exec_batches_total",
	} {
		if !strings.Contains(expo, series) {
			t.Fatalf("exposition missing %s", series)
		}
	}

	// Feedback loop through the service: enough runs to train, then a
	// learned run still executes on the streaming backend.
	for seed := int64(3); seed <= 30; seed++ {
		if status, body := postJSON(t, srv.URL+"/v1/query", queryBody("ads", seed, "")); status != 200 {
			t.Fatalf("query %d: %d: %s", seed, status, body)
		}
	}
	if status, body := postJSON(t, srv.URL+"/v1/retrain", `{"tenant":"ads"}`); status != 200 {
		t.Fatalf("retrain: %d: %s", status, body)
	}
	status, body = postJSON(t, srv.URL+"/v1/query",
		queryBody("ads", 99, `,"use_learned":true,"skip_logging":true`))
	if status != 200 {
		t.Fatalf("learned query: %d: %s", status, body)
	}
	qr = QueryResponse{}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.UsedLearned || qr.OutputRows == 0 {
		t.Fatalf("learned streaming run: %+v", qr)
	}
}
