package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cleo/internal/engine"
	"cleo/internal/obs"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

// HTTP/JSON API (stdlib net/http only):
//
//	POST /v1/query                     optimize or run a JSON-encoded logical plan
//	POST /v1/retrain                   train + hot-swap a new model version for a tenant
//	POST /v1/tenants/{name}/snapshot   force a durable snapshot of the live version
//	GET  /v1/models                    list a tenant's model versions
//	GET  /v1/stats                     serving counters (all tenants, or ?tenant=)
//	GET  /healthz                      liveness probe
//
// Errors are returned as {"error": "..."} with a 4xx/5xx status.

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Tenant names the session; created on first use.
	Tenant string `json:"tenant"`
	// Mode is "run" (optimize + execute, the default) or "optimize"
	// (plan only).
	Mode string `json:"mode,omitempty"`
	// Seed drives per-instance statistics drift and execution noise.
	Seed int64 `json:"seed,omitempty"`
	// Param is the job parameter (PM feature); defaults to 1.
	Param float64 `json:"param,omitempty"`
	// UseLearned selects the learned cost models; omitted/null means
	// "auto": use them whenever the tenant has a live model version.
	UseLearned *bool `json:"use_learned,omitempty"`
	// ResourceAware enables partition exploration.
	ResourceAware bool `json:"resource_aware,omitempty"`
	// Safe applies the optimize-twice regression mitigation (implies
	// learned models).
	Safe bool `json:"safe,omitempty"`
	// SkipLogging keeps the run out of the telemetry feedback loop.
	SkipLogging bool `json:"skip_logging,omitempty"`
	// Parallelism, when positive, overrides the tenant's optimizer search
	// parallelism for this one request (capped at maxRequestParallelism);
	// 0 keeps the tenant default. The effective width is echoed in the
	// response.
	Parallelism int `json:"parallelism,omitempty"`
	// Trace opts this one request into query tracing: the response carries
	// an EXPLAIN ANALYZE-style span tree (optimizer phases, and execution
	// when mode is "run") with per-span durations.
	Trace bool `json:"trace,omitempty"`
	// Tables registers stored-input statistics before planning
	// (idempotent; later requests may omit already-registered tables).
	Tables map[string]stats.TableStats `json:"tables,omitempty"`
	// Plan is the JSON-encoded logical plan (see internal/plan codec).
	Plan *plan.Logical `json:"plan"`
}

// QueryResponse is the POST /v1/query response.
type QueryResponse struct {
	Tenant       string `json:"tenant"`
	Mode         string `json:"mode"`
	UsedLearned  bool   `json:"used_learned"`
	ModelVersion int64  `json:"model_version,omitempty"`
	// Coalesced reports that this optimize request piggybacked on an
	// identical in-flight search and shares its (bit-identical) plan.
	Coalesced   bool `json:"coalesced,omitempty"`
	Parallelism int  `json:"parallelism"`
	// ExecWorkers is the effective execution pipeline width for this
	// request (per-stage exchange fan-out on the streaming backend;
	// omitted on the simulator, which has no pipeline width).
	ExecWorkers         int              `json:"exec_workers,omitempty"`
	Plan                string           `json:"plan"`
	Summary             plan.PlanSummary `json:"summary"`
	PredictedCost       float64          `json:"predicted_cost"`
	Latency             float64          `json:"latency,omitempty"`
	TotalProcessingTime float64          `json:"total_processing_time,omitempty"`
	Containers          int              `json:"containers,omitempty"`
	// OutputRows and OutputChecksum describe the actual query result when
	// the service executes on the streaming backend (zero on the
	// simulator, which models time but produces no rows).
	OutputRows     uint64 `json:"output_rows,omitempty"`
	OutputChecksum uint64 `json:"output_checksum,omitempty"`
	Records        int    `json:"records,omitempty"`
	// Trace is the span tree recorded for this request (only with
	// "trace": true in the request).
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// RetrainRequest is the POST /v1/retrain body.
type RetrainRequest struct {
	Tenant string `json:"tenant"`
}

// ModelsResponse is the GET /v1/models response.
type ModelsResponse struct {
	Tenant   string             `json:"tenant"`
	Current  int64              `json:"current"` // 0 = none live
	Versions []ModelVersionInfo `json:"versions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// NewHandler builds the service's HTTP handler. With Config.Metrics set,
// every route is wrapped in the observability middleware (per-route
// latency histogram, status-class counters, in-flight gauge) and
// GET /metrics serves the registry in Prometheus text format.
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", svc.obs.instrument("query",
		func(w http.ResponseWriter, r *http.Request) {
			handleQuery(svc, w, r)
		}))
	mux.HandleFunc("POST /v1/retrain", svc.obs.instrument("retrain",
		func(w http.ResponseWriter, r *http.Request) {
			handleRetrain(svc, w, r)
		}))
	mux.HandleFunc("POST /v1/tenants/{name}/snapshot", svc.obs.instrument("snapshot",
		func(w http.ResponseWriter, r *http.Request) {
			handleSnapshot(svc, w, r)
		}))
	mux.HandleFunc("GET /v1/models", svc.obs.instrument("models",
		func(w http.ResponseWriter, r *http.Request) {
			handleModels(svc, w, r)
		}))
	mux.HandleFunc("GET /v1/stats", svc.obs.instrument("stats",
		func(w http.ResponseWriter, r *http.Request) {
			handleStats(svc, w, r)
		}))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if svc.obs != nil {
		mux.Handle("GET /metrics", svc.obs.reg.Handler())
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxBodyBytes bounds request bodies (plans are small; telemetry never
// flows inbound).
const maxBodyBytes = 1 << 20

// maxRequestParallelism caps the per-request search-width override: wide
// enough for any real machine, small enough that one request cannot ask
// the worker pool for an absurd goroutine count.
const maxRequestParallelism = 256

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

func handleQuery(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, "missing tenant")
		return
	}
	if req.Plan == nil {
		writeError(w, http.StatusBadRequest, "missing plan")
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "run"
	}
	if mode != "run" && mode != "optimize" {
		writeError(w, http.StatusBadRequest, "bad mode %q (want run or optimize)", mode)
		return
	}
	if req.Parallelism < 0 || req.Parallelism > maxRequestParallelism {
		writeError(w, http.StatusBadRequest, "bad parallelism %d (want 0..%d)",
			req.Parallelism, maxRequestParallelism)
		return
	}

	t := svc.Tenant(req.Tenant)
	t.RegisterTables(req.Tables)

	useLearned := t.HasModels() // auto
	if req.UseLearned != nil {
		useLearned = *req.UseLearned
	}
	var tr *obs.Trace
	if req.Trace {
		tr = obs.NewTrace(0)
	}
	opts := engine.RunOptions{
		Seed:              req.Seed,
		Param:             req.Param,
		UseLearnedModels:  useLearned || req.Safe,
		ResourceAware:     req.ResourceAware,
		SafePlanSelection: req.Safe,
		SkipLogging:       req.SkipLogging,
		Parallelism:       req.Parallelism,
		Trace:             tr,
	}
	effectivePar := req.Parallelism
	if effectivePar == 0 {
		effectivePar = t.System().Parallelism()
	}
	resp := QueryResponse{Tenant: req.Tenant, Mode: mode, UsedLearned: opts.UseLearnedModels,
		Parallelism: effectivePar, ExecWorkers: t.System().ExecWorkers(opts)}

	t0 := time.Now()
	// Deferred so slow queries are logged on the error returns below too,
	// not only on the success path.
	defer func() {
		if dur := time.Since(t0); svc.cfg.SlowQuery > 0 && dur >= svc.cfg.SlowQuery {
			svc.log.Warn("serve: slow query",
				"tenant", req.Tenant, "route", "query", "mode", mode,
				"duration", dur, "trace_id", tr.ID())
		}
	}()
	switch mode {
	case "optimize":
		p, cost, version, shared, err := t.OptimizeCoalesced(req.Plan, opts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "optimize: %v", err)
			return
		}
		resp.ModelVersion = version
		resp.Coalesced = shared
		resp.Plan = p.String()
		resp.Summary = plan.Summarize(p)
		resp.PredictedCost = cost
	case "run":
		res, version, err := t.RunWithVersion(req.Plan, opts)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "run: %v", err)
			return
		}
		resp.ModelVersion = version
		resp.Plan = res.Plan.String()
		resp.Summary = plan.Summarize(res.Plan)
		resp.PredictedCost = res.PredictedCost
		resp.Latency = res.Latency
		resp.TotalProcessingTime = res.TotalProcessingTime
		resp.Containers = res.Containers
		resp.OutputRows = res.OutputRows
		resp.OutputChecksum = res.OutputChecksum
		resp.Records = len(res.Records)
	}
	resp.Trace = tr.Tree()
	writeJSON(w, http.StatusOK, resp)
}

func handleRetrain(svc *Service, w http.ResponseWriter, r *http.Request) {
	var req RetrainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, "missing tenant")
		return
	}
	t, ok := svc.Lookup(req.Tenant)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", req.Tenant)
		return
	}
	info, err := t.Retrain()
	switch {
	case errors.Is(err, ErrRetrainInProgress):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, "retrain: %v", err)
	default:
		writeJSON(w, http.StatusOK, map[string]ModelVersionInfo{"version": info})
	}
}

// handleSnapshot forces a durable snapshot of the tenant's live model
// version — the admin lever for "persist now" (e.g. before a planned
// restart), independent of the automatic snapshot-on-publish.
func handleSnapshot(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	t, ok := svc.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", name)
		return
	}
	info, err := t.Snapshot()
	switch {
	case errors.Is(err, ErrPersistenceDisabled):
		writeError(w, http.StatusNotImplemented, "%v", err)
	case errors.Is(err, ErrNoModelVersion):
		writeError(w, http.StatusConflict, "%v", err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
	default:
		writeJSON(w, http.StatusOK, map[string]ModelVersionInfo{"snapshot": info})
	}
}

func handleModels(svc *Service, w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("tenant")
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing tenant query parameter")
		return
	}
	t, ok := svc.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tenant %q", name)
		return
	}
	resp := ModelsResponse{Tenant: name, Versions: t.Registry().Versions()}
	if v := t.Registry().Current(); v != nil {
		resp.Current = v.Info.ID
	}
	if resp.Versions == nil {
		resp.Versions = []ModelVersionInfo{}
	}
	writeJSON(w, http.StatusOK, resp)
}

func handleStats(svc *Service, w http.ResponseWriter, r *http.Request) {
	if name := r.URL.Query().Get("tenant"); name != "" {
		t, ok := svc.Lookup(name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown tenant %q", name)
			return
		}
		writeJSON(w, http.StatusOK, t.Stats())
		return
	}
	stats := svc.Stats()
	if stats == nil {
		stats = []TenantStats{}
	}
	// In cluster mode the all-tenants response carries the node's cluster
	// state alongside; single-node deployments keep the bare array shape.
	if fn := svc.clusterInfo.Load(); fn != nil {
		writeJSON(w, http.StatusOK, ClusterStatsResponse{Cluster: (*fn)(), Tenants: stats})
		return
	}
	writeJSON(w, http.StatusOK, stats)
}

// ClusterStatsResponse is the GET /v1/stats response in cluster mode: the
// node's cluster state (ring membership, forwarding and replication
// counters — see internal/cluster) plus this node's tenant counters.
type ClusterStatsResponse struct {
	Cluster any           `json:"cluster"`
	Tenants []TenantStats `json:"tenants"`
}
