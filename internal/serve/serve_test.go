package serve

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cleo/internal/engine"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

// demoPlan builds the recurring aggregation query used across tests.
func demoPlan() *plan.Logical {
	return plan.NewOutput(plan.NewAggregate(plan.NewSelect(
		plan.NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
}

// newTestTenant returns a tenant with the demo table registered.
func newTestTenant(svc *Service, name string) *Tenant {
	t := svc.Tenant(name)
	t.System().RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})
	return t
}

// seedTelemetry runs enough default-model queries to make training viable.
func seedTelemetry(t *testing.T, tn *Tenant, runs int) {
	t.Helper()
	q := demoPlan()
	for seed := int64(1); seed <= int64(runs); seed++ {
		if _, err := tn.Run(q, engine.RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	waitForLog(t, tn, runs)
}

// waitForLog waits for the flusher to drain at least minRuns runs' worth
// of records into the system log.
func waitForLog(t *testing.T, tn *Tenant, minRuns int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for tn.System().LogSize() < minRuns {
		if time.Now().After(deadline) {
			t.Fatalf("flusher drained only %d records", tn.System().LogSize())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentRunRetrainHotSwap hammers two tenants with concurrent Run
// traffic while model versions are retrained and hot-swapped mid-flight.
// Run under -race; the acceptance bar is zero dropped or erroring
// requests.
func TestConcurrentRunRetrainHotSwap(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()

	tenants := []*Tenant{newTestTenant(svc, "ads"), newTestTenant(svc, "search")}
	for _, tn := range tenants {
		seedTelemetry(t, tn, 30)
		if _, err := tn.Retrain(); err != nil {
			t.Fatalf("%s: initial retrain: %v", tn.Name, err)
		}
	}

	const workers, queriesPerWorker, swaps = 6, 20, 3
	var wg sync.WaitGroup
	errc := make(chan error, len(tenants)*(workers+1))
	for _, tn := range tenants {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(tn *Tenant, w int) {
				defer wg.Done()
				q := demoPlan()
				for i := 0; i < queriesPerWorker; i++ {
					opts := engine.RunOptions{
						Seed:             int64(w*queriesPerWorker + i),
						Param:            float64(i%4) + 1,
						UseLearnedModels: true,
						ResourceAware:    i%2 == 0,
					}
					res, err := tn.Run(q, opts)
					if err != nil {
						errc <- fmt.Errorf("%s worker %d: %w", tn.Name, w, err)
						return
					}
					if res.Latency <= 0 || res.Plan == nil {
						errc <- fmt.Errorf("%s worker %d: bad result %+v", tn.Name, w, res)
						return
					}
				}
			}(tn, w)
		}
		wg.Add(1)
		go func(tn *Tenant) {
			defer wg.Done()
			for i := 0; i < swaps; i++ {
				time.Sleep(5 * time.Millisecond)
				if _, err := tn.Retrain(); err != nil && !errors.Is(err, ErrRetrainInProgress) {
					errc <- fmt.Errorf("%s retrain %d: %w", tn.Name, i, err)
					return
				}
			}
		}(tn)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	for _, tn := range tenants {
		st := tn.Stats()
		if st.Errors != 0 {
			t.Fatalf("%s: %d serving errors", tn.Name, st.Errors)
		}
		if st.Runs != workers*queriesPerWorker+30 {
			t.Fatalf("%s: runs = %d", tn.Name, st.Runs)
		}
		if st.ModelVersion < 2 {
			t.Fatalf("%s: no hot-swap happened (version %d)", tn.Name, st.ModelVersion)
		}
		versions := tn.Registry().Versions()
		if int64(len(versions)) != tn.Registry().Current().Info.ID {
			t.Fatalf("%s: history %d != current id %d", tn.Name, len(versions), tn.Registry().Current().Info.ID)
		}
		// A repeated identical resource-aware optimization (the
		// recurring-job case) must hit the final version's cache, and its
		// misses must have been filled through the batched costing path.
		q := demoPlan()
		opts := engine.RunOptions{Seed: 999, Param: 2, UseLearnedModels: true,
			ResourceAware: true, SkipLogging: true}
		for i := 0; i < 2; i++ {
			if _, _, err := tn.Optimize(q, opts); err != nil {
				t.Fatal(err)
			}
		}
		if st := tn.Stats().Cache; st.Hits == 0 {
			t.Fatalf("%s: recurring optimization never hit the prediction cache: %+v", tn.Name, st)
		} else if st.BatchFills == 0 {
			// The batched costing pipeline fills cache misses in batches;
			// /v1/stats surfaces the per-tenant counters.
			t.Fatalf("%s: learned optimizations never batch-filled the cache: %+v", tn.Name, st)
		}
	}
}

// TestCachedCostsMatchUncached verifies end-to-end (through Optimize) that
// the prediction cache changes nothing about the chosen plan or its cost.
func TestCachedCostsMatchUncached(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	seedTelemetry(t, tn, 30)
	if _, err := tn.Retrain(); err != nil {
		t.Fatal(err)
	}
	v := tn.Registry().Current()
	q := demoPlan()
	// Two passes over the same (seed, param) grid: the second prices every
	// operator from the cache — and, on the resource-aware half, answers
	// partition exploration from the stage-fit memo — and must still match
	// the uncached coster.
	for pass := 0; pass < 2; pass++ {
		for seed := int64(1); seed <= 5; seed++ {
			for _, param := range []float64{1, 2, 3} {
				opts := engine.RunOptions{Seed: seed, Param: param, UseLearnedModels: true,
					ResourceAware: seed%2 == 0, SkipLogging: true}
				uncached := opts
				uncached.Models = v.Predictor // pin version, no cache
				pPlain, cPlain, err := tn.System().Optimize(q, uncached)
				if err != nil {
					t.Fatal(err)
				}
				pCached, cCached, err := tn.Optimize(q, opts) // tenant path attaches the cache
				if err != nil {
					t.Fatal(err)
				}
				if cPlain != cCached {
					t.Fatalf("seed %d param %v: cached cost %v != uncached %v", seed, param, cCached, cPlain)
				}
				if pPlain.String() != pCached.String() {
					t.Fatalf("seed %d param %v: plans diverge:\n%s\n%s", seed, param, pPlain, pCached)
				}
			}
		}
	}
	if st := v.Cache.Stats(); st.Hits == 0 {
		t.Fatalf("cache never hit: %+v", st)
	} else if st.FitHits == 0 {
		t.Fatalf("recurring resource-aware optimization never hit the stage-fit memo: %+v", st)
	}
}

// TestBackgroundRetrainLoop verifies the telemetry threshold triggers a
// background retrain that publishes a version without any explicit call.
func TestBackgroundRetrainLoop(t *testing.T) {
	svc := NewService(Config{RetrainThreshold: 80})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	q := demoPlan()
	deadline := time.Now().Add(30 * time.Second)
	for seed := int64(1); tn.Registry().Current() == nil; seed++ {
		if _, err := tn.Run(q, engine.RunOptions{Seed: seed, Param: float64(seed%3) + 1}); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no background retrain after %d runs (log %d)", seed, tn.System().LogSize())
		}
	}
	// The published version must be live for serving.
	st := tn.Stats()
	if st.Retrains == 0 || st.ModelVersion == 0 || st.NumModels == 0 {
		t.Fatalf("stats after background retrain: %+v", st)
	}
	if !tn.HasModels() {
		t.Fatal("HasModels false after background retrain")
	}
}

// TestRetrainSingleFlight verifies explicit retrains refuse to stack.
func TestRetrainSingleFlight(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	tn.training.Store(true)
	if _, err := tn.Retrain(); !errors.Is(err, ErrRetrainInProgress) {
		t.Fatalf("err = %v, want ErrRetrainInProgress", err)
	}
	tn.training.Store(false)
	if _, err := tn.Retrain(); err == nil {
		t.Fatal("retrain with no telemetry must fail")
	}
}

// TestConcurrentTableRegistration mirrors the HTTP idiom of sending
// "tables" on every request: concurrent registration of the same table
// while queries plan against it must be race-free (run under -race).
func TestConcurrentTableRegistration(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	q := demoPlan()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				tn.System().RegisterTable("clicks_2026_06_12",
					stats.TableStats{Rows: 2e7, RowLength: 120})
				if _, err := tn.Run(q, engine.RunOptions{Seed: int64(w*20 + i), SkipLogging: true}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestRetrainSeesCompletedTraffic pins the flush barrier: a retrain issued
// right after the last query returns must train on all of its telemetry.
func TestRetrainSeesCompletedTraffic(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	q := demoPlan()
	ran := 0
	for seed := int64(1); seed <= 25; seed++ {
		res, err := tn.Run(q, engine.RunOptions{Seed: seed, Param: float64(seed%5) + 1})
		if err != nil {
			t.Fatal(err)
		}
		ran += len(res.Records)
	}
	// No waiting: the retrain's internal flush barrier must cover every
	// record already enqueued by the completed runs.
	info, err := tn.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if info.TrainRecords != ran {
		t.Fatalf("trained on %d records, %d were offered", info.TrainRecords, ran)
	}
}

// TestSessionMapSharding exercises concurrent get-or-create across many
// tenant names and checks instance identity.
func TestSessionMapSharding(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	const names = 40
	var wg sync.WaitGroup
	got := make([][]*Tenant, names)
	for i := 0; i < names; i++ {
		got[i] = make([]*Tenant, 8)
		for j := 0; j < 8; j++ {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				got[i][j] = svc.Tenant(fmt.Sprintf("tenant-%02d", i))
			}(i, j)
		}
	}
	wg.Wait()
	for i := range got {
		for j := 1; j < len(got[i]); j++ {
			if got[i][j] != got[i][0] {
				t.Fatalf("tenant %d: distinct instances from concurrent create", i)
			}
		}
	}
	if n := len(svc.TenantNames()); n != names {
		t.Fatalf("tenant names = %d, want %d", n, names)
	}
	if _, ok := svc.Lookup("tenant-00"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := svc.Lookup("nope"); ok {
		t.Fatal("lookup invented a tenant")
	}
	if st := svc.Stats(); len(st) != names {
		t.Fatalf("stats = %d entries", len(st))
	}
}
