package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"testing"

	"cleo/internal/engine"
	"cleo/internal/stats"
)

// TestTenantTemplateCounters pins the serving surface of the memo-template
// cache: repeated optimizations of a recurring plan hit, the counters show
// up in TenantStats (and so in /v1/stats), and a retrain hot-swap forces
// the next optimization to re-explore.
func TestTenantTemplateCounters(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	tn := newTestTenant(svc, "templates")
	q := demoPlan()

	for i := 0; i < 3; i++ {
		if _, _, err := tn.Optimize(q, engine.RunOptions{Seed: 7, Param: 2}); err != nil {
			t.Fatal(err)
		}
	}
	st := tn.Stats()
	if st.TemplateMisses != 1 || st.TemplateHits != 2 {
		t.Fatalf("default-model warmup: hits=%d misses=%d, want 2/1",
			st.TemplateHits, st.TemplateMisses)
	}

	seedTelemetry(t, tn, 30)
	if _, err := tn.Retrain(); err != nil {
		t.Fatal(err)
	}
	// The publish hot-swapped models: the cache was purged, so the next
	// optimization (now learned) must miss, the one after must hit.
	afterSwap := tn.Stats()
	if afterSwap.TemplateEntries != 0 || afterSwap.TemplateInvalidations == 0 {
		t.Fatalf("hot-swap left the template cache populated: %+v", afterSwap.TemplateCacheStats)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := tn.Optimize(q, engine.RunOptions{Seed: 7, Param: 2, UseLearnedModels: true}); err != nil {
			t.Fatal(err)
		}
	}
	st2 := tn.Stats()
	if st2.TemplateMisses != afterSwap.TemplateMisses+1 || st2.TemplateHits != afterSwap.TemplateHits+1 {
		t.Fatalf("post-swap: %+v -> %+v, want exactly one fresh miss and one hit",
			afterSwap.TemplateCacheStats, st2.TemplateCacheStats)
	}

	// A stats update on the live tenant (the /v1/query tables field) fences
	// the next optimization into a miss.
	tn.System().RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 4e7, RowLength: 120})
	if _, _, err := tn.Optimize(q, engine.RunOptions{Seed: 7, Param: 2, UseLearnedModels: true}); err != nil {
		t.Fatal(err)
	}
	st3 := tn.Stats()
	if st3.TemplateMisses != st2.TemplateMisses+1 || st3.TemplateHits != st2.TemplateHits {
		t.Fatalf("stats update did not force a re-explore: %+v -> %+v",
			st2.TemplateCacheStats, st3.TemplateCacheStats)
	}
}

// TestTemplateConcurrentQueryPublish races template-cached optimizations
// against model publishes under -race and checks, per request, that the
// served plan is exactly what a template-free System pinned to the same
// model version would have produced — i.e. a hot-swap can never leak a
// plan derived from a stale template.
func TestTemplateConcurrentQueryPublish(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	tn := newTestTenant(svc, "racing")
	seedTelemetry(t, tn, 30)
	if _, err := tn.Retrain(); err != nil {
		t.Fatal(err)
	}

	// Reference system: identical seed and tables, template reuse disabled.
	// Pinning the same predictor makes its optimization the ground truth
	// for any model version the tenant serves.
	h := fnv.New64a()
	h.Write([]byte("racing")) // the service's default per-tenant seed
	ref := engine.NewSystem(engine.SystemConfig{
		Seed:              h.Sum64(),
		Parallelism:       1,
		TemplateCacheSize: -1,
	})
	ref.RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})

	q := demoPlan()
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Publisher: keep retraining (each publish installs a fresh *Predictor
	// and purges the template cache).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if _, err := tn.Retrain(); err != nil {
				fail(err)
				return
			}
		}
		stop.Store(true)
	}()

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				v := tn.Registry().Current()
				p, cost, version, err := tn.OptimizeWithVersion(q,
					engine.RunOptions{Seed: 7, Param: 2, UseLearnedModels: true})
				if err != nil {
					fail(err)
					return
				}
				if version != v.Info.ID {
					continue // a publish landed between the reads; no ground truth
				}
				wantP, wantCost, err := ref.Optimize(q, engine.RunOptions{Seed: 7, Param: 2,
					UseLearnedModels: true, SkipLogging: true, Models: v.Predictor})
				if err != nil {
					fail(err)
					return
				}
				if p.String() != wantP.String() || cost != wantCost {
					fail(fmt.Errorf("template-cached plan diverged from the pinned-version ground truth (version %d):\nwant: %s\ngot:  %s",
						version, wantP, p))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
