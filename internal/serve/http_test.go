package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

const demoPlanJSON = `{"op":"Output","children":[{"op":"Aggregate","keys":["user"],"children":[
  {"op":"Select","pred":"market=us","children":[
    {"op":"Get","table":"clicks_2026_06_12","template":"clicks_"}]}]}]}`

const demoTablesJSON = `{"clicks_2026_06_12": {"Rows": 2e7, "RowLength": 120}}`

func queryBody(tenant string, seed int64, extra string) string {
	return fmt.Sprintf(`{"tenant":%q,"seed":%d,"tables":%s,"plan":%s%s}`,
		tenant, seed, demoTablesJSON, demoPlanJSON, extra)
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestHTTPServingLifecycle walks the full API: concurrent queries against
// two tenants, a retrain that hot-swaps a version mid-traffic, learned
// queries against the new version, model listing and stats.
func TestHTTPServingLifecycle(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// ≥32 concurrent queries across two tenants (the acceptance bar).
	const concurrent = 32
	var wg sync.WaitGroup
	errc := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "ads"
			if i%2 == 1 {
				tenant = "search"
			}
			status, body := postJSON(t, srv.URL+"/v1/query", queryBody(tenant, int64(i), ""))
			if status != http.StatusOK {
				errc <- fmt.Errorf("query %d: status %d: %s", i, status, body)
				return
			}
			var qr QueryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				errc <- err
				return
			}
			if qr.Latency <= 0 || qr.UsedLearned || qr.Summary.NumOps == 0 {
				errc <- fmt.Errorf("query %d: bad response %+v", i, qr)
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// The flusher must have drained each tenant's 16 runs before training.
	for _, tenant := range []string{"ads", "search"} {
		tn, _ := svc.Lookup(tenant)
		waitForLog(t, tn, 16)
	}

	// Retrain both tenants over HTTP.
	for _, tenant := range []string{"ads", "search"} {
		status, body := postJSON(t, srv.URL+"/v1/retrain", fmt.Sprintf(`{"tenant":%q}`, tenant))
		if status != http.StatusOK {
			t.Fatalf("retrain %s: status %d: %s", tenant, status, body)
		}
		var vr map[string]ModelVersionInfo
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if v := vr["version"]; v.ID != 1 || v.NumModels == 0 || v.TrainRecords == 0 {
			t.Fatalf("retrain %s: version %+v", tenant, v)
		}
	}

	// Learned (auto) query now reports the model version it used.
	status, body := postJSON(t, srv.URL+"/v1/query", queryBody("ads", 500, ""))
	if status != http.StatusOK {
		t.Fatalf("learned query: %d: %s", status, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.UsedLearned || qr.ModelVersion != 1 {
		t.Fatalf("learned query response: %+v", qr)
	}

	// Optimize-only mode returns a plan without executing.
	status, body = postJSON(t, srv.URL+"/v1/query",
		queryBody("ads", 501, `,"mode":"optimize","resource_aware":true`))
	if status != http.StatusOK {
		t.Fatalf("optimize: %d: %s", status, body)
	}
	qr = QueryResponse{} // omitempty fields survive re-unmarshal otherwise
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Latency != 0 || qr.PredictedCost <= 0 || qr.Plan == "" {
		t.Fatalf("optimize response: %+v", qr)
	}

	// Models listing.
	status, body = getJSON(t, srv.URL+"/v1/models?tenant=ads")
	if status != http.StatusOK {
		t.Fatalf("models: %d: %s", status, body)
	}
	var mr ModelsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Current != 1 || len(mr.Versions) != 1 {
		t.Fatalf("models response: %+v", mr)
	}

	// Stats for all tenants and for one.
	status, body = getJSON(t, srv.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d: %s", status, body)
	}
	var all []TenantStats
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0].Tenant != "ads" || all[1].Tenant != "search" {
		t.Fatalf("stats response: %+v", all)
	}
	status, body = getJSON(t, srv.URL+"/v1/stats?tenant=search")
	if status != http.StatusOK {
		t.Fatalf("tenant stats: %d: %s", status, body)
	}
	var one TenantStats
	if err := json.Unmarshal(body, &one); err != nil {
		t.Fatal(err)
	}
	if one.Tenant != "search" || one.Queries == 0 {
		t.Fatalf("tenant stats response: %+v", one)
	}

	// Health.
	if status, _ := getJSON(t, srv.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
}

// TestHTTPErrors covers the API's failure modes.
func TestHTTPErrors(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"missing tenant", "POST", "/v1/query", `{"plan":` + demoPlanJSON + `}`, http.StatusBadRequest},
		{"missing plan", "POST", "/v1/query", `{"tenant":"x"}`, http.StatusBadRequest},
		{"bad mode", "POST", "/v1/query", `{"tenant":"x","mode":"explain","plan":` + demoPlanJSON + `}`, http.StatusBadRequest},
		{"unknown operator", "POST", "/v1/query", `{"tenant":"x","plan":{"op":"Scan"}}`, http.StatusBadRequest},
		{"bad arity", "POST", "/v1/query", `{"tenant":"x","plan":{"op":"Join","children":[{"op":"Get","table":"t"}]}}`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/query", `{"tenant":"x","nope":1,"plan":` + demoPlanJSON + `}`, http.StatusBadRequest},
		{"not json", "POST", "/v1/query", `{{{`, http.StatusBadRequest},
		{"unknown table", "POST", "/v1/query", `{"tenant":"x","plan":` + demoPlanJSON + `}`, http.StatusUnprocessableEntity},
		{"learned sans models", "POST", "/v1/query", queryBody("x", 1, `,"use_learned":true`), http.StatusUnprocessableEntity},
		{"retrain unknown tenant", "POST", "/v1/retrain", `{"tenant":"ghost"}`, http.StatusNotFound},
		{"retrain missing tenant", "POST", "/v1/retrain", `{}`, http.StatusBadRequest},
		{"negative parallelism", "POST", "/v1/query", queryBody("x", 1, `,"parallelism":-1`), http.StatusBadRequest},
		{"huge parallelism", "POST", "/v1/query", queryBody("x", 1, `,"parallelism":100000`), http.StatusBadRequest},
		{"snapshot unknown tenant", "POST", "/v1/tenants/ghost/snapshot", `{}`, http.StatusNotFound},
		{"models missing tenant", "GET", "/v1/models", "", http.StatusBadRequest},
		{"models unknown tenant", "GET", "/v1/models?tenant=ghost", "", http.StatusNotFound},
		{"stats unknown tenant", "GET", "/v1/stats?tenant=ghost", "", http.StatusNotFound},
		{"wrong method", "GET", "/v1/query", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		var status int
		var body []byte
		if tc.method == "POST" {
			status, body = postJSON(t, srv.URL+tc.path, tc.body)
		} else {
			status, body = getJSON(t, srv.URL+tc.path)
		}
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
	}

	// Snapshot of a live tenant without a state directory: not
	// implemented (tenant "x" exists — the query cases above created it).
	status, body := postJSON(t, srv.URL+"/v1/tenants/x/snapshot", `{}`)
	if status != http.StatusNotImplemented {
		t.Errorf("snapshot without state dir: status %d (%s)", status, body)
	}
}

// TestHTTPParallelismOverrideAndSnapshot covers the per-request search
// width knob and the snapshot admin endpoint end to end.
func TestHTTPParallelismOverrideAndSnapshot(t *testing.T) {
	svc := NewService(Config{StateDir: t.TempDir(), Logf: quiet})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	// Tenant default is 1 (request-level concurrency); the override
	// borrows width for one request and is echoed back.
	status, body := postJSON(t, srv.URL+"/v1/query", queryBody("ads", 1, `,"parallelism":3`))
	if status != http.StatusOK {
		t.Fatalf("override query: %d: %s", status, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Parallelism != 3 {
		t.Fatalf("override echoed %d, want 3", qr.Parallelism)
	}
	status, body = postJSON(t, srv.URL+"/v1/query", queryBody("ads", 2, ""))
	if status != http.StatusOK {
		t.Fatalf("default query: %d: %s", status, body)
	}
	qr = QueryResponse{}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Parallelism != 1 {
		t.Fatalf("default parallelism echoed %d, want the tenant default 1", qr.Parallelism)
	}

	// Snapshot before any publish: conflict.
	if status, body := postJSON(t, srv.URL+"/v1/tenants/ads/snapshot", `{}`); status != http.StatusConflict {
		t.Fatalf("premature snapshot: %d (%s)", status, body)
	}

	// Train a version, snapshot it explicitly, and check the stats
	// surface the persistence counters.
	tn, _ := svc.Lookup("ads")
	for seed := int64(3); seed <= 30; seed++ {
		status, _ := postJSON(t, srv.URL+"/v1/query", queryBody("ads", seed, `,"param":2`))
		if status != http.StatusOK {
			t.Fatalf("seed query %d failed", seed)
		}
	}
	waitForLog(t, tn, 25)
	if status, body := postJSON(t, srv.URL+"/v1/retrain", `{"tenant":"ads"}`); status != http.StatusOK {
		t.Fatalf("retrain: %d (%s)", status, body)
	}
	status, body = postJSON(t, srv.URL+"/v1/tenants/ads/snapshot", `{}`)
	if status != http.StatusOK {
		t.Fatalf("snapshot: %d (%s)", status, body)
	}
	var sr map[string]ModelVersionInfo
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr["snapshot"].ID != 1 {
		t.Fatalf("snapshot response: %+v", sr)
	}
	status, body = getJSON(t, srv.URL+"/v1/stats?tenant=ads")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	var st TenantStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Persist == nil || st.Persist.Snapshots == 0 || st.Persist.JournalAppends == 0 {
		t.Fatalf("persist counters missing from stats: %+v", st.Persist)
	}
}
