package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cleo/internal/engine"
	"cleo/internal/stats"
)

// quiet silences persistence logging in tests.
func quiet(string, ...any) {}

// demoTableStats matches newTestTenant's registration — recovered tenants
// rebuild their catalog from request-supplied tables, so tests re-register
// explicitly after a restart.
func demoTableStats() stats.TableStats {
	return stats.TableStats{Rows: 2e7, RowLength: 120}
}

// durableConfig is the standard test config for a state directory.
func durableConfig(dir string) Config {
	return Config{StateDir: dir, Logf: quiet}
}

// TestCrashRecoveryRoundTrip is the acceptance pin: a service trained to
// two model versions, stopped, and restarted against the same state
// directory serves its first query with the latest learned model — same
// version id, no retrain — and replays the pending (not-yet-trained)
// journal records into the feedback loop.
func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Life 1: train two versions, then leave untrained telemetry behind.
	svc1 := NewService(durableConfig(dir))
	tn1 := newTestTenant(svc1, "ads")
	seedTelemetry(t, tn1, 30)
	if _, err := tn1.Retrain(); err != nil {
		t.Fatal(err)
	}
	seedTelemetry(t, tn1, 60)
	info2, err := tn1.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if info2.ID != 2 {
		t.Fatalf("second publish id = %d", info2.ID)
	}
	// Pending traffic after the last train: journaled but not trained.
	q := demoPlan()
	pending := 0
	for seed := int64(100); seed < 110; seed++ {
		res, err := tn1.Run(q, engine.RunOptions{Seed: seed, Param: 2})
		if err != nil {
			t.Fatal(err)
		}
		pending += len(res.Records)
	}
	trained := info2.TrainRecords
	svc1.Close() // waits for flusher + async snapshot writes

	// Life 2: recovery happens inside NewService, before any request.
	svc2 := NewService(durableConfig(dir))
	defer svc2.Close()
	tn2, ok := svc2.Lookup("ads")
	if !ok {
		t.Fatal("recovered tenant not found without an explicit create")
	}
	st := tn2.Stats()
	if st.ModelVersion != 2 || st.NumModels == 0 {
		t.Fatalf("recovered stats: %+v", st)
	}
	if st.Retrains != 0 {
		t.Fatalf("recovery must not retrain (retrains = %d)", st.Retrains)
	}
	if st.Persist == nil || st.Persist.RecoveredVersion != 2 || int(st.Persist.RecoveredRecords) != pending {
		t.Fatalf("persist stats: %+v (want recovered version 2, %d records)", st.Persist, pending)
	}
	// Metadata history survived with stable ids.
	versions := tn2.Registry().Versions()
	if len(versions) != 2 || versions[0].ID != 1 || versions[1].ID != 2 {
		t.Fatalf("recovered history: %+v", versions)
	}
	if versions[1].TrainRecords != trained {
		t.Fatalf("recovered v2 metadata: %+v, want %d train records", versions[1], trained)
	}
	// Only the pending records were replayed (trained ones live in the
	// snapshot, not the journal).
	if got := tn2.System().LogSize(); got != pending {
		t.Fatalf("replayed log size = %d, want %d", got, pending)
	}

	// The FIRST query serves with the learned model at the restored id.
	tn2.System().RegisterTable("clicks_2026_06_12", demoTableStats())
	res, version, err := tn2.RunWithVersion(q, engine.RunOptions{Seed: 999, Param: 2, UseLearnedModels: true})
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || res.Plan == nil {
		t.Fatalf("first recovered query used version %d, want 2", version)
	}

	// Replayed journal records feed the retraining pipeline: an explicit
	// retrain trains on exactly them and resumes the id sequence at 3.
	info3, err := tn2.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if info3.ID != 3 {
		t.Fatalf("post-recovery publish id = %d, want 3", info3.ID)
	}
	if info3.TrainRecords < pending {
		t.Fatalf("post-recovery retrain saw %d records, want >= %d replayed", info3.TrainRecords, pending)
	}
}

// TestRecoveryTruncatedJournalTail pins replay-after-partial-write: a
// journal cut mid-frame (the crash window) recovers the complete prefix
// and the tenant keeps serving — a warning, never a panic.
func TestRecoveryTruncatedJournalTail(t *testing.T) {
	dir := t.TempDir()
	svc1 := NewService(durableConfig(dir))
	tn1 := newTestTenant(svc1, "ads")
	// Flush after every run so each lands in its own journal frame (the
	// flusher otherwise merges queued batches into one frame — and one
	// frame would make any tear lose everything).
	q := demoPlan()
	for seed := int64(1); seed <= 20; seed++ {
		if _, err := tn1.Run(q, engine.RunOptions{Seed: seed, Param: 2}); err != nil {
			t.Fatal(err)
		}
		tn1.flush()
	}
	logged := tn1.System().LogSize()
	svc1.Close()

	// Tear the journal tail mid-frame.
	wal := filepath.Join(dir, "ads", "journal.wal")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	svc2 := NewService(durableConfig(dir))
	defer svc2.Close()
	tn2, ok := svc2.Lookup("ads")
	if !ok {
		t.Fatal("tenant not recovered after torn journal")
	}
	st := tn2.Stats()
	if st.Persist == nil || st.Persist.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", st.Persist)
	}
	got := tn2.System().LogSize()
	if got == 0 || got >= logged {
		t.Fatalf("replayed %d records after torn tail, want a non-empty strict prefix of %d", got, logged)
	}
	// Still fully serviceable, including new durable traffic.
	tn2.System().RegisterTable("clicks_2026_06_12", demoTableStats())
	if _, err := tn2.Run(demoPlan(), engine.RunOptions{Seed: 7}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryCorruptSnapshotColdStart pins the corruption contract for
// snapshots: garbage manifest + model files degrade that tenant to a cold
// start (journal still replayed), never a crash.
func TestRecoveryCorruptSnapshotColdStart(t *testing.T) {
	dir := t.TempDir()
	svc1 := NewService(durableConfig(dir))
	tn1 := newTestTenant(svc1, "ads")
	seedTelemetry(t, tn1, 30)
	if _, err := tn1.Retrain(); err != nil {
		t.Fatal(err)
	}
	// Untrained tail so the journal is non-empty after the snapshot cut.
	seedTelemetry(t, tn1, 40)
	svc1.Close()

	// Corrupt every snapshot file.
	paths, err := filepath.Glob(filepath.Join(dir, "ads", "v*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no snapshot files to corrupt (%v, %v)", paths, err)
	}
	for _, p := range paths {
		if err := os.WriteFile(p, []byte("{corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	svc2 := NewService(durableConfig(dir))
	defer svc2.Close()
	tn2, ok := svc2.Lookup("ads")
	if !ok {
		t.Fatal("tenant not recovered after snapshot corruption")
	}
	st := tn2.Stats()
	if st.ModelVersion != 0 {
		t.Fatalf("corrupt snapshot still produced version %d", st.ModelVersion)
	}
	if tn2.System().LogSize() == 0 {
		t.Fatal("journal replay lost along with the snapshot")
	}
	// Cold but alive: default-model traffic and a fresh retrain work.
	tn2.System().RegisterTable("clicks_2026_06_12", demoTableStats())
	if _, err := tn2.Run(demoPlan(), engine.RunOptions{Seed: 3}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPublishSnapshotRace drives concurrent retrains, explicit
// snapshots, and query traffic against one durable tenant (run with
// -race). The acceptance bar is zero serving errors and a consistent
// snapshot directory afterwards.
func TestConcurrentPublishSnapshotRace(t *testing.T) {
	dir := t.TempDir()
	svc := NewService(durableConfig(dir))
	tn := newTestTenant(svc, "ads")
	seedTelemetry(t, tn, 30)
	if _, err := tn.Retrain(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // query traffic
		defer wg.Done()
		q := demoPlan()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := tn.Run(q, engine.RunOptions{Seed: int64(i), Param: float64(i%3) + 1, UseLearnedModels: true}); err != nil {
				errc <- fmt.Errorf("run %d: %w", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // publishes (each schedules an async snapshot)
		defer wg.Done()
		for i := 0; i < 4; i++ {
			time.Sleep(2 * time.Millisecond)
			if _, err := tn.Retrain(); err != nil && !errors.Is(err, ErrRetrainInProgress) {
				errc <- fmt.Errorf("retrain %d: %w", i, err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // explicit admin snapshots racing the async ones
		defer wg.Done()
		for i := 0; i < 8; i++ {
			time.Sleep(time.Millisecond)
			if _, err := tn.Snapshot(); err != nil && !errors.Is(err, ErrNoModelVersion) {
				errc <- fmt.Errorf("snapshot %d: %w", i, err)
				return
			}
		}
	}()
	time.Sleep(25 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	final := tn.Registry().Current().Info
	svc.Close()

	// The directory must recover to the newest published-and-snapshotted
	// version with its id intact.
	svc2 := NewService(durableConfig(dir))
	defer svc2.Close()
	tn2, ok := svc2.Lookup("ads")
	if !ok {
		t.Fatal("tenant lost after concurrent publish/snapshot")
	}
	st := tn2.Stats()
	if st.ModelVersion != final.ID {
		t.Fatalf("recovered version %d, want %d", st.ModelVersion, final.ID)
	}
}

// TestSnapshotWithoutStateDir pins the persistence-disabled error.
func TestSnapshotWithoutStateDir(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	if _, err := tn.Snapshot(); !errors.Is(err, ErrPersistenceDisabled) {
		t.Fatalf("err = %v, want ErrPersistenceDisabled", err)
	}
}

// TestRecoveredTenantRetainsSeed pins that a recovered tenant rebuilds
// the same simulated cluster: the default SeedOf derivation is pure in
// the tenant name, so plans and statistics stay consistent across
// restarts.
func TestRecoveredTenantRetainsSeed(t *testing.T) {
	dir := t.TempDir()
	svc1 := NewService(durableConfig(dir))
	tn1 := newTestTenant(svc1, "ads")
	p1, c1, err := tn1.Optimize(demoPlan(), engine.RunOptions{Seed: 5, SkipLogging: true})
	if err != nil {
		t.Fatal(err)
	}
	// A run creates journal state so the tenant exists on disk.
	if _, err := tn1.Run(demoPlan(), engine.RunOptions{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2 := NewService(durableConfig(dir))
	defer svc2.Close()
	tn2, ok := svc2.Lookup("ads")
	if !ok {
		t.Fatal("tenant not recovered")
	}
	tn2.System().RegisterTable("clicks_2026_06_12", demoTableStats())
	p2, c2, err := tn2.Optimize(demoPlan(), engine.RunOptions{Seed: 5, SkipLogging: true})
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() || c1 != c2 {
		t.Fatalf("recovered tenant plans diverge:\n%s (%v)\n%s (%v)", p1, c1, p2, c2)
	}
}
