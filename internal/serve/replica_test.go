package serve

import (
	"bytes"
	"testing"

	"cleo/internal/engine"
	"cleo/internal/stats"
)

// TestDurableTablesSurviveRestart pins satellite behaviour: table
// statistics registered through the serving layer are persisted with the
// tenant, so the first post-restart request plans against the full
// catalog without the client re-sending stats.
func TestDurableTablesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	svc1 := NewService(durableConfig(dir))
	tn1 := svc1.Tenant("ads")
	tn1.RegisterTables(map[string]stats.TableStats{
		"clicks_2026_06_12": {Rows: 2e7, RowLength: 120},
		"users":             {Rows: 5e5, RowLength: 64},
	})
	// Re-registering the same stats is idempotent — no second save.
	tn1.RegisterTables(map[string]stats.TableStats{
		"clicks_2026_06_12": {Rows: 2e7, RowLength: 120},
	})
	svc1.Close() // waits for the async table save
	if st := tn1.Stats(); st.Persist == nil || st.Persist.TableSaves == 0 {
		t.Fatalf("persist stats after save: %+v", st.Persist)
	}

	svc2 := NewService(durableConfig(dir))
	defer svc2.Close()
	tn2, ok := svc2.Lookup("ads")
	if !ok {
		t.Fatal("tenant not recovered")
	}
	tabs := tn2.System().Catalog().Tables()
	if tabs["clicks_2026_06_12"].Rows != 2e7 || tabs["users"].Rows != 5e5 {
		t.Fatalf("recovered catalog: %+v", tabs)
	}
	// The acceptance gesture: a stats-free query on the recovered tenant.
	if _, err := tn2.Run(demoPlan(), engine.RunOptions{Seed: 1, Param: 2}); err != nil {
		t.Fatalf("stats-free query after restart: %v", err)
	}
}

// TestInstallReplicaWarmAndDurable drives the follower half of snapshot
// replication without the HTTP layer: an installed replica is live under
// its origin version id with zero local retrains, stale pushes are
// refused, the artifacts reach the follower's own state directory (a
// restart recovers them), and a later local retrain continues the version
// sequence above the replicated id.
func TestInstallReplicaWarmAndDurable(t *testing.T) {
	// "Owner": train two versions in-memory and export the latest.
	owner := NewService(Config{})
	ownerTn := newTestTenant(owner, "ads")
	seedTelemetry(t, ownerTn, 30)
	if _, err := ownerTn.Retrain(); err != nil {
		t.Fatal(err)
	}
	seedTelemetry(t, ownerTn, 60)
	info, err := ownerTn.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	cur := ownerTn.Registry().Current()
	var model bytes.Buffer
	if err := cur.Predictor.Save(&model); err != nil {
		t.Fatal(err)
	}
	tables := ownerTn.System().Catalog().Tables()
	owner.Close()

	dir := t.TempDir()
	follower := NewService(durableConfig(dir))
	ftn := follower.Tenant("ads")
	if !ftn.InstallReplica(info, cur.Predictor, model.Bytes(), tables) {
		t.Fatal("install refused")
	}
	// Stale or duplicate pushes (out-of-order replication) are dropped.
	if ftn.InstallReplica(info, cur.Predictor, model.Bytes(), tables) {
		t.Fatal("duplicate version installed twice")
	}
	stale := info
	stale.ID--
	if ftn.InstallReplica(stale, cur.Predictor, model.Bytes(), tables) {
		t.Fatal("older version replaced a newer one")
	}

	st := ftn.Stats()
	if st.ModelVersion != info.ID || st.Retrains != 0 || st.ReplicaInstalls != 1 {
		t.Fatalf("follower stats: %+v", st)
	}
	if !ftn.HasModels() {
		t.Fatal("replica not live")
	}
	if _, err := ftn.Run(demoPlan(), engine.RunOptions{Seed: 5, Param: 2}); err != nil {
		t.Fatalf("query on replica: %v", err)
	}
	follower.Close() // drains the async snapshot import

	// A follower restart recovers the replicated version from local disk —
	// the failover survives the failed-over-to node restarting too.
	svc2 := NewService(durableConfig(dir))
	defer svc2.Close()
	tn2, ok := svc2.Lookup("ads")
	if !ok {
		t.Fatal("follower tenant not recovered")
	}
	st2 := tn2.Stats()
	if st2.ModelVersion != info.ID || st2.Retrains != 0 {
		t.Fatalf("restarted follower stats: %+v", st2)
	}
	if tn2.System().Catalog().Tables()["clicks_2026_06_12"].Rows != 2e7 {
		t.Fatal("replicated table statistics not recovered")
	}

	// Local training resumes above the replicated id, never below it.
	seedTelemetry(t, tn2, 90)
	next, err := tn2.Retrain()
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= info.ID {
		t.Fatalf("post-replica retrain id %d, want > %d", next.ID, info.ID)
	}
}
