package serve

import (
	"sync"
	"sync/atomic"

	"cleo/internal/engine"
	"cleo/internal/plan"
)

// Request coalescing: a burst of identical in-flight recurring
// optimizations collapses into one search. The first request with a given
// key (the leader) runs the optimizer; concurrent duplicates park on its
// done channel and share the result — bit-identical by construction, since
// they would have produced the same plan anyway. The key pins everything a
// plan depends on: the logical plan's signature, the job parameters, the
// model identity (version id) and the statistics epoch, so a hot-swap or a
// stats change can never serve a coalesced plan computed under the old
// state. Only optimize-mode requests coalesce — runs execute per request —
// and traced requests bypass the group (a trace is per-request output).

// coalesceKey identifies one optimization's full input.
type coalesceKey struct {
	sig         plan.Signature
	seed        int64
	param       float64
	parallelism int
	version     int64 // pinned model version id (0 = default cost model)
	epoch       uint64
	flags       uint8 // useLearned | resourceAware<<1 | safe<<2
}

// coalesceCall is one in-flight leader computation.
type coalesceCall struct {
	done    chan struct{}
	p       *plan.Physical
	cost    float64
	version int64
	err     error
}

// coalescer is a singleflight group over optimization keys.
type coalescer struct {
	mu sync.Mutex
	m  map[coalesceKey]*coalesceCall

	leaders   atomic.Uint64 // calls that ran the optimizer
	coalesced atomic.Uint64 // calls that piggybacked on a leader
}

func newCoalescer() *coalescer {
	return &coalescer{m: make(map[coalesceKey]*coalesceCall)}
}

// do runs fn once per concurrent key: the leader executes it, duplicates
// wait and share the result. The bool reports whether the call coalesced
// (waited on another request's computation).
func (g *coalescer) do(key coalesceKey, fn func() (*plan.Physical, float64, int64, error)) (*plan.Physical, float64, int64, bool, error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		g.coalesced.Add(1)
		return c.p, c.cost, c.version, true, c.err
	}
	c := &coalesceCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	g.leaders.Add(1)
	c.p, c.cost, c.version, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.p, c.cost, c.version, false, c.err
}

// coalesceKeyFor builds the coalescing key for one prepared request.
// version must be the model version id prepare pinned, so the key reflects
// the exact model identity the optimization will use.
func coalesceKeyFor(q *plan.Logical, opts engine.RunOptions, version int64, epoch uint64) coalesceKey {
	var flags uint8
	if opts.UseLearnedModels {
		flags |= 1
	}
	if opts.ResourceAware {
		flags |= 2
	}
	if opts.SafePlanSelection {
		flags |= 4
	}
	return coalesceKey{
		sig:         plan.LogicalSignature(q),
		seed:        opts.Seed,
		param:       opts.Param,
		parallelism: opts.Parallelism,
		version:     version,
		epoch:       epoch,
		flags:       flags,
	}
}
