package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cleo/internal/engine"
	"cleo/internal/obs"
	"cleo/internal/plan"
)

// TestCoalescerSharesOneComputation is the deterministic singleflight
// pin: a leader blocked inside fn, two duplicates arriving while it runs,
// and exactly one execution shared by all three.
func TestCoalescerSharesOneComputation(t *testing.T) {
	g := newCoalescer()
	key := coalesceKey{seed: 1}
	sentinel := &plan.Physical{}

	var started sync.Once
	startedCh := make(chan struct{})
	gate := make(chan struct{})
	var runs int32
	var wg sync.WaitGroup
	results := make([]*plan.Physical, 3)
	shared := make([]bool, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, cost, version, sh, err := g.do(key, func() (*plan.Physical, float64, int64, error) {
				started.Do(func() { close(startedCh) })
				<-gate
				runs++
				return sentinel, 42, 7, nil
			})
			if err != nil || cost != 42 || version != 7 {
				t.Errorf("call %d: p=%v cost=%v version=%d err=%v", i, p, cost, version, err)
			}
			results[i], shared[i] = p, sh
		}()
		if i == 0 {
			<-startedCh // leader is inside fn before the duplicates start
		}
	}
	// The leader is gated inside fn, so the key stays claimed while the
	// duplicates reach the group and park on its done channel.
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()

	if runs != 1 {
		t.Fatalf("fn ran %d times — duplicates did not share the leader's run", runs)
	}
	nShared := 0
	for i := range results {
		if results[i] != sentinel {
			t.Fatalf("call %d did not share the sentinel plan", i)
		}
		if shared[i] {
			nShared++
		}
	}
	if g.leaders.Load() != 1 {
		t.Fatalf("leaders = %d", g.leaders.Load())
	}
	if int(g.coalesced.Load()) != nShared {
		t.Fatalf("coalesced counter %d, shared flags %d", g.coalesced.Load(), nShared)
	}
	// A later call with the same key is a fresh leader, not a stale share.
	_, _, _, sh, _ := g.do(key, func() (*plan.Physical, float64, int64, error) {
		return nil, 0, 0, nil
	})
	if sh {
		t.Fatal("completed key still coalescing")
	}
}

// TestCoalesceKeyDiscriminates pins every input the key must separate:
// two requests differing in any of them must never share a plan.
func TestCoalesceKeyDiscriminates(t *testing.T) {
	q := demoPlan()
	base := coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 2}, 3, 4)
	variants := map[string]coalesceKey{
		"seed":        coalesceKeyFor(q, engine.RunOptions{Seed: 9, Param: 2}, 3, 4),
		"param":       coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 9}, 3, 4),
		"parallelism": coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 2, Parallelism: 4}, 3, 4),
		"version":     coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 2}, 9, 4),
		"epoch":       coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 2}, 3, 9),
		"learned":     coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 2, UseLearnedModels: true}, 3, 4),
		"resource":    coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 2, ResourceAware: true}, 3, 4),
		"safe":        coalesceKeyFor(q, engine.RunOptions{Seed: 1, Param: 2, SafePlanSelection: true}, 3, 4),
		"plan": coalesceKeyFor(plan.NewOutput(plan.NewGet("clicks_2026_06_12", "clicks_")),
			engine.RunOptions{Seed: 1, Param: 2}, 3, 4),
	}
	for name, k := range variants {
		if k == base {
			t.Errorf("key ignores %s", name)
		}
	}
	if again := coalesceKeyFor(demoPlan(), engine.RunOptions{Seed: 1, Param: 2}, 3, 4); again != base {
		t.Error("key not deterministic for identical inputs")
	}
}

// TestCoalesceTraceBypasses: a traced request must run its own search
// (the trace is per-request output) even while an identical computation
// is in flight — if it joined the group it would deadlock here, since the
// leader never finishes until the gate opens.
func TestCoalesceTraceBypasses(t *testing.T) {
	svc := NewService(Config{Coalesce: true})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	q := demoPlan()

	opts := engine.RunOptions{Seed: 5, Param: 2}
	probe := opts
	version := tn.prepare(&probe)
	key := coalesceKeyFor(q, opts, version, tn.sys.Catalog().Epoch())

	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tn.coalesce.do(key, func() (*plan.Physical, float64, int64, error) {
			<-gate
			return nil, 0, 0, nil
		})
	}()

	done := make(chan struct{})
	go func() {
		defer close(done)
		traced := opts
		traced.Trace = obs.NewTrace(0)
		_, _, _, shared, err := tn.OptimizeCoalesced(q, traced)
		if err != nil {
			t.Errorf("traced optimize: %v", err)
		}
		if shared {
			t.Error("traced request coalesced")
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("traced request joined the in-flight group (deadlock)")
	}
	close(gate)
	wg.Wait()
}

// TestCoalesceHTTPSharedResponse pins the acceptance behaviour end to
// end and deterministically: while an identical optimization is in
// flight (a gated synthetic leader holding the exact key the request
// hashes to), a /v1/query optimize request parks on it, reports
// "coalesced": true with the leader's bit-identical plan, and
// cleo_cluster_coalesced_total moves.
func TestCoalesceHTTPSharedResponse(t *testing.T) {
	svc := NewService(Config{Coalesce: true, Metrics: obs.NewRegistry()})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	tn := newTestTenant(svc, "ads")
	q := demoPlan()
	opts := engine.RunOptions{Seed: 5, Param: 2}

	// The plan the group will hand out — computed outside the group.
	searchOpts := opts
	tn.prepare(&searchOpts)
	searchOpts.SkipLogging = true
	wantPlan, wantCost, err := tn.sys.Optimize(q, searchOpts)
	if err != nil {
		t.Fatal(err)
	}

	probe := opts
	version := tn.prepare(&probe)
	key := coalesceKeyFor(q, opts, version, tn.sys.Catalog().Epoch())

	for attempt := 0; attempt < 20; attempt++ {
		gate := make(chan struct{})
		var leader sync.WaitGroup
		leader.Add(1)
		go func() {
			defer leader.Done()
			tn.coalesce.do(key, func() (*plan.Physical, float64, int64, error) {
				<-gate
				return wantPlan, wantCost, version, nil
			})
		}()

		type httpResult struct {
			code int
			body []byte
		}
		resCh := make(chan httpResult, 1)
		go func() {
			code, body := postJSON(t, srv.URL+"/v1/query",
				queryBody("ads", 5, `,"mode":"optimize","param":2`))
			resCh <- httpResult{code, body}
		}()
		// Wait for the request to enter the optimize path, then give it a
		// beat to reach the group; the gated leader holds the key the
		// whole time, so "too early" only risks a retry, never a flake.
		for base := tn.optimizes.Load(); tn.optimizes.Load() == base; {
			time.Sleep(time.Millisecond)
		}
		time.Sleep(20 * time.Millisecond)
		close(gate)
		leader.Wait()
		res := <-resCh
		if res.code != 200 {
			t.Fatalf("optimize: %d %s", res.code, res.body)
		}
		var qr QueryResponse
		if err := json.Unmarshal(res.body, &qr); err != nil {
			t.Fatal(err)
		}
		if !qr.Coalesced {
			continue // lost the tiny entry race; re-arm the leader
		}
		if qr.Plan != wantPlan.String() || qr.PredictedCost != wantCost {
			t.Fatalf("shared response diverged: %+v", qr)
		}
		body := getMetrics(t, srv.URL)
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "cleo_cluster_coalesced_total ") {
				if strings.TrimSpace(line) == "cleo_cluster_coalesced_total 0" {
					t.Fatalf("metric did not move: %s", line)
				}
				return
			}
		}
		t.Fatal("cleo_cluster_coalesced_total not exposed")
	}
	t.Fatal("request never coalesced despite a gated leader holding its key")
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	code, body := getJSON(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	return string(body)
}

// TestCoalesceConcurrentIdenticalRequests is the -race pin: a pile of
// identical optimize calls racing one tenant, every response carrying the
// same bit-identical plan and cost, leaders + coalesced covering every
// call, and at least one call actually sharing (the parallel search's
// worker pool yields, so overlap happens even on one CPU).
func TestCoalesceConcurrentIdenticalRequests(t *testing.T) {
	svc := NewService(Config{Coalesce: true})
	defer svc.Close()
	tn := newTestTenant(svc, "ads")
	q := demoPlan()

	deadline := time.Now().Add(30 * time.Second)
	total := uint64(0)
	for tn.coalesce.coalesced.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no overlap across repeated identical bursts")
		}
		const burst = 16
		var wg sync.WaitGroup
		plans := make([]string, burst)
		costs := make([]float64, burst)
		for i := 0; i < burst; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, cost, _, _, err := tn.OptimizeCoalesced(q,
					engine.RunOptions{Seed: 3, Param: 2, Parallelism: 2})
				if err != nil {
					t.Error(err)
					return
				}
				plans[i], costs[i] = p.String(), cost
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		total += burst
		for i := 1; i < burst; i++ {
			if plans[i] != plans[0] || costs[i] != costs[0] {
				t.Fatalf("result %d diverged: %q/%v vs %q/%v",
					i, plans[i], costs[i], plans[0], costs[0])
			}
		}
	}
	leaders, coalesced := tn.coalesce.leaders.Load(), tn.coalesce.coalesced.Load()
	if leaders+coalesced != total {
		t.Fatalf("leaders %d + coalesced %d != calls %d", leaders, coalesced, total)
	}
	st := tn.Stats()
	if st.Coalesced != coalesced || st.CoalesceLeaders != leaders {
		t.Fatalf("stats %+v disagree with counters %d/%d", st, coalesced, leaders)
	}
}
