// Package serve is the multi-tenant optimizer service: it multiplexes
// named engine.System instances behind a sharded session map, versions
// their learned models in a hot-swappable registry, memoizes predictions
// on the recurring-job hot path, batches telemetry ingestion through a
// flusher goroutine with threshold-triggered background retraining, and
// exposes the whole thing over an HTTP/JSON API (NewHandler) that
// cmd/cleoserve binds to a socket. It is the paper's Section 5.1
// deployment shape: a long-lived serving layer whose models are retrained
// from live telemetry and swapped in without stopping query traffic.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"cleo/internal/learned"
	"cleo/internal/ml"
)

// ModelVersionInfo is the metadata of one published model version.
type ModelVersionInfo struct {
	// ID increments per publish, starting at 1.
	ID int64 `json:"id"`
	// TrainedAt is the publish wall-clock time.
	TrainedAt time.Time `json:"trained_at"`
	// TrainRecords is the telemetry log size the version was trained on.
	TrainRecords int `json:"train_records"`
	// NumModels counts the individual learned models in the version.
	NumModels int `json:"num_models"`
	// Accuracy snapshots prediction quality on the most recent telemetry
	// at training time.
	Accuracy ml.Accuracy `json:"accuracy"`
}

// ModelVersion pairs a published predictor with its metadata and the
// prediction cache that is valid for exactly this predictor.
type ModelVersion struct {
	Info      ModelVersionInfo
	Predictor *learned.Predictor
	Cache     *learned.PredictionCache

	// trainedLocal is how many records of the CURRENT process's telemetry
	// log this version was trained on — the journal-truncation cursor.
	// Versions restored from a snapshot carry 0: their TrainRecords count
	// a previous process's log, so nothing in this life's journal is
	// covered by them.
	trainedLocal int
}

// Registry versions a tenant's learned models. Publish atomically swaps
// the current version, so retraining can race with serving: optimizations
// in flight keep the version (predictor + cache) they started with, and
// the next request observes the new one. Old versions' metadata is kept
// for GET /v1/models; their predictors are dropped once unreferenced.
type Registry struct {
	seq atomic.Int64
	cur atomic.Pointer[ModelVersion]

	mu      sync.Mutex
	history []ModelVersionInfo
}

// Current returns the live version (nil before the first Publish).
func (r *Registry) Current() *ModelVersion {
	return r.cur.Load()
}

// Publish installs pr as the new current version with a fresh prediction
// cache and records its metadata. The whole publish happens under the
// registry mutex so it serializes against InstallReplica — a locally
// trained version and a replicated one can race on a cluster follower, and
// ids must stay monotonic either way.
func (r *Registry) Publish(pr *learned.Predictor, trainRecords int, acc ml.Accuracy) *ModelVersion {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := &ModelVersion{
		Info: ModelVersionInfo{
			ID:           r.seq.Add(1),
			TrainedAt:    time.Now().UTC(),
			TrainRecords: trainRecords,
			NumModels:    pr.NumModels(),
			Accuracy:     acc,
		},
		Predictor: pr,
		Cache:     learned.NewPredictionCache(),

		trainedLocal: trainRecords,
	}
	r.history = append(r.history, v.Info)
	r.cur.Store(v)
	return v
}

// InstallReplica installs a model version replicated from another node as
// the current version, keeping its origin id. Stale installs — a version
// at or below the live one, e.g. a delayed replication push arriving after
// a newer version already landed — are dropped (nil, false). trainedLocal
// stays 0: the version was trained on the owner's telemetry log, so it
// covers nothing in this process's journal.
func (r *Registry) InstallReplica(info ModelVersionInfo, pr *learned.Predictor) (*ModelVersion, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur := r.cur.Load(); cur != nil && cur.Info.ID >= info.ID {
		return nil, false
	}
	v := &ModelVersion{
		Info:      info,
		Predictor: pr,
		Cache:     learned.NewPredictionCache(),
	}
	r.history = append(r.history, info)
	if r.seq.Load() < info.ID {
		r.seq.Store(info.ID) // local retrains resume above the replica
	}
	r.cur.Store(v)
	return v, true
}

// Restore installs a recovered snapshot as the current version without
// re-publishing: the metadata history and the version-id sequence resume
// exactly where the previous process stopped, so ids stay stable across
// restarts. history must be ascending and end with cur.
func (r *Registry) Restore(history []ModelVersionInfo, cur ModelVersionInfo, pr *learned.Predictor) *ModelVersion {
	v := &ModelVersion{
		Info:      cur,
		Predictor: pr,
		Cache:     learned.NewPredictionCache(),
	}
	r.mu.Lock()
	r.history = append(r.history, history...)
	r.mu.Unlock()
	// Restore runs during tenant construction, before the tenant is
	// published to the session map — nothing can race it.
	r.seq.Store(cur.ID)
	r.cur.Store(v)
	return v
}

// Versions lists the metadata of every published version, oldest first.
func (r *Registry) Versions() []ModelVersionInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ModelVersionInfo(nil), r.history...)
}
