package serve

import (
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"cleo/internal/cascades"
	"cleo/internal/engine"
	"cleo/internal/learned"
	"cleo/internal/persist"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
)

// ErrRetrainInProgress is returned when a retrain is requested while one
// is already running for the tenant.
var ErrRetrainInProgress = errors.New("serve: retrain already in progress")

// ErrPersistenceDisabled is returned by Snapshot when the service has no
// state directory.
var ErrPersistenceDisabled = errors.New("serve: persistence not configured (no state directory)")

// ErrNoModelVersion is returned by Snapshot before the first publish.
var ErrNoModelVersion = errors.New("serve: no model version to snapshot")

// Tenant is one named optimizer session: a System, its model registry,
// and the telemetry ingestion pipeline. All methods are safe for
// concurrent use; Run/Optimize traffic keeps flowing while Retrain (or
// the background retraining loop) hot-swaps model versions underneath.
type Tenant struct {
	// Name is the tenant's session key.
	Name string

	sys *engine.System
	reg *Registry

	// state is the tenant's durable state (nil when the service runs
	// without a state directory): the flusher journals every batch there
	// before the in-memory append, and each publish snapshots the new
	// version asynchronously. log carries persistence warnings and
	// recovery notices, with the tenant name pre-bound as an attribute.
	state *persist.TenantState
	log   *slog.Logger

	// obs is the service's observability state (nil without metrics);
	// the tenant records its retrain durations there.
	obs *serviceObs

	// coalesce, when non-nil, collapses identical in-flight optimize
	// requests into one search (Config.Coalesce).
	coalesce *coalescer

	// notify, when non-nil, fires after every local publish (not after
	// replica installs) — the cluster layer's replication trigger.
	notify func(*Tenant, *ModelVersion)

	// Telemetry batches flow from Run through ingest to one flusher
	// goroutine, which appends them to the system log in merged batches
	// and checks the retraining threshold — Runs never block on the log
	// mutex behind a training pass. flushReq carries flush barriers:
	// the flusher drains everything queued ahead of the barrier, then
	// closes the ack channel.
	ingest   chan []telemetry.Record
	flushReq chan chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup

	retrainThreshold int
	lastTrain        atomic.Int64 // log size at the last publish
	training         atomic.Bool  // single-flight retrain guard

	queries         atomic.Uint64
	runs            atomic.Uint64
	optimizes       atomic.Uint64
	errors          atomic.Uint64
	retrains        atomic.Uint64
	replicaInstalls atomic.Uint64
}

func newTenant(name string, sys *engine.System, retrainThreshold, ingestBuffer int,
	state *persist.TenantState, logger *slog.Logger, so *serviceObs,
	coalesce bool, notify func(*Tenant, *ModelVersion)) *Tenant {
	if ingestBuffer <= 0 {
		ingestBuffer = 128
	}
	if logger == nil {
		logger = slog.Default()
	}
	t := &Tenant{
		Name:             name,
		sys:              sys,
		reg:              &Registry{},
		state:            state,
		log:              logger.With("tenant", name),
		obs:              so,
		notify:           notify,
		ingest:           make(chan []telemetry.Record, ingestBuffer),
		flushReq:         make(chan chan struct{}),
		done:             make(chan struct{}),
		retrainThreshold: retrainThreshold,
	}
	if coalesce {
		t.coalesce = newCoalescer()
	}
	t.recover()
	t.wg.Add(1)
	go t.flusher()
	return t
}

// recover restores the tenant's durable state before it serves anything:
// the latest loadable snapshot becomes the current model version (same
// id, metadata history resumed), and the journal's not-yet-trained
// records are replayed into the telemetry log so the next retrain — and
// the background threshold — see them. Corruption was already degraded to
// warnings by the persist layer; a tenant with nothing readable simply
// cold starts.
func (t *Tenant) recover() {
	if t.state == nil {
		return
	}
	// Table statistics first: replayed telemetry may trigger a retrain,
	// and post-restart queries should plan against the full catalog
	// without the client re-sending stats.
	if tabs, err := t.state.LoadTables(); err != nil {
		t.log.Warn("serve: skipping persisted table statistics", "err", err)
	} else if len(tabs) > 0 {
		for name, ts := range tabs {
			t.sys.RegisterTable(name, ts)
		}
		t.log.Info("serve: restored table statistics", "tables", len(tabs))
	}
	mans := t.state.Manifests()
	for i := len(mans) - 1; i >= 0; i-- {
		man := mans[i]
		pr, err := t.state.LoadModel(man.ID)
		if err != nil {
			// Fall back to the next older snapshot; newer-but-unloadable
			// manifests stay out of the restored history too.
			t.log.Warn("serve: skipping snapshot", "version", man.ID, "err", err)
			continue
		}
		history := make([]ModelVersionInfo, 0, i+1)
		for _, m := range mans[:i+1] {
			history = append(history, versionInfoOf(m))
		}
		t.reg.Restore(history, versionInfoOf(man), pr)
		t.sys.SetModels(pr)
		t.state.NoteRecoveredVersion(man.ID)
		t.log.Info("serve: restored model version",
			"version", man.ID, "models", man.NumModels, "train_records", man.TrainRecords)
		break
	}
	if recs := t.state.Replay(); len(recs) > 0 {
		t.sys.AppendTelemetry(recs)
		t.log.Info("serve: replayed journaled telemetry", "records", len(recs))
		t.maybeRetrain()
	}
}

// versionInfoOf converts a durable snapshot manifest back to registry
// metadata.
func versionInfoOf(m persist.Manifest) ModelVersionInfo {
	return ModelVersionInfo{
		ID:           m.ID,
		TrainedAt:    m.TrainedAt,
		TrainRecords: m.TrainRecords,
		NumModels:    m.NumModels,
		Accuracy:     m.Accuracy,
	}
}

// manifestOf is the inverse of versionInfoOf.
func manifestOf(info ModelVersionInfo) persist.Manifest {
	return persist.Manifest{
		ID:           info.ID,
		TrainedAt:    info.TrainedAt,
		TrainRecords: info.TrainRecords,
		NumModels:    info.NumModels,
		Accuracy:     info.Accuracy,
	}
}

// System exposes the underlying engine (catalog access, model save/load).
func (t *Tenant) System() *engine.System { return t.sys }

// Registry exposes the tenant's model-version registry.
func (t *Tenant) Registry() *Registry { return t.reg }

// HasModels reports whether a learned model version is live.
func (t *Tenant) HasModels() bool {
	return t.reg.Current() != nil || t.sys.Models() != nil
}

// RegisterTables registers stored-input statistics with the tenant's
// catalog and, when persistence is on and the catalog actually changed
// (idempotent re-sends leave the epoch untouched), snapshots the whole
// catalog to disk asynchronously — so the first post-restart or
// post-failover request no longer depends on the client re-sending stats.
func (t *Tenant) RegisterTables(tables map[string]stats.TableStats) {
	if len(tables) == 0 {
		return
	}
	cat := t.sys.Catalog()
	before := cat.Epoch()
	for name, ts := range tables {
		t.sys.RegisterTable(name, ts)
	}
	if t.state == nil || cat.Epoch() == before {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		// Snapshot inside the goroutine: a racing later registration is
		// then either already included here or will trigger its own save.
		if err := t.state.SaveTables(cat.Tables()); err != nil {
			t.log.Warn("serve: persisting table statistics failed", "err", err)
		}
	}()
}

// InstallReplica installs a model version replicated from the tenant's
// owner node: tables registered (and persisted), the version live in the
// registry under its origin id, and the snapshot artifacts written to this
// node's own state directory — so a failover serves the latest learned
// model warm, and a follower restart recovers it from local disk. model
// holds the owner's serialized snapshot bytes, written verbatim. Stale
// versions (at or below the live one) are dropped and reported false.
func (t *Tenant) InstallReplica(info ModelVersionInfo, pr *learned.Predictor,
	model []byte, tables map[string]stats.TableStats) bool {
	t.RegisterTables(tables)
	v, ok := t.reg.InstallReplica(info, pr)
	if !ok {
		return false
	}
	t.sys.SetModels(pr)
	t.replicaInstalls.Add(1)
	if t.state != nil && len(model) > 0 {
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			err := t.state.ImportSnapshot(manifestOf(v.Info), model)
			if err != nil && !errors.Is(err, persist.ErrStale) {
				t.log.Warn("serve: persisting replicated snapshot failed",
					"version", v.Info.ID, "err", err)
			}
		}()
	}
	return true
}

// prepare pins the current model version's predictor and prediction cache
// into opts so one optimization never mixes versions, and returns the
// version id it pinned (0 when none).
func (t *Tenant) prepare(opts *engine.RunOptions) int64 {
	if !opts.UseLearnedModels {
		return 0
	}
	v := t.reg.Current()
	if v == nil {
		return 0 // fall through to the system's own models (LoadModels path)
	}
	opts.Models = v.Predictor
	opts.Cache = v.Cache
	return v.Info.ID
}

// Run optimizes and executes q, routing telemetry through the ingestion
// pipeline (unless opts.SkipLogging).
func (t *Tenant) Run(q *plan.Logical, opts engine.RunOptions) (*engine.RunResult, error) {
	res, _, err := t.RunWithVersion(q, opts)
	return res, err
}

// RunWithVersion is Run, additionally reporting the model version id the
// request was priced with (0 when the default cost model was used).
func (t *Tenant) RunWithVersion(q *plan.Logical, opts engine.RunOptions) (*engine.RunResult, int64, error) {
	t.queries.Add(1)
	t.runs.Add(1)
	version := t.prepare(&opts)
	// The flusher owns log appends; a caller-supplied sink still sees
	// every batch.
	if callerSink := opts.LogSink; callerSink != nil {
		opts.LogSink = func(recs []telemetry.Record) {
			t.offer(recs)
			callerSink(recs)
		}
	} else {
		opts.LogSink = t.offer
	}
	res, err := t.sys.Run(q, opts)
	if err != nil {
		t.errors.Add(1)
		return nil, version, err
	}
	return res, version, nil
}

// Optimize plans q without executing it.
func (t *Tenant) Optimize(q *plan.Logical, opts engine.RunOptions) (*plan.Physical, float64, error) {
	p, cost, _, err := t.OptimizeWithVersion(q, opts)
	return p, cost, err
}

// OptimizeWithVersion is Optimize, additionally reporting the model
// version id the plan was priced with (0 when the default cost model was
// used).
func (t *Tenant) OptimizeWithVersion(q *plan.Logical, opts engine.RunOptions) (*plan.Physical, float64, int64, error) {
	p, cost, version, _, err := t.OptimizeCoalesced(q, opts)
	return p, cost, version, err
}

// OptimizeCoalesced is OptimizeWithVersion under the request-coalescing
// group: identical concurrent requests (same logical signature, params,
// model version and stats epoch) share one search, and the bool reports
// whether this call piggybacked on another request's computation. The
// shared *plan.Physical is read-only by the serving contract. Traced
// requests bypass the group — a trace is per-request output — as does a
// tenant without coalescing enabled.
func (t *Tenant) OptimizeCoalesced(q *plan.Logical, opts engine.RunOptions) (*plan.Physical, float64, int64, bool, error) {
	t.queries.Add(1)
	t.optimizes.Add(1)
	version := t.prepare(&opts)
	opts.SkipLogging = true // planning-only calls leave no telemetry
	if t.coalesce == nil || opts.Trace != nil {
		p, cost, err := t.sys.Optimize(q, opts)
		if err != nil {
			t.errors.Add(1)
		}
		return p, cost, version, false, err
	}
	key := coalesceKeyFor(q, opts, version, t.sys.Catalog().Epoch())
	p, cost, version, shared, err := t.coalesce.do(key, func() (*plan.Physical, float64, int64, error) {
		p, cost, err := t.sys.Optimize(q, opts)
		return p, cost, version, err
	})
	if shared {
		t.obs.noteCoalesced()
	}
	if err != nil {
		t.errors.Add(1) // each request that consumed the error counts it
	}
	return p, cost, version, shared, err
}

// offer hands a telemetry batch to the flusher, blocking only if the
// ingest buffer is full (backpressure rather than record loss).
func (t *Tenant) offer(recs []telemetry.Record) {
	select {
	case t.ingest <- recs:
	case <-t.done:
	}
}

// flusher drains the ingest channel, merging queued batches into one
// append, then checks the background-retraining threshold.
func (t *Tenant) flusher() {
	defer t.wg.Done()
	for {
		select {
		case recs := <-t.ingest:
			// Copy before merging: the first batch's slice is shared with
			// the caller's RunResult.Records, and appending other runs'
			// records into its spare capacity would mutate a buffer the
			// API caller also owns.
			batch := append([]telemetry.Record(nil), recs...)
		merge:
			for {
				select {
				case more := <-t.ingest:
					batch = append(batch, more...)
				default:
					break merge
				}
			}
			t.journalThenAppend(batch)
			t.maybeRetrain()
		case ack := <-t.flushReq:
			t.drain()
			close(ack)
		case <-t.done:
			t.drain()
			return
		}
	}
}

// drain appends everything currently queued on ingest to the system log.
func (t *Tenant) drain() {
	for {
		select {
		case recs := <-t.ingest:
			t.journalThenAppend(recs)
		default:
			return
		}
	}
}

// journalThenAppend durably journals one merged batch, then makes it
// visible to the in-memory log (and so to training). The journal write
// happens on the flusher goroutine — never on a request's path — and a
// failed write degrades to a warning: the records still serve the
// in-process feedback loop, they just will not survive a crash.
func (t *Tenant) journalThenAppend(recs []telemetry.Record) {
	if t.state != nil {
		if err := t.state.AppendJournal(recs); err != nil {
			t.log.Warn("serve: telemetry journal append failed", "err", err)
		}
	}
	t.sys.AppendTelemetry(recs)
}

// flush blocks until every telemetry batch enqueued before the call has
// reached the system log.
func (t *Tenant) flush() {
	ack := make(chan struct{})
	select {
	case t.flushReq <- ack:
		<-ack
	case <-t.done:
	}
}

// maybeRetrain launches a single-flight background retrain once the log
// has grown past the threshold since the last publish.
func (t *Tenant) maybeRetrain() {
	if t.retrainThreshold <= 0 {
		return
	}
	if int64(t.sys.LogSize())-t.lastTrain.Load() < int64(t.retrainThreshold) {
		return
	}
	if !t.training.CompareAndSwap(false, true) {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer t.training.Store(false)
		if _, err := t.retrain(); err != nil {
			t.errors.Add(1)
		}
	}()
}

// Retrain trains a new model version from the accumulated telemetry and
// hot-swaps it in. It returns ErrRetrainInProgress when a (background or
// explicit) retrain is already running.
func (t *Tenant) Retrain() (ModelVersionInfo, error) {
	if !t.training.CompareAndSwap(false, true) {
		return ModelVersionInfo{}, ErrRetrainInProgress
	}
	defer t.training.Store(false)
	info, err := t.retrain()
	if err != nil {
		t.errors.Add(1)
	}
	return info, err
}

// accuracySnapshotCap bounds the per-publish accuracy evaluation.
const accuracySnapshotCap = 2000

func (t *Tenant) retrain() (ModelVersionInfo, error) {
	// Barrier: completed queries ack to the client after enqueueing their
	// records, so an explicit retrain right behind them must train on
	// everything already offered, not on whatever the flusher got to.
	t.flush()
	recs := t.sys.TelemetryLog()
	var t0 time.Time
	if t.obs != nil {
		t0 = time.Now()
	}
	pr, err := learned.TrainSplit(recs, learned.DefaultTrainConfig())
	if err != nil {
		return ModelVersionInfo{}, err
	}
	if !t0.IsZero() {
		t.obs.retrainSeconds.Record(time.Since(t0))
	}
	eval := recs
	if len(eval) > accuracySnapshotCap {
		eval = eval[len(eval)-accuracySnapshotCap:]
	}
	acc := pr.Evaluate(eval)
	t.sys.SetModels(pr) // keep direct System access (Save/Evaluate) current
	v := t.reg.Publish(pr, len(recs), acc)
	t.lastTrain.Store(int64(len(recs)))
	t.retrains.Add(1)
	t.snapshotAsync(v)
	if t.notify != nil {
		t.notify(t, v) // replication trigger; must not block serving
	}
	return v.Info, nil
}

// snapshotAsync persists the freshly published version off the serving
// and retraining paths. The write is tracked by the tenant's WaitGroup so
// close() never abandons an in-flight snapshot, and persist serializes
// concurrent writes while dropping stale (superseded) ones.
func (t *Tenant) snapshotAsync(v *ModelVersion) {
	if t.state == nil {
		return
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		_ = t.writeSnapshot(v)
	}()
}

// writeSnapshot persists one version and, once the snapshot is safely on
// disk, cuts the version's trained records from the telemetry journal —
// in that order, so a crash between the two can only over-retain journal
// records, never lose ones no snapshot has learned from.
func (t *Tenant) writeSnapshot(v *ModelVersion) error {
	err := t.state.SaveSnapshot(manifestOf(v.Info), v.Predictor)
	if errors.Is(err, persist.ErrStale) {
		return nil // a newer version's snapshot already covers this one
	}
	if err != nil {
		t.log.Warn("serve: snapshot failed", "version", v.Info.ID, "err", err)
		return err
	}
	if err := t.state.MarkTrained(v.trainedLocal); err != nil {
		t.log.Warn("serve: journal truncation after snapshot failed", "version", v.Info.ID, "err", err)
	}
	return nil
}

// Snapshot synchronously persists the current model version (the
// POST /v1/tenants/{name}/snapshot admin operation). Returns
// ErrPersistenceDisabled without a state directory and ErrNoModelVersion
// before the first publish; an already-persisted version is a no-op
// success.
func (t *Tenant) Snapshot() (ModelVersionInfo, error) {
	if t.state == nil {
		return ModelVersionInfo{}, ErrPersistenceDisabled
	}
	v := t.reg.Current()
	if v == nil {
		return ModelVersionInfo{}, ErrNoModelVersion
	}
	if err := t.writeSnapshot(v); err != nil {
		return ModelVersionInfo{}, err
	}
	return v.Info, nil
}

// TenantStats snapshots one tenant's serving counters.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Queries   uint64 `json:"queries"`
	Runs      uint64 `json:"runs"`
	Optimizes uint64 `json:"optimizes"`
	Errors    uint64 `json:"errors"`
	Retrains  uint64 `json:"retrains"`
	// Coalesced counts optimize requests that piggybacked on an identical
	// in-flight search; CoalesceLeaders counts the searches actually run
	// on behalf of the group (both 0 with coalescing disabled).
	Coalesced       uint64 `json:"coalesced,omitempty"`
	CoalesceLeaders uint64 `json:"coalesce_leaders,omitempty"`
	// ReplicaInstalls counts model versions installed warm from another
	// cluster node's replication push.
	ReplicaInstalls uint64 `json:"replica_installs,omitempty"`
	LogSize         int    `json:"log_size"`
	// Parallelism is the tenant's effective optimizer search parallelism
	// (worker-pool width of the concurrent Cascades search).
	Parallelism int `json:"parallelism"`
	// ExecWorkers is the tenant's default execution pipeline width on the
	// streaming backend (0 on the simulator, which has no pipeline width).
	ExecWorkers  int                `json:"exec_workers,omitempty"`
	ModelVersion int64              `json:"model_version"` // 0 = none live
	NumModels    int                `json:"num_models"`
	Cache        learned.CacheStats `json:"cache"`
	// TemplateCacheStats embeds the recurring-job memo-template counters
	// flat (template_hits, template_misses, …).
	cascades.TemplateCacheStats
	// Persist carries the durable-state counters (nil when the service
	// runs without a state directory).
	Persist *persist.Stats `json:"persist,omitempty"`
}

// Stats snapshots the tenant's counters and the live version's cache.
func (t *Tenant) Stats() TenantStats {
	s := TenantStats{
		Tenant:             t.Name,
		Queries:            t.queries.Load(),
		Runs:               t.runs.Load(),
		Optimizes:          t.optimizes.Load(),
		Errors:             t.errors.Load(),
		Retrains:           t.retrains.Load(),
		ReplicaInstalls:    t.replicaInstalls.Load(),
		LogSize:            t.sys.LogSize(),
		Parallelism:        t.sys.Parallelism(),
		ExecWorkers:        t.sys.ExecWorkers(engine.RunOptions{}),
		TemplateCacheStats: t.sys.TemplateStats(),
	}
	if t.coalesce != nil {
		s.Coalesced = t.coalesce.coalesced.Load()
		s.CoalesceLeaders = t.coalesce.leaders.Load()
	}
	if v := t.reg.Current(); v != nil {
		s.ModelVersion = v.Info.ID
		s.NumModels = v.Info.NumModels
		s.Cache = v.Cache.Stats()
	}
	if t.state != nil {
		ps := t.state.Stats()
		s.Persist = &ps
	}
	return s
}

// close stops the flusher after draining queued telemetry, waits for any
// in-flight background retrain or snapshot write, then releases the
// durable state.
func (t *Tenant) close() {
	close(t.done)
	t.wg.Wait()
	if t.state != nil {
		if err := t.state.Close(); err != nil {
			t.log.Warn("serve: closing durable state", "err", err)
		}
	}
}
