package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cleo/internal/engine"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

// TestTenantParallelismKnob pins the per-tenant parallelism plumbing: the
// service config reaches new tenants' systems and surfaces in stats and in
// the /v1/stats JSON.
func TestTenantParallelismKnob(t *testing.T) {
	svc := NewService(Config{Parallelism: 3})
	defer svc.Close()
	tn := svc.Tenant("knob")
	if got := tn.Stats().Parallelism; got != 3 {
		t.Fatalf("tenant parallelism = %d, want 3", got)
	}

	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/stats?tenant=knob")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st TenantStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Parallelism != 3 {
		t.Fatalf("/v1/stats parallelism = %d, want 3", st.Parallelism)
	}
}

// TestConcurrentOptimizeParallelSearch hammers one tenant with concurrent
// learned resource-aware Optimize calls while each search fans out over
// its own worker pool (run under -race), and checks all callers see the
// same plan.
func TestConcurrentOptimizeParallelSearch(t *testing.T) {
	svc := NewService(Config{Parallelism: 4})
	defer svc.Close()
	tn := svc.Tenant("par")
	tn.System().RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})
	q := plan.NewOutput(plan.NewAggregate(plan.NewSelect(
		plan.NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
	for seed := int64(1); seed <= 20; seed++ {
		if _, err := tn.Run(q, engine.RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tn.Retrain(); err != nil {
		t.Fatal(err)
	}

	opts := engine.RunOptions{
		Seed: 7, Param: 2,
		UseLearnedModels: true, ResourceAware: true,
	}
	want, _, err := tn.Optimize(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	plans := make([]string, 16)
	errs := make([]error, 16)
	for i := range plans {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, _, err := tn.Optimize(q, opts)
			if err != nil {
				errs[i] = err
				return
			}
			plans[i] = p.String()
		}()
	}
	wg.Wait()
	for i := range plans {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if plans[i] != want.String() {
			t.Fatalf("concurrent plan %d diverged", i)
		}
	}
	if !strings.Contains(want.String(), "Aggregate") {
		t.Fatalf("unexpected plan %s", want)
	}
}
