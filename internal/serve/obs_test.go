package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cleo/internal/obs"
)

// scrape fetches and returns the /metrics exposition.
func scrape(t *testing.T, url string) string {
	t.Helper()
	status, body := getJSON(t, url+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	return string(body)
}

// seriesValues parses an exposition into series -> value (last sample
// wins; series is the full name{labels} key).
func seriesValues(body string) map[string]string {
	out := map[string]string{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok {
			out[name] = val
		}
	}
	return out
}

// TestMetricsEndpoint drives real traffic through the handler and then
// asserts the Prometheus exposition is live end to end: HTTP middleware,
// optimizer search metrics, learned batch costing, retrain timing, and
// the per-tenant derived gauges.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	svc := NewService(Config{Metrics: reg, Logf: quiet})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	for seed := int64(1); seed <= 30; seed++ {
		status, body := postJSON(t, srv.URL+"/v1/query", queryBody("ads", seed, `,"param":2`))
		if status != http.StatusOK {
			t.Fatalf("query %d: %d: %s", seed, status, body)
		}
	}
	tn, _ := svc.Lookup("ads")
	waitForLog(t, tn, 30)
	if status, body := postJSON(t, srv.URL+"/v1/retrain", `{"tenant":"ads"}`); status != http.StatusOK {
		t.Fatalf("retrain: %d (%s)", status, body)
	}
	// A learned resource-aware query after the publish exercises batch
	// costing and the prediction cache.
	for seed := int64(40); seed <= 42; seed++ {
		status, _ := postJSON(t, srv.URL+"/v1/query",
			queryBody("ads", seed, `,"param":2,"resource_aware":true`))
		if status != http.StatusOK {
			t.Fatalf("learned query %d failed", seed)
		}
	}

	body := scrape(t, srv.URL)
	vals := seriesValues(body)
	if len(vals) < 12 {
		t.Fatalf("only %d series exposed, want >= 12:\n%s", len(vals), body)
	}
	nonzero := []string{
		`cleo_http_requests_total{class="2xx",route="query"}`,
		`cleo_http_request_seconds_count{route="query"}`,
		`cleo_http_requests_total{class="2xx",route="retrain"}`,
		`cleo_optimize_seconds_count`,
		`cleo_execute_seconds_count`,
		`cleo_retrain_seconds_count`,
		`cleo_costing_batches_total`,
		`cleo_template_requests_total{result="miss"}`,
	}
	for _, s := range nonzero {
		v, ok := vals[s]
		if !ok {
			t.Errorf("series %s missing from exposition", s)
			continue
		}
		if v == "0" {
			t.Errorf("series %s = 0, want nonzero", s)
		}
	}
	for _, s := range []string{
		`cleo_cache_hit_ratio{cache="prediction",tenant="ads"}`,
		`cleo_cache_hit_ratio{cache="stage_fit",tenant="ads"}`,
		`cleo_cache_hit_ratio{cache="template",tenant="ads"}`,
		`cleo_http_inflight_requests`,
	} {
		if _, ok := vals[s]; !ok {
			t.Errorf("series %s missing from exposition", s)
		}
	}
	// The optimizer phase histogram must expose every phase label.
	for _, phase := range []string{"copy_in", "explore", "costing", "enforce", "arbitrate"} {
		key := fmt.Sprintf("cleo_optimize_phase_seconds_count{phase=%q}", phase)
		if _, ok := vals[key]; !ok {
			t.Errorf("series %s missing from exposition", key)
		}
	}
}

// TestQueryTrace opts a request into tracing and checks the span tree:
// ids present, optimize and execute roots, and phase children summing
// exactly to the optimize span (serving parallelism is 1, so phases are
// disjoint and the explicit "other" residual closes the gap).
func TestQueryTrace(t *testing.T) {
	svc := NewService(Config{})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	status, body := postJSON(t, srv.URL+"/v1/query",
		queryBody("ads", 1, `,"trace":true,"resource_aware":true`))
	if status != http.StatusOK {
		t.Fatalf("traced query: %d: %s", status, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	tr := qr.Trace
	if tr == nil {
		t.Fatal("traced query returned no trace")
	}
	if len(tr.TraceID) != 16 || tr.TotalNs <= 0 {
		t.Fatalf("trace header: %+v", tr)
	}
	var optimize, execute *obs.SpanJSON
	for _, s := range tr.Spans {
		switch s.Name {
		case "optimize":
			optimize = s
		case "execute":
			execute = s
		}
	}
	if optimize == nil || execute == nil {
		t.Fatalf("missing root spans: %+v", tr.Spans)
	}
	if optimize.Attrs["template"] != "miss" || optimize.Attrs["memo_groups"] == "" {
		t.Fatalf("optimize attrs: %+v", optimize.Attrs)
	}
	if len(optimize.Children) == 0 {
		t.Fatal("optimize span has no phase children")
	}
	var sum int64
	for _, c := range optimize.Children {
		if c.DurationNs < 0 {
			t.Fatalf("child %s has negative duration", c.Name)
		}
		sum += c.DurationNs
	}
	if sum != optimize.DurationNs {
		t.Fatalf("phase children sum %d != optimize duration %d", sum, optimize.DurationNs)
	}
	if execute.DurationNs <= 0 || execute.Attrs["containers"] == "" {
		t.Fatalf("execute span: %+v", execute)
	}

	// Untraced requests must not carry a tree.
	status, body = postJSON(t, srv.URL+"/v1/query", queryBody("ads", 2, ""))
	if status != http.StatusOK {
		t.Fatalf("untraced query: %d", status)
	}
	qr = QueryResponse{}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Trace != nil {
		t.Fatal("untraced query returned a trace")
	}
}

// syncBuf is a goroutine-safe log sink (background retrains and request
// handlers may log concurrently).
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLog sets a zero-distance threshold so every query is
// "slow" and checks the structured record carries tenant, mode and the
// trace id of the traced request.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuf
	svc := NewService(Config{
		Logger:    slog.New(slog.NewTextHandler(&buf, nil)),
		SlowQuery: time.Nanosecond,
	})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	status, body := postJSON(t, srv.URL+"/v1/query", queryBody("ads", 1, `,"trace":true`))
	if status != http.StatusOK {
		t.Fatalf("query: %d: %s", status, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query record logged:\n%s", out)
	}
	for _, want := range []string{"tenant=ads", "mode=run", "route=query",
		"trace_id=" + qr.Trace.TraceID} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-query record missing %q:\n%s", want, out)
		}
	}
}

// TestLogfBridge checks the legacy printf hook still receives structured
// records rendered as lines.
func TestLogfBridge(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	logger := slog.New(&logfHandler{logf: logf}).With("tenant", "ads")
	logger.Warn("serve: snapshot failed", "version", 3, "err", "boom")
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	want := "serve: snapshot failed tenant=ads version=3 err=boom"
	if lines[0] != want {
		t.Fatalf("bridged line %q, want %q", lines[0], want)
	}
}
