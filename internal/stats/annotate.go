package stats

import (
	"fmt"
	"strings"

	"cleo/internal/plan"
)

// CardinalityMode selects how estimated cardinalities are produced.
type CardinalityMode int

const (
	// Estimated uses the biased selectivity estimator; errors compound
	// multiplicatively up the plan, as in production SCOPE.
	Estimated CardinalityMode = iota
	// Perfect feeds actual runtime cardinalities back as estimates — the
	// best any cardinality estimator could achieve (Figure 1's dotted
	// lines).
	Perfect
)

// Annotate fills Stats (EstCard, ActCard, RowLength) for every node of the
// physical plan bottom-up. jobSeed drives the per-instance drift of true
// selectivities. Leaf Extract nodes must reference tables registered in
// the catalog.
func (c *Catalog) Annotate(root *plan.Physical, jobSeed int64, mode CardinalityMode) error {
	var visit func(n *plan.Physical) error
	visit = func(n *plan.Physical) error {
		for _, ch := range n.Children {
			if err := visit(ch); err != nil {
				return err
			}
		}
		return c.annotateNode(n, jobSeed)
	}
	if err := visit(root); err != nil {
		return err
	}
	if mode == Perfect {
		root.Walk(func(n *plan.Physical) { n.Stats.EstCard = n.Stats.ActCard })
	}
	return nil
}

// AnnotateOne computes a single node's stats from its already-annotated
// children — the incremental form the optimizer uses while constructing
// candidate operators.
func (c *Catalog) AnnotateOne(n *plan.Physical, jobSeed int64) error {
	return c.annotateNode(n, jobSeed)
}

// annotateNode computes n's stats from its (already annotated) children.
func (c *Catalog) annotateNode(n *plan.Physical, jobSeed int64) error {
	sumAct, sumEst, maxAct, maxEst := 0.0, 0.0, 0.0, 0.0
	var childLen float64
	for _, ch := range n.Children {
		sumAct += ch.Stats.ActCard
		sumEst += ch.Stats.EstCard
		if ch.Stats.ActCard > maxAct {
			maxAct = ch.Stats.ActCard
		}
		if ch.Stats.EstCard > maxEst {
			maxEst = ch.Stats.EstCard
		}
		childLen += ch.Stats.RowLength
	}
	if len(n.Children) > 0 {
		childLen /= float64(len(n.Children))
	}

	switch n.Op {
	case plan.PExtract:
		ts, ok := c.Table(n.Table)
		if !ok {
			return fmt.Errorf("stats: unknown table %q", n.Table)
		}
		n.Stats.ActCard = ts.Rows
		n.Stats.EstCard = ts.Rows // input sizes are known to the optimizer
		n.Stats.RowLength = ts.RowLength

	case plan.PFilter:
		sel := c.TrueFilterSelectivity(n.Pred) * c.Drift(n.Pred, jobSeed)
		n.Stats.ActCard = sumAct * clamp(sel, 0, 1)
		n.Stats.EstCard = sumEst * c.EstFilterSelectivity(n.Pred)
		n.Stats.RowLength = childLen

	case plan.PProject:
		n.Stats.ActCard = sumAct
		n.Stats.EstCard = sumEst
		n.Stats.RowLength = childLen * c.ProjectWidthFactor(keysFP(n))

	case plan.PHashJoin, plan.PMergeJoin:
		fan := c.TrueJoinFanout(n.Pred) * c.Drift(n.Pred, jobSeed)
		n.Stats.ActCard = maxAct * fan
		n.Stats.EstCard = maxEst * c.EstJoinFanout(n.Pred)
		// Joined rows carry both sides' columns.
		n.Stats.RowLength = childLen * 2 * 0.8

	case plan.PHashAggregate, plan.PStreamAggregate:
		key := aggKey(n)
		red := c.TrueAggReduction(key) * c.Drift(key, jobSeed)
		n.Stats.ActCard = sumAct * clamp(red, 0, 1)
		n.Stats.EstCard = sumEst * c.EstAggReduction(key)
		n.Stats.RowLength = childLen * 0.6

	case plan.PPartialAggregate:
		// Local pre-aggregation reduces less than the global aggregate:
		// each partition sees only part of the key space.
		key := aggKey(n)
		red := clamp(c.TrueAggReduction(key)*8, 0.05, 1) * c.Drift(key+"#l", jobSeed)
		n.Stats.ActCard = sumAct * clamp(red, 0, 1)
		n.Stats.EstCard = sumEst * clamp(c.EstAggReduction(key)*8, 0.05, 1)
		n.Stats.RowLength = childLen * 0.8

	case plan.PSort, plan.PExchange:
		n.Stats.ActCard = sumAct
		n.Stats.EstCard = sumEst
		n.Stats.RowLength = childLen

	case plan.PTopN:
		lim := float64(n.N)
		if lim <= 0 {
			lim = 100
		}
		n.Stats.ActCard = minF(sumAct, lim)
		n.Stats.EstCard = minF(sumEst, lim)
		n.Stats.RowLength = childLen

	case plan.PUnionAll:
		n.Stats.ActCard = sumAct
		n.Stats.EstCard = sumEst
		n.Stats.RowLength = childLen

	case plan.PProcess:
		fan := c.TrueProcessFanout(n.UDF) * c.Drift(n.UDF, jobSeed)
		n.Stats.ActCard = sumAct * fan
		n.Stats.EstCard = sumEst * c.EstProcessFanout(n.UDF)
		n.Stats.RowLength = childLen

	case plan.POutput:
		n.Stats.ActCard = sumAct
		n.Stats.EstCard = sumEst
		n.Stats.RowLength = childLen

	default:
		return fmt.Errorf("stats: unhandled operator %v", n.Op)
	}
	if n.Stats.RowLength <= 0 {
		n.Stats.RowLength = 10
	}
	return nil
}

// aggKey identifies an aggregation for reduction lookup: the explicit
// predicate id when the workload pinned one, otherwise a fingerprint of
// the group keys and inputs.
func aggKey(n *plan.Physical) string {
	if n.Pred != "" {
		return n.Pred
	}
	return keysFP(n)
}

func keysFP(n *plan.Physical) string {
	parts := make([]string, 0, len(n.Keys)+1)
	for _, k := range n.Keys {
		parts = append(parts, string(k))
	}
	parts = append(parts, strings.Join(n.InputTemplates(), "+"))
	return strings.Join(parts, ",")
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
