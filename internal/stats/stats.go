// Package stats implements the data-statistics substrate: table statistics,
// a selectivity-based cardinality estimator whose errors compound up the
// plan (the behaviour Section 2.4 of the paper attributes to SCOPE's
// estimator), a perfect-cardinality feedback mode, and a CardLearner
// baseline (Wu et al., [47]) that corrects cardinalities with per-template
// Poisson regression.
//
// True selectivities and estimator biases are deterministic functions of
// predicate identifiers, so recurring job instances see stable data
// distributions (Section 3.1) while different predicates behave
// differently. Per-instance drift is driven by the job seed.
package stats

import (
	"hash/fnv"
	"math"
	"sync"
)

// TableStats describes one stored input instance.
type TableStats struct {
	// Rows is the row count of this instance of the input.
	Rows float64
	// RowLength is the average row length in bytes.
	RowLength float64
	// PartitionedOn, when non-empty, marks the input as stored
	// hash-partitioned on that column with the given partition count —
	// scans of such inputs deliver that partitioning for free (the
	// mechanism behind the paper's TPC-H Q8/Q9 shuffle eliminations).
	PartitionedOn string
	// Partitions is the stored partition count when PartitionedOn is set.
	Partitions int
}

// Catalog resolves table statistics and operator selectivities. The zero
// value is unusable; construct with NewCatalog. Methods are safe for
// concurrent use: the serving layer registers tables on live tenants
// while optimizations read them.
type Catalog struct {
	mu     sync.RWMutex // guards tables and the override maps
	tables map[string]TableStats
	// epoch counts statistics mutations (table registrations and
	// selectivity overrides). Caches keyed on optimizer inputs — the
	// recurring-job template cache above all — fold it into their keys, so
	// a stats update automatically misses instead of serving state derived
	// from the old catalog.
	epoch uint64
	// seed perturbs the deterministic selectivity functions so different
	// simulated clusters have different data distributions.
	seed uint64
	// Explicit overrides (true, estimated), keyed by predicate id; used by
	// workloads with known semantics such as TPC-H.
	filterOv map[string][2]float64
	joinOv   map[string][2]float64
	aggOv    map[string][2]float64
}

// NewCatalog returns an empty catalog for a cluster with the given seed.
func NewCatalog(seed uint64) *Catalog {
	return &Catalog{
		tables:   map[string]TableStats{},
		seed:     seed,
		filterOv: map[string][2]float64{},
		joinOv:   map[string][2]float64{},
		aggOv:    map[string][2]float64{},
	}
}

// OverrideFilter pins a predicate's true and estimated selectivity.
func (c *Catalog) OverrideFilter(pred string, trueSel, estSel float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := [2]float64{trueSel, estSel}
	if old, ok := c.filterOv[pred]; !ok || old != v {
		c.epoch++
	}
	c.filterOv[pred] = v
}

// OverrideJoinFanout pins a join predicate's true and estimated fanout.
func (c *Catalog) OverrideJoinFanout(pred string, trueFan, estFan float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := [2]float64{trueFan, estFan}
	if old, ok := c.joinOv[pred]; !ok || old != v {
		c.epoch++
	}
	c.joinOv[pred] = v
}

// OverrideAggReduction pins a group-by key's true and estimated reduction.
func (c *Catalog) OverrideAggReduction(key string, trueRed, estRed float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := [2]float64{trueRed, estRed}
	if old, ok := c.aggOv[key]; !ok || old != v {
		c.epoch++
	}
	c.aggOv[key] = v
}

// PutTable registers (or updates) the statistics of a stored input.
func (c *Catalog) PutTable(name string, ts TableStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.tables[name]; !ok || old != ts {
		c.epoch++
	}
	c.tables[name] = ts
}

// Epoch reports the current statistics epoch: it advances on every
// statistics *change* — a new table or override, or an existing one
// re-registered with different values — and never backwards. Idempotent
// re-registration (the serving pattern: every recurring request re-sends
// its `tables` stats) leaves it unchanged, so stats-epoch-keyed caches
// keep hitting across identical instances.
func (c *Catalog) Epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epoch
}

// Table returns the statistics for the named input and whether it exists.
func (c *Catalog) Table(name string) (TableStats, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.tables[name]
	return ts, ok
}

// Tables snapshots every registered table's statistics — the durable-state
// and replication layers persist/ship the whole catalog at once. The
// returned map is the caller's to keep.
func (c *Catalog) Tables() map[string]TableStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]TableStats, len(c.tables))
	for name, ts := range c.tables {
		out[name] = ts
	}
	return out
}

// override reads one override map entry under the read lock. Callers must
// not hold the lock (reads are not nested, keeping RLock non-reentrant).
func (c *Catalog) override(m map[string][2]float64, key string) ([2]float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ov, ok := m[key]
	return ov, ok
}

// hashUnit maps a string (plus the catalog seed and a salt) to a uniform
// float in [0, 1).
func (c *Catalog) hashUnit(salt, s string) float64 {
	h := fnv.New64a()
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(s))
	var b [8]byte
	v := h.Sum64() ^ c.seed*0x9e3779b97f4a7c15
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h2 := fnv.New64a()
	h2.Write(b[:])
	return float64(h2.Sum64()%1_000_000_007) / 1_000_000_007.0
}

// logUniform maps a unit sample to [lo, hi] log-uniformly.
func logUniform(u, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, u)
}

// TrueFilterSelectivity returns the actual selectivity of predicate pred,
// stable across job instances, in [0.02, 0.9].
func (c *Catalog) TrueFilterSelectivity(pred string) float64 {
	if ov, ok := c.override(c.filterOv, pred); ok {
		return ov[0]
	}
	return logUniform(c.hashUnit("fsel", pred), 0.02, 0.9)
}

// EstFilterSelectivity returns the optimizer's (biased) selectivity
// estimate: the true value distorted log-uniformly by up to ~6x either way.
func (c *Catalog) EstFilterSelectivity(pred string) float64 {
	if ov, ok := c.override(c.filterOv, pred); ok {
		return ov[1]
	}
	bias := logUniform(c.hashUnit("fbias", pred), 1.0/6, 6)
	s := c.TrueFilterSelectivity(pred) * bias
	return clamp(s, 1e-4, 1)
}

// TrueJoinFanout returns the actual join fanout f: the join of inputs of
// cardinality L and R produces max(L,R)*f rows, with f in [0.05, 2.5].
func (c *Catalog) TrueJoinFanout(pred string) float64 {
	if ov, ok := c.override(c.joinOv, pred); ok {
		return ov[0]
	}
	return logUniform(c.hashUnit("jfan", pred), 0.05, 2.5)
}

// EstJoinFanout returns the estimated fanout; joins are typically
// under-estimated (independence assumption), so the bias is skewed low and
// wide: up to ~20x under, ~5x over.
func (c *Catalog) EstJoinFanout(pred string) float64 {
	if ov, ok := c.override(c.joinOv, pred); ok {
		return ov[1]
	}
	bias := logUniform(c.hashUnit("jbias", pred), 1.0/20, 5)
	return c.TrueJoinFanout(pred) * bias
}

// TrueAggReduction returns the actual group-count reduction r: the
// aggregation of N rows produces N*r groups, r in [0.0005, 0.3].
func (c *Catalog) TrueAggReduction(key string) float64 {
	if ov, ok := c.override(c.aggOv, key); ok {
		return ov[0]
	}
	return logUniform(c.hashUnit("ared", key), 5e-4, 0.3)
}

// EstAggReduction returns the estimated reduction, biased up to ~4x.
func (c *Catalog) EstAggReduction(key string) float64 {
	if ov, ok := c.override(c.aggOv, key); ok {
		return ov[1]
	}
	bias := logUniform(c.hashUnit("abias", key), 0.25, 4)
	return clamp(c.TrueAggReduction(key)*bias, 1e-6, 1)
}

// TrueProcessFanout returns the actual output/input ratio of a UDF in
// [0.1, 2]. UDFs are black boxes, so the estimate is crude.
func (c *Catalog) TrueProcessFanout(udf string) float64 {
	return logUniform(c.hashUnit("pfan", udf), 0.1, 2)
}

// EstProcessFanout is the optimizer's guess for a UDF's fanout: always 1
// (SCOPE's default for unknown user code).
func (c *Catalog) EstProcessFanout(string) float64 { return 1 }

// Drift returns a small per-instance multiplicative drift of the true
// selectivity, deterministic in (id, jobSeed): lognormal with sigma≈0.08.
func (c *Catalog) Drift(id string, jobSeed int64) float64 {
	u := c.hashUnit("drift", id+"/"+itoa(jobSeed))
	// Box-Muller-free approximation: map uniform to an approximately
	// normal quantile via inverse-CDF-ish logit, then exponentiate.
	z := logit(u) * 0.55 // stddev of logistic(0,0.55) ≈ 1
	return math.Exp(0.08 * z)
}

// ProjectWidthFactor returns the row-length shrink factor of a projection.
func (c *Catalog) ProjectWidthFactor(keysFingerprint string) float64 {
	return 0.3 + 0.6*c.hashUnit("pw", keysFingerprint)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func logit(u float64) float64 {
	u = clamp(u, 1e-9, 1-1e-9)
	return math.Log(u / (1 - u))
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
