package stats

import (
	"math"

	"cleo/internal/plan"
)

// CardLearner is the cardinality-learning baseline the paper compares
// against (Figure 15): per operator-subgraph template, a Poisson regression
// predicts the actual output cardinality from the optimizer's estimate and
// the base input cardinality. Learned corrections replace EstCard; the cost
// model itself is unchanged.
type CardLearner struct {
	models map[plan.Signature]*poissonModel
	// minSamples is the occurrence threshold below which no model is
	// learned for a template.
	minSamples int
}

// NewCardLearner returns an empty learner requiring minSamples occurrences
// per template (the paper uses 5 for subgraph models).
func NewCardLearner(minSamples int) *CardLearner {
	if minSamples < 2 {
		minSamples = 2
	}
	return &CardLearner{models: map[plan.Signature]*poissonModel{}, minSamples: minSamples}
}

// CardSample is one training observation for a subgraph template.
type CardSample struct {
	Signature plan.Signature
	EstCard   float64
	BaseCard  float64
	ActCard   float64
}

// Train fits one Poisson regression per subgraph template with enough
// samples.
func (cl *CardLearner) Train(samples []CardSample) {
	grouped := map[plan.Signature][]CardSample{}
	for _, s := range samples {
		grouped[s.Signature] = append(grouped[s.Signature], s)
	}
	for sig, group := range grouped {
		if len(group) < cl.minSamples {
			continue
		}
		m := fitPoisson(group)
		if m != nil {
			cl.models[sig] = m
		}
	}
}

// NumModels reports how many templates have learned corrections.
func (cl *CardLearner) NumModels() int { return len(cl.models) }

// Correct returns the corrected cardinality estimate for a subgraph with
// the given signature, falling back to est when no model exists.
func (cl *CardLearner) Correct(sig plan.Signature, est, base float64) float64 {
	m, ok := cl.models[sig]
	if !ok {
		return est
	}
	return m.predict(est, base)
}

// Apply rewrites EstCard throughout the plan using learned corrections.
// Signatures are recomputed per node.
func (cl *CardLearner) Apply(root *plan.Physical) {
	base := root.BaseCardinality()
	root.Walk(func(n *plan.Physical) {
		sig := plan.SubgraphSignature(n)
		n.Stats.EstCard = cl.Correct(sig, n.Stats.EstCard, base)
	})
}

// poissonModel is a Poisson GLM: E[act] = exp(w0 + w1*(log1p(est)-c1) +
// w2*(log1p(base)-c2)), with features centered at the training means for
// numerical stability.
type poissonModel struct {
	w      [3]float64
	center [2]float64
}

func (m *poissonModel) predict(est, base float64) float64 {
	z := m.w[0] + m.w[1]*(math.Log1p(est)-m.center[0]) + m.w[2]*(math.Log1p(base)-m.center[1])
	if z > 40 {
		z = 40
	}
	return math.Expm1(z) + 1
}

// fitPoisson runs gradient ascent on the Poisson log-likelihood with
// centered features and mean-scaled targets to keep exp() stable; both fold
// back into the stored model.
func fitPoisson(samples []CardSample) *poissonModel {
	n := len(samples)
	if n == 0 {
		return nil
	}
	xs := make([][3]float64, n)
	ys := make([]float64, n)
	var meanY, m1, m2 float64
	for i, s := range samples {
		xs[i] = [3]float64{1, math.Log1p(s.EstCard), math.Log1p(s.BaseCard)}
		ys[i] = s.ActCard
		meanY += s.ActCard
		m1 += xs[i][1]
		m2 += xs[i][2]
	}
	meanY /= float64(n)
	m1 /= float64(n)
	m2 /= float64(n)
	if meanY <= 0 {
		meanY = 1
	}
	for i := range xs {
		xs[i][1] -= m1
		xs[i][2] -= m2
		ys[i] /= meanY
	}
	m := &poissonModel{center: [2]float64{m1, m2}}
	lr := 0.05
	for iter := 0; iter < 800; iter++ {
		var grad [3]float64
		for i := range xs {
			z := m.w[0]*xs[i][0] + m.w[1]*xs[i][1] + m.w[2]*xs[i][2]
			if z > 20 {
				z = 20
			}
			mu := math.Exp(z)
			d := ys[i] - mu
			for k := 0; k < 3; k++ {
				grad[k] += d * xs[i][k]
			}
		}
		for k := 0; k < 3; k++ {
			g := grad[k] / float64(n)
			// Clip to keep the ascent stable on heavy-tailed counts.
			if g > 5 {
				g = 5
			} else if g < -5 {
				g = -5
			}
			m.w[k] += lr * g
		}
	}
	// Fold the target scale back into the intercept.
	m.w[0] += math.Log(meanY)
	return m
}
