package stats

import (
	"math"
	"testing"

	"cleo/internal/plan"
)

func testCatalog() *Catalog {
	c := NewCatalog(7)
	c.PutTable("clicks_2026_06_11", TableStats{Rows: 1e7, RowLength: 120})
	c.PutTable("users_2026_06_11", TableStats{Rows: 1e5, RowLength: 60})
	return c
}

func TestSelectivityDeterminism(t *testing.T) {
	c := testCatalog()
	if c.TrueFilterSelectivity("p1") != c.TrueFilterSelectivity("p1") {
		t.Fatal("true selectivity not deterministic")
	}
	if c.TrueFilterSelectivity("p1") == c.TrueFilterSelectivity("p2") {
		t.Fatal("different predicates should differ")
	}
	s := c.TrueFilterSelectivity("p1")
	if s < 0.02 || s > 0.9 {
		t.Fatalf("selectivity %v out of range", s)
	}
}

func TestSeedChangesDistributions(t *testing.T) {
	a := NewCatalog(1)
	b := NewCatalog(2)
	if a.TrueFilterSelectivity("p") == b.TrueFilterSelectivity("p") {
		t.Fatal("catalog seed should change selectivities")
	}
}

func TestEstimateBiased(t *testing.T) {
	c := testCatalog()
	diff := false
	for _, p := range []string{"a", "b", "c", "d", "e"} {
		if math.Abs(c.EstFilterSelectivity(p)-c.TrueFilterSelectivity(p)) > 1e-12 {
			diff = true
		}
	}
	if !diff {
		t.Fatal("estimates should be biased away from truth")
	}
}

func TestDriftSmallAndDeterministic(t *testing.T) {
	c := testCatalog()
	d1 := c.Drift("p1", 42)
	d2 := c.Drift("p1", 42)
	if d1 != d2 {
		t.Fatal("drift not deterministic")
	}
	if d1 < 0.5 || d1 > 2.0 {
		t.Fatalf("drift %v implausibly large", d1)
	}
	if c.Drift("p1", 1) == c.Drift("p1", 2) {
		t.Fatal("different instances should drift differently")
	}
}

// buildJoinPlan: Output(HashAgg(Exchange(HashJoin(Filter(Extract), Extract)))).
func buildJoinPlan() *plan.Physical {
	l := plan.NewPhysical(plan.PExtract)
	l.Table = "clicks_2026_06_11"
	l.InputTemplate = "clicks_"
	l.Partitions = 8
	f := plan.NewPhysical(plan.PFilter, l)
	f.Pred = "market=us"
	f.Partitions = 8
	r := plan.NewPhysical(plan.PExtract)
	r.Table = "users_2026_06_11"
	r.InputTemplate = "users_"
	r.Partitions = 2
	j := plan.NewPhysical(plan.PHashJoin, f, r)
	j.Pred = "clicks.user=users.id"
	j.Keys = []plan.Column{"user"}
	j.Partitions = 8
	x := plan.NewPhysical(plan.PExchange, j)
	x.Keys = []plan.Column{"region"}
	x.Partitions = 16
	a := plan.NewPhysical(plan.PHashAggregate, x)
	a.Keys = []plan.Column{"region"}
	a.Partitions = 16
	o := plan.NewPhysical(plan.POutput, a)
	o.Partitions = 16
	return o
}

func TestAnnotateFillsStats(t *testing.T) {
	c := testCatalog()
	root := buildJoinPlan()
	if err := c.Annotate(root, 1, Estimated); err != nil {
		t.Fatal(err)
	}
	root.Walk(func(n *plan.Physical) {
		if n.Stats.ActCard <= 0 {
			t.Errorf("%v actual card = %v", n.Op, n.Stats.ActCard)
		}
		if n.Stats.EstCard <= 0 {
			t.Errorf("%v est card = %v", n.Op, n.Stats.EstCard)
		}
		if n.Stats.RowLength <= 0 {
			t.Errorf("%v row length = %v", n.Op, n.Stats.RowLength)
		}
	})
	// Filter must reduce cardinality.
	filter := root.Children[0].Children[0].Children[0].Children[0]
	if filter.Op != plan.PFilter {
		t.Fatalf("expected filter, got %v", filter.Op)
	}
	if filter.Stats.ActCard >= 1e7 {
		t.Fatalf("filter did not reduce: %v", filter.Stats.ActCard)
	}
}

func TestAnnotatePerfectMode(t *testing.T) {
	c := testCatalog()
	root := buildJoinPlan()
	if err := c.Annotate(root, 1, Perfect); err != nil {
		t.Fatal(err)
	}
	root.Walk(func(n *plan.Physical) {
		if n.Stats.EstCard != n.Stats.ActCard {
			t.Errorf("%v: perfect mode est %v != act %v", n.Op, n.Stats.EstCard, n.Stats.ActCard)
		}
	})
}

func TestAnnotateUnknownTable(t *testing.T) {
	c := NewCatalog(1)
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.Table = "missing"
	if err := c.Annotate(leaf, 1, Estimated); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestEstimationErrorCompounds(t *testing.T) {
	// Deep chains of filters should (typically) accumulate more relative
	// error than a single filter. Check on a chain of 6.
	c := testCatalog()
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.Table = "clicks_2026_06_11"
	leaf.InputTemplate = "clicks_"
	leaf.Partitions = 4
	cur := leaf
	var first *plan.Physical
	for i := 0; i < 6; i++ {
		f := plan.NewPhysical(plan.PFilter, cur)
		f.Pred = "pred" + string(rune('a'+i))
		f.Partitions = 4
		if first == nil {
			first = f
		}
		cur = f
	}
	if err := c.Annotate(cur, 1, Estimated); err != nil {
		t.Fatal(err)
	}
	errAt := func(n *plan.Physical) float64 {
		return math.Abs(math.Log(n.Stats.EstCard / n.Stats.ActCard))
	}
	if errAt(cur) <= errAt(first) {
		t.Logf("note: error did not compound on this seed (top %v, first %v)", errAt(cur), errAt(first))
	}
	if errAt(cur) == 0 {
		t.Fatal("expected some estimation error at the top of a deep chain")
	}
}

func TestCardLearnerCorrects(t *testing.T) {
	cl := NewCardLearner(5)
	// Template where actual is consistently 10x the estimate.
	sig := plan.Signature(123)
	var samples []CardSample
	for i := 0; i < 40; i++ {
		est := 1000.0 + float64(i)*50
		samples = append(samples, CardSample{
			Signature: sig, EstCard: est, BaseCard: 1e6, ActCard: est * 10,
		})
	}
	cl.Train(samples)
	if cl.NumModels() != 1 {
		t.Fatalf("models = %d, want 1", cl.NumModels())
	}
	got := cl.Correct(sig, 2000, 1e6)
	if got < 10000 || got > 40000 {
		t.Fatalf("corrected card = %v, want ~20000", got)
	}
	// Unknown signature falls back to the estimate.
	if got := cl.Correct(plan.Signature(999), 500, 1e6); got != 500 {
		t.Fatalf("fallback = %v, want 500", got)
	}
}

func TestCardLearnerMinSamples(t *testing.T) {
	cl := NewCardLearner(5)
	cl.Train([]CardSample{{Signature: 1, EstCard: 10, BaseCard: 10, ActCard: 100}})
	if cl.NumModels() != 0 {
		t.Fatal("should not learn from a single sample")
	}
}

func TestCardLearnerApply(t *testing.T) {
	c := testCatalog()
	root := buildJoinPlan()
	if err := c.Annotate(root, 1, Estimated); err != nil {
		t.Fatal(err)
	}
	// Train a learner on many instances of the same plan shape.
	var samples []CardSample
	for seed := int64(0); seed < 20; seed++ {
		r := buildJoinPlan()
		if err := c.Annotate(r, seed, Estimated); err != nil {
			t.Fatal(err)
		}
		base := r.BaseCardinality()
		r.Walk(func(n *plan.Physical) {
			samples = append(samples, CardSample{
				Signature: plan.SubgraphSignature(n),
				EstCard:   n.Stats.EstCard,
				BaseCard:  base,
				ActCard:   n.Stats.ActCard,
			})
		})
	}
	cl := NewCardLearner(5)
	cl.Train(samples)
	if cl.NumModels() == 0 {
		t.Fatal("no models learned")
	}

	before := math.Abs(math.Log(root.Stats.EstCard / root.Stats.ActCard))
	cl.Apply(root)
	after := math.Abs(math.Log(root.Stats.EstCard / root.Stats.ActCard))
	if after > before+1e-9 {
		t.Fatalf("CardLearner made root estimate worse: %v -> %v", before, after)
	}
}

// TestCatalogEpoch pins the statistics-epoch contract the template cache
// keys on: every real change advances it, idempotent re-registration (the
// serving layer re-sends `tables` with every recurring request) does not.
func TestCatalogEpoch(t *testing.T) {
	c := NewCatalog(1)
	if c.Epoch() != 0 {
		t.Fatalf("fresh catalog epoch = %d", c.Epoch())
	}
	ts := TableStats{Rows: 100, RowLength: 10}
	c.PutTable("t", ts)
	e1 := c.Epoch()
	if e1 == 0 {
		t.Fatal("new table did not advance the epoch")
	}
	c.PutTable("t", ts) // identical: must NOT advance
	if c.Epoch() != e1 {
		t.Fatal("idempotent table re-registration advanced the epoch")
	}
	c.OverrideFilter("p", 0.5, 0.4)
	e2 := c.Epoch()
	c.OverrideFilter("p", 0.5, 0.4) // identical override: must NOT advance
	if c.Epoch() != e2 {
		t.Fatal("idempotent override advanced the epoch")
	}
	if e2 == e1 {
		t.Fatal("new override did not advance the epoch")
	}
	c.PutTable("t", TableStats{Rows: 200, RowLength: 10})
	if c.Epoch() == e2 {
		t.Fatal("changed table stats did not advance the epoch")
	}
	c.OverrideJoinFanout("j", 1, 0.8)
	c.OverrideAggReduction("g", 0.1, 0.2)
	e3 := c.Epoch()
	c.OverrideJoinFanout("j", 1, 0.8)
	c.OverrideAggReduction("g", 0.1, 0.2)
	if c.Epoch() != e3 {
		t.Fatal("idempotent join/agg overrides advanced the epoch")
	}
}
