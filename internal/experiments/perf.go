package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/learned"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
	"cleo/internal/workload/tpch"
)

// JobComparison is one job optimized and executed under both optimizers.
type JobComparison struct {
	JobID string
	// Latency and processing time in seconds: default vs CLEO.
	DefaultLatency float64
	CleoLatency    float64
	DefaultTPT     float64
	CleoTPT        float64
	// OptimizeOverhead is (CLEO optimize time / default optimize time)-1.
	OptimizeOverhead float64
	PlanChanged      bool
	OperatorChange   bool
	DefaultSummary   plan.PlanSummary
	CleoSummary      plan.PlanSummary
}

// comparePlans runs one job through both optimizers and the simulator.
func comparePlans(job *workload.Job, cat *stats.Catalog, cluster *exec.Cluster, pr *learned.Predictor) (JobComparison, error) {
	out := JobComparison{JobID: job.ID}

	defOpt := &cascades.Optimizer{
		Catalog: cat, Cost: costmodel.Default{},
		MaxPartitions: cluster.MaxPartitions(), JobSeed: job.Seed,
	}
	t0 := time.Now()
	defRes, err := defOpt.Optimize(job.Query)
	if err != nil {
		return out, err
	}
	defDur := time.Since(t0)

	coster := &learned.Coster{Predictor: pr, Param: job.Param, Fallback: costmodel.Default{}}
	cleoOpt := &cascades.Optimizer{
		Catalog: cat, Cost: coster,
		MaxPartitions: cluster.MaxPartitions(), JobSeed: job.Seed,
		ResourceAware: true,
		Chooser:       &learned.AnalyticalChooser{Cost: coster},
	}
	t1 := time.Now()
	cleoRes, err := cleoOpt.Optimize(job.Query)
	if err != nil {
		return out, err
	}
	cleoDur := time.Since(t1)
	// Overhead is reported against a realistic compilation baseline: SCOPE
	// job compilation takes a few hundred milliseconds (Section 6.6.3), of
	// which plan search is one part. Our memo alone runs in microseconds,
	// so a direct ratio would be meaningless.
	const compileBaseline = 200 * time.Millisecond
	out.OptimizeOverhead = float64(cleoDur-defDur) / float64(defDur+compileBaseline)

	out.DefaultSummary = plan.Summarize(defRes.Plan)
	out.CleoSummary = plan.Summarize(cleoRes.Plan)
	out.PlanChanged = defRes.Plan.String() != cleoRes.Plan.String()
	out.OperatorChange = operatorsDiffer(out.DefaultSummary, out.CleoSummary)

	// Execute both under identical run noise.
	defExec, err := cluster.Run(defRes.Plan, rand.New(rand.NewSource(job.Seed)))
	if err != nil {
		return out, err
	}
	cleoExec, err := cluster.Run(cleoRes.Plan, rand.New(rand.NewSource(job.Seed)))
	if err != nil {
		return out, err
	}
	out.DefaultLatency = defExec.Latency
	out.CleoLatency = cleoExec.Latency
	out.DefaultTPT = defExec.TotalProcessingTime
	out.CleoTPT = cleoExec.TotalProcessingTime
	return out, nil
}

func operatorsDiffer(a, b plan.PlanSummary) bool {
	if len(a.Operators) != len(b.Operators) {
		return true
	}
	for k, v := range a.Operators {
		if b.Operators[k] != v {
			return true
		}
	}
	return false
}

// Fig19Result reports the production-job comparison (Figure 19).
type Fig19Result struct {
	Jobs           []JobComparison
	PlanChangedPct float64
	OpChangedPct   float64
	ImprovedPct    float64
	AvgLatencyGain float64
	CumLatencyGain float64
	AvgTPTGain     float64
	CumTPTGain     float64
	MedianOverhead float64
	JobsConsidered int
}

// Fig19 re-optimizes the lab's cluster-0 test-day jobs with CLEO, selects
// jobs whose physical plans changed, and executes both variants.
func Fig19(lab *Lab, maxJobs int) (*Fig19Result, error) {
	if maxJobs <= 0 {
		maxJobs = 17
	}
	cat := lab.Trace.Catalogs[0]
	cluster := lab.Clusters[0]
	pr := lab.Predictors[0]

	out := &Fig19Result{}
	planChanged, opChanged := 0, 0
	var overheads []float64
	for _, job := range lab.Trace.JobsOn(0, lab.TestDay) {
		j := job
		cmp, err := comparePlans(&j, cat, cluster, pr)
		if err != nil {
			return nil, err
		}
		out.JobsConsidered++
		overheads = append(overheads, cmp.OptimizeOverhead)
		if cmp.PlanChanged {
			planChanged++
		}
		if cmp.OperatorChange {
			opChanged++
		}
		// The paper executes jobs with operator-implementation changes.
		if cmp.OperatorChange && len(out.Jobs) < maxJobs {
			out.Jobs = append(out.Jobs, cmp)
		}
	}
	if out.JobsConsidered > 0 {
		out.PlanChangedPct = float64(planChanged) / float64(out.JobsConsidered)
		out.OpChangedPct = float64(opChanged) / float64(out.JobsConsidered)
	}
	// Fallback: if too few operator changes, include partition-only
	// changes so the comparison stays meaningful at small scales.
	if len(out.Jobs) < 3 {
		for _, job := range lab.Trace.JobsOn(0, lab.TestDay) {
			j := job
			cmp, err := comparePlans(&j, cat, cluster, pr)
			if err != nil {
				return nil, err
			}
			if cmp.PlanChanged && !cmp.OperatorChange && len(out.Jobs) < maxJobs {
				out.Jobs = append(out.Jobs, cmp)
			}
		}
	}

	improved := 0
	var defLatSum, cleoLatSum, defTPTSum, cleoTPTSum, latGainSum, tptGainSum float64
	for _, j := range out.Jobs {
		if j.CleoLatency < j.DefaultLatency {
			improved++
		}
		defLatSum += j.DefaultLatency
		cleoLatSum += j.CleoLatency
		defTPTSum += j.DefaultTPT
		cleoTPTSum += j.CleoTPT
		latGainSum += 1 - j.CleoLatency/j.DefaultLatency
		tptGainSum += 1 - j.CleoTPT/j.DefaultTPT
	}
	if n := len(out.Jobs); n > 0 {
		out.ImprovedPct = float64(improved) / float64(n)
		out.AvgLatencyGain = latGainSum / float64(n)
		out.AvgTPTGain = tptGainSum / float64(n)
		out.CumLatencyGain = 1 - cleoLatSum/defLatSum
		out.CumTPTGain = 1 - cleoTPTSum/defTPTSum
	}
	if len(overheads) > 0 {
		// Median of optimize-time overheads.
		sorted := append([]float64(nil), overheads...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		out.MedianOverhead = sorted[len(sorted)/2]
	}
	return out, nil
}

// Render formats Figure 19.
func (r *Fig19Result) Render() string {
	t := &Table{
		Title:   "Figure 19: executed jobs with changed plans (default vs CLEO)",
		Columns: []string{"job", "lat(def) s", "lat(cleo) s", "tpt(def) s", "tpt(cleo) s", "latencyGain"},
	}
	for _, j := range r.Jobs {
		t.AddRow(j.JobID, flt(j.DefaultLatency), flt(j.CleoLatency),
			flt(j.DefaultTPT), flt(j.CleoTPT), pct1(1-j.CleoLatency/j.DefaultLatency))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("plans changed: %s of %d jobs (%s with operator changes)",
			pct(r.PlanChangedPct), r.JobsConsidered, pct(r.OpChangedPct)),
		fmt.Sprintf("improved latency: %s of executed; avg latency gain %s (cumulative %s)",
			pct(r.ImprovedPct), pct1(r.AvgLatencyGain), pct1(r.CumLatencyGain)),
		fmt.Sprintf("processing-time gain: avg %s (cumulative %s); median optimize-time overhead %s",
			pct1(r.AvgTPTGain), pct1(r.CumTPTGain), pct1(r.MedianOverhead)),
		"paper: 39% plans changed (22% without partition exploration); 70% of executed jobs improved; avg 15.4% latency gain, 32.2% processing-time saving; 5-10% optimizer overhead")
	return t.Render()
}

// Fig20Result reports the TPC-H comparison (Figure 20).
type Fig20Result struct {
	Queries        []int
	LatencyGain    []float64
	TPTGain        []float64
	PlanChanged    []bool
	OperatorChange []bool
}

// Fig20 trains CLEO on TPC-H runs and compares plans per query.
func Fig20(scale Scale, seed int64) (*Fig20Result, error) {
	runs := 9
	sf := 100.0
	if scale == ScaleFull {
		runs = 10
		sf = 1000
	}
	tr := tpch.Trace(sf, runs, seed)
	cluster := exec.NewCluster(exec.DefaultConfig(uint64(seed)))
	runner := &telemetry.Runner{
		Trace:    tr,
		Clusters: []*exec.Cluster{cluster},
		Cost:     costmodel.Default{},
		Jitter:   true,
	}
	col, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	pr, err := learned.TrainByDay(col.Records, runs-2, learned.DefaultTrainConfig())
	if err != nil {
		return nil, err
	}

	out := &Fig20Result{}
	for _, job := range tr.Jobs {
		if job.Day != runs-1 {
			continue // compare on the final run
		}
		j := job
		cmp, err := comparePlans(&j, tr.Catalogs[0], cluster, pr)
		if err != nil {
			return nil, err
		}
		out.Queries = append(out.Queries, tpch.QueryNumber(job.TemplateID))
		out.LatencyGain = append(out.LatencyGain, 1-cmp.CleoLatency/cmp.DefaultLatency)
		out.TPTGain = append(out.TPTGain, 1-cmp.CleoTPT/cmp.DefaultTPT)
		out.PlanChanged = append(out.PlanChanged, cmp.PlanChanged)
		out.OperatorChange = append(out.OperatorChange, cmp.OperatorChange)
	}
	return out, nil
}

// Render formats Figure 20, listing queries with plan changes.
func (r *Fig20Result) Render() string {
	t := &Table{
		Title:   "Figure 20: TPC-H — % improvement with CLEO (changed plans only)",
		Columns: []string{"query", "latencyGain", "tptGain", "operatorChange"},
	}
	changed := 0
	for i, q := range r.Queries {
		if !r.PlanChanged[i] {
			continue
		}
		changed++
		t.AddRow(fmt.Sprintf("Q%d", q), pct1(r.LatencyGain[i]), pct1(r.TPTGain[i]),
			fmt.Sprintf("%v", r.OperatorChange[i]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d of %d queries changed plans", changed, len(r.Queries)),
		"paper: 6 queries changed (Q8,Q9,Q11,Q16,Q17,Q20); 4 improved both metrics, Q11 latency-only, Q17 regressed")
	return t.Render()
}
