package experiments

import (
	"fmt"
	"math"
	"sort"

	"cleo/internal/cascades"
	"cleo/internal/learned"
	"cleo/internal/ml"
	"cleo/internal/plan"
)

// Fig8cResult counts cost-model look-ups per partition-exploration
// strategy as the plan's operator count grows (Figure 8c).
type Fig8cResult struct {
	Operators  []int
	Exhaustive []int
	GeomHalf   []int // geometric, s = 0.5
	GeomFive   []int // geometric, s = 5
	Analytical []int
}

// Fig8c computes look-up counts for 1..maxOps operators with the cluster
// partition cap.
func Fig8c(maxOps, maxPartitions int) *Fig8cResult {
	if maxOps <= 0 {
		maxOps = 40
	}
	if maxPartitions <= 0 {
		maxPartitions = 3000
	}
	geomCount := func(s float64) int {
		c := &cascades.SamplingChooser{Strategy: cascades.Geometric, SkipCoefficient: s}
		return len(c.Candidates(maxPartitions))
	}
	gHalf := geomCount(0.5)
	gFive := geomCount(5)
	out := &Fig8cResult{}
	for m := 1; m <= maxOps; m++ {
		out.Operators = append(out.Operators, m)
		out.Exhaustive = append(out.Exhaustive, m*maxPartitions)
		out.GeomHalf = append(out.GeomHalf, m*gHalf)
		out.GeomFive = append(out.GeomFive, m*gFive)
		out.Analytical = append(out.Analytical, m*5)
	}
	return out
}

// Render formats Figure 8c at selected sizes.
func (r *Fig8cResult) Render() string {
	t := &Table{
		Title:   "Figure 8c: model look-ups for partition exploration",
		Columns: []string{"#operators", "exhaustive", "geom(s=0.5)", "geom(s=5)", "analytical"},
	}
	for _, m := range []int{1, 10, 20, 40} {
		if m > len(r.Operators) {
			break
		}
		i := m - 1
		t.AddRow(count(m), count(r.Exhaustive[i]), count(r.GeomHalf[i]),
			count(r.GeomFive[i]), count(r.Analytical[i]))
	}
	t.Notes = append(t.Notes,
		"paper: analytical caps at ~200 look-ups for 40 operators; sampling takes thousands")
	return t.Render()
}

// Fig17Result evaluates partition-exploration strategies against the
// exhaustive optimum (Figure 17): median relative cost error vs number of
// samples, plus the analytical strategy's single point.
type Fig17Result struct {
	SampleCounts []int
	// MedianErr[strategy][sampleCount]; strategies: geometric, uniform,
	// random.
	Geometric  []float64
	Uniform    []float64
	Random     []float64
	Analytical float64
	Stages     int
}

// Fig17 probes real stages from the lab's test-day plans with the learned
// cost model.
func Fig17(lab *Lab, maxStages int) (*Fig17Result, error) {
	if maxStages <= 0 {
		maxStages = 200
	}
	coster := &learned.Coster{Predictor: lab.Predictors[0], Param: 12}
	maxP := 3000

	// Collect candidate stages from executed plans.
	var stages [][]*plan.Physical
	for _, jr := range lab.Collected.Jobs {
		if jr.Cluster != 0 || jr.Day != lab.TestDay {
			continue
		}
		for _, st := range plan.Stages(jr.Plan) {
			if st.Ops[0].FixedPartitions {
				continue
			}
			stages = append(stages, st.Ops)
			if len(stages) >= maxStages {
				break
			}
		}
		if len(stages) >= maxStages {
			break
		}
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("experiments: no stages collected")
	}

	// Exhaustive optimum per stage (coarse grid of every count is costly;
	// probe every count up to maxP in steps of 1 for small caps, else a
	// fine grid).
	optimal := make([]float64, len(stages))
	for i, ops := range stages {
		best := math.Inf(1)
		for p := 1; p <= maxP; p += gridStep(p) {
			if c := cascades.StageCostAt(coster, ops, p); c < best {
				best = c
			}
		}
		optimal[i] = best
	}

	evalChooser := func(ch cascades.PartitionChooser) float64 {
		var errs []float64
		for i, ops := range stages {
			p, _ := ch.ChooseStagePartitions(ops, maxP)
			c := cascades.StageCostAt(coster, ops, p)
			if optimal[i] <= 0 {
				continue
			}
			errs = append(errs, (c-optimal[i])/optimal[i])
		}
		sort.Float64s(errs)
		return ml.Quantile(errs, 0.5)
	}

	out := &Fig17Result{Stages: len(stages)}
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		out.SampleCounts = append(out.SampleCounts, n)
		// Geometric: pick s so the candidate count is ~n.
		s := skipForSamples(n, maxP)
		out.Geometric = append(out.Geometric, evalChooser(&cascades.SamplingChooser{
			Cost: coster, Strategy: cascades.Geometric, SkipCoefficient: s}))
		out.Uniform = append(out.Uniform, evalChooser(&cascades.SamplingChooser{
			Cost: coster, Strategy: cascades.Uniform, Samples: n}))
		out.Random = append(out.Random, evalChooser(&cascades.SamplingChooser{
			Cost: coster, Strategy: cascades.Random, Samples: n, Seed: 7}))
	}
	out.Analytical = evalChooser(&learned.AnalyticalChooser{Cost: coster})
	return out, nil
}

// gridStep makes the exhaustive scan fine at small counts and coarser at
// large ones (cost curves flatten out).
func gridStep(p int) int {
	switch {
	case p < 64:
		return 1
	case p < 512:
		return 4
	default:
		return 16
	}
}

// skipForSamples inverts the geometric sequence length to a skipping
// coefficient yielding about n samples up to maxP.
func skipForSamples(n, maxP int) float64 {
	// Sequence length ≈ log(maxP)/log(1+1/s); solve for s.
	if n < 2 {
		n = 2
	}
	growth := math.Pow(float64(maxP), 1/float64(n)) // per-step factor
	if growth <= 1 {
		return 1000
	}
	return 1 / (growth - 1)
}

// Render formats Figure 17.
func (r *Fig17Result) Render() string {
	t := &Table{
		Title:   fmt.Sprintf("Figure 17: partition exploration vs optimal (median cost error, %d stages)", r.Stages),
		Columns: []string{"#samples", "geometric", "uniform", "random"},
	}
	for i, n := range r.SampleCounts {
		t.AddRow(count(n), pct(r.Geometric[i]), pct(r.Uniform[i]), pct(r.Random[i]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("analytical (5 look-ups/op): %s median error", pct(r.Analytical)),
		"paper: analytical beats sampling until ~15-20 samples; geometric beats uniform/random at small budgets")
	return t.Render()
}
