package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"cleo/internal/costmodel"
	"cleo/internal/learned"
	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/elasticnet"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
)

// Fig15Result compares CLEO against CardLearner (Figure 15): learning
// costs beats learning cardinalities alone.
type Fig15Result struct {
	Names   []string
	Pearson []float64
	Median  []float64
	Ratios  [][]float64
}

// Fig15 trains a CardLearner on the training window, then evaluates four
// variants on the test day: default, default+CardLearner, CLEO, and
// CLEO+CardLearner.
func Fig15(lab *Lab) (*Fig15Result, error) {
	train := lab.TrainRecords(0)

	// Train the cardinality corrector.
	var samples []stats.CardSample
	for _, r := range train {
		samples = append(samples, stats.CardSample{
			Signature: r.Sigs.Subgraph,
			EstCard:   r.OutCard,
			BaseCard:  r.BaseCard,
			ActCard:   r.ActOutCard,
		})
	}
	cl := stats.NewCardLearner(5)
	cl.Train(samples)

	out := &Fig15Result{}
	add := func(name string, p, a []float64) {
		acc := ml.Evaluate(p, a)
		out.Names = append(out.Names, name)
		out.Pearson = append(out.Pearson, acc.Pearson)
		out.Median = append(out.Median, acc.MedianErr)
		out.Ratios = append(out.Ratios, ml.Ratios(p, a))
	}

	// Variants without cardinality correction reuse the lab's records.
	test := lab.TestRecords(0)
	var defP, cleoP, act []float64
	pr := lab.Predictors[0]
	for i := range test {
		defP = append(defP, test[i].DefaultCost)
		cleoP = append(cleoP, pr.PredictRecord(&test[i]).Cost)
		act = append(act, test[i].ActualLatency)
	}
	add("Default", defP, act)
	add("CLEO", cleoP, act)

	// Corrected variants re-run the test day with the corrector applied
	// after planning.
	runner := &telemetry.Runner{
		Trace:     subTrace(lab.Trace, 0, lab.TestDay),
		Clusters:  lab.Clusters[:1],
		Cost:      costmodel.Default{},
		Corrector: cl.Apply,
	}
	col, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	var defCorrP, cleoCorrP, act2 []float64
	for i := range col.Records {
		defCorrP = append(defCorrP, col.Records[i].DefaultCost)
		cleoCorrP = append(cleoCorrP, pr.PredictRecord(&col.Records[i]).Cost)
		act2 = append(act2, col.Records[i].ActualLatency)
	}
	add("Default+CardLearner", defCorrP, act2)
	add("CLEO+CardLearner", cleoCorrP, act2)
	return out, nil
}

// Render formats Figure 15.
func (r *Fig15Result) Render() string {
	t := &Table{
		Title:   "Figure 15: CLEO vs CardLearner (est/actual CDF)",
		Columns: append(ratioCDFColumns("variant"), "pearson", "medianErr"),
	}
	for i, name := range r.Names {
		row := ratioCDFRow(name, r.Ratios[i])
		row = append(row, corr(r.Pearson[i]), pct(r.Median[i]))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: default 236%, default+CardLearner 211%, CLEO 18%, CLEO+CardLearner 13% median error; CardLearner corr 0.01 vs CLEO 0.84")
	return t.Render()
}

// Fig18Result shows the error drop as features are added cumulatively,
// starting from perfect cardinalities (Figure 18).
type Fig18Result struct {
	Features  []string
	MedianErr []float64
}

// fig18Order is the cumulative feature order, echoing the paper's x-axis:
// perfect output and input cardinality first.
var fig18Order = []string{
	"C", "I", "L", "sqrt(C)", "P", "L*I", "IN", "PM", "C/P", "I/P", "L*B",
	"I*C", "B*C", "I*log(C)", "sqrt(I)", "L*log(I)", "sqrt(I)/P",
	"L*log(B)", "L*log(C)", "I*L/P", "C*L/P", "B*log(C)", "log(I)/P",
	"log(B)*C", "log(I)*log(C)", "log(B)*log(C)",
}

// Fig18 trains subgraph-level elastic nets on growing feature prefixes,
// with cardinality features taken from actual (perfect) values.
func Fig18(lab *Lab) (*Fig18Result, error) {
	recs := lab.TrainRecords(0)
	names := learned.FeatureNames(false)
	index := map[string]int{}
	for i, n := range names {
		index[n] = i
	}

	// Perfect-cardinality feature matrix per record.
	full := make([][]float64, len(recs))
	for i := range recs {
		f := learned.FromRecord(&recs[i])
		f.I = recs[i].ActInCard
		f.B = recs[i].ActBaseCard
		f.C = recs[i].ActOutCard
		full[i] = f.Vector(false)
	}

	groups := groupBy(recs, learned.FamilySubgraph)
	out := &Fig18Result{}
	for k := 1; k <= len(fig18Order); k++ {
		cols := make([]int, 0, k)
		for _, n := range fig18Order[:k] {
			ci, ok := index[n]
			if !ok {
				return nil, fmt.Errorf("experiments: unknown feature %q", n)
			}
			cols = append(cols, ci)
		}
		rng := rand.New(rand.NewSource(5))
		var errs []float64
		for _, rows := range groups {
			if len(rows) < 10 {
				continue
			}
			x := linalg.NewMatrix(len(rows), len(cols))
			y := make([]float64, len(rows))
			for ri, r := range rows {
				for ci, c := range cols {
					x.Set(ri, ci, full[r][c])
				}
				y[ri] = recs[r].ActualLatency
			}
			cv, err := ml.KFold(elasticnet.New(elasticnet.DefaultConfig()), x, y, 5, rng)
			if err != nil {
				continue
			}
			errs = append(errs, ml.RelativeErrors(cv.OutOfFold, y)...)
		}
		if len(errs) == 0 {
			return nil, fmt.Errorf("experiments: no groups for Fig18")
		}
		sort.Float64s(errs)
		out.Features = append(out.Features, fig18Order[k-1])
		out.MedianErr = append(out.MedianErr, ml.Quantile(errs, 0.5))
	}
	return out, nil
}

// Render formats Figure 18.
func (r *Fig18Result) Render() string {
	t := &Table{
		Title:   "Figure 18: median error as features are added cumulatively (perfect cardinalities first)",
		Columns: []string{"+feature", "medianErr"},
	}
	for i, f := range r.Features {
		t.AddRow("+"+f, pct(r.MedianErr[i]))
	}
	t.Notes = append(t.Notes,
		"paper: perfect cardinalities alone leave ~110% median error; adding derived features, partitions, inputs and parameters drops it below half")
	return t.Render()
}

// ensure plan import is used (signatures in CardSample).
var _ = plan.Signature(0)
