package experiments

import (
	"fmt"

	"cleo/internal/learned"
	"cleo/internal/telemetry"
)

// Fig7Result is the textual analogue of the paper's error heat-map over
// test operators: for every model, the share of operator instances in each
// relative-error band, plus the uncovered share.
type Fig7Result struct {
	Models []string
	Bands  []string
	// Shares[model][band] are fractions of all test operators.
	Shares    [][]float64
	Uncovered []float64
	Operators int
}

// errorBands are the heat-map's color buckets.
var errorBands = []struct {
	name string
	hi   float64
}{
	{"<=25%", 0.25},
	{"<=50%", 0.50},
	{"<=100%", 1.0},
	{"<=10x", 10},
	{">10x", 1e18},
}

// Fig7 buckets per-operator errors for the four families and the combined
// model on the test day.
func Fig7(lab *Lab) *Fig7Result {
	test := lab.TestRecords(0)
	pr := lab.Predictors[0]
	out := &Fig7Result{Operators: len(test)}
	for _, b := range errorBands {
		out.Bands = append(out.Bands, b.name)
	}

	evalModel := func(name string, predict func(r *telemetry.Record) (float64, bool)) {
		shares := make([]float64, len(errorBands))
		uncovered := 0
		for i := range test {
			pred, ok := predict(&test[i])
			if !ok {
				uncovered++
				continue
			}
			act := test[i].ActualLatency
			rel := relErr(pred, act)
			for bi, b := range errorBands {
				if rel <= b.hi {
					shares[bi]++
					break
				}
			}
		}
		n := float64(len(test))
		for i := range shares {
			shares[i] /= n
		}
		out.Models = append(out.Models, name)
		out.Shares = append(out.Shares, shares)
		out.Uncovered = append(out.Uncovered, float64(uncovered)/n)
	}

	for fam := 0; fam < learned.NumFamilies; fam++ {
		fm := pr.Families[fam]
		evalModel(fm.Family.String(), fm.Predict)
	}
	evalModel("Combined", func(r *telemetry.Record) (float64, bool) {
		return pr.PredictRecord(r).Cost, true
	})
	return out
}

func relErr(p, a float64) float64 {
	if a <= 0 {
		a = 1e-9
	}
	d := p - a
	if d < 0 {
		d = -d
	}
	return d / a
}

// Render formats Figure 7.
func (r *Fig7Result) Render() string {
	t := &Table{
		Title:   fmt.Sprintf("Figure 7: error bands over %d test operators (share of all operators)", r.Operators),
		Columns: append(append([]string{"model"}, r.Bands...), "no-coverage"),
	}
	for i, m := range r.Models {
		cells := []string{m}
		for _, s := range r.Shares[i] {
			cells = append(cells, pct(s))
		}
		cells = append(cells, pct(r.Uncovered[i]))
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes,
		"paper: subgraph models mostly accurate but partial coverage; operator model full coverage but redder; combined keeps specialized accuracy at 100% coverage")
	return t.Render()
}
