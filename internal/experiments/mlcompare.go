package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"cleo/internal/learned"
	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/dtree"
	"cleo/internal/ml/elasticnet"
	"cleo/internal/ml/fasttree"
	"cleo/internal/ml/forest"
	"cleo/internal/ml/mlp"
	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

// Table1Result compares loss functions for the subgraph models (Table 1).
type Table1Result struct {
	Losses    []string
	MedianErr []float64
}

// Table1 runs 5-fold CV per subgraph template under each loss and pools
// the out-of-fold relative errors.
func Table1(lab *Lab) (*Table1Result, error) {
	recs := lab.TrainRecords(0)
	losses := []ml.Loss{ml.MedAE, ml.MAE, ml.MSE, ml.MSLE}
	out := &Table1Result{}
	for _, loss := range losses {
		cfg := elasticnet.DefaultConfig()
		cfg.Loss = loss
		med, err := subgraphCVError(recs, elasticnet.New(cfg), false, 42)
		if err != nil {
			return nil, err
		}
		out.Losses = append(out.Losses, loss.String())
		out.MedianErr = append(out.MedianErr, med)
	}
	return out, nil
}

// Render formats Table 1.
func (r *Table1Result) Render() string {
	t := &Table{
		Title:   "Table 1: loss functions, 5-fold CV median error (subgraph models, elastic net)",
		Columns: []string{"loss", "medianErr"},
	}
	for i, l := range r.Losses {
		t.AddRow(l, pct(r.MedianErr[i]))
	}
	t.Notes = append(t.Notes, "paper: MedAE 246%, MAE 62%, MSE 36%, MSLE 14% — MSLE wins")
	return t.Render()
}

// subgraphCVError runs 5-fold CV per subgraph signature group using the
// given trainer and returns the pooled median relative error.
func subgraphCVError(recs []telemetry.Record, trainer ml.Trainer, extended bool, seed int64) (float64, error) {
	groups := groupBy(recs, learned.FamilySubgraph)
	rng := rand.New(rand.NewSource(seed))
	var errsAll []float64
	for _, rows := range groups {
		if len(rows) < 10 {
			continue
		}
		x, y := featurize(recs, rows, extended)
		cv, err := ml.KFold(trainer, x, y, 5, rng)
		if err != nil {
			continue // degenerate group
		}
		errsAll = append(errsAll, ml.RelativeErrors(cv.OutOfFold, y)...)
	}
	if len(errsAll) == 0 {
		return 0, fmt.Errorf("experiments: no subgraph groups with enough samples")
	}
	sort.Float64s(errsAll)
	return ml.Quantile(errsAll, 0.5), nil
}

func groupBy(recs []telemetry.Record, fam learned.Family) map[plan.Signature][]int {
	groups := map[plan.Signature][]int{}
	for i := range recs {
		sig := fam.SignatureOf(recs[i].Sigs)
		groups[sig] = append(groups[sig], i)
	}
	return groups
}

func featurize(recs []telemetry.Record, rows []int, extended bool) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(len(rows), learned.NumFeatures(extended))
	y := make([]float64, len(rows))
	for i, r := range rows {
		copy(x.Row(i), learned.FromRecord(&recs[r]).Vector(extended))
		y[i] = recs[r].ActualLatency
	}
	return x, y
}

// algorithms returns the five learners of Section 3.4 with the paper's
// hyper-parameters.
func algorithms() []struct {
	Name    string
	Trainer ml.Trainer
} {
	dtCfg := dtree.DefaultConfig() // depth 15
	return []struct {
		Name    string
		Trainer ml.Trainer
	}{
		{"Neural Network", mlp.New(func() mlp.Config { c := mlp.DefaultConfig(); c.Epochs = 60; return c }())},
		{"Decision Tree", dtree.New(dtCfg)},
		{"Fast-Tree regression", fasttree.New(fasttree.DefaultConfig())},
		{"Random Forest", forest.New(forest.DefaultConfig())},
		{"Elastic net", elasticnet.New(elasticnet.DefaultConfig())},
	}
}

// Table4Result compares ML algorithms on operator-subgraph models (Table 4).
type Table4Result struct {
	Names     []string
	Pearson   []float64
	MedianErr []float64
}

// Table4 cross-validates each algorithm per subgraph group and also
// evaluates the pooled correlation.
func Table4(lab *Lab) (*Table4Result, error) {
	recs := lab.TrainRecords(0)
	out := &Table4Result{}

	// Default model baseline.
	def := defaultAccuracy(recs)
	out.Names = append(out.Names, "Default")
	out.Pearson = append(out.Pearson, def.Pearson)
	out.MedianErr = append(out.MedianErr, def.MedianErr)

	for _, alg := range algorithms() {
		corrV, med, err := subgraphCVFull(recs, alg.Trainer, 42)
		if err != nil {
			return nil, err
		}
		out.Names = append(out.Names, alg.Name)
		out.Pearson = append(out.Pearson, corrV)
		out.MedianErr = append(out.MedianErr, med)
	}
	return out, nil
}

// subgraphCVFull pools out-of-fold predictions across subgraph groups and
// reports correlation and median error.
func subgraphCVFull(recs []telemetry.Record, trainer ml.Trainer, seed int64) (pearson, medianErr float64, err error) {
	groups := groupBy(recs, learned.FamilySubgraph)
	rng := rand.New(rand.NewSource(seed))
	var preds, acts []float64
	for _, rows := range groups {
		if len(rows) < 10 {
			continue
		}
		x, y := featurize(recs, rows, false)
		cv, cvErr := ml.KFold(trainer, x, y, 5, rng)
		if cvErr != nil {
			continue
		}
		preds = append(preds, cv.OutOfFold...)
		acts = append(acts, y...)
	}
	if len(preds) == 0 {
		return 0, 0, fmt.Errorf("experiments: no groups for CV")
	}
	acc := ml.Evaluate(preds, acts)
	return acc.Pearson, acc.MedianErr, nil
}

// Render formats Table 4.
func (r *Table4Result) Render() string {
	t := &Table{
		Title:   "Table 4: ML algorithms on operator-subgraph models (5-fold CV)",
		Columns: []string{"model", "pearson", "medianErr"},
	}
	for i := range r.Names {
		t.AddRow(r.Names[i], corr(r.Pearson[i]), pct(r.MedianErr[i]))
	}
	t.Notes = append(t.Notes,
		"paper: Default 0.04/258%; NN 0.89/27%; DT 0.91/19%; FastTree 0.90/20%; RF 0.89/32%; ElasticNet 0.92/14% — elastic net wins on specialized models")
	return t.Render()
}

// Table6Result compares meta-learners for the combined model (Table 6).
type Table6Result struct {
	Names     []string
	Pearson   []float64
	MedianErr []float64
}

// Table6 trains each meta-learner on the lab's meta day and evaluates on
// the test day.
func Table6(lab *Lab) (*Table6Result, error) {
	pr := lab.Predictors[0]
	meta := lab.RecordsFor(0, lab.TestDay-1)
	test := lab.TestRecords(0)
	out := &Table6Result{}

	def := defaultAccuracy(test)
	out.Names = append(out.Names, "Default")
	out.Pearson = append(out.Pearson, def.Pearson)
	out.MedianErr = append(out.MedianErr, def.MedianErr)

	for _, alg := range algorithms() {
		model, err := pr.TrainCombinedWith(meta, alg.Trainer)
		if err != nil {
			return nil, err
		}
		acc := pr.EvaluateMeta(test, model)
		out.Names = append(out.Names, alg.Name)
		out.Pearson = append(out.Pearson, acc.Pearson)
		out.MedianErr = append(out.MedianErr, acc.MedianErr)
	}
	return out, nil
}

// Render formats Table 6.
func (r *Table6Result) Render() string {
	t := &Table{
		Title:   "Table 6: meta-learners for the combined model",
		Columns: []string{"model", "pearson", "medianErr"},
	}
	for i := range r.Names {
		t.AddRow(r.Names[i], corr(r.Pearson[i]), pct(r.MedianErr[i]))
	}
	t.Notes = append(t.Notes,
		"paper: Default 0.04/258%; NN 0.79/31%; DT 0.73/41%; FastTree 0.84/19%; RF 0.80/28%; ElasticNet 0.68/64% — FastTree wins as meta-learner")
	return t.Render()
}

// Fig11Result cross-validates the algorithms per model family (Figure 11).
type Fig11Result struct {
	Families   []string
	Algorithms []string
	// MedianErr[family][algorithm]
	MedianErr [][]float64
	Pearson   [][]float64
}

// Fig11 runs the per-family CV matrix. Subgraph-family groups come from the
// respective signature grouping of each family.
func Fig11(lab *Lab) (*Fig11Result, error) {
	recs := lab.TrainRecords(len(lab.Predictors) - 1) // paper uses cluster 4
	out := &Fig11Result{}
	fams := []learned.Family{learned.FamilySubgraph, learned.FamilyInput, learned.FamilyOperator}
	for _, fam := range fams {
		out.Families = append(out.Families, fam.String())
		var errRow, corrRow []float64
		for _, alg := range algorithms() {
			if len(out.Families) == 1 {
				out.Algorithms = append(out.Algorithms, alg.Name)
			}
			p, med := familyCV(recs, fam, alg.Trainer)
			errRow = append(errRow, med)
			corrRow = append(corrRow, p)
		}
		out.MedianErr = append(out.MedianErr, errRow)
		out.Pearson = append(out.Pearson, corrRow)
	}
	return out, nil
}

func familyCV(recs []telemetry.Record, fam learned.Family, trainer ml.Trainer) (pearson, medianErr float64) {
	groups := groupBy(recs, fam)
	rng := rand.New(rand.NewSource(11))
	var preds, acts []float64
	for _, rows := range groups {
		if len(rows) < 10 {
			continue
		}
		x, y := featurize(recs, rows, fam.Extended())
		cv, err := ml.KFold(trainer, x, y, 5, rng)
		if err != nil {
			continue
		}
		preds = append(preds, cv.OutOfFold...)
		acts = append(acts, y...)
	}
	if len(preds) == 0 {
		return 0, 0
	}
	acc := ml.Evaluate(preds, acts)
	return acc.Pearson, acc.MedianErr
}

// Render formats Figure 11.
func (r *Fig11Result) Render() string {
	t := &Table{
		Title:   "Figure 11: 5-fold CV of ML algorithms per model family (median error / pearson)",
		Columns: append([]string{"family"}, r.Algorithms...),
	}
	for i, fam := range r.Families {
		row := []string{fam}
		for j := range r.Algorithms {
			row = append(row, fmt.Sprintf("%s/%s", pct(r.MedianErr[i][j]), corr(r.Pearson[i][j])))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: specialized families are accurate under all algorithms; accuracy degrades from subgraph to input to operator; simple models beat complex ones on specialized families")
	return t.Render()
}
