package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsRunSmall executes every registered experiment at small
// scale and checks each renders non-empty output. This is the integration
// test of the whole reproduction pipeline.
func TestAllExperimentsRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	seen := map[string]bool{}
	for _, e := range Registry() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if seen[e.Name] {
				t.Fatalf("duplicate experiment name %q", e.Name)
			}
			seen[e.Name] = true
			res, err := e.Run(ScaleSmall)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			out := res.Render()
			if len(out) < 40 {
				t.Fatalf("%s rendered too little: %q", e.Name, out)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("%s output has no table header", e.Name)
			}
		})
	}
}

func TestFindExperiment(t *testing.T) {
	if _, err := Find("table5"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestHeadlineShapes asserts the paper's qualitative claims hold at small
// scale: learned models beat the default by a wide margin, the
// accuracy-coverage ladder is ordered, and the combined model covers
// everything.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	lab, err := SharedLab(ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	t5 := Table5(lab)
	byName := map[string]Table5Row{}
	for _, r := range t5.Rows {
		byName[r.Name] = r
	}
	def := byName["Default"]
	comb := byName["Combined"]
	sub := byName["Op-Subgraph"]
	op := byName["Operator"]

	if comb.Pearson <= def.Pearson {
		t.Errorf("combined corr %v should beat default %v", comb.Pearson, def.Pearson)
	}
	if comb.MedianErr >= def.MedianErr {
		t.Errorf("combined err %v should beat default %v", comb.MedianErr, def.MedianErr)
	}
	if sub.Coverage >= 0.999 {
		t.Errorf("subgraph coverage %v should be partial", sub.Coverage)
	}
	if op.Coverage < 0.999 {
		t.Errorf("operator coverage %v should be full", op.Coverage)
	}
	if sub.MedianErr >= op.MedianErr {
		t.Errorf("subgraph err %v should beat operator err %v (accuracy-coverage tradeoff)",
			sub.MedianErr, op.MedianErr)
	}
}
