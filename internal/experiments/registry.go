package experiments

import "fmt"

// Result is any experiment output that can render itself for the terminal.
type Result interface {
	Render() string
}

// Entry is one registered experiment.
type Entry struct {
	// Name is the CLI identifier (e.g. "table5", "fig19").
	Name string
	// Description says what the experiment reproduces.
	Description string
	// Run executes the experiment at the given scale.
	Run func(scale Scale) (Result, error)
}

// Registry lists every experiment in the paper's order.
func Registry() []Entry {
	lab := func(scale Scale) (*Lab, error) { return SharedLab(scale) }
	return []Entry{
		{"fig1", "hand-crafted cost models, with and without perfect cardinalities", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig1(l)
		}},
		{"fig2", "150 instances of an hourly recurring job", func(s Scale) (Result, error) {
			n := 60
			if s == ScaleFull {
				n = 150
			}
			return Fig2(n, 7)
		}},
		{"fig3", "ad-hoc job share per cluster and day", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig3(l), nil
		}},
		{"table1", "loss-function comparison for subgraph models", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Table1(l)
		}},
		{"table4", "ML algorithms on operator-subgraph models", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Table4(l)
		}},
		{"table5", "individual learned models: accuracy vs coverage", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Table5(l), nil
		}},
		{"table6", "meta-learners for the combined model", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Table6(l)
		}},
		{"fig5", "feature weights per model family (with fig6)", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig5And6(l), nil
		}},
		{"fig6", "feature weights per model family (alias of fig5)", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig5And6(l), nil
		}},
		{"fig7", "error bands per model over test operators", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig7(l), nil
		}},
		{"fig8c", "model look-ups for partition exploration", func(s Scale) (Result, error) {
			return Fig8c(40, 3000), nil
		}},
		{"fig9", "workload summary", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig9(l), nil
		}},
		{"fig10", "day-over-day workload change", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig10(l), nil
		}},
		{"fig11", "ML algorithms per model family (5-fold CV)", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig11(l)
		}},
		{"table7", "accuracy/coverage, all vs ad-hoc jobs", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Table7(l), nil
		}},
		{"table8", "default vs learned per cluster", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Table8(l), nil
		}},
		{"fig12", "est/actual CDFs per cluster, all jobs", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig12or13(l, false), nil
		}},
		{"fig13", "est/actual CDFs per cluster, ad-hoc jobs", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig12or13(l, true), nil
		}},
		{"fig14", "robustness over one month", func(s Scale) (Result, error) {
			return Fig14(s, 2020)
		}},
		{"fig15", "CLEO vs CardLearner", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig15(l)
		}},
		{"fig16", "hash-join weights by context", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig16(l)
		}},
		{"fig17", "partition exploration strategies vs optimal", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			stages := 60
			if s == ScaleFull {
				stages = 200
			}
			return Fig17(l, stages)
		}},
		{"fig18", "cumulative feature addition from perfect cardinalities", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig18(l)
		}},
		{"fig19", "production jobs: latency, processing time, overhead", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return Fig19(l, 17)
		}},
		{"fig20", "TPC-H plan changes and improvements", func(s Scale) (Result, error) {
			return Fig20(s, 2020)
		}},
		{"ablation-strawman", "combined meta-model vs most-specialized-first strawman", func(s Scale) (Result, error) {
			l, err := lab(s)
			if err != nil {
				return nil, err
			}
			return AblationStrawman(l), nil
		}},
	}
}

// Find returns the registry entry with the given name.
func Find(name string) (Entry, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
