package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cleo/internal/ml"
)

// Table is a generic text table used by every experiment's rendering.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render formats the table for the terminal.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

func pct(v float64) string   { return fmt.Sprintf("%.0f%%", v*100) }
func pct1(v float64) string  { return fmt.Sprintf("%.1f%%", v*100) }
func corr(v float64) string  { return fmt.Sprintf("%.2f", v) }
func count(v int) string     { return fmt.Sprintf("%d", v) }
func flt(v float64) string   { return fmt.Sprintf("%.3g", v) }
func ratio(v float64) string { return fmt.Sprintf("%.3g", v) }

// ratioCDFRow summarises a set of estimated/actual ratios at the standard
// quantiles — the textual form of the paper's CDF plots.
func ratioCDFRow(name string, ratios []float64) []string {
	sorted := append([]float64(nil), ratios...)
	sort.Float64s(sorted)
	cells := []string{name}
	for _, q := range []float64{0.05, 0.25, 0.50, 0.75, 0.95} {
		cells = append(cells, ratio(ml.Quantile(sorted, q)))
	}
	return cells
}

// ratioCDFColumns matches ratioCDFRow.
func ratioCDFColumns(first string) []string {
	return []string{first, "p05", "p25", "p50", "p75", "p95"}
}

// accuracyRow renders a model's accuracy in the tables' usual columns.
func accuracyRow(name string, acc ml.Accuracy, coverage float64) []string {
	return []string{name, corr(acc.Pearson), pct(acc.MedianErr), pct(acc.P95Err), pct(coverage)}
}
