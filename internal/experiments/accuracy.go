package experiments

import (
	"fmt"

	"cleo/internal/costmodel"
	"cleo/internal/learned"
	"cleo/internal/ml"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// Fig1Result compares the hand-crafted cost models, with and without
// perfect cardinalities (Figure 1): correlations stay low and the
// estimated/actual spread stays wide even with ideal cardinalities.
type Fig1Result struct {
	Names     []string
	Pearson   []float64
	MedianErr []float64
	Ratios    [][]float64
}

// Fig1 runs the experiment on the lab's first cluster: each hand-crafted
// model plans and prices a full day's jobs, with estimated and with
// perfect cardinalities.
func Fig1(lab *Lab) (*Fig1Result, error) {
	res := &Fig1Result{}
	run := func(name string, cost cascadesCoster, mode stats.CardinalityMode) error {
		r := &telemetry.Runner{
			Trace:    subTrace(lab.Trace, 0, lab.TestDay),
			Clusters: lab.Clusters[:1],
			Cost:     cost,
			Mode:     mode,
		}
		col, err := r.RunAll()
		if err != nil {
			return err
		}
		acc := defaultAccuracy(col.Records)
		var p, a []float64
		for _, rec := range col.Records {
			p = append(p, rec.DefaultCost)
			a = append(a, rec.ActualLatency)
		}
		res.Names = append(res.Names, name)
		res.Pearson = append(res.Pearson, acc.Pearson)
		res.MedianErr = append(res.MedianErr, acc.MedianErr)
		res.Ratios = append(res.Ratios, ml.Ratios(p, a))
		return nil
	}
	if err := run("Default", costmodel.Default{}, stats.Estimated); err != nil {
		return nil, err
	}
	if err := run("Manually-Tuned", costmodel.Tuned{}, stats.Estimated); err != nil {
		return nil, err
	}
	if err := run("Default+ActualCard", costmodel.Default{}, stats.Perfect); err != nil {
		return nil, err
	}
	if err := run("Tuned+ActualCard", costmodel.Tuned{}, stats.Perfect); err != nil {
		return nil, err
	}
	return res, nil
}

// cascadesCoster is the planner cost-model interface (avoids importing
// cascades just for the type).
type cascadesCoster interface {
	Name() string
	OperatorCost(n *plan.Physical) float64
}

// Render formats Figure 1.
func (r *Fig1Result) Render() string {
	t := &Table{
		Title:   "Figure 1: hand-crafted cost models (est/actual ratio CDF + Pearson)",
		Columns: append(ratioCDFColumns("model"), "pearson", "medianErr"),
	}
	for i, name := range r.Names {
		row := ratioCDFRow(name, r.Ratios[i])
		row = append(row, corr(r.Pearson[i]), pct(r.MedianErr[i]))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper: Pearson 0.04 (default), 0.10 (tuned), 0.09/0.14 with actual cards; ratios spread 100x-under to 1000x-over",
		"fixing cardinalities alone does not close the gap (ratio spread stays wide)")
	return t.Render()
}

// Table5Result evaluates the accuracy–coverage ladder (Table 5).
type Table5Result struct {
	Rows []Table5Row
}

// Table5Row is one model's evaluation.
type Table5Row struct {
	Name      string
	Pearson   float64
	MedianErr float64
	P95Err    float64
	Coverage  float64
}

// Table5 evaluates the default model, the four families and the combined
// model on the lab's first cluster's test day.
func Table5(lab *Lab) *Table5Result {
	test := lab.TestRecords(0)
	pr := lab.Predictors[0]
	out := &Table5Result{}

	def := defaultAccuracy(test)
	out.Rows = append(out.Rows, Table5Row{"Default", def.Pearson, def.MedianErr, def.P95Err, 1})
	for fam := 0; fam < learned.NumFamilies; fam++ {
		fm := pr.Families[fam]
		acc := fm.Evaluate(test)
		out.Rows = append(out.Rows, Table5Row{
			fm.Family.String(), acc.Pearson, acc.MedianErr, acc.P95Err, fm.Coverage(test),
		})
	}
	acc := pr.Evaluate(test)
	out.Rows = append(out.Rows, Table5Row{"Combined", acc.Pearson, acc.MedianErr, acc.P95Err, 1})
	return out
}

// Render formats Table 5.
func (r *Table5Result) Render() string {
	t := &Table{
		Title:   "Table 5: learned models vs actual runtimes (test day)",
		Columns: []string{"model", "pearson", "medianErr", "p95Err", "coverage"},
	}
	for _, row := range r.Rows {
		t.AddRow(accuracyRow(row.Name, ml.Accuracy{
			Pearson: row.Pearson, MedianErr: row.MedianErr, P95Err: row.P95Err,
		}, row.Coverage)...)
	}
	t.Notes = append(t.Notes,
		"paper: Default 0.04/258%/100%; Op-Subgraph 0.92/14%/54%; Approx 0.89/16%/76%; Op-Input 0.85/18%/83%; Operator 0.77/42%/100%; Combined 0.84/19%/100%")
	return t.Render()
}

// Table7Result breaks accuracy down for all jobs vs ad-hoc jobs (Table 7).
type Table7Result struct {
	All   []Table5Row
	AdHoc []Table5Row
}

// Table7 evaluates on the lab's first cluster.
func Table7(lab *Lab) *Table7Result {
	test := lab.TestRecords(0)
	var adhoc []telemetry.Record
	for _, r := range test {
		if !r.Recurring {
			adhoc = append(adhoc, r)
		}
	}
	pr := lab.Predictors[0]
	eval := func(recs []telemetry.Record) []Table5Row {
		var rows []Table5Row
		def := defaultAccuracy(recs)
		rows = append(rows, Table5Row{"Default", def.Pearson, def.MedianErr, def.P95Err, 1})
		for fam := 0; fam < learned.NumFamilies; fam++ {
			fm := pr.Families[fam]
			acc := fm.Evaluate(recs)
			rows = append(rows, Table5Row{fm.Family.String(), acc.Pearson, acc.MedianErr, acc.P95Err, fm.Coverage(recs)})
		}
		acc := pr.Evaluate(recs)
		rows = append(rows, Table5Row{"Combined", acc.Pearson, acc.MedianErr, acc.P95Err, 1})
		return rows
	}
	return &Table7Result{All: eval(test), AdHoc: eval(adhoc)}
}

// Render formats Table 7.
func (r *Table7Result) Render() string {
	t := &Table{
		Title: "Table 7: accuracy and coverage, all jobs vs ad-hoc jobs (cluster 1)",
		Columns: []string{"model", "corr(all)", "medErr(all)", "p95(all)", "cov(all)",
			"corr(adhoc)", "medErr(adhoc)", "p95(adhoc)", "cov(adhoc)"},
	}
	for i := range r.All {
		a, h := r.All[i], r.AdHoc[i]
		t.AddRow(a.Name,
			corr(a.Pearson), pct(a.MedianErr), pct(a.P95Err), pct(a.Coverage),
			corr(h.Pearson), pct(h.MedianErr), pct(h.P95Err), pct(h.Coverage))
	}
	t.Notes = append(t.Notes,
		"paper: ad-hoc accuracy drops only slightly; subgraph families retain 36-79% coverage on ad-hoc jobs")
	return t.Render()
}

// Table8Result compares default vs combined per cluster (Table 8).
type Table8Result struct {
	Clusters []Table8Row
}

// Table8Row is one cluster's evaluation.
type Table8Row struct {
	Cluster                   int
	DefCorr, DefErr           float64
	LearnedCorr, LearnedErr   float64
	AdhocCorr, AdhocMedianErr float64
}

// Table8 evaluates every lab cluster.
func Table8(lab *Lab) *Table8Result {
	out := &Table8Result{}
	for cl := range lab.Predictors {
		test := lab.TestRecords(cl)
		var adhoc []telemetry.Record
		for _, r := range test {
			if !r.Recurring {
				adhoc = append(adhoc, r)
			}
		}
		def := defaultAccuracy(test)
		acc := lab.Predictors[cl].Evaluate(test)
		adAcc := lab.Predictors[cl].Evaluate(adhoc)
		out.Clusters = append(out.Clusters, Table8Row{
			Cluster: cl + 1,
			DefCorr: def.Pearson, DefErr: def.MedianErr,
			LearnedCorr: acc.Pearson, LearnedErr: acc.MedianErr,
			AdhocCorr: adAcc.Pearson, AdhocMedianErr: adAcc.MedianErr,
		})
	}
	return out
}

// Render formats Table 8.
func (r *Table8Result) Render() string {
	t := &Table{
		Title: "Table 8: default vs combined learned model per cluster",
		Columns: []string{"cluster", "corr(def)", "medErr(def)",
			"corr(learned)", "medErr(learned)", "corr(adhoc)", "medErr(adhoc)"},
	}
	for _, row := range r.Clusters {
		t.AddRow(fmt.Sprintf("Cluster %d", row.Cluster),
			corr(row.DefCorr), pct(row.DefErr),
			corr(row.LearnedCorr), pct(row.LearnedErr),
			corr(row.AdhocCorr), pct(row.AdhocMedianErr))
	}
	t.Notes = append(t.Notes,
		"paper: default 0.05-0.15 corr / 153-256% err; learned 0.74-0.83 corr / 15-33% err")
	return t.Render()
}

// Fig12_13Result holds per-cluster ratio CDFs for all jobs (Fig 12) and
// ad-hoc jobs only (Fig 13).
type Fig12_13Result struct {
	AdHocOnly bool
	Clusters  []int
	Models    []string
	Ratios    [][][]float64 // [cluster][model][samples]
}

// Fig12or13 computes est/actual CDFs per cluster; adhocOnly selects Fig 13.
func Fig12or13(lab *Lab, adhocOnly bool) *Fig12_13Result {
	models := []string{"Default", "Op-Subgraph", "Op-SubgraphApprox", "Op-Input", "Operator", "Combined"}
	out := &Fig12_13Result{AdHocOnly: adhocOnly, Models: models}
	for cl := range lab.Predictors {
		test := lab.TestRecords(cl)
		if adhocOnly {
			var filtered []telemetry.Record
			for _, r := range test {
				if !r.Recurring {
					filtered = append(filtered, r)
				}
			}
			test = filtered
		}
		pr := lab.Predictors[cl]
		act := actuals(test)
		var byModel [][]float64

		var defPred []float64
		for _, r := range test {
			defPred = append(defPred, r.DefaultCost)
		}
		byModel = append(byModel, ml.Ratios(defPred, act))

		for fam := 0; fam < learned.NumFamilies; fam++ {
			var p, a []float64
			for i := range test {
				if pred, ok := pr.Families[fam].Predict(&test[i]); ok {
					p = append(p, pred)
					a = append(a, test[i].ActualLatency)
				}
			}
			byModel = append(byModel, ml.Ratios(p, a))
		}
		var comb []float64
		for i := range test {
			comb = append(comb, pr.PredictRecord(&test[i]).Cost)
		}
		byModel = append(byModel, ml.Ratios(comb, act))

		out.Clusters = append(out.Clusters, cl+1)
		out.Ratios = append(out.Ratios, byModel)
	}
	return out
}

// Render formats Figures 12/13.
func (r *Fig12_13Result) Render() string {
	title := "Figure 12: est/actual CDFs per cluster (all jobs)"
	if r.AdHocOnly {
		title = "Figure 13: est/actual CDFs per cluster (ad-hoc jobs only)"
	}
	var out string
	for ci, cl := range r.Clusters {
		t := &Table{
			Title:   fmt.Sprintf("%s — cluster %d", title, cl),
			Columns: ratioCDFColumns("model"),
		}
		for mi, m := range r.Models {
			if len(r.Ratios[ci][mi]) == 0 {
				t.AddRow(m, "-", "-", "-", "-", "-")
				continue
			}
			t.AddRow(ratioCDFRow(m, r.Ratios[ci][mi])...)
		}
		out += t.Render() + "\n"
	}
	return out
}

// subTrace restricts a trace to cluster 0's jobs on one day, reusing the
// catalogs (Runner indexes catalogs by the job's cluster id).
func subTrace(tr *workload.Trace, cluster, day int) *workload.Trace {
	out := &workload.Trace{Catalogs: tr.Catalogs, Config: tr.Config}
	for _, j := range tr.Jobs {
		if j.Cluster == cluster && (day < 0 || j.Day == day) {
			out.Jobs = append(out.Jobs, j)
		}
	}
	return out
}
