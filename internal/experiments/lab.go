// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a function returning a
// structured result plus a text rendering; cmd/cleobench prints them and
// bench_test.go wraps them in testing.B benchmarks. DESIGN.md carries the
// experiment index; EXPERIMENTS.md records paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"sync"

	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/learned"
	"cleo/internal/ml"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// Scale selects experiment sizing: Small keeps unit tests and benchmarks
// fast; Full is what cmd/cleobench uses for the reported numbers.
type Scale int

// Scales.
const (
	ScaleSmall Scale = iota
	ScaleFull
)

// labConfig sizes the shared lab.
type labConfig struct {
	clusters        int
	days            int
	templates       int
	instancesPerDay int
	adhocFraction   float64
	seed            int64
}

func configFor(scale Scale) labConfig {
	if scale == ScaleFull {
		return labConfig{clusters: 4, days: 4, templates: 45, instancesPerDay: 4, adhocFraction: 0.13, seed: 2020}
	}
	return labConfig{clusters: 2, days: 4, templates: 10, instancesPerDay: 3, adhocFraction: 0.13, seed: 2020}
}

// Lab is the shared experiment environment: a multi-cluster trace executed
// under the default cost model, plus per-cluster CLEO predictors trained on
// the first days (individual models on days 0–1, the combiner on day 2).
// Day 3 is the held-out test day.
type Lab struct {
	Scale      Scale
	Trace      *workload.Trace
	Clusters   []*exec.Cluster
	Collected  *telemetry.Collected
	Predictors []*learned.Predictor

	// TestDay is the evaluation day (the last trace day).
	TestDay int
}

// NewLab generates, executes and trains the shared environment.
func NewLab(scale Scale) (*Lab, error) {
	cfg := configFor(scale)
	tr := workload.Generate(workload.Config{
		Clusters:                   cfg.clusters,
		Days:                       cfg.days,
		TemplatesPerCluster:        cfg.templates,
		InstancesPerTemplatePerDay: cfg.instancesPerDay,
		AdHocFraction:              cfg.adhocFraction,
		Seed:                       cfg.seed,
	})
	var clusters []*exec.Cluster
	for i := range tr.Catalogs {
		clusters = append(clusters, exec.NewCluster(exec.DefaultConfig(uint64(i)+77)))
	}
	runner := &telemetry.Runner{
		Trace:    tr,
		Clusters: clusters,
		Cost:     costmodel.Default{},
		Mode:     stats.Estimated,
		Jitter:   true,
	}
	col, err := runner.RunAll()
	if err != nil {
		return nil, fmt.Errorf("experiments: telemetry run: %w", err)
	}
	lab := &Lab{
		Scale:     scale,
		Trace:     tr,
		Clusters:  clusters,
		Collected: col,
		TestDay:   cfg.days - 1,
	}

	lab.Predictors = make([]*learned.Predictor, cfg.clusters)
	var wg sync.WaitGroup
	errs := make([]error, cfg.clusters)
	for cl := 0; cl < cfg.clusters; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			recs := lab.RecordsFor(cl, -1)
			lab.Predictors[cl], errs[cl] = learned.TrainByDay(recs, cfg.days-2, learned.DefaultTrainConfig())
		}(cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return lab, nil
}

// RecordsFor filters telemetry records by cluster (and day when day >= 0).
func (l *Lab) RecordsFor(cluster, day int) []telemetry.Record {
	var out []telemetry.Record
	for _, r := range l.Collected.Records {
		if r.Cluster == cluster && (day < 0 || r.Day == day) {
			out = append(out, r)
		}
	}
	return out
}

// TestRecords returns the held-out test-day records of a cluster.
func (l *Lab) TestRecords(cluster int) []telemetry.Record {
	return l.RecordsFor(cluster, l.TestDay)
}

// TrainRecords returns records from the training window (all days before
// the test day) of a cluster.
func (l *Lab) TrainRecords(cluster int) []telemetry.Record {
	var out []telemetry.Record
	for _, r := range l.Collected.Records {
		if r.Cluster == cluster && r.Day < l.TestDay {
			out = append(out, r)
		}
	}
	return out
}

// defaultAccuracy evaluates the planner cost model's predictions stored on
// the records.
func defaultAccuracy(recs []telemetry.Record) ml.Accuracy {
	p := make([]float64, len(recs))
	a := make([]float64, len(recs))
	for i, r := range recs {
		p[i] = r.DefaultCost
		a[i] = r.ActualLatency
	}
	return ml.Evaluate(p, a)
}

// actuals extracts actual latencies.
func actuals(recs []telemetry.Record) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.ActualLatency
	}
	return out
}

var labCache sync.Map // Scale -> *Lab

// SharedLab memoizes NewLab per scale so benchmarks and the CLI reuse one
// environment.
func SharedLab(scale Scale) (*Lab, error) {
	if v, ok := labCache.Load(scale); ok {
		return v.(*Lab), nil
	}
	lab, err := NewLab(scale)
	if err != nil {
		return nil, err
	}
	labCache.Store(scale, lab)
	return lab, nil
}
