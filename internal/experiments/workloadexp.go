package experiments

import (
	"fmt"

	"cleo/internal/costmodel"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// Fig2Result traces one hourly recurring job across many instances
// (Figure 2): input size and latency vary several-fold.
type Fig2Result struct {
	Instances  int
	InputGiB   []float64
	LatencyMin []float64
}

// Fig2 generates a single recurring template with the given instance count
// and executes every instance.
func Fig2(instances int, seed int64) (*Fig2Result, error) {
	if instances <= 0 {
		instances = 150
	}
	tr := workload.Generate(workload.Config{
		Clusters:                   1,
		Days:                       instances,
		TemplatesPerCluster:        1,
		InstancesPerTemplatePerDay: 1,
		AdHocFraction:              0,
		DayGrowth:                  0.004,
		Seed:                       seed,
	})
	runner := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}, Mode: stats.Estimated}
	col, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	out := &Fig2Result{Instances: len(col.Jobs)}
	for i, jr := range col.Jobs {
		job := tr.Jobs[i]
		var bytes float64
		for _, leaf := range job.Query.Leaves() {
			ts, _ := tr.Catalogs[0].Table(leaf.Table)
			bytes += ts.Rows * ts.RowLength
		}
		out.InputGiB = append(out.InputGiB, bytes/(1<<30))
		out.LatencyMin = append(out.LatencyMin, jr.Latency/60)
	}
	return out, nil
}

// Render formats Figure 2.
func (r *Fig2Result) Render() string {
	minIn, maxIn := minMax(r.InputGiB)
	minL, maxL := minMax(r.LatencyMin)
	t := &Table{
		Title:   fmt.Sprintf("Figure 2: %d instances of an hourly recurring job", r.Instances),
		Columns: []string{"metric", "min", "max", "spread"},
	}
	t.AddRow("total input (GiB)", flt(minIn), flt(maxIn), fmt.Sprintf("%.1fx", maxIn/minIn))
	t.AddRow("latency (minutes)", flt(minL), flt(maxL), fmt.Sprintf("%.1fx", maxL/minL))
	t.Notes = append(t.Notes,
		"paper: input 69,859 -> 118,625 GiB (1.7x); latency 40m50s -> 2h21m (3.5x) over 150 instances")
	return t.Render()
}

func minMax(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Fig3Result reports ad-hoc job percentages per cluster and day (Figure 3).
type Fig3Result struct {
	Clusters int
	Days     int
	// Percent[cluster][day]
	Percent [][]float64
}

// Fig3 counts ad-hoc shares in the lab's trace.
func Fig3(lab *Lab) *Fig3Result {
	cfg := lab.Trace.Config
	out := &Fig3Result{Clusters: cfg.Clusters, Days: cfg.Days}
	for cl := 0; cl < cfg.Clusters; cl++ {
		var row []float64
		for d := 0; d < cfg.Days; d++ {
			jobs := lab.Trace.JobsOn(cl, d)
			adhoc := 0
			for _, j := range jobs {
				if !j.Recurring {
					adhoc++
				}
			}
			row = append(row, 100*float64(adhoc)/float64(len(jobs)))
		}
		out.Percent = append(out.Percent, row)
	}
	return out
}

// Render formats Figure 3.
func (r *Fig3Result) Render() string {
	cols := []string{"cluster"}
	for d := 0; d < r.Days; d++ {
		cols = append(cols, fmt.Sprintf("day%d", d+1))
	}
	t := &Table{Title: "Figure 3: ad-hoc jobs (%) per cluster per day", Columns: cols}
	for cl, row := range r.Percent {
		cells := []string{fmt.Sprintf("Cluster%d", cl+1)}
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "paper: 7-20% ad-hoc across clusters and days")
	return t.Render()
}

// Fig9Result summarises the workload (Figure 9).
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9Row is one (cluster, day) summary.
type Fig9Row struct {
	Cluster, Day       int
	TotalJobs          int
	RecurringJobs      int
	RecurringTemplates int
	TotalSubExpr       int
	CommonSubExpr      int
	RecurringSubExpr   int
	AdhocSubExpr       int
}

// Fig9 counts jobs and subexpressions. A subexpression is one operator
// instance; it is "common" when its subgraph template occurs in more than
// one job.
func Fig9(lab *Lab) *Fig9Result {
	out := &Fig9Result{}
	cfg := lab.Trace.Config
	for cl := 0; cl < cfg.Clusters; cl++ {
		for d := 0; d < cfg.Days; d++ {
			row := Fig9Row{Cluster: cl + 1, Day: d + 1}
			templates := map[string]bool{}
			for _, j := range lab.Trace.JobsOn(cl, d) {
				row.TotalJobs++
				if j.Recurring {
					row.RecurringJobs++
					templates[j.TemplateID] = true
				}
			}
			row.RecurringTemplates = len(templates)

			sigJobs := map[plan.Signature]map[string]bool{}
			var dayRecs []telemetry.Record
			for _, rec := range lab.Collected.Records {
				if rec.Cluster != cl || rec.Day != d {
					continue
				}
				dayRecs = append(dayRecs, rec)
				if sigJobs[rec.Sigs.Subgraph] == nil {
					sigJobs[rec.Sigs.Subgraph] = map[string]bool{}
				}
				sigJobs[rec.Sigs.Subgraph][rec.JobID] = true
			}
			for _, rec := range dayRecs {
				row.TotalSubExpr++
				if len(sigJobs[rec.Sigs.Subgraph]) > 1 {
					row.CommonSubExpr++
				}
				if rec.Recurring {
					row.RecurringSubExpr++
				} else {
					row.AdhocSubExpr++
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Render formats Figure 9.
func (r *Fig9Result) Render() string {
	t := &Table{
		Title: "Figure 9: workload summary",
		Columns: []string{"cluster", "day", "jobs", "recurring", "templates",
			"subexpr", "common", "recurringSub", "adhocSub"},
	}
	var tot Fig9Row
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("Cluster%d", row.Cluster), count(row.Day),
			count(row.TotalJobs), count(row.RecurringJobs), count(row.RecurringTemplates),
			count(row.TotalSubExpr), count(row.CommonSubExpr),
			count(row.RecurringSubExpr), count(row.AdhocSubExpr))
		tot.TotalJobs += row.TotalJobs
		tot.RecurringJobs += row.RecurringJobs
		tot.RecurringTemplates += row.RecurringTemplates
		tot.TotalSubExpr += row.TotalSubExpr
		tot.CommonSubExpr += row.CommonSubExpr
		tot.RecurringSubExpr += row.RecurringSubExpr
		tot.AdhocSubExpr += row.AdhocSubExpr
	}
	t.AddRow("Overall", "-", count(tot.TotalJobs), count(tot.RecurringJobs),
		count(tot.RecurringTemplates), count(tot.TotalSubExpr), count(tot.CommonSubExpr),
		count(tot.RecurringSubExpr), count(tot.AdhocSubExpr))
	t.Notes = append(t.Notes,
		"paper (full production scale): 463,799 jobs, 397,824 recurring, 98,395 templates, 22.4M subexpressions, 17.6M common")
	return t.Render()
}

// Fig10Result reports day-over-day workload change (Figure 10).
type Fig10Result struct {
	Clusters int
	// Change[cluster][transition] for jobs/recurring/templates.
	JobsChange      [][]float64
	RecurringChange [][]float64
	TemplateChange  [][]float64
	Transitions     []string
}

// Fig10 computes percentage changes between consecutive days.
func Fig10(lab *Lab) *Fig10Result {
	cfg := lab.Trace.Config
	out := &Fig10Result{Clusters: cfg.Clusters}
	for d := 0; d+1 < cfg.Days; d++ {
		out.Transitions = append(out.Transitions, fmt.Sprintf("Day%d-to-Day%d", d+1, d+2))
	}
	for cl := 0; cl < cfg.Clusters; cl++ {
		var jc, rc, tc []float64
		for d := 0; d+1 < cfg.Days; d++ {
			a := summarizeDay(lab, cl, d)
			b := summarizeDay(lab, cl, d+1)
			jc = append(jc, pctChange(a[0], b[0]))
			rc = append(rc, pctChange(a[1], b[1]))
			tc = append(tc, pctChange(a[2], b[2]))
		}
		out.JobsChange = append(out.JobsChange, jc)
		out.RecurringChange = append(out.RecurringChange, rc)
		out.TemplateChange = append(out.TemplateChange, tc)
	}
	return out
}

func summarizeDay(lab *Lab, cl, d int) [3]float64 {
	jobs := lab.Trace.JobsOn(cl, d)
	templates := map[string]bool{}
	rec := 0
	for _, j := range jobs {
		if j.Recurring {
			rec++
			templates[j.TemplateID] = true
		}
	}
	return [3]float64{float64(len(jobs)), float64(rec), float64(len(templates))}
}

func pctChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (b - a) / a
}

// Render formats Figure 10.
func (r *Fig10Result) Render() string {
	t := &Table{
		Title:   "Figure 10: day-over-day workload change (%)",
		Columns: append([]string{"cluster", "metric"}, r.Transitions...),
	}
	for cl := 0; cl < r.Clusters; cl++ {
		add := func(metric string, vals []float64) {
			cells := []string{fmt.Sprintf("Cluster%d", cl+1), metric}
			for _, v := range vals {
				cells = append(cells, fmt.Sprintf("%+.1f", v))
			}
			t.AddRow(cells...)
		}
		add("total jobs", r.JobsChange[cl])
		add("recurring jobs", r.RecurringChange[cl])
		add("templates", r.TemplateChange[cl])
	}
	t.Notes = append(t.Notes, "paper: swings from -30% to +20% across clusters and days")
	return t.Render()
}
