package experiments

import (
	"cleo/internal/ml"
)

// AblationStrawmanResult compares the FastTree combined model against the
// strawman of always picking the most-specialized covered model
// (Section 4.3's motivation for the meta-ensemble).
type AblationStrawmanResult struct {
	Combined ml.Accuracy
	Strawman ml.Accuracy
}

// AblationStrawman evaluates both policies on the test day.
func AblationStrawman(lab *Lab) *AblationStrawmanResult {
	test := lab.TestRecords(0)
	pr := lab.Predictors[0]

	var cp, sp, act []float64
	for i := range test {
		cp = append(cp, pr.PredictRecord(&test[i]).Cost)
		s, ok := pr.StrawmanPredict(&test[i])
		if !ok {
			s = 0
		}
		sp = append(sp, s)
		act = append(act, test[i].ActualLatency)
	}
	return &AblationStrawmanResult{
		Combined: ml.Evaluate(cp, act),
		Strawman: ml.Evaluate(sp, act),
	}
}

// Render formats the ablation.
func (r *AblationStrawmanResult) Render() string {
	t := &Table{
		Title:   "Ablation: combined meta-model vs most-specialized-first strawman",
		Columns: []string{"policy", "pearson", "medianErr", "p95Err"},
	}
	t.AddRow("Combined (FastTree)", corr(r.Combined.Pearson), pct(r.Combined.MedianErr), pct(r.Combined.P95Err))
	t.AddRow("Strawman (specialized-first)", corr(r.Strawman.Pearson), pct(r.Strawman.MedianErr), pct(r.Strawman.P95Err))
	t.Notes = append(t.Notes,
		"paper: the strawman over-fits where specialized models have few samples; the meta-ensemble corrects them (Section 4.3)")
	return t.Render()
}
