package experiments

import (
	"fmt"
	"sort"

	"cleo/internal/learned"
	"cleo/internal/linalg"
	"cleo/internal/ml/elasticnet"
	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

// Fig5_6Result reports per-family normalized feature weights (Figures 5
// and 6).
type Fig5_6Result struct {
	Families []string
	Names    [][]string
	Weights  [][]float64
}

// Fig5And6 aggregates elastic-net weights across each family's models.
func Fig5And6(lab *Lab) *Fig5_6Result {
	out := &Fig5_6Result{}
	for fam := 0; fam < learned.NumFamilies; fam++ {
		fm := lab.Predictors[0].Families[fam]
		out.Families = append(out.Families, fm.Family.String())
		out.Names = append(out.Names, learned.FeatureNames(fm.Family.Extended()))
		out.Weights = append(out.Weights, fm.AggregateWeights())
	}
	return out
}

// Render formats Figures 5 and 6: top-10 features per family.
func (r *Fig5_6Result) Render() string {
	var out string
	for i, fam := range r.Families {
		t := &Table{
			Title:   fmt.Sprintf("Figure 5/6: normalized feature weights — %s (top 10)", fam),
			Columns: []string{"feature", "normalized weight"},
		}
		type fw struct {
			name string
			w    float64
		}
		var fws []fw
		for j, n := range r.Names[i] {
			fws = append(fws, fw{n, r.Weights[i][j]})
		}
		sort.Slice(fws, func(a, b int) bool { return fws[a].w > fws[b].w })
		for _, f := range fws[:min(10, len(fws))] {
			t.AddRow(f.name, fmt.Sprintf("%.3f", f.w))
		}
		if fam == "Op-Subgraph" {
			t.Notes = append(t.Notes, "paper: specialized models concentrate weight on a few features")
		}
		if fam == "Operator" {
			t.Notes = append(t.Notes, "paper: general models spread weight more evenly")
		}
		out += t.Render() + "\n"
	}
	return out
}

// Fig16Result contrasts hash-join feature weights across two context sets
// (Figure 16): joins directly over scans vs joins over other joins.
type Fig16Result struct {
	Names     []string
	OverScans []float64
	OverJoins []float64
	SetSizes  [2]int
}

// Fig16 trains one elastic net per context set and compares weights.
func Fig16(lab *Lab) (*Fig16Result, error) {
	recs := lab.TrainRecords(0)
	var joins []telemetry.Record
	for _, r := range recs {
		if r.Op == plan.PHashJoin {
			joins = append(joins, r)
		}
	}
	if len(joins) < 10 {
		return nil, fmt.Errorf("experiments: too few hash-join samples (%d)", len(joins))
	}
	// Split by subgraph depth at the median: shallow joins sit directly
	// over scan chains (the paper's set 1); deep ones have joins beneath
	// (set 2).
	depths := make([]int, len(joins))
	for i, r := range joins {
		depths[i] = r.Depth
	}
	sort.Ints(depths)
	medianDepth := depths[len(depths)/2]
	var overScans, overJoins []telemetry.Record
	for _, r := range joins {
		if r.Depth <= medianDepth {
			overScans = append(overScans, r)
		} else {
			overJoins = append(overJoins, r)
		}
	}
	fit := func(rs []telemetry.Record) ([]float64, error) {
		if len(rs) < 5 {
			return nil, fmt.Errorf("experiments: too few hash-join samples (%d)", len(rs))
		}
		x := linalg.NewMatrix(len(rs), learned.NumFeatures(false))
		y := make([]float64, len(rs))
		for i := range rs {
			copy(x.Row(i), learned.FromRecord(&rs[i]).Vector(false))
			y[i] = rs[i].ActualLatency
		}
		cfg := elasticnet.DefaultConfig()
		// These sets pool many templates, so the signal per feature is
		// weaker than in per-subgraph models; lighter regularization keeps
		// the weight profile informative.
		cfg.Alpha = 0.01
		m, err := elasticnet.New(cfg).FitModel(x, y)
		if err != nil {
			return nil, err
		}
		// Normalize |weights|.
		out := make([]float64, len(m.Weights))
		var tot float64
		for i, w := range m.Weights {
			if w < 0 {
				w = -w
			}
			out[i] = w
			tot += w
		}
		if tot > 0 {
			for i := range out {
				out[i] /= tot
			}
		}
		return out, nil
	}
	w1, err := fit(overScans)
	if err != nil {
		return nil, err
	}
	w2, err := fit(overJoins)
	if err != nil {
		return nil, err
	}
	return &Fig16Result{
		Names:     learned.FeatureNames(false),
		OverScans: w1,
		OverJoins: w2,
		SetSizes:  [2]int{len(overScans), len(overJoins)},
	}, nil
}

// Render formats Figure 16: the top features of both sets side by side.
func (r *Fig16Result) Render() string {
	t := &Table{
		Title: fmt.Sprintf("Figure 16: hash-join feature weights by context (set1: over scans, n=%d; set2: over joins, n=%d)",
			r.SetSizes[0], r.SetSizes[1]),
		Columns: []string{"feature", "w(set1)", "w(set2)"},
	}
	type fw struct {
		name   string
		w1, w2 float64
	}
	var fws []fw
	for i, n := range r.Names {
		fws = append(fws, fw{n, r.OverScans[i], r.OverJoins[i]})
	}
	sort.Slice(fws, func(a, b int) bool {
		return fws[a].w1+fws[a].w2 > fws[b].w1+fws[b].w2
	})
	for _, f := range fws[:min(10, len(fws))] {
		t.AddRow(f.name, fmt.Sprintf("%.3f", f.w1), fmt.Sprintf("%.3f", f.w2))
	}
	t.Notes = append(t.Notes,
		"paper: partition count is more influential for joins over joins (more network transfer) than joins over scans")
	return t.Render()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
