package experiments

import (
	"fmt"

	"cleo/internal/costmodel"
	"cleo/internal/learned"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// Fig14Result tracks model robustness over a month (Figure 14): coverage,
// median error, 95th-percentile error and Pearson correlation per model at
// growing distances from the training window.
type Fig14Result struct {
	Days   []int
	Models []string
	// Metric[model][dayIdx]
	Coverage  [][]float64
	MedianErr [][]float64
	P95Err    [][]float64
	Pearson   [][]float64
}

// Fig14 generates a month-long trace, trains on the first days (individual
// models on days 0–1, combiner on day 2) and evaluates at the paper's
// offsets.
func Fig14(scale Scale, seed int64) (*Fig14Result, error) {
	days := 31
	templates := 8
	instances := 2
	if scale == ScaleFull {
		templates = 25
		instances = 3
	}
	tr := workload.Generate(workload.Config{
		Clusters:                   1,
		Days:                       days,
		TemplatesPerCluster:        templates,
		InstancesPerTemplatePerDay: instances,
		AdHocFraction:              0.12,
		DayGrowth:                  0.02,
		Seed:                       seed,
	})
	runner := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}, Mode: stats.Estimated, Jitter: true}
	col, err := runner.RunAll()
	if err != nil {
		return nil, err
	}
	pr, err := learned.TrainByDay(col.Records, 2, learned.DefaultTrainConfig())
	if err != nil {
		return nil, err
	}

	out := &Fig14Result{Days: []int{2, 7, 14, 21, 28}}
	for fam := 0; fam < learned.NumFamilies; fam++ {
		out.Models = append(out.Models, learned.Family(fam).String())
	}
	out.Models = append(out.Models, "Combined", "Default")

	for range out.Models {
		out.Coverage = append(out.Coverage, nil)
		out.MedianErr = append(out.MedianErr, nil)
		out.P95Err = append(out.P95Err, nil)
		out.Pearson = append(out.Pearson, nil)
	}

	for _, offset := range out.Days {
		day := 2 + offset // evaluation day: `offset` days after training
		var recs []telemetry.Record
		for _, r := range col.Records {
			if r.Day == day {
				recs = append(recs, r)
			}
		}
		for fam := 0; fam < learned.NumFamilies; fam++ {
			fm := pr.Families[fam]
			acc := fm.Evaluate(recs)
			out.Coverage[fam] = append(out.Coverage[fam], fm.Coverage(recs))
			out.MedianErr[fam] = append(out.MedianErr[fam], acc.MedianErr)
			out.P95Err[fam] = append(out.P95Err[fam], acc.P95Err)
			out.Pearson[fam] = append(out.Pearson[fam], acc.Pearson)
		}
		ci := learned.NumFamilies
		acc := pr.Evaluate(recs)
		out.Coverage[ci] = append(out.Coverage[ci], 1)
		out.MedianErr[ci] = append(out.MedianErr[ci], acc.MedianErr)
		out.P95Err[ci] = append(out.P95Err[ci], acc.P95Err)
		out.Pearson[ci] = append(out.Pearson[ci], acc.Pearson)

		di := ci + 1
		def := defaultAccuracy(recs)
		out.Coverage[di] = append(out.Coverage[di], 1)
		out.MedianErr[di] = append(out.MedianErr[di], def.MedianErr)
		out.P95Err[di] = append(out.P95Err[di], def.P95Err)
		out.Pearson[di] = append(out.Pearson[di], def.Pearson)
	}
	return out, nil
}

// Render formats Figure 14 as four panels.
func (r *Fig14Result) Render() string {
	panel := func(title string, metric [][]float64, fm func(float64) string) string {
		cols := []string{"model"}
		for _, d := range r.Days {
			cols = append(cols, fmt.Sprintf("+%dd", d))
		}
		t := &Table{Title: title, Columns: cols}
		for mi, m := range r.Models {
			cells := []string{m}
			for _, v := range metric[mi] {
				cells = append(cells, fm(v))
			}
			t.AddRow(cells...)
		}
		return t.Render()
	}
	out := panel("Figure 14a: coverage over one month", r.Coverage, pct)
	out += panel("Figure 14b: median error over one month", r.MedianErr, pct)
	out += panel("Figure 14c: 95%ile error over one month", r.P95Err, pct)
	out += panel("Figure 14d: Pearson correlation over one month", r.Pearson, corr)
	out += "note: paper — subgraph coverage decays 58%->37% over 28 days; combined stays at 100% with graceful error growth; retraining every ~10 days keeps median error ~20%\n"
	return out
}
