package engine

import (
	"sync"
	"testing"

	"cleo/internal/plan"
	"cleo/internal/stats"
)

// trainedParallelSystem builds a System with the given search parallelism,
// telemetry collected and models trained.
func trainedParallelSystem(t *testing.T, parallelism int) (*System, *plan.Logical) {
	t.Helper()
	sys := NewSystem(SystemConfig{Seed: 5, Parallelism: parallelism})
	sys.RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})
	sys.RegisterTable("users_2026_06_12", stats.TableStats{Rows: 5e5, RowLength: 80})
	q := plan.NewOutput(plan.NewAggregate(plan.NewJoin(
		plan.NewSelect(plan.NewGet("clicks_2026_06_12", "clicks_"), "market=us"),
		plan.NewGet("users_2026_06_12", "users_"),
		"c.user=u.id", "user"), "region"))
	for seed := int64(1); seed <= 20; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	return sys, q
}

// TestConcurrentParallelOptimize drives many concurrent learned
// resource-aware Optimize calls through one System whose searches
// themselves fan out internally (run under -race): the engine-level
// concurrency contract of the parallel memo search.
func TestConcurrentParallelOptimize(t *testing.T) {
	sys, q := trainedParallelSystem(t, 4)
	opts := RunOptions{
		Seed: 7, Param: 2,
		UseLearnedModels: true, ResourceAware: true, SkipLogging: true,
		Models: sys.Models(),
	}
	want, _, err := sys.Optimize(q, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 12)
	plans := make([]string, 12)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, _, err := sys.Optimize(q, opts)
			if err != nil {
				errs[i] = err
				return
			}
			plans[i] = p.String()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
		if plans[i] != want.String() {
			t.Fatalf("concurrent optimize %d diverged:\n%s\nwant %s", i, plans[i], want)
		}
	}
}

// TestEngineParallelismDeterminism pins that the per-system parallelism
// knob never changes plans or costs: the same trained models planning the
// same query at parallelism 1 and 8 must agree bit for bit.
func TestEngineParallelismDeterminism(t *testing.T) {
	seqSys, q := trainedParallelSystem(t, 1)
	parSys, _ := trainedParallelSystem(t, 8)
	// Same seed → same catalog and telemetry → same trained models; pin
	// each system's own models so cache/version handling stays out of the
	// comparison.
	for _, learnedModels := range []bool{false, true} {
		opts := RunOptions{
			Seed: 9, Param: 3,
			UseLearnedModels: learnedModels, ResourceAware: learnedModels,
			SkipLogging: true,
		}
		seqPlan, seqCost, err := seqSys.Optimize(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		parPlan, parCost, err := parSys.Optimize(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		if seqPlan.String() != parPlan.String() {
			t.Fatalf("learned=%v: plans differ:\nseq: %s\npar: %s", learnedModels, seqPlan, parPlan)
		}
		if seqCost != parCost {
			t.Fatalf("learned=%v: costs differ: %v vs %v", learnedModels, seqCost, parCost)
		}
	}
}

// TestParallelismAccessor pins knob resolution.
func TestParallelismAccessor(t *testing.T) {
	if got := NewSystem(SystemConfig{Seed: 1, Parallelism: 6}).Parallelism(); got != 6 {
		t.Fatalf("Parallelism() = %d, want 6", got)
	}
	if got := NewSystem(SystemConfig{Seed: 1}).Parallelism(); got < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", got)
	}
}
