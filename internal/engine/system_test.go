package engine

import (
	"sync"
	"testing"

	"cleo/internal/plan"
	"cleo/internal/stats"
)

// TestRetrainRacesRunSafely exercises the contract the serving layer
// depends on: Retrain hot-swaps the predictor atomically and may race
// with learned Run traffic (run under -race).
func TestRetrainRacesRunSafely(t *testing.T) {
	sys := NewSystem(SystemConfig{Seed: 5})
	sys.RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})
	q := plan.NewOutput(plan.NewAggregate(plan.NewSelect(
		plan.NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
	for seed := int64(1); seed <= 30; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 9)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				_, err := sys.Run(q, RunOptions{
					Seed: int64(w*15 + i), Param: float64(i%4) + 1,
					UseLearnedModels: true, SafePlanSelection: i%3 == 0,
				})
				if err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := sys.Retrain(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if sys.Models() == nil {
		t.Fatal("no models after concurrent retrains")
	}
}

// TestDefaultParam pins the extracted defaulting helper.
func TestDefaultParam(t *testing.T) {
	if got := defaultParam(0); got != 1 {
		t.Fatalf("defaultParam(0) = %v", got)
	}
	if got := defaultParam(3.5); got != 3.5 {
		t.Fatalf("defaultParam(3.5) = %v", got)
	}
}
