package engine

import (
	"testing"

	"cleo/internal/cascades"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

func templateTestQuery() *plan.Logical {
	return plan.NewOutput(plan.NewAggregate(plan.NewSelect(
		plan.NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
}

// trainedTemplateSystem builds a System with telemetry collected and a
// first model version published.
func trainedTemplateSystem(t *testing.T) *System {
	t.Helper()
	sys := NewSystem(SystemConfig{Seed: 5})
	sys.RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})
	q := templateTestQuery()
	for seed := int64(1); seed <= 30; seed++ {
		if _, err := sys.Run(q, RunOptions{Seed: seed, Param: float64(seed%5) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Retrain(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestTemplateInvalidation is the table-driven invalidation contract at
// the engine layer: after a model hot-swap, a statistics update or a
// per-request parallelism override, the next optimization must miss the
// template cache (and re-explore) instead of reusing a stale snapshot.
func TestTemplateInvalidation(t *testing.T) {
	steps := []struct {
		name   string
		mutate func(t *testing.T, sys *System)
	}{
		{"model hot-swap", func(t *testing.T, sys *System) {
			// Retrain publishes a new *Predictor: the key's model identity
			// changes and SetModels purges the cache outright.
			if err := sys.Retrain(); err != nil {
				t.Fatal(err)
			}
			if st := sys.TemplateStats(); st.TemplateEntries != 0 || st.TemplateInvalidations == 0 {
				t.Fatalf("hot-swap did not purge the template cache: %+v", st)
			}
		}},
		{"stats update", func(t *testing.T, sys *System) {
			sys.RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 3e7, RowLength: 120})
		}},
	}
	for _, step := range steps {
		t.Run(step.name, func(t *testing.T) {
			sys := trainedTemplateSystem(t)
			q := templateTestQuery()
			opts := RunOptions{Seed: 7, Param: 2, UseLearnedModels: true, SkipLogging: true,
				Models: sys.Models()}
			base := sys.TemplateStats()
			for i := 0; i < 2; i++ {
				if _, _, err := sys.Optimize(q, opts); err != nil {
					t.Fatal(err)
				}
			}
			st := sys.TemplateStats()
			if st.TemplateHits != base.TemplateHits+1 {
				t.Fatalf("warmup: stats went %+v -> %+v, want one hit", base, st)
			}
			step.mutate(t, sys)
			opts.Models = sys.Models() // re-pin whatever is live now
			if _, _, err := sys.Optimize(q, opts); err != nil {
				t.Fatal(err)
			}
			after := sys.TemplateStats()
			if after.TemplateHits != st.TemplateHits {
				t.Fatalf("optimization after %s hit a stale template: %+v -> %+v", step.name, st, after)
			}
			if after.TemplateMisses <= st.TemplateMisses {
				t.Fatalf("optimization after %s did not re-explore: %+v -> %+v", step.name, st, after)
			}
		})
	}
}

// TestTemplateParallelismOverrideMisses pins the per-request knob: a run
// with RunOptions.Parallelism different from the system default keys its
// own template slot.
func TestTemplateParallelismOverrideMisses(t *testing.T) {
	sys := NewSystem(SystemConfig{Seed: 5, Parallelism: 1})
	sys.RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})
	q := templateTestQuery()
	for i := 0; i < 2; i++ {
		if _, _, err := sys.Optimize(q, RunOptions{Seed: 7, SkipLogging: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.TemplateStats()
	if st.TemplateHits != 1 || st.TemplateMisses != 1 {
		t.Fatalf("warmup stats = %+v", st)
	}
	if _, _, err := sys.Optimize(q, RunOptions{Seed: 7, SkipLogging: true, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	after := sys.TemplateStats()
	if after.TemplateHits != st.TemplateHits || after.TemplateMisses != st.TemplateMisses+1 {
		t.Fatalf("parallelism override stats = %+v, want a fresh miss", after)
	}
}

// TestTemplateCacheDisabled pins the negative-capacity escape hatch.
func TestTemplateCacheDisabled(t *testing.T) {
	sys := NewSystem(SystemConfig{Seed: 5, TemplateCacheSize: -1})
	sys.RegisterTable("clicks_2026_06_12", stats.TableStats{Rows: 2e7, RowLength: 120})
	q := templateTestQuery()
	for i := 0; i < 2; i++ {
		if _, _, err := sys.Optimize(q, RunOptions{Seed: 7, SkipLogging: true}); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.TemplateStats(); st != (cascades.TemplateCacheStats{}) {
		t.Fatalf("disabled cache reported activity: %+v", st)
	}
}
