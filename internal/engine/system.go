// Package engine bundles the statistics catalog, the simulated cluster,
// the optimizer and the learned-model feedback loop into a single-tenant
// System — the per-tenant unit of work the root cleo package re-exports
// and the serving layer (internal/serve) multiplexes.
package engine

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/learned"
	"cleo/internal/ml"
	"cleo/internal/obs"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
	"cleo/internal/workload/tpch"
)

// SystemConfig configures a System.
type SystemConfig struct {
	// Seed identifies the simulated cluster: its hidden hardware and data
	// complexity factors derive from it.
	Seed uint64
	// MaxPartitions caps per-stage parallelism (default 3000).
	MaxPartitions int
	// NoiseSigma is the cloud latency noise (default 0.18; 0 keeps the
	// default, use Exec to disable noise entirely).
	NoiseSigma float64
	// Parallelism bounds the worker goroutines one optimizer search fans
	// group-optimization tasks across (0 = GOMAXPROCS). Parallel searches
	// return plans cost-identical to sequential ones.
	Parallelism int
	// TemplateCacheSize bounds the recurring-job memo-template cache: the
	// optimizer snapshots each logical plan's explored memo and later
	// instances of the same template reuse it, re-running only costing and
	// arbitration. 0 selects the default capacity
	// (cascades.DefaultTemplateCacheSize); negative disables template
	// reuse entirely. Cached and fresh optimizations return bit-identical
	// plans; stale reuse is fenced by the catalog epoch, the model
	// identity and the search configuration in the cache key, plus a full
	// purge on every model hot-swap.
	TemplateCacheSize int
	// Rules selects the optimizer's transformation-rule set (nil = the
	// default set; cascades.EmptyRules() disables logical exploration, so
	// the search considers only the plan as written). The rule-set identity
	// is part of the template-cache key, so changing it can never reuse a
	// snapshot explored under different rules.
	Rules *cascades.RuleSet
	// MemoBudget caps the memo group count exploration may grow to
	// (0 = cascades.DefaultMemoBudget). Like Rules, it fences the
	// template cache.
	MemoBudget int
	// Exec, when non-nil, overrides the full cluster configuration.
	Exec *exec.Config
	// StreamingExec executes plans on the in-process streaming vectorized
	// executor instead of the simulated cluster. Per-operator latencies are
	// then measured wall-clock times, so the learned feedback loop trains
	// on real runtimes. NoiseSigma and Exec only apply to the simulator.
	StreamingExec bool
	// Stream tunes the streaming executor (nil = defaults); ignored unless
	// StreamingExec is set. When Metrics is configured, the executor's
	// per-operator instruments register there automatically.
	Stream *exec.StreamConfig
	// Metrics, when non-nil, threads observability through the system:
	// search phase timings, batched-costing latency, execution and retrain
	// durations all record into instruments registered here. Instruments
	// are keyed by name, so Systems sharing one registry (the multi-tenant
	// serving layer) aggregate into the same series. Nil costs nothing on
	// any hot path.
	Metrics *obs.Registry
}

// System bundles a statistics catalog, a simulated cluster, the optimizer
// and the learned-model feedback loop — everything a single tenant needs.
// All methods are safe for concurrent use: Retrain and SetModels publish
// the new predictor with an atomic hot-swap, so they may freely race with
// Run — in-flight optimizations keep pricing with the predictor they
// started with and later calls observe the new version.
type System struct {
	catalog    *stats.Catalog
	backend    exec.Backend
	maxP       int
	par        int
	rules      *cascades.RuleSet
	memoBudget int

	// templates caches explored memo snapshots across recurring instances
	// (nil when disabled). SetModels purges it on every hot-swap.
	templates *cascades.TemplateCache

	// Observability instruments, all nil without SystemConfig.Metrics.
	// Handles resolve once here; hot paths never touch the registry.
	searchMetrics  *cascades.SearchMetrics
	costerMetrics  *learned.CosterMetrics
	executeSeconds *obs.Histogram
	retrainSeconds *obs.Histogram

	mu  sync.Mutex // guards log
	log []telemetry.Record

	models atomic.Pointer[learned.Predictor]
}

// NewSystem builds a System.
func NewSystem(cfg SystemConfig) *System {
	ec := exec.DefaultConfig(cfg.Seed)
	if cfg.NoiseSigma > 0 {
		ec.NoiseSigma = cfg.NoiseSigma
	}
	if cfg.Exec != nil {
		ec = *cfg.Exec
	}
	if cfg.MaxPartitions > 0 {
		ec.MaxPartitions = cfg.MaxPartitions
	}
	s := &System{
		catalog:    stats.NewCatalog(cfg.Seed),
		maxP:       ec.MaxPartitions,
		par:        cfg.Parallelism,
		rules:      cfg.Rules,
		memoBudget: cfg.MemoBudget,
	}
	if cfg.StreamingExec {
		sc := exec.StreamConfig{}
		if cfg.Stream != nil {
			sc = *cfg.Stream
		}
		if sc.Metrics == nil {
			sc.Metrics = exec.NewMetrics(cfg.Metrics) // nil registry → nil metrics, free
		}
		if sc.MaxWorkers == 0 && cfg.Parallelism > 0 {
			// One parallelism knob governs both optimizer search fan-out
			// and execution pipeline width, unless Stream sets its own.
			sc.MaxWorkers = cfg.Parallelism
		}
		s.backend = exec.NewEngine(sc)
	} else {
		s.backend = exec.NewCluster(ec)
	}
	if cfg.TemplateCacheSize >= 0 {
		s.templates = cascades.NewTemplateCache(cfg.TemplateCacheSize)
	}
	if cfg.Metrics != nil {
		s.searchMetrics = cascades.NewSearchMetrics(cfg.Metrics)
		s.costerMetrics = learned.NewCosterMetrics(cfg.Metrics)
		s.executeSeconds = cfg.Metrics.Histogram("cleo_execute_seconds",
			"Simulated-cluster query execution latency per run.")
		s.retrainSeconds = cfg.Metrics.Histogram("cleo_retrain_seconds",
			"Model training duration per retrain (telemetry to published predictor).")
	}
	return s
}

// Parallelism reports the effective optimizer search parallelism (the
// configured knob, or GOMAXPROCS when unset). The serving layer surfaces
// it per tenant in /v1/stats.
func (s *System) Parallelism() int {
	if s.par > 0 {
		return s.par
	}
	return runtime.GOMAXPROCS(0)
}

// ExecWorkers reports the streaming backend's per-stage pipeline-width
// clamp, after any per-run override in opts. It is 0 when execution runs
// on the simulated cluster, which has no pipeline width to report.
func (s *System) ExecWorkers(opts RunOptions) int {
	eng, ok := s.backend.(*exec.Engine)
	if !ok {
		return 0
	}
	if opts.Parallelism > 0 {
		return eng.WithMaxWorkers(opts.Parallelism).MaxWorkers()
	}
	return eng.MaxWorkers()
}

// defaultParam applies the job-parameter default: the PM feature is 1 when
// the caller leaves it unset.
func defaultParam(p float64) float64 {
	if p == 0 {
		return 1
	}
	return p
}

// Catalog exposes the statistics catalog for table registration and
// selectivity overrides.
func (s *System) Catalog() *stats.Catalog { return s.catalog }

// RegisterTable installs a stored input's statistics.
func (s *System) RegisterTable(name string, ts stats.TableStats) { s.catalog.PutTable(name, ts) }

// RegisterTPCH installs the TPC-H tables (at the given scale factor) and
// the standard predicate selectivities into the system's catalog.
// lineitem, orders and part are registered as stored hash-partitioned
// inputs, as in the paper's SCOPE deployment.
func (s *System) RegisterTPCH(scaleFactor float64) {
	tpch.Register(s.catalog, scaleFactor)
}

// RunOptions controls one query execution.
type RunOptions struct {
	// Seed drives per-instance statistics drift and execution noise.
	Seed int64
	// Param is the job parameter (the PM feature); defaults to 1.
	Param float64
	// UseLearnedModels prices operators with the trained CLEO models
	// instead of the default cost model. Requires a prior Retrain or
	// LoadModels.
	UseLearnedModels bool
	// ResourceAware enables partition exploration during planning, using
	// the analytical strategy over the active cost model.
	ResourceAware bool
	// SafePlanSelection applies the paper's Section 6.7 regression
	// mitigation: the query is optimized twice — with the default cost
	// model and with the learned models — and the plan whose latency the
	// learned models predict to be lower is executed. Requires
	// UseLearnedModels.
	SafePlanSelection bool
	// SkipLogging suppresses telemetry entirely: nothing is appended to
	// the feedback log (or sent to LogSink), and the run is treated as an
	// evaluation run (no partition jitter).
	SkipLogging bool
	// Parallelism, when positive, overrides the system's configured
	// optimizer search parallelism for this one run — the serving layer's
	// per-request knob, letting a latency-critical query borrow more
	// search width than its tenant default (or a bulk query take less).
	// Parallel searches return plans cost-identical to sequential ones,
	// so the override never changes the chosen plan.
	Parallelism int
	// LogSink, when non-nil, receives the run's telemetry records instead
	// of the system's internal log — the serving layer batches them
	// through its ingestion channel. Unlike SkipLogging, the run still
	// counts as a telemetry-collection run (partition jitter applies).
	LogSink func([]telemetry.Record)
	// Models, when non-nil, prices with this predictor instead of the
	// system's current one. The serving layer reads one registry version
	// atomically and pins its predictor and cache here together, so a
	// concurrent hot-swap cannot mix a new predictor with an old cache.
	Models *learned.Predictor
	// Cache, when non-nil, memoizes learned-coster predictions across
	// optimizations keyed by operator signature and statistics (the
	// serving layer's recurring-job hot path). A cache is only coherent
	// with the one predictor that fills it, so it takes effect only when
	// Models pins that predictor — otherwise it is ignored, ensuring a
	// Retrain hot-swap can never serve another version's cached costs.
	Cache *learned.PredictionCache
	// Trace, when non-nil, records this run's phases (search phases,
	// execution) as an EXPLAIN ANALYZE-style span tree — the serving
	// layer's opt-in "trace": true. Tracing also turns on fine-grained
	// phase stamping that the always-on metrics tier skips.
	Trace *obs.Trace
	// TraceParent parents this run's spans (0 = trace root).
	TraceParent obs.SpanID
}

// RunResult is one executed query.
type RunResult struct {
	Plan                *plan.Physical
	PredictedCost       float64
	Latency             float64
	TotalProcessingTime float64
	Containers          int
	// OutputRows and OutputChecksum describe the query result when the
	// backend actually produces rows (the streaming executor); the
	// simulator leaves them zero.
	OutputRows     uint64
	OutputChecksum uint64
	Records        []telemetry.Record
}

// Optimize plans the query without executing it.
func (s *System) Optimize(q *plan.Logical, opts RunOptions) (*plan.Physical, float64, error) {
	coster, chooser, err := s.costing(opts)
	if err != nil {
		return nil, 0, err
	}
	par := s.par
	if opts.Parallelism > 0 {
		par = opts.Parallelism
	}
	opt := &cascades.Optimizer{
		Catalog:       s.catalog,
		Cost:          coster,
		MaxPartitions: s.maxP,
		ResourceAware: opts.ResourceAware,
		Chooser:       chooser,
		JobSeed:       opts.Seed,
		Parallelism:   par,
		Rules:         s.rules,
		MemoBudget:    s.memoBudget,
		Templates:     s.templates,
		Metrics:       s.searchMetrics,
		Trace:         opts.Trace,
		TraceParent:   opts.TraceParent,
	}
	res, err := opt.Optimize(q)
	if err != nil {
		return nil, 0, err
	}
	if !opts.UseLearnedModels && !opts.SkipLogging {
		// Telemetry-collection runs (logged, default-model-planned) jitter
		// the plan's partition counts, emulating production heuristic
		// variability so the learned models see a range of counts per
		// template. Evaluation runs (SkipLogging) and learned runs keep
		// clean optimized counts.
		cascades.JitterPlanPartitions(res.Plan, opts.Seed, s.maxP, coster)
	}
	return res.Plan, res.Plan.TotalCostEst(), nil
}

// costing assembles the coster and partition chooser for one optimization.
// The learned Coster implements the batch-costing upgrades (CostBatch,
// IndividualCostBatch), which the optimizer and choosers detect via type
// assertion — so wiring it here puts every Run/Optimize/tenant query on
// the batched matrix-inference path automatically, while the hand-crafted
// default model keeps the scalar path.
func (s *System) costing(opts RunOptions) (cascades.Coster, cascades.PartitionChooser, error) {
	var coster cascades.Coster = costmodel.Default{}
	if opts.UseLearnedModels {
		m := s.predictor(opts)
		if m == nil {
			return nil, nil, fmt.Errorf("cleo: no trained models; call Retrain or LoadModels first")
		}
		var cache *learned.PredictionCache
		if opts.Models != nil {
			cache = opts.Cache // coherent only with a pinned predictor
		}
		coster = &learned.Coster{
			Predictor: m,
			Param:     defaultParam(opts.Param),
			Fallback:  costmodel.Default{},
			Cache:     cache,
			Metrics:   s.costerMetrics,
		}
	}
	var chooser cascades.PartitionChooser
	if opts.ResourceAware {
		ac := &learned.AnalyticalChooser{Cost: coster, Param: defaultParam(opts.Param)}
		if lc, ok := coster.(*learned.Coster); ok {
			// The stage-fit memo shares the pinned version's prediction
			// cache, so a model hot-swap invalidates both together.
			ac.Fits = lc.Cache
		}
		chooser = ac
	}
	return coster, chooser, nil
}

// Run optimizes and executes the query, logging telemetry into the
// feedback loop (unless opts.SkipLogging).
func (s *System) Run(q *plan.Logical, opts RunOptions) (*RunResult, error) {
	var p *plan.Physical
	var cost float64
	var err error
	if opts.SafePlanSelection && opts.UseLearnedModels {
		p, cost, err = s.optimizeSafe(q, opts)
	} else {
		p, cost, err = s.Optimize(q, opts)
	}
	if err != nil {
		return nil, err
	}
	var t0 time.Time
	if s.executeSeconds != nil || opts.Trace != nil {
		t0 = time.Now()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var execRes exec.Result
	backend := s.backend
	if eng, ok := backend.(*exec.Engine); ok && opts.Parallelism > 0 {
		// The per-run parallelism override governs execution pipeline
		// width exactly as it governs optimizer search width above.
		backend = eng.WithMaxWorkers(opts.Parallelism)
	}
	tb, tracedRun := backend.(exec.TracedBackend)
	tracedRun = tracedRun && opts.Trace != nil
	if tracedRun {
		// Backends that can attribute time per operator hang their spans
		// under the execute span, so the trace shows the full operator tree.
		span := opts.Trace.Begin(opts.TraceParent, "execute")
		execRes, err = tb.RunTraced(p, rng, opts.Trace, span)
		if err == nil {
			opts.Trace.SetAttr(span, "latency", strconv.FormatFloat(execRes.Latency, 'g', 6, 64))
			opts.Trace.SetAttr(span, "containers", strconv.Itoa(execRes.Containers))
		}
		opts.Trace.End(span)
	} else {
		execRes, err = backend.Run(p, rng)
	}
	if err != nil {
		return nil, err
	}
	if !t0.IsZero() {
		el := time.Since(t0)
		s.executeSeconds.Record(el) // nil-safe
		if tr := opts.Trace; tr != nil && !tracedRun {
			tr.Add(opts.TraceParent, "execute", tr.Now()-int64(el), int64(el),
				"latency", strconv.FormatFloat(execRes.Latency, 'g', 6, 64),
				"containers", strconv.Itoa(execRes.Containers),
			)
		}
	}
	job := &workload.Job{
		ID:    fmt.Sprintf("run-%d", opts.Seed),
		Seed:  opts.Seed,
		Param: defaultParam(opts.Param),
	}
	records := telemetry.Extract(job, p)
	if !opts.SkipLogging {
		if opts.LogSink != nil {
			opts.LogSink(records)
		} else {
			s.mu.Lock()
			s.log = append(s.log, records...)
			s.mu.Unlock()
		}
	}
	return &RunResult{
		Plan:                p,
		PredictedCost:       cost,
		Latency:             execRes.Latency,
		TotalProcessingTime: execRes.TotalProcessingTime,
		Containers:          execRes.Containers,
		OutputRows:          execRes.OutputRows,
		OutputChecksum:      execRes.OutputChecksum,
		Records:             records,
	}, nil
}

// optimizeSafe implements the paper's optimize-twice mitigation
// (Section 6.7): plan with the default model and with the learned models,
// then keep the plan the learned models predict to be cheaper — they are
// the accurate judge even when the default model found the plan.
func (s *System) optimizeSafe(q *plan.Logical, opts RunOptions) (*plan.Physical, float64, error) {
	// Pin the predictor up front so the learned optimization and the
	// default-plan scoring below use the same model version even when a
	// Retrain hot-swap lands mid-flight.
	opts.Models = s.predictor(opts)
	defOpts := opts
	defOpts.UseLearnedModels = false
	defOpts.ResourceAware = false
	defPlan, _, err := s.Optimize(q, defOpts)
	if err != nil {
		return nil, 0, err
	}
	cleoPlan, cleoCost, err := s.Optimize(q, opts)
	if err != nil {
		return nil, 0, err
	}
	m := opts.Models
	param := defaultParam(opts.Param)
	// Score the default plan with the learned models, pricing every
	// operator in one batched pass.
	nodes := make([]*plan.Physical, 0, defPlan.Count())
	defPlan.Walk(func(n *plan.Physical) { nodes = append(nodes, n) })
	var defScore float64
	for _, c := range m.PredictNodes(nodes, param) {
		defScore += c
	}
	if defScore < cleoCost {
		return defPlan, defScore, nil
	}
	return cleoPlan, cleoCost, nil
}

// predictor resolves the predictor for one optimization: the pinned
// opts.Models when set, else the system's current hot-swapped models.
func (s *System) predictor(opts RunOptions) *learned.Predictor {
	if opts.Models != nil {
		return opts.Models
	}
	return s.models.Load()
}

// LogSize reports the telemetry log length.
func (s *System) LogSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.log)
}

// TelemetryLog returns a copy of the accumulated telemetry.
func (s *System) TelemetryLog() []telemetry.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]telemetry.Record(nil), s.log...)
}

// AppendTelemetry merges externally collected records (e.g. from a
// workload trace run) into the feedback log.
func (s *System) AppendTelemetry(recs []telemetry.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = append(s.log, recs...)
}

// Retrain fits the four individual model families and the combined
// meta-ensemble from the accumulated telemetry (the paper's periodic
// training, Section 5.1) and atomically hot-swaps the result in, so it is
// safe to call while Run traffic is in flight.
func (s *System) Retrain() error {
	recs := s.TelemetryLog()
	var t0 time.Time
	if s.retrainSeconds != nil {
		t0 = time.Now()
	}
	pr, err := learned.TrainSplit(recs, learned.DefaultTrainConfig())
	if err != nil {
		return err
	}
	if !t0.IsZero() {
		s.retrainSeconds.Record(time.Since(t0))
	}
	s.SetModels(pr)
	return nil
}

// Models returns the trained predictor (nil before training).
func (s *System) Models() *learned.Predictor {
	return s.models.Load()
}

// SetModels installs an externally trained predictor with an atomic swap.
// The hot-swap also purges the memo-template cache: the cache key already
// fences on the predictor identity, so the purge reclaims entries priced
// under superseded versions rather than leaving them to age out of the LRU.
func (s *System) SetModels(pr *learned.Predictor) {
	s.models.Store(pr)
	if s.templates != nil {
		s.templates.Invalidate()
	}
}

// TemplateStats snapshots the recurring-job template cache counters (the
// zero value when template reuse is disabled).
func (s *System) TemplateStats() cascades.TemplateCacheStats {
	if s.templates == nil {
		return cascades.TemplateCacheStats{}
	}
	return s.templates.Stats()
}

// SaveModels serializes the trained models to a file.
func (s *System) SaveModels(path string) error {
	m := s.Models()
	if m == nil {
		return fmt.Errorf("cleo: no trained models to save")
	}
	return m.SaveFile(path)
}

// LoadModels reads models from a file written by SaveModels.
func (s *System) LoadModels(path string) error {
	pr, err := learned.LoadFile(path)
	if err != nil {
		return err
	}
	s.SetModels(pr)
	return nil
}

// EvaluateModels scores the trained models against records (e.g. a held-out
// day of telemetry).
func (s *System) EvaluateModels(recs []telemetry.Record) (ml.Accuracy, error) {
	m := s.Models()
	if m == nil {
		return ml.Accuracy{}, fmt.Errorf("cleo: no trained models")
	}
	return m.Evaluate(recs), nil
}

// ExplainDiff optimizes q under the default cost model and under the
// learned models and reports both plans — the paper's plan-change analysis
// (Section 6.6).
func (s *System) ExplainDiff(q *plan.Logical, opts RunOptions) (defPlan, cleoPlan *plan.Physical, changed bool, err error) {
	defOpts := opts
	defOpts.UseLearnedModels = false
	defOpts.ResourceAware = false
	defPlan, _, err = s.Optimize(q, defOpts)
	if err != nil {
		return nil, nil, false, err
	}
	cleoOpts := opts
	cleoOpts.UseLearnedModels = true
	cleoPlan, _, err = s.Optimize(q, cleoOpts)
	if err != nil {
		return nil, nil, false, err
	}
	return defPlan, cleoPlan, defPlan.String() != cleoPlan.String(), nil
}
