package engine

import (
	"testing"

	"cleo/internal/exec"
	"cleo/internal/plan"
	"cleo/internal/workload/tpch"
)

// TestStreamingBackendFeedbackLoop pins the measured-telemetry loop end to
// end: the streaming executor runs real queries, its wall-clock operator
// timings land in the telemetry log, the existing retrain pipeline fits
// models from them, and the engine serves learned-model runs — no
// simulated latencies anywhere.
func TestStreamingBackendFeedbackLoop(t *testing.T) {
	sys := NewSystem(SystemConfig{
		Seed:          7,
		StreamingExec: true,
		Stream:        &exec.StreamConfig{MaxTableRows: 4000},
	})
	sys.RegisterTPCH(1)

	queries := []*plan.Logical{
		tpch.Queries()[1](),
		tpch.Queries()[3](),
		tpch.Queries()[6](),
	}
	runs := 0
	for seed := int64(1); seed <= 10; seed++ {
		for qi, q := range queries {
			res, err := sys.Run(q, RunOptions{Seed: seed*10 + int64(qi), Param: float64(seed%4) + 1})
			if err != nil {
				t.Fatal(err)
			}
			runs++
			if res.Latency <= 0 {
				t.Fatalf("run %d: no measured latency: %+v", runs, res.Latency)
			}
			if res.OutputChecksum == 0 || res.OutputRows == 0 {
				t.Fatalf("run %d: streaming backend produced no result rows", runs)
			}
			var positive int
			for _, rec := range res.Records {
				// Simulated exclusive latencies for these shapes are tens of
				// seconds; measured ones are sub-millisecond. Anything at or
				// above half a second would mean a synthetic latency leaked in.
				if rec.ActualLatency < 0 || rec.ActualLatency >= 0.5 {
					t.Fatalf("run %d: %v latency %v is not a measured wall-clock time",
						runs, rec.Op, rec.ActualLatency)
				}
				if rec.ActualLatency > 0 {
					positive++
				}
				if rec.ActOutCard <= 0 {
					t.Fatalf("run %d: %v missing observed cardinality", runs, rec.Op)
				}
			}
			if positive == 0 {
				t.Fatalf("run %d: no operator recorded nonzero measured time", runs)
			}
		}
	}
	if n := sys.LogSize(); n == 0 {
		t.Fatal("no telemetry logged")
	}

	// The unchanged retrain pipeline must fit models from the measured
	// telemetry, and the engine must serve them.
	if err := sys.Retrain(); err != nil {
		t.Fatalf("retrain on measured telemetry: %v", err)
	}
	if sys.Models() == nil {
		t.Fatal("no models after retrain")
	}
	res, err := sys.Run(queries[0], RunOptions{Seed: 999, UseLearnedModels: true, SkipLogging: true})
	if err != nil {
		t.Fatalf("learned run on streaming backend: %v", err)
	}
	if res.OutputRows == 0 || res.PredictedCost <= 0 {
		t.Fatalf("learned run produced no result: rows=%d cost=%v", res.OutputRows, res.PredictedCost)
	}
}

// TestStreamingBackendDeterministicResults pins that the streaming backend
// is a function of the plan alone: re-running the same query yields the
// same output rows and checksum (the simulator's noise rng is ignored).
func TestStreamingBackendDeterministicResults(t *testing.T) {
	sys := NewSystem(SystemConfig{
		Seed:          11,
		StreamingExec: true,
		Stream:        &exec.StreamConfig{MaxTableRows: 1500},
	})
	sys.RegisterTPCH(1)
	q := tpch.Queries()[3]
	var rows, chk uint64
	for i := 0; i < 3; i++ {
		res, err := sys.Run(q(), RunOptions{Seed: 42, SkipLogging: true})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			rows, chk = res.OutputRows, res.OutputChecksum
			continue
		}
		if res.OutputRows != rows || res.OutputChecksum != chk {
			t.Fatalf("run %d: result drifted: rows %d→%d checksum %x→%x",
				i, rows, res.OutputRows, chk, res.OutputChecksum)
		}
	}
}
