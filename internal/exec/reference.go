package exec

import (
	"fmt"
	"math/rand"
	"time"

	"cleo/internal/plan"
)

// Reference is the materialize-all evaluator: every operator consumes a
// fully materialized input table and allocates a fully materialized
// output, with none of the streaming engine's batching, buffer reuse or
// pipelining. It exists for two reasons: it is the correctness oracle the
// streaming engine is diffed against (bit-identical output multisets over
// the golden corpus), and it is the perf baseline that shows what
// iterator composition buys.
//
// Its operator semantics — generated data, predicate evaluation, join
// matching and emission order, aggregate grouping — are exactly the
// streaming engine's, with one deliberate exception: joins always use the
// classic build-then-probe algorithm, never the symmetric variant, so its
// output order is canonical. All comparisons against the streaming engine
// therefore use order-insensitive multiset checksums.
type Reference struct {
	cfg StreamConfig
}

// NewReference builds the reference evaluator (same config defaults as
// the streaming engine; Metrics is ignored).
func NewReference(cfg StreamConfig) *Reference {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.MaxTableRows <= 0 {
		cfg.MaxTableRows = DefaultMaxTableRows
	}
	return &Reference{cfg: cfg}
}

// refTable is one fully materialized intermediate result.
type refTable struct {
	sch schema
	cs  *colStore
}

func newRefTable(sch schema, capRows int) *refTable {
	return &refTable{sch: sch, cs: newColStore(len(sch), capRows)}
}

// Run implements Backend: evaluate bottom-up, materializing every
// intermediate, and fill the measured actuals exactly like the streaming
// engine does.
func (r *Reference) Run(root *plan.Physical, rng *rand.Rand) (Result, error) {
	t0 := time.Now()
	preds := compilePreds(root)
	sch := scanSchema(root, preds)
	var res Result
	out, err := r.eval(root, sch, preds, &res)
	if err != nil {
		return Result{}, err
	}
	res.Latency = time.Since(t0).Seconds()
	res.OutputRows = uint64(out.cs.n)
	for i := 0; i < out.cs.n; i++ {
		res.OutputChecksum += mix64(rowHash(out.cs.cols, i))
	}
	for _, st := range plan.Stages(root) {
		res.Containers += st.Partitions
	}
	return res, nil
}

func (r *Reference) eval(n *plan.Physical, sch schema, preds map[*plan.Physical]*Pred, res *Result) (*refTable, error) {
	kids := make([]*refTable, len(n.Children))
	for i, c := range n.Children {
		k, err := r.eval(c, sch, preds, res)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}

	t0 := time.Now()
	out, err := r.apply(n, sch, preds, kids)
	if err != nil {
		return nil, err
	}
	excl := time.Since(t0).Seconds()
	n.ExclusiveActual = excl
	n.Stats.ActCard = float64(out.cs.n)
	res.TotalProcessingTime += excl
	return out, nil
}

func (r *Reference) apply(n *plan.Physical, sch schema, preds map[*plan.Physical]*Pred, kids []*refTable) (*refTable, error) {
	if len(kids) == 0 {
		rows := scanRows(n, r.cfg.MaxTableRows)
		out := newRefTable(sch, int(rows))
		src := materializeTable(n.Table, sch, rows)
		for c := range sch {
			out.cs.cols[c] = append(out.cs.cols[c], src.cols[c]...)
		}
		out.cs.n = int(rows)
		return out, nil
	}

	in := kids[0]
	switch n.Op {
	case plan.PFilter:
		p := preds[n]
		if p == nil {
			p = CompilePred(n.Pred)
		}
		bp := p.Bind(in.sch)
		out := newRefTable(in.sch, in.cs.n)
		for i := 0; i < in.cs.n; i++ {
			if bp.Eval(in.cs.cols, i) {
				out.cs.appendRow(in.cs.cols, i)
			}
		}
		return out, nil

	case plan.PProject:
		osch := projectSchema(n.Keys, in.sch)
		out := newRefTable(osch, in.cs.n)
		for c, col := range osch {
			src := in.sch.index(col)
			out.cs.cols[c] = append(out.cs.cols[c], in.cs.cols[src][:in.cs.n]...)
		}
		out.cs.n = in.cs.n
		return out, nil

	case plan.PHashJoin, plan.PMergeJoin:
		if len(kids) < 2 {
			return copyTable(in), nil
		}
		if n.Op == plan.PMergeJoin {
			return r.mergeJoin(n, kids[0], kids[1])
		}
		return r.hashJoin(n, kids[0], kids[1])

	case plan.PHashAggregate, plan.PPartialAggregate:
		extra := int64(0)
		if n.Op == plan.PPartialAggregate {
			extra = partialBuckets
		}
		return r.hashAgg(n, in, extra)

	case plan.PStreamAggregate:
		return r.streamAgg(n, in)

	case plan.PSort:
		keyIdx, err := resolveKeys(n.Op, n.Keys, in.sch)
		if err != nil {
			return nil, err
		}
		idx := sortedIndex(in.cs, keyIdx)
		out := newRefTable(in.sch, in.cs.n)
		for _, i := range idx {
			out.cs.appendRow(in.cs.cols, int(i))
		}
		return out, nil

	case plan.PTopN:
		limit := n.N
		if limit <= 0 {
			limit = 100
		}
		keyIdx, err := resolveKeys(n.Op, n.Keys, in.sch)
		if err != nil {
			return nil, err
		}
		idx := sortedIndex(in.cs, keyIdx)
		if len(idx) > limit {
			idx = idx[:limit]
		}
		out := newRefTable(in.sch, len(idx))
		for _, i := range idx {
			out.cs.appendRow(in.cs.cols, int(i))
		}
		return out, nil

	case plan.PUnionAll:
		out := newRefTable(in.sch, in.cs.n)
		for _, k := range kids {
			if k.sch.equal(in.sch) {
				for i := 0; i < k.cs.n; i++ {
					out.cs.appendRow(k.cs.cols, i)
				}
				continue
			}
			// Adapt by column name; missing columns read zero.
			idxs := make([]int, len(in.sch))
			for c, col := range in.sch {
				idxs[c] = k.sch.index(col)
			}
			for i := 0; i < k.cs.n; i++ {
				for c, src := range idxs {
					var v int64
					if src >= 0 {
						v = k.cs.cols[src][i]
					}
					out.cs.cols[c] = append(out.cs.cols[c], v)
				}
				out.cs.n++
			}
		}
		return out, nil

	case plan.PProcess:
		return r.process(n, in), nil

	case plan.PExchange, plan.POutput:
		// Stage boundaries materialize in a real distributed engine; the
		// reference copies to model that.
		return copyTable(in), nil

	default:
		return nil, fmt.Errorf("exec: reference evaluator cannot execute operator %v", n.Op)
	}
}

func copyTable(in *refTable) *refTable {
	out := newRefTable(in.sch, in.cs.n)
	for c := range in.cs.cols {
		out.cs.cols[c] = append(out.cs.cols[c], in.cs.cols[c]...)
	}
	out.cs.n = in.cs.n
	return out
}

// hashJoin mirrors hashJoinIter: build on the right child, probe the left
// in order, emit left-shaped rows with combined payload, matches per
// probe row in build-insertion order.
func (r *Reference) hashJoin(n *plan.Physical, left, right *refTable) (*refTable, error) {
	if len(n.Keys) == 0 {
		return nil, fmt.Errorf("exec: %v needs at least one equi-join key column", n.Op)
	}
	lKey, err := resolveKeys(n.Op, n.Keys, left.sch)
	if err != nil {
		return nil, err
	}
	rKey, err := resolveKeys(n.Op, n.Keys, right.sch)
	if err != nil {
		return nil, err
	}
	lVal, rVal := left.sch.valIndex(), right.sch.valIndex()
	build := newBuildTable(len(rKey), right.cs.n)
	for i := 0; i < right.cs.n; i++ {
		build.add(right.cs.cols, rKey, rVal, i)
	}
	out := newRefTable(left.sch, left.cs.n)
	var cand []int32
	for i := 0; i < left.cs.n; i++ {
		cand = build.matches(left.cs.cols, lKey, i, cand[:0])
		for _, m := range cand {
			out.cs.appendRow(left.cs.cols, i)
			if lVal >= 0 {
				out.cs.cols[lVal][out.cs.n-1] = left.cs.cols[lVal][i] + build.val[m]
			}
		}
	}
	return out, nil
}

// mergeJoin mirrors mergeJoinIter: canonical sort both sides, merge
// equal-key runs left-major.
func (r *Reference) mergeJoin(n *plan.Physical, left, right *refTable) (*refTable, error) {
	if len(n.Keys) == 0 {
		return nil, fmt.Errorf("exec: %v needs at least one equi-join key column", n.Op)
	}
	lKey, err := resolveKeys(n.Op, n.Keys, left.sch)
	if err != nil {
		return nil, err
	}
	rKey, err := resolveKeys(n.Op, n.Keys, right.sch)
	if err != nil {
		return nil, err
	}
	lVal, rVal := left.sch.valIndex(), right.sch.valIndex()
	lIdx := sortedIndex(left.cs, lKey)
	rIdx := sortedIndex(right.cs, rKey)
	out := newRefTable(left.sch, left.cs.n)
	li, ri := 0, 0
	for li < len(lIdx) && ri < len(rIdx) {
		c := compareKeys(left.cs, int(lIdx[li]), lKey, right.cs, int(rIdx[ri]), rKey)
		if c < 0 {
			li++
			continue
		}
		if c > 0 {
			ri++
			continue
		}
		l1 := li + 1
		for l1 < len(lIdx) && compareKeys(left.cs, int(lIdx[l1]), lKey, right.cs, int(rIdx[ri]), rKey) == 0 {
			l1++
		}
		r1 := ri + 1
		for r1 < len(rIdx) && compareKeys(left.cs, int(lIdx[li]), lKey, right.cs, int(rIdx[r1]), rKey) == 0 {
			r1++
		}
		for a := li; a < l1; a++ {
			l := int(lIdx[a])
			for b := ri; b < r1; b++ {
				out.cs.appendRow(left.cs.cols, l)
				if lVal >= 0 {
					var rv int64
					if rVal >= 0 {
						rv = right.cs.cols[rVal][int(rIdx[b])]
					}
					out.cs.cols[lVal][out.cs.n-1] = left.cs.cols[lVal][l] + rv
				}
			}
		}
		li, ri = l1, r1
	}
	return out, nil
}

// hashAgg mirrors hashAggIter, including the partial aggregate's
// row-hash sub-bucketing and insertion-order emission.
func (r *Reference) hashAgg(n *plan.Physical, in *refTable, extraBuckets int64) (*refTable, error) {
	osch := aggSchema(n)
	keyIdx, err := resolveKeys(n.Op, osch[:len(osch)-2], in.sch)
	if err != nil {
		return nil, err
	}
	valIdx := in.sch.valIndex()
	cntIdx := -1
	if n.Op == plan.PHashAggregate && partialBelow(n.Children[0]) {
		cntIdx = in.sch.index(cntCol)
	}
	nk := len(keyIdx)

	gKeys := make([][]int64, nk)
	var buckets, cnt, sum []int64
	index := map[uint64][]int32{}
	for i := 0; i < in.cs.n; i++ {
		var bucket int64
		h := keyHash(in.cs.cols, keyIdx, i)
		if extraBuckets > 0 {
			bucket = int64(rowHash(in.cs.cols, i) % uint64(extraBuckets))
			h = mix64(h ^ uint64(bucket))
		}
		g := int32(-1)
	next:
		for _, c := range index[h] {
			for k, ix := range keyIdx {
				var v int64
				if ix >= 0 {
					v = in.cs.cols[ix][i]
				}
				if gKeys[k][c] != v {
					continue next
				}
			}
			if extraBuckets > 0 && buckets[c] != bucket {
				continue next
			}
			g = c
			break
		}
		if g < 0 {
			g = int32(len(cnt))
			for k, ix := range keyIdx {
				var v int64
				if ix >= 0 {
					v = in.cs.cols[ix][i]
				}
				gKeys[k] = append(gKeys[k], v)
			}
			if extraBuckets > 0 {
				buckets = append(buckets, bucket)
			}
			cnt = append(cnt, 0)
			sum = append(sum, 0)
			index[h] = append(index[h], g)
		}
		if cntIdx >= 0 {
			// Final stage above a partial aggregate: sum the partial counts
			// (see hashAggIter).
			cnt[g] += in.cs.cols[cntIdx][i]
		} else {
			cnt[g]++
		}
		if valIdx >= 0 {
			sum[g] += in.cs.cols[valIdx][i]
		}
	}

	out := newRefTable(osch, len(cnt))
	for k := 0; k < nk; k++ {
		out.cs.cols[k] = append(out.cs.cols[k], gKeys[k]...)
	}
	out.cs.cols[nk] = append(out.cs.cols[nk], cnt...)
	out.cs.cols[nk+1] = append(out.cs.cols[nk+1], sum...)
	out.cs.n = len(cnt)
	return out, nil
}

// streamAgg mirrors streamAggIter: runs of consecutive equal keys.
func (r *Reference) streamAgg(n *plan.Physical, in *refTable) (*refTable, error) {
	osch := aggSchema(n)
	keyIdx, err := resolveKeys(n.Op, osch[:len(osch)-2], in.sch)
	if err != nil {
		return nil, err
	}
	valIdx := in.sch.valIndex()
	nk := len(keyIdx)
	out := newRefTable(osch, 64)

	cur := make([]int64, nk)
	var cnt, sum int64
	started := false
	emit := func() {
		for k := 0; k < nk; k++ {
			out.cs.cols[k] = append(out.cs.cols[k], cur[k])
		}
		out.cs.cols[nk] = append(out.cs.cols[nk], cnt)
		out.cs.cols[nk+1] = append(out.cs.cols[nk+1], sum)
		out.cs.n++
	}
	for i := 0; i < in.cs.n; i++ {
		same := started
		for k, ix := range keyIdx {
			var v int64
			if ix >= 0 {
				v = in.cs.cols[ix][i]
			}
			if same && cur[k] != v {
				same = false
			}
		}
		if !same {
			if started {
				emit()
			}
			for k, ix := range keyIdx {
				var v int64
				if ix >= 0 {
					v = in.cs.cols[ix][i]
				}
				cur[k] = v
			}
			cnt, sum = 0, 0
			started = true
		}
		cnt++
		if valIdx >= 0 {
			sum += in.cs.cols[valIdx][i]
		}
	}
	if started {
		emit()
	}
	return out, nil
}

// process mirrors processIter's fanout and payload rewrite.
func (r *Reference) process(n *plan.Physical, in *refTable) *refTable {
	udfH := mix64(strHash(n.UDF))
	valIx := in.sch.valIndex()
	fan := 0.25 + 1.75*unitFromHash(udfH)
	out := newRefTable(in.sch, in.cs.n)
	for i := 0; i < in.cs.n; i++ {
		rh := rowHash(in.cs.cols, i)
		copies := int(fan)
		if unitFromHash(mix64(udfH^rh)) < fan-float64(int(fan)) {
			copies++
		}
		for j := 0; j < copies; j++ {
			out.cs.appendRow(in.cs.cols, i)
			if valIx >= 0 {
				v := in.cs.cols[valIx][i]
				out.cs.cols[valIx][out.cs.n-1] = int64(mix64(uint64(v) ^ udfH ^ uint64(j)))
			}
		}
	}
	return out
}
