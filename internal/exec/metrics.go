package exec

import (
	"time"

	"cleo/internal/obs"
	"cleo/internal/plan"
)

// Metrics holds the streaming executor's per-operator instruments,
// resolved once at construction so the execution hot path never touches
// the registry. All handles are nil-safe.
type Metrics struct {
	opSeconds [plan.NumPhysicalOps]*obs.Histogram
	rows      [plan.NumPhysicalOps]*obs.Counter
	batches   [plan.NumPhysicalOps]*obs.Counter

	// Data movement through exchange operators, by exchange kind
	// (gather, roundrobin, partition, merge).
	xRows    [4]*obs.Counter
	xBatches [4]*obs.Counter
	// Pipeline instances launched, total across operators — the measured
	// degree of parallelism (1 instance per operator when running width 1).
	instances *obs.Counter
}

// NewMetrics registers the executor instruments in r (nil r yields nil,
// which every record path tolerates).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{}
	for _, op := range plan.AllPhysicalOps() {
		lbl := op.String()
		m.opSeconds[op] = r.Histogram("cleo_exec_operator_seconds",
			"Measured exclusive wall-clock time per operator execution, by physical operator.",
			"op", lbl)
		m.rows[op] = r.Counter("cleo_exec_rows_total",
			"Rows emitted by streaming-executor operators, by physical operator.",
			"op", lbl)
		m.batches[op] = r.Counter("cleo_exec_batches_total",
			"Batches emitted by streaming-executor operators, by physical operator.",
			"op", lbl)
	}
	for k := xGather; k <= xMerge; k++ {
		lbl := k.String()
		m.xRows[k] = r.Counter("cleo_exec_exchange_rows_total",
			"Rows moved between pipeline instances by exchange operators, by exchange kind.",
			"kind", lbl)
		m.xBatches[k] = r.Counter("cleo_exec_exchange_batches_total",
			"Batches moved between pipeline instances by exchange operators, by exchange kind.",
			"kind", lbl)
	}
	m.instances = r.Counter("cleo_exec_pipeline_instances_total",
		"Pipeline instances launched by the streaming executor (one per operator per partition).")
	return m
}

// recordExchange logs one exchange's total data movement.
func (m *Metrics) recordExchange(kind xKind, rows, batches int64) {
	if m == nil {
		return
	}
	m.xRows[kind].Add(uint64(rows))
	m.xBatches[kind].Add(uint64(batches))
}

// recordInstances logs pipeline instances launched for one run.
func (m *Metrics) recordInstances(n int64) {
	if m == nil {
		return
	}
	m.instances.Add(uint64(n))
}

// record logs one operator execution.
func (m *Metrics) record(op plan.PhysicalOp, exclusive time.Duration, rows, batches int64) {
	if m == nil {
		return
	}
	m.opSeconds[op].Record(exclusive)
	m.rows[op].Add(uint64(rows))
	m.batches[op].Add(uint64(batches))
}
