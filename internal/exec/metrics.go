package exec

import (
	"time"

	"cleo/internal/obs"
	"cleo/internal/plan"
)

// Metrics holds the streaming executor's per-operator instruments,
// resolved once at construction so the execution hot path never touches
// the registry. All handles are nil-safe.
type Metrics struct {
	opSeconds [plan.NumPhysicalOps]*obs.Histogram
	rows      [plan.NumPhysicalOps]*obs.Counter
	batches   [plan.NumPhysicalOps]*obs.Counter
}

// NewMetrics registers the executor instruments in r (nil r yields nil,
// which every record path tolerates).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{}
	for _, op := range plan.AllPhysicalOps() {
		lbl := op.String()
		m.opSeconds[op] = r.Histogram("cleo_exec_operator_seconds",
			"Measured exclusive wall-clock time per operator execution, by physical operator.",
			"op", lbl)
		m.rows[op] = r.Counter("cleo_exec_rows_total",
			"Rows emitted by streaming-executor operators, by physical operator.",
			"op", lbl)
		m.batches[op] = r.Counter("cleo_exec_batches_total",
			"Batches emitted by streaming-executor operators, by physical operator.",
			"op", lbl)
	}
	return m
}

// record logs one operator execution.
func (m *Metrics) record(op plan.PhysicalOp, exclusive time.Duration, rows, batches int64) {
	if m == nil {
		return
	}
	m.opSeconds[op].Record(exclusive)
	m.rows[op].Add(uint64(rows))
	m.batches[op].Add(uint64(batches))
}
