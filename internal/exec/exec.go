// Package exec simulates a massively parallel query processor: the
// substitute for Microsoft's production SCOPE clusters. Given a physical
// plan annotated with *actual* cardinalities, it computes each operator's
// actual exclusive latency from hidden "true" cost functions that are
// nonlinear in data volumes and partition counts, depend on the operator's
// pipeline context (what runs beneath it) and on hidden per-input and
// per-UDF complexity factors, and carry multiplicative lognormal cloud
// noise plus occasional outliers — exactly the properties the paper blames
// for hand-crafted cost models being off by orders of magnitude
// (Sections 1–2) and that make per-subexpression learning effective.
//
// Neither the default cost model nor the learned models ever see these
// functions; learned models only see the telemetry the simulator emits.
package exec

import (
	"fmt"
	"math"
	"math/rand"

	"cleo/internal/plan"
)

// Config controls the simulated cluster.
type Config struct {
	// NoiseSigma is the lognormal sigma of run-to-run latency noise
	// (cloud variance, [42] in the paper). 0 disables noise.
	NoiseSigma float64
	// OutlierProb is the probability an operator hits a straggler or
	// machine failure, multiplying its latency by OutlierFactor.
	OutlierProb float64
	// OutlierFactor is the latency multiplier for outliers.
	OutlierFactor float64
	// Seed identifies the cluster: hidden complexity factors (hardware
	// SKU mix, data formats, UDF costs) derive from it, so different
	// clusters have genuinely different latency behaviour.
	Seed uint64
	// MaxPartitions is the per-virtual-cluster container cap (paper: a
	// virtual cluster has up to ~3000 containers).
	MaxPartitions int
}

// DefaultConfig returns a production-like cluster.
func DefaultConfig(seed uint64) Config {
	return Config{
		NoiseSigma:    0.18,
		OutlierProb:   0.01,
		OutlierFactor: 6,
		Seed:          seed,
		MaxPartitions: 3000,
	}
}

// Cluster is a simulated cluster. It is safe for concurrent use once
// constructed; per-run randomness is passed in by callers.
type Cluster struct {
	cfg Config
}

// NewCluster builds a cluster from cfg.
func NewCluster(cfg Config) *Cluster {
	if cfg.MaxPartitions <= 0 {
		cfg.MaxPartitions = 3000
	}
	if cfg.OutlierFactor <= 0 {
		cfg.OutlierFactor = 6
	}
	return &Cluster{cfg: cfg}
}

// MaxPartitions exposes the container cap.
func (c *Cluster) MaxPartitions() int { return c.cfg.MaxPartitions }

// Result summarises one executed job.
type Result struct {
	// Latency is the end-to-end latency in seconds: the critical path
	// over stages.
	Latency float64
	// TotalProcessingTime is the summed container-seconds (the "total
	// compute hour" metric of Figure 19b), in seconds.
	TotalProcessingTime float64
	// Containers is the summed partition count across stages.
	Containers int
	// OutputRows and OutputChecksum describe the rows the query actually
	// produced. Only real executors (the streaming Engine and the
	// Reference evaluator) fill them; the simulator leaves them zero. The
	// checksum is order-insensitive, so any two backends that compute the
	// same result multiset agree on it.
	OutputRows     uint64
	OutputChecksum uint64
}

// Run executes the plan: it fills ExclusiveActual on every operator and
// returns the job-level result. The plan must already carry actual
// cardinalities (stats.Catalog.Annotate) and partition counts
// (plan.SetStagePartitions). rng drives the run's noise.
func (c *Cluster) Run(root *plan.Physical, rng *rand.Rand) (Result, error) {
	if err := c.validate(root); err != nil {
		return Result{}, err
	}
	root.Walk(func(n *plan.Physical) {
		n.ExclusiveActual = c.operatorLatency(n, rng)
	})

	// End-to-end latency: stages execute respecting data dependencies;
	// a stage's elapsed time is the sum of its operators' exclusive
	// latencies (they share containers), and a stage starts when all
	// stages feeding it finish.
	stages := plan.Stages(root)
	stageOf := plan.StageOf(root)
	finish := make(map[*plan.Stage]float64, len(stages))
	var res Result
	for _, st := range stages { // Stages returns bottom-up order
		var start float64
		var dur float64
		for _, op := range st.Ops {
			dur += op.ExclusiveActual
			for _, ch := range op.Children {
				cs := stageOf[ch]
				if cs != st && finish[cs] > start {
					start = finish[cs]
				}
			}
		}
		finish[st] = start + dur
		if finish[st] > res.Latency {
			res.Latency = finish[st]
		}
		res.TotalProcessingTime += dur * float64(st.Partitions)
		res.Containers += st.Partitions
	}
	return res, nil
}

func (c *Cluster) validate(root *plan.Physical) error {
	var err error
	root.Walk(func(n *plan.Physical) {
		if err != nil {
			return
		}
		if n.Partitions <= 0 {
			err = fmt.Errorf("exec: operator %v has no partition count", n.Op)
		}
		if n.Partitions > c.cfg.MaxPartitions {
			err = fmt.Errorf("exec: operator %v exceeds container cap: %d > %d",
				n.Op, n.Partitions, c.cfg.MaxPartitions)
		}
	})
	return err
}

// TrueLatency returns the noise-free expected exclusive latency of the
// operator in its current context — used by tests and by the experiment
// that probes the partition-cost curve. Production code paths never call
// this for costing.
func (c *Cluster) TrueLatency(n *plan.Physical) float64 {
	return c.baseLatency(n)
}

// operatorLatency draws the noisy actual latency.
func (c *Cluster) operatorLatency(n *plan.Physical, rng *rand.Rand) float64 {
	lat := c.baseLatency(n)
	if c.cfg.NoiseSigma > 0 {
		lat *= math.Exp(rng.NormFloat64() * c.cfg.NoiseSigma)
	}
	if c.cfg.OutlierProb > 0 && rng.Float64() < c.cfg.OutlierProb {
		lat *= c.cfg.OutlierFactor * (0.5 + rng.Float64())
	}
	return lat
}
