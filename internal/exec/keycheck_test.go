// Key-resolution hardening: an operator whose key column is absent from
// its input schema used to hash the zero column set silently — every row
// in one bucket or one group, a wrong answer with no error. Compilation
// must instead fail, naming the operator and the column, on both backends.
package exec_test

import (
	"fmt"
	"strings"
	"testing"

	"cleo/internal/exec"
	"cleo/internal/plan"
)

// narrowInput is an aggregate over k0: its output schema is exactly
// [k0 __cnt __sum], so any other key above it cannot resolve — even though
// the global scan schema (the union of every key in the plan) contains it.
func narrowInput() *plan.Physical {
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.Table = "facts"
	leaf.InputTemplate = "facts_"
	leaf.Partitions = 2
	agg := plan.NewPhysical(plan.PHashAggregate, leaf)
	agg.Keys = []plan.Column{"k0"}
	return agg
}

func runOnBoth(p *plan.Physical) (streamErr, refErr error) {
	_, streamErr = exec.NewEngine(equivCfg).Run(p.Clone(), nil)
	_, refErr = exec.NewReference(equivCfg).Run(p.Clone(), nil)
	return
}

func TestCompileRejectsUnknownKeyColumn(t *testing.T) {
	withBadKey := func(op plan.PhysicalOp, build func() *plan.Physical) {
		t.Run(op.String(), func(t *testing.T) {
			root := plan.NewPhysical(plan.POutput, build())
			se, re := runOnBoth(root)
			for which, err := range map[string]error{"streaming": se, "reference": re} {
				if err == nil {
					t.Fatalf("%s: compiled a %v keyed on a column its input does not carry", which, op)
				}
				if !strings.Contains(err.Error(), `"k1"`) || !strings.Contains(err.Error(), op.String()) {
					t.Fatalf("%s: error must name the operator and column, got: %v", which, err)
				}
			}
		})
	}

	withBadKey(plan.PHashAggregate, func() *plan.Physical {
		a := plan.NewPhysical(plan.PHashAggregate, narrowInput())
		a.Keys = []plan.Column{"k1"}
		return a
	})
	withBadKey(plan.PSort, func() *plan.Physical {
		s := plan.NewPhysical(plan.PSort, narrowInput())
		s.Keys = []plan.Column{"k1"}
		return s
	})
	withBadKey(plan.PTopN, func() *plan.Physical {
		n := plan.NewPhysical(plan.PTopN, narrowInput())
		n.Keys = []plan.Column{"k1"}
		n.N = 5
		return n
	})
	withBadKey(plan.PHashJoin, func() *plan.Physical {
		other := plan.NewPhysical(plan.PExtract)
		other.Table = "dims"
		other.InputTemplate = "dims_"
		other.Partitions = 2
		j := plan.NewPhysical(plan.PHashJoin, narrowInput(), other)
		j.Keys = []plan.Column{"k1"} // resolves on the right scan, not the aggregated left
		j.Pred = "f.k1=d.k1"
		return j
	})
}

// TestCompileRejectsKeylessJoin pins the executor-level backstop behind
// plan.Validate: a join with no equi-join keys must not silently hash
// every row into one bucket.
func TestCompileRejectsKeylessJoin(t *testing.T) {
	l := plan.NewPhysical(plan.PExtract)
	l.Table = "facts"
	l.InputTemplate = "facts_"
	l.Partitions = 2
	r := plan.NewPhysical(plan.PExtract)
	r.Table = "dims"
	r.InputTemplate = "dims_"
	r.Partitions = 2
	j := plan.NewPhysical(plan.PHashJoin, l, r)
	j.Pred = "f.k=d.k"
	root := plan.NewPhysical(plan.POutput, j)
	se, re := runOnBoth(root)
	for which, err := range map[string]error{"streaming": se, "reference": re} {
		if err == nil {
			t.Fatalf("%s: executed a keyless join", which)
		}
		if !strings.Contains(err.Error(), "equi-join key") {
			t.Fatalf("%s: unexpected error: %v", which, err)
		}
	}
}

// FuzzCompileKeyResolution hunts silent key fallbacks: an arbitrary key
// name above a schema-narrowing aggregate must either resolve (it is the
// group key or a reserved payload column) or fail compilation with an
// error naming it — never execute with a zero column set.
func FuzzCompileKeyResolution(f *testing.F) {
	for _, seed := range []string{"k0", "k1", "__cnt", "__sum", "__val", "", "nope", "k0 "} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, key string) {
		s := plan.NewPhysical(plan.PSort, narrowInput())
		s.Keys = []plan.Column{plan.Column(key)}
		root := plan.NewPhysical(plan.POutput, s)
		res, err := exec.NewEngine(equivCfg).Run(root, nil)
		switch key {
		case "k0", "__cnt", "__sum":
			if err != nil {
				t.Fatalf("key %q is in the aggregate's output schema but failed: %v", key, err)
			}
			if res.OutputRows == 0 {
				t.Fatalf("key %q: no output rows", key)
			}
		default:
			if err == nil {
				t.Fatalf("unknown key %q compiled", key)
			}
			// The column is rendered with %q, so match the quoted form
			// (it escapes arbitrary fuzzed bytes deterministically).
			if !strings.Contains(err.Error(), fmt.Sprintf("%q", key)) {
				t.Fatalf("error does not name the key %q: %v", key, err)
			}
		}
	})
}
