package exec

import (
	"hash/fnv"
	"math"

	"cleo/internal/plan"
)

// Throughput constants of the simulated hardware (rows/s and bytes/s per
// container). These are the "true" machine characteristics that hand-tuned
// cost models approximate poorly.
const (
	readBandwidth  = 80e6  // bytes/s sequential read
	writeBandwidth = 70e6  // bytes/s sequential write
	netBandwidth   = 60e6  // bytes/s shuffle
	filterRate     = 2.0e6 // rows/s
	projectRate    = 4.0e6
	sortRate       = 1.2e6 // rows/s per comparator pass
	hashJoinRate   = 1.5e6
	mergeJoinRate  = 2.5e6
	hashAggRate    = 1.1e6
	streamAggRate  = 3.0e6
	partialAggRate = 2.2e6
	topNRate       = 2.5e6
	unionRate      = 5.0e6
	udfBaseRate    = 1.0e6
)

// Per-partition overhead coefficients (seconds per partition). These give
// every operator the cost ∝ θ_P/P + θ_c·P structure the paper exploits
// analytically (Section 5.3): parallelism amortizes work but adds
// scheduling, connection and straggler overhead.
const (
	stragglerCoef   = 0.004 // every operator
	exchangeConnIn  = 0.020 // per destination partition
	exchangeConnSrc = 0.012 // per source partition
	extractNSOver   = 0.004 // namespace overhead per partition
	startupPartOp   = 0.2   // container launch for partitioning ops
	startupOther    = 0.05
	spillThreshold  = 1.0e9 // bytes per partition before spilling
	spillFactor     = 2.5
)

// hiddenUnit maps (seed, salt, s) to a uniform [0,1) float. It is the
// cluster's private randomness: stable per cluster, unknown to cost models.
func (c *Cluster) hiddenUnit(salt, s string) float64 {
	h := fnv.New64a()
	h.Write([]byte(salt))
	h.Write([]byte{0})
	h.Write([]byte(s))
	v := h.Sum64() ^ c.cfg.Seed*0x9e3779b97f4a7c15
	h2 := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h2.Write(b[:])
	return float64(h2.Sum64()%1_000_000_007) / 1_000_000_007.0
}

// dataComplexity is the hidden per-input factor (format, compression,
// column mix) in [0.4, 3.2], log-uniform.
func (c *Cluster) dataComplexity(template string) float64 {
	return 0.4 * math.Pow(8, c.hiddenUnit("dc", template))
}

// udfCost is the hidden per-UDF cost multiplier in [0.5, 20] — user code is
// a black box to the optimizer (Section 2.4).
func (c *Cluster) udfCost(udf string) float64 {
	return 0.5 * math.Pow(40, c.hiddenUnit("udf", udf))
}

// keySkew is the hidden key-skew multiplier in [1, 4] for hash-partitioned
// operators: a skewed key makes the slowest partition dominate.
func (c *Cluster) keySkew(keys []plan.Column) float64 {
	s := ""
	for _, k := range keys {
		s += string(k) + ","
	}
	return 1 + 3*c.hiddenUnit("skew", s)
}

// pipelineFactor captures how the operator's latency depends on what runs
// beneath it (Section 3.1: a hash operator over a filter is cheaper than
// over a sort). Blocking children force materialization; streaming children
// allow pipelined, cheaper execution.
func (c *Cluster) pipelineFactor(n *plan.Physical) float64 {
	if len(n.Children) == 0 {
		return 1
	}
	f := 1.0
	for _, ch := range n.Children {
		switch {
		case ch.Op == plan.PSort:
			f *= 1.40 // sorted runs must be fully materialized
		case ch.Op.Blocking():
			f *= 1.20
		case ch.Op == plan.PExchange:
			f *= 1.10 // network boundary breaks the pipeline
		default:
			f *= 0.92 // pipelined streaming input
		}
	}
	return f
}

// inputComplexity is the geometric mean of the hidden complexities of the
// leaf inputs feeding the operator.
func (c *Cluster) inputComplexity(n *plan.Physical) float64 {
	templates := n.InputTemplates()
	if len(templates) == 0 {
		return 1
	}
	logSum := 0.0
	for _, t := range templates {
		logSum += math.Log(c.dataComplexity(t))
	}
	return math.Exp(logSum / float64(len(templates)))
}

// baseLatency is the hidden true expected exclusive latency (seconds) of
// one operator: work/P + overhead·P + startup, with context multipliers.
func (c *Cluster) baseLatency(n *plan.Physical) float64 {
	p := float64(n.Partitions)
	if p < 1 {
		p = 1
	}
	in := n.InputCardinality(false)
	out := n.Stats.ActCard
	rowLen := n.Stats.RowLength
	if rowLen <= 0 {
		rowLen = 50
	}
	childLen := rowLen
	if len(n.Children) > 0 {
		childLen = 0
		for _, ch := range n.Children {
			childLen += ch.Stats.RowLength
		}
		childLen /= float64(len(n.Children))
	}

	var work float64    // container-seconds of data-dependent work
	var perPart float64 // seconds per partition of overhead
	startup := startupOther

	switch n.Op {
	case plan.PExtract:
		work = out * rowLen / readBandwidth
		perPart = extractNSOver
		startup = startupPartOp

	case plan.PFilter:
		work = in / filterRate

	case plan.PProject:
		work = in / projectRate

	case plan.PSort:
		per := in / p
		work = in * math.Log2(per+2) / sortRate / math.Log2(1e6)

	case plan.PHashJoin:
		probe, build := childCards(n)
		work = (probe + 1.5*build) / hashJoinRate
		work *= c.keySkew(n.Keys)
		if build/p*childLen > spillThreshold {
			work *= spillFactor
		}

	case plan.PMergeJoin:
		probe, build := childCards(n)
		work = (probe + build) / mergeJoinRate
		work *= c.keySkew(n.Keys)

	case plan.PHashAggregate:
		work = in / hashAggRate
		work *= c.keySkew(n.Keys)
		if in/p*childLen > spillThreshold {
			work *= spillFactor
		}

	case plan.PStreamAggregate:
		work = in / streamAggRate

	case plan.PPartialAggregate:
		work = in / partialAggRate

	case plan.PExchange:
		work = in * childLen / netBandwidth
		srcParts := 0.0
		for _, ch := range n.Children {
			srcParts += float64(ch.Partitions)
		}
		perPart = exchangeConnIn + exchangeConnSrc*srcParts/maxF(p, 1)
		work *= c.keySkew(n.Keys)
		startup = startupPartOp

	case plan.PTopN:
		work = in / topNRate

	case plan.PUnionAll:
		work = in / unionRate

	case plan.PProcess:
		work = in / udfBaseRate * c.udfCost(n.UDF)

	case plan.POutput:
		work = out * rowLen / writeBandwidth

	default:
		work = in / filterRate
	}

	work *= c.pipelineFactor(n) * c.inputComplexity(n)
	lat := work/p + (perPart+stragglerCoef)*p + startup
	return lat
}

// childCards returns (probe, build) cardinalities: by convention child 0 is
// the probe/left side and child 1 the build/right side; unary inputs build
// on themselves.
func childCards(n *plan.Physical) (probe, build float64) {
	if len(n.Children) == 0 {
		return 0, 0
	}
	probe = n.Children[0].Stats.ActCard
	if len(n.Children) > 1 {
		build = n.Children[1].Stats.ActCard
	} else {
		build = probe
	}
	return probe, build
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
