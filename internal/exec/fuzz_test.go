package exec

import (
	"testing"
)

// FuzzPredicateExpr drives the total-grammar predicate compiler with
// arbitrary byte strings: compilation, binding, and evaluation must never
// panic, and evaluation must be deterministic for a fixed row.
func FuzzPredicateExpr(f *testing.F) {
	for _, s := range []string{
		"",
		"q1.shipdate",
		"o.status = open",
		"l.qty < 24 && l.price >= 900",
		"a=b AND b != c and c<=d & d>e",
		"x == x",
		"j.lineitem.orders",
		"g.flagstatus",
		"k = 17 && k = 17 && k = 18",
		"== && <= >= ! = &",
		"\x00\xff weird \t\n bytes",
		"veryverylongidentifier_with_underscores.and.dots = something",
	} {
		f.Add(s)
	}
	sch := schema{"k", "u", valCol}
	cols := [][]int64{{1, -42, 1 << 40}, {0, 7, -9}, {5, 5, 5}}
	f.Fuzz(func(t *testing.T, s string) {
		p := CompilePred(s)
		if p == nil {
			t.Fatal("CompilePred returned nil")
		}
		for _, id := range p.Idents() {
			if id == "" {
				t.Fatalf("empty ident from %q", s)
			}
		}
		bp := p.Bind(sch)
		for i := 0; i < 3; i++ {
			a := bp.Eval(cols, i)
			b := bp.Eval(cols, i)
			if a != b {
				t.Fatalf("non-deterministic eval for %q row %d", s, i)
			}
		}
		// Binding against an empty schema (all columns unbound) must also
		// be total.
		p.Bind(schema{}).Eval(nil, 0)
	})
}
