package exec

import (
	"sync"
	"sync/atomic"
)

// morselRows is the fixed morsel size: the unit of work a parallel scan
// instance claims per atomic cursor bump. A morsel spans several batches so
// the cursor is touched far less often than once per batch, while staying
// small enough that instances load-balance even when downstream operators
// consume at different rates.
const morselRows = 8192

// morselSource is the shared side of a parallel scan: the materialized
// table plus an atomic claim cursor. All instances of one scan node share
// a single source, so the table materializes once per run and rows are
// claimed exactly once across instances — total scanned rows (and
// therefore the scan node's ActCard) are identical to a sequential scan,
// whatever the claim interleaving.
type morselSource struct {
	table string
	sch   schema
	rows  int64

	once   sync.Once
	src    *colStore
	cursor atomic.Int64
}

func newMorselSource(table string, sch schema, rows int64) *morselSource {
	return &morselSource{table: table, sch: sch, rows: rows}
}

// materialize resolves the shared table on first use. Instances open
// concurrently from different producer goroutines; the first one in
// materializes, the rest wait.
func (m *morselSource) materialize() *colStore {
	m.once.Do(func() { m.src = materializeTable(m.table, m.sch, m.rows) })
	return m.src
}

// claim returns the next unclaimed [start, end) morsel, or start >= end
// when the table is exhausted.
func (m *morselSource) claim() (start, end int64) {
	start = m.cursor.Add(morselRows) - morselRows
	end = start + morselRows
	if end > m.rows {
		end = m.rows
	}
	return start, end
}

// morselScanIter is one instance of a parallel scan: it claims morsels
// from the shared source and emits them batch by batch, each batch
// aliasing the immutable materialization (zero copies, same read-only
// contract as scanIter).
type morselScanIter struct {
	src       *morselSource
	batchSize int

	cs       *colStore
	pos, end int64
	out      Batch
}

func newMorselScanIter(src *morselSource, batchSize int) *morselScanIter {
	return &morselScanIter{src: src, batchSize: batchSize}
}

func (s *morselScanIter) Open() error {
	s.cs = s.src.materialize()
	s.out.Cols = make([][]int64, len(s.src.sch))
	s.pos, s.end = 0, 0
	return nil
}

func (s *morselScanIter) Next() (*Batch, error) {
	if s.pos >= s.end {
		s.pos, s.end = s.src.claim()
		if s.pos >= s.end {
			return nil, nil
		}
	}
	n := int64(s.batchSize)
	if rem := s.end - s.pos; n > rem {
		n = rem
	}
	for c := range s.out.Cols {
		s.out.Cols[c] = s.cs.cols[c][s.pos : s.pos+n]
	}
	s.out.N = int(n)
	s.pos += n
	return &s.out, nil
}

func (s *morselScanIter) Close() {
	s.cs = nil
}
