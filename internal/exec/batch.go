package exec

import "sync"

// DefaultBatchSize is the row count iterators aim for per batch. It is
// large enough to amortize per-batch overhead and small enough that a
// batch's columns stay cache-resident.
const DefaultBatchSize = 1024

// Batch is a column-major chunk of rows flowing between iterators. All
// columns hold int64 values (the generated test tables are integer-typed;
// string-ish predicate semantics are hashed into the integer domain by the
// expression compiler).
//
// Ownership contract: a batch returned by an iterator's Next belongs to
// that iterator and is valid only until its next Next (or Close) call.
// Consumers must treat it as read-only — scan batches alias the immutable
// shared table cache, so writing through a consumed batch would corrupt
// cached tables across queries. Iterators that reshape rows (filter,
// project, except, …) gather into their own output batch instead.
type Batch struct {
	Cols [][]int64
	N    int
}

// batchPool recycles batch buffers across iterator instances and runs, so
// steady-state execution allocates no per-batch memory.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// getBatch returns a pooled batch shaped to nCols columns of capRows
// capacity, with N reset to 0.
func getBatch(nCols, capRows int) *Batch {
	b := batchPool.Get().(*Batch)
	if cap(b.Cols) < nCols {
		b.Cols = make([][]int64, nCols)
	} else {
		b.Cols = b.Cols[:nCols]
	}
	for i := range b.Cols {
		if cap(b.Cols[i]) < capRows {
			b.Cols[i] = make([]int64, capRows)
		} else {
			b.Cols[i] = b.Cols[i][:capRows]
		}
	}
	b.N = 0
	return b
}

// putBatch returns a batch to the pool. Safe on nil.
func putBatch(b *Batch) {
	if b != nil {
		batchPool.Put(b)
	}
}
