package exec

import (
	"math/rand"

	"cleo/internal/obs"
	"cleo/internal/plan"
)

// Backend executes an annotated physical plan: it fills ExclusiveActual
// (and, for real executors, Stats.ActCard) on every operator and returns
// the job-level result. The simulated Cluster and the streaming Engine
// both implement it, so engine.System serves against either — the learned
// feedback loop trains on whatever latencies the configured backend
// measures. rng drives the simulator's noise; real executors ignore it.
type Backend interface {
	Run(root *plan.Physical, rng *rand.Rand) (Result, error)
}

// TracedBackend is implemented by backends that can attach per-operator
// spans to a query trace ({"trace": true} in the serving layer).
type TracedBackend interface {
	Backend
	RunTraced(root *plan.Physical, rng *rand.Rand, tr *obs.Trace, parent obs.SpanID) (Result, error)
}

var (
	_ Backend       = (*Cluster)(nil)
	_ Backend       = (*Reference)(nil)
	_ TracedBackend = (*Engine)(nil)
)
