package exec

import (
	"math"
	"math/rand"
	"testing"

	"cleo/internal/plan"
	"cleo/internal/stats"
)

func testPlan(t *testing.T, seed int64) *plan.Physical {
	t.Helper()
	c := stats.NewCatalog(3)
	c.PutTable("clicks_d", stats.TableStats{Rows: 5e6, RowLength: 100})

	leaf := plan.NewPhysical(plan.PExtract)
	leaf.Table = "clicks_d"
	leaf.InputTemplate = "clicks_"
	leaf.Partitions = 8
	f := plan.NewPhysical(plan.PFilter, leaf)
	f.Pred = "x"
	x := plan.NewPhysical(plan.PExchange, f)
	x.Keys = []plan.Column{"k"}
	x.Partitions = 16
	a := plan.NewPhysical(plan.PHashAggregate, x)
	a.Keys = []plan.Column{"k"}
	o := plan.NewPhysical(plan.POutput, a)
	root := o
	plan.SetStagePartitions(root)
	if err := c.Annotate(root, seed, stats.Estimated); err != nil {
		t.Fatal(err)
	}
	return root
}

func noiselessCluster() *Cluster {
	cfg := DefaultConfig(11)
	cfg.NoiseSigma = 0
	cfg.OutlierProb = 0
	return NewCluster(cfg)
}

func TestRunFillsActuals(t *testing.T) {
	cl := NewCluster(DefaultConfig(11))
	root := testPlan(t, 1)
	res, err := cl.Run(root, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	root.Walk(func(n *plan.Physical) {
		if n.ExclusiveActual <= 0 {
			t.Errorf("%v latency = %v", n.Op, n.ExclusiveActual)
		}
	})
	if res.Latency <= 0 || res.TotalProcessingTime <= 0 || res.Containers <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// Latency (critical path) cannot exceed the sum of all latencies and
	// must be at least the largest stage duration.
	var sum float64
	root.Walk(func(n *plan.Physical) { sum += n.ExclusiveActual })
	if res.Latency > sum+1e-9 {
		t.Fatalf("latency %v > serial sum %v", res.Latency, sum)
	}
}

func TestRunRejectsUnpartitionedPlan(t *testing.T) {
	cl := NewCluster(DefaultConfig(1))
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.Partitions = 0
	if _, err := cl.Run(leaf, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for missing partitions")
	}
	leaf.Partitions = 10_000
	if _, err := cl.Run(leaf, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected error for exceeding container cap")
	}
}

func TestNoiseIsReproducibleAndPresent(t *testing.T) {
	cl := NewCluster(DefaultConfig(11))
	r1 := testPlan(t, 1)
	r2 := testPlan(t, 1)
	res1, err := cl.Run(r1, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := cl.Run(r2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Latency != res2.Latency {
		t.Fatal("same seed should reproduce the run exactly")
	}
	res3, err := cl.Run(testPlan(t, 1), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if res3.Latency == res1.Latency {
		t.Fatal("different run seeds should produce different noise")
	}
}

func TestPipelineContextMatters(t *testing.T) {
	// The paper's example: a hash aggregate over a sort is slower than
	// over a filter, for identical input cardinalities.
	cl := noiselessCluster()
	mk := func(child plan.PhysicalOp) *plan.Physical {
		leaf := plan.NewPhysical(plan.PExtract)
		leaf.InputTemplate = "t_"
		leaf.Partitions = 4
		leaf.Stats = plan.NodeStats{ActCard: 1e6, EstCard: 1e6, RowLength: 80}
		mid := plan.NewPhysical(child, leaf)
		mid.Partitions = 4
		mid.Stats = plan.NodeStats{ActCard: 1e6, EstCard: 1e6, RowLength: 80}
		agg := plan.NewPhysical(plan.PHashAggregate, mid)
		agg.Partitions = 4
		agg.Keys = []plan.Column{"k"}
		agg.Stats = plan.NodeStats{ActCard: 1e4, EstCard: 1e4, RowLength: 40}
		return agg
	}
	overSort := cl.TrueLatency(mk(plan.PSort))
	overFilter := cl.TrueLatency(mk(plan.PFilter))
	if overSort <= overFilter {
		t.Fatalf("agg over sort (%v) should cost more than over filter (%v)", overSort, overFilter)
	}
}

func TestPartitionCostTradeoff(t *testing.T) {
	// Latency must first fall with partitions (parallelism) then rise
	// (overhead): the ∝ θP/P + θc·P structure of Section 5.3.
	cl := noiselessCluster()
	lat := func(p int) float64 {
		leaf := plan.NewPhysical(plan.PExtract)
		leaf.InputTemplate = "t_"
		leaf.Partitions = 4
		leaf.Stats = plan.NodeStats{ActCard: 5e7, EstCard: 5e7, RowLength: 100}
		x := plan.NewPhysical(plan.PExchange, leaf)
		x.Keys = []plan.Column{"k"}
		x.Partitions = p
		x.Stats = plan.NodeStats{ActCard: 5e7, EstCard: 5e7, RowLength: 100}
		return cl.TrueLatency(x)
	}
	low := lat(1)
	mid := lat(64)
	high := lat(3000)
	if mid >= low {
		t.Fatalf("64 partitions (%v) should beat 1 (%v)", mid, low)
	}
	if high <= mid {
		t.Fatalf("3000 partitions (%v) should be worse than 64 (%v)", high, mid)
	}
}

func TestHiddenFactorsVaryByClusterSeed(t *testing.T) {
	a := NewCluster(DefaultConfig(1))
	b := NewCluster(DefaultConfig(2))
	n := plan.NewPhysical(plan.PProcess)
	n.UDF = "extractFacts"
	n.Partitions = 4
	n.Stats = plan.NodeStats{ActCard: 1e6, EstCard: 1e6, RowLength: 50}
	child := plan.NewPhysical(plan.PExtract)
	child.InputTemplate = "t_"
	child.Partitions = 4
	child.Stats = plan.NodeStats{ActCard: 1e6, EstCard: 1e6, RowLength: 50}
	n.Children = []*plan.Physical{child}
	if a.TrueLatency(n) == b.TrueLatency(n) {
		t.Fatal("different cluster seeds should hide different UDF costs")
	}
}

func TestUDFCostIsHiddenAndLarge(t *testing.T) {
	cl := noiselessCluster()
	mk := func(udf string) *plan.Physical {
		child := plan.NewPhysical(plan.PExtract)
		child.InputTemplate = "t_"
		child.Partitions = 4
		child.Stats = plan.NodeStats{ActCard: 1e6, EstCard: 1e6, RowLength: 50}
		n := plan.NewPhysical(plan.PProcess, child)
		n.UDF = udf
		n.Partitions = 4
		n.Stats = plan.NodeStats{ActCard: 1e6, EstCard: 1e6, RowLength: 50}
		return n
	}
	// Over many UDFs the cost spread should exceed 4x.
	lo, hi := math.Inf(1), 0.0
	for _, u := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		l := cl.TrueLatency(mk(u))
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if hi/lo < 4 {
		t.Fatalf("UDF cost spread %v too small", hi/lo)
	}
}

func TestTotalProcessingTimeAccountsPartitions(t *testing.T) {
	cl := noiselessCluster()
	root := testPlan(t, 2)
	res, err := cl.Run(root, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// Processing time is per-container; it must be >= latency for
	// multi-container plans.
	if res.TotalProcessingTime < res.Latency {
		t.Fatalf("processing %v < latency %v", res.TotalProcessingTime, res.Latency)
	}
}
