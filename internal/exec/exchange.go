package exec

import (
	"sync"
	"sync/atomic"
)

// Exchange operators connect the pipeline instances of adjacent parallel
// stages through bounded batch channels. An exchange owns one producer
// goroutine per upstream instance (launched lazily by the first consumer
// Open) and hands consumers plain iterators, so the rest of the engine
// stays pull-based and single-threaded per instance. Batches crossing an
// exchange are copied into pooled buffers first: an upstream iterator's
// batch is only valid until its next Next call, and the copy is what makes
// it safe to hand to another goroutine.
//
// Kinds:
//
//   - xGather: N producers funnel into one consumer stream, arrival order.
//   - xRoundRobin: batches rotate across consumers — multiset-preserving
//     redistribution for elementwise consumers that don't care which rows
//     they get.
//   - xPartition: rows are routed by a key hash so every row group a
//     downstream hash join or aggregate cares about lands wholly in one
//     consumer instance.
//   - xMerge: order-preserving gather — a k-way merge of per-producer
//     streams that are each canonically sorted, reconstructing exactly the
//     sequence a single-threaded sort would emit.
type xKind int

const (
	xGather xKind = iota
	xRoundRobin
	xPartition
	xMerge
)

func (k xKind) String() string {
	switch k {
	case xGather:
		return "gather"
	case xRoundRobin:
		return "roundrobin"
	case xPartition:
		return "partition"
	default:
		return "merge"
	}
}

// exchangeChanCap bounds each consumer channel: deep enough to decouple
// producer and consumer scheduling hiccups, shallow enough that
// backpressure keeps memory bounded to O(instances) batches.
const exchangeChanCap = 4

// routeFn maps a row to a consumer instance index.
type routeFn func(cols [][]int64, i int) int

type exchange struct {
	kind    xKind
	sources []iterator    // one producer goroutine each
	chs     []chan *Batch // per consumer (per producer for xMerge)
	route   routeFn       // xPartition only
	size    int           // batch size for staging buffers
	metrics *Metrics

	start    sync.Once
	launched atomic.Bool
	done     chan struct{}
	wg       sync.WaitGroup

	errMu sync.Mutex
	err   error

	consumers atomic.Int32
	rows      atomic.Int64
	batches   atomic.Int64
}

// newExchange wires an exchange moving data from sources into nConsumers
// downstream instances (for xMerge, channels are per producer and
// nConsumers must be 1).
func newExchange(kind xKind, sources []iterator, nConsumers, batchSize int, route routeFn, m *Metrics) *exchange {
	nch := nConsumers
	if kind == xMerge {
		nch = len(sources)
	}
	x := &exchange{
		kind:    kind,
		sources: sources,
		chs:     make([]chan *Batch, nch),
		route:   route,
		size:    batchSize,
		metrics: m,
		done:    make(chan struct{}),
	}
	chCap := exchangeChanCap
	if kind == xMerge {
		chCap = 2 // the merge consumer holds one batch per producer already
	}
	for i := range x.chs {
		x.chs[i] = make(chan *Batch, chCap)
	}
	x.consumers.Store(int32(nConsumers))
	return x
}

// launch starts the producer goroutines plus a closer that shuts every
// channel once all producers drain — consumers detect end-of-stream as a
// channel close, which is safe with multiple senders per channel.
func (x *exchange) launch() {
	x.start.Do(func() {
		x.launched.Store(true)
		x.wg.Add(len(x.sources))
		for p := range x.sources {
			go x.produce(p)
		}
		go func() {
			x.wg.Wait()
			if x.kind == xMerge {
				return // producers closed their own channels on exit
			}
			for _, ch := range x.chs {
				close(ch)
			}
		}()
	})
}

func (x *exchange) fail(err error) {
	x.errMu.Lock()
	if x.err == nil {
		x.err = err
	}
	x.errMu.Unlock()
}

// failure returns the first producer error. Callers only read it after a
// consumer channel closed, which happens-after every producer finished.
func (x *exchange) failure() error {
	x.errMu.Lock()
	defer x.errMu.Unlock()
	return x.err
}

// send delivers a batch unless the exchange is shutting down; it reports
// whether the producer should keep running.
func (x *exchange) send(ch chan *Batch, b *Batch) bool {
	n := int64(b.N) // the consumer owns b the instant the send lands
	select {
	case ch <- b:
		x.rows.Add(n)
		x.batches.Add(1)
		return true
	case <-x.done:
		putBatch(b)
		return false
	}
}

// release is called by every consumer Close; the last one tears the
// exchange down: wake blocked producers, wait them out (their Close
// cascades into the upstream subtree), drain leftover batches, and flush
// the data-movement counters.
func (x *exchange) release() {
	if x.consumers.Add(-1) != 0 {
		return
	}
	if !x.launched.Load() {
		// Never opened (an error unwound the tree before Open reached us):
		// close sources synchronously so the cascade still happens.
		for _, s := range x.sources {
			s.Close()
		}
		return
	}
	close(x.done)
	x.wg.Wait()
	for _, ch := range x.chs {
		for b := range ch {
			putBatch(b)
		}
	}
	x.metrics.recordExchange(x.kind, x.rows.Load(), x.batches.Load())
}

// produce runs one upstream instance to exhaustion, copying its batches
// toward the consumers. The source iterator is owned by this goroutine:
// opened, pulled and closed here, so per-instance operator state needs no
// locking.
func (x *exchange) produce(p int) {
	defer x.wg.Done()
	src := x.sources[p]
	defer src.Close()
	if err := src.Open(); err != nil {
		x.fail(err)
		return
	}
	switch x.kind {
	case xPartition:
		x.producePartition(src)
	case xRoundRobin:
		x.produceRoundRobin(src, p)
	default: // xGather sends to the single channel; xMerge to its own
		ch := x.chs[0]
		if x.kind == xMerge {
			// A merge channel has exactly one sender, so this producer
			// can close it the moment its stream ends — the consumer
			// must see per-producer end-of-stream without waiting on the
			// other producers, or an empty stream here would deadlock a
			// merge Open blocked behind a sibling's full channel.
			ch = x.chs[p]
			defer close(ch)
		}
		for {
			b, err := src.Next()
			if err != nil {
				x.fail(err)
				return
			}
			if b == nil {
				return
			}
			if b.N == 0 {
				continue
			}
			if !x.send(ch, copyBatch(b)) {
				return
			}
		}
	}
}

// produceRoundRobin rotates whole batches across consumers, starting at
// the producer's own index so producers don't convoy on one channel.
func (x *exchange) produceRoundRobin(src iterator, p int) {
	d := p % len(x.chs)
	for {
		b, err := src.Next()
		if err != nil {
			x.fail(err)
			return
		}
		if b == nil {
			return
		}
		if b.N == 0 {
			continue
		}
		if !x.send(x.chs[d], copyBatch(b)) {
			return
		}
		d = (d + 1) % len(x.chs)
	}
}

// producePartition routes rows by the exchange's route function, staging
// them in one pooled batch per consumer and shipping each as it fills.
func (x *exchange) producePartition(src iterator) {
	nd := len(x.chs)
	stage := make([]*Batch, nd)
	sels := make([][]int32, nd)
	defer func() {
		for _, st := range stage {
			putBatch(st)
		}
	}()
	for {
		b, err := src.Next()
		if err != nil {
			x.fail(err)
			return
		}
		if b == nil {
			break
		}
		for d := range sels {
			sels[d] = sels[d][:0]
		}
		for i := 0; i < b.N; i++ {
			d := x.route(b.Cols, i)
			sels[d] = append(sels[d], int32(i))
		}
		for d, sel := range sels {
			for len(sel) > 0 {
				if stage[d] == nil {
					stage[d] = getBatch(len(b.Cols), x.size)
				}
				st := stage[d]
				space := x.size - st.N
				k := len(sel)
				if k > space {
					k = space
				}
				for c := range b.Cols {
					srcCol, dstCol := b.Cols[c], st.Cols[c]
					for j := 0; j < k; j++ {
						dstCol[st.N+j] = srcCol[sel[j]]
					}
				}
				st.N += k
				sel = sel[k:]
				if st.N == x.size {
					stage[d] = nil
					if !x.send(x.chs[d], st) {
						return
					}
				}
			}
		}
	}
	for d, st := range stage {
		if st == nil || st.N == 0 {
			continue
		}
		stage[d] = nil
		if !x.send(x.chs[d], st) {
			return
		}
	}
}

// copyBatch clones a producer-owned batch into a pooled one so it can
// outlive the producer's next Next call.
func copyBatch(b *Batch) *Batch {
	out := getBatch(len(b.Cols), b.N)
	for c := range b.Cols {
		copy(out.Cols[c][:b.N], b.Cols[c][:b.N])
	}
	out.N = b.N
	return out
}

// xRecv is the consumer-side iterator for gather, round-robin and
// partition exchanges: instance idx of the downstream operator pulls its
// channel until close. The previous batch recycles on each Next (the
// standard producer-owns-until-next-Next contract, with this iterator as
// the producer).
type xRecv struct {
	x   *exchange
	idx int
	cur *Batch
}

func (r *xRecv) Open() error {
	r.x.launch()
	return nil
}

func (r *xRecv) Next() (*Batch, error) {
	putBatch(r.cur)
	r.cur = nil
	b, ok := <-r.x.chs[r.idx]
	if !ok {
		return nil, r.x.failure()
	}
	r.cur = b
	return b, nil
}

func (r *xRecv) Close() {
	putBatch(r.cur)
	r.cur = nil
	r.x.release()
}

// xMergeRecv is the order-preserving gather: producers each deliver a
// canonically sorted stream on their own channel and the single consumer
// k-way-merges them row by row. Because the comparator is the same total
// order the sorts used (keys first, then every column), the merged
// sequence is exactly what one big sort would have produced; ties across
// producers are broken by producer index, which is immaterial because
// tied rows are bit-identical under a total order.
type xMergeRecv struct {
	x      *exchange
	keyIdx []int

	cur []*Batch
	pos []int
	out *Batch
	eof bool
}

func (r *xMergeRecv) Open() error {
	r.x.launch()
	n := len(r.x.chs)
	r.cur = make([]*Batch, n)
	r.pos = make([]int, n)
	r.eof = false
	for p := 0; p < n; p++ {
		r.cur[p] = <-r.x.chs[p] // nil once closed
	}
	return nil
}

// advance refills producer p's head batch after its rows are consumed.
func (r *xMergeRecv) advance(p int) {
	putBatch(r.cur[p])
	r.cur[p] = <-r.x.chs[p]
	r.pos[p] = 0
}

func (r *xMergeRecv) Next() (*Batch, error) {
	if r.eof {
		return nil, nil
	}
	filled := 0
	for {
		best := -1
		for p := range r.cur {
			if r.cur[p] == nil {
				continue
			}
			if best == -1 || rowLess(r.cur[p].Cols, r.pos[p], r.cur[best].Cols, r.pos[best], r.keyIdx) {
				best = p
			}
		}
		if best == -1 {
			r.eof = true
			if err := r.x.failure(); err != nil {
				return nil, err
			}
			if filled > 0 {
				r.out.N = filled
				return r.out, nil
			}
			return nil, nil
		}
		b := r.cur[best]
		if r.out == nil {
			r.out = getBatch(len(b.Cols), r.x.size)
		}
		for c := range b.Cols {
			r.out.Cols[c][filled] = b.Cols[c][r.pos[best]]
		}
		filled++
		if r.pos[best]++; r.pos[best] >= b.N {
			r.advance(best)
		}
		if filled == r.x.size {
			r.out.N = filled
			return r.out, nil
		}
	}
}

func (r *xMergeRecv) Close() {
	for p := range r.cur {
		putBatch(r.cur[p])
		r.cur[p] = nil
	}
	putBatch(r.out)
	r.out = nil
	r.x.release()
}

// rowLess is the canonical strict order over rows from two batches: the
// sort keys first (-1 entries compare equal), then every column in schema
// order — mirroring colStore.compareRows so merges and sorts agree.
func rowLess(a [][]int64, ai int, b [][]int64, bi int, keyIdx []int) bool {
	for _, k := range keyIdx {
		if k < 0 {
			continue
		}
		if av, bv := a[k][ai], b[k][bi]; av != bv {
			return av < bv
		}
	}
	for c := range a {
		if av, bv := a[c][ai], b[c][bi]; av != bv {
			return av < bv
		}
	}
	return false
}
