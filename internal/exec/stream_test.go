package exec

import (
	"testing"

	"cleo/internal/plan"
)

// drain pulls an iterator to exhaustion and returns the row count plus an
// order-insensitive multiset checksum.
func drain(t *testing.T, it iterator) (rows int64, chk uint64) {
	t.Helper()
	if err := it.Open(); err != nil {
		t.Fatalf("open: %v", err)
	}
	defer it.Close()
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if b == nil {
			return rows, chk
		}
		for i := 0; i < b.N; i++ {
			chk += mix64(rowHash(b.Cols, i))
		}
		rows += int64(b.N)
	}
}

var testSchema = schema{plan.Column("k"), plan.Column("u"), valCol}

func testScan(table string, rows int64, batch int) *scanIter {
	return newScanIter(table, rows, testSchema, batch)
}

func TestScanDeterministicAndSized(t *testing.T) {
	r1, c1 := drain(t, testScan("clicks", 5000, 256))
	r2, c2 := drain(t, testScan("clicks", 5000, 97)) // different batching
	if r1 != 5000 || r2 != 5000 {
		t.Fatalf("rows = %d, %d; want 5000", r1, r2)
	}
	if c1 != c2 {
		t.Fatalf("scan checksum depends on batch size: %x vs %x", c1, c2)
	}
	_, c3 := drain(t, testScan("views", 5000, 256))
	if c1 == c3 {
		t.Fatal("different tables produced identical data")
	}
}

func TestFilterSelectsDeterministically(t *testing.T) {
	mk := func() *filterIter {
		return &filterIter{
			child: testScan("clicks", 4000, 128),
			pred:  CompilePred("q1.shipdate").Bind(testSchema),
		}
	}
	r1, c1 := drain(t, mk())
	r2, c2 := drain(t, mk())
	if r1 != r2 || c1 != c2 {
		t.Fatalf("filter not deterministic: (%d,%x) vs (%d,%x)", r1, c1, r2, c2)
	}
	if r1 == 0 || r1 == 4000 {
		t.Fatalf("bare-ident filter should be partial: kept %d of 4000", r1)
	}
}

func TestPredicateComparisonSemantics(t *testing.T) {
	sch := testSchema
	// k < 1000 over k's domain must keep exactly the rows with k < 1000.
	it := &filterIter{child: testScan("clicks", 3000, 128), pred: CompilePred("k<1000").Bind(sch)}
	if err := it.Open(); err != nil {
		t.Fatal(err)
	}
	kept := 0
	for {
		b, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			if b.Cols[0][i] >= 1000 {
				t.Fatalf("k<1000 kept k=%d", b.Cols[0][i])
			}
			kept++
		}
	}
	it.Close()
	if kept == 0 {
		t.Fatal("k<1000 kept nothing")
	}

	// Column-to-column: k=u keeps only rows with equal columns.
	it2 := &filterIter{child: testScan("clicks", 3000, 128), pred: CompilePred("k=u").Bind(sch)}
	if err := it2.Open(); err != nil {
		t.Fatal(err)
	}
	for {
		b, err := it2.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			if b.Cols[0][i] != b.Cols[1][i] {
				t.Fatal("k=u kept a row with k != u")
			}
		}
	}
	it2.Close()

	// String-constant equality behaves like a hash bucket: selectivity
	// strictly between 0 and 1, and = / != partition the input.
	eq, _ := drain(t, &filterIter{child: testScan("clicks", 4000, 128), pred: CompilePred("k=us").Bind(sch)})
	ne, _ := drain(t, &filterIter{child: testScan("clicks", 4000, 128), pred: CompilePred("k!=us").Bind(sch)})
	if eq == 0 || ne == 0 || eq+ne != 4000 {
		t.Fatalf("=/!= must partition: eq=%d ne=%d", eq, ne)
	}
}

func joinInputs(batch int) (l, r iterator) {
	return testScan("left_t", 3000, batch), testScan("right_t", 2000, batch)
}

func joinIdx() (lKey, rKey []int, lVal, rVal int) {
	k := []int{0} // join on column k
	return k, k, testSchema.valIndex(), testSchema.valIndex()
}

func TestSymmetricJoinMatchesClassic(t *testing.T) {
	lKey, rKey, lVal, rVal := joinIdx()
	l1, r1 := joinInputs(128)
	classic := &hashJoinIter{left: l1, right: r1, lKey: lKey, rKey: rKey,
		lVal: lVal, rVal: rVal, nCols: len(testSchema), sizeHint: 2000, size: 128}
	l2, r2 := joinInputs(128)
	symmetric := &symmetricHashJoinIter{left: l2, right: r2, lKey: lKey, rKey: rKey,
		lVal: lVal, rVal: rVal, nCols: len(testSchema), sizeHint: 2000, size: 128}

	cr, cc := drain(t, classic)
	sr, sc := drain(t, symmetric)
	if cr == 0 {
		t.Fatal("join produced no rows; key domains should overlap")
	}
	if cr != sr || cc != sc {
		t.Fatalf("symmetric join multiset differs from classic: (%d,%x) vs (%d,%x)", cr, cc, sr, sc)
	}
}

func TestMergeJoinMatchesClassic(t *testing.T) {
	lKey, rKey, lVal, rVal := joinIdx()
	l1, r1 := joinInputs(128)
	classic := &hashJoinIter{left: l1, right: r1, lKey: lKey, rKey: rKey,
		lVal: lVal, rVal: rVal, nCols: len(testSchema), sizeHint: 2000, size: 128}
	l2, r2 := joinInputs(128)
	merge := &mergeJoinIter{left: l2, right: r2, lKey: lKey, rKey: rKey,
		lVal: lVal, rVal: rVal, nCols: len(testSchema), size: 128}

	cr, cc := drain(t, classic)
	mr, mc := drain(t, merge)
	if cr != mr || cc != mc {
		t.Fatalf("merge join multiset differs from classic: (%d,%x) vs (%d,%x)", cr, cc, mr, mc)
	}
}

func TestExceptIntersectInvariants(t *testing.T) {
	// A \ A is empty; A ∩ A is A.
	r, _ := drain(t, newExceptIter(testScan("a", 2000, 128), testScan("a", 2000, 97), 128))
	if r != 0 {
		t.Fatalf("A except A = %d rows, want 0", r)
	}
	ri, ci := drain(t, newIntersectIter(testScan("a", 2000, 128), testScan("a", 2000, 97), 128))
	_, ca := drain(t, testScan("a", 2000, 128))
	if ri != 2000 || ci != ca {
		t.Fatalf("A intersect A: rows=%d chk=%x, want 2000 rows chk=%x", ri, ci, ca)
	}
	// |A\B| + |A∩B| = |A| for disjoint-or-not B.
	re, _ := drain(t, newExceptIter(testScan("a", 2000, 128), testScan("b", 1500, 128), 128))
	rx, _ := drain(t, newIntersectIter(testScan("a", 2000, 128), testScan("b", 1500, 128), 128))
	if re+rx != 2000 {
		t.Fatalf("|A\\B| + |A∩B| = %d + %d, want 2000", re, rx)
	}
}

func TestSortEmitsCanonicalOrder(t *testing.T) {
	s := &sortIter{child: testScan("a", 3000, 128), keyIdx: []int{0}, size: 100}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var prev []int64
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			row := make([]int64, len(b.Cols))
			for c := range b.Cols {
				row[c] = b.Cols[c][i]
			}
			if prev != nil {
				for c := range row {
					if prev[c] != row[c] {
						if prev[c] > row[c] {
							t.Fatalf("sort order violated at col %d: %d > %d", c, prev[c], row[c])
						}
						break
					}
				}
			}
			prev = row
		}
	}
}

func TestTopNIsSortPrefix(t *testing.T) {
	const n = 37
	top := &topNIter{child: testScan("a", 3000, 128), keyIdx: []int{0}, n: n, size: 100}
	tr, tc := drain(t, top)
	if tr != n {
		t.Fatalf("top-n emitted %d rows, want %d", tr, n)
	}
	// The heap's result must equal the first n rows of a full sort.
	s := &sortIter{child: testScan("a", 3000, 128), keyIdx: []int{0}, size: 100}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	var rows int64
	var chk uint64
	for rows < n {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N && rows < n; i++ {
			chk += mix64(rowHash(b.Cols, i))
			rows++
		}
	}
	s.Close()
	if chk != tc {
		t.Fatalf("top-n != sort prefix: %x vs %x", tc, chk)
	}
}

func TestStreamAggOverSortedMatchesHashAgg(t *testing.T) {
	sorted := &sortIter{child: testScan("a", 4000, 128), keyIdx: []int{0}, size: 128}
	stream := &streamAggIter{child: sorted, keyIdx: []int{0}, valIdx: 2, size: 128}
	sr, sc := drain(t, stream)

	hash := &hashAggIter{child: testScan("a", 4000, 128), keyIdx: []int{0}, valIdx: 2, cntIdx: -1, size: 128}
	hr, hc := drain(t, hash)
	if sr != hr || sc != hc {
		t.Fatalf("stream agg over sorted input differs from hash agg: (%d,%x) vs (%d,%x)", sr, sc, hr, hc)
	}
	if sr == 4000 || sr == 0 {
		t.Fatalf("aggregate did not reduce: %d groups from 4000 rows", sr)
	}
}

func TestProcessFanoutDeterministic(t *testing.T) {
	mk := func() iterator {
		return newProcessIter(testScan("a", 2000, 128), "udf_extract", testSchema, 128)
	}
	r1, c1 := drain(t, mk())
	r2, c2 := drain(t, mk())
	if r1 != r2 || c1 != c2 {
		t.Fatalf("process not deterministic: (%d,%x) vs (%d,%x)", r1, c1, r2, c2)
	}
	if r1 == 0 {
		t.Fatal("process emitted nothing")
	}
}

// testPlanStreaming builds a small annotated physical plan by hand:
// Output(HashAgg(HashJoin(Filter(Scan(big)), Scan(dim)))).
func testPlanStreaming() *plan.Physical {
	big := &plan.Physical{Op: plan.PExtract, Table: "events", Partitions: 8,
		Stats: plan.NodeStats{ActCard: 4000, EstCard: 4000, RowLength: 100}}
	flt := &plan.Physical{Op: plan.PFilter, Pred: "q1.shipdate", Children: []*plan.Physical{big},
		Partitions: 8, Stats: plan.NodeStats{ActCard: 2000, EstCard: 2000, RowLength: 100}}
	dim := &plan.Physical{Op: plan.PExtract, Table: "dim_user", Partitions: 8,
		Stats: plan.NodeStats{ActCard: 4000, EstCard: 4000, RowLength: 40}}
	join := &plan.Physical{Op: plan.PHashJoin, Keys: []plan.Column{"user"},
		Children: []*plan.Physical{flt, dim}, Partitions: 8,
		Stats: plan.NodeStats{ActCard: 2000, EstCard: 2000, RowLength: 120}}
	agg := &plan.Physical{Op: plan.PHashAggregate, Keys: []plan.Column{"user"},
		Children: []*plan.Physical{join}, Partitions: 8,
		Stats: plan.NodeStats{ActCard: 500, EstCard: 500, RowLength: 60}}
	return &plan.Physical{Op: plan.POutput, Children: []*plan.Physical{agg},
		Partitions: 1, Stats: plan.NodeStats{ActCard: 500, EstCard: 500, RowLength: 60}}
}

func TestEngineFillsMeasuredActuals(t *testing.T) {
	eng := NewEngine(StreamConfig{MaxTableRows: 4000})
	p := testPlanStreaming()
	res, err := eng.Run(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputRows == 0 || res.OutputChecksum == 0 {
		t.Fatalf("no output: %+v", res)
	}
	if res.Latency <= 0 || res.TotalProcessingTime <= 0 {
		t.Fatalf("no measured time: %+v", res)
	}
	p.Walk(func(n *plan.Physical) {
		if n.ExclusiveActual < 0 {
			t.Fatalf("%v: negative exclusive time", n.Op)
		}
		if n.Stats.ActCard <= 0 {
			t.Fatalf("%v: no observed rows", n.Op)
		}
	})
	// Scans must report the rows they actually generated.
	for _, leaf := range p.Leaves() {
		if leaf.Stats.ActCard > 4000 {
			t.Fatalf("leaf ActCard %v exceeds generated rows", leaf.Stats.ActCard)
		}
	}
	// Determinism: a second run over a fresh clone produces the same result.
	p2 := testPlanStreaming()
	res2, err := eng.Run(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.OutputRows != res.OutputRows || res2.OutputChecksum != res.OutputChecksum {
		t.Fatalf("engine not deterministic: %+v vs %+v", res, res2)
	}
}

func TestEngineMatchesReferenceOnHandPlan(t *testing.T) {
	cfg := StreamConfig{MaxTableRows: 4000}
	re, err := NewEngine(cfg).Run(testPlanStreaming(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewReference(cfg).Run(testPlanStreaming(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if re.OutputRows != rr.OutputRows || re.OutputChecksum != rr.OutputChecksum {
		t.Fatalf("streaming %d/%x != reference %d/%x",
			re.OutputRows, re.OutputChecksum, rr.OutputRows, rr.OutputChecksum)
	}
}

func TestEnsureShapeUnequalColumnCaps(t *testing.T) {
	// Pooled batches can carry columns of unequal capacity; growing must
	// check every column, not just Cols[0] (which used to panic when a
	// smaller sibling was resliced past its cap).
	b := &Batch{Cols: [][]int64{make([]int64, 0, 2048), make([]int64, 0, 500)}, N: 7}
	b = ensureShape(b, 2, 1024)
	for i, col := range b.Cols {
		if len(col) != 1024 {
			t.Fatalf("col %d: len=%d, want 1024", i, len(col))
		}
	}
	if b.N != 0 {
		t.Fatalf("N=%d, want 0 after reshape", b.N)
	}
	b.Cols[0][1023], b.Cols[1][1023] = 1, 2 // writable to the full shape
	if got := ensureShape(b, 3, 16); len(got.Cols) != 3 {
		t.Fatalf("cols=%d, want 3 after column-count change", len(got.Cols))
	}
}

func TestStreamsOnlyTreatsDrainingOpsAsBlocking(t *testing.T) {
	// The streaming implementations of merge join and partial aggregate
	// drain their inputs in Open, so symmetric-join eligibility must treat
	// them as blocking even though the simulator's Blocking() does not.
	for _, op := range []plan.PhysicalOp{plan.PMergeJoin, plan.PPartialAggregate, plan.PSort, plan.PHashJoin} {
		if !blocksStreaming(op) {
			t.Fatalf("%v should block streaming", op)
		}
	}
	for _, op := range []plan.PhysicalOp{plan.PFilter, plan.PProject, plan.PStreamAggregate} {
		if blocksStreaming(op) {
			t.Fatalf("%v should stream", op)
		}
	}
	blocked := &plan.Physical{Op: plan.PMergeJoin, Children: []*plan.Physical{
		{Op: plan.PExtract}, {Op: plan.PExtract},
	}}
	if streamsOnly(blocked) {
		t.Fatal("subtree rooted at a merge join must not count as streaming")
	}
	if !streamsOnly(&plan.Physical{Op: plan.PFilter, Children: []*plan.Physical{{Op: plan.PExtract}}}) {
		t.Fatal("filter over scan should stream")
	}
}
