package exec

import (
	"sort"
	"strconv"
	"strings"

	"cleo/internal/plan"
)

// The expression evaluator gives every predicate string a deterministic
// row-level semantics over the generated integer tables, so filters and
// join residuals actually select rows instead of being simulated. The
// grammar is deliberately tiny and total — CompilePred never fails and
// Eval never panics, whatever bytes arrive (the serving layer accepts
// predicates straight from untrusted JSON; there is a fuzz target on it):
//
//	pred   := term { ("&&" | "AND" | "and" | "&") term }
//	term   := ident op value | ident
//	op     := "==" | "=" | "!=" | "<=" | ">=" | "<" | ">"
//
// Terms resolve against the scan schema:
//   - ident op number        — direct comparison on the column value.
//   - ident op otherIdent    — column-to-column comparison when the right
//     side is also a schema column.
//   - ident =/!= stringConst — hash-bucket membership: the row matches when
//     col % B == hash(const) % B for a constant-derived B in [2,16], giving
//     the predicate a stable selectivity of about 1/B.
//   - ident </<= />/>= strC  — range against a threshold at a
//     constant-derived fraction of the column's domain.
//   - bare ident             — pseudo-random row filter with a stable
//     selectivity derived from the identifier hash (this is the dominant
//     form: workload predicates are opaque labels like "q1.shipdate").
//
// Identifiers not present in the schema read a per-row pseudo value, so
// unknown columns still filter deterministically rather than erroring.
const (
	maxPredLen   = 256
	maxPredTerms = 16
)

type predOp uint8

const (
	opBare predOp = iota
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
)

type predTerm struct {
	op  predOp
	lhs plan.Column
	rhs string

	lhsH   uint64
	rhsH   uint64
	numRHS bool
	num    int64
}

// Pred is a compiled conjunction.
type Pred struct {
	terms []predTerm
}

// CompilePred parses s into a predicate. It is total: unparseable input
// degrades to bare-identifier terms, and the empty string compiles to the
// always-true predicate.
func CompilePred(s string) *Pred {
	if len(s) > maxPredLen {
		s = s[:maxPredLen]
	}
	// Normalize conjunction spellings to '&' and split.
	s = strings.ReplaceAll(s, "&&", "&")
	s = strings.ReplaceAll(s, " AND ", "&")
	s = strings.ReplaceAll(s, " and ", "&")
	p := &Pred{}
	for _, clause := range strings.Split(s, "&") {
		if len(p.terms) >= maxPredTerms {
			break
		}
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		p.terms = append(p.terms, compileTerm(clause))
	}
	return p
}

func compileTerm(clause string) predTerm {
	op, idx, oplen := opBare, -1, 0
	for i := 0; i < len(clause); i++ {
		switch clause[i] {
		case '=':
			op, idx, oplen = opEq, i, 1
			if i+1 < len(clause) && clause[i+1] == '=' {
				oplen = 2
			}
		case '!':
			if i+1 < len(clause) && clause[i+1] == '=' {
				op, idx, oplen = opNe, i, 2
			} else {
				continue
			}
		case '<':
			op, idx, oplen = opLt, i, 1
			if i+1 < len(clause) && clause[i+1] == '=' {
				op, oplen = opLe, 2
			}
		case '>':
			op, idx, oplen = opGt, i, 1
			if i+1 < len(clause) && clause[i+1] == '=' {
				op, oplen = opGe, 2
			}
		default:
			continue
		}
		break
	}
	if idx < 0 {
		return bareTerm(clause)
	}
	lhs := strings.TrimSpace(clause[:idx])
	rhs := strings.TrimSpace(clause[idx+oplen:])
	if lhs == "" || rhs == "" {
		// "=x", "x<" and friends: treat the whole clause as an opaque label.
		return bareTerm(clause)
	}
	t := predTerm{
		op:   op,
		lhs:  plan.Column(lhs),
		rhs:  rhs,
		lhsH: strHash(lhs),
		rhsH: strHash(rhs),
	}
	if n, err := strconv.ParseInt(rhs, 10, 64); err == nil {
		t.numRHS = true
		t.num = n
	}
	return t
}

func bareTerm(clause string) predTerm {
	return predTerm{op: opBare, lhs: plan.Column(clause), lhsH: strHash(clause)}
}

// Idents returns the schema-relevant identifiers the predicate reads,
// sorted and de-duplicated: comparison lhs columns, plus rhs identifiers
// that could bind to columns. Bare terms are opaque labels, not columns.
func (p *Pred) Idents() []plan.Column {
	set := map[plan.Column]bool{}
	for _, t := range p.terms {
		if t.op == opBare {
			continue
		}
		set[t.lhs] = true
		if !t.numRHS {
			set[plan.Column(t.rhs)] = true
		}
	}
	out := make([]plan.Column, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PredShape describes the structure of a compiled predicate for rewrite
// rules: whether the predicate can be moved across operators depends on
// which columns its terms read and whether any term falls back to the
// row-content hash.
type PredShape struct {
	// Cols are the columns the predicate's comparison terms read (lhs
	// columns plus rhs identifiers that could bind to columns), sorted.
	Cols []plan.Column
	// HasBare reports whether any term is a bare identifier (or an
	// unparseable clause degraded to one). Bare terms filter on the
	// row-content hash, so they are only equivalent at one fixed position
	// in the plan — never movable.
	HasBare bool
	// Terms is the number of parsed conjuncts.
	Terms int
}

// AnalyzePred parses pred and reports its shape. Rewrite rules may move a
// predicate only when HasBare is false and every column in Cols is both
// available and identically bound at the target position; IsReservedColumn
// names the derived columns that never qualify.
func AnalyzePred(pred string) PredShape {
	p := CompilePred(pred)
	sh := PredShape{Cols: p.Idents(), Terms: len(p.terms)}
	for _, t := range p.terms {
		if t.op == opBare {
			sh.HasBare = true
		}
	}
	return sh
}

// IsReservedColumn reports whether c is one of the executor's derived
// payload columns (__val/__cnt/__sum), whose values change across
// operators and therefore pin any predicate that reads them.
func IsReservedColumn(c plan.Column) bool {
	return c == valCol || c == cntCol || c == sumCol
}

// boundTerm is a term resolved against a concrete schema.
type boundTerm struct {
	op       predOp
	lhsIdx   int // -1: unbound, read pseudo value
	rhsIdx   int // -1: not a column
	lhsH     uint64
	rhsH     uint64
	num      int64 // numeric rhs, or derived threshold / bucket params
	bucket   int64 // modulus for string equality terms
	bucketEq int64 // hash(const) % bucket
	keep     uint64
	kind     termKind
}

type termKind uint8

const (
	kindBare   termKind = iota // pseudo-random selectivity filter
	kindNum                    // compare against literal number
	kindCol                    // compare against another column
	kindHashEq                 // bucket (in)equality against string const
	kindThresh                 // range against domain-derived threshold
)

// BoundPred is a predicate bound to one schema; Eval is allocation-free.
type BoundPred struct {
	terms       []boundTerm
	needRowHash bool
}

// Bind resolves column references against sch.
func (p *Pred) Bind(sch schema) *BoundPred {
	bp := &BoundPred{terms: make([]boundTerm, 0, len(p.terms))}
	for _, t := range p.terms {
		b := boundTerm{op: t.op, lhsH: t.lhsH, rhsH: t.rhsH, rhsIdx: -1}
		b.lhsIdx = sch.index(t.lhs)
		switch {
		case t.op == opBare:
			b.kind = kindBare
			// Stable selectivity in (0, 1]: most opaque labels keep
			// 30–100% of rows, so multi-filter chains still flow data.
			u := 0.3 + 0.7*unitFromHash(mix64(t.lhsH))
			b.keep = uint64(u * (1 << 30))
		case t.numRHS:
			b.kind = kindNum
			b.num = t.num
		default:
			if ri := sch.index(plan.Column(t.rhs)); ri >= 0 {
				b.kind = kindCol
				b.rhsIdx = ri
			} else if t.op == opEq || t.op == opNe {
				b.kind = kindHashEq
				b.bucket = 2 + int64(t.rhsH%15) // selectivity ~1/2 .. ~1/16
				b.bucketEq = int64(t.rhsH>>8) % b.bucket
			} else {
				b.kind = kindThresh
				dom := colDomain(t.lhs)
				if dom <= 0 {
					dom = 1 << 16
				}
				b.num = int64(unitFromHash(mix64(t.rhsH)) * float64(dom))
			}
		}
		if b.kind == kindBare || b.lhsIdx < 0 {
			bp.needRowHash = true
		}
		bp.terms = append(bp.terms, b)
	}
	return bp
}

// Eval evaluates the predicate on row i of cols (shaped by the bound
// schema). It never panics and is pure: the same row bytes always produce
// the same verdict.
func (bp *BoundPred) Eval(cols [][]int64, i int) bool {
	var rh uint64
	hashed := false
	hash := func() uint64 {
		if !hashed {
			rh = rowHash(cols, i)
			hashed = true
		}
		return rh
	}
	for k := range bp.terms {
		t := &bp.terms[k]
		if t.kind == kindBare {
			if mix64(t.lhsH^hash())&(1<<30-1) >= t.keep {
				return false
			}
			continue
		}
		var lv int64
		if t.lhsIdx >= 0 {
			lv = cols[t.lhsIdx][i]
		} else {
			lv = int64(mix64(t.lhsH^hash()) % 4096)
		}
		var ok bool
		switch t.kind {
		case kindHashEq:
			m := ((lv % t.bucket) + t.bucket) % t.bucket
			ok = m == t.bucketEq
			if t.op == opNe {
				ok = !ok
			}
		default:
			rv := t.num
			if t.kind == kindCol {
				rv = cols[t.rhsIdx][i]
			}
			switch t.op {
			case opEq:
				ok = lv == rv
			case opNe:
				ok = lv != rv
			case opLt:
				ok = lv < rv
			case opLe:
				ok = lv <= rv
			case opGt:
				ok = lv > rv
			case opGe:
				ok = lv >= rv
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
