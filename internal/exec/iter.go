package exec

// iterator is the pull-based operator interface: Open prepares state (a
// blocking operator drains its inputs here), Next returns the next batch
// or nil at end-of-stream, Close releases buffers. The returned batch is
// owned by the producer and valid until its next Next call; consumers
// must treat it as read-only (scans alias the shared table cache, so a
// batch may point into immutable storage).
type iterator interface {
	Open() error
	Next() (*Batch, error)
	Close()
}

// scanIter streams a generated table batch by batch. Each batch aliases
// the shared materialization (see materializeTable) — zero copies; the
// read-only batch contract keeps the cache safe.
type scanIter struct {
	table     string
	sch       schema
	rows      int64
	pos       int64
	src       *colStore
	batchSize int
	out       Batch
}

func newScanIter(table string, rows int64, sch schema, batchSize int) *scanIter {
	return &scanIter{table: table, sch: sch, rows: rows, batchSize: batchSize}
}

func (s *scanIter) Open() error {
	s.pos = 0
	s.src = materializeTable(s.table, s.sch, s.rows)
	s.out.Cols = make([][]int64, len(s.sch))
	return nil
}

func (s *scanIter) Next() (*Batch, error) {
	if s.pos >= s.rows {
		return nil, nil
	}
	n := s.batchSize
	if rem := s.rows - s.pos; int64(n) > rem {
		n = int(rem)
	}
	for c := range s.out.Cols {
		s.out.Cols[c] = s.src.cols[c][s.pos : s.pos+int64(n)]
	}
	s.out.N = n
	s.pos += int64(n)
	return &s.out, nil
}

func (s *scanIter) Close() {
	s.src = nil
}

// filterIter gathers surviving rows into its own batch through a
// selection vector: the predicate runs row-wise, the copy runs
// column-wise. The child's batch is never written (it may alias the
// table cache).
type filterIter struct {
	child iterator
	pred  *BoundPred
	sel   []int32
	out   *Batch
}

func (f *filterIter) Open() error {
	f.out = nil
	return f.child.Open()
}

func (f *filterIter) Next() (*Batch, error) {
	for {
		b, err := f.child.Next()
		if b == nil || err != nil {
			return nil, err
		}
		f.sel = f.sel[:0]
		for i := 0; i < b.N; i++ {
			if f.pred.Eval(b.Cols, i) {
				f.sel = append(f.sel, int32(i))
			}
		}
		if len(f.sel) == 0 {
			continue // fully filtered batch; pull the next one
		}
		f.out = ensureShape(f.out, len(b.Cols), b.N)
		for c := range b.Cols {
			src, dst := b.Cols[c], f.out.Cols[c]
			for k, i := range f.sel {
				dst[k] = src[i]
			}
		}
		f.out.N = len(f.sel)
		return f.out, nil
	}
}

func (f *filterIter) Close() {
	putBatch(f.out)
	f.out = nil
	f.child.Close()
}

// projectIter narrows batches to a column subset by re-pointing column
// slices — zero copies. Its out batch aliases the child's storage, so it
// is not pooled.
type projectIter struct {
	child iterator
	idxs  []int
	out   Batch
}

func newProjectIter(child iterator, in, out schema) *projectIter {
	p := &projectIter{child: child, idxs: make([]int, len(out))}
	for i, c := range out {
		p.idxs[i] = in.index(c)
	}
	return p
}

func (p *projectIter) Open() error {
	p.out.Cols = make([][]int64, len(p.idxs))
	return p.child.Open()
}

func (p *projectIter) Next() (*Batch, error) {
	b, err := p.child.Next()
	if b == nil || err != nil {
		return nil, err
	}
	for i, idx := range p.idxs {
		p.out.Cols[i] = b.Cols[idx][:b.N]
	}
	p.out.N = b.N
	return &p.out, nil
}

func (p *projectIter) Close() { p.child.Close() }

// passIter forwards its child untouched — exchanges and outputs are
// pipeline no-ops in a single-process engine; their cost shows up as the
// per-operator accounting wrapper's overhead, not as data movement.
type passIter struct {
	child iterator
}

func (p *passIter) Open() error           { return p.child.Open() }
func (p *passIter) Next() (*Batch, error) { return p.child.Next() }
func (p *passIter) Close()                { p.child.Close() }

// adaptIter reshapes a child's schema onto a target schema by name:
// matching columns alias through, missing ones read zero. Used under
// union-all when a branch's schema differs from the union's output.
type adaptIter struct {
	child iterator
	idxs  []int // -1 = zero-fill
	zero  []int64
	out   Batch
}

func newAdaptIter(child iterator, in, out schema) *adaptIter {
	a := &adaptIter{child: child, idxs: make([]int, len(out))}
	for i, c := range out {
		a.idxs[i] = in.index(c)
	}
	return a
}

func (a *adaptIter) Open() error {
	a.out.Cols = make([][]int64, len(a.idxs))
	return a.child.Open()
}

func (a *adaptIter) Next() (*Batch, error) {
	b, err := a.child.Next()
	if b == nil || err != nil {
		return nil, err
	}
	if cap(a.zero) < b.N {
		a.zero = make([]int64, b.N)
	}
	for i, idx := range a.idxs {
		if idx >= 0 {
			a.out.Cols[i] = b.Cols[idx][:b.N]
		} else {
			a.out.Cols[i] = a.zero[:b.N]
		}
	}
	a.out.N = b.N
	return &a.out, nil
}

func (a *adaptIter) Close() { a.child.Close() }

// unionIter concatenates its children in order.
type unionIter struct {
	children []iterator
	cur      int
}

func (u *unionIter) Open() error {
	u.cur = 0
	for _, c := range u.children {
		if err := c.Open(); err != nil {
			return err
		}
	}
	return nil
}

func (u *unionIter) Next() (*Batch, error) {
	for u.cur < len(u.children) {
		b, err := u.children[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.cur++
	}
	return nil, nil
}

func (u *unionIter) Close() {
	for _, c := range u.children {
		c.Close()
	}
}

// processIter models a black-box UDF processor: each input row yields a
// deterministic, UDF-dependent number of output copies (fanout in
// [0.25, 2)), each with a rewritten payload.
type processIter struct {
	child iterator
	udfH  uint64
	valIx int
	size  int

	out    *Batch
	pend   *Batch // current child batch being expanded
	pendI  int    // next input row
	pendC  int    // copies already emitted for row pendI
	copies int    // total copies for row pendI
}

func newProcessIter(child iterator, udf string, sch schema, batchSize int) *processIter {
	return &processIter{child: child, udfH: mix64(strHash(udf)), valIx: sch.valIndex(), size: batchSize}
}

// rowCopies decides how many output rows one input row produces: the
// integer part of the fanout plus a hash-Bernoulli fractional part.
func (p *processIter) rowCopies(rh uint64) int {
	f := 0.25 + 1.75*unitFromHash(p.udfH)
	n := int(f)
	frac := f - float64(n)
	if unitFromHash(mix64(p.udfH^rh)) < frac {
		n++
	}
	return n
}

func (p *processIter) Open() error {
	p.out = getBatch(0, 0)
	p.pend, p.pendI, p.pendC, p.copies = nil, 0, 0, 0
	return p.child.Open()
}

func (p *processIter) Next() (*Batch, error) {
	var nCols int
	filled := 0
	for {
		if p.pend == nil {
			b, err := p.child.Next()
			if b == nil || err != nil {
				if filled > 0 {
					p.out.N = filled
					return p.out, err
				}
				return nil, err
			}
			if b.N == 0 {
				continue
			}
			p.pend, p.pendI, p.pendC = b, 0, 0
			p.copies = p.rowCopies(rowHash(b.Cols, 0))
		}
		if filled == 0 {
			nCols = len(p.pend.Cols)
			p.out = ensureShape(p.out, nCols, p.size)
		}
		for p.pendI < p.pend.N && filled < p.size {
			if p.pendC >= p.copies {
				p.pendI++
				p.pendC = 0
				if p.pendI < p.pend.N {
					p.copies = p.rowCopies(rowHash(p.pend.Cols, p.pendI))
				}
				continue
			}
			for c := 0; c < nCols; c++ {
				p.out.Cols[c][filled] = p.pend.Cols[c][p.pendI]
			}
			if p.valIx >= 0 {
				v := p.pend.Cols[p.valIx][p.pendI]
				p.out.Cols[p.valIx][filled] = int64(mix64(uint64(v) ^ p.udfH ^ uint64(p.pendC)))
			}
			p.pendC++
			filled++
		}
		if p.pendI >= p.pend.N {
			p.pend = nil // exhausted; child batch becomes invalid on next pull
		}
		if filled >= p.size {
			p.out.N = filled
			return p.out, nil
		}
	}
}

func (p *processIter) Close() {
	putBatch(p.out)
	p.out = nil
	p.child.Close()
}

// ensureShape grows a pooled batch to the requested shape, preserving the
// pooling contract. Pooled batches can carry columns of unequal capacity
// (getBatch keeps any column whose cap suffices and allocates the rest at
// exactly capRows), so each column is checked and grown individually —
// judging the whole batch by Cols[0] would reslice a smaller sibling past
// its capacity and panic.
func ensureShape(b *Batch, nCols, capRows int) *Batch {
	if b == nil {
		return getBatch(nCols, capRows)
	}
	if len(b.Cols) != nCols {
		putBatch(b)
		return getBatch(nCols, capRows)
	}
	for i := range b.Cols {
		if cap(b.Cols[i]) < capRows {
			b.Cols[i] = make([]int64, capRows)
		} else {
			b.Cols[i] = b.Cols[i][:capRows]
		}
	}
	b.N = 0
	return b
}

// exceptIter emits left rows after cancelling one-for-one against the
// right multiset (EXCEPT ALL semantics). Rows are matched by full-row
// hash; both inputs must share a schema. Survivors gather into the
// iterator's own batch — the left child's batch is never written.
type exceptIter struct {
	left, right iterator
	counts      map[uint64]int64
	sel         []int32
	out         *Batch
	size        int
}

func newExceptIter(left, right iterator, batchSize int) *exceptIter {
	return &exceptIter{left: left, right: right, size: batchSize}
}

func (e *exceptIter) Open() error {
	if err := e.left.Open(); err != nil {
		return err
	}
	if err := e.right.Open(); err != nil {
		return err
	}
	e.counts = make(map[uint64]int64)
	for {
		b, err := e.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			e.counts[rowHash(b.Cols, i)]++
		}
	}
	return nil
}

func (e *exceptIter) Next() (*Batch, error) {
	for {
		b, err := e.left.Next()
		if b == nil || err != nil {
			return nil, err
		}
		e.sel = e.sel[:0]
		for i := 0; i < b.N; i++ {
			h := rowHash(b.Cols, i)
			if c := e.counts[h]; c > 0 {
				e.counts[h] = c - 1
				continue
			}
			e.sel = append(e.sel, int32(i))
		}
		if len(e.sel) == 0 {
			continue
		}
		return e.gather(b), nil
	}
}

// gather copies the selected left rows into the iterator's own batch.
func (e *exceptIter) gather(b *Batch) *Batch {
	e.out = ensureShape(e.out, len(b.Cols), b.N)
	for c := range b.Cols {
		src, dst := b.Cols[c], e.out.Cols[c]
		for k, i := range e.sel {
			dst[k] = src[i]
		}
	}
	e.out.N = len(e.sel)
	return e.out
}

func (e *exceptIter) Close() {
	putBatch(e.out)
	e.out = nil
	e.left.Close()
	e.right.Close()
	e.counts = nil
}

// intersectIter emits left rows that find an unconsumed partner in the
// right multiset (INTERSECT ALL semantics).
type intersectIter struct {
	exceptIter
}

func newIntersectIter(left, right iterator, batchSize int) *intersectIter {
	return &intersectIter{exceptIter{left: left, right: right, size: batchSize}}
}

func (e *intersectIter) Next() (*Batch, error) {
	for {
		b, err := e.left.Next()
		if b == nil || err != nil {
			return nil, err
		}
		e.sel = e.sel[:0]
		for i := 0; i < b.N; i++ {
			h := rowHash(b.Cols, i)
			c := e.counts[h]
			if c <= 0 {
				continue
			}
			e.counts[h] = c - 1
			e.sel = append(e.sel, int32(i))
		}
		if len(e.sel) == 0 {
			continue
		}
		return e.gather(b), nil
	}
}
