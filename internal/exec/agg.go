package exec

import (
	"fmt"

	"cleo/internal/plan"
)

// Aggregates group by the operator's key columns and emit one row per
// group shaped as keys + __cnt + __sum (count of input rows, wrapping sum
// of the payload column). Groups are emitted in first-arrival order —
// never Go map iteration order — so both backends produce identical
// streams from identical inputs.

// aggSchema is the output schema of an aggregate node: its de-duplicated
// keys followed by the derived count and sum columns.
func aggSchema(n *plan.Physical) schema {
	out := make(schema, 0, len(n.Keys)+2)
	for _, k := range n.Keys {
		if k == cntCol || k == sumCol || out.index(k) >= 0 {
			continue
		}
		out = append(out, k)
	}
	return append(out, cntCol, sumCol)
}

// partialBuckets spreads each key group of a partial (per-partition)
// aggregate across up to this many sub-groups, keyed by a hash of the
// full row — an order-insensitive stand-in for partition-local grouping.
const partialBuckets = 16

// hashAggIter implements both the full hash aggregate and the partial
// aggregate (extraBuckets > 0): Open drains the child and groups, Next
// streams the groups out in insertion order.
type hashAggIter struct {
	child        iterator
	keyIdx       []int // into child schema (resolved, never -1)
	valIdx       int
	cntIdx       int // ≥0: sum this column as the count (final over partial)
	size         int
	extraBuckets int64

	gKeys   [][]int64
	buckets []int64
	cnt     []int64
	sum     []int64
	index   map[uint64][]int32
	pos     int
	out     *Batch
}

func (a *hashAggIter) Open() error {
	if err := a.child.Open(); err != nil {
		return err
	}
	nk := len(a.keyIdx)
	a.gKeys = make([][]int64, nk)
	a.cnt, a.sum, a.buckets = nil, nil, nil
	a.index = make(map[uint64][]int32)
	a.pos = 0
	for {
		b, err := a.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			var bucket int64
			h := keyHash(b.Cols, a.keyIdx, i)
			if a.extraBuckets > 0 {
				bucket = int64(rowHash(b.Cols, i) % uint64(a.extraBuckets))
				h = mix64(h ^ uint64(bucket))
			}
			g := a.findGroup(b.Cols, i, h, bucket)
			if a.cntIdx >= 0 {
				// Final stage above a partial aggregate: the partial already
				// counted raw rows into __cnt, so sum those counts instead of
				// counting partial sub-groups — otherwise a two-phase plan's
				// counts would depend on the physical choice.
				a.cnt[g] += b.Cols[a.cntIdx][i]
			} else {
				a.cnt[g]++
			}
			if a.valIdx >= 0 {
				a.sum[g] += b.Cols[a.valIdx][i]
			}
		}
	}
	a.out = getBatch(nk+2, a.size)
	return nil
}

// findGroup locates or creates row i's group, verifying key equality on
// hash collisions.
func (a *hashAggIter) findGroup(cols [][]int64, i int, h uint64, bucket int64) int32 {
next:
	for _, g := range a.index[h] {
		for k, ix := range a.keyIdx {
			var v int64
			if ix >= 0 {
				v = cols[ix][i]
			}
			if a.gKeys[k][g] != v {
				continue next
			}
		}
		if a.extraBuckets > 0 && a.buckets[g] != bucket {
			continue next
		}
		return g
	}
	g := int32(len(a.cnt))
	for k, ix := range a.keyIdx {
		var v int64
		if ix >= 0 {
			v = cols[ix][i]
		}
		a.gKeys[k] = append(a.gKeys[k], v)
	}
	if a.extraBuckets > 0 {
		a.buckets = append(a.buckets, bucket)
	}
	a.cnt = append(a.cnt, 0)
	a.sum = append(a.sum, 0)
	a.index[h] = append(a.index[h], g)
	return g
}

func (a *hashAggIter) Next() (*Batch, error) {
	if a.pos >= len(a.cnt) {
		return nil, nil
	}
	n := a.size
	if rem := len(a.cnt) - a.pos; n > rem {
		n = rem
	}
	nk := len(a.keyIdx)
	for k := 0; k < nk; k++ {
		copy(a.out.Cols[k][:n], a.gKeys[k][a.pos:a.pos+n])
	}
	copy(a.out.Cols[nk][:n], a.cnt[a.pos:a.pos+n])
	copy(a.out.Cols[nk+1][:n], a.sum[a.pos:a.pos+n])
	a.out.N = n
	a.pos += n
	return a.out, nil
}

func (a *hashAggIter) Close() {
	putBatch(a.out)
	a.out = nil
	a.gKeys, a.cnt, a.sum, a.buckets, a.index = nil, nil, nil, nil, nil
	a.child.Close()
}

// streamAggIter aggregates runs of consecutive equal keys — correct when
// the input is key-clustered, which the optimizer guarantees by placing
// stream aggregates above sorts or merge joins. It is fully pipelined:
// one group's state, no hash table.
type streamAggIter struct {
	child  iterator
	keyIdx []int
	valIdx int
	size   int

	cur     []int64
	cnt     int64
	sum     int64
	started bool
	done    bool
	out     *Batch
}

func (a *streamAggIter) Open() error {
	a.cur = make([]int64, len(a.keyIdx))
	a.cnt, a.sum = 0, 0
	a.started, a.done = false, false
	a.out = getBatch(len(a.keyIdx)+2, a.size)
	return a.child.Open()
}

func (a *streamAggIter) emit(filled *int) {
	// One input batch can close many groups, so the out batch grows on
	// demand rather than pausing mid-batch.
	if *filled >= len(a.out.Cols[0]) {
		n := len(a.out.Cols[0])
		bigger := getBatch(len(a.out.Cols), 2*n)
		for c := range a.out.Cols {
			copy(bigger.Cols[c], a.out.Cols[c])
		}
		putBatch(a.out)
		a.out = bigger
	}
	nk := len(a.keyIdx)
	for k := 0; k < nk; k++ {
		a.out.Cols[k][*filled] = a.cur[k]
	}
	a.out.Cols[nk][*filled] = a.cnt
	a.out.Cols[nk+1][*filled] = a.sum
	*filled++
}

func (a *streamAggIter) Next() (*Batch, error) {
	if a.done {
		return nil, nil
	}
	filled := 0
	for filled < a.size {
		b, err := a.child.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if a.started {
				a.emit(&filled)
			}
			a.done = true
			break
		}
		for i := 0; i < b.N; i++ {
			same := a.started
			for k, ix := range a.keyIdx {
				var v int64
				if ix >= 0 {
					v = b.Cols[ix][i]
				}
				if same && a.cur[k] != v {
					same = false
				}
			}
			if !same {
				if a.started {
					a.emit(&filled)
				}
				for k, ix := range a.keyIdx {
					var v int64
					if ix >= 0 {
						v = b.Cols[ix][i]
					}
					a.cur[k] = v
				}
				a.cnt, a.sum = 0, 0
				a.started = true
			}
			a.cnt++
			if a.valIdx >= 0 {
				a.sum += b.Cols[a.valIdx][i]
			}
		}
		// A group can span batches, so only emission (not input) bounds
		// the fill; a filled-up out batch may briefly exceed size by the
		// in-flight batch's group boundaries.
		if filled >= a.size {
			break
		}
	}
	if filled == 0 {
		return nil, nil
	}
	a.out.N = filled
	return a.out, nil
}

func (a *streamAggIter) Close() {
	putBatch(a.out)
	a.out = nil
	a.child.Close()
}

// sortIter materializes its input and emits it in canonical order: the
// sort keys ascending, then every remaining column — a total order, so
// output is independent of input order.
type sortIter struct {
	child  iterator
	keyIdx []int
	size   int

	cs  *colStore
	idx []int32
	pos int
	out *Batch
}

func (s *sortIter) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	var err error
	if s.cs, err = drainStoreAll(s.child); err != nil {
		return err
	}
	s.idx = sortedIndex(s.cs, s.keyIdx)
	s.pos = 0
	s.out = getBatch(len(s.cs.cols), s.size)
	return nil
}

func (s *sortIter) Next() (*Batch, error) {
	if s.pos >= len(s.idx) {
		return nil, nil
	}
	n := s.size
	if rem := len(s.idx) - s.pos; n > rem {
		n = rem
	}
	for i := 0; i < n; i++ {
		r := int(s.idx[s.pos+i])
		for c := range s.cs.cols {
			s.out.Cols[c][i] = s.cs.cols[c][r]
		}
	}
	s.out.N = n
	s.pos += n
	return s.out, nil
}

func (s *sortIter) Close() {
	putBatch(s.out)
	s.out = nil
	s.cs, s.idx = nil, nil
	s.child.Close()
}

// topNIter keeps the N smallest rows (by the canonical sort order) in a
// bounded max-heap while streaming its input, then emits them sorted —
// memory is O(N) regardless of input size.
type topNIter struct {
	child  iterator
	keyIdx []int
	n      int
	size   int

	cs   *colStore
	heap []int32
	idx  []int32
	pos  int
	out  *Batch
}

func (t *topNIter) less(i, j int) bool { return t.cs.compareRows(int(i), int(j), t.keyIdx) < 0 }

func (t *topNIter) siftDown(i int) {
	h := t.heap
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && t.less(int(h[big]), int(h[l])) {
			big = l
		}
		if r < len(h) && t.less(int(h[big]), int(h[r])) {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

func (t *topNIter) siftUp(i int) {
	h := t.heap
	for i > 0 {
		p := (i - 1) / 2
		if !t.less(int(h[p]), int(h[i])) {
			return
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (t *topNIter) Open() error {
	if err := t.child.Open(); err != nil {
		return err
	}
	t.cs = nil
	t.heap = t.heap[:0]
	for {
		b, err := t.child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if t.cs == nil {
			t.cs = newColStore(len(b.Cols), t.n+1)
		}
		for i := 0; i < b.N; i++ {
			if t.cs.n < t.n {
				t.cs.appendRow(b.Cols, i)
				t.heap = append(t.heap, int32(t.cs.n-1))
				t.siftUp(len(t.heap) - 1)
				continue
			}
			// Compare the incoming row against the current maximum by
			// staging it in the store's spare slot.
			if t.n == 0 {
				break
			}
			spare := t.stageRow(b.Cols, i)
			max := int(t.heap[0])
			if t.cs.compareRows(spare, max, t.keyIdx) < 0 {
				t.copyRow(spare, max)
				t.siftDown(0)
			}
		}
	}
	if t.cs == nil {
		t.cs = newColStore(0, 0)
	}
	t.cs.truncate(minInt(t.cs.n, t.n))
	t.idx = sortedIndex(t.cs, t.keyIdx)
	t.pos = 0
	t.out = getBatch(len(t.cs.cols), t.size)
	return nil
}

// stageRow writes the candidate row into index n (the spare slot beyond
// the kept N) and returns its index.
func (t *topNIter) stageRow(cols [][]int64, i int) int {
	if t.cs.n == t.n {
		t.cs.appendRow(cols, i)
	} else {
		for c := range t.cs.cols {
			t.cs.cols[c][t.n] = cols[c][i]
		}
	}
	return t.n
}

func (t *topNIter) copyRow(from, to int) {
	for c := range t.cs.cols {
		t.cs.cols[c][to] = t.cs.cols[c][from]
	}
}

func (t *topNIter) Next() (*Batch, error) {
	if t.pos >= len(t.idx) {
		return nil, nil
	}
	n := t.size
	if rem := len(t.idx) - t.pos; n > rem {
		n = rem
	}
	for i := 0; i < n; i++ {
		r := int(t.idx[t.pos+i])
		for c := range t.cs.cols {
			t.out.Cols[c][i] = t.cs.cols[c][r]
		}
	}
	t.out.N = n
	t.pos += n
	return t.out, nil
}

func (t *topNIter) Close() {
	putBatch(t.out)
	t.out = nil
	t.cs, t.heap, t.idx = nil, nil, nil
	t.child.Close()
}

// truncate drops rows beyond n (the top-n spare slot).
func (cs *colStore) truncate(n int) {
	for c := range cs.cols {
		if len(cs.cols[c]) > n {
			cs.cols[c] = cs.cols[c][:n]
		}
	}
	cs.n = n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// resolveKeys resolves a node's key columns against its input schema for
// the hashers and canonical comparators. A key column missing from the
// schema is a compile error: it used to resolve to index −1, which keyHash
// and the comparators silently read as the constant 0 — every row landed
// in one hash group and the query returned wrong results with no
// diagnostic.
func resolveKeys(op plan.PhysicalOp, keys []plan.Column, sch schema) ([]int, error) {
	idx := make([]int, len(keys))
	for i, k := range keys {
		if idx[i] = sch.index(k); idx[i] < 0 {
			return nil, fmt.Errorf("exec: %v key column %q is not in its input schema %v", op, k, []plan.Column(sch))
		}
	}
	return idx, nil
}
