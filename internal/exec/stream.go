package exec

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"cleo/internal/obs"
	"cleo/internal/plan"
)

// StreamConfig tunes the streaming Engine.
type StreamConfig struct {
	// BatchSize is the target rows per batch (default DefaultBatchSize).
	BatchSize int
	// MaxTableRows caps the generated row count per scanned table
	// (default 50000): plans are annotated with production-scale
	// cardinalities, and the cap keeps single-process execution bounded
	// while preserving plan shape.
	MaxTableRows int
	// SymmetricJoin lets the planner pick the non-blocking symmetric hash
	// join when both inputs are fully pipelined and no order-sensitive
	// operator consumes the output. Off by default: the classic
	// build-then-probe join builds only one side and is faster whenever
	// the build input is finite — the symmetric variant exists for
	// stream-to-stream shapes where blocking on either input is the
	// greater evil.
	SymmetricJoin bool
	// Metrics, when non-nil, records per-operator timings and row/batch
	// counters (see NewMetrics).
	Metrics *Metrics
}

// DefaultMaxTableRows bounds generated scans when StreamConfig leaves
// MaxTableRows zero.
const DefaultMaxTableRows = 50000

// Engine is the real executor: it compiles a physical plan into a tree of
// pull-based, batch-at-a-time iterators over deterministic generated
// tables and runs it to exhaustion in-process. Per-operator exclusive
// wall-clock time lands in ExclusiveActual and observed row counts in
// Stats.ActCard — the measured telemetry the learned cost models train
// on, closing the feedback loop the simulator only imitates.
//
// An Engine is stateless and safe for concurrent use; every Run builds a
// fresh iterator tree.
type Engine struct {
	cfg StreamConfig
}

// NewEngine builds a streaming engine, applying config defaults.
func NewEngine(cfg StreamConfig) *Engine {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.MaxTableRows <= 0 {
		cfg.MaxTableRows = DefaultMaxTableRows
	}
	return &Engine{cfg: cfg}
}

// Run implements Backend. rng is unused: real execution has no synthetic
// noise — run-to-run variance is whatever the hardware provides.
func (e *Engine) Run(root *plan.Physical, rng *rand.Rand) (Result, error) {
	return e.run(root, nil, 0)
}

// RunTraced implements TracedBackend: per-operator spans (exclusive time,
// rows, batches) attach under parent, mirroring the plan tree.
func (e *Engine) RunTraced(root *plan.Physical, rng *rand.Rand, tr *obs.Trace, parent obs.SpanID) (Result, error) {
	return e.run(root, tr, parent)
}

// opIter wraps an operator's iterator with inclusive wall-clock and
// output accounting. Children are wrapped too, so a parent's inclusive
// time minus its children's inclusive time is the operator's exclusive
// time — the quantity telemetry records.
type opIter struct {
	node    *plan.Physical
	inner   iterator
	kids    []*opIter
	tNs     int64
	rows    int64
	batches int64
}

func (o *opIter) Open() error {
	t0 := time.Now()
	err := o.inner.Open()
	o.tNs += int64(time.Since(t0))
	return err
}

func (o *opIter) Next() (*Batch, error) {
	t0 := time.Now()
	b, err := o.inner.Next()
	o.tNs += int64(time.Since(t0))
	if b != nil {
		o.rows += int64(b.N)
		o.batches++
	}
	return b, err
}

func (o *opIter) Close() {
	t0 := time.Now()
	o.inner.Close()
	o.tNs += int64(time.Since(t0))
}

func (e *Engine) run(root *plan.Physical, tr *obs.Trace, parent obs.SpanID) (Result, error) {
	t0 := time.Now()
	preds := compilePreds(root)
	sch := scanSchema(root, preds)
	top, _, err := e.build(root, sch, preds, false)
	if err != nil {
		return Result{}, err
	}
	if err := top.Open(); err != nil {
		top.Close()
		return Result{}, err
	}
	var rows, chk uint64
	for {
		b, err := top.Next()
		if err != nil {
			top.Close()
			return Result{}, err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			chk += mix64(rowHash(b.Cols, i))
		}
		rows += uint64(b.N)
	}
	top.Close()

	res := Result{
		Latency:        time.Since(t0).Seconds(),
		OutputRows:     rows,
		OutputChecksum: chk,
	}
	e.finish(top, tr, parent, &res)
	for _, st := range plan.Stages(root) {
		res.Containers += st.Partitions
	}
	return res, nil
}

// finish walks the wrapper tree bottom-up: it computes each operator's
// exclusive time, writes the measured actuals back onto the plan (the
// telemetry extractor reads ExclusiveActual and Stats.ActCard), records
// metrics, and emits trace spans nested like the plan.
func (e *Engine) finish(o *opIter, tr *obs.Trace, parent obs.SpanID, res *Result) {
	var kidNs int64
	for _, k := range o.kids {
		kidNs += k.tNs
	}
	exclNs := o.tNs - kidNs
	if exclNs < 0 {
		exclNs = 0 // clock granularity can round a cheap wrapper below its children
	}
	o.node.ExclusiveActual = float64(exclNs) / 1e9
	o.node.Stats.ActCard = float64(o.rows)
	res.TotalProcessingTime += o.node.ExclusiveActual
	e.cfg.Metrics.record(o.node.Op, time.Duration(exclNs), o.rows, o.batches)
	span := parent
	if tr != nil {
		span = tr.Add(parent, "exec:"+o.node.Op.String(), -1, exclNs,
			"rows", strconv.FormatInt(o.rows, 10),
			"batches", strconv.FormatInt(o.batches, 10),
		)
	}
	for _, k := range o.kids {
		e.finish(k, tr, span, res)
	}
}

// compilePreds compiles every predicate in the plan once; the result maps
// feed both schema derivation and iterator construction.
func compilePreds(root *plan.Physical) map[*plan.Physical]*Pred {
	preds := map[*plan.Physical]*Pred{}
	root.Walk(func(n *plan.Physical) {
		if n.Pred != "" {
			preds[n] = CompilePred(n.Pred)
		}
	})
	return preds
}

// scanRows sizes a generated scan: the annotated actual cardinality
// (falling back to the estimate), capped by MaxTableRows. The engine
// writes the capped count back as ActCard, so re-running a plan is
// idempotent.
func scanRows(n *plan.Physical, maxRows int) int64 {
	r := n.Stats.ActCard
	if r <= 0 {
		r = n.Stats.EstCard
	}
	if r <= 0 {
		r = 1024
	}
	if r > float64(maxRows) {
		r = float64(maxRows)
	}
	return int64(r)
}

// projectSchema narrows in to the projected keys, preserving input column
// order and always retaining derived payload columns; an empty key list
// is the identity projection.
func projectSchema(keys []plan.Column, in schema) schema {
	if len(keys) == 0 {
		return in
	}
	want := make(map[plan.Column]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	out := make(schema, 0, len(in))
	for _, c := range in {
		if c == valCol || c == cntCol || c == sumCol || want[c] {
			out = append(out, c)
		}
	}
	return out
}

// streamsOnly reports whether the subtree is fully pipelined (contains no
// blocking operator) — the precondition for feeding a symmetric hash
// join's input directly from a live stream. It consults blocksStreaming
// rather than plan.PhysicalOp.Blocking: the simulator's classification
// keeps merge joins and partial aggregates pipelined, but this engine's
// mergeJoinIter drains both inputs in Open and the partial aggregate runs
// through the (blocking) hashAggIter, so above either of them a symmetric
// join buys nothing over the cheaper classic hash join.
func streamsOnly(n *plan.Physical) bool {
	ok := true
	n.Walk(func(m *plan.Physical) {
		if blocksStreaming(m.Op) {
			ok = false
		}
	})
	return ok
}

// blocksStreaming reports whether this executor's implementation of op
// consumes its whole input before emitting (regardless of how the latency
// simulator classifies it).
func blocksStreaming(op plan.PhysicalOp) bool {
	return op.Blocking() || op == plan.PMergeJoin || op == plan.PPartialAggregate
}

// joinSizeHint estimates the build-side row count for pre-sizing.
func joinSizeHint(n *plan.Physical, maxRows int) int {
	r := n.Stats.ActCard
	if r <= 0 {
		r = n.Stats.EstCard
	}
	if r <= 0 || r > float64(maxRows) {
		r = float64(maxRows)
	}
	return int(r)
}

// build compiles the plan subtree into a wrapped iterator tree and
// returns it with its output schema. orderSensitive tracks whether any
// ancestor between here and the nearest order-canonicalizing operator
// (sort, top-n, merge join) depends on row order — under such an
// ancestor the symmetric hash join (whose emission order depends on
// arrival interleaving) is not eligible and the classic hash join runs
// instead.
func (e *Engine) build(n *plan.Physical, sch schema, preds map[*plan.Physical]*Pred, orderSensitive bool) (*opIter, schema, error) {
	bs := e.cfg.BatchSize
	childSensitive := orderSensitive
	switch n.Op {
	case plan.PSort, plan.PTopN, plan.PMergeJoin:
		childSensitive = false
	case plan.PStreamAggregate:
		childSensitive = true
	}
	kids := make([]*opIter, len(n.Children))
	kidSch := make([]schema, len(n.Children))
	for i, c := range n.Children {
		k, ks, err := e.build(c, sch, preds, childSensitive)
		if err != nil {
			return nil, nil, err
		}
		kids[i], kidSch[i] = k, ks
	}

	if len(kids) == 0 {
		// Any leaf scans its generated table, whatever the operator kind.
		inner := newScanIter(n.Table, scanRows(n, e.cfg.MaxTableRows), sch, bs)
		return &opIter{node: n, inner: inner}, sch, nil
	}

	var inner iterator
	out := kidSch[0]
	switch n.Op {
	case plan.PFilter:
		p := preds[n]
		if p == nil {
			p = CompilePred(n.Pred)
		}
		inner = &filterIter{child: kids[0], pred: p.Bind(kidSch[0])}

	case plan.PProject:
		out = projectSchema(n.Keys, kidSch[0])
		if out.equal(kidSch[0]) {
			inner = &passIter{child: kids[0]}
		} else {
			inner = newProjectIter(kids[0], kidSch[0], out)
		}

	case plan.PHashJoin, plan.PMergeJoin:
		if len(kids) < 2 {
			inner = &passIter{child: kids[0]}
			break
		}
		lKey := sortKeyIdx(n.Keys, kidSch[0])
		rKey := sortKeyIdx(n.Keys, kidSch[1])
		lVal, rVal := kidSch[0].valIndex(), kidSch[1].valIndex()
		nCols := len(kidSch[0])
		if n.Op == plan.PMergeJoin {
			inner = &mergeJoinIter{
				left: kids[0], right: kids[1],
				lKey: lKey, rKey: rKey, lVal: lVal, rVal: rVal,
				nCols: nCols, size: bs,
			}
			break
		}
		hint := joinSizeHint(n.Children[1], e.cfg.MaxTableRows)
		if e.cfg.SymmetricJoin && !orderSensitive &&
			streamsOnly(n.Children[0]) && streamsOnly(n.Children[1]) {
			inner = &symmetricHashJoinIter{
				left: kids[0], right: kids[1],
				lKey: lKey, rKey: rKey, lVal: lVal, rVal: rVal,
				nCols: nCols, sizeHint: hint, size: bs,
			}
		} else {
			inner = &hashJoinIter{
				left: kids[0], right: kids[1],
				lKey: lKey, rKey: rKey, lVal: lVal, rVal: rVal,
				nCols: nCols, sizeHint: hint, size: bs,
			}
		}

	case plan.PHashAggregate, plan.PPartialAggregate:
		out = aggSchema(n)
		extra := int64(0)
		if n.Op == plan.PPartialAggregate {
			extra = partialBuckets
		}
		inner = &hashAggIter{
			child:  kids[0],
			keyIdx: sortKeyIdx(out[:len(out)-2], kidSch[0]),
			valIdx: kidSch[0].valIndex(),
			size:   bs, extraBuckets: extra,
		}

	case plan.PStreamAggregate:
		out = aggSchema(n)
		inner = &streamAggIter{
			child:  kids[0],
			keyIdx: sortKeyIdx(out[:len(out)-2], kidSch[0]),
			valIdx: kidSch[0].valIndex(),
			size:   bs,
		}

	case plan.PSort:
		inner = &sortIter{child: kids[0], keyIdx: sortKeyIdx(n.Keys, kidSch[0]), size: bs}

	case plan.PTopN:
		limit := n.N
		if limit <= 0 {
			limit = 100
		}
		inner = &topNIter{child: kids[0], keyIdx: sortKeyIdx(n.Keys, kidSch[0]), n: limit, size: bs}

	case plan.PUnionAll:
		children := make([]iterator, len(kids))
		for i, k := range kids {
			if kidSch[i].equal(out) {
				children[i] = k
			} else {
				children[i] = newAdaptIter(k, kidSch[i], out)
			}
		}
		inner = &unionIter{children: children}

	case plan.PProcess:
		inner = newProcessIter(kids[0], n.UDF, kidSch[0], bs)

	case plan.PExchange, plan.POutput:
		inner = &passIter{child: kids[0]}

	default:
		return nil, nil, fmt.Errorf("exec: streaming engine cannot execute operator %v", n.Op)
	}
	return &opIter{node: n, inner: inner, kids: kids}, out, nil
}
