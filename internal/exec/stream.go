package exec

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"time"

	"cleo/internal/obs"
	"cleo/internal/plan"
)

// StreamConfig tunes the streaming Engine.
type StreamConfig struct {
	// BatchSize is the target rows per batch (default DefaultBatchSize).
	BatchSize int
	// MaxTableRows caps the generated row count per scanned table
	// (default 50000): plans are annotated with production-scale
	// cardinalities, and the cap keeps single-process execution bounded
	// while preserving plan shape.
	MaxTableRows int
	// MaxWorkers caps the pipeline instances per stage (default
	// GOMAXPROCS): each stage runs min(stage partitions, MaxWorkers)
	// concurrent instances connected by exchange operators. 1 disables
	// intra-query parallelism entirely — plans compile to a single
	// iterator tree on the calling goroutine, with no channels and no
	// extra goroutines.
	MaxWorkers int
	// SymmetricJoin lets the planner pick the non-blocking symmetric hash
	// join when both inputs are fully pipelined and no order-sensitive
	// operator consumes the output. Off by default: the classic
	// build-then-probe join builds only one side and is faster whenever
	// the build input is finite — the symmetric variant exists for
	// stream-to-stream shapes where blocking on either input is the
	// greater evil.
	SymmetricJoin bool
	// Metrics, when non-nil, records per-operator timings and row/batch
	// counters (see NewMetrics).
	Metrics *Metrics
}

// DefaultMaxTableRows bounds generated scans when StreamConfig leaves
// MaxTableRows zero.
const DefaultMaxTableRows = 50000

// maxWorkersCap is the hard ceiling on per-request worker overrides; a
// single process gains nothing from more pipeline instances than this.
const maxWorkersCap = 256

// Engine is the real executor: it compiles a physical plan into pipeline
// instances of pull-based, batch-at-a-time iterators over deterministic
// generated tables and runs them to exhaustion in-process. Each stage of
// the plan runs as up to MaxWorkers concurrent instances — morsel-driven
// parallel scans at the leaves, hash-partitioned joins and aggregates
// above them — connected by exchange operators over bounded channels.
// Per-operator exclusive wall-clock time lands in ExclusiveActual and
// observed row counts in Stats.ActCard — the measured telemetry the
// learned cost models train on, closing the feedback loop the simulator
// only imitates.
//
// An Engine is stateless and safe for concurrent use; every Run builds a
// fresh iterator tree.
type Engine struct {
	cfg StreamConfig
}

// NewEngine builds a streaming engine, applying config defaults.
func NewEngine(cfg StreamConfig) *Engine {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.MaxTableRows <= 0 {
		cfg.MaxTableRows = DefaultMaxTableRows
	}
	if cfg.MaxWorkers <= 0 {
		cfg.MaxWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxWorkers > maxWorkersCap {
		cfg.MaxWorkers = maxWorkersCap
	}
	return &Engine{cfg: cfg}
}

// MaxWorkers reports the engine's effective per-stage worker clamp.
func (e *Engine) MaxWorkers() int { return e.cfg.MaxWorkers }

// WithMaxWorkers returns an engine sharing this one's configuration with
// the worker clamp overridden — the per-request parallelism knob. n <= 0
// falls back to GOMAXPROCS. The receiver is unchanged (engines are
// stateless, so the copy is cheap and safe).
func (e *Engine) WithMaxWorkers(n int) *Engine {
	cfg := e.cfg
	cfg.MaxWorkers = 0
	if n > 0 {
		cfg.MaxWorkers = n
	}
	return NewEngine(cfg)
}

// Run implements Backend. rng is unused: real execution has no synthetic
// noise — run-to-run variance is whatever the hardware provides.
func (e *Engine) Run(root *plan.Physical, rng *rand.Rand) (Result, error) {
	return e.run(root, nil, 0)
}

// RunTraced implements TracedBackend: per-operator spans (exclusive time,
// rows, batches, instances) attach under parent, mirroring the plan tree.
func (e *Engine) RunTraced(root *plan.Physical, rng *rand.Rand, tr *obs.Trace, parent obs.SpanID) (Result, error) {
	return e.run(root, tr, parent)
}

// nodeAcct accumulates the measured actuals of one plan operator across
// all of its pipeline instances. Instances flush their local counters
// exactly once, at Close, under the mutex; by the time finalize reads an
// acct every producer goroutine has exited (exchange teardown waits for
// them), so the totals are complete and race-free.
type nodeAcct struct {
	mu        sync.Mutex
	rows      int64
	batches   int64
	sumExclNs int64 // total operator-seconds across instances
	maxExclNs int64 // slowest instance — the critical-path time
	instances int64
}

// instIter wraps one pipeline instance of an operator with inclusive
// wall-clock and output accounting. kids are the same-goroutine child
// wrappers feeding it (exchange receivers for a stage input, operator
// instances within a fused pipeline): subtracting their inclusive time
// yields this instance's exclusive time. Counters are plain fields — each
// instance is pulled by exactly one goroutine — and flush to the shared
// acct once, at Close.
type instIter struct {
	acct    *nodeAcct // nil: timed (so parents subtract) but unattributed
	inner   iterator
	kids    []*instIter
	tNs     int64
	rows    int64
	batches int64
	flushed bool
}

func (o *instIter) Open() error {
	t0 := time.Now()
	err := o.inner.Open()
	o.tNs += int64(time.Since(t0))
	return err
}

func (o *instIter) Next() (*Batch, error) {
	t0 := time.Now()
	b, err := o.inner.Next()
	o.tNs += int64(time.Since(t0))
	if b != nil {
		o.rows += int64(b.N)
		o.batches++
	}
	return b, err
}

func (o *instIter) Close() {
	t0 := time.Now()
	o.inner.Close()
	o.tNs += int64(time.Since(t0))
	if o.flushed {
		return
	}
	o.flushed = true
	// inner.Close has closed the kids, so their inclusive times are final.
	var kidNs int64
	for _, k := range o.kids {
		kidNs += k.tNs
	}
	exclNs := o.tNs - kidNs
	if exclNs < 0 {
		exclNs = 0 // clock granularity can round a cheap wrapper below its children
	}
	if o.acct == nil {
		return
	}
	a := o.acct
	a.mu.Lock()
	a.rows += o.rows
	a.batches += o.batches
	a.sumExclNs += exclNs
	if exclNs > a.maxExclNs {
		a.maxExclNs = exclNs
	}
	a.instances++
	a.mu.Unlock()
}

func (e *Engine) run(root *plan.Physical, tr *obs.Trace, parent obs.SpanID) (Result, error) {
	t0 := time.Now()
	preds := compilePreds(root)
	c := &compiler{
		cfg:    &e.cfg,
		preds:  preds,
		sch:    scanSchema(root, preds),
		widths: plan.PipelineWidths(root, e.cfg.MaxWorkers),
		accts:  map[*plan.Physical]*nodeAcct{},
	}
	top, _, err := c.compileOne(root, false)
	if err != nil {
		return Result{}, err
	}
	if err := top.Open(); err != nil {
		top.Close()
		return Result{}, err
	}
	var rows, chk uint64
	for {
		b, err := top.Next()
		if err != nil {
			top.Close()
			return Result{}, err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			chk += mix64(rowHash(b.Cols, i))
		}
		rows += uint64(b.N)
	}
	// Closing the top cascades through every exchange: producers are woken
	// and waited out, so all instance accounting has flushed when Close
	// returns.
	top.Close()

	res := Result{
		Latency:        time.Since(t0).Seconds(),
		OutputRows:     rows,
		OutputChecksum: chk,
	}
	c.finalize(root, tr, parent, &res)
	e.cfg.Metrics.recordInstances(c.nInstances)
	for _, st := range plan.Stages(root) {
		res.Containers += st.Partitions
	}
	return res, nil
}

// finalize walks the plan tree writing the measured actuals back onto it:
// ActCard is the row total across an operator's instances (bit-identical
// to a sequential run — partitioning never creates or drops rows),
// ExclusiveActual is the slowest instance's exclusive time (the
// critical-path cost a learned model should predict for a parallel
// stage), and TotalProcessingTime accumulates operator-seconds across all
// instances (the container-time a cluster would bill). Trace spans nest
// like the plan.
func (c *compiler) finalize(n *plan.Physical, tr *obs.Trace, parent obs.SpanID, res *Result) {
	a := c.accts[n]
	if a == nil {
		a = &nodeAcct{}
	}
	n.ExclusiveActual = float64(a.maxExclNs) / 1e9
	n.Stats.ActCard = float64(a.rows)
	res.TotalProcessingTime += float64(a.sumExclNs) / 1e9
	c.cfg.Metrics.record(n.Op, time.Duration(a.sumExclNs), a.rows, a.batches)
	span := parent
	if tr != nil {
		span = tr.Add(parent, "exec:"+n.Op.String(), -1, a.maxExclNs,
			"rows", strconv.FormatInt(a.rows, 10),
			"batches", strconv.FormatInt(a.batches, 10),
			"instances", strconv.FormatInt(a.instances, 10),
		)
	}
	for _, k := range n.Children {
		c.finalize(k, tr, span, res)
	}
}

// compilePreds compiles every predicate in the plan once; the result maps
// feed both schema derivation and iterator construction.
func compilePreds(root *plan.Physical) map[*plan.Physical]*Pred {
	preds := map[*plan.Physical]*Pred{}
	root.Walk(func(n *plan.Physical) {
		if n.Pred != "" {
			preds[n] = CompilePred(n.Pred)
		}
	})
	return preds
}

// scanRows sizes a generated scan: the annotated actual cardinality
// (falling back to the estimate), capped by MaxTableRows. The engine
// writes the capped count back as ActCard, so re-running a plan is
// idempotent.
func scanRows(n *plan.Physical, maxRows int) int64 {
	r := n.Stats.ActCard
	if r <= 0 {
		r = n.Stats.EstCard
	}
	if r <= 0 {
		r = 1024
	}
	if r > float64(maxRows) {
		r = float64(maxRows)
	}
	return int64(r)
}

// projectSchema narrows in to the projected keys, preserving input column
// order and always retaining derived payload columns; an empty key list
// is the identity projection.
func projectSchema(keys []plan.Column, in schema) schema {
	if len(keys) == 0 {
		return in
	}
	want := make(map[plan.Column]bool, len(keys))
	for _, k := range keys {
		want[k] = true
	}
	out := make(schema, 0, len(in))
	for _, c := range in {
		if c == valCol || c == cntCol || c == sumCol || want[c] {
			out = append(out, c)
		}
	}
	return out
}

// streamsOnly reports whether the subtree is fully pipelined (contains no
// blocking operator) — the precondition for feeding a symmetric hash
// join's input directly from a live stream. It consults blocksStreaming
// rather than plan.PhysicalOp.Blocking: the simulator's classification
// keeps merge joins and partial aggregates pipelined, but this engine's
// mergeJoinIter drains both inputs in Open and the partial aggregate runs
// through the (blocking) hashAggIter, so above either of them a symmetric
// join buys nothing over the cheaper classic hash join.
func streamsOnly(n *plan.Physical) bool {
	ok := true
	n.Walk(func(m *plan.Physical) {
		if blocksStreaming(m.Op) {
			ok = false
		}
	})
	return ok
}

// blocksStreaming reports whether this executor's implementation of op
// consumes its whole input before emitting (regardless of how the latency
// simulator classifies it).
func blocksStreaming(op plan.PhysicalOp) bool {
	return op.Blocking() || op == plan.PMergeJoin || op == plan.PPartialAggregate
}

// joinSizeHint estimates the build-side row count for pre-sizing.
func joinSizeHint(n *plan.Physical, maxRows int) int {
	r := n.Stats.ActCard
	if r <= 0 {
		r = n.Stats.EstCard
	}
	if r <= 0 || r > float64(maxRows) {
		r = float64(maxRows)
	}
	return int(r)
}

// canonicalOrdered reports whether the subtree's compiled output arrives
// in the exact order a sequential run would produce, even at width > 1:
// true when it is topped (through order-preserving unary operators) by an
// operator whose parallel form emits a canonically ordered single stream
// — a sort (merge-gathered), top-n or merge join (single-instance). A
// stream aggregate may only consume such input; anything else compiles
// its subtree sequentially.
func canonicalOrdered(n *plan.Physical) bool {
	switch n.Op {
	case plan.PSort, plan.PTopN, plan.PMergeJoin:
		return true
	case plan.PFilter, plan.PProject, plan.PProcess, plan.PStreamAggregate,
		plan.PExchange, plan.POutput:
		return len(n.Children) == 1 && canonicalOrdered(n.Children[0])
	default:
		return false
	}
}

// Route salts decorrelate exchange routing from the hashes the receiving
// operators use internally, so partition skew in one doesn't echo in the
// other.
const (
	joinRouteSalt = 0xd1b54a32d192ed03
	aggRouteSalt  = 0x8bb84b93962eacc9
)

// pset is a compiled subtree: one iterator per pipeline instance, all
// emitting the same schema. Instance multiplicity is the stage's width;
// parents either map over instances 1:1 (elementwise operators) or merge
// and redistribute them through exchanges (stage boundaries).
type pset struct {
	its []*instIter
	sch schema
}

// compiler turns a physical plan into pipeline instances. It carries the
// per-run state: the global scan schema, compiled predicates, per-stage
// widths, and the accounting ledger. seq forces sequential (width-1)
// compilation for subtrees whose row order must match a sequential run.
type compiler struct {
	cfg        *StreamConfig
	preds      map[*plan.Physical]*Pred
	sch        schema
	widths     map[*plan.Physical]int
	accts      map[*plan.Physical]*nodeAcct
	seq        bool
	nInstances int64
}

// width resolves an operator's pipeline width: its stage's clamped
// partition count, or 1 under sequential compilation.
func (c *compiler) width(n *plan.Physical) int {
	if c.seq {
		return 1
	}
	if w := c.widths[n]; w > 1 {
		return w
	}
	return 1
}

// wrap ties an iterator instance to its operator's accounting (n == nil
// leaves it unattributed: timed so parents can subtract it, recorded
// nowhere).
func (c *compiler) wrap(n *plan.Physical, inner iterator, kids []*instIter) *instIter {
	var a *nodeAcct
	if n != nil {
		a = c.accts[n]
		if a == nil {
			a = &nodeAcct{}
			c.accts[n] = a
		}
	}
	c.nInstances++
	return &instIter{acct: a, inner: inner, kids: kids}
}

func iterators(its []*instIter) []iterator {
	out := make([]iterator, len(its))
	for i, it := range its {
		out[i] = it
	}
	return out
}

// gatherTo funnels a multi-instance subtree into one stream, attributing
// the movement to node n (an in-plan exchange) when given.
func (c *compiler) gatherTo(p pset, n *plan.Physical) *instIter {
	x := newExchange(xGather, iterators(p.its), 1, c.cfg.BatchSize, nil, c.cfg.Metrics)
	return c.wrap(n, &xRecv{x: x, idx: 0}, nil)
}

// one collapses a compiled subtree to a single stream: a width-1 subtree
// passes through (via an attributed pass when it sat under an in-plan
// exchange), anything wider gathers.
func (c *compiler) one(p pset, n *plan.Physical) *instIter {
	if len(p.its) == 1 {
		if n != nil {
			return c.wrap(n, &passIter{child: p.its[0]}, p.its[:1])
		}
		return p.its[0]
	}
	return c.gatherTo(p, n)
}

// partitionTo hash-repartitions a subtree's rows onto w consumer streams,
// all rows with equal routing hash landing in the same stream. Receivers
// are attributed to node n (nil for implicit repartitions the plan has no
// exchange operator for).
func (c *compiler) partitionTo(p pset, w int, route routeFn, n *plan.Physical) []*instIter {
	x := newExchange(xPartition, iterators(p.its), w, c.cfg.BatchSize, route, c.cfg.Metrics)
	recvs := make([]*instIter, w)
	for i := range recvs {
		recvs[i] = c.wrap(n, &xRecv{x: x, idx: i}, nil)
	}
	return recvs
}

// lookThrough resolves a hash operator's input: when the child is an
// in-plan exchange the operator repartitions anyway, so the exchange's
// own subtree is compiled directly and the node is returned for the
// repartition to be attributed to (its receivers then count exactly the
// rows the reference evaluator attributes to the exchange).
func (c *compiler) lookThrough(n *plan.Physical, os bool) (pset, *plan.Physical, error) {
	if n.Op == plan.PExchange && len(n.Children) == 1 {
		p, err := c.compile(n.Children[0], os)
		return p, n, err
	}
	p, err := c.compile(n, os)
	return p, nil, err
}

// compileOne compiles a subtree and collapses it to a single stream.
func (c *compiler) compileOne(n *plan.Physical, os bool) (*instIter, schema, error) {
	p, x, err := c.lookThrough(n, os)
	if err != nil {
		return nil, nil, err
	}
	return c.one(p, x), p.sch, nil
}

// compile builds the pipeline instances for a subtree. orderSensitive
// (os) tracks whether any ancestor between here and the nearest
// order-canonicalizing operator depends on row order — under such an
// ancestor the symmetric hash join (whose emission order depends on
// arrival interleaving) is not eligible and the classic hash join runs
// instead.
func (c *compiler) compile(n *plan.Physical, os bool) (pset, error) {
	bs := c.cfg.BatchSize
	childOS := os
	switch n.Op {
	case plan.PSort, plan.PTopN, plan.PMergeJoin:
		childOS = false
	case plan.PStreamAggregate:
		childOS = true
	}

	if len(n.Children) == 0 {
		// Any leaf scans its generated table, whatever the operator kind.
		// Parallel scans share one morsel source: the materialized table
		// carved into fixed-size row ranges claimed via an atomic cursor,
		// so instances load-balance instead of pre-splitting.
		w := c.width(n)
		rows := scanRows(n, c.cfg.MaxTableRows)
		if w == 1 {
			return pset{its: []*instIter{c.wrap(n, newScanIter(n.Table, rows, c.sch, bs), nil)}, sch: c.sch}, nil
		}
		src := newMorselSource(n.Table, c.sch, rows)
		its := make([]*instIter, w)
		for i := range its {
			its[i] = c.wrap(n, newMorselScanIter(src, bs), nil)
		}
		return pset{its: its, sch: c.sch}, nil
	}

	switch n.Op {
	case plan.PFilter:
		p, err := c.compile(n.Children[0], childOS)
		if err != nil {
			return pset{}, err
		}
		pr := c.preds[n]
		if pr == nil {
			pr = CompilePred(n.Pred)
		}
		return c.elementwise(n, p, func(kid *instIter) iterator {
			return &filterIter{child: kid, pred: pr.Bind(p.sch)}
		}), nil

	case plan.PProject:
		p, err := c.compile(n.Children[0], childOS)
		if err != nil {
			return pset{}, err
		}
		out := projectSchema(n.Keys, p.sch)
		if out.equal(p.sch) {
			return c.elementwise(n, p, func(kid *instIter) iterator {
				return &passIter{child: kid}
			}), nil
		}
		res := c.elementwise(n, p, func(kid *instIter) iterator {
			return newProjectIter(kid, p.sch, out)
		})
		res.sch = out
		return res, nil

	case plan.PProcess:
		p, err := c.compile(n.Children[0], childOS)
		if err != nil {
			return pset{}, err
		}
		return c.elementwise(n, p, func(kid *instIter) iterator {
			return newProcessIter(kid, n.UDF, p.sch, bs)
		}), nil

	case plan.PHashJoin, plan.PMergeJoin:
		return c.compileJoin(n, os, childOS)

	case plan.PHashAggregate, plan.PPartialAggregate:
		return c.compileHashAgg(n, childOS)

	case plan.PStreamAggregate:
		return c.compileStreamAgg(n, childOS)

	case plan.PSort:
		p, err := c.compile(n.Children[0], childOS)
		if err != nil {
			return pset{}, err
		}
		keyIdx, err := resolveKeys(n.Op, n.Keys, p.sch)
		if err != nil {
			return pset{}, err
		}
		insts := make([]*instIter, len(p.its))
		for i, kid := range p.its {
			insts[i] = c.wrap(n, &sortIter{child: kid, keyIdx: keyIdx, size: bs}, []*instIter{kid})
		}
		if len(insts) == 1 {
			return pset{its: insts, sch: p.sch}, nil
		}
		// Per-instance canonical sorts merge-gather into the exact global
		// order a single sort would emit (the comparator is the same total
		// order), so consumers cannot tell parallel and sequential apart.
		x := newExchange(xMerge, iterators(insts), 1, bs, nil, c.cfg.Metrics)
		merged := c.wrap(nil, &xMergeRecv{x: x, keyIdx: keyIdx}, nil)
		return pset{its: []*instIter{merged}, sch: p.sch}, nil

	case plan.PTopN:
		kid, sch, err := c.compileOne(n.Children[0], childOS)
		if err != nil {
			return pset{}, err
		}
		limit := n.N
		if limit <= 0 {
			limit = 100
		}
		keyIdx, err := resolveKeys(n.Op, n.Keys, sch)
		if err != nil {
			return pset{}, err
		}
		it := c.wrap(n, &topNIter{child: kid, keyIdx: keyIdx, n: limit, size: bs}, []*instIter{kid})
		return pset{its: []*instIter{it}, sch: sch}, nil

	case plan.PUnionAll:
		return c.compileUnion(n, childOS)

	case plan.PExchange:
		return c.compileExchange(n, childOS)

	case plan.POutput:
		p, err := c.compile(n.Children[0], childOS)
		if err != nil {
			return pset{}, err
		}
		return c.elementwise(n, p, func(kid *instIter) iterator {
			return &passIter{child: kid}
		}), nil

	default:
		return pset{}, fmt.Errorf("exec: streaming engine cannot execute operator %v", n.Op)
	}
}

// elementwise maps an operator over its child's instances 1:1 — no data
// movement, each instance fused into its child's pipeline.
func (c *compiler) elementwise(n *plan.Physical, p pset, mk func(kid *instIter) iterator) pset {
	its := make([]*instIter, len(p.its))
	for i, kid := range p.its {
		its[i] = c.wrap(n, mk(kid), []*instIter{kid})
	}
	return pset{its: its, sch: p.sch}
}

// compileExchange handles an exchange consumed by an operator with no
// repartitioning needs of its own. A width-1 input passes through
// (redistributing one shrunken stream isn't worth the copies, and it
// preserves canonical order above sorts); otherwise rows gather to one
// stream or rotate round-robin onto the exchange's width.
func (c *compiler) compileExchange(n *plan.Physical, os bool) (pset, error) {
	p, err := c.compile(n.Children[0], os)
	if err != nil {
		return pset{}, err
	}
	w := c.width(n)
	wc := len(p.its)
	switch {
	case wc == 1:
		return pset{its: []*instIter{c.wrap(n, &passIter{child: p.its[0]}, p.its[:1])}, sch: p.sch}, nil
	case w == 1:
		return pset{its: []*instIter{c.gatherTo(p, n)}, sch: p.sch}, nil
	case w == wc:
		// Same width on both sides: fuse into the producing pipelines.
		return c.elementwise(n, p, func(kid *instIter) iterator {
			return &passIter{child: kid}
		}), nil
	default:
		x := newExchange(xRoundRobin, iterators(p.its), w, c.cfg.BatchSize, nil, c.cfg.Metrics)
		recvs := make([]*instIter, w)
		for i := range recvs {
			recvs[i] = c.wrap(n, &xRecv{x: x, idx: i}, nil)
		}
		return pset{its: recvs, sch: p.sch}, nil
	}
}

func (c *compiler) compileUnion(n *plan.Physical, childOS bool) (pset, error) {
	kids := make([]pset, len(n.Children))
	allOne := true
	for i, ch := range n.Children {
		p, err := c.compile(ch, childOS)
		if err != nil {
			return pset{}, err
		}
		kids[i] = p
		if len(p.its) != 1 {
			allOne = false
		}
	}
	out := kids[0].sch
	if allOne {
		// Sequential concatenation, exactly like a width-1 run.
		children := make([]iterator, len(kids))
		tops := make([]*instIter, len(kids))
		for i, p := range kids {
			tops[i] = p.its[0]
			if p.sch.equal(out) {
				children[i] = p.its[0]
			} else {
				children[i] = newAdaptIter(p.its[0], p.sch, out)
			}
		}
		return pset{its: []*instIter{c.wrap(n, &unionIter{children: children}, tops)}, sch: out}, nil
	}
	// Parallel branches just pool their instances: union-all has no
	// ordering or matching obligations, so no data movement is needed.
	var its []*instIter
	for _, p := range kids {
		for _, kid := range p.its {
			var inner iterator = &passIter{child: kid}
			if !p.sch.equal(out) {
				inner = newAdaptIter(kid, p.sch, out)
			}
			its = append(its, c.wrap(n, inner, []*instIter{kid}))
		}
	}
	return pset{its: its, sch: out}, nil
}

func (c *compiler) compileJoin(n *plan.Physical, os, childOS bool) (pset, error) {
	if len(n.Children) < 2 {
		p, err := c.compile(n.Children[0], childOS)
		if err != nil {
			return pset{}, err
		}
		return c.elementwise(n, p, func(kid *instIter) iterator {
			return &passIter{child: kid}
		}), nil
	}
	lp, lx, err := c.lookThrough(n.Children[0], childOS)
	if err != nil {
		return pset{}, err
	}
	rp, rx, err := c.lookThrough(n.Children[1], childOS)
	if err != nil {
		return pset{}, err
	}
	if len(n.Keys) == 0 {
		// Zero key columns hash every row to the seed constant: the join
		// silently degenerates to an O(n²) cross join. plan.Validate rejects
		// this too, but physical plans can be built directly.
		return pset{}, fmt.Errorf("exec: %v needs at least one equi-join key column", n.Op)
	}
	lKey, err := resolveKeys(n.Op, n.Keys, lp.sch)
	if err != nil {
		return pset{}, err
	}
	rKey, err := resolveKeys(n.Op, n.Keys, rp.sch)
	if err != nil {
		return pset{}, err
	}
	lVal, rVal := lp.sch.valIndex(), rp.sch.valIndex()
	nCols := len(lp.sch)

	if n.Op == plan.PMergeJoin {
		// Merge joins drain and canonically sort both inputs; they run as
		// one instance so their output is a single canonical stream.
		l, r := c.one(lp, lx), c.one(rp, rx)
		it := c.wrap(n, &mergeJoinIter{
			left: l, right: r,
			lKey: lKey, rKey: rKey, lVal: lVal, rVal: rVal,
			nCols: nCols, size: c.cfg.BatchSize,
		}, []*instIter{l, r})
		return pset{its: []*instIter{it}, sch: lp.sch}, nil
	}

	hint := joinSizeHint(n.Children[1], c.cfg.MaxTableRows)
	if c.cfg.SymmetricJoin && !os &&
		streamsOnly(n.Children[0]) && streamsOnly(n.Children[1]) {
		// The symmetric join's whole point is reacting to either input as
		// it arrives; splitting it would interleave per-instance, so it
		// stays single-instance over live gathered streams.
		l, r := c.one(lp, lx), c.one(rp, rx)
		it := c.wrap(n, &symmetricHashJoinIter{
			left: l, right: r,
			lKey: lKey, rKey: rKey, lVal: lVal, rVal: rVal,
			nCols: nCols, sizeHint: hint, size: c.cfg.BatchSize,
		}, []*instIter{l, r})
		return pset{its: []*instIter{it}, sch: lp.sch}, nil
	}

	w := c.width(n)
	if w == 1 {
		l, r := c.one(lp, lx), c.one(rp, rx)
		it := c.wrap(n, &hashJoinIter{
			left: l, right: r,
			lKey: lKey, rKey: rKey, lVal: lVal, rVal: rVal,
			nCols: nCols, sizeHint: hint, size: c.cfg.BatchSize,
		}, []*instIter{l, r})
		return pset{its: []*instIter{it}, sch: lp.sch}, nil
	}

	// Partitioned parallel join: both inputs repartition by the same
	// join-key hash, so every key's rows meet in exactly one instance and
	// the union of instance outputs is exactly the sequential join's
	// output multiset. The movement is attributed to the in-plan exchange
	// children when present — the same rows the reference evaluator counts
	// through them.
	lRecv := c.partitionTo(lp, w, keyRoute(lKey, joinRouteSalt, w), lx)
	rRecv := c.partitionTo(rp, w, keyRoute(rKey, joinRouteSalt, w), rx)
	perHint := hint/w + 16
	its := make([]*instIter, w)
	for i := 0; i < w; i++ {
		its[i] = c.wrap(n, &hashJoinIter{
			left: lRecv[i], right: rRecv[i],
			lKey: lKey, rKey: rKey, lVal: lVal, rVal: rVal,
			nCols: nCols, sizeHint: perHint, size: c.cfg.BatchSize,
		}, []*instIter{lRecv[i], rRecv[i]})
	}
	return pset{its: its, sch: lp.sch}, nil
}

func (c *compiler) compileHashAgg(n *plan.Physical, childOS bool) (pset, error) {
	p, x, err := c.lookThrough(n.Children[0], childOS)
	if err != nil {
		return pset{}, err
	}
	out := aggSchema(n)
	keyIdx, err := resolveKeys(n.Op, out[:len(out)-2], p.sch)
	if err != nil {
		return pset{}, err
	}
	valIdx := p.sch.valIndex()
	extra := int64(0)
	if n.Op == plan.PPartialAggregate {
		extra = partialBuckets
	}
	cntIdx := -1
	if n.Op == plan.PHashAggregate && partialBelow(n.Children[0]) {
		cntIdx = p.sch.index(cntCol)
	}
	mk := func(kid *instIter) *instIter {
		return c.wrap(n, &hashAggIter{
			child:  kid,
			keyIdx: keyIdx,
			valIdx: valIdx,
			cntIdx: cntIdx,
			size:   c.cfg.BatchSize, extraBuckets: extra,
		}, []*instIter{kid})
	}
	w := c.width(n)
	if w == 1 {
		return pset{its: []*instIter{mk(c.one(p, x))}, sch: out}, nil
	}
	// Parallel aggregation repartitions on the grouping hash — including
	// the partial aggregate's sub-group bucket — so each group lives
	// wholly in one instance and the concatenated group sets are exactly
	// the sequential run's.
	recvs := c.partitionTo(p, w, aggRoute(keyIdx, extra, w), x)
	its := make([]*instIter, w)
	for i, r := range recvs {
		its[i] = mk(r)
	}
	return pset{its: its, sch: out}, nil
}

// partialBelow reports whether the node's input is a partial aggregate,
// looking through any exchange chain between the two stages.
func partialBelow(n *plan.Physical) bool {
	for n.Op == plan.PExchange && len(n.Children) == 1 {
		n = n.Children[0]
	}
	return n.Op == plan.PPartialAggregate
}

func (c *compiler) compileStreamAgg(n *plan.Physical, childOS bool) (pset, error) {
	// A stream aggregate groups runs of consecutive equal keys, so its
	// input order must be exactly the sequential run's. Canonically
	// ordered subtrees provide that at any width (sorts merge-gather);
	// anything else compiles sequentially.
	child := n.Children[0]
	prevSeq := c.seq
	if !canonicalOrdered(child) {
		c.seq = true
	}
	kid, sch, err := c.compileOne(child, childOS)
	c.seq = prevSeq
	if err != nil {
		return pset{}, err
	}
	out := aggSchema(n)
	keyIdx, err := resolveKeys(n.Op, out[:len(out)-2], sch)
	if err != nil {
		return pset{}, err
	}
	it := c.wrap(n, &streamAggIter{
		child:  kid,
		keyIdx: keyIdx,
		valIdx: sch.valIndex(),
		size:   c.cfg.BatchSize,
	}, []*instIter{kid})
	return pset{its: []*instIter{it}, sch: out}, nil
}

// keyRoute routes rows by the hash of their key tuple: equal keys — on
// either side of a join — always land in the same destination.
func keyRoute(keyIdx []int, salt uint64, w int) routeFn {
	return func(cols [][]int64, i int) int {
		return int(mix64(keyHash(cols, keyIdx, i)^salt) % uint64(w))
	}
}

// aggRoute routes rows by their grouping identity: the key hash, mixed
// with the partial aggregate's sub-group bucket when present (the same
// combination hashAggIter groups by), so an instance owns whole groups.
func aggRoute(keyIdx []int, extraBuckets int64, w int) routeFn {
	if extraBuckets <= 0 {
		return keyRoute(keyIdx, aggRouteSalt, w)
	}
	return func(cols [][]int64, i int) int {
		h := keyHash(cols, keyIdx, i)
		bucket := rowHash(cols, i) % uint64(extraBuckets)
		return int(mix64(mix64(h^bucket)^aggRouteSalt) % uint64(w))
	}
}
