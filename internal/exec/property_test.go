package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cleo/internal/plan"
)

// mkChain builds Extract -> Filter -> Exchange -> HashAggregate with the
// given cardinalities and partition counts.
func mkChain(card float64, pLeaf, pTop int) *plan.Physical {
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.InputTemplate = "t_"
	leaf.Partitions = pLeaf
	leaf.Stats = plan.NodeStats{EstCard: card, ActCard: card, RowLength: 100}
	f := plan.NewPhysical(plan.PFilter, leaf)
	f.Pred = "p"
	f.Partitions = pLeaf
	f.Stats = plan.NodeStats{EstCard: card / 2, ActCard: card / 2, RowLength: 100}
	x := plan.NewPhysical(plan.PExchange, f)
	x.Keys = []plan.Column{"k"}
	x.Partitions = pTop
	x.Stats = f.Stats
	a := plan.NewPhysical(plan.PHashAggregate, x)
	a.Keys = []plan.Column{"k"}
	a.Partitions = pTop
	a.Stats = plan.NodeStats{EstCard: card / 100, ActCard: card / 100, RowLength: 50}
	return a
}

// Property: true latency is strictly positive and finite for any sane
// cardinality/partition combination.
func TestLatencyPositiveFinite(t *testing.T) {
	cl := noiselessCluster()
	f := func(cardSeed uint32, p1, p2 uint8) bool {
		card := 1 + float64(cardSeed%10_000_000)
		pl := 1 + int(p1)%256
		pt := 1 + int(p2)%256
		root := mkChain(card, pl, pt)
		ok := true
		root.Walk(func(n *plan.Physical) {
			lat := cl.TrueLatency(n)
			if !(lat > 0) || lat > 1e9 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: more input data never makes the true latency of a data-bound
// operator cheaper (holding partitions fixed).
func TestLatencyMonotoneInData(t *testing.T) {
	cl := noiselessCluster()
	f := func(cardSeed uint32, p uint8) bool {
		card := 1000 + float64(cardSeed%1_000_000)
		pp := 1 + int(p)%64
		small := mkChain(card, pp, pp)
		big := mkChain(card*4, pp, pp)
		return cl.TrueLatency(big) >= cl.TrueLatency(small)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: a run's total processing time always covers latency × 1
// container and the container count matches the stage sum.
func TestRunAccountingInvariant(t *testing.T) {
	cl := NewCluster(DefaultConfig(3))
	f := func(seed int64, cardSeed uint32) bool {
		card := 1000 + float64(cardSeed%5_000_000)
		root := mkChain(card, 4, 8)
		res, err := cl.Run(root, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		if res.Latency <= 0 || res.TotalProcessingTime < res.Latency {
			return false
		}
		want := 0
		for _, st := range plan.Stages(root) {
			want += st.Partitions
		}
		return res.Containers == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
