// Equivalence corpus: the streaming engine and the materialize-all
// reference evaluator must produce bit-identical results — output row
// count, order-insensitive output checksum, and per-operator observed
// cardinalities — over every optimized TPC-H query and a generated
// workload sample. The CI race job runs this file under -race, which also
// exercises the executor's batch pool under the race detector.
package exec_test

import (
	"fmt"
	"testing"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/workload"
	"cleo/internal/workload/tpch"
)

var equivCfg = exec.StreamConfig{MaxTableRows: 2500}

// runBoth executes the plan on both backends (each on its own clone) and
// diffs everything observable.
func runBoth(t *testing.T, name string, p *plan.Physical) {
	t.Helper()
	ps := p.Clone()
	pr := p.Clone()
	rs, err := exec.NewEngine(equivCfg).Run(ps, nil)
	if err != nil {
		t.Fatalf("%s: streaming: %v", name, err)
	}
	rr, err := exec.NewReference(equivCfg).Run(pr, nil)
	if err != nil {
		t.Fatalf("%s: reference: %v", name, err)
	}
	if rs.OutputRows != rr.OutputRows {
		t.Fatalf("%s: output rows differ: streaming %d, reference %d", name, rs.OutputRows, rr.OutputRows)
	}
	if rs.OutputChecksum != rr.OutputChecksum {
		t.Fatalf("%s: output checksums differ: %x vs %x", name, rs.OutputChecksum, rr.OutputChecksum)
	}
	if rs.OutputRows > 0 && rs.OutputChecksum == 0 {
		t.Fatalf("%s: rows with zero checksum", name)
	}

	// Per-operator observed cardinalities must match node for node.
	var sn, rn []*plan.Physical
	ps.Walk(func(n *plan.Physical) { sn = append(sn, n) })
	pr.Walk(func(n *plan.Physical) { rn = append(rn, n) })
	if len(sn) != len(rn) {
		t.Fatalf("%s: clone shape mismatch", name)
	}
	for i := range sn {
		if sn[i].Stats.ActCard != rn[i].Stats.ActCard {
			t.Fatalf("%s: %v rows differ: streaming %v, reference %v",
				name, sn[i].Op, sn[i].Stats.ActCard, rn[i].Stats.ActCard)
		}
		if sn[i].ExclusiveActual < 0 {
			t.Fatalf("%s: %v negative exclusive time", name, sn[i].Op)
		}
	}

	// Both backends are themselves deterministic: a re-run of the
	// streaming engine reproduces the result bit for bit.
	rs2, err := exec.NewEngine(equivCfg).Run(p.Clone(), nil)
	if err != nil {
		t.Fatalf("%s: streaming rerun: %v", name, err)
	}
	if rs2.OutputRows != rs.OutputRows || rs2.OutputChecksum != rs.OutputChecksum {
		t.Fatalf("%s: streaming engine not deterministic", name)
	}

	// The symmetric-join engine reorders emissions but must preserve the
	// output multiset: same rows, same order-insensitive checksum.
	symCfg := equivCfg
	symCfg.SymmetricJoin = true
	rsym, err := exec.NewEngine(symCfg).Run(p.Clone(), nil)
	if err != nil {
		t.Fatalf("%s: symmetric-join engine: %v", name, err)
	}
	if rsym.OutputRows != rs.OutputRows || rsym.OutputChecksum != rs.OutputChecksum {
		t.Fatalf("%s: symmetric-join engine diverged: rows %d vs %d, checksum %x vs %x",
			name, rsym.OutputRows, rs.OutputRows, rsym.OutputChecksum, rs.OutputChecksum)
	}
}

func TestStreamingMatchesReferenceTPCH(t *testing.T) {
	cat := stats.NewCatalog(1)
	tpch.Register(cat, 1)
	for q := 1; q <= 22; q++ {
		q := q
		t.Run(fmt.Sprintf("Q%d", q), func(t *testing.T) {
			o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
				MaxPartitions: 3000, JobSeed: int64(q)}
			res, err := o.Optimize(tpch.Queries()[q]())
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			runBoth(t, fmt.Sprintf("Q%d", q), res.Plan)
		})
	}
}

// TestStreamingMatchesReferenceWorkload widens operator coverage beyond
// TPC-H: the generated workload includes UDF processors, unions and top-n
// shapes.
func TestStreamingMatchesReferenceWorkload(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Clusters = 1
	cfg.Days = 1
	cfg.TemplatesPerCluster = 12
	cfg.InstancesPerTemplatePerDay = 1
	tr := workload.Generate(cfg)
	if len(tr.Jobs) == 0 {
		t.Fatal("empty workload")
	}
	for i, job := range tr.Jobs {
		if i >= 16 {
			break
		}
		o := &cascades.Optimizer{Catalog: tr.Catalogs[job.Cluster], Cost: costmodel.Default{},
			MaxPartitions: 3000, JobSeed: job.Seed}
		res, err := o.Optimize(job.Query)
		if err != nil {
			t.Fatalf("job %s: optimize: %v", job.ID, err)
		}
		runBoth(t, job.ID, res.Plan)
	}
}

// TestStreamingCoversAllPlannedOperators asserts the corpus above isn't
// vacuous: across the optimized plans, every physical operator the
// optimizer can emit (except exchange-free singletons that never appear)
// shows up at least once.
func TestStreamingCoversAllPlannedOperators(t *testing.T) {
	seen := map[plan.PhysicalOp]bool{}
	collect := func(p *plan.Physical) {
		p.Walk(func(n *plan.Physical) { seen[n.Op] = true })
	}
	cat := stats.NewCatalog(1)
	tpch.Register(cat, 1)
	for q := 1; q <= 22; q++ {
		o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
			MaxPartitions: 3000, JobSeed: int64(q)}
		res, err := o.Optimize(tpch.Queries()[q]())
		if err != nil {
			t.Fatal(err)
		}
		collect(res.Plan)
	}
	cfg := workload.DefaultConfig()
	cfg.Clusters, cfg.Days, cfg.TemplatesPerCluster, cfg.InstancesPerTemplatePerDay = 1, 1, 12, 1
	tr := workload.Generate(cfg)
	for i, job := range tr.Jobs {
		if i >= 16 {
			break
		}
		o := &cascades.Optimizer{Catalog: tr.Catalogs[job.Cluster], Cost: costmodel.Default{},
			MaxPartitions: 3000, JobSeed: job.Seed}
		res, err := o.Optimize(job.Query)
		if err != nil {
			t.Fatal(err)
		}
		collect(res.Plan)
	}
	for _, op := range []plan.PhysicalOp{
		plan.PExtract, plan.PFilter, plan.PHashJoin, plan.PHashAggregate,
		plan.PExchange, plan.POutput,
	} {
		if !seen[op] {
			t.Fatalf("corpus never exercises %v", op)
		}
	}
	t.Logf("operators covered by the equivalence corpus: %v", opNames(seen))
}

func opNames(seen map[plan.PhysicalOp]bool) []string {
	var out []string
	for _, op := range plan.AllPhysicalOps() {
		if seen[op] {
			out = append(out, op.String())
		}
	}
	return out
}
