// Equivalence corpus: the streaming engine and the materialize-all
// reference evaluator must produce bit-identical results — output row
// count, order-insensitive output checksum, and per-operator observed
// cardinalities — over every optimized TPC-H query and a generated
// workload sample, at pipeline widths 1, 2 and 4. The CI race job runs
// this file under -race, which also exercises the exchange operators,
// morsel scans and the executor's batch pool under the race detector.
package exec_test

import (
	"fmt"
	"testing"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/workload"
	"cleo/internal/workload/tpch"
)

var equivCfg = exec.StreamConfig{MaxTableRows: 2500, MaxWorkers: 1}

// equivWidths are the pipeline widths the whole corpus runs at: the
// sequential baseline plus two parallel widths (including one above this
// machine's core count — goroutine interleaving, not core count, is what
// correctness depends on).
var equivWidths = []int{1, 2, 4}

// runBoth executes the plan on the reference backend and on the streaming
// engine at every equivalence width (each run on its own clone) and diffs
// everything observable.
func runBoth(t *testing.T, name string, p *plan.Physical) {
	t.Helper()
	pr := p.Clone()
	rr, err := exec.NewReference(equivCfg).Run(pr, nil)
	if err != nil {
		t.Fatalf("%s: reference: %v", name, err)
	}
	var rn []*plan.Physical
	pr.Walk(func(n *plan.Physical) { rn = append(rn, n) })

	for _, w := range equivWidths {
		cfg := equivCfg
		cfg.MaxWorkers = w
		ps := p.Clone()
		rs, err := exec.NewEngine(cfg).Run(ps, nil)
		if err != nil {
			t.Fatalf("%s/w%d: streaming: %v", name, w, err)
		}
		if rs.OutputRows != rr.OutputRows {
			t.Fatalf("%s/w%d: output rows differ: streaming %d, reference %d", name, w, rs.OutputRows, rr.OutputRows)
		}
		if rs.OutputChecksum != rr.OutputChecksum {
			t.Fatalf("%s/w%d: output checksums differ: %x vs %x", name, w, rs.OutputChecksum, rr.OutputChecksum)
		}
		if rs.OutputRows > 0 && rs.OutputChecksum == 0 {
			t.Fatalf("%s/w%d: rows with zero checksum", name, w)
		}

		// Per-operator observed cardinalities must match node for node:
		// partitioned execution may never create, drop or double-count a
		// row anywhere in the plan.
		var sn []*plan.Physical
		ps.Walk(func(n *plan.Physical) { sn = append(sn, n) })
		if len(sn) != len(rn) {
			t.Fatalf("%s/w%d: clone shape mismatch", name, w)
		}
		for i := range sn {
			if sn[i].Stats.ActCard != rn[i].Stats.ActCard {
				t.Fatalf("%s/w%d: %v rows differ: streaming %v, reference %v",
					name, w, sn[i].Op, sn[i].Stats.ActCard, rn[i].Stats.ActCard)
			}
			if sn[i].ExclusiveActual < 0 {
				t.Fatalf("%s/w%d: %v negative exclusive time", name, w, sn[i].Op)
			}
		}

		// Each width is itself deterministic: a re-run reproduces the
		// result bit for bit regardless of goroutine interleaving.
		rs2, err := exec.NewEngine(cfg).Run(p.Clone(), nil)
		if err != nil {
			t.Fatalf("%s/w%d: streaming rerun: %v", name, w, err)
		}
		if rs2.OutputRows != rs.OutputRows || rs2.OutputChecksum != rs.OutputChecksum {
			t.Fatalf("%s/w%d: streaming engine not deterministic", name, w)
		}

		// The symmetric-join engine reorders emissions but must preserve
		// the output multiset: same rows, same order-insensitive checksum.
		symCfg := cfg
		symCfg.SymmetricJoin = true
		rsym, err := exec.NewEngine(symCfg).Run(p.Clone(), nil)
		if err != nil {
			t.Fatalf("%s/w%d: symmetric-join engine: %v", name, w, err)
		}
		if rsym.OutputRows != rr.OutputRows || rsym.OutputChecksum != rr.OutputChecksum {
			t.Fatalf("%s/w%d: symmetric-join engine diverged: rows %d vs %d, checksum %x vs %x",
				name, w, rsym.OutputRows, rr.OutputRows, rsym.OutputChecksum, rr.OutputChecksum)
		}
	}
}

func TestStreamingMatchesReferenceTPCH(t *testing.T) {
	cat := stats.NewCatalog(1)
	tpch.Register(cat, 1)
	for q := 1; q <= 22; q++ {
		q := q
		t.Run(fmt.Sprintf("Q%d", q), func(t *testing.T) {
			o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
				MaxPartitions: 3000, JobSeed: int64(q)}
			res, err := o.Optimize(tpch.Queries()[q]())
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			runBoth(t, fmt.Sprintf("Q%d", q), res.Plan)
		})
	}
}

// TestStreamingMatchesReferenceWorkload widens operator coverage beyond
// TPC-H: the generated workload includes UDF processors, unions and top-n
// shapes.
func TestStreamingMatchesReferenceWorkload(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Clusters = 1
	cfg.Days = 1
	cfg.TemplatesPerCluster = 12
	cfg.InstancesPerTemplatePerDay = 1
	tr := workload.Generate(cfg)
	if len(tr.Jobs) == 0 {
		t.Fatal("empty workload")
	}
	for i, job := range tr.Jobs {
		if i >= 16 {
			break
		}
		o := &cascades.Optimizer{Catalog: tr.Catalogs[job.Cluster], Cost: costmodel.Default{},
			MaxPartitions: 3000, JobSeed: job.Seed}
		res, err := o.Optimize(job.Query)
		if err != nil {
			t.Fatalf("job %s: optimize: %v", job.ID, err)
		}
		runBoth(t, job.ID, res.Plan)
	}
}

// TestStreamingCoversAllPlannedOperators asserts the corpus above isn't
// vacuous: across the optimized plans, every physical operator the
// optimizer can emit (except exchange-free singletons that never appear)
// shows up at least once.
func TestStreamingCoversAllPlannedOperators(t *testing.T) {
	seen := map[plan.PhysicalOp]bool{}
	collect := func(p *plan.Physical) {
		p.Walk(func(n *plan.Physical) { seen[n.Op] = true })
	}
	cat := stats.NewCatalog(1)
	tpch.Register(cat, 1)
	for q := 1; q <= 22; q++ {
		o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
			MaxPartitions: 3000, JobSeed: int64(q)}
		res, err := o.Optimize(tpch.Queries()[q]())
		if err != nil {
			t.Fatal(err)
		}
		collect(res.Plan)
	}
	cfg := workload.DefaultConfig()
	cfg.Clusters, cfg.Days, cfg.TemplatesPerCluster, cfg.InstancesPerTemplatePerDay = 1, 1, 12, 1
	tr := workload.Generate(cfg)
	for i, job := range tr.Jobs {
		if i >= 16 {
			break
		}
		o := &cascades.Optimizer{Catalog: tr.Catalogs[job.Cluster], Cost: costmodel.Default{},
			MaxPartitions: 3000, JobSeed: job.Seed}
		res, err := o.Optimize(job.Query)
		if err != nil {
			t.Fatal(err)
		}
		collect(res.Plan)
	}
	for _, op := range []plan.PhysicalOp{
		plan.PExtract, plan.PFilter, plan.PHashJoin, plan.PHashAggregate,
		plan.PExchange, plan.POutput,
	} {
		if !seen[op] {
			t.Fatalf("corpus never exercises %v", op)
		}
	}
	t.Logf("operators covered by the equivalence corpus: %v", opNames(seen))
}

func opNames(seen map[plan.PhysicalOp]bool) []string {
	var out []string
	for _, op := range plan.AllPhysicalOps() {
		if seen[op] {
			out = append(out, op.String())
		}
	}
	return out
}
