// Rewrite-equivalence corpus: every transformation rule must be
// semantics-preserving under execution, not just by argument. For each
// query the optimizer runs twice — once with the full rule set and once
// with rules disabled (the plan as written) — and the rewritten plan's
// streaming output must be bit-identical (row count and order-insensitive
// checksum) to the reference evaluator's result on the UNREWRITTEN plan.
// Combined with runBoth (streaming ≡ reference on the rewritten plan at
// widths 1/2/4, per-node cardinalities included), this pins the whole
// chain: rules change the plan, never the answer.
package exec_test

import (
	"fmt"
	"testing"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/exec"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/workload"
	"cleo/internal/workload/tpch"
)

// optimizeWith plans q under the given rule set and reports fired rules.
func optimizeWith(t *testing.T, cat *stats.Catalog, q *plan.Logical, seed int64, rules *cascades.RuleSet) (*plan.Physical, map[string]uint64) {
	t.Helper()
	o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Default{},
		MaxPartitions: 3000, JobSeed: seed, Rules: rules}
	res, err := o.Optimize(q)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	return res.Plan, res.RuleFires
}

// runRewriteCase proves one query's rewritten best plan equivalent to its
// unrewritten one by execution, and returns the rules that fired.
func runRewriteCase(t *testing.T, name string, cat *stats.Catalog, q *plan.Logical, seed int64) map[string]uint64 {
	t.Helper()
	on, fires := optimizeWith(t, cat, q, seed, cascades.DefaultRules())
	off, offFires := optimizeWith(t, cat, q, seed, cascades.EmptyRules())
	if len(offFires) != 0 {
		t.Fatalf("%s: EmptyRules fired rules: %v", name, offFires)
	}

	// The rewritten plan agrees with itself across engines and widths.
	runBoth(t, name, on)

	// And its answer is the unrewritten plan's answer.
	base, err := exec.NewReference(equivCfg).Run(off.Clone(), nil)
	if err != nil {
		t.Fatalf("%s: reference on unrewritten plan: %v", name, err)
	}
	got, err := exec.NewReference(equivCfg).Run(on.Clone(), nil)
	if err != nil {
		t.Fatalf("%s: reference on rewritten plan: %v", name, err)
	}
	if got.OutputRows != base.OutputRows || got.OutputChecksum != base.OutputChecksum {
		t.Fatalf("%s: rewritten plan changed the answer: rows %d vs %d, checksum %x vs %x\nrewritten:   %s\nunrewritten: %s",
			name, got.OutputRows, base.OutputRows, got.OutputChecksum, base.OutputChecksum,
			on, off)
	}
	return fires
}

func mergeFires(into map[string]uint64, from map[string]uint64) {
	for k, v := range from {
		into[k] += v
	}
}

func TestRewrittenPlansMatchUnrewrittenTPCH(t *testing.T) {
	cat := stats.NewCatalog(1)
	tpch.Register(cat, 1)
	fired := map[string]uint64{}
	for q := 1; q <= 22; q++ {
		q := q
		t.Run(fmt.Sprintf("Q%d", q), func(t *testing.T) {
			mergeFires(fired, runRewriteCase(t, fmt.Sprintf("Q%d", q), cat, tpch.Queries()[q](), int64(q)))
		})
	}
	if len(fired) == 0 {
		t.Fatal("no rule fired across TPC-H — the corpus is vacuous")
	}
	t.Logf("TPC-H rule fires: %v", fired)
}

func TestRewrittenPlansMatchUnrewrittenWorkload(t *testing.T) {
	cfg := workload.DefaultConfig()
	cfg.Clusters = 1
	cfg.Days = 1
	cfg.TemplatesPerCluster = 12
	cfg.InstancesPerTemplatePerDay = 1
	tr := workload.Generate(cfg)
	if len(tr.Jobs) == 0 {
		t.Fatal("empty workload")
	}
	for i, job := range tr.Jobs {
		if i >= 16 {
			break
		}
		runRewriteCase(t, job.ID, tr.Catalogs[job.Cluster], job.Query, job.Seed)
	}
}

// ruleCatalog registers the tables the hand-built corpus scans.
func ruleCatalog() *stats.Catalog {
	cat := stats.NewCatalog(7)
	cat.PutTable("facts", stats.TableStats{Rows: 2e6, RowLength: 96})
	cat.PutTable("dims", stats.TableStats{Rows: 4e4, RowLength: 64})
	cat.PutTable("tags", stats.TableStats{Rows: 8e4, RowLength: 48})
	return cat
}

// TestRewrittenPlansMatchUnrewrittenRuleCorpus aims one query at each rule
// so every rewrite is proven by execution even where TPC-H's shapes don't
// reach it, and asserts per-case that the targeted rule actually fired.
func TestRewrittenPlansMatchUnrewrittenRuleCorpus(t *testing.T) {
	join2 := func() *plan.Logical { // (facts ⋈k0 dims) with a filter above
		return plan.NewJoin(plan.NewGet("facts", "facts_"), plan.NewGet("dims", "dims_"), "f.k0=d.k0", "k0")
	}
	cases := []struct {
		name string
		rule string
		q    *plan.Logical
	}{
		{"exchange_two_joins", "join_exchange", plan.NewOutput(plan.NewAggregate(
			plan.NewJoin(join2(), plan.NewGet("tags", "tags_"), "f.k1=t.k1", "k1"), "k0"))},
		{"assoc_same_key_chain", "join_assoc", plan.NewOutput(plan.NewAggregate(
			plan.NewJoin(join2(), plan.NewGet("tags", "tags_"), "f.k0=t.k0", "k0"), "k0"))},
		{"pred_to_probe_and_build", "pred_pushdown_join", plan.NewOutput(plan.NewAggregate(
			plan.NewSelect(join2(), "k0<9000"), "k0"))},
		{"pred_to_probe_only", "pred_pushdown_join", plan.NewOutput(plan.NewAggregate(
			plan.NewSelect(join2(), "k1<7000"), "k1"))},
		{"pred_over_union", "pred_pushdown_union", plan.NewOutput(plan.NewAggregate(
			plan.NewSelect(plan.NewUnion(plan.NewGet("facts", "facts_"), plan.NewGet("tags", "tags_")), "k0<5000"), "k0"))},
		{"bare_pred_over_union", "pred_pushdown_union", plan.NewOutput(plan.NewAggregate(
			plan.NewSelect(plan.NewUnion(plan.NewGet("facts", "facts_"), plan.NewGet("tags", "tags_")), "sampled"), "k0"))},
		{"pred_over_agg", "pred_pushdown_agg", plan.NewOutput(plan.NewSort(
			plan.NewSelect(plan.NewAggregate(plan.NewGet("facts", "facts_"), "k0"), "k0<6000"), "k0"))},
		{"project_over_join", "project_pushdown_join", plan.NewOutput(plan.NewAggregate(
			plan.NewProject(plan.NewJoin(plan.NewGet("facts", "facts_"), plan.NewGet("dims", "dims_"), "f.k0=d.k0", "k0"), "k1"), "k1"))},
	}
	for i, tc := range cases {
		tc := tc
		i := i
		t.Run(tc.name, func(t *testing.T) {
			fires := runRewriteCase(t, tc.name, ruleCatalog(), tc.q, int64(100+i))
			if fires[tc.rule] == 0 {
				t.Fatalf("targeted rule %s did not fire (fires: %v)", tc.rule, fires)
			}
		})
	}
}
