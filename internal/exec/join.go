package exec

import "sort"

// Equi-join iterators. All three variants share conventions with the
// simulator's cost model: child 0 is the probe/left input, child 1 the
// build/right input, and the join output is shaped like the LEFT input —
// a matched pair emits the left row with its payload combined with the
// right row's payload (wrapping add, so the combination is order-free).

// keyHash hashes the join-key tuple of row i. Missing key columns (idx
// -1) contribute the constant 0, identically on both sides.
func keyHash(cols [][]int64, idxs []int, i int) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, ix := range idxs {
		var v int64
		if ix >= 0 {
			v = cols[ix][i]
		}
		h = mix64(h ^ uint64(v))
	}
	return h
}

// buildTable is a drained, hashed join input: key columns plus payload,
// stored columnar, with a pre-sized open-addressed hash index over the key
// tuple (linear probing, one slot per distinct key hash). Rows sharing a
// key chain in insertion order, so candidates emit in the same order the
// reference evaluator produces them.
type buildTable struct {
	keys    [][]int64 // one slice per join key
	val     []int64
	rowHash []uint64 // per row, for cheap reindexing on growth

	slots []joinSlot // open-addressed index
	next  []int32    // per row, -1 = end of chain
	mask  uint64
	n     int
}

// joinSlot packs a slot's key hash and chain ends into 16 bytes so a probe
// resolves its slot with a single cache-line touch.
type joinSlot struct {
	hash       uint64
	head, tail int32 // head -1 = empty
}

func nextPow2(n int) int {
	p := 32
	for p < n {
		p <<= 1
	}
	return p
}

func newBuildTable(nKeys, sizeHint int) *buildTable {
	if sizeHint < 16 {
		sizeHint = 16
	}
	if sizeHint > 1<<20 {
		sizeHint = 1 << 20
	}
	bt := &buildTable{keys: make([][]int64, nKeys)}
	for i := range bt.keys {
		bt.keys[i] = make([]int64, 0, sizeHint)
	}
	bt.val = make([]int64, 0, sizeHint)
	bt.rowHash = make([]uint64, 0, sizeHint)
	bt.next = make([]int32, 0, sizeHint)
	bt.reindex(nextPow2(2 * sizeHint))
	return bt
}

// reindex rebuilds the slot arrays at the given power-of-two capacity and
// relinks every stored row; chains keep insertion order because rows
// relink in row order.
func (bt *buildTable) reindex(slots int) {
	bt.slots = make([]joinSlot, slots)
	for i := range bt.slots {
		bt.slots[i].head = -1
	}
	bt.mask = uint64(slots - 1)
	for r := 0; r < bt.n; r++ {
		bt.link(bt.rowHash[r], int32(r))
	}
}

// link appends row to its key-hash chain, claiming a slot by linear
// probing. Occupied slots never exceed half the table (add grows first),
// so the probe always terminates.
func (bt *buildTable) link(h uint64, row int32) {
	s := h & bt.mask
	for bt.slots[s].head != -1 && bt.slots[s].hash != h {
		s = (s + 1) & bt.mask
	}
	bt.next[row] = -1
	if bt.slots[s].head == -1 {
		bt.slots[s].hash = h
		bt.slots[s].head = row
	} else {
		bt.next[bt.slots[s].tail] = row
	}
	bt.slots[s].tail = row
}

// add inserts row i of cols, reading keys via keyIdx and payload via
// valIdx (-1 = 0).
func (bt *buildTable) add(cols [][]int64, keyIdx []int, valIdx, i int) {
	h := keyHash(cols, keyIdx, i)
	for k, ix := range keyIdx {
		var v int64
		if ix >= 0 {
			v = cols[ix][i]
		}
		bt.keys[k] = append(bt.keys[k], v)
	}
	var v int64
	if valIdx >= 0 {
		v = cols[valIdx][i]
	}
	bt.val = append(bt.val, v)
	bt.rowHash = append(bt.rowHash, h)
	bt.next = append(bt.next, -1)
	row := int32(bt.n)
	bt.n++
	if 2*bt.n > len(bt.slots) {
		bt.reindex(2 * len(bt.slots)) // relinks row too
	} else {
		bt.link(h, row)
	}
}

// probeHeads resolves every probe row's chain head in one pass and
// appends them to dst (-1 = no hash match). Consecutive rows' slot
// lookups are independent, so the CPU overlaps their cache misses —
// worth ~2x over probing row-at-a-time on large build tables.
func (bt *buildTable) probeHeads(cols [][]int64, keyIdx []int, n int, dst []int32) []int32 {
	slots, mask := bt.slots, bt.mask
	if len(keyIdx) == 1 && keyIdx[0] >= 0 {
		col := cols[keyIdx[0]]
		for i := 0; i < n; i++ {
			h := mix64(0x9e3779b97f4a7c15 ^ uint64(col[i]))
			s := h & mask
			for slots[s].head != -1 && slots[s].hash != h {
				s = (s + 1) & mask
			}
			dst = append(dst, slots[s].head)
		}
		return dst
	}
	for i := 0; i < n; i++ {
		h := keyHash(cols, keyIdx, i)
		s := h & mask
		for slots[s].head != -1 && slots[s].hash != h {
			s = (s + 1) & mask
		}
		dst = append(dst, slots[s].head)
	}
	return dst
}

// matches verifies hash candidates by key equality and appends true
// matches to dst.
func (bt *buildTable) matches(cols [][]int64, keyIdx []int, i int, dst []int32) []int32 {
	h := keyHash(cols, keyIdx, i)
	s := h & bt.mask
	for bt.slots[s].head != -1 && bt.slots[s].hash != h {
		s = (s + 1) & bt.mask
	}
	m := bt.slots[s].head
	if m == -1 {
		return dst
	}
	if len(keyIdx) == 1 {
		// Single-key joins dominate; verify with a branch-free chain walk.
		var v int64
		if ix := keyIdx[0]; ix >= 0 {
			v = cols[ix][i]
		}
		k0, next := bt.keys[0], bt.next
		for ; m != -1; m = next[m] {
			if k0[m] == v {
				dst = append(dst, m)
			}
		}
		return dst
	}
next:
	for ; m != -1; m = bt.next[m] {
		for k, ix := range keyIdx {
			var v int64
			if ix >= 0 {
				v = cols[ix][i]
			}
			if bt.keys[k][m] != v {
				continue next
			}
		}
		dst = append(dst, m)
	}
	return dst
}

// hashJoinIter is the classic blocking hash join: Open drains the build
// (right) child into a pre-sized buildTable, Next streams the probe
// (left) child against it. Matches are emitted in probe order, and within
// one probe row in build-insertion order — the same order the reference
// evaluator produces.
type hashJoinIter struct {
	left, right iterator
	lKey, rKey  []int
	lVal, rVal  int
	nCols       int
	sizeHint    int
	size        int

	build *buildTable
	out   *Batch
	pb    *Batch
	pi    int
	heads []int32 // per probe row, chain head (-1 = none)
	cm    int32   // cursor into the current row's chain; -2 = row not started
}

func (j *hashJoinIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.build = newBuildTable(len(j.rKey), j.sizeHint)
	for {
		b, err := j.right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for i := 0; i < b.N; i++ {
			j.build.add(b.Cols, j.rKey, j.rVal, i)
		}
	}
	j.out = getBatch(j.nCols, j.size)
	j.pb, j.pi, j.cm = nil, 0, -2
	j.heads = j.heads[:0]
	return nil
}

// Next probes in two passes per input batch: probeHeads resolves every
// row's chain head up front (overlapping the hash-index cache misses),
// then the emission loop walks chains, verifies keys and copies matches.
func (j *hashJoinIter) Next() (*Batch, error) {
	filled := 0
	singleKey := len(j.lKey) == 1 && j.lKey[0] >= 0 && len(j.build.keys) == 1
	for {
		if j.pb == nil {
			b, err := j.left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				if filled > 0 {
					j.out.N = filled
					return j.out, nil
				}
				return nil, nil
			}
			j.pb, j.pi, j.cm = b, 0, -2
			j.heads = j.build.probeHeads(b.Cols, j.lKey, b.N, j.heads[:0])
		}
		cols, next, bval := j.pb.Cols, j.build.next, j.build.val
		for j.pi < j.pb.N {
			m := j.cm
			if m == -2 {
				m = j.heads[j.pi]
			}
			if singleKey {
				k0, v := j.build.keys[0], cols[j.lKey[0]][j.pi]
				for m != -1 {
					if k0[m] != v {
						m = next[m]
						continue
					}
					if filled == j.size {
						j.cm = m
						j.out.N = filled
						return j.out, nil // out full mid-chain; resume at m
					}
					for c := 0; c < j.nCols; c++ {
						j.out.Cols[c][filled] = cols[c][j.pi]
					}
					if j.lVal >= 0 {
						j.out.Cols[j.lVal][filled] = cols[j.lVal][j.pi] + bval[m]
					}
					filled++
					m = next[m]
				}
			} else {
			chain:
				for m != -1 {
					for k, ix := range j.lKey {
						var v int64
						if ix >= 0 {
							v = cols[ix][j.pi]
						}
						if j.build.keys[k][m] != v {
							m = next[m]
							continue chain
						}
					}
					if filled == j.size {
						j.cm = m
						j.out.N = filled
						return j.out, nil
					}
					for c := 0; c < j.nCols; c++ {
						j.out.Cols[c][filled] = cols[c][j.pi]
					}
					if j.lVal >= 0 {
						j.out.Cols[j.lVal][filled] = cols[j.lVal][j.pi] + bval[m]
					}
					filled++
					m = next[m]
				}
			}
			j.cm = -2
			j.pi++
		}
		j.pb = nil
		if filled >= j.size {
			j.out.N = filled
			return j.out, nil
		}
	}
}

func (j *hashJoinIter) Close() {
	putBatch(j.out)
	j.out = nil
	j.build = nil
	j.left.Close()
	j.right.Close()
}

// symmetricHashJoinIter joins two live streams without blocking on either:
// both sides build hash tables incrementally, and each arriving batch
// probes the other side's table-so-far. Every matching pair is emitted
// exactly once (when its later row arrives), so the output multiset equals
// the classic join's — but the emission order depends on arrival
// interleaving, which is why the planner only picks this variant when no
// order-sensitive operator consumes it.
type symmetricHashJoinIter struct {
	left, right iterator
	lKey, rKey  []int
	lVal, rVal  int
	nCols       int
	sizeHint    int
	size        int

	lRows *colStore   // full left rows, for right-arrival emissions
	lTab  *buildTable // left keys indexed (payload unused; lRows holds it)
	rTab  *buildTable

	lDone, rDone bool
	pullLeft     bool
	out          *Batch
	cand         []int32
}

func (j *symmetricHashJoinIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	j.lRows = newColStore(j.nCols, j.sizeHint)
	j.lTab = newBuildTable(len(j.lKey), j.sizeHint)
	j.rTab = newBuildTable(len(j.rKey), j.sizeHint)
	j.lDone, j.rDone = false, false
	j.pullLeft = true
	j.out = getBatch(j.nCols, j.size)
	return nil
}

func (j *symmetricHashJoinIter) emitLeftRow(cols [][]int64, i int, rightVal int64, filled *int) {
	if *filled >= len(j.out.Cols[0]) {
		j.growOut()
	}
	for c := 0; c < j.nCols; c++ {
		j.out.Cols[c][*filled] = cols[c][i]
	}
	if j.lVal >= 0 {
		j.out.Cols[j.lVal][*filled] = cols[j.lVal][i] + rightVal
	}
	*filled++
}

// growOut doubles the output batch: one input batch can match arbitrarily
// many stored rows, and a symmetric join step is atomic.
func (j *symmetricHashJoinIter) growOut() {
	n := len(j.out.Cols[0])
	bigger := getBatch(j.nCols, 2*n)
	for c := range j.out.Cols {
		copy(bigger.Cols[c], j.out.Cols[c])
	}
	putBatch(j.out)
	j.out = bigger
}

func (j *symmetricHashJoinIter) Next() (*Batch, error) {
	filled := 0
	for filled == 0 {
		if j.lDone && j.rDone {
			return nil, nil
		}
		// Strict alternation keeps both tables balanced and the join
		// non-blocking on either input.
		fromLeft := j.pullLeft && !j.lDone || j.rDone
		j.pullLeft = !j.pullLeft
		if fromLeft {
			b, err := j.left.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				j.lDone = true
				continue
			}
			for i := 0; i < b.N; i++ {
				j.cand = j.rTab.matches(b.Cols, j.lKey, i, j.cand[:0])
				for _, m := range j.cand {
					j.emitLeftRow(b.Cols, i, j.rTab.val[m], &filled)
				}
				j.lTab.add(b.Cols, j.lKey, -1, i)
				j.lRows.appendRow(b.Cols, i)
			}
		} else {
			b, err := j.right.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				j.rDone = true
				continue
			}
			for i := 0; i < b.N; i++ {
				var rv int64
				if j.rVal >= 0 {
					rv = b.Cols[j.rVal][i]
				}
				j.cand = j.lTab.matches(b.Cols, j.rKey, i, j.cand[:0])
				for _, m := range j.cand {
					j.emitLeftRow(j.lRows.cols, int(m), rv, &filled)
				}
				j.rTab.add(b.Cols, j.rKey, j.rVal, i)
			}
		}
	}
	j.out.N = filled
	return j.out, nil
}

func (j *symmetricHashJoinIter) Close() {
	putBatch(j.out)
	j.out = nil
	j.lRows, j.lTab, j.rTab = nil, nil, nil
	j.left.Close()
	j.right.Close()
}

// mergeJoinIter materializes and canonically sorts both inputs by the
// join keys (then by every column, for a total order), then merges
// equal-key runs with a nested cross product. Because the sort is
// canonical, its output order is independent of input order — the merge
// join doubles as an order-restoring barrier above a symmetric join.
type mergeJoinIter struct {
	left, right iterator
	lKey, rKey  []int
	lVal, rVal  int
	nCols       int
	size        int

	ls, rs     *colStore
	lIdx, rIdx []int32
	li, ri     int
	out        *Batch

	// current equal-key run and cursors within it
	l1, r1, cl, cr int
	inRun          bool
}

// idxSorter implements sort.Interface over a row-index permutation with a
// concrete type: sort.Stable on it avoids the reflect-based swapper that
// sort.SliceStable pays on every exchange.
type idxSorter struct {
	idx []int32
	cs  *colStore
	key []int
}

func (s *idxSorter) Len() int      { return len(s.idx) }
func (s *idxSorter) Swap(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] }
func (s *idxSorter) Less(i, j int) bool {
	return s.cs.compareRows(int(s.idx[i]), int(s.idx[j]), s.key) < 0
}

func sortedIndex(cs *colStore, keyIdx []int) []int32 {
	idx := make([]int32, cs.n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Stable(&idxSorter{idx: idx, cs: cs, key: keyIdx})
	return idx
}

// compareKeys orders the key tuple of ls[li] against rs[ri].
func compareKeys(ls *colStore, li int, lKey []int, rs *colStore, ri int, rKey []int) int {
	for k := range lKey {
		var lv, rv int64
		if lKey[k] >= 0 {
			lv = ls.cols[lKey[k]][li]
		}
		if rKey[k] >= 0 {
			rv = rs.cols[rKey[k]][ri]
		}
		if lv != rv {
			if lv < rv {
				return -1
			}
			return 1
		}
	}
	return 0
}

func (j *mergeJoinIter) Open() error {
	if err := j.left.Open(); err != nil {
		return err
	}
	if err := j.right.Open(); err != nil {
		return err
	}
	var err error
	if j.ls, err = drainStoreAll(j.left); err != nil {
		return err
	}
	if j.rs, err = drainStoreAll(j.right); err != nil {
		return err
	}
	j.lIdx = sortedIndex(j.ls, j.lKey)
	j.rIdx = sortedIndex(j.rs, j.rKey)
	j.li, j.ri, j.inRun = 0, 0, false
	j.out = getBatch(j.nCols, j.size)
	return nil
}

// drainStoreAll materializes an input whose width is discovered from its
// first batch (the right side of a merge join may have any schema).
func drainStoreAll(it iterator) (*colStore, error) {
	var cs *colStore
	for {
		b, err := it.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if cs == nil {
				cs = newColStore(0, 0)
			}
			return cs, nil
		}
		if cs == nil {
			cs = newColStore(len(b.Cols), DefaultBatchSize)
		}
		for i := 0; i < b.N; i++ {
			cs.appendRow(b.Cols, i)
		}
	}
}

func (j *mergeJoinIter) Next() (*Batch, error) {
	filled := 0
	for {
		if !j.inRun {
			// Advance to the next pair of equal-key runs.
			for j.li < len(j.lIdx) && j.ri < len(j.rIdx) {
				c := compareKeys(j.ls, int(j.lIdx[j.li]), j.lKey, j.rs, int(j.rIdx[j.ri]), j.rKey)
				if c < 0 {
					j.li++
				} else if c > 0 {
					j.ri++
				} else {
					break
				}
			}
			if j.li >= len(j.lIdx) || j.ri >= len(j.rIdx) {
				if filled > 0 {
					j.out.N = filled
					return j.out, nil
				}
				return nil, nil
			}
			j.l1 = j.li + 1
			for j.l1 < len(j.lIdx) &&
				compareKeys(j.ls, int(j.lIdx[j.l1]), j.lKey, j.rs, int(j.rIdx[j.ri]), j.rKey) == 0 {
				j.l1++
			}
			j.r1 = j.ri + 1
			for j.r1 < len(j.rIdx) &&
				compareKeys(j.ls, int(j.lIdx[j.li]), j.lKey, j.rs, int(j.rIdx[j.r1]), j.rKey) == 0 {
				j.r1++
			}
			j.cl, j.cr = j.li, j.ri
			j.inRun = true
		}
		for j.cl < j.l1 {
			l := int(j.lIdx[j.cl])
			for j.cr < j.r1 && filled < j.size {
				r := int(j.rIdx[j.cr])
				for c := 0; c < j.nCols; c++ {
					j.out.Cols[c][filled] = j.ls.cols[c][l]
				}
				if j.lVal >= 0 {
					var rv int64
					if j.rVal >= 0 {
						rv = j.rs.cols[j.rVal][r]
					}
					j.out.Cols[j.lVal][filled] = j.ls.cols[j.lVal][l] + rv
				}
				j.cr++
				filled++
			}
			if j.cr < j.r1 {
				j.out.N = filled
				return j.out, nil // out full mid-run
			}
			j.cr = j.ri
			j.cl++
		}
		j.inRun = false
		j.li, j.ri = j.l1, j.r1
		if filled >= j.size {
			j.out.N = filled
			return j.out, nil
		}
	}
}

func (j *mergeJoinIter) Close() {
	putBatch(j.out)
	j.out = nil
	j.ls, j.rs = nil, nil
	j.left.Close()
	j.right.Close()
}
