package exec

import (
	"sort"
	"sync"
	"sync/atomic"

	"cleo/internal/plan"
)

// The streaming executor runs plans against deterministic generated
// tables: every cell is a pure function of (table name, row index, column
// name), so any two backends — and any two runs — see bit-identical data
// without materializing anything up front. Join columns share their value
// domain across tables (the domain derives from the column name alone),
// so equi-joins on a common key actually match, and key domains are small
// enough that aggregates genuinely reduce.

// Reserved derived columns. Every scan carries a full-range payload column
// __val; aggregates emit __cnt/__sum from it.
const (
	valCol = plan.Column("__val")
	cntCol = plan.Column("__cnt")
	sumCol = plan.Column("__sum")
)

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// strHash is FNV-1a over the string bytes.
func strHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unitFromHash maps a hash to [0, 1).
func unitFromHash(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// colDomain is the value domain of a named column: [4096, 65536), derived
// from the column name alone so the same key column in two tables shares a
// domain and equi-joins match. The payload column is full-range.
func colDomain(c plan.Column) int64 {
	if c == valCol {
		return 0 // full range
	}
	return 4096 + int64(strHash(string(c))%61440)
}

// tableSeed derives the per-table generation seed.
func tableSeed(name string) uint64 {
	return mix64(strHash(name) ^ 0xc1e0c1e0c1e0c1e0)
}

// colValue generates the cell at (seed, row) for a column with hash colH
// and domain dom (0 = full range).
func colValue(seed uint64, row int64, colH uint64, dom int64) int64 {
	v := mix64(seed ^ mix64(uint64(row)) ^ colH)
	if dom <= 0 {
		return int64(v)
	}
	return int64(v % uint64(dom))
}

// A generated table is a pure function of (table name, schema, row count),
// so one materialization can back every scan of it — across runs, backends
// and goroutines. The cache stands in for stored data: real executors read
// tables, they don't recompute them, and without it every scan would pay
// the mix64 generation chain per cell per run. Entries are immutable;
// scans copy cells out and never write. The cell budget bounds resident
// memory; once exhausted, further tables generate uncached.
var (
	tableCache      sync.Map // tableCacheKey -> *tableEntry
	tableCacheCells atomic.Int64
)

const tableCacheBudget = 16 << 20 // cells (128 MiB of int64s)

type tableCacheKey struct {
	seed    uint64
	schemaH uint64
	rows    int64
}

// tableEntry is a singleflight cache slot: whichever caller wins the
// LoadOrStore generates the table inside once; concurrent callers for the
// same key block on the same once instead of each generating a private
// copy and racing to publish it. Under parallel execution every instance
// of every scan hits this path at Open, so duplicate generation was the
// dominant shared-state contention on the parallel hot path.
type tableEntry struct {
	once sync.Once
	cs   *colStore
}

// materializeTable returns the generated table's columns. The result is
// shared and immutable — callers must copy cells out, never write them.
func materializeTable(table string, sch schema, rows int64) *colStore {
	seed := tableSeed(table)
	schemaH := uint64(len(sch))
	for _, c := range sch {
		schemaH = mix64(schemaH ^ strHash(string(c)))
	}
	key := tableCacheKey{seed: seed, schemaH: schemaH, rows: rows}
	v, _ := tableCache.LoadOrStore(key, &tableEntry{})
	e := v.(*tableEntry)
	e.once.Do(func() {
		cs := newColStore(len(sch), int(rows))
		for c, col := range sch {
			colH, dom := strHash(string(col)), colDomain(col)
			dst := cs.cols[c][:rows]
			for i := int64(0); i < rows; i++ {
				dst[i] = colValue(seed, i, colH, dom)
			}
			cs.cols[c] = dst
		}
		cs.n = int(rows)
		e.cs = cs
		if cells := rows * int64(len(sch)); tableCacheCells.Add(cells) > tableCacheBudget {
			// Over budget: hand the table to current waiters but drop the
			// slot so it doesn't stay resident; later runs regenerate.
			tableCacheCells.Add(-cells)
			tableCache.Delete(key)
		}
	})
	return e.cs
}

// schema is an ordered column list; every iterator knows the schema of the
// batches it emits.
type schema []plan.Column

// index returns the position of c, or -1.
func (s schema) index(c plan.Column) int {
	for i, x := range s {
		if x == c {
			return i
		}
	}
	return -1
}

// valIndex locates the payload column an operator should combine or sum:
// __val when present, else an upstream aggregate's __sum, else __cnt.
func (s schema) valIndex() int {
	if i := s.index(valCol); i >= 0 {
		return i
	}
	if i := s.index(sumCol); i >= 0 {
		return i
	}
	return s.index(cntCol)
}

// equal reports whether two schemas are identical.
func (s schema) equal(o schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// maxScanColumns caps the generated scan width; plans referencing more
// distinct columns read 0 for the overflow (consistently in every backend).
const maxScanColumns = 24

// scanSchema derives the one global scan schema for a plan: the sorted,
// de-duplicated union of every operator's keys and every compiled
// predicate's referenced identifiers, plus the payload column __val.
// A single global schema keeps joins and unions trivially schema-compatible.
func scanSchema(root *plan.Physical, preds map[*plan.Physical]*Pred) schema {
	set := map[plan.Column]bool{}
	root.Walk(func(n *plan.Physical) {
		for _, k := range n.Keys {
			set[k] = true
		}
		if p := preds[n]; p != nil {
			for _, c := range p.Idents() {
				set[c] = true
			}
		}
	})
	delete(set, valCol)
	delete(set, cntCol)
	delete(set, sumCol)
	cols := make([]plan.Column, 0, len(set)+1)
	for c := range set {
		cols = append(cols, c)
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
	if len(cols) > maxScanColumns {
		cols = cols[:maxScanColumns]
	}
	return append(cols, valCol)
}

// ScanColumnSet derives the non-payload column set of the global scan
// schema that every backend builds for a plan with the given key lists and
// predicate strings: sorted, de-duplicated, reserved columns removed,
// truncated at the scan-width cap. The optimizer's transformation rules use
// it to decide whether a predicate column is bound at a scan-schema
// position — the truncation means "referenced somewhere in the plan" is not
// enough on extremely wide plans.
func ScanColumnSet(keys []plan.Column, preds []string) []plan.Column {
	set := map[plan.Column]bool{}
	for _, k := range keys {
		set[k] = true
	}
	for _, p := range preds {
		for _, c := range CompilePred(p).Idents() {
			set[c] = true
		}
	}
	delete(set, valCol)
	delete(set, cntCol)
	delete(set, sumCol)
	cols := make([]plan.Column, 0, len(set))
	for c := range set {
		cols = append(cols, c)
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
	if len(cols) > maxScanColumns {
		cols = cols[:maxScanColumns]
	}
	return cols
}

// rowHash hashes row i of a batch (a mix64 chain over the column values,
// in schema order) — the basis of multiset checksums and of pseudo-random
// per-row decisions (UDF fanout, unbound predicates).
func rowHash(cols [][]int64, i int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h = mix64(h ^ uint64(c[i]))
	}
	return h
}

// colStore is a materialized column-major row store used by blocking
// operators (sort, merge join, top-n, the reference side of joins).
type colStore struct {
	cols [][]int64
	n    int
}

func newColStore(nCols, capRows int) *colStore {
	cs := &colStore{cols: make([][]int64, nCols)}
	for i := range cs.cols {
		cs.cols[i] = make([]int64, 0, capRows)
	}
	return cs
}

// appendRow copies row i of b.
func (cs *colStore) appendRow(cols [][]int64, i int) {
	for c := range cs.cols {
		cs.cols[c] = append(cs.cols[c], cols[c][i])
	}
	cs.n++
}

// compareRows orders two stored rows by the key columns (keyIdxs, -1
// entries compare equal) and then by every column in schema order — a
// total order, so canonical sorts are deterministic regardless of input
// order.
func (cs *colStore) compareRows(i, j int, keyIdxs []int) int {
	for _, k := range keyIdxs {
		if k < 0 {
			continue
		}
		if a, b := cs.cols[k][i], cs.cols[k][j]; a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	for c := range cs.cols {
		if a, b := cs.cols[c][i], cs.cols[c][j]; a != b {
			if a < b {
				return -1
			}
			return 1
		}
	}
	return 0
}
