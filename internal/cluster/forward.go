package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Request routing: every tenant-scoped /v1/* request is owned by the
// tenant's ring owner. A request landing elsewhere is forwarded down the
// replica preference list — owner first, then followers — with one
// attempt and a per-hop timeout per candidate; when the walk reaches this
// node itself (it is a follower), the request is served locally from the
// replicated state, which is the warm-failover path. Forwarded requests
// carry a loop-guard header and are never re-forwarded: a node receiving
// one either is a replica (serves) or rejects with 508, so disagreeing
// ring views degrade to one extra hop, never a cycle.

// ForwardHeader marks a request as already forwarded once; its value is
// the sending node's id.
const ForwardHeader = "X-Cleo-Forwarded-By"

// maxForwardBody bounds the request body buffered for tenant extraction
// and forwarding — matches the serving layer's request-body cap.
const maxForwardBody = 1 << 20

// retryableStatus reports response codes that mean "this replica cannot
// serve the tenant, try the next": a loop reject (ring disagreement) or a
// proxy-level unavailability. Application errors (4xx, 5xx from the
// handler itself) are returned to the client as-is.
func retryableStatus(code int) bool {
	return code == http.StatusLoopDetected || code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// Handler wraps the serving API with the cluster routing layer and mounts
// the internal peer endpoints:
//
//	POST /internal/cluster/replicate   snapshot push from a tenant's owner
//	GET  /internal/cluster/info        node identity, membership, placement
func (c *Cluster) Handler(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/cluster/replicate", c.handleReplicate)
	mux.HandleFunc("GET /internal/cluster/info", c.handleInfo)
	mux.Handle("/", c.route(api))
	return mux
}

// route is the forwarding middleware around the serving API.
func (c *Cluster) route(api http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant, body, ok := extractTenant(w, r)
		if !ok {
			return // extractTenant already wrote the error
		}
		if tenant == "" {
			api.ServeHTTP(w, r) // not tenant-scoped: always local
			return
		}
		replicas := c.Replicas(tenant)
		selfAt := indexOf(replicas, c.self)

		if from := r.Header.Get(ForwardHeader); from != "" {
			// Already forwarded once: serve if we are a replica, reject
			// otherwise. Never forward again.
			if selfAt >= 0 {
				api.ServeHTTP(w, r)
				return
			}
			c.loopRejects.Add(1)
			c.obs.noteLoopReject()
			c.log.Warn("cluster: loop guard rejected forwarded request",
				"tenant", tenant, "from", from, "owner", replicas[0])
			writeJSONError(w, http.StatusLoopDetected,
				"node %s is not a replica of tenant %q (forwarded by %s; ring views disagree?)",
				c.self, tenant, from)
			return
		}
		if selfAt == 0 {
			api.ServeHTTP(w, r) // we own the tenant
			return
		}

		// Walk the preference list: peers ahead of us get one forwarding
		// attempt each; reaching ourselves means every preferred replica
		// was down, and we serve from local (replicated) state.
		for i, node := range replicas {
			if node == c.self {
				c.localFallbacks.Add(1)
				c.obs.noteLocalFallback()
				c.log.Info("cluster: serving as fallback replica",
					"tenant", tenant, "owner", replicas[0])
				api.ServeHTTP(w, r)
				return
			}
			if c.isDown(node) && anyReachableAfter(replicas[i+1:], c, true) {
				continue // skip a known-dead peer when a candidate remains
			}
			if c.forwardTo(node, w, r, body) {
				return
			}
			c.markDown(node)
		}
		writeJSONError(w, http.StatusServiceUnavailable,
			"tenant %q: no reachable replica (owner %s)", tenant, replicas[0])
	})
}

// anyReachableAfter reports whether any of rest could still take the
// request: a peer not marked down, or this node itself (includeSelf).
func anyReachableAfter(rest []string, c *Cluster, includeSelf bool) bool {
	for _, n := range rest {
		if n == c.self {
			if includeSelf {
				return true
			}
			continue
		}
		if !c.isDown(n) {
			return true
		}
	}
	return false
}

// forwardTo proxies the request to one peer. It reports true when a
// response was relayed to the client (success or a non-retryable error)
// and false when the hop failed and the caller should try the next
// candidate.
func (c *Cluster) forwardTo(node string, w http.ResponseWriter, r *http.Request, body []byte) bool {
	base := c.peers[node]
	u := base + r.URL.RequestURI()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
	if err != nil {
		c.forwardErrors.Add(1)
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(ForwardHeader, c.self)
	t0 := time.Now()
	resp, err := c.fwdClient.Do(req)
	if err != nil {
		c.forwardErrors.Add(1)
		c.obs.noteForward(time.Since(t0), true)
		c.log.Warn("cluster: forward failed", "peer", node, "err", err)
		return false
	}
	defer resp.Body.Close()
	if retryableStatus(resp.StatusCode) {
		c.forwardErrors.Add(1)
		c.obs.noteForward(time.Since(t0), true)
		return false
	}
	c.forwards.Add(1)
	c.obs.noteForward(time.Since(t0), false)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// extractTenant pulls the tenant name a request is scoped to, buffering
// (and restoring) the body for POST routes whose tenant lives in the JSON.
// Non-tenant-scoped routes return "". A false return means the request was
// already answered (unreadable body).
func extractTenant(w http.ResponseWriter, r *http.Request) (tenant string, body []byte, ok bool) {
	switch {
	case r.Method == http.MethodPost && (r.URL.Path == "/v1/query" || r.URL.Path == "/v1/retrain"):
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxForwardBody))
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "reading request body: %v", err)
			return "", nil, false
		}
		r.Body = io.NopCloser(bytes.NewReader(b))
		// A partial probe only; the handler re-decodes strictly, so a
		// malformed body routes locally and fails there with a real error.
		var probe struct {
			Tenant string `json:"tenant"`
		}
		_ = json.Unmarshal(b, &probe)
		return probe.Tenant, b, true
	case r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/tenants/"):
		rest := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
		if name, _, found := strings.Cut(rest, "/"); found && name != "" {
			return name, nil, true
		}
		return "", nil, true
	case r.URL.Path == "/v1/models" || r.URL.Path == "/v1/stats":
		return r.URL.Query().Get("tenant"), nil, true
	default:
		return "", nil, true
	}
}

func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return -1
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
