package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"cleo/internal/obs"
	"cleo/internal/serve"
)

// Config configures one cluster node.
type Config struct {
	// NodeID is this node's id; it must be a key of Peers.
	NodeID string
	// Peers maps every member node id (including this one) to its base
	// URL, e.g. {"n1": "http://10.0.0.1:8080", ...}. Membership is static
	// for the life of the process; every node must be configured with the
	// same set so the rings agree.
	Peers map[string]string
	// ReplicationFactor is the number of nodes holding each tenant —
	// owner plus followers (default 2, clamped to the cluster size).
	// Followers receive the owner's snapshot artifacts after every
	// publish, so losing the owner fails over warm.
	ReplicationFactor int
	// ForwardTimeout bounds each forwarding hop (default 2s): a dead or
	// hung peer costs at most this before the next candidate is tried.
	ForwardTimeout time.Duration
	// ReplicateTimeout bounds each replication push (default 10s; model
	// snapshots are larger than queries).
	ReplicateTimeout time.Duration
	// ReplicateRetries is how many times a failed replication push is
	// retried per follower (default 2) before it is dropped — the next
	// publish ships a strictly newer version anyway.
	ReplicateRetries int
	// PeerDownTTL is how long a peer that failed a forward is skipped
	// before being probed again (default 1s), so a dead owner does not
	// cost every request a connect timeout.
	PeerDownTTL time.Duration
	// Metrics, when non-nil, registers the cleo_cluster_* instruments.
	Metrics *obs.Registry
	// Logger receives forwarding and replication notices (default
	// slog.Default).
	Logger *slog.Logger
}

// Cluster is one node's view of the peer group: the shared ring, the
// forwarding proxy state, and the replication pipeline. Create with New,
// mount via Handler, stop with Close.
type Cluster struct {
	self  string
	peers map[string]string // id -> base URL
	ring  *Ring
	rf    int
	svc   *serve.Service
	log   *slog.Logger

	fwdClient *http.Client // per-hop forward timeout
	repClient *http.Client // replication pushes

	replicateRetries int
	peerDownTTL      time.Duration

	// down memoizes recent forward failures per peer (unix nanos of the
	// failure) so follow-up requests skip a known-dead peer fast.
	down sync.Map // node id -> int64

	wg      sync.WaitGroup
	closing atomic.Bool

	// Counters mirror the cleo_cluster_* metrics for /v1/stats.
	forwards          atomic.Uint64
	forwardErrors     atomic.Uint64
	localFallbacks    atomic.Uint64
	loopRejects       atomic.Uint64
	replicationsSent  atomic.Uint64
	replicationErrors atomic.Uint64
	replicaInstalls   atomic.Uint64

	obs *clusterObs // nil without Config.Metrics
}

// New builds the node, registers the replication publish hook and the
// /v1/stats cluster section on svc, and returns it. The HTTP side only
// goes live when Handler's result is mounted.
func New(cfg Config, svc *serve.Service) (*Cluster, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: empty node id")
	}
	if _, ok := cfg.Peers[cfg.NodeID]; !ok {
		return nil, fmt.Errorf("cluster: node id %q not in peers", cfg.NodeID)
	}
	nodes := make([]string, 0, len(cfg.Peers))
	for id, base := range cfg.Peers {
		if _, err := url.Parse(base); err != nil || base == "" {
			return nil, fmt.Errorf("cluster: peer %q: bad base URL %q", id, base)
		}
		nodes = append(nodes, id)
	}
	rf := cfg.ReplicationFactor
	if rf <= 0 {
		rf = 2
	}
	if rf > len(nodes) {
		rf = len(nodes)
	}
	fwdTimeout := cfg.ForwardTimeout
	if fwdTimeout <= 0 {
		fwdTimeout = 2 * time.Second
	}
	repTimeout := cfg.ReplicateTimeout
	if repTimeout <= 0 {
		repTimeout = 10 * time.Second
	}
	retries := cfg.ReplicateRetries
	if retries < 0 {
		retries = 0
	} else if retries == 0 {
		retries = 2
	}
	downTTL := cfg.PeerDownTTL
	if downTTL <= 0 {
		downTTL = time.Second
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	c := &Cluster{
		self:             cfg.NodeID,
		peers:            cfg.Peers,
		ring:             NewRing(nodes),
		rf:               rf,
		svc:              svc,
		log:              logger.With("node", cfg.NodeID),
		fwdClient:        &http.Client{Timeout: fwdTimeout},
		repClient:        &http.Client{Timeout: repTimeout},
		replicateRetries: retries,
		peerDownTTL:      downTTL,
		obs:              newClusterObs(cfg.Metrics),
	}
	c.obs.setRingNodes(len(nodes))
	svc.OnPublish(c.onPublish)
	svc.SetClusterInfo(func() any { return c.Stats() })
	return c, nil
}

// Self returns this node's id.
func (c *Cluster) Self() string { return c.self }

// ReplicationFactor returns the effective (clamped) replication factor.
func (c *Cluster) ReplicationFactor() int { return c.rf }

// Replicas returns a tenant's replica preference list, owner first.
func (c *Cluster) Replicas(tenant string) []string {
	return c.ring.Lookup(tenant, c.rf)
}

// Owner returns a tenant's owning node id.
func (c *Cluster) Owner(tenant string) string { return c.ring.Owner(tenant) }

// markDown memoizes a failed peer so the next requests skip it until the
// TTL expires.
func (c *Cluster) markDown(node string) {
	c.down.Store(node, time.Now().UnixNano())
}

// isDown reports whether a peer failed within the TTL.
func (c *Cluster) isDown(node string) bool {
	v, ok := c.down.Load(node)
	if !ok {
		return false
	}
	if time.Since(time.Unix(0, v.(int64))) > c.peerDownTTL {
		c.down.Delete(node)
		return false
	}
	return true
}

// Stats snapshots the node's cluster state for /v1/stats.
type Stats struct {
	// Node is this node's id; Nodes is the ring membership (sorted).
	Node  string   `json:"node"`
	Nodes []string `json:"nodes"`
	// ReplicationFactor is the effective copies-per-tenant count.
	ReplicationFactor int `json:"replication_factor"`
	// Forwards counts requests proxied to a peer; ForwardErrors counts
	// hops that failed (timeout, refused) before the next candidate was
	// tried; LocalFallbacks counts requests a non-owner replica served
	// itself after the nodes ahead of it were unreachable.
	Forwards       uint64 `json:"forwards"`
	ForwardErrors  uint64 `json:"forward_errors,omitempty"`
	LocalFallbacks uint64 `json:"local_fallbacks,omitempty"`
	// LoopRejects counts forwarded requests refused because this node is
	// not a replica of the tenant — a ring-view disagreement guard.
	LoopRejects uint64 `json:"loop_rejects,omitempty"`
	// ReplicationsSent / ReplicationErrors count snapshot pushes to
	// followers; ReplicaInstalls counts pushes received and installed.
	ReplicationsSent  uint64 `json:"replications_sent"`
	ReplicationErrors uint64 `json:"replication_errors,omitempty"`
	ReplicaInstalls   uint64 `json:"replica_installs"`
}

// Stats snapshots the node's cluster counters.
func (c *Cluster) Stats() Stats {
	return Stats{
		Node:              c.self,
		Nodes:             c.ring.Nodes(),
		ReplicationFactor: c.rf,
		Forwards:          c.forwards.Load(),
		ForwardErrors:     c.forwardErrors.Load(),
		LocalFallbacks:    c.localFallbacks.Load(),
		LoopRejects:       c.loopRejects.Load(),
		ReplicationsSent:  c.replicationsSent.Load(),
		ReplicationErrors: c.replicationErrors.Load(),
		ReplicaInstalls:   c.replicaInstalls.Load(),
	}
}

// Close stops accepting replication work and waits for in-flight pushes.
// The service itself is closed by its owner.
func (c *Cluster) Close() {
	c.closing.Store(true)
	c.wg.Wait()
}

// infoResponse is the GET /internal/cluster/info body — node identity,
// membership and (optionally) one tenant's placement, used by operators
// and the multi-node smoke test to locate a tenant's owner.
type infoResponse struct {
	Node              string   `json:"node"`
	Nodes             []string `json:"nodes"`
	ReplicationFactor int      `json:"replication_factor"`
	Tenant            string   `json:"tenant,omitempty"`
	Owner             string   `json:"owner,omitempty"`
	Replicas          []string `json:"replicas,omitempty"`
}

func (c *Cluster) handleInfo(w http.ResponseWriter, r *http.Request) {
	resp := infoResponse{
		Node:              c.self,
		Nodes:             c.ring.Nodes(),
		ReplicationFactor: c.rf,
	}
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		resp.Tenant = tenant
		resp.Replicas = c.Replicas(tenant)
		resp.Owner = resp.Replicas[0]
	}
	writeJSON(w, http.StatusOK, resp)
}
