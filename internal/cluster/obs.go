package cluster

import (
	"time"

	"cleo/internal/obs"
)

// clusterObs bundles the cleo_cluster_* instruments. A nil receiver (no
// Config.Metrics) disables every hook, matching the layer-off convention
// of the other subsystems.
type clusterObs struct {
	ringNodes          *obs.Gauge
	forwards           *obs.Counter
	forwardErrors      *obs.Counter
	localFallbacks     *obs.Counter
	loopRejects        *obs.Counter
	forwardSeconds     *obs.Histogram
	replicationsSent   *obs.Counter
	replicationErrors  *obs.Counter
	replicaInstalls    *obs.Counter
	replicationSeconds *obs.Histogram
}

func newClusterObs(r *obs.Registry) *clusterObs {
	if r == nil {
		return nil
	}
	return &clusterObs{
		ringNodes: r.Gauge("cleo_cluster_ring_nodes",
			"Nodes in the consistent-hash ring (static membership)."),
		forwards: r.Counter("cleo_cluster_forwards_total",
			"Tenant requests forwarded to a peer node."),
		forwardErrors: r.Counter("cleo_cluster_forward_errors_total",
			"Forward hops that failed (timeout or connection error) before the next replica was tried."),
		localFallbacks: r.Counter("cleo_cluster_local_fallbacks_total",
			"Requests a non-owner replica served locally after the nodes ahead of it were unreachable."),
		loopRejects: r.Counter("cleo_cluster_loop_rejects_total",
			"Forwarded requests rejected by the loop guard (receiving node not a replica of the tenant)."),
		forwardSeconds: r.Histogram("cleo_cluster_forward_seconds",
			"Latency of forwarded hops, successful or not."),
		replicationsSent: r.Counter("cleo_cluster_replications_total",
			"Snapshot replication pushes acknowledged by followers."),
		replicationErrors: r.Counter("cleo_cluster_replication_errors_total",
			"Snapshot replication pushes that exhausted their retries."),
		replicaInstalls: r.Counter("cleo_cluster_replica_installs_total",
			"Replicated model versions received and installed warm."),
		replicationSeconds: r.Histogram("cleo_cluster_replication_seconds",
			"Replication lag: time from model publish to follower acknowledgement."),
	}
}

func (o *clusterObs) setRingNodes(n int) {
	if o != nil {
		o.ringNodes.Set(int64(n))
	}
}

func (o *clusterObs) noteForward(d time.Duration, err bool) {
	if o == nil {
		return
	}
	o.forwardSeconds.Record(d)
	if err {
		o.forwardErrors.Inc()
	} else {
		o.forwards.Inc()
	}
}

func (o *clusterObs) noteLocalFallback() {
	if o != nil {
		o.localFallbacks.Inc()
	}
}

func (o *clusterObs) noteLoopReject() {
	if o != nil {
		o.loopRejects.Inc()
	}
}

func (o *clusterObs) noteReplication(lag time.Duration, err bool) {
	if o == nil {
		return
	}
	if err {
		o.replicationErrors.Inc()
		return
	}
	o.replicationsSent.Inc()
	o.replicationSeconds.Record(lag)
}

func (o *clusterObs) noteReplicaInstall() {
	if o != nil {
		o.replicaInstalls.Inc()
	}
}
