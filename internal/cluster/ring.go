// Package cluster is cleoserve's scale-out layer: a static-membership
// peer group that consistent-hashes tenants across nodes with a
// configurable replication factor, replicates model snapshot artifacts
// from each tenant's owner to its followers on every publish (so a node
// loss fails over warm), and transparently forwards tenant-scoped /v1/*
// requests that land on a non-owner node — with a per-hop timeout, a
// bounded walk down the replica preference list, and a loop-guard header
// so disagreeing ring views can never bounce a request forever. It layers
// entirely on the serving and persistence subsystems: the artifacts it
// ships are internal/persist's atomic, versioned snapshot files, and the
// warm failover it provides is internal/serve's registry install.
package cluster

import (
	"sort"
)

// ringVnodes is the number of virtual nodes each physical node projects
// onto the ring. 64 keeps per-node load within a few percent of fair for
// small clusters while the ring stays tiny (N*64 entries).
const ringVnodes = 64

// vnode is one virtual point on the ring.
type vnode struct {
	hash uint64
	node int // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring over a fixed node set.
// Lookup walks clockwise from the key's position collecting distinct
// nodes, so adding or removing one node only moves the tenants whose arcs
// it owned — the property that makes failover and (future) membership
// changes cheap.
type Ring struct {
	nodes  []string
	vnodes []vnode // sorted by hash
}

// NewRing builds a ring over the given node ids (order-insensitive; the
// ids are sorted internally so every node derives the identical ring).
func NewRing(nodes []string) *Ring {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	r := &Ring{nodes: sorted}
	r.vnodes = make([]vnode, 0, len(sorted)*ringVnodes)
	for i, n := range sorted {
		for v := 0; v < ringVnodes; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: ringHash(n, v), node: i})
		}
	}
	sort.Slice(r.vnodes, func(i, k int) bool { return r.vnodes[i].hash < r.vnodes[k].hash })
	return r
}

// Nodes returns the ring's member ids, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Size reports the number of physical nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Lookup returns the key's replica preference list: the owner first, then
// the next n-1 distinct nodes clockwise. n is clamped to the node count.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.nodes) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n < 1 {
		n = 1
	}
	h := keyHash(key)
	// First vnode clockwise of the key's position (wrapping).
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]struct{}, n)
	for k := 0; k < len(r.vnodes) && len(out) < n; k++ {
		vn := r.vnodes[(i+k)%len(r.vnodes)]
		if _, dup := seen[vn.node]; dup {
			continue
		}
		seen[vn.node] = struct{}{}
		out = append(out, r.nodes[vn.node])
	}
	return out
}

// Owner returns the key's owning node.
func (r *Ring) Owner(key string) string {
	l := r.Lookup(key, 1)
	if len(l) == 0 {
		return ""
	}
	return l[0]
}

// ringHash positions one virtual node. FNV-1a over "node#i", finalized
// with a splitmix64-style mix: FNV alone clusters short sequential inputs,
// and clustered vnodes skew arc ownership.
func ringHash(node string, v int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(node); i++ {
		h = (h ^ uint64(node[i])) * 1099511628211
	}
	h = (h ^ '#') * 1099511628211
	h = (h ^ uint64(v&0xff)) * 1099511628211
	h = (h ^ uint64((v>>8)&0xff)) * 1099511628211
	return mix64(h)
}

// keyHash positions a tenant key on the ring.
func keyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer — full-avalanche so nearby inputs
// land far apart on the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
