package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"cleo/internal/learned"
	"cleo/internal/persist"
	"cleo/internal/serve"
	"cleo/internal/stats"
)

// Snapshot replication: after every local model publish, the publishing
// node ships the version's artifacts — the manifest, the serialized
// predictor exactly as the snapshot store writes it, and the tenant's
// table-statistics catalog — to every other replica of the tenant. The
// follower installs the version warm (live in its registry under the
// origin id) and persists the same bytes to its own state directory, so
// both a failover and a follower restart serve the latest learned model
// with no retrain and no client-supplied stats.

// maxReplicateBody bounds a replication push body. Model stores are a few
// hundred KB per family at realistic workload sizes; 64 MiB leaves room
// for very large ensembles without letting a peer exhaust memory.
const maxReplicateBody = 64 << 20

// replicatePayload is the POST /internal/cluster/replicate body.
type replicatePayload struct {
	Tenant   string           `json:"tenant"`
	Manifest persist.Manifest `json:"manifest"`
	// Model is the serialized predictor (learned.Predictor.Save output),
	// embedded raw so followers persist bit-identical artifacts.
	Model json.RawMessage `json:"model"`
	// Tables is the owner's table-statistics catalog at publish time.
	Tables map[string]stats.TableStats `json:"tables,omitempty"`
}

// manifestFromInfo converts registry metadata to the durable manifest
// form shipped to followers.
func manifestFromInfo(info serve.ModelVersionInfo) persist.Manifest {
	return persist.Manifest{
		ID:           info.ID,
		TrainedAt:    info.TrainedAt,
		TrainRecords: info.TrainRecords,
		NumModels:    info.NumModels,
		Accuracy:     info.Accuracy,
	}
}

// infoFromManifest is the inverse of manifestFromInfo.
func infoFromManifest(man persist.Manifest) serve.ModelVersionInfo {
	return serve.ModelVersionInfo{
		ID:           man.ID,
		TrainedAt:    man.TrainedAt,
		TrainRecords: man.TrainRecords,
		NumModels:    man.NumModels,
		Accuracy:     man.Accuracy,
	}
}

// onPublish is the serving layer's publish hook: serialize the fresh
// version once and push it to every other replica of the tenant
// asynchronously — replication must never sit on the retraining path.
func (c *Cluster) onPublish(t *serve.Tenant, v *serve.ModelVersion) {
	if c.closing.Load() {
		return
	}
	followers := make([]string, 0, c.rf-1)
	for _, node := range c.Replicas(t.Name) {
		if node != c.self {
			followers = append(followers, node)
		}
	}
	if len(followers) == 0 {
		return
	}
	var buf bytes.Buffer
	if err := v.Predictor.Save(&buf); err != nil {
		c.replicationErrors.Add(1)
		c.obs.noteReplication(0, true)
		c.log.Warn("cluster: serializing model for replication failed",
			"tenant", t.Name, "version", v.Info.ID, "err", err)
		return
	}
	payload, err := json.Marshal(replicatePayload{
		Tenant:   t.Name,
		Manifest: manifestFromInfo(v.Info),
		Model:    json.RawMessage(buf.Bytes()),
		Tables:   t.System().Catalog().Tables(),
	})
	if err != nil {
		c.replicationErrors.Add(1)
		c.obs.noteReplication(0, true)
		return
	}
	for _, node := range followers {
		node := node
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.pushReplica(node, t.Name, v.Info.ID, v.Info.TrainedAt, payload)
		}()
	}
}

// pushReplica delivers one replication payload to one follower, retrying
// a bounded number of times. A version that never lands is dropped — the
// next publish ships a strictly newer one, and the follower's ImportSnapshot
// ignores stale arrivals anyway.
func (c *Cluster) pushReplica(node, tenant string, version int64, trainedAt time.Time, payload []byte) {
	u := c.peers[node] + "/internal/cluster/replicate"
	for attempt := 0; attempt <= c.replicateRetries; attempt++ {
		if c.closing.Load() && attempt > 0 {
			return // finish the first try during shutdown, skip retries
		}
		resp, err := c.repClient.Post(u, "application/json", bytes.NewReader(payload))
		if err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				c.replicationsSent.Add(1)
				c.obs.noteReplication(time.Since(trainedAt), false)
				return
			}
			c.log.Warn("cluster: replication push rejected",
				"peer", node, "tenant", tenant, "version", version, "status", resp.StatusCode)
		} else {
			c.log.Warn("cluster: replication push failed",
				"peer", node, "tenant", tenant, "version", version,
				"attempt", attempt+1, "err", err)
		}
		time.Sleep(time.Duration(attempt+1) * 100 * time.Millisecond)
	}
	c.replicationErrors.Add(1)
	c.obs.noteReplication(0, true)
}

// handleReplicate is the follower side: validate the model bytes parse,
// then hand everything to the serving layer for the warm install and the
// local durable copy.
func (c *Cluster) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var p replicatePayload
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxReplicateBody))
	if err := dec.Decode(&p); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad replication payload: %v", err)
		return
	}
	if p.Tenant == "" || p.Manifest.ID <= 0 || len(p.Model) == 0 {
		writeJSONError(w, http.StatusBadRequest, "bad replication payload: missing tenant, id or model")
		return
	}
	pr, err := learned.Load(bytes.NewReader(p.Model))
	if err != nil {
		writeJSONError(w, http.StatusUnprocessableEntity, "replicated model does not parse: %v", err)
		return
	}
	installed := c.svc.Tenant(p.Tenant).InstallReplica(infoFromManifest(p.Manifest), pr, p.Model, p.Tables)
	if installed {
		c.replicaInstalls.Add(1)
		c.obs.noteReplicaInstall()
		c.log.Info("cluster: installed replicated model",
			"tenant", p.Tenant, "version", p.Manifest.ID)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node": c.self, "tenant": p.Tenant, "version": p.Manifest.ID, "installed": installed,
	})
}
