package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingLookupDeterministicAndDistinct(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(nodes)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		got := r.Lookup(key, 3)
		if len(got) != 3 {
			t.Fatalf("Lookup(%q, 3) = %v", key, got)
		}
		seen := map[string]bool{}
		for _, n := range got {
			if seen[n] {
				t.Fatalf("Lookup(%q, 3) repeats node: %v", key, got)
			}
			seen[n] = true
		}
		// Same ring, same key, same answer — and a ring built from the
		// same membership in a different order agrees (peers maps iterate
		// randomly, so every node must sort before hashing).
		if again := r.Lookup(key, 3); !reflect.DeepEqual(got, again) {
			t.Fatalf("Lookup(%q) unstable: %v vs %v", key, got, again)
		}
		shuffled := NewRing([]string{"n4", "n2", "n5", "n1", "n3"})
		if other := shuffled.Lookup(key, 3); !reflect.DeepEqual(got, other) {
			t.Fatalf("ring order-sensitive for %q: %v vs %v", key, got, other)
		}
		if r.Owner(key) != got[0] {
			t.Fatalf("Owner(%q) = %s, Lookup head = %s", key, r.Owner(key), got[0])
		}
	}
}

func TestRingLookupClampsReplicaCount(t *testing.T) {
	r := NewRing([]string{"a", "b"})
	if got := r.Lookup("x", 5); len(got) != 2 {
		t.Fatalf("Lookup clamped = %v, want both nodes", got)
	}
	if got := r.Lookup("x", 0); len(got) != 1 {
		t.Fatalf("Lookup(x, 0) = %v, want owner only", got)
	}
}

// TestRingBalance pins the virtual-node count's job: ownership spread
// across nodes stays within a loose factor of fair share, so one node
// never absorbs a disproportionate slice of tenants.
func TestRingBalance(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(nodes)
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("tenant-%d", i))]++
	}
	fair := keys / len(nodes)
	for _, n := range nodes {
		if counts[n] < fair/2 || counts[n] > fair*2 {
			t.Fatalf("unbalanced ring: %v (fair share %d)", counts, fair)
		}
	}
}

// TestRingStabilityUnderMembershipChange checks the consistent-hashing
// property: removing one node from a 5-node ring may only move keys that
// node owned — every other key keeps its owner.
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full := NewRing([]string{"n1", "n2", "n3", "n4", "n5"})
	without := NewRing([]string{"n1", "n2", "n3", "n4"})
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("tenant-%d", i)
		before := full.Owner(key)
		after := without.Owner(key)
		if before != "n5" && before != after {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
		if before == "n5" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the removed node — balance test should have caught this")
	}
}
