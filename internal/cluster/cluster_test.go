package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cleo/internal/obs"
	"cleo/internal/serve"
)

// The in-process multi-node harness: every node gets its own listener
// (bound before the ring is built, so peer URLs are known up front), its
// own serve.Service with a private state directory, and its own Cluster
// wrapping the API handler — a faithful miniature of N cleoserve
// processes, minus the processes.

const demoPlanJSON = `{"op":"Output","children":[{"op":"Aggregate","keys":["user"],"children":[
  {"op":"Select","pred":"market=us","children":[
    {"op":"Get","table":"clicks_2026_06_12","template":"clicks_"}]}]}]}`

const demoTablesJSON = `{"clicks_2026_06_12": {"Rows": 2e7, "RowLength": 120}}`

func queryBody(tenant string, mode string, seed int64) string {
	return fmt.Sprintf(`{"tenant":%q,"mode":%q,"seed":%d,"tables":%s,"plan":%s}`,
		tenant, mode, seed, demoTablesJSON, demoPlanJSON)
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

type testNode struct {
	id  string
	url string
	ln  net.Listener
	svc *serve.Service
	clu *Cluster
	srv *http.Server

	stopOnce sync.Once
}

// stop kills the node's HTTP side abruptly (listener closed, in-flight
// connections dropped) — the crash the failover path exists for. The
// service stays allocated; the test cleanup closes it.
func (n *testNode) stop() {
	n.stopOnce.Do(func() { _ = n.srv.Close() })
}

// startTestCluster boots n nodes with the given replication factor. Node
// ids are n1..nN. hang, when non-empty, names one node whose listener is
// bound but never served: connections are accepted by the kernel and then
// starve — the hung-owner case, as distinct from a closed listener.
func startTestCluster(t *testing.T, n, rf int, hang string) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	peers := map[string]string{}
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i+1)
		nodes[i] = &testNode{id: id, ln: ln, url: "http://" + ln.Addr().String()}
		peers[id] = nodes[i].url
	}
	for _, node := range nodes {
		node := node
		reg := obs.NewRegistry()
		node.svc = serve.NewService(serve.Config{
			Coalesce: true,
			StateDir: t.TempDir(),
			Metrics:  reg,
			Logger:   quietLogger(),
		})
		clu, err := New(Config{
			NodeID:            node.id,
			Peers:             peers,
			ReplicationFactor: rf,
			ForwardTimeout:    300 * time.Millisecond,
			PeerDownTTL:       100 * time.Millisecond,
			ReplicateRetries:  1,
			Metrics:           reg,
			Logger:            quietLogger(),
		}, node.svc)
		if err != nil {
			t.Fatal(err)
		}
		node.clu = clu
		node.srv = &http.Server{Handler: clu.Handler(serve.NewHandler(node.svc))}
		if node.id != hang {
			go func() { _ = node.srv.Serve(node.ln) }()
		}
		t.Cleanup(func() {
			node.stop()
			_ = node.ln.Close()
			node.clu.Close()
			node.svc.Close()
		})
	}
	return nodes
}

// byID indexes the harness nodes.
func byID(nodes []*testNode, id string) *testNode {
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// tenantPlacedAt searches tenant names until one's replica list matches
// the wanted owner (and, when nonReplica != "", excludes that node) — so
// tests control placement without touching the hash.
func tenantPlacedAt(t *testing.T, c *Cluster, owner, nonReplica string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		replicas := c.Replicas(name)
		if replicas[0] != owner {
			continue
		}
		if nonReplica != "" && indexOf(replicas, nonReplica) >= 0 {
			continue
		}
		return name
	}
	t.Fatal("no tenant with the wanted placement in 10000 candidates")
	return ""
}

func post(t *testing.T, url, body string, hdr map[string]string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// trainTenant drives enough run-mode traffic through the given entry URL
// to make training viable, then retrains until a version publishes
// (telemetry ingestion is asynchronous, so the first attempts may see too
// few records).
func trainTenant(t *testing.T, entryURL, tenant string) int64 {
	t.Helper()
	for seed := int64(1); seed <= 30; seed++ {
		code, body := post(t, entryURL+"/v1/query", queryBody(tenant, "run", seed), nil)
		if code != http.StatusOK {
			t.Fatalf("seeding query: %d %s", code, body)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body := post(t, entryURL+"/v1/retrain", fmt.Sprintf(`{"tenant":%q}`, tenant), nil)
		if code == http.StatusOK {
			var resp struct {
				Version struct {
					ID int64 `json:"id"`
				} `json:"version"`
			}
			if err := json.Unmarshal(body, &resp); err != nil || resp.Version.ID == 0 {
				t.Fatalf("retrain response: %s (%v)", body, err)
			}
			return resp.Version.ID
		}
		if time.Now().After(deadline) {
			t.Fatalf("retrain never succeeded: %d %s", code, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// clusterStats fetches a node's own /v1/stats cluster section (the
// all-tenants form is never forwarded, so this reads local state even
// while peers are alive).
func clusterStats(t *testing.T, nodeURL string) Stats {
	t.Helper()
	code, body := get(t, nodeURL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d %s", code, body)
	}
	var resp struct {
		Cluster Stats `json:"cluster"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("stats body %s: %v", body, err)
	}
	return resp.Cluster
}

// tenantStats fetches tenant-scoped stats through a node (forwarded to
// the tenant's serving replica like any other tenant request).
func tenantStats(t *testing.T, nodeURL, tenant string) serve.TenantStats {
	t.Helper()
	code, body := get(t, nodeURL+"/v1/stats?tenant="+tenant)
	if code != http.StatusOK {
		t.Fatalf("tenant stats: %d %s", code, body)
	}
	var st serve.TenantStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("tenant stats body %s: %v", body, err)
	}
	return st
}

// TestClusterFailoverWarm is the acceptance pin for the scale-out layer:
// a tenant trained on its owner replicates to its follower; when the
// owner dies, the next query through any surviving node is served by the
// follower with the latest model version live — no retrain, no cold
// start — and table statistics survived the hop too (the failover query
// sends none).
func TestClusterFailoverWarm(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, "")
	ring := nodes[0].clu
	tenant := tenantPlacedAt(t, ring, "n1", "")
	replicas := ring.Replicas(tenant)
	owner, follower := byID(nodes, replicas[0]), byID(nodes, replicas[1])
	var nonReplica *testNode
	for _, n := range nodes {
		if indexOf(replicas, n.id) < 0 {
			nonReplica = n
		}
	}

	// Train through the non-replica node: every request must forward.
	version := trainTenant(t, nonReplica.url, tenant)
	if fs := clusterStats(t, nonReplica.url); fs.Forwards == 0 {
		t.Fatalf("non-replica node never forwarded: %+v", fs)
	}

	// Replication is asynchronous; wait for the follower's warm install.
	deadline := time.Now().Add(10 * time.Second)
	for clusterStats(t, follower.url).ReplicaInstalls == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("follower %s never installed the replica", follower.id)
		}
		time.Sleep(10 * time.Millisecond)
	}

	owner.stop()

	// A tables-free query through the non-replica node: the owner hop
	// fails, the follower serves from replicated state — learned model,
	// original version id, catalog restored from the replicated stats.
	body := fmt.Sprintf(`{"tenant":%q,"mode":"optimize","seed":99,"plan":%s}`, tenant, demoPlanJSON)
	code, respBody := post(t, nonReplica.url+"/v1/query", body, nil)
	if code != http.StatusOK {
		t.Fatalf("failover query: %d %s", code, respBody)
	}
	var qr serve.QueryResponse
	if err := json.Unmarshal(respBody, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.UsedLearned || qr.ModelVersion != version {
		t.Fatalf("failover query not warm: used_learned=%v version=%d (want %d)",
			qr.UsedLearned, qr.ModelVersion, version)
	}

	// Tenant-scoped stats fail over the same way and prove no retrain ran
	// on the follower: the version is live but locally trained zero times.
	st := tenantStats(t, follower.url, tenant)
	if st.Retrains != 0 || st.ModelVersion != version || st.ReplicaInstalls == 0 {
		t.Fatalf("follower stats after failover: %+v", st)
	}
	if fb := clusterStats(t, follower.url); fb.LocalFallbacks == 0 {
		t.Fatalf("follower never served as fallback: %+v", fb)
	}
}

// TestClusterCoalescingBurst drives concurrent identical optimize-mode
// requests at a tenant's owner until the singleflight layer reports a
// coalesced request — and checks the result plans are bit-identical and
// the cleo_cluster_coalesced_total metric moved.
func TestClusterCoalescingBurst(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, "")
	tenant := tenantPlacedAt(t, nodes[0].clu, "n1", "")
	owner := byID(nodes, "n1")

	// A wide join tree with partition exploration and a parallel search
	// (whose worker pool yields at channel operations — overlap needs
	// that on a single-CPU runner) keeps the optimization in flight long
	// enough for concurrent identical HTTP requests to meet it.
	join := `{"op":"Join","pred":"a.k=b.k","keys":["k"],"children":[
	  {"op":"Join","pred":"b.k=c.k","keys":["k"],"children":[
	    {"op":"Join","pred":"c.k=d.k","keys":["k"],"children":[
	      {"op":"Get","table":"t_a"},{"op":"Get","table":"t_b"}]},
	    {"op":"Get","table":"t_c"}]},
	  {"op":"Get","table":"t_d"}]}`
	tables := `{"t_a":{"Rows":2e7,"RowLength":100},"t_b":{"Rows":1e7,"RowLength":80},
	  "t_c":{"Rows":5e6,"RowLength":60},"t_d":{"Rows":1e6,"RowLength":40}}`
	body := fmt.Sprintf(`{"tenant":%q,"mode":"optimize","seed":7,"resource_aware":true,`+
		`"parallelism":2,"tables":%s,"plan":{"op":"Output","children":[%s]}}`, tenant, tables, join)
	deadline := time.Now().Add(20 * time.Second)
	for {
		const burst = 16
		var (
			wg    sync.WaitGroup
			mu    sync.Mutex
			plans = map[string]bool{}
		)
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				code, respBody := post(t, owner.url+"/v1/query", body, nil)
				if code != http.StatusOK {
					t.Errorf("burst query: %d %s", code, respBody)
					return
				}
				var qr serve.QueryResponse
				if err := json.Unmarshal(respBody, &qr); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				plans[qr.Plan] = true
				mu.Unlock()
			}()
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		if len(plans) != 1 {
			t.Fatalf("identical requests returned %d distinct plans", len(plans))
		}
		if st := tenantStats(t, owner.url, tenant); st.Coalesced > 0 {
			if st.CoalesceLeaders == 0 {
				t.Fatalf("coalesced without a leader: %+v", st)
			}
			code, metrics := get(t, owner.url+"/metrics")
			if code != http.StatusOK {
				t.Fatalf("metrics: %d", code)
			}
			if !bytes.Contains(metrics, []byte("cleo_cluster_coalesced_total")) {
				t.Fatal("cleo_cluster_coalesced_total missing from /metrics")
			}
			for _, line := range strings.Split(string(metrics), "\n") {
				if strings.HasPrefix(line, "cleo_cluster_coalesced_total") &&
					strings.HasSuffix(strings.TrimSpace(line), " 0") {
					t.Fatalf("metric did not move: %s", line)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no request coalesced across repeated identical bursts")
		}
	}
}

// TestClusterLoopGuardReject pins the no-cycles invariant: a request
// already carrying the forward header lands on a node that is not a
// replica of its tenant and is refused with 508, never re-forwarded.
func TestClusterLoopGuardReject(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, "")
	outsider := byID(nodes, "n3")
	tenant := tenantPlacedAt(t, outsider.clu, "n1", "n3")

	code, body := post(t, outsider.url+"/v1/query", queryBody(tenant, "optimize", 1),
		map[string]string{ForwardHeader: "n1"})
	if code != http.StatusLoopDetected {
		t.Fatalf("loop guard: %d %s (want 508)", code, body)
	}
	if st := clusterStats(t, outsider.url); st.LoopRejects != 1 {
		t.Fatalf("loop rejects = %d, want 1", st.LoopRejects)
	}

	// The same forwarded request at an actual replica is served, not
	// bounced — a follower holding the tenant answers it locally.
	follower := byID(nodes, outsider.clu.Replicas(tenant)[1])
	code, body = post(t, follower.url+"/v1/query", queryBody(tenant, "optimize", 1),
		map[string]string{ForwardHeader: "n1"})
	if code != http.StatusOK {
		t.Fatalf("forwarded request at replica: %d %s", code, body)
	}
}

// TestClusterOwnerCrashMidForward covers the hung-owner case: the owner's
// listener accepts connections (kernel backlog) but nothing ever answers,
// so a forward to it stalls until the per-hop timeout — and the request
// still succeeds on the next replica within bounded time.
func TestClusterOwnerCrashMidForward(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, "n1")
	tenant := tenantPlacedAt(t, nodes[1].clu, "n1", "")
	replicas := nodes[1].clu.Replicas(tenant)
	var entry *testNode
	for _, n := range nodes {
		if n.id != "n1" && indexOf(replicas, n.id) < 0 {
			entry = n
		}
	}
	if entry == nil {
		// rf=2 of 3 nodes: the non-replica exists unless it is the hung
		// node itself; then drive through the follower instead.
		entry = byID(nodes, replicas[1])
	}

	t0 := time.Now()
	code, body := post(t, entry.url+"/v1/query", queryBody(tenant, "run", 1), nil)
	elapsed := time.Since(t0)
	if code != http.StatusOK {
		t.Fatalf("query with hung owner: %d %s", code, body)
	}
	// One hop timed out (300ms per hop), then the next replica answered.
	if elapsed > 5*time.Second {
		t.Fatalf("failover took %v — hop timeout not bounding the hung peer", elapsed)
	}
	st := clusterStats(t, entry.url)
	if st.ForwardErrors == 0 {
		t.Fatalf("hung owner produced no forward error: %+v", st)
	}
	if st.Forwards == 0 && st.LocalFallbacks == 0 {
		t.Fatalf("request served by nobody? %+v", st)
	}

	// Follow-up requests skip the known-dead owner fast (down memo).
	t0 = time.Now()
	code, _ = post(t, entry.url+"/v1/query", queryBody(tenant, "run", 2), nil)
	if code != http.StatusOK {
		t.Fatal("second query failed")
	}
	if time.Since(t0) > 2*time.Second {
		t.Fatalf("down memo not skipping hung owner: %v", time.Since(t0))
	}
}

// TestClusterInfoEndpoint sanity-checks the operator/smoke-test endpoint:
// membership and placement agree across every node.
func TestClusterInfoEndpoint(t *testing.T) {
	nodes := startTestCluster(t, 3, 2, "")
	tenant := tenantPlacedAt(t, nodes[0].clu, "n2", "")
	want := nodes[0].clu.Replicas(tenant)
	for _, n := range nodes {
		code, body := get(t, n.url+"/internal/cluster/info?tenant="+tenant)
		if code != http.StatusOK {
			t.Fatalf("info on %s: %d %s", n.id, code, body)
		}
		var info struct {
			Node     string   `json:"node"`
			Nodes    []string `json:"nodes"`
			Owner    string   `json:"owner"`
			Replicas []string `json:"replicas"`
		}
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Node != n.id || len(info.Nodes) != 3 {
			t.Fatalf("info identity on %s: %+v", n.id, info)
		}
		if info.Owner != want[0] || len(info.Replicas) != len(want) {
			t.Fatalf("placement disagrees on %s: %+v want %v", n.id, info, want)
		}
	}
}
