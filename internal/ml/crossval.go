package ml

import (
	"fmt"
	"math/rand"

	"cleo/internal/linalg"
)

// FoldResult carries the evaluation of one cross-validation fold.
type FoldResult struct {
	Fold     int
	Accuracy Accuracy
}

// CVResult aggregates k-fold cross-validation.
type CVResult struct {
	Folds []FoldResult
	// Pooled accuracy over the concatenated out-of-fold predictions; this
	// is what the paper's "5-fold CV median error" figures report.
	Pooled Accuracy
	// OutOfFold holds the out-of-fold prediction for every sample, indexed
	// like the input rows.
	OutOfFold []float64
}

// KFold runs k-fold cross-validation of trainer on (x, y) with the given
// RNG driving the row shuffle. Targets are raw (untransformed); the trainer
// is responsible for its own target transformation.
func KFold(trainer Trainer, x *linalg.Matrix, y []float64, k int, rng *rand.Rand) (CVResult, error) {
	if err := ValidateTrainingData(x, y); err != nil {
		return CVResult{}, err
	}
	if k < 2 {
		return CVResult{}, fmt.Errorf("ml: k-fold requires k >= 2, got %d", k)
	}
	n := x.Rows
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	foldOf := make([]int, n)
	for i, p := range perm {
		foldOf[p] = i % k
	}

	oof := make([]float64, n)
	res := CVResult{OutOfFold: oof}
	for fold := 0; fold < k; fold++ {
		var trainRows, testRows []int
		for i := 0; i < n; i++ {
			if foldOf[i] == fold {
				testRows = append(testRows, i)
			} else {
				trainRows = append(trainRows, i)
			}
		}
		if len(testRows) == 0 || len(trainRows) == 0 {
			continue
		}
		trX, trY := subset(x, y, trainRows)
		model, err := trainer.Fit(trX, trY)
		if err != nil {
			return CVResult{}, fmt.Errorf("ml: fold %d: %w", fold, err)
		}
		var p, a []float64
		for _, r := range testRows {
			pred := model.Predict(x.Row(r))
			oof[r] = pred
			p = append(p, pred)
			a = append(a, y[r])
		}
		res.Folds = append(res.Folds, FoldResult{Fold: fold, Accuracy: Evaluate(p, a)})
	}
	res.Pooled = Evaluate(oof, y)
	return res, nil
}

func subset(x *linalg.Matrix, y []float64, rows []int) (*linalg.Matrix, []float64) {
	sx := linalg.NewMatrix(len(rows), x.Cols)
	sy := make([]float64, len(rows))
	for i, r := range rows {
		copy(sx.Row(i), x.Row(r))
		sy[i] = y[r]
	}
	return sx, sy
}

// TrainTestSplit partitions rows into train and test sets with testFraction
// of rows in the test set, shuffled by rng.
func TrainTestSplit(x *linalg.Matrix, y []float64, testFraction float64, rng *rand.Rand) (trX *linalg.Matrix, trY []float64, teX *linalg.Matrix, teY []float64) {
	n := x.Rows
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFraction)
	if nTest < 1 && n > 1 {
		nTest = 1
	}
	testRows := perm[:nTest]
	trainRows := perm[nTest:]
	trX, trY = subset(x, y, trainRows)
	teX, teY = subset(x, y, testRows)
	return trX, trY, teX, teY
}
