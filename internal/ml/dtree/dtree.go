// Package dtree implements a CART regression tree with variance-reduction
// splitting. The paper evaluates a depth-15 decision tree on the individual
// cost models (Section 3.4) and uses shallow (depth-5) trees inside the
// random-forest and FastTree ensembles.
package dtree

import (
	"sort"

	"cleo/internal/linalg"
	"cleo/internal/ml"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth bounds tree depth; the root is depth 0. Paper: 15 for the
	// standalone tree, 5 inside ensembles.
	MaxDepth int
	// MinSamplesLeaf is the minimum sample count in a leaf.
	MinSamplesLeaf int
	// MinVariance stops splitting nodes whose target variance falls below
	// this threshold.
	MinVariance float64
	// MaxFeatures, when >0, restricts each split to a random subset of
	// this many features (used by random forests). Feature subsets are
	// chosen by the FeaturePicker, injected so the tree itself stays
	// deterministic.
	MaxFeatures int
	// FeaturePicker returns the feature indices to consider at one split.
	// nil means "all features".
	FeaturePicker func(numFeatures int) []int
	// Loss selects the target transformation (paper: MSLE).
	Loss ml.Loss
}

// DefaultConfig returns the paper's standalone-tree settings.
func DefaultConfig() Config {
	return Config{MaxDepth: 15, MinSamplesLeaf: 2, MinVariance: 1e-12, Loss: ml.MSLE}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	left, right int32 // child indices into Model.nodes
	value       float64
}

// Model is a fitted regression tree stored as a flat node slice.
type Model struct {
	nodes []node
	Loss  ml.Loss
	depth int
}

// Predict implements ml.Regressor; it is a thin wrapper over the shared
// leaf-walk kernel the batch path uses.
func (m *Model) Predict(features []float64) float64 {
	return m.Loss.InverseTarget(m.leafValue(features))
}

// PredictBatch implements ml.BatchRegressor: the flat node array stays hot
// while every row walks it, with zero per-row allocations.
func (m *Model) PredictBatch(x [][]float64, out []float64) {
	for i, row := range x {
		out[i] = m.Loss.InverseTarget(m.leafValue(row))
	}
}

// PredictTransformed returns the leaf value in the transformed target space,
// used by gradient boosting where residuals live in log space.
func (m *Model) PredictTransformed(features []float64) float64 {
	return m.leafValue(features)
}

// AddTransformedBatch adds scale times the transformed-space prediction of
// every row of x to out — the inner loop of the batched ensemble kernels
// (forest, fasttree), which iterate tree-major so one tree's node array
// stays in cache while all rows stream through it.
func (m *Model) AddTransformedBatch(x [][]float64, scale float64, out []float64) {
	for i, row := range x {
		out[i] += scale * m.leafValue(row)
	}
}

// leafValue walks the tree to the row's leaf and returns its value in the
// transformed target space.
func (m *Model) leafValue(features []float64) float64 {
	idx := int32(0)
	for {
		n := &m.nodes[idx]
		if n.feature < 0 {
			return n.value
		}
		v := 0.0
		if n.feature < len(features) {
			v = features[n.feature]
		}
		if v <= n.threshold {
			idx = n.left
		} else {
			idx = n.right
		}
	}
}

// Depth reports the fitted tree's depth.
func (m *Model) Depth() int { return m.depth }

// NumNodes reports the node count.
func (m *Model) NumNodes() int { return len(m.nodes) }

// Trainer fits Models with a fixed Config.
type Trainer struct{ Config Config }

// New returns a Trainer with the given config.
func New(cfg Config) *Trainer { return &Trainer{Config: cfg} }

// Fit implements ml.Trainer.
func (t *Trainer) Fit(x *linalg.Matrix, y []float64) (ml.Regressor, error) {
	m, err := t.FitModel(x, y)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// FitModel trains on raw targets, transforming them per the configured loss.
func (t *Trainer) FitModel(x *linalg.Matrix, y []float64) (*Model, error) {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return nil, err
	}
	ty := t.Config.Loss.TransformAll(y)
	rows := make([]int, x.Rows)
	for i := range rows {
		rows[i] = i
	}
	return t.FitTransformed(x, ty, rows)
}

// FitTransformed grows a tree directly on already-transformed targets over
// the given row subset. Gradient boosting calls this with residuals.
func (t *Trainer) FitTransformed(x *linalg.Matrix, ty []float64, rows []int) (*Model, error) {
	if x == nil || len(rows) == 0 {
		return nil, ml.ErrNoData
	}
	cfg := t.Config
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 15
	}
	if cfg.MinSamplesLeaf <= 0 {
		cfg.MinSamplesLeaf = 1
	}
	m := &Model{Loss: cfg.Loss}
	b := &builder{x: x, y: ty, cfg: cfg, model: m}
	local := append([]int(nil), rows...)
	b.grow(local, 0)
	return m, nil
}

type builder struct {
	x     *linalg.Matrix
	y     []float64
	cfg   Config
	model *Model
}

// grow recursively builds the subtree over rows and returns its node index.
func (b *builder) grow(rows []int, depth int) int32 {
	if depth > b.model.depth {
		b.model.depth = depth
	}
	mean, variance := meanVar(b.y, rows)
	idx := int32(len(b.model.nodes))
	b.model.nodes = append(b.model.nodes, node{feature: -1, value: mean})

	if depth >= b.cfg.MaxDepth || len(rows) < 2*b.cfg.MinSamplesLeaf || variance <= b.cfg.MinVariance {
		return idx
	}
	feat, thresh, gain := b.bestSplit(rows, variance)
	if gain <= 0 {
		return idx
	}
	var left, right []int
	for _, r := range rows {
		if b.x.At(r, feat) <= thresh {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < b.cfg.MinSamplesLeaf || len(right) < b.cfg.MinSamplesLeaf {
		return idx
	}
	l := b.grow(left, depth+1)
	r := b.grow(right, depth+1)
	n := &b.model.nodes[idx]
	n.feature = feat
	n.threshold = thresh
	n.left = l
	n.right = r
	return idx
}

// bestSplit scans candidate features for the variance-minimizing threshold.
func (b *builder) bestSplit(rows []int, parentVar float64) (feature int, threshold, gain float64) {
	feats := b.candidateFeatures()
	bestGain := 0.0
	bestFeat := -1
	bestThresh := 0.0
	n := float64(len(rows))

	vals := make([]float64, len(rows))
	targets := make([]float64, len(rows))
	order := make([]int, len(rows))

	for _, f := range feats {
		for i, r := range rows {
			vals[i] = b.x.At(r, f)
			targets[i] = b.y[r]
			order[i] = i
		}
		sort.Slice(order, func(a, c int) bool { return vals[order[a]] < vals[order[c]] })

		// Prefix sums over the sorted order for O(n) threshold scan.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for i := range order {
			v := targets[order[i]]
			sumR += v
			sumSqR += v * v
		}
		for i := 0; i < len(order)-1; i++ {
			v := targets[order[i]]
			sumL += v
			sumSqL += v * v
			sumR -= v
			sumSqR -= v * v
			// Can't split between equal feature values.
			cur, next := vals[order[i]], vals[order[i+1]]
			if cur == next {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < b.cfg.MinSamplesLeaf || int(nr) < b.cfg.MinSamplesLeaf {
				continue
			}
			varL := sumSqL/nl - (sumL/nl)*(sumL/nl)
			varR := sumSqR/nr - (sumR/nr)*(sumR/nr)
			childVar := (nl*varL + nr*varR) / n
			g := parentVar - childVar
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThresh = (cur + next) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestGain
}

func (b *builder) candidateFeatures() []int {
	p := b.x.Cols
	if b.cfg.MaxFeatures > 0 && b.cfg.MaxFeatures < p && b.cfg.FeaturePicker != nil {
		return b.cfg.FeaturePicker(p)
	}
	feats := make([]int, p)
	for i := range feats {
		feats[i] = i
	}
	return feats
}

func meanVar(y []float64, rows []int) (mean, variance float64) {
	if len(rows) == 0 {
		return 0, 0
	}
	var s, sq float64
	for _, r := range rows {
		s += y[r]
		sq += y[r] * y[r]
	}
	n := float64(len(rows))
	mean = s / n
	variance = sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return mean, variance
}
