package dtree

import (
	"math"
	"math/rand"
	"testing"

	"cleo/internal/linalg"
	"cleo/internal/ml"
)

func TestFitsStepFunction(t *testing.T) {
	n := 200
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i) / float64(n)
		x.Set(i, 0, v)
		if v < 0.5 {
			y[i] = 10
		} else {
			y[i] = 100
		}
	}
	m, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.2}); math.Abs(got-10) > 0.5 {
		t.Fatalf("Predict(0.2) = %v, want ~10", got)
	}
	if got := m.Predict([]float64{0.8}); math.Abs(got-100) > 2 {
		t.Fatalf("Predict(0.8) = %v, want ~100", got)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 500
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		y[i] = rng.Float64() * 100
	}
	cfg := DefaultConfig()
	cfg.MaxDepth = 3
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.Depth() > 3 {
		t.Fatalf("depth = %d, want <= 3", m.Depth())
	}
}

func TestConstantTargetSingleLeaf(t *testing.T) {
	n := 50
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := range y {
		x.Set(i, 0, float64(i))
		y[i] = 42
	}
	m, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1 (no split on constant target)", m.NumNodes())
	}
	if got := m.Predict([]float64{3}); math.Abs(got-42) > 1e-6 {
		t.Fatalf("Predict = %v, want 42", got)
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	n := 10
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		y[i] = float64(i * i)
	}
	cfg := DefaultConfig()
	cfg.MinSamplesLeaf = 6 // cannot split 10 rows into two >=6 leaves
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", m.NumNodes())
	}
}

func TestFitErrors(t *testing.T) {
	tr := New(DefaultConfig())
	if _, err := tr.FitModel(nil, nil); err != ml.ErrNoData {
		t.Fatalf("nil: %v", err)
	}
	if _, err := tr.FitTransformed(linalg.NewMatrix(1, 1), []float64{1}, nil); err != ml.ErrNoData {
		t.Fatalf("empty rows: %v", err)
	}
}

func TestPredictTransformedMatchesLeafValue(t *testing.T) {
	n := 100
	x := linalg.NewMatrix(n, 1)
	ty := make([]float64, n)
	rows := make([]int, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		ty[i] = -5.0 // residuals can be negative in boosting
		rows[i] = i
	}
	m, err := New(DefaultConfig()).FitTransformed(x, ty, rows)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.PredictTransformed([]float64{50}); math.Abs(got+5) > 1e-9 {
		t.Fatalf("PredictTransformed = %v, want -5", got)
	}
}

func TestShortFeatureVectorDoesNotPanic(t *testing.T) {
	n := 60
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i%2))
		x.Set(i, 1, float64(i))
		y[i] = float64(i)
	}
	m, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Predict([]float64{1}) // fewer features than trained with
}
