package dtree

import "cleo/internal/ml"

// NodeSpec is the serializable form of one tree node. Feature < 0 marks a
// leaf with Value as its prediction (in the transformed target space).
type NodeSpec struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int32   `json:"l,omitempty"`
	Right     int32   `json:"r,omitempty"`
	Value     float64 `json:"v"`
}

// Export renders the tree for serialization.
func (m *Model) Export() []NodeSpec {
	out := make([]NodeSpec, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = NodeSpec{Feature: n.feature, Threshold: n.threshold, Left: n.left, Right: n.right, Value: n.value}
	}
	return out
}

// FromSpec rebuilds a tree from its serialized form.
func FromSpec(nodes []NodeSpec, loss ml.Loss) *Model {
	m := &Model{Loss: loss, nodes: make([]node, len(nodes))}
	for i, n := range nodes {
		m.nodes[i] = node{feature: n.Feature, threshold: n.Threshold, left: n.Left, right: n.Right, value: n.Value}
	}
	return m
}
