// Package forest implements a random-forest regressor: bootstrap-aggregated
// CART trees with per-split feature subsampling. The paper's configuration
// (Section 3.4) is 20 trees of depth 5.
package forest

import (
	"math"
	"math/rand"

	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/dtree"
)

// Config controls the ensemble.
type Config struct {
	// NumTrees is the ensemble size (paper: 20).
	NumTrees int
	// MaxDepth bounds each tree (paper: 5).
	MaxDepth int
	// MinSamplesLeaf is passed through to each tree.
	MinSamplesLeaf int
	// MaxFeaturesFrac is the fraction of features considered per split;
	// <=0 uses the sqrt(p) heuristic.
	MaxFeaturesFrac float64
	// Seed drives bootstrap sampling and feature subsets.
	Seed int64
	// Loss selects the target transformation (paper: MSLE).
	Loss ml.Loss
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{NumTrees: 20, MaxDepth: 5, MinSamplesLeaf: 2, Seed: 1, Loss: ml.MSLE}
}

// Model is a fitted forest; predictions average trees in the transformed
// target space then invert the transformation.
type Model struct {
	Trees []*dtree.Model
	Loss  ml.Loss
}

// Predict implements ml.Regressor.
func (m *Model) Predict(features []float64) float64 {
	if len(m.Trees) == 0 {
		return 0
	}
	var s float64
	for _, t := range m.Trees {
		s += t.PredictTransformed(features)
	}
	return m.Loss.InverseTarget(s / float64(len(m.Trees)))
}

// PredictBatch implements ml.BatchRegressor. It iterates tree-major — each
// tree's node array is walked by every row before moving on — accumulating
// transformed-space sums directly into out, with zero per-row allocations.
func (m *Model) PredictBatch(x [][]float64, out []float64) {
	out = out[:len(x)]
	for i := range out {
		out[i] = 0
	}
	if len(m.Trees) == 0 {
		return
	}
	for _, t := range m.Trees {
		t.AddTransformedBatch(x, 1, out)
	}
	n := float64(len(m.Trees))
	for i := range out {
		out[i] = m.Loss.InverseTarget(out[i] / n)
	}
}

// Trainer fits Models with a fixed Config.
type Trainer struct{ Config Config }

// New returns a Trainer with the given config.
func New(cfg Config) *Trainer { return &Trainer{Config: cfg} }

// Fit implements ml.Trainer.
func (t *Trainer) Fit(x *linalg.Matrix, y []float64) (ml.Regressor, error) {
	m, err := t.FitModel(x, y)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// FitModel trains the forest.
func (t *Trainer) FitModel(x *linalg.Matrix, y []float64) (*Model, error) {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return nil, err
	}
	cfg := t.Config
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 20
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ty := cfg.Loss.TransformAll(y)
	n := x.Rows

	maxFeatures := int(cfg.MaxFeaturesFrac * float64(x.Cols))
	if cfg.MaxFeaturesFrac <= 0 {
		maxFeatures = int(math.Ceil(math.Sqrt(float64(x.Cols))))
	}
	if maxFeatures < 1 {
		maxFeatures = 1
	}
	if maxFeatures > x.Cols {
		maxFeatures = x.Cols
	}

	model := &Model{Loss: cfg.Loss}
	for k := 0; k < cfg.NumTrees; k++ {
		// Bootstrap sample with replacement.
		rows := make([]int, n)
		for i := range rows {
			rows[i] = rng.Intn(n)
		}
		treeRng := rand.New(rand.NewSource(rng.Int63()))
		tcfg := dtree.Config{
			MaxDepth:       cfg.MaxDepth,
			MinSamplesLeaf: cfg.MinSamplesLeaf,
			MaxFeatures:    maxFeatures,
			FeaturePicker: func(p int) []int {
				return treeRng.Perm(p)[:maxFeatures]
			},
			Loss: cfg.Loss,
		}
		tree, err := dtree.New(tcfg).FitTransformed(x, ty, rows)
		if err != nil {
			return nil, err
		}
		model.Trees = append(model.Trees, tree)
	}
	return model, nil
}
