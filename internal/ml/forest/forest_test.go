package forest

import (
	"math"
	"math/rand"
	"testing"

	"cleo/internal/linalg"
	"cleo/internal/ml"
)

func friedman(n int, rng *rand.Rand) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, 5)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 5; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = 10*math.Sin(math.Pi*x.At(i, 0)*x.At(i, 1)) +
			20*math.Pow(x.At(i, 2)-0.5, 2) + 10*x.At(i, 3) + 5*x.At(i, 4) + 10
	}
	return x, y
}

func TestForestBeatsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := friedman(400, rng)
	m, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	preds := ml.PredictAll(m, x)
	acc := ml.Evaluate(preds, y)
	if acc.Pearson < 0.7 {
		t.Fatalf("forest pearson = %v, want > 0.7", acc.Pearson)
	}
	if len(m.Trees) != 20 {
		t.Fatalf("trees = %d, want 20", len(m.Trees))
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y := friedman(100, rng)
	cfg := DefaultConfig()
	cfg.Seed = 99
	m1, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	probe := x.Row(0)
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Fatal("same seed produced different forests")
	}
}

func TestForestEmptyModelPredictsZero(t *testing.T) {
	m := &Model{Loss: ml.MSLE}
	if got := m.Predict([]float64{1}); got != 0 {
		t.Fatalf("empty forest predict = %v", got)
	}
}

func TestForestErrors(t *testing.T) {
	if _, err := New(DefaultConfig()).FitModel(nil, nil); err != ml.ErrNoData {
		t.Fatalf("nil: %v", err)
	}
}
