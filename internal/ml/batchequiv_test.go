package ml_test

// Property test: for every model type, PredictBatch over a randomized
// feature matrix must agree with scalar Predict row by row (within 1e-9 —
// in practice the kernels share the same row arithmetic and agree
// bit-for-bit). This pins the batched costing pipeline to the scalar
// semantics it replaced.

import (
	"math"
	"math/rand"
	"testing"

	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/dtree"
	"cleo/internal/ml/elasticnet"
	"cleo/internal/ml/fasttree"
	"cleo/internal/ml/forest"
	"cleo/internal/ml/mlp"
)

const batchEquivTol = 1e-9

// trainers enumerates the five model types with small configurations so
// every trial trains quickly.
func trainers() map[string]ml.Trainer {
	mlpCfg := mlp.DefaultConfig()
	mlpCfg.Epochs = 20
	return map[string]ml.Trainer{
		"elasticnet": elasticnet.New(elasticnet.DefaultConfig()),
		"dtree":      dtree.New(dtree.DefaultConfig()),
		"forest":     forest.New(forest.DefaultConfig()),
		"fasttree":   fasttree.New(fasttree.DefaultConfig()),
		"mlp":        mlp.New(mlpCfg),
	}
}

// randomTrainingSet draws a feature matrix with the wide dynamic range the
// cost features have (cardinalities spanning decades) and a positive
// latency-like target.
func randomTrainingSet(rng *rand.Rand, n, p int) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, p)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = math.Pow(10, rng.Float64()*6-2) // 1e-2 .. 1e4
			if rng.Intn(4) == 0 {
				row[j] = 0
			}
		}
		y[i] = math.Abs(rng.NormFloat64()) * (1 + row[0]/1e3)
	}
	return x, y
}

func TestBatchPredictionsMatchScalar(t *testing.T) {
	for name, tr := range trainers() {
		tr := tr
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(name)) * 17))
			for trial := 0; trial < 5; trial++ {
				n := 10 + rng.Intn(60)
				p := 3 + rng.Intn(28)
				x, y := randomTrainingSet(rng, n, p)
				model, err := tr.Fit(x, y)
				if err != nil {
					t.Fatalf("trial %d: Fit: %v", trial, err)
				}
				br, ok := model.(ml.BatchRegressor)
				if !ok {
					t.Fatalf("trial %d: %T does not implement ml.BatchRegressor", trial, model)
				}
				// Query on a fresh random matrix, including ragged rows
				// (shorter and longer than the training width) since the
				// scalar path tolerates both.
				qn := 1 + rng.Intn(50)
				rows := make([][]float64, qn)
				for i := range rows {
					w := p
					switch rng.Intn(4) {
					case 0:
						w = rng.Intn(p + 1)
					case 1:
						w = p + rng.Intn(3)
					}
					rows[i] = make([]float64, w)
					for j := range rows[i] {
						rows[i][j] = math.Pow(10, rng.Float64()*6-2)
					}
				}
				got := make([]float64, qn)
				br.PredictBatch(rows, got)
				for i, row := range rows {
					want := model.Predict(row)
					if math.Abs(got[i]-want) > batchEquivTol {
						t.Fatalf("trial %d row %d: batch %v != scalar %v (width %d)",
							trial, i, got[i], want, len(row))
					}
				}
			}
		})
	}
}

// TestPredictBatchHelperFallsBack covers the helper's scalar fallback for
// models without a batch kernel.
func TestPredictBatchHelperFallsBack(t *testing.T) {
	scalarOnly := scalarRegressor{}
	rows := [][]float64{{1, 2}, {3, 4}}
	out := make([]float64, 2)
	ml.PredictBatch(scalarOnly, rows, out)
	if out[0] != 3 || out[1] != 7 {
		t.Fatalf("fallback predictions = %v, want [3 7]", out)
	}
}

type scalarRegressor struct{}

func (scalarRegressor) Predict(f []float64) float64 {
	var s float64
	for _, v := range f {
		s += v
	}
	return s
}
