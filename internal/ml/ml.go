// Package ml defines the regression interfaces, loss functions, evaluation
// metrics and cross-validation utilities shared by all learners in this
// repository (elastic net, regression trees, random forests, gradient-boosted
// trees and the MLP).
//
// All learners implement Regressor; learners that can be retrained from
// scratch implement Trainer. The paper (Section 3.2) trains every model with
// mean-squared-log error, which is exposed here as the MSLE loss together
// with the alternatives compared in Table 1.
package ml

import (
	"errors"
	"math"

	"cleo/internal/linalg"
)

// Regressor predicts a scalar target from a feature vector.
type Regressor interface {
	// Predict returns the model output for a single feature vector.
	Predict(features []float64) float64
}

// BatchRegressor is a Regressor that can additionally price a whole batch
// of feature vectors in one pass. Implementations must write exactly
// len(x) predictions into out (which callers size to len(x)) and must not
// allocate per row, so the optimizer's batched costing path can stream
// matrices through without GC pressure. Batched predictions must match
// the scalar Predict bit-for-bit (or within 1e-9) on every row.
type BatchRegressor interface {
	Regressor
	PredictBatch(x [][]float64, out []float64)
}

// PredictBatch prices every row of x into out, using r's batch kernel when
// it has one and falling back to row-at-a-time Predict otherwise.
func PredictBatch(r Regressor, x [][]float64, out []float64) {
	if br, ok := r.(BatchRegressor); ok {
		br.PredictBatch(x, out)
		return
	}
	for i, row := range x {
		out[i] = r.Predict(row)
	}
}

// Trainer fits a fresh model on a design matrix X (row per sample) and
// target vector y. Implementations must not retain X or y.
type Trainer interface {
	// Fit trains on (X, y) and returns the fitted model.
	Fit(x *linalg.Matrix, y []float64) (Regressor, error)
}

// TrainerFunc adapts a function to the Trainer interface.
type TrainerFunc func(x *linalg.Matrix, y []float64) (Regressor, error)

// Fit implements Trainer.
func (f TrainerFunc) Fit(x *linalg.Matrix, y []float64) (Regressor, error) { return f(x, y) }

// ErrNoData is returned by trainers invoked with zero samples.
var ErrNoData = errors.New("ml: no training data")

// ErrDimMismatch is returned when X and y disagree on the sample count.
var ErrDimMismatch = errors.New("ml: rows of X and len(y) differ")

// ValidateTrainingData performs the shared sanity checks for Fit
// implementations.
func ValidateTrainingData(x *linalg.Matrix, y []float64) error {
	if x == nil || x.Rows == 0 {
		return ErrNoData
	}
	if x.Rows != len(y) {
		return ErrDimMismatch
	}
	return nil
}

// PredictAll applies the regressor to every row of x, taking the batch
// path when the model has one.
func PredictAll(r Regressor, x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	PredictBatch(r, x.RowViews(), out)
	return out
}

// Log1p returns log(v+1), clamping tiny negatives that arise from float
// noise. Targets in this repo (latencies) are non-negative.
func Log1p(v float64) float64 {
	if v < 0 {
		v = 0
	}
	return math.Log1p(v)
}

// Expm1 inverts Log1p.
func Expm1(v float64) float64 {
	out := math.Expm1(v)
	if out < 0 {
		return 0
	}
	return out
}
