package ml

import (
	"math"
	"sort"
)

// Loss identifies a regression loss function. The paper compares four
// (Table 1) and settles on mean-squared-log error.
type Loss int

const (
	// MSLE is mean squared log error: mean((log(p+1)-log(a+1))^2).
	// It optimizes relative error, penalizes under-estimation more than
	// over-estimation, and keeps predictions positive (Section 3.2).
	MSLE Loss = iota
	// MSE is mean squared error.
	MSE
	// MAE is mean absolute error.
	MAE
	// MedAE is median absolute error.
	MedAE
)

// String returns the paper's name for the loss.
func (l Loss) String() string {
	switch l {
	case MSLE:
		return "Mean Squared-Log Error"
	case MSE:
		return "Mean Squared Error"
	case MAE:
		return "Mean Absolute Error"
	case MedAE:
		return "Median Absolute Error"
	default:
		return "unknown"
	}
}

// Eval computes the loss between predictions p and actuals a.
func (l Loss) Eval(p, a []float64) float64 {
	if len(p) != len(a) || len(p) == 0 {
		return math.NaN()
	}
	switch l {
	case MSLE:
		var s float64
		for i := range p {
			d := Log1p(p[i]) - Log1p(a[i])
			s += d * d
		}
		return s / float64(len(p))
	case MSE:
		var s float64
		for i := range p {
			d := p[i] - a[i]
			s += d * d
		}
		return s / float64(len(p))
	case MAE:
		var s float64
		for i := range p {
			s += math.Abs(p[i] - a[i])
		}
		return s / float64(len(p))
	case MedAE:
		diffs := make([]float64, len(p))
		for i := range p {
			diffs[i] = math.Abs(p[i] - a[i])
		}
		sort.Float64s(diffs)
		return Quantile(diffs, 0.5)
	default:
		return math.NaN()
	}
}

// TransformTarget maps a raw target into the space the loss is optimized in.
// Learners in this repository always fit in the transformed space and
// predictions are mapped back with InverseTarget.
func (l Loss) TransformTarget(v float64) float64 {
	switch l {
	case MSLE:
		return Log1p(v)
	case MedAE, MAE, MSE:
		return v
	default:
		return v
	}
}

// InverseTarget inverts TransformTarget.
func (l Loss) InverseTarget(v float64) float64 {
	switch l {
	case MSLE:
		return Expm1(v)
	default:
		return v
	}
}

// TransformAll applies TransformTarget to every element, returning a new
// slice.
func (l Loss) TransformAll(y []float64) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = l.TransformTarget(v)
	}
	return out
}
