// Package mlp implements a fully connected multilayer-perceptron regressor:
// the paper's neural-network baseline (Section 3.4: 3 layers, hidden size
// 30, ReLU activations, Adam optimizer, L2 regularization 0.005).
package mlp

import (
	"math"
	"math/rand"

	"cleo/internal/linalg"
	"cleo/internal/ml"
)

// Config mirrors the paper's MLP hyper-parameters.
type Config struct {
	// HiddenSizes lists hidden-layer widths (paper: one hidden layer of 30
	// between input and output = "3 layers").
	HiddenSizes []int
	// L2 is the weight-decay coefficient (paper: 0.005).
	L2 float64
	// LearningRate is Adam's step size.
	LearningRate float64
	// Epochs is the number of full passes.
	Epochs int
	// BatchSize for mini-batch Adam.
	BatchSize int
	// Seed drives weight init and shuffling.
	Seed int64
	// Loss selects the target transformation (paper: MSLE).
	Loss ml.Loss
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		HiddenSizes:  []int{30},
		L2:           0.005,
		LearningRate: 1e-3,
		Epochs:       200,
		BatchSize:    32,
		Seed:         1,
		Loss:         ml.MSLE,
	}
}

// layer holds weights (out×in) and biases for one dense layer.
type layer struct {
	w        *linalg.Matrix
	b        []float64
	mw, vw   *linalg.Matrix // Adam moments for weights
	mb, vb   []float64      // Adam moments for biases
	lastRelu bool           // whether ReLU follows this layer
}

// Model is a fitted MLP. Inputs are standardized with the training-set
// statistics stored on the model.
type Model struct {
	layers []layer
	means  []float64
	stds   []float64
	Loss   ml.Loss
}

// Predict implements ml.Regressor; it is a thin wrapper over the batch
// forward pass.
func (m *Model) Predict(features []float64) float64 {
	rows := [1][]float64{features}
	var out [1]float64
	m.PredictBatch(rows[:], out[:])
	return out[0]
}

// PredictBatch implements ml.BatchRegressor: the standardization buffer and
// the two layer activation buffers are allocated once per batch and reused
// by every row, so the per-row forward pass is allocation-free.
func (m *Model) PredictBatch(x [][]float64, out []float64) {
	width := len(m.means)
	for li := range m.layers {
		if w := m.layers[li].w.Rows; w > width {
			width = w
		}
	}
	in := make([]float64, width)
	act := make([]float64, width)
	for r, features := range x {
		cur := in[:len(m.means)]
		for j := range cur {
			var v float64
			if j < len(features) {
				v = features[j]
			}
			if m.stds[j] > 0 {
				cur[j] = (v - m.means[j]) / m.stds[j]
			} else {
				cur[j] = 0
			}
		}
		next := act
		for li := range m.layers {
			l := &m.layers[li]
			z := next[:l.w.Rows]
			l.w.MulVecInto(cur, z)
			for i := range z {
				z[i] += l.b[i]
				if l.lastRelu && z[i] < 0 {
					z[i] = 0
				}
			}
			cur, next = z, cur[:cap(cur)]
		}
		v := m.Loss.InverseTarget(cur[0])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // a diverged network must not poison evaluations
		}
		out[r] = v
	}
}

// Trainer fits Models with a fixed Config.
type Trainer struct{ Config Config }

// New returns a Trainer with the given config.
func New(cfg Config) *Trainer { return &Trainer{Config: cfg} }

// Fit implements ml.Trainer.
func (t *Trainer) Fit(x *linalg.Matrix, y []float64) (ml.Regressor, error) {
	m, err := t.FitModel(x, y)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// FitModel trains with mini-batch Adam on squared loss in the transformed
// target space.
func (t *Trainer) FitModel(x *linalg.Matrix, y []float64) (*Model, error) {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return nil, err
	}
	cfg := t.Config
	if len(cfg.HiddenSizes) == 0 {
		cfg.HiddenSizes = []int{30}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 200
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 1e-3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	n, p := x.Rows, x.Cols
	ty := cfg.Loss.TransformAll(y)

	means := x.ColMeans()
	stds := x.ColStdDevs()
	xs := linalg.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		for j := 0; j < p; j++ {
			if stds[j] > 0 {
				xs.Set(i, j, (x.At(i, j)-means[j])/stds[j])
			}
		}
	}

	sizes := append([]int{p}, cfg.HiddenSizes...)
	sizes = append(sizes, 1)
	m := &Model{means: means, stds: stds, Loss: cfg.Loss}
	for li := 0; li+1 < len(sizes); li++ {
		in, out := sizes[li], sizes[li+1]
		l := layer{
			w:        linalg.NewMatrix(out, in),
			b:        make([]float64, out),
			mw:       linalg.NewMatrix(out, in),
			vw:       linalg.NewMatrix(out, in),
			mb:       make([]float64, out),
			vb:       make([]float64, out),
			lastRelu: li+2 < len(sizes), // ReLU on all but the output layer
		}
		// He initialization for ReLU layers.
		scale := math.Sqrt(2.0 / float64(in))
		for k := range l.w.Data {
			l.w.Data[k] = rng.NormFloat64() * scale
		}
		m.layers = append(m.layers, l)
	}

	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	step := 0
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	// Per-layer activation buffers for backprop.
	acts := make([][]float64, len(m.layers)+1)
	preacts := make([][]float64, len(m.layers))

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			step++
			// Accumulate gradients over the batch.
			gw := make([]*linalg.Matrix, len(m.layers))
			gb := make([][]float64, len(m.layers))
			for li := range m.layers {
				gw[li] = linalg.NewMatrix(m.layers[li].w.Rows, m.layers[li].w.Cols)
				gb[li] = make([]float64, len(m.layers[li].b))
			}
			for _, r := range batch {
				// Forward.
				acts[0] = xs.Row(r)
				for li := range m.layers {
					l := &m.layers[li]
					z := l.w.MulVec(acts[li])
					for i := range z {
						z[i] += l.b[i]
					}
					preacts[li] = z
					a := make([]float64, len(z))
					copy(a, z)
					if l.lastRelu {
						for i := range a {
							if a[i] < 0 {
								a[i] = 0
							}
						}
					}
					acts[li+1] = a
				}
				// Backward: dL/dz at output = 2*(pred - target)/batch.
				out := acts[len(m.layers)][0]
				delta := []float64{2 * (out - ty[r]) / float64(len(batch))}
				for li := len(m.layers) - 1; li >= 0; li-- {
					l := &m.layers[li]
					// Gradients for this layer.
					for i := range delta {
						gb[li][i] += delta[i]
						for j := 0; j < l.w.Cols; j++ {
							gw[li].Set(i, j, gw[li].At(i, j)+delta[i]*acts[li][j])
						}
					}
					if li == 0 {
						break
					}
					// Propagate delta to previous layer.
					prev := make([]float64, l.w.Cols)
					for j := 0; j < l.w.Cols; j++ {
						var s float64
						for i := range delta {
							s += delta[i] * l.w.At(i, j)
						}
						// ReLU derivative of the previous layer's preact.
						if m.layers[li-1].lastRelu && preacts[li-1][j] <= 0 {
							s = 0
						}
						prev[j] = s
					}
					delta = prev
				}
			}
			// Adam update with L2.
			bc1 := 1 - math.Pow(beta1, float64(step))
			bc2 := 1 - math.Pow(beta2, float64(step))
			for li := range m.layers {
				l := &m.layers[li]
				for k := range l.w.Data {
					g := gw[li].Data[k] + cfg.L2*l.w.Data[k]
					l.mw.Data[k] = beta1*l.mw.Data[k] + (1-beta1)*g
					l.vw.Data[k] = beta2*l.vw.Data[k] + (1-beta2)*g*g
					mhat := l.mw.Data[k] / bc1
					vhat := l.vw.Data[k] / bc2
					l.w.Data[k] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + eps)
				}
				for i := range l.b {
					g := gb[li][i]
					l.mb[i] = beta1*l.mb[i] + (1-beta1)*g
					l.vb[i] = beta2*l.vb[i] + (1-beta2)*g*g
					mhat := l.mb[i] / bc1
					vhat := l.vb[i] / bc2
					l.b[i] -= cfg.LearningRate * mhat / (math.Sqrt(vhat) + eps)
				}
			}
		}
	}
	return m, nil
}
