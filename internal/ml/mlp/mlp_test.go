package mlp

import (
	"math"
	"math/rand"
	"testing"

	"cleo/internal/linalg"
	"cleo/internal/ml"
)

func TestLearnsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 300
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = math.Expm1(1.5*a + 0.5*b)
	}
	cfg := DefaultConfig()
	cfg.Epochs = 150
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	acc := ml.Evaluate(ml.PredictAll(m, x), y)
	if acc.Pearson < 0.9 {
		t.Fatalf("pearson = %v, want > 0.9", acc.Pearson)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	n := 50
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		x.Set(i, 1, rng.Float64())
		y[i] = x.At(i, 0) * 10
	}
	cfg := DefaultConfig()
	cfg.Epochs = 5
	m1, _ := New(cfg).FitModel(x, y)
	m2, _ := New(cfg).FitModel(x, y)
	if m1.Predict(x.Row(0)) != m2.Predict(x.Row(0)) {
		t.Fatal("same seed produced different networks")
	}
}

func TestPredictionsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	n := 60
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, rng.Float64())
		y[i] = 5
	}
	cfg := DefaultConfig()
	cfg.Epochs = 20
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{-50}); got < 0 {
		t.Fatalf("prediction %v < 0 under MSLE", got)
	}
}

func TestShortFeatureVector(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	n := 40
	x := linalg.NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = 1
	}
	cfg := DefaultConfig()
	cfg.Epochs = 3
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Predict([]float64{0.5}) // must not panic
}

func TestErrors(t *testing.T) {
	if _, err := New(DefaultConfig()).FitModel(nil, nil); err != ml.ErrNoData {
		t.Fatalf("nil: %v", err)
	}
}
