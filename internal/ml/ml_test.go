package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cleo/internal/linalg"
)

func TestLossStrings(t *testing.T) {
	want := map[Loss]string{
		MSLE:  "Mean Squared-Log Error",
		MSE:   "Mean Squared Error",
		MAE:   "Mean Absolute Error",
		MedAE: "Median Absolute Error",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), s)
		}
	}
}

func TestLossEval(t *testing.T) {
	p := []float64{1, 2, 3}
	a := []float64{1, 2, 3}
	for _, l := range []Loss{MSLE, MSE, MAE, MedAE} {
		if got := l.Eval(p, a); got != 0 {
			t.Errorf("%v.Eval(perfect) = %v, want 0", l, got)
		}
	}
	if got := MSE.Eval([]float64{0, 0}, []float64{1, 3}); got != 5 {
		t.Errorf("MSE = %v, want 5", got)
	}
	if got := MAE.Eval([]float64{0, 0}, []float64{1, 3}); got != 2 {
		t.Errorf("MAE = %v, want 2", got)
	}
	if got := MedAE.Eval([]float64{0, 0, 0}, []float64{1, 2, 9}); got != 2 {
		t.Errorf("MedAE = %v, want 2", got)
	}
}

func TestMSLEPenalizesUnderEstimationMore(t *testing.T) {
	// Under-estimating by a factor k is penalized like over-estimating by
	// factor k (symmetric in log space) but more than over-estimating by
	// the same absolute amount. The paper's argument is in ratios.
	actual := []float64{100}
	under := MSLE.Eval([]float64{50}, actual) // half
	overAbs := MSLE.Eval([]float64{150}, actual)
	if under <= overAbs {
		t.Fatalf("under-estimation %v should exceed equal-absolute over-estimation %v", under, overAbs)
	}
}

func TestTargetTransformRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		v = math.Abs(math.Mod(v, 1e9))
		got := MSLE.InverseTarget(MSLE.TransformTarget(v))
		return math.Abs(got-v) <= 1e-6*(1+v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self correlation = %v", got)
	}
	y := []float64{4, 3, 2, 1}
	if got := Pearson(x, y); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti correlation = %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("constant input correlation = %v, want 0", got)
	}
	if got := Pearson(x, x[:2]); got != 0 {
		t.Fatalf("length mismatch correlation = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if got := Quantile(s, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(s, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(s, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(s, 0.25); got != 2 {
		t.Fatalf("q.25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("singleton quantile = %v", got)
	}
}

func TestRelativeErrors(t *testing.T) {
	errs := RelativeErrors([]float64{110, 90}, []float64{100, 100})
	if math.Abs(errs[0]-0.1) > 1e-12 || math.Abs(errs[1]-0.1) > 1e-12 {
		t.Fatalf("errs = %v", errs)
	}
	if got := MedianRelativeError([]float64{110, 90}, []float64{100, 100}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("median rel err = %v", got)
	}
}

func TestRatios(t *testing.T) {
	r := Ratios([]float64{200, 50}, []float64{100, 100})
	if r[0] != 2 || r[1] != 0.5 {
		t.Fatalf("ratios = %v", r)
	}
	// Zero actuals must not divide by zero.
	r = Ratios([]float64{1}, []float64{0})
	if math.IsInf(r[0], 0) || math.IsNaN(r[0]) {
		t.Fatalf("ratio with zero actual = %v", r[0])
	}
}

func TestCDF(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	pts := CDF(vals, []float64{0.5})
	if len(pts) != 1 || pts[0].Fraction != 0.5 {
		t.Fatalf("pts = %v", pts)
	}
	if pts[0].Value < 5 || pts[0].Value > 6 {
		t.Fatalf("median = %v", pts[0].Value)
	}
}

func TestEvaluate(t *testing.T) {
	acc := Evaluate([]float64{100, 200, 300}, []float64{100, 200, 300})
	if acc.MedianErr != 0 || acc.Pearson < 0.999 || acc.Samples != 3 {
		t.Fatalf("acc = %+v", acc)
	}
	if math.Abs(acc.MedianRatio-1) > 1e-9 {
		t.Fatalf("median ratio = %v", acc.MedianRatio)
	}
}

// meanTrainer is a trivial Trainer predicting the training mean.
type meanTrainer struct{}

type meanModel struct{ mean float64 }

func (m meanModel) Predict([]float64) float64 { return m.mean }

func (meanTrainer) Fit(x *linalg.Matrix, y []float64) (Regressor, error) {
	if err := ValidateTrainingData(x, y); err != nil {
		return nil, err
	}
	return meanModel{mean: linalg.Mean(y)}, nil
}

func TestKFold(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := linalg.NewMatrix(50, 1)
	y := make([]float64, 50)
	for i := range y {
		y[i] = 10
	}
	res, err := KFold(meanTrainer{}, x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	if res.Pooled.MedianErr > 1e-9 {
		t.Fatalf("constant target CV err = %v", res.Pooled.MedianErr)
	}
	if len(res.OutOfFold) != 50 {
		t.Fatalf("oof len = %d", len(res.OutOfFold))
	}
}

func TestKFoldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := KFold(meanTrainer{}, linalg.NewMatrix(0, 1), nil, 5, rng); err == nil {
		t.Fatal("expected error for empty data")
	}
	x := linalg.NewMatrix(4, 1)
	if _, err := KFold(meanTrainer{}, x, []float64{1, 2, 3, 4}, 1, rng); err == nil {
		t.Fatal("expected error for k<2")
	}
}

func TestTrainTestSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := linalg.NewMatrix(10, 2)
	y := make([]float64, 10)
	for i := range y {
		y[i] = float64(i)
		x.Set(i, 0, float64(i))
	}
	trX, trY, teX, teY := TrainTestSplit(x, y, 0.3, rng)
	if trX.Rows+teX.Rows != 10 || len(trY)+len(teY) != 10 {
		t.Fatalf("split sizes: %d + %d", trX.Rows, teX.Rows)
	}
	if teX.Rows != 3 {
		t.Fatalf("test rows = %d, want 3", teX.Rows)
	}
	// Rows must keep features aligned with targets.
	for i := 0; i < trX.Rows; i++ {
		if trX.At(i, 0) != trY[i] {
			t.Fatal("split misaligned features and targets")
		}
	}
}

func TestPredictAll(t *testing.T) {
	x := linalg.NewMatrix(3, 1)
	got := PredictAll(meanModel{mean: 2.5}, x)
	if len(got) != 3 || got[0] != 2.5 {
		t.Fatalf("PredictAll = %v", got)
	}
}

func TestValidateTrainingData(t *testing.T) {
	if err := ValidateTrainingData(nil, nil); err != ErrNoData {
		t.Fatalf("nil X: %v", err)
	}
	if err := ValidateTrainingData(linalg.NewMatrix(2, 1), []float64{1}); err != ErrDimMismatch {
		t.Fatalf("dim mismatch: %v", err)
	}
	if err := ValidateTrainingData(linalg.NewMatrix(2, 1), []float64{1, 2}); err != nil {
		t.Fatalf("valid data: %v", err)
	}
}
