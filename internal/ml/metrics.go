package ml

import (
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either input is constant or the lengths mismatch, which
// mirrors how the paper reports near-zero correlation for degenerate
// predictors.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	n := float64(len(x))
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Quantile returns the q-quantile (0<=q<=1) of sorted using linear
// interpolation. The input must already be sorted ascending.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RelativeErrors returns |p-a|/max(a, eps) for each pair, the paper's
// "error percentage" (e.g. a prediction 14% off reports 0.14).
func RelativeErrors(p, a []float64) []float64 {
	const eps = 1e-9
	out := make([]float64, len(p))
	for i := range p {
		den := math.Abs(a[i])
		if den < eps {
			den = eps
		}
		out[i] = math.Abs(p[i]-a[i]) / den
	}
	return out
}

// MedianRelativeError returns the median of RelativeErrors(p, a).
func MedianRelativeError(p, a []float64) float64 {
	errs := RelativeErrors(p, a)
	sort.Float64s(errs)
	return Quantile(errs, 0.5)
}

// PercentileRelativeError returns the q-quantile of the relative errors.
func PercentileRelativeError(p, a []float64, q float64) float64 {
	errs := RelativeErrors(p, a)
	sort.Float64s(errs)
	return Quantile(errs, q)
}

// Ratios returns p[i]/max(a[i], eps) — the estimated/actual ratios plotted
// as CDFs throughout the paper's evaluation (Figures 1, 12, 13, 15).
func Ratios(p, a []float64) []float64 {
	const eps = 1e-9
	out := make([]float64, len(p))
	for i := range p {
		den := a[i]
		if den < eps {
			den = eps
		}
		num := p[i]
		if num < eps {
			num = eps
		}
		out[i] = num / den
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64 // the x-axis value
	Fraction float64 // fraction of samples <= Value
}

// CDF computes an empirical CDF of values sampled at the given quantiles
// (e.g. 0.01..0.99). Values are copied and sorted internally.
func CDF(values []float64, quantiles []float64) []CDFPoint {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(quantiles))
	for _, q := range quantiles {
		out = append(out, CDFPoint{Value: Quantile(sorted, q), Fraction: q})
	}
	return out
}

// StandardQuantiles is the default grid used when printing CDFs.
var StandardQuantiles = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// Accuracy summarises prediction quality the way the paper's tables do.
type Accuracy struct {
	Pearson     float64 // correlation between predicted and actual
	MedianErr   float64 // median relative error (0.14 == 14%)
	P95Err      float64 // 95th-percentile relative error
	Samples     int     // number of (prediction, actual) pairs
	MedianRatio float64 // median of estimated/actual
}

// Evaluate computes Accuracy for predictions p against actuals a.
func Evaluate(p, a []float64) Accuracy {
	ratios := Ratios(p, a)
	sort.Float64s(ratios)
	return Accuracy{
		Pearson:     Pearson(p, a),
		MedianErr:   MedianRelativeError(p, a),
		P95Err:      PercentileRelativeError(p, a, 0.95),
		Samples:     len(p),
		MedianRatio: Quantile(ratios, 0.5),
	}
}
