// Package elasticnet implements L1+L2 regularized linear regression fitted
// by cyclic coordinate descent, the learner the paper selects for all four
// individual cost models (Section 3.4: alpha=1.0, l1_ratio=0.5, fit
// intercept). Features are standardized internally and the target is fitted
// in the loss's transformed space (log1p for MSLE), so predictions are
// always non-negative latencies.
package elasticnet

import (
	"math"

	"cleo/internal/linalg"
	"cleo/internal/ml"
)

// Config mirrors the scikit-learn/paper hyper-parameters.
type Config struct {
	// Alpha is the overall regularization strength (paper: 1.0).
	Alpha float64
	// L1Ratio balances L1 vs L2 (paper: 0.5). 1 is lasso, 0 is ridge.
	L1Ratio float64
	// FitIntercept enables the bias term (paper: true).
	FitIntercept bool
	// MaxIter bounds coordinate-descent sweeps.
	MaxIter int
	// Tol stops iteration when the max coefficient update falls below it.
	Tol float64
	// Loss selects the target transformation (paper: MSLE).
	Loss ml.Loss
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Alpha:        1.0,
		L1Ratio:      0.5,
		FitIntercept: true,
		MaxIter:      300,
		Tol:          1e-5,
		Loss:         ml.MSLE,
	}
}

// Model is a fitted elastic net. Weights are expressed in the original
// (unstandardized) feature space so Predict is a plain dot product.
//
// Predictions are clamped to a widened envelope of the training targets
// (ClampLo, ClampHi): linear models in log-target space otherwise
// extrapolate explosively on feature vectors far outside the training
// distribution — exactly what happens when the optimizer prices candidate
// plan shapes never executed before.
type Model struct {
	Weights   []float64 // per original feature
	Intercept float64
	Loss      ml.Loss
	// ClampLo/ClampHi bound predictions; both zero disables clamping.
	ClampLo float64
	ClampHi float64
}

// Predict implements ml.Regressor; it is a thin wrapper over the shared
// row kernel the batch path uses.
func (m *Model) Predict(features []float64) float64 {
	return m.predictRow(features)
}

// PredictBatch implements ml.BatchRegressor: one pass over the matrix,
// one dot product per row, zero allocations.
func (m *Model) PredictBatch(x [][]float64, out []float64) {
	for i, row := range x {
		out[i] = m.predictRow(row)
	}
}

func (m *Model) predictRow(features []float64) float64 {
	// Rows may carry more features than the model has weights (shared
	// extended feature rows); extra columns read as zero weight.
	w := m.Weights
	if len(features) < len(w) {
		w = w[:len(features)]
	}
	z := m.Intercept + linalg.Dot(w, features[:len(w)])
	out := m.Loss.InverseTarget(z)
	if m.ClampHi > 0 {
		if out < m.ClampLo {
			out = m.ClampLo
		}
		if out > m.ClampHi {
			out = m.ClampHi
		}
	}
	return out
}

// NonZeroWeights returns the count of non-zero coefficients; elastic net's
// automatic feature selection (Section 3.4) shows up here.
func (m *Model) NonZeroWeights() int {
	n := 0
	for _, w := range m.Weights {
		if w != 0 {
			n++
		}
	}
	return n
}

// Trainer fits Models with a fixed Config.
type Trainer struct{ Config Config }

// New returns a Trainer with the given config.
func New(cfg Config) *Trainer { return &Trainer{Config: cfg} }

// Fit implements ml.Trainer.
func (t *Trainer) Fit(x *linalg.Matrix, y []float64) (ml.Regressor, error) {
	m, err := t.FitModel(x, y)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// FitModel trains and returns the concrete *Model.
func (t *Trainer) FitModel(x *linalg.Matrix, y []float64) (*Model, error) {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return nil, err
	}
	cfg := t.Config
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 300
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-5
	}

	n, p := x.Rows, x.Cols
	ty := cfg.Loss.TransformAll(y)

	// Standardize features; constant columns get weight 0.
	means := x.ColMeans()
	stds := x.ColStdDevs()
	xs := linalg.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		src := x.Row(i)
		dst := xs.Row(i)
		for j := 0; j < p; j++ {
			if stds[j] > 0 {
				dst[j] = (src[j] - means[j]) / stds[j]
			}
		}
	}
	// Standardize the target as well, so the regularization strength is
	// scale-free: transformed latencies of one subgraph template often
	// span less than one log-unit, and an absolute-scale penalty would
	// zero every coefficient.
	yMean := 0.0
	if cfg.FitIntercept {
		yMean = linalg.Mean(ty)
	}
	yStd := linalg.StdDev(ty)
	if yStd <= 0 {
		yStd = 1
	}
	resid := make([]float64, n) // residual = (y - yMean)/yStd - Xs·w
	for i := range resid {
		resid[i] = (ty[i] - yMean) / yStd
	}

	w := make([]float64, p)
	// Precompute per-column squared norms (constant since standardized,
	// but cheap insurance against zero-variance columns).
	colSq := make([]float64, p)
	for j := 0; j < p; j++ {
		for i := 0; i < n; i++ {
			v := xs.At(i, j)
			colSq[j] += v * v
		}
	}
	l1 := cfg.Alpha * cfg.L1Ratio * float64(n)
	l2 := cfg.Alpha * (1 - cfg.L1Ratio) * float64(n)

	for iter := 0; iter < cfg.MaxIter; iter++ {
		maxDelta := 0.0
		for j := 0; j < p; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = X_j · (resid + X_j*w_j)
			var rho float64
			for i := 0; i < n; i++ {
				rho += xs.At(i, j) * resid[i]
			}
			rho += colSq[j] * w[j]
			newW := linalg.SoftThreshold(rho, l1) / (colSq[j] + l2)
			delta := newW - w[j]
			if delta != 0 {
				for i := 0; i < n; i++ {
					resid[i] -= delta * xs.At(i, j)
				}
				w[j] = newW
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
			}
		}
		if maxDelta < cfg.Tol {
			break
		}
	}

	// Fold feature and target standardization back into original-space
	// weights.
	outW := make([]float64, p)
	intercept := yMean
	for j := 0; j < p; j++ {
		if stds[j] > 0 {
			outW[j] = w[j] * yStd / stds[j]
			intercept -= w[j] * yStd * means[j] / stds[j]
		}
	}
	lo, hi := y[0], y[0]
	for _, v := range y {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return &Model{
		Weights:   outW,
		Intercept: intercept,
		Loss:      cfg.Loss,
		ClampLo:   lo / 8,
		ClampHi:   hi*8 + 1e-9,
	}, nil
}
