package elasticnet

import (
	"math"
	"math/rand"
	"testing"

	"cleo/internal/linalg"
	"cleo/internal/ml"
)

// fitOn builds a simple synthetic regression problem in log space:
// y = exp(w·x + b) - 1, which MSLE-space elastic net can fit exactly.
func synth(n int, rng *rand.Rand) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 5
		b := rng.Float64() * 5
		c := rng.Float64() * 5
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		x.Set(i, 2, c)
		y[i] = math.Expm1(0.8*a + 0.3*b + 0.1)
	}
	return x, y
}

func TestFitRecoversSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := synth(400, rng)
	cfg := DefaultConfig()
	cfg.Alpha = 0.001 // light regularization to recover the signal
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, x.Rows)
	for i := range preds {
		preds[i] = m.Predict(x.Row(i))
	}
	acc := ml.Evaluate(preds, y)
	if acc.MedianErr > 0.05 {
		t.Fatalf("median error %v too high", acc.MedianErr)
	}
	if acc.Pearson < 0.98 {
		t.Fatalf("pearson %v too low", acc.Pearson)
	}
}

func TestPredictionsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := synth(100, rng)
	m, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{-100, -100, -100}
	if got := m.Predict(probe); got < 0 {
		t.Fatalf("MSLE-space prediction %v is negative", got)
	}
}

func TestRegularizationSparsifies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 10 features, only the first matters.
	n := 200
	x := linalg.NewMatrix(n, 10)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 10; j++ {
			x.Set(i, j, rng.Float64())
		}
		y[i] = math.Expm1(3 * x.At(i, 0))
	}
	light := DefaultConfig()
	light.Alpha = 0.0001
	heavy := DefaultConfig()
	heavy.Alpha = 0.5

	mLight, err := New(light).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	mHeavy, err := New(heavy).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if mHeavy.NonZeroWeights() > mLight.NonZeroWeights() {
		t.Fatalf("heavier L1 kept more weights: %d > %d",
			mHeavy.NonZeroWeights(), mLight.NonZeroWeights())
	}
}

func TestConstantColumnGetsZeroWeight(t *testing.T) {
	n := 50
	x := linalg.NewMatrix(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, 7) // constant
		y[i] = float64(i)
	}
	m, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights[1] != 0 {
		t.Fatalf("constant column weight = %v, want 0", m.Weights[1])
	}
}

func TestFitErrors(t *testing.T) {
	tr := New(DefaultConfig())
	if _, err := tr.FitModel(nil, nil); err != ml.ErrNoData {
		t.Fatalf("nil data: %v", err)
	}
	if _, err := tr.FitModel(linalg.NewMatrix(2, 1), []float64{1}); err != ml.ErrDimMismatch {
		t.Fatalf("mismatch: %v", err)
	}
}

func TestPredictShortFeatureVector(t *testing.T) {
	m := &Model{Weights: []float64{1, 2, 3}, Intercept: 0, Loss: ml.MSE}
	// Shorter feature vector: missing features treated as absent.
	if got := m.Predict([]float64{1}); got != 1 {
		t.Fatalf("short predict = %v", got)
	}
}

func TestTrainerImplementsInterface(t *testing.T) {
	var _ ml.Trainer = New(DefaultConfig())
	x := linalg.NewMatrix(10, 1)
	y := make([]float64, 10)
	for i := range y {
		x.Set(i, 0, float64(i))
		y[i] = float64(2 * i)
	}
	r, err := New(DefaultConfig()).Fit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r == nil {
		t.Fatal("nil regressor")
	}
}

func TestMSELossMode(t *testing.T) {
	// With MSE loss, fitting a plain linear target should be near exact.
	n := 100
	x := linalg.NewMatrix(n, 1)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		y[i] = 3*float64(i) + 1
	}
	cfg := DefaultConfig()
	cfg.Loss = ml.MSE
	cfg.Alpha = 1e-6
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-3) > 0.05 {
		t.Fatalf("slope = %v, want ~3", m.Weights[0])
	}
	if math.Abs(m.Intercept-1) > 2 {
		t.Fatalf("intercept = %v, want ~1", m.Intercept)
	}
}
