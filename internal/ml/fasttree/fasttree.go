// Package fasttree implements MART-style gradient-boosted regression trees
// with stochastic subsampling — a from-scratch equivalent of the ML.NET
// FastTree learner the paper uses as its meta-ensemble (Section 4.3:
// 20 trees, depth 5, MSLE loss, subsampling rate 0.9).
//
// Each successive tree fits the residuals of the ensemble so far in the
// transformed (log) target space, which makes squared loss there equivalent
// to MSLE on raw targets.
package fasttree

import (
	"math/rand"

	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/dtree"
)

// Config mirrors the paper's FastTree hyper-parameters.
type Config struct {
	// NumTrees is the boosting round count (paper: 20).
	NumTrees int
	// MaxDepth bounds each tree (paper: 5).
	MaxDepth int
	// LearningRate shrinks each tree's contribution.
	LearningRate float64
	// SubsampleRate is the per-round row sampling fraction (paper: 0.9);
	// sub-sampling is what makes the combined model resilient to noisy
	// execution times (Section 4.3).
	SubsampleRate float64
	// MinSamplesLeaf is passed through to each tree.
	MinSamplesLeaf int
	// Seed drives subsampling.
	Seed int64
	// Loss selects the target transformation (paper: MSLE).
	Loss ml.Loss
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		NumTrees:       20,
		MaxDepth:       5,
		LearningRate:   0.2,
		SubsampleRate:  0.9,
		MinSamplesLeaf: 2,
		Seed:           1,
		Loss:           ml.MSLE,
	}
}

// Model is a fitted boosted ensemble.
type Model struct {
	Base         float64 // initial prediction in transformed space
	Trees        []*dtree.Model
	LearningRate float64
	Loss         ml.Loss
}

// Predict implements ml.Regressor.
func (m *Model) Predict(features []float64) float64 {
	z := m.Base
	for _, t := range m.Trees {
		z += m.LearningRate * t.PredictTransformed(features)
	}
	return m.Loss.InverseTarget(z)
}

// PredictBatch implements ml.BatchRegressor. It iterates tree-major — each
// boosting round's node array is walked by every row before moving on —
// accumulating shrunken contributions directly into out, with zero per-row
// allocations.
func (m *Model) PredictBatch(x [][]float64, out []float64) {
	out = out[:len(x)]
	for i := range out {
		out[i] = m.Base
	}
	for _, t := range m.Trees {
		t.AddTransformedBatch(x, m.LearningRate, out)
	}
	for i := range out {
		out[i] = m.Loss.InverseTarget(out[i])
	}
}

// NumTrees reports the fitted round count.
func (m *Model) NumTrees() int { return len(m.Trees) }

// Trainer fits Models with a fixed Config.
type Trainer struct{ Config Config }

// New returns a Trainer with the given config.
func New(cfg Config) *Trainer { return &Trainer{Config: cfg} }

// Fit implements ml.Trainer.
func (t *Trainer) Fit(x *linalg.Matrix, y []float64) (ml.Regressor, error) {
	m, err := t.FitModel(x, y)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// FitModel trains the boosted ensemble.
func (t *Trainer) FitModel(x *linalg.Matrix, y []float64) (*Model, error) {
	if err := ml.ValidateTrainingData(x, y); err != nil {
		return nil, err
	}
	cfg := t.Config
	if cfg.NumTrees <= 0 {
		cfg.NumTrees = 20
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 5
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.2
	}
	if cfg.SubsampleRate <= 0 || cfg.SubsampleRate > 1 {
		cfg.SubsampleRate = 0.9
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	n := x.Rows
	ty := cfg.Loss.TransformAll(y)
	base := linalg.Mean(ty)
	pred := make([]float64, n)
	for i := range pred {
		pred[i] = base
	}
	resid := make([]float64, n)

	model := &Model{Base: base, LearningRate: cfg.LearningRate, Loss: cfg.Loss}
	treeCfg := dtree.Config{
		MaxDepth:       cfg.MaxDepth,
		MinSamplesLeaf: cfg.MinSamplesLeaf,
		Loss:           cfg.Loss,
	}
	for round := 0; round < cfg.NumTrees; round++ {
		for i := range resid {
			resid[i] = ty[i] - pred[i]
		}
		rows := sampleRows(n, cfg.SubsampleRate, rng)
		tree, err := dtree.New(treeCfg).FitTransformed(x, resid, rows)
		if err != nil {
			return nil, err
		}
		model.Trees = append(model.Trees, tree)
		for i := 0; i < n; i++ {
			pred[i] += cfg.LearningRate * tree.PredictTransformed(x.Row(i))
		}
	}
	return model, nil
}

// sampleRows draws a without-replacement subset of about rate*n rows.
func sampleRows(n int, rate float64, rng *rand.Rand) []int {
	k := int(rate * float64(n))
	if k < 1 {
		k = 1
	}
	if k >= n {
		rows := make([]int, n)
		for i := range rows {
			rows[i] = i
		}
		return rows
	}
	return rng.Perm(n)[:k]
}
