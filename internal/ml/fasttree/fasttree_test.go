package fasttree

import (
	"math"
	"math/rand"
	"testing"

	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/dtree"
)

func synth(n int, rng *rand.Rand) (*linalg.Matrix, []float64) {
	x := linalg.NewMatrix(n, 3)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		x.Set(i, 2, c)
		y[i] = math.Expm1(2*a + b*c)
	}
	return x, y
}

func TestBoostingImprovesOverSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x, y := synth(500, rng)

	tcfg := dtree.DefaultConfig()
	tcfg.MaxDepth = 5
	single, err := dtree.New(tcfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}

	sAcc := ml.Evaluate(ml.PredictAll(single, x), y)
	bAcc := ml.Evaluate(ml.PredictAll(boosted, x), y)
	if bAcc.MedianErr >= sAcc.MedianErr {
		t.Fatalf("boosting median err %v >= single-tree %v", bAcc.MedianErr, sAcc.MedianErr)
	}
}

func TestNumTreesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x, y := synth(100, rng)
	cfg := DefaultConfig()
	cfg.NumTrees = 7
	m, err := New(cfg).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumTrees() != 7 {
		t.Fatalf("trees = %d, want 7", m.NumTrees())
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, y := synth(100, rng)
	m1, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Predict(x.Row(3)) != m2.Predict(x.Row(3)) {
		t.Fatal("same seed produced different ensembles")
	}
}

func TestSubsamplingUsed(t *testing.T) {
	// With subsample < 1 and two different seeds the fits should differ.
	rng := rand.New(rand.NewSource(24))
	x, y := synth(200, rng)
	cfg1 := DefaultConfig()
	cfg1.Seed = 1
	cfg2 := DefaultConfig()
	cfg2.Seed = 2
	m1, _ := New(cfg1).FitModel(x, y)
	m2, _ := New(cfg2).FitModel(x, y)
	diff := false
	for i := 0; i < x.Rows && !diff; i++ {
		if m1.Predict(x.Row(i)) != m2.Predict(x.Row(i)) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical subsampled ensembles")
	}
}

func TestPredictionsNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	x, y := synth(100, rng)
	m, err := New(DefaultConfig()).FitModel(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{-10, -10, -10}); got < 0 {
		t.Fatalf("prediction %v < 0 under MSLE", got)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(DefaultConfig()).FitModel(nil, nil); err != ml.ErrNoData {
		t.Fatalf("nil: %v", err)
	}
}
