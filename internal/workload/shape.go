package workload

import (
	"fmt"
	"math/rand"

	"cleo/internal/plan"
)

// planShape is a job template's structural blueprint: a logical plan with
// input slots instead of concrete table names. Every instance of the
// template builds the same operator tree (hence shares subgraph
// signatures) over that day's tables.
type planShape struct {
	root *shapeNode
}

// shapeNode mirrors plan.Logical with an input slot for leaves.
type shapeNode struct {
	op            plan.LogicalOp
	children      []*shapeNode
	inputSlot     int
	inputTemplate string
	pred          string
	keys          []plan.Column
	udf           string
	n             int
}

// build instantiates the shape over concrete table names (one per slot).
func (s planShape) build(tables []string) *plan.Logical {
	var conv func(n *shapeNode) *plan.Logical
	conv = func(n *shapeNode) *plan.Logical {
		l := &plan.Logical{
			Op:            n.op,
			InputTemplate: n.inputTemplate,
			Pred:          n.pred,
			Keys:          append([]plan.Column(nil), n.keys...),
			UDF:           n.udf,
			N:             n.n,
		}
		if n.op == plan.LGet {
			l.Table = tables[n.inputSlot]
		}
		for _, c := range n.children {
			l.Children = append(l.Children, conv(c))
		}
		return l
	}
	return conv(s.root)
}

// joinKeys is the column pool for join/group/sort keys. A small pool means
// different templates aggregate on the same columns, with shared hidden
// skew — realistic for production schemas.
var joinKeys = []plan.Column{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}

// newShape draws a random plan shape for template t. When sharedFrom is
// non-nil, the first input chain replicates sharedFrom's first chain
// (operators, predicates and UDFs), creating a common subexpression.
func (g *clusterGen) newShape(t *template, sharedFrom *template) planShape {
	rng := g.rng
	var chains []*shapeNode
	for slot := range t.inputs {
		if slot == 0 && sharedFrom != nil && len(sharedFrom.chains) > 0 {
			chains = append(chains, cloneShape(sharedFrom.chains[0]))
			continue
		}
		chains = append(chains, g.newChain(t.id, slot, t.inputs[slot].template, rng))
	}
	t.chains = chains

	// Left-deep joins across chains. Every key is drawn from the columns
	// both sides actually carry, so generated plans are well-formed by
	// construction — a key missing from its input schema is a compile error
	// in the executor, not a silent hash-as-zero.
	cur := chains[0]
	for i := 1; i < len(chains); i++ {
		cand := commonCols(cur, chains[i])
		if len(cand) == 0 {
			// Disjoint projections: widen the fresh right chain by dropping
			// its projection (the shared slot-0 chain is never mutated, so
			// common-subexpression signatures stay intact).
			if chains[i].op == plan.LProject {
				chains[i] = chains[i].children[0]
			}
			cand = commonCols(cur, chains[i])
		}
		cur = &shapeNode{
			op:       plan.LJoin,
			children: []*shapeNode{cur, chains[i]},
			pred:     fmt.Sprintf("%s.j%d", t.id, i),
			keys:     []plan.Column{cand[rng.Intn(len(cand))]},
		}
	}
	// Optional aggregate, grouped by a column the input carries.
	if rng.Float64() < 0.75 {
		cand := availCols(cur)
		cur = &shapeNode{op: plan.LAggregate, children: []*shapeNode{cur}, keys: []plan.Column{cand[rng.Intn(len(cand))]}}
		// Occasionally a second-level global rollup (the aggregate's derived
		// columns are not groupable, so the rollup reduces to one row).
		if rng.Float64() < 0.2 {
			cur = &shapeNode{op: plan.LAggregate, children: []*shapeNode{cur}}
		}
	}
	// Optional ordering, over a carried column (aggregates additionally
	// expose their derived count/sum columns).
	switch r := rng.Float64(); {
	case r < 0.2:
		cand := sortCols(cur)
		cur = &shapeNode{op: plan.LSort, children: []*shapeNode{cur}, keys: []plan.Column{cand[rng.Intn(len(cand))]}}
	case r < 0.35:
		cand := sortCols(cur)
		cur = &shapeNode{op: plan.LTopN, children: []*shapeNode{cur}, keys: []plan.Column{cand[rng.Intn(len(cand))]}, n: 10 + rng.Intn(990)}
	}
	root := &shapeNode{op: plan.LOutput, children: []*shapeNode{cur}}
	return planShape{root: root}
}

// shapeAvail reports the key-pool columns a subtree's output carries; top
// means "every referenced column" (pure scan subtrees, which compile to
// the full scan schema).
func shapeAvail(n *shapeNode) (cols []plan.Column, top bool) {
	switch n.op {
	case plan.LGet:
		return nil, true
	case plan.LProject:
		cols, top := shapeAvail(n.children[0])
		if top {
			return n.keys, false
		}
		return intersectCols(n.keys, cols), false
	case plan.LAggregate:
		return n.keys, false
	default: // Select, Process, Join (emits left rows), Sort, TopN, Output
		return shapeAvail(n.children[0])
	}
}

// availCols is shapeAvail with top expanded to the shared key pool.
func availCols(n *shapeNode) []plan.Column {
	cols, top := shapeAvail(n)
	if top {
		return joinKeys
	}
	return cols
}

// commonCols lists the columns both subtrees carry, in pool order.
func commonCols(l, r *shapeNode) []plan.Column {
	return intersectCols(availCols(l), availCols(r))
}

// sortCols lists the orderable columns at a subtree's output: the carried
// key columns, plus the derived count/sum columns above an aggregate.
func sortCols(n *shapeNode) []plan.Column {
	cols := availCols(n)
	if n.op == plan.LAggregate {
		cols = append(append([]plan.Column(nil), cols...), "__cnt", "__sum")
	}
	return cols
}

// intersectCols intersects two column lists, preserving a's order.
func intersectCols(a, b []plan.Column) []plan.Column {
	var out []plan.Column
	for _, c := range a {
		for _, d := range b {
			if c == d {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// newChain builds one input's scan chain: Get → 0–2 filters → optional UDF
// → optional projection.
func (g *clusterGen) newChain(templateID string, slot int, inputTemplate string, rng *rand.Rand) *shapeNode {
	cur := &shapeNode{op: plan.LGet, inputSlot: slot, inputTemplate: inputTemplate}
	nFilters := rng.Intn(3)
	for f := 0; f < nFilters; f++ {
		cur = &shapeNode{
			op:       plan.LSelect,
			children: []*shapeNode{cur},
			pred:     fmt.Sprintf("%s.s%d.%d", templateID, slot, f),
		}
	}
	if rng.Float64() < 0.3 {
		cur = &shapeNode{
			op:       plan.LProcess,
			children: []*shapeNode{cur},
			udf:      fmt.Sprintf("udf%d", rng.Intn(12)),
		}
	}
	if rng.Float64() < 0.4 {
		cur = &shapeNode{
			op:       plan.LProject,
			children: []*shapeNode{cur},
			keys:     []plan.Column{joinKeys[rng.Intn(len(joinKeys))]},
		}
	}
	return cur
}

func cloneShape(n *shapeNode) *shapeNode {
	out := *n
	out.keys = append([]plan.Column(nil), n.keys...)
	out.children = make([]*shapeNode, len(n.children))
	for i, c := range n.children {
		out.children[i] = cloneShape(c)
	}
	return &out
}
