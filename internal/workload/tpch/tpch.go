// Package tpch builds the TPC-H benchmark workload the paper evaluates in
// Section 6.6.2: the eight table schemas with scale-factor-scaled
// statistics, and logical plan templates for all 22 queries. Queries are
// structural approximations — the same scan/filter/join/aggregate shapes
// over the same tables and join keys the official queries use — since the
// simulator prices plans from statistics rather than executing SQL.
//
// lineitem, orders and part are registered as stored hash-partitioned
// inputs (as the paper's SCOPE deployment had them), which is what enables
// the Q8/Q9 shuffle eliminations CLEO finds.
package tpch

import (
	"fmt"

	"cleo/internal/plan"
	"cleo/internal/stats"
)

// Table names.
const (
	Lineitem = "lineitem"
	Orders   = "orders"
	Customer = "customer"
	Part     = "part"
	Supplier = "supplier"
	PartSupp = "partsupp"
	Nation   = "nation"
	Region   = "region"
)

// tableSpec gives per-scale-factor cardinality and layout.
type tableSpec struct {
	rowsPerSF float64 // rows at SF=1; nation/region are fixed
	fixed     bool
	rowLen    float64
	partKey   string // stored partitioning column, if any
	partCount int
}

// specs mirror the TPC-H specification's table cardinalities.
var specs = map[string]tableSpec{
	Lineitem: {rowsPerSF: 6_001_215, rowLen: 112, partKey: "l_orderkey", partCount: 200},
	Orders:   {rowsPerSF: 1_500_000, rowLen: 104, partKey: "o_orderkey", partCount: 200},
	Customer: {rowsPerSF: 150_000, rowLen: 160},
	Part:     {rowsPerSF: 200_000, rowLen: 120, partKey: "p_partkey", partCount: 100},
	Supplier: {rowsPerSF: 10_000, rowLen: 140},
	PartSupp: {rowsPerSF: 800_000, rowLen: 144},
	Nation:   {rowsPerSF: 25, fixed: true, rowLen: 108},
	Region:   {rowsPerSF: 5, fixed: true, rowLen: 116},
}

// Register installs the SF-scaled tables into the catalog and pins the
// selectivities of the standard predicates to their spec values.
func Register(cat *stats.Catalog, scaleFactor float64) {
	if scaleFactor <= 0 {
		scaleFactor = 1
	}
	for name, s := range specs {
		rows := s.rowsPerSF
		if !s.fixed {
			rows *= scaleFactor
		}
		cat.PutTable(name, stats.TableStats{
			Rows:          rows,
			RowLength:     s.rowLen,
			PartitionedOn: s.partKey,
			Partitions:    s.partCount,
		})
	}
	pinSelectivities(cat, scaleFactor)
}

// pinSelectivities fixes the true selectivities of the well-known TPC-H
// predicates (estimates keep realistic biases: range predicates estimated
// reasonably, correlated ones under-estimated).
func pinSelectivities(cat *stats.Catalog, sf float64) {
	// Filters: (pred, true, est).
	filters := []struct {
		pred     string
		tru, est float64
	}{
		{"q1.shipdate", 0.98, 0.95},
		{"q2.region", 0.20, 0.25},
		{"q2.size", 0.02, 0.01},
		{"q3.custseg", 0.20, 0.22},
		{"q3.orderdate", 0.48, 0.40},
		{"q4.orderdate", 0.038, 0.05},
		{"q5.region", 0.20, 0.18},
		{"q5.orderdate", 0.15, 0.18},
		{"q6.range", 0.019, 0.005},
		{"q7.nations", 0.08, 0.03},
		{"q8.region", 0.20, 0.23},
		{"q8.type", 0.0067, 0.004},
		{"q9.name", 0.055, 0.02},
		{"q10.returnflag", 0.25, 0.30},
		{"q10.orderdate", 0.031, 0.04},
		{"q11.nation", 0.04, 0.05},
		{"q12.shipmode", 0.0086, 0.01},
		{"q13.comment", 0.98, 0.80},
		{"q14.shipdate", 0.0125, 0.02},
		{"q15.shipdate", 0.0385, 0.05},
		{"q16.partfilter", 0.10, 0.06},
		{"q17.brandcontainer", 0.001, 0.0005},
		{"q18.having", 0.0001, 0.001},
		{"q19.quantity", 0.002, 0.0005},
		{"q20.name", 0.011, 0.02},
		{"q20.shipdate", 0.15, 0.20},
		{"q21.nation", 0.04, 0.05},
		{"q21.late", 0.50, 0.30},
		{"q22.cntry", 0.25, 0.30},
		{"q22.noorders", 0.36, 0.20},
	}
	for _, f := range filters {
		cat.OverrideFilter(f.pred, f.tru, f.est)
	}

	// Joins: fanout f makes |join| = max(L, R)·f. PK-FK joins over the
	// full key space have fanout ≈ 1 on the FK side; selective probes
	// shrink it. Estimates under-estimate the multi-join chains.
	joins := []struct {
		pred     string
		tru, est float64
	}{
		{"j.lineitem.orders", 1.0, 0.8},
		{"j.lineitem.part", 1.0, 0.5},
		{"j.lineitem.supplier", 1.0, 0.6},
		{"j.lineitem.partsupp", 1.0, 0.4},
		{"j.orders.customer", 1.0, 0.9},
		{"j.customer.nation", 1.0, 0.9},
		{"j.supplier.nation", 1.0, 0.9},
		{"j.nation.region", 1.0, 1.0},
		{"j.partsupp.part", 1.0, 0.8},
		{"j.partsupp.supplier", 1.0, 0.7},
	}
	for _, j := range joins {
		cat.OverrideJoinFanout(j.pred, j.tru, j.est)
	}

	// Aggregations: reductions reflect group counts relative to input.
	groupReductions := []struct {
		key      string
		tru, est float64
	}{
		{"g.flagstatus", 1e-6 / sf, 1e-5 / sf},
		{"g.orderkey", 0.25, 0.10},
		{"g.orderpriority", 5e-6 / sf, 1e-5 / sf},
		{"g.nation", 2e-5 / sf, 1e-4 / sf},
		{"g.year", 1e-5 / sf, 1e-4 / sf},
		{"g.nationyear", 1e-4 / sf, 1e-3 / sf},
		{"g.custkey", 0.30, 0.10},
		{"g.partkey", 0.80, 0.30},
		{"g.shipmode", 2e-5 / sf, 1e-4 / sf},
		{"g.custcount", 1e-4, 1e-3},
		{"g.suppkey", 0.012, 0.005},
		{"g.brandtypesize", 0.15, 0.05},
		{"g.suppname", 0.012, 0.004},
		{"g.cntrycode", 1e-4, 1e-3},
	}
	for _, g := range groupReductions {
		cat.OverrideAggReduction(g.key, g.tru, g.est)
	}
}

// QueryBuilder constructs one TPC-H query's logical plan.
type QueryBuilder func() *plan.Logical

// Queries returns builders for all 22 queries, indexed 1..22.
func Queries() map[int]QueryBuilder {
	return map[int]QueryBuilder{
		1: Q1, 2: Q2, 3: Q3, 4: Q4, 5: Q5, 6: Q6, 7: Q7, 8: Q8,
		9: Q9, 10: Q10, 11: Q11, 12: Q12, 13: Q13, 14: Q14, 15: Q15,
		16: Q16, 17: Q17, 18: Q18, 19: Q19, 20: Q20, 21: Q21, 22: Q22,
	}
}

// scan builds a Get over a TPC-H table (table name == input template).
func scan(table string) *plan.Logical { return plan.NewGet(table, table) }

func join(l, r *plan.Logical, pred string, key plan.Column) *plan.Logical {
	return plan.NewJoin(l, r, pred, key)
}

// Q1: pricing summary report — scan lineitem, filter by shipdate,
// aggregate by (returnflag, linestatus), sort.
func Q1() *plan.Logical {
	l := plan.NewSelect(scan(Lineitem), "q1.shipdate")
	a := plan.NewAggregate(l, "l_returnflag", "l_linestatus")
	a.Pred = "g.flagstatus"
	s := plan.NewSort(a, "l_returnflag", "l_linestatus")
	return plan.NewOutput(s)
}

// Q2: minimum cost supplier — part ⋈ partsupp ⋈ supplier ⋈ nation ⋈
// region with size/region filters and top-100.
func Q2() *plan.Logical {
	p := plan.NewSelect(scan(Part), "q2.size")
	ps := join(p, scan(PartSupp), "j.partsupp.part", "p_partkey")
	s := join(ps, scan(Supplier), "j.partsupp.supplier", "s_suppkey")
	n := join(s, scan(Nation), "j.supplier.nation", "n_nationkey")
	r := join(n, plan.NewSelect(scan(Region), "q2.region"), "j.nation.region", "r_regionkey")
	t := plan.NewTopN(r, 100, "s_acctbal")
	return plan.NewOutput(t)
}

// Q3: shipping priority — customer ⋈ orders ⋈ lineitem, aggregate by
// orderkey, top-10 by revenue.
func Q3() *plan.Logical {
	c := plan.NewSelect(scan(Customer), "q3.custseg")
	o := plan.NewSelect(scan(Orders), "q3.orderdate")
	co := join(o, c, "j.orders.customer", "o_custkey")
	col := join(scan(Lineitem), co, "j.lineitem.orders", "l_orderkey")
	a := plan.NewAggregate(col, "l_orderkey")
	a.Pred = "g.orderkey"
	// Revenue is the aggregate's sum column; the aggregate's output schema
	// is keys + __cnt + __sum, so the top-n must order by the real column.
	t := plan.NewTopN(a, 10, "__sum")
	return plan.NewOutput(t)
}

// Q4: order priority checking — orders filtered by date, semi-joined with
// late lineitems, aggregated by priority.
func Q4() *plan.Logical {
	o := plan.NewSelect(scan(Orders), "q4.orderdate")
	l := join(o, scan(Lineitem), "j.lineitem.orders", "o_orderkey")
	a := plan.NewAggregate(l, "o_orderpriority")
	a.Pred = "g.orderpriority"
	s := plan.NewSort(a, "o_orderpriority")
	return plan.NewOutput(s)
}

// Q5: local supplier volume — six-way join down to region, aggregated by
// nation.
func Q5() *plan.Logical {
	o := plan.NewSelect(scan(Orders), "q5.orderdate")
	co := join(o, scan(Customer), "j.orders.customer", "o_custkey")
	lo := join(scan(Lineitem), co, "j.lineitem.orders", "l_orderkey")
	ls := join(lo, scan(Supplier), "j.lineitem.supplier", "l_suppkey")
	n := join(ls, scan(Nation), "j.supplier.nation", "s_nationkey")
	r := join(n, plan.NewSelect(scan(Region), "q5.region"), "j.nation.region", "n_regionkey")
	a := plan.NewAggregate(r, "n_name")
	a.Pred = "g.nation"
	s := plan.NewSort(a, "__sum") // order by revenue (the aggregate's sum)
	return plan.NewOutput(s)
}

// Q6: forecasting revenue change — single-table filter and global
// aggregate.
func Q6() *plan.Logical {
	l := plan.NewSelect(scan(Lineitem), "q6.range")
	a := plan.NewAggregate(l)
	return plan.NewOutput(a)
}

// Q7: volume shipping — lineitem ⋈ supplier ⋈ orders ⋈ customer with two
// nation joins, aggregated by (nation, nation, year).
func Q7() *plan.Logical {
	ls := join(scan(Lineitem), scan(Supplier), "j.lineitem.supplier", "l_suppkey")
	lo := join(ls, scan(Orders), "j.lineitem.orders", "l_orderkey")
	lc := join(lo, scan(Customer), "j.orders.customer", "o_custkey")
	n := plan.NewSelect(join(lc, scan(Nation), "j.supplier.nation", "s_nationkey"), "q7.nations")
	a := plan.NewAggregate(n, "supp_nation", "cust_nation", "l_year")
	a.Pred = "g.nationyear"
	s := plan.NewSort(a, "supp_nation", "cust_nation", "l_year")
	return plan.NewOutput(s)
}

// Q8: national market share — the paper's headline plan-change query:
// part ⋈ lineitem on partkey (part is stored pre-partitioned on p_partkey),
// then orders, customer, nation, region; aggregated by year.
func Q8() *plan.Logical {
	p := plan.NewSelect(scan(Part), "q8.type")
	pl := join(p, scan(Lineitem), "j.lineitem.part", "p_partkey")
	po := join(pl, scan(Orders), "j.lineitem.orders", "l_orderkey")
	pc := join(po, scan(Customer), "j.orders.customer", "o_custkey")
	pn := join(pc, scan(Nation), "j.customer.nation", "c_nationkey")
	pr := join(pn, plan.NewSelect(scan(Region), "q8.region"), "j.nation.region", "n_regionkey")
	ps := join(pr, scan(Supplier), "j.lineitem.supplier", "l_suppkey")
	a := plan.NewAggregate(ps, "o_year")
	a.Pred = "g.year"
	s := plan.NewSort(a, "o_year")
	return plan.NewOutput(s)
}

// Q9: product type profit — part ⋈ lineitem ⋈ supplier ⋈ partsupp ⋈
// orders ⋈ nation, aggregated by (nation, year).
func Q9() *plan.Logical {
	p := plan.NewSelect(scan(Part), "q9.name")
	ls := join(scan(Lineitem), scan(Supplier), "j.lineitem.supplier", "l_suppkey")
	pl := join(p, ls, "j.lineitem.part", "p_partkey")
	pps := join(pl, scan(PartSupp), "j.lineitem.partsupp", "ps_partkey")
	po := join(pps, scan(Orders), "j.lineitem.orders", "l_orderkey")
	pn := join(po, scan(Nation), "j.supplier.nation", "s_nationkey")
	a := plan.NewAggregate(pn, "n_name", "o_year")
	a.Pred = "g.nationyear"
	s := plan.NewSort(a, "n_name", "o_year")
	return plan.NewOutput(s)
}

// Q10: returned item reporting — customer ⋈ orders ⋈ lineitem ⋈ nation,
// aggregate by customer, top-20.
func Q10() *plan.Logical {
	o := plan.NewSelect(scan(Orders), "q10.orderdate")
	l := plan.NewSelect(scan(Lineitem), "q10.returnflag")
	lo := join(l, o, "j.lineitem.orders", "l_orderkey")
	lc := join(lo, scan(Customer), "j.orders.customer", "o_custkey")
	ln := join(lc, scan(Nation), "j.customer.nation", "c_nationkey")
	a := plan.NewAggregate(ln, "c_custkey")
	a.Pred = "g.custkey"
	t := plan.NewTopN(a, 20, "__sum") // top 20 by revenue (the sum column)
	return plan.NewOutput(t)
}

// Q11: important stock identification — partsupp ⋈ supplier ⋈ nation,
// aggregate by partkey, filter (having), sort.
func Q11() *plan.Logical {
	s := join(scan(PartSupp), scan(Supplier), "j.partsupp.supplier", "ps_suppkey")
	n := plan.NewSelect(join(s, scan(Nation), "j.supplier.nation", "s_nationkey"), "q11.nation")
	a := plan.NewAggregate(n, "ps_partkey")
	a.Pred = "g.partkey"
	srt := plan.NewSort(a, "__sum") // order by stock value (the sum column)
	return plan.NewOutput(srt)
}

// Q12: shipping modes — orders ⋈ lineitem filtered by shipmode, aggregate.
func Q12() *plan.Logical {
	l := plan.NewSelect(scan(Lineitem), "q12.shipmode")
	lo := join(l, scan(Orders), "j.lineitem.orders", "l_orderkey")
	a := plan.NewAggregate(lo, "l_shipmode")
	a.Pred = "g.shipmode"
	s := plan.NewSort(a, "l_shipmode")
	return plan.NewOutput(s)
}

// Q13: customer distribution — customer ⋈ orders, per-customer counts,
// then count-of-counts.
func Q13() *plan.Logical {
	o := plan.NewSelect(scan(Orders), "q13.comment")
	co := join(scan(Customer), o, "j.orders.customer", "c_custkey")
	a1 := plan.NewAggregate(co, "c_custkey")
	a1.Pred = "g.custkey"
	// The rollup reduces the per-customer groups; the engine's aggregates
	// cannot group by the derived __cnt column (it collides with their own
	// output), so the distribution is modeled as a global rollup.
	a2 := plan.NewAggregate(a1)
	a2.Pred = "g.custcount"
	s := plan.NewSort(a2, "__cnt")
	return plan.NewOutput(s)
}

// Q14: promotion effect — lineitem ⋈ part with a shipdate filter, global
// aggregate.
func Q14() *plan.Logical {
	l := plan.NewSelect(scan(Lineitem), "q14.shipdate")
	lp := join(l, scan(Part), "j.lineitem.part", "l_partkey")
	a := plan.NewAggregate(lp)
	return plan.NewOutput(a)
}

// Q15: top supplier — revenue view (filtered lineitem aggregated by
// supplier) joined with supplier.
func Q15() *plan.Logical {
	l := plan.NewSelect(scan(Lineitem), "q15.shipdate")
	rev := plan.NewAggregate(l, "l_suppkey")
	rev.Pred = "g.suppkey"
	s := join(rev, scan(Supplier), "j.lineitem.supplier", "l_suppkey")
	// The join emits revenue-view rows, whose schema carries the supplier
	// key as l_suppkey.
	srt := plan.NewSort(s, "l_suppkey")
	return plan.NewOutput(srt)
}

// Q16: parts/supplier relationship — partsupp ⋈ part with filters,
// aggregate by (brand, type, size), sort — the paper's repartitioning
// change (250 → 100 partitions).
func Q16() *plan.Logical {
	p := plan.NewSelect(scan(Part), "q16.partfilter")
	pp := join(scan(PartSupp), p, "j.partsupp.part", "ps_partkey")
	a := plan.NewAggregate(pp, "p_brand", "p_type", "p_size")
	a.Pred = "g.brandtypesize"
	s := plan.NewSort(a, "__cnt") // order by supplier count (the count column)
	return plan.NewOutput(s)
}

// Q17: small-quantity-order revenue — lineitem ⋈ part (brand/container
// filter), per-part average then global aggregate — the query whose
// partial-aggregation change regressed in the paper.
func Q17() *plan.Logical {
	p := plan.NewSelect(scan(Part), "q17.brandcontainer")
	lp := join(scan(Lineitem), p, "j.lineitem.part", "l_partkey")
	perPart := plan.NewAggregate(lp, "l_partkey")
	perPart.Pred = "g.partkey"
	a := plan.NewAggregate(perPart)
	return plan.NewOutput(a)
}

// Q18: large volume customer — customer ⋈ orders ⋈ lineitem, per-order
// aggregation with a having filter, top-100.
func Q18() *plan.Logical {
	lo := join(scan(Lineitem), scan(Orders), "j.lineitem.orders", "l_orderkey")
	a1 := plan.NewAggregate(lo, "l_orderkey")
	a1.Pred = "g.orderkey"
	hav := plan.NewSelect(a1, "q18.having")
	// The having side's schema is [l_orderkey __cnt __sum]; the customer
	// join must match on the key both sides actually carry, and the top-100
	// orders by total price means ordering by the aggregated sum.
	c := join(hav, scan(Customer), "j.orders.customer", "l_orderkey")
	t := plan.NewTopN(c, 100, "__sum")
	return plan.NewOutput(t)
}

// Q19: discounted revenue — lineitem ⋈ part with a disjunctive predicate,
// global aggregate.
func Q19() *plan.Logical {
	l := plan.NewSelect(scan(Lineitem), "q19.quantity")
	lp := join(l, scan(Part), "j.lineitem.part", "l_partkey")
	a := plan.NewAggregate(lp)
	return plan.NewOutput(a)
}

// Q20: potential part promotion — supplier ⋈ nation joined against an
// aggregated partsupp ⋈ part subquery — the paper's merge-join change.
func Q20() *plan.Logical {
	p := plan.NewSelect(scan(Part), "q20.name")
	ps := join(scan(PartSupp), p, "j.partsupp.part", "ps_partkey")
	l := plan.NewSelect(scan(Lineitem), "q20.shipdate")
	agg := plan.NewAggregate(l, "l_partkey", "l_suppkey")
	agg.Pred = "g.partkey"
	// The aggregated subquery's schema carries the part key as l_partkey;
	// the join key must resolve on both sides (partsupp scans carry every
	// referenced column, including l_partkey).
	sub := join(ps, agg, "j.lineitem.partsupp", "l_partkey")
	sn := join(scan(Supplier), scan(Nation), "j.supplier.nation", "s_nationkey")
	out := join(sub, sn, "j.partsupp.supplier", "ps_suppkey")
	s := plan.NewSort(out, "s_name")
	return plan.NewOutput(s)
}

// Q21: suppliers who kept orders waiting — supplier ⋈ lineitem ⋈ orders ⋈
// nation with late-delivery filters, aggregate by supplier name, top-100.
func Q21() *plan.Logical {
	l := plan.NewSelect(scan(Lineitem), "q21.late")
	ls := join(l, scan(Supplier), "j.lineitem.supplier", "l_suppkey")
	lo := join(ls, scan(Orders), "j.lineitem.orders", "l_orderkey")
	ln := plan.NewSelect(join(lo, scan(Nation), "j.supplier.nation", "s_nationkey"), "q21.nation")
	a := plan.NewAggregate(ln, "s_name")
	a.Pred = "g.suppname"
	t := plan.NewTopN(a, 100, "__cnt") // top 100 by wait count (the count column)
	return plan.NewOutput(t)
}

// Q22: global sales opportunity — customers without orders by country
// code.
func Q22() *plan.Logical {
	c := plan.NewSelect(plan.NewSelect(scan(Customer), "q22.cntry"), "q22.noorders")
	a := plan.NewAggregate(c, "cntrycode")
	a.Pred = "g.cntrycode"
	s := plan.NewSort(a, "cntrycode")
	return plan.NewOutput(s)
}

// QueryName renders "Q<n>".
func QueryName(n int) string { return fmt.Sprintf("Q%d", n) }
