package tpch

import (
	"fmt"
	"math/rand"

	"cleo/internal/stats"
	"cleo/internal/workload"
)

// Trace builds a workload trace of `runs` executions of all 22 queries at
// the given scale factor (the paper uses SF 1000 and 10 training runs with
// randomized parameters). Each run is mapped to a trace "day" so the usual
// train-on-early-days / test-on-late-days split applies.
func Trace(scaleFactor float64, runs int, seed int64) *workload.Trace {
	rng := rand.New(rand.NewSource(seed))
	cat := stats.NewCatalog(uint64(seed)*31 + 17)
	Register(cat, scaleFactor)

	builders := Queries()
	tr := &workload.Trace{Catalogs: []*stats.Catalog{cat}}
	for run := 0; run < runs; run++ {
		for q := 1; q <= 22; q++ {
			tr.Jobs = append(tr.Jobs, workload.Job{
				ID:         fmt.Sprintf("tpch_q%d_r%d", q, run),
				Cluster:    0,
				Day:        run,
				TemplateID: "tpch" + QueryName(q),
				Recurring:  true,
				Seed:       rng.Int63(),
				Param:      1 + rng.Float64()*23,
				Query:      builders[q](),
			})
		}
	}
	return tr
}

// QueryNumber parses the query index from a TPC-H job's template ID,
// returning 0 when the ID is not a TPC-H template.
func QueryNumber(templateID string) int {
	var q int
	if _, err := fmt.Sscanf(templateID, "tpchQ%d", &q); err != nil {
		return 0
	}
	return q
}
