package tpch

import (
	"testing"

	"cleo/internal/cascades"
	"cleo/internal/costmodel"
	"cleo/internal/plan"
	"cleo/internal/stats"
)

func TestRegisterTables(t *testing.T) {
	cat := stats.NewCatalog(1)
	Register(cat, 1000)
	li, ok := cat.Table(Lineitem)
	if !ok {
		t.Fatal("lineitem missing")
	}
	if li.Rows < 6e9 || li.Rows > 6.1e9 {
		t.Fatalf("lineitem rows at SF1000 = %v", li.Rows)
	}
	n, _ := cat.Table(Nation)
	if n.Rows != 25 {
		t.Fatalf("nation rows = %v, want 25 (fixed)", n.Rows)
	}
	p, _ := cat.Table(Part)
	if p.PartitionedOn != "p_partkey" || p.Partitions != 100 {
		t.Fatalf("part layout = %+v", p)
	}
}

func TestPinnedSelectivities(t *testing.T) {
	cat := stats.NewCatalog(1)
	Register(cat, 1)
	if got := cat.TrueFilterSelectivity("q1.shipdate"); got != 0.98 {
		t.Fatalf("q1 selectivity = %v", got)
	}
	if got := cat.EstFilterSelectivity("q6.range"); got != 0.005 {
		t.Fatalf("q6 est = %v", got)
	}
	if got := cat.TrueJoinFanout("j.lineitem.orders"); got != 1.0 {
		t.Fatalf("join fanout = %v", got)
	}
}

func TestAll22QueriesBuild(t *testing.T) {
	builders := Queries()
	if len(builders) != 22 {
		t.Fatalf("queries = %d", len(builders))
	}
	for q, b := range builders {
		l := b()
		if l == nil || l.Op != plan.LOutput {
			t.Fatalf("Q%d root = %v", q, l)
		}
		if l.Count() < 3 {
			t.Fatalf("Q%d too small: %d ops", q, l.Count())
		}
		for _, leaf := range l.Leaves() {
			if _, ok := specs[leaf.Table]; !ok {
				t.Fatalf("Q%d scans unknown table %q", q, leaf.Table)
			}
		}
	}
}

func TestAll22QueriesOptimizeAndAnnotate(t *testing.T) {
	cat := stats.NewCatalog(1)
	Register(cat, 1)
	for q, b := range Queries() {
		o := &cascades.Optimizer{Catalog: cat, Cost: costmodel.Tuned{}, MaxPartitions: 3000, JobSeed: int64(q)}
		res, err := o.Optimize(b())
		if err != nil {
			t.Fatalf("Q%d: %v", q, err)
		}
		res.Plan.Walk(func(n *plan.Physical) {
			if n.Stats.EstCard <= 0 || n.Partitions < 1 {
				t.Fatalf("Q%d %v: card=%v partitions=%d", q, n.Op, n.Stats.EstCard, n.Partitions)
			}
		})
	}
}

func TestTraceBuilds(t *testing.T) {
	tr := Trace(1, 3, 42)
	if len(tr.Jobs) != 66 {
		t.Fatalf("jobs = %d, want 66", len(tr.Jobs))
	}
	if len(tr.Catalogs) != 1 {
		t.Fatal("one catalog expected")
	}
	for _, j := range tr.Jobs {
		if q := QueryNumber(j.TemplateID); q < 1 || q > 22 {
			t.Fatalf("bad template id %q", j.TemplateID)
		}
	}
	if tr.Jobs[0].Day != 0 || tr.Jobs[len(tr.Jobs)-1].Day != 2 {
		t.Fatal("runs should map to days")
	}
}

func TestQ8JoinsPartWithLineitemOnPartkey(t *testing.T) {
	q := Q8()
	found := false
	q.Walk(func(n *plan.Logical) {
		if n.Op == plan.LJoin && n.Pred == "j.lineitem.part" {
			found = true
		}
	})
	if !found {
		t.Fatal("Q8 must join part with lineitem on partkey")
	}
}
