package workload

import (
	"testing"

	"cleo/internal/plan"
)

func smallConfig() Config {
	return Config{
		Clusters:                   2,
		Days:                       2,
		TemplatesPerCluster:        6,
		InstancesPerTemplatePerDay: 2,
		AdHocFraction:              0.15,
		Seed:                       42,
	}
}

func TestGenerateCounts(t *testing.T) {
	tr := Generate(smallConfig())
	if len(tr.Catalogs) != 2 {
		t.Fatalf("catalogs = %d", len(tr.Catalogs))
	}
	recurring, adhoc := 0, 0
	for _, j := range tr.Jobs {
		if j.Recurring {
			recurring++
		} else {
			adhoc++
		}
	}
	// 2 clusters × 2 days × 6 templates × 2 instances = 48 recurring.
	if recurring != 48 {
		t.Fatalf("recurring = %d, want 48", recurring)
	}
	if adhoc == 0 {
		t.Fatal("no ad-hoc jobs generated")
	}
	frac := float64(adhoc) / float64(adhoc+recurring)
	if frac < 0.05 || frac > 0.35 {
		t.Fatalf("ad-hoc fraction = %v, want near 0.15", frac)
	}
}

func TestTablesRegistered(t *testing.T) {
	tr := Generate(smallConfig())
	for _, j := range tr.Jobs {
		cat := tr.Catalogs[j.Cluster]
		for _, leaf := range j.Query.Leaves() {
			ts, ok := cat.Table(leaf.Table)
			if !ok {
				t.Fatalf("job %s: table %s not in catalog", j.ID, leaf.Table)
			}
			if ts.Rows <= 0 || ts.RowLength <= 0 {
				t.Fatalf("table %s has stats %+v", leaf.Table, ts)
			}
		}
	}
}

func TestRecurringInstancesShareStructure(t *testing.T) {
	tr := Generate(smallConfig())
	// All instances of one template must have identical plan structure
	// except for the leaf table names.
	byTemplate := map[string][]Job{}
	for _, j := range tr.Jobs {
		if j.Recurring {
			byTemplate[j.TemplateID] = append(byTemplate[j.TemplateID], j)
		}
	}
	for id, jobs := range byTemplate {
		if len(jobs) < 2 {
			continue
		}
		strip := func(l *plan.Logical) string {
			c := l.Clone()
			c.Walk(func(n *plan.Logical) { n.Table = "" })
			return c.String()
		}
		base := strip(jobs[0].Query)
		for _, j := range jobs[1:] {
			if strip(j.Query) != base {
				t.Fatalf("template %s instances differ structurally", id)
			}
		}
	}
}

func TestInstancesDrift(t *testing.T) {
	tr := Generate(smallConfig())
	// Table sizes of the same template must vary across instances.
	byTemplate := map[string][]Job{}
	for _, j := range tr.Jobs {
		if j.Recurring {
			byTemplate[j.TemplateID] = append(byTemplate[j.TemplateID], j)
		}
	}
	for _, jobs := range byTemplate {
		if len(jobs) < 2 {
			continue
		}
		cat := tr.Catalogs[jobs[0].Cluster]
		r0, _ := cat.Table(jobs[0].Query.Leaves()[0].Table)
		r1, _ := cat.Table(jobs[1].Query.Leaves()[0].Table)
		if r0.Rows != r1.Rows {
			return // found drift, good
		}
	}
	t.Fatal("no input-size drift across instances")
}

func TestCommonSubexpressionsExist(t *testing.T) {
	cfg := smallConfig()
	cfg.TemplatesPerCluster = 20
	tr := Generate(cfg)
	// Some pair of distinct templates must share a scan-chain predicate
	// (the Figure 4 pattern).
	predOwners := map[string]map[string]bool{}
	for _, j := range tr.Jobs {
		j.Query.Walk(func(n *plan.Logical) {
			if n.Op == plan.LSelect && n.Pred != "" {
				if predOwners[n.Pred] == nil {
					predOwners[n.Pred] = map[string]bool{}
				}
				predOwners[n.Pred][j.TemplateID] = true
			}
		})
	}
	for _, owners := range predOwners {
		if len(owners) > 1 {
			return // shared subexpression found
		}
	}
	t.Fatal("no cross-template shared subexpressions")
}

func TestJobsOnFilter(t *testing.T) {
	tr := Generate(smallConfig())
	day0 := tr.JobsOn(0, 0)
	all := tr.JobsOn(0, -1)
	if len(day0) == 0 || len(all) <= len(day0) {
		t.Fatalf("filtering: day0=%d all=%d", len(day0), len(all))
	}
	for _, j := range day0 {
		if j.Cluster != 0 || j.Day != 0 {
			t.Fatal("filter returned wrong jobs")
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(smallConfig())
	b := Generate(smallConfig())
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("job counts differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i].ID != b.Jobs[i].ID || a.Jobs[i].Query.String() != b.Jobs[i].Query.String() {
			t.Fatalf("job %d differs between runs", i)
		}
	}
}
