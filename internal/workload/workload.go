// Package workload generates production-style query workloads: recurring
// job templates whose instances run every day on drifting inputs and
// parameters, plus ad-hoc jobs, across multiple simulated clusters — the
// shape of the SCOPE traces in Section 2.2 and Figures 2, 3, 9 and 10 of
// the paper. Subpackage tpch builds the TPC-H benchmark workload.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"cleo/internal/plan"
	"cleo/internal/stats"
)

// Job is one query instance.
type Job struct {
	// ID uniquely identifies the instance.
	ID string
	// Cluster indexes the cluster the job ran on.
	Cluster int
	// Day is the trace day (0-based).
	Day int
	// TemplateID identifies the recurring template; ad-hoc jobs get a
	// unique template ID.
	TemplateID string
	// Recurring marks instances of recurring templates.
	Recurring bool
	// Seed drives the instance's statistics drift and execution noise.
	Seed int64
	// Param is the job's parameter (the paper's PM feature): recurring
	// instances run with varying parameters, e.g. a lookback window.
	Param float64
	// Query is the logical plan.
	Query *plan.Logical
}

// Config sizes the generated trace.
type Config struct {
	// Clusters is the number of simulated clusters.
	Clusters int
	// Days is the trace length in days.
	Days int
	// TemplatesPerCluster is the recurring-template count per cluster.
	TemplatesPerCluster int
	// InstancesPerTemplatePerDay is how often each template recurs daily.
	InstancesPerTemplatePerDay int
	// AdHocFraction is the ad-hoc share of daily jobs (paper: 7–20%).
	AdHocFraction float64
	// DayGrowth is the mean relative input growth per day (default 0.15,
	// echoing the paper's 20–30% day-over-day swings; long traces such as
	// the robustness experiment use smaller values).
	DayGrowth float64
	// Seed drives all generation.
	Seed int64
}

// DefaultConfig returns a small but structurally faithful trace
// configuration (scaled-down from the paper's 0.5M jobs).
func DefaultConfig() Config {
	return Config{
		Clusters:                   4,
		Days:                       3,
		TemplatesPerCluster:        40,
		InstancesPerTemplatePerDay: 3,
		AdHocFraction:              0.12,
		Seed:                       2020,
	}
}

// Trace is a generated workload.
type Trace struct {
	Jobs []Job
	// Catalogs holds one statistics catalog per cluster, with every table
	// instance registered.
	Catalogs []*stats.Catalog
	// Config echoes the generating configuration.
	Config Config
}

// JobsOn filters jobs by cluster and day (day < 0 matches all days).
func (t *Trace) JobsOn(cluster, day int) []Job {
	var out []Job
	for _, j := range t.Jobs {
		if j.Cluster == cluster && (day < 0 || j.Day == day) {
			out = append(out, j)
		}
	}
	return out
}

// template is a recurring job's blueprint.
type template struct {
	id string
	// build constructs the logical plan for one instance given the
	// instance's input tables.
	inputs []inputRef
	shape  planShape
	// chains holds the per-input scan chains, kept so other templates can
	// share the first chain (common subexpressions).
	chains []*shapeNode
	// baseRows is the day-0 expected row count per input.
	baseRows []float64
	rowLen   []float64
}

// inputRef names one input template used by a job template.
type inputRef struct {
	template string
}

// Generate builds the full trace.
func Generate(cfg Config) *Trace {
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	if cfg.Days <= 0 {
		cfg.Days = 1
	}
	tr := &Trace{Config: cfg}
	for cl := 0; cl < cfg.Clusters; cl++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(cl)*7919))
		cat := stats.NewCatalog(uint64(cfg.Seed) + uint64(cl)*104729)
		tr.Catalogs = append(tr.Catalogs, cat)
		gen := &clusterGen{cfg: cfg, cluster: cl, rng: rng, cat: cat}
		gen.run(tr)
	}
	return tr
}

// clusterGen generates one cluster's jobs.
type clusterGen struct {
	cfg     Config
	cluster int
	rng     *rand.Rand
	cat     *stats.Catalog

	inputPool []string
	templates []*template
	jobSerial int
}

func (g *clusterGen) run(tr *Trace) {
	// Input-template pool: shared inputs are what make operator-input
	// models useful, so keep the pool smaller than the template count.
	nInputs := g.cfg.TemplatesPerCluster/2 + 3
	for i := 0; i < nInputs; i++ {
		g.inputPool = append(g.inputPool, fmt.Sprintf("c%din%d_", g.cluster, i))
	}
	for i := 0; i < g.cfg.TemplatesPerCluster; i++ {
		g.templates = append(g.templates, g.newTemplate(fmt.Sprintf("c%dt%d", g.cluster, i)))
	}
	for day := 0; day < g.cfg.Days; day++ {
		for _, t := range g.templates {
			for inst := 0; inst < g.cfg.InstancesPerTemplatePerDay; inst++ {
				tr.Jobs = append(tr.Jobs, g.instantiate(t, day, inst, true))
			}
		}
		// Ad-hoc jobs on top of the recurring base.
		recurring := g.cfg.TemplatesPerCluster * g.cfg.InstancesPerTemplatePerDay
		nAdhoc := int(math.Round(g.cfg.AdHocFraction / (1 - g.cfg.AdHocFraction) * float64(recurring)))
		for i := 0; i < nAdhoc; i++ {
			t := g.newTemplate(fmt.Sprintf("c%dadhoc_d%d_%d", g.cluster, day, i))
			tr.Jobs = append(tr.Jobs, g.instantiate(t, day, 0, false))
		}
	}
}

// newTemplate draws a fresh job template. With some probability it shares
// its first input chain with an existing template, creating the common
// subexpressions of Figure 4.
func (g *clusterGen) newTemplate(id string) *template {
	t := &template{id: id}
	numInputs := 1 + g.rng.Intn(3)
	share := len(g.templates) > 0 && g.rng.Float64() < 0.45
	var sharedFrom *template
	if share {
		sharedFrom = g.templates[g.rng.Intn(len(g.templates))]
	}
	for i := 0; i < numInputs; i++ {
		var in inputRef
		if i == 0 && sharedFrom != nil {
			in = sharedFrom.inputs[0]
		} else {
			in = inputRef{template: g.inputPool[g.rng.Intn(len(g.inputPool))]}
		}
		t.inputs = append(t.inputs, in)
		t.baseRows = append(t.baseRows, math.Pow(10, 5+4*g.rng.Float64())) // 1e5..1e9
		t.rowLen = append(t.rowLen, 30+g.rng.Float64()*220)
	}
	t.shape = g.newShape(t, sharedFrom)
	return t
}

// instantiate creates one dated instance of a template: tables registered
// with drifted sizes, a fresh parameter, and the logical plan built.
func (g *clusterGen) instantiate(t *template, day, inst int, recurring bool) Job {
	g.jobSerial++
	seed := g.rng.Int63()
	param := 1 + g.rng.Float64()*23 // e.g. lookback hours

	growth := g.cfg.DayGrowth
	if growth == 0 {
		growth = 0.15
	}
	tables := make([]string, len(t.inputs))
	for i, in := range t.inputs {
		// Per-day drift (random walk around base) plus parameter scaling:
		// longer lookback reads more data.
		drift := math.Exp(0.25*g.rng.NormFloat64()) * (1 + growth*float64(day))
		rows := t.baseRows[i] * drift * (0.5 + param/24)
		name := fmt.Sprintf("%sd%d_i%d_%d", in.template, day, inst, g.jobSerial)
		g.cat.PutTable(name, stats.TableStats{Rows: rows, RowLength: t.rowLen[i]})
		tables[i] = name
	}
	return Job{
		ID:         fmt.Sprintf("%s_d%d_i%d", t.id, day, inst),
		Cluster:    g.cluster,
		Day:        day,
		TemplateID: t.id,
		Recurring:  recurring,
		Seed:       seed,
		Param:      param,
		Query:      t.shape.build(tables),
	}
}
