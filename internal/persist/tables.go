package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cleo/internal/stats"
)

// Durable table statistics: the serving layer registers stored-input
// statistics per tenant (RegisterTable), and without persistence the first
// post-restart request depends on the client re-sending them. SaveTables
// snapshots the whole catalog into one atomically-written tables.json next
// to the model snapshots; recovery (and replica installation) re-registers
// it before traffic arrives.

const tablesName = "tables.json"

// storedTables is the tables.json schema, versioned like the model store.
type storedTables struct {
	Version int                         `json:"version"`
	Tables  map[string]stats.TableStats `json:"tables"`
}

// SaveTables atomically persists the tenant's table-statistics catalog.
// Writes are serialized per tenant; the newest call wins, which is safe
// because callers always pass a full just-snapshotted catalog.
func (ts *TenantState) SaveTables(tables map[string]stats.TableStats) error {
	ts.tablesMu.Lock()
	defer ts.tablesMu.Unlock()
	err := writeFileAtomic(filepath.Join(ts.dir, tablesName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&storedTables{Version: 1, Tables: tables})
	})
	if err != nil {
		ts.tableErrors.Add(1)
		return fmt.Errorf("persist: write tables: %w", err)
	}
	ts.tableSaves.Add(1)
	return nil
}

// LoadTables reads the persisted table-statistics catalog. A missing file
// is a clean empty result; a corrupt one degrades to an error the caller
// logs (the tenant still serves, statistics just arrive with requests
// again).
func (ts *TenantState) LoadTables() (map[string]stats.TableStats, error) {
	b, err := os.ReadFile(filepath.Join(ts.dir, tablesName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var st storedTables
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("persist: decode tables: %w", err)
	}
	if st.Version != 1 {
		return nil, fmt.Errorf("persist: unsupported tables version %d", st.Version)
	}
	return st.Tables, nil
}
