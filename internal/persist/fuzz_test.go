package persist

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"cleo/internal/telemetry"
)

// fuzzJournalBytes renders a valid journal image holding the given record
// batches, through the same Journal code the production flusher uses.
func fuzzJournalBytes(f *testing.F, batches ...[]telemetry.Record) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), journalName)
	j, _, err := OpenJournal(path, false)
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range batches {
		if err := j.Append(b); err != nil {
			f.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzJournalOpen feeds arbitrary journal images — torn tails, flipped
// bits, hostile length prefixes — to OpenJournal. The recovery contract
// under fuzz: never panic, never fail on corruption (only real I/O errors
// may error), and never mis-truncate — whatever survives the first open
// must be a clean journal that reopens bit-stably with the same records,
// and appends after recovery must land intact.
func FuzzJournalOpen(f *testing.F) {
	// Seeds from the journal test corpus: empty, single- and multi-frame
	// images, a torn tail, a corrupt checksum and an absurd length prefix.
	valid := fuzzJournalBytes(f, mkRecords(0, 3), mkRecords(3, 2))
	f.Add([]byte{})
	f.Add(fuzzJournalBytes(f, mkRecords(0, 1)))
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn frame payload
	f.Add(valid[:frameHeaderBytes-2])
	torn := append([]byte(nil), valid...)
	torn[len(torn)-1] ^= 0xff // checksum mismatch in the last frame
	f.Add(torn)
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[0:4], 1<<31-1) // implausible length
	f.Add(huge)
	f.Add([]byte("not a journal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, journalName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, rec, err := OpenJournal(path, false)
		if err != nil {
			t.Fatalf("OpenJournal failed on corrupt-but-readable input: %v", err)
		}
		if rec.DroppedBytes < 0 || rec.DroppedBytes > int64(len(data)) {
			t.Fatalf("recovery dropped %d bytes of a %d-byte image", rec.DroppedBytes, len(data))
		}
		if rec.DroppedBytes > 0 && rec.Reason == "" {
			t.Fatal("bytes dropped without a reason")
		}
		if j.Records() != int64(len(rec.Records)) {
			t.Fatalf("journal reports %d records, recovery decoded %d", j.Records(), len(rec.Records))
		}
		// The open truncated the file to the surviving prefix; appends must
		// extend it like any healthy journal.
		appended := mkRecords(1000, 2)
		if err := j.Append(appended); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		j.Close()

		j2, rec2, err := OpenJournal(path, false)
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer j2.Close()
		if rec2.DroppedBytes != 0 {
			t.Fatalf("recovered journal was not clean on reopen: dropped %d (%s)",
				rec2.DroppedBytes, rec2.Reason)
		}
		want := len(rec.Records) + len(appended)
		if len(rec2.Records) != want {
			t.Fatalf("reopen decoded %d records, want %d survivors+appended", len(rec2.Records), want)
		}
		// The surviving prefix must be byte-stable (no silent rewriting of
		// frames that were already good), and the appended batch intact.
		for i, r := range rec.Records {
			if r != rec2.Records[i] {
				t.Fatalf("surviving record %d changed across reopen: %+v vs %+v", i, r, rec2.Records[i])
			}
		}
		for i, r := range appended {
			if rec2.Records[len(rec.Records)+i] != r {
				t.Fatalf("appended record %d corrupted: %+v vs %+v", i, rec2.Records[len(rec.Records)+i], r)
			}
		}
	})
}
