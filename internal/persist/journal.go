package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cleo/internal/obs"
	"cleo/internal/telemetry"
)

// The telemetry journal is an append-only write-ahead log of ingested
// telemetry batches. Each batch is one length-prefixed frame:
//
//	[4B little-endian payload length][4B IEEE CRC-32 of payload][payload]
//
// where the payload is the JSON-lines encoding shared with the offline
// query logs (telemetry.WriteRecords / ReadRecords). Frames are only ever
// appended; after a successful model snapshot the trained prefix is cut
// from the head (MarkTrained), so the journal always holds exactly the
// records the latest snapshot has not learned from yet. A torn tail —
// the crash window cuts a frame mid-write — is detected by the length and
// checksum on open and truncated away: recovery keeps every complete
// frame and never fails on a partial one.

const frameHeaderBytes = 8

// maxFrameBytes guards the decoder against a corrupt length prefix
// (anything larger is treated as a torn tail, not a real frame) and caps
// what Append will put in one frame — oversized batches split. A var so
// tests can exercise the split path without 64 MiB payloads.
var maxFrameBytes = 64 << 20

// journalName is the journal's file name inside a tenant state directory.
const journalName = "journal.wal"

// frameMeta tracks one live frame's extent for head truncation.
type frameMeta struct {
	bytes   int64 // header + payload
	records int
	// start is the tenant-lifetime in-memory log index of the frame's
	// first record. MarkTrained(n) is expressed in log indices; explicit
	// per-frame starts keep the mapping exact even when a failed append
	// leaves a gap (records that reached the log but not the journal).
	start int64
}

// Journal is the append-only telemetry WAL of one tenant. All methods are
// safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	fsync  bool
	frames []frameMeta
	size   int64 // valid byte length of the file
	// nextIdx is the log index the next journaled record will carry:
	// every record the caller appends to the in-memory log must advance
	// it, through Append on success or NoteSkipped on failure.
	nextIdx int64
	records int64 // records currently in the journal

	// fsyncSeconds, when non-nil, times each append-path fsync (set by
	// the Manager when observability is configured).
	fsyncSeconds *obs.Histogram

	buf bytes.Buffer // reusable frame-encoding buffer
}

// JournalRecovery describes what opening a journal found.
type JournalRecovery struct {
	// Records is the replayable (not-yet-trained) telemetry.
	Records []telemetry.Record
	// DroppedBytes is the size of the torn/corrupt tail that was truncated
	// away (0 for a clean journal).
	DroppedBytes int64
	// Reason describes the corruption when DroppedBytes > 0.
	Reason string
}

// OpenJournal opens (creating if absent) the journal at path, scans every
// complete frame, and truncates any torn or corrupt tail in place. It
// never fails on corruption — only on I/O errors — so a crashed tenant
// always restarts with its good prefix.
func OpenJournal(path string, fsync bool) (*Journal, *JournalRecovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{path: path, f: f, fsync: fsync}
	rec, err := j.scan()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if rec.DroppedBytes > 0 {
		if err := f.Truncate(j.size); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("persist: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(j.size, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	j.records = int64(len(rec.Records))
	return j, rec, nil
}

// scan reads frames from the start of the file, filling j.frames/j.size
// and returning the decoded records plus what (if anything) was dropped.
func (j *Journal) scan() (*JournalRecovery, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	fi, err := j.f.Stat()
	if err != nil {
		return nil, err
	}
	total := fi.Size()
	rec := &JournalRecovery{}
	var header [frameHeaderBytes]byte
	var payload []byte
	for {
		remaining := total - j.size
		if remaining == 0 {
			return rec, nil
		}
		corrupt := func(reason string) (*JournalRecovery, error) {
			rec.DroppedBytes = remaining
			rec.Reason = reason
			return rec, nil
		}
		if remaining < frameHeaderBytes {
			return corrupt("torn frame header")
		}
		if _, err := io.ReadFull(j.f, header[:]); err != nil {
			return nil, err
		}
		n := int64(binary.LittleEndian.Uint32(header[0:4]))
		sum := binary.LittleEndian.Uint32(header[4:8])
		if n > int64(maxFrameBytes) {
			return corrupt(fmt.Sprintf("implausible frame length %d", n))
		}
		if remaining < frameHeaderBytes+n {
			return corrupt("torn frame payload")
		}
		if int64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(j.f, payload); err != nil {
			return nil, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return corrupt("frame checksum mismatch")
		}
		recs, err := telemetry.ReadRecords(bytes.NewReader(payload))
		if err != nil {
			return corrupt(fmt.Sprintf("frame decode: %v", err))
		}
		rec.Records = append(rec.Records, recs...)
		j.frames = append(j.frames, frameMeta{bytes: frameHeaderBytes + n, records: len(recs), start: j.nextIdx})
		j.nextIdx += int64(len(recs))
		j.size += frameHeaderBytes + n
	}
}

// Append writes one batch as a frame (one fsync per merged batch when
// enabled), splitting batches whose payload would exceed maxFrameBytes —
// scan() treats larger frames as corruption, so an oversized write must
// never report success. On a write error the file is rolled back to the
// previous frame boundary so a failed append never leaves a torn middle.
//
// Append always advances the log-index accounting by len(recs), success
// or not: the caller appends the batch to the in-memory log either way,
// and un-journaled records must stay visible to MarkTrained as a gap.
func (j *Journal) Append(recs []telemetry.Record) error {
	if len(recs) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.nextIdx += int64(len(recs))
		return fmt.Errorf("persist: journal closed")
	}
	return j.appendLocked(recs)
}

func (j *Journal) appendLocked(recs []telemetry.Record) error {
	j.buf.Reset()
	if err := telemetry.WriteRecords(&j.buf, recs); err != nil {
		j.nextIdx += int64(len(recs))
		return err
	}
	if j.buf.Len() > maxFrameBytes {
		if len(recs) == 1 {
			j.nextIdx++
			return fmt.Errorf("persist: single record encodes to %d bytes, over the %d frame cap", j.buf.Len(), maxFrameBytes)
		}
		// Halve until each piece fits; sub-appends do their own
		// accounting, and a failed first half skips the rest.
		half := len(recs) / 2
		if err := j.appendLocked(recs[:half]); err != nil {
			j.nextIdx += int64(len(recs) - half)
			return err
		}
		return j.appendLocked(recs[half:])
	}
	payload := j.buf.Bytes()
	var header [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(header[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	rollback := func(err error) error {
		_ = j.f.Truncate(j.size)
		_, _ = j.f.Seek(j.size, io.SeekStart)
		j.nextIdx += int64(len(recs))
		return err
	}
	if _, err := j.f.Write(header[:]); err != nil {
		return rollback(err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return rollback(err)
	}
	if j.fsync {
		var t0 time.Time
		if j.fsyncSeconds != nil {
			t0 = time.Now()
		}
		if err := j.f.Sync(); err != nil {
			return rollback(err)
		}
		if !t0.IsZero() {
			j.fsyncSeconds.Record(time.Since(t0))
		}
	}
	j.frames = append(j.frames, frameMeta{bytes: int64(frameHeaderBytes + len(payload)), records: len(recs), start: j.nextIdx})
	j.nextIdx += int64(len(recs))
	j.size += int64(frameHeaderBytes + len(payload))
	j.records += int64(len(recs))
	return nil
}

// NoteSkipped records that n records entered the caller's in-memory log
// without going through Append at all. (Append itself accounts for its
// own failures.) The gap keeps every later frame's log-index range
// truthful, so MarkTrained can never cut a frame whose records were not
// actually covered by the training snapshot.
func (j *Journal) NoteSkipped(n int) {
	j.mu.Lock()
	j.nextIdx += int64(n)
	j.mu.Unlock()
}

// MarkTrained cuts from the head every frame fully covered by the first
// trained tenant-lifetime log records: after a snapshot that learned from
// log records [0, trained), the journal keeps only frames holding later
// records. Frames never straddle the training barrier (the serving
// flusher journals whole batches and the retrain flush barrier sits on a
// batch boundary), so the cut is exact.
func (j *Journal) MarkTrained(trained int64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("persist: journal closed")
	}
	var cut int
	var cutBytes, cutRecords int64
	for _, fr := range j.frames {
		if fr.start+int64(fr.records) > trained {
			break
		}
		cut++
		cutBytes += fr.bytes
		cutRecords += int64(fr.records)
	}
	if cut == 0 {
		return nil
	}
	if cut == len(j.frames) {
		// Everything trained: truncate in place.
		if err := j.f.Truncate(0); err != nil {
			return err
		}
		if _, err := j.f.Seek(0, io.SeekStart); err != nil {
			return err
		}
		if j.fsync {
			if err := j.f.Sync(); err != nil {
				return err
			}
		}
		j.frames = j.frames[:0]
		j.size = 0
	} else {
		// Rewrite the surviving suffix into a fresh file and swap it in —
		// the suffix is the small not-yet-trained tail, so this stays cheap.
		tmp := j.path + ".tmp"
		nf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		src := io.NewSectionReader(j.f, cutBytes, j.size-cutBytes)
		if _, err := io.Copy(nf, src); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
		if err := nf.Sync(); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
		if err := os.Rename(tmp, j.path); err != nil {
			nf.Close()
			os.Remove(tmp)
			return err
		}
		// The rename took effect: j.path now names nf's inode. Swap the
		// in-memory state FIRST so that even if the directory fsync below
		// fails, later appends land in the live file rather than the
		// unlinked old one.
		old := j.f
		j.f = nf
		old.Close()
		j.frames = append(j.frames[:0], j.frames[cut:]...)
		j.size -= cutBytes
		j.records -= cutRecords
		if _, err := j.f.Seek(j.size, io.SeekStart); err != nil {
			return err
		}
		// Make the swap durable before reporting the cut done (a lost
		// rename would only resurrect already-trained frames, but it must
		// not be reordered after later appends).
		return syncDir(filepath.Dir(j.path))
	}
	j.records -= cutRecords
	return nil
}

// Records reports how many records the journal currently holds.
func (j *Journal) Records() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// SizeBytes reports the journal's current on-disk size.
func (j *Journal) SizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Close syncs and closes the journal file. The sync is unconditional —
// even without per-append fsync, a graceful shutdown (SIGTERM drain) must
// leave the whole journal durable rather than relying on the OS flushing
// the page cache after exit.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
