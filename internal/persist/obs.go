package persist

import (
	"cleo/internal/obs"
)

// metrics holds the durable-state instruments, shared by every tenant
// state a Manager hands out. All fields are nil without Config.Metrics;
// recording sites gate on the struct pointer so the unmetered path pays
// one nil check.
type metrics struct {
	// snapshotSeconds times SaveSnapshot's disk write (serialize + write +
	// sync + manifest commit).
	snapshotSeconds *obs.Histogram
	// appendSeconds times one journal append frame (encode + write +
	// optional fsync).
	appendSeconds *obs.Histogram
	// fsyncSeconds isolates the fsync inside an append — the part that
	// dominates with Config.Fsync on and vanishes without it.
	fsyncSeconds *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	if r == nil {
		return nil
	}
	return &metrics{
		snapshotSeconds: r.Histogram("cleo_persist_snapshot_seconds",
			"Model snapshot write latency (serialize, write, sync, manifest commit)."),
		appendSeconds: r.Histogram("cleo_persist_journal_append_seconds",
			"Telemetry journal append latency per batch (encode, write, optional fsync)."),
		fsyncSeconds: r.Histogram("cleo_persist_fsync_seconds",
			"fsync latency inside journal appends (only recorded with fsync enabled)."),
	}
}
