package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cleo/internal/stats"
)

func testTenantState(t *testing.T) *TenantState {
	t.Helper()
	mgr, err := NewManager(Config{Dir: t.TempDir(), Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := mgr.Tenant("ads")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })
	return ts
}

func TestTablesSaveLoadRoundTrip(t *testing.T) {
	ts := testTenantState(t)
	if tabs, err := ts.LoadTables(); err != nil || tabs != nil {
		t.Fatalf("fresh state LoadTables = %v, %v (want empty, nil)", tabs, err)
	}
	want := map[string]stats.TableStats{
		"clicks_2026_06_12": {Rows: 2e7, RowLength: 120},
		"users":             {Rows: 5e5, RowLength: 64},
	}
	if err := ts.SaveTables(want); err != nil {
		t.Fatal(err)
	}
	// Newest full catalog wins — overwrites, not merges.
	want["impressions"] = stats.TableStats{Rows: 9e6, RowLength: 48}
	if err := ts.SaveTables(want); err != nil {
		t.Fatal(err)
	}
	got, err := ts.LoadTables()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	st := ts.Stats()
	if st.TableSaves != 2 || st.TableErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTablesCorruptFileDegrades(t *testing.T) {
	ts := testTenantState(t)
	if err := ts.SaveTables(map[string]stats.TableStats{"t": {Rows: 1}}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(ts.dir, tablesName)
	if err := os.WriteFile(path, []byte(`{"version":1,"tables":{`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.LoadTables(); err == nil {
		t.Fatal("corrupt tables.json must surface an error, not silent stats loss")
	}
	// An unsupported schema version is refused too, never misread.
	if err := os.WriteFile(path, []byte(`{"version":2,"tables":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.LoadTables(); err == nil {
		t.Fatal("future tables.json version must be refused")
	}
}

// TestExportImportSnapshotRoundTrip pins the replication contract: the
// exported artifacts land on another tenant state bit-identical, load as
// the latest snapshot there, and stale re-imports are refused.
func TestExportImportSnapshotRoundTrip(t *testing.T) {
	src := testTenantState(t)
	pr := trainedPredictor(t)
	if err := src.SaveSnapshot(Manifest{ID: 3, TrainRecords: 120}, pr); err != nil {
		t.Fatal(err)
	}
	man, model, err := src.ExportSnapshot(3)
	if err != nil {
		t.Fatal(err)
	}
	if man.ID != 3 || man.TrainRecords != 120 || len(model) == 0 {
		t.Fatalf("export: %+v, %d model bytes", man, len(model))
	}
	onDisk, err := os.ReadFile(modelPath(src.dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(model, onDisk) {
		t.Fatal("export must return the exact on-disk artifact")
	}

	dst := testTenantState(t)
	if err := dst.ImportSnapshot(man, model); err != nil {
		t.Fatal(err)
	}
	imported, err := os.ReadFile(modelPath(dst.dir, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(imported, model) {
		t.Fatal("imported model bytes differ from the shipped artifact")
	}
	gotMan, gotPr, ok := dst.LoadLatest()
	if !ok || gotMan.ID != 3 || gotMan.TrainRecords != 120 || gotPr == nil {
		t.Fatalf("follower LoadLatest: %+v ok=%v", gotMan, ok)
	}

	// Monotonicity: the same or an older version is stale on re-import.
	if err := dst.ImportSnapshot(man, model); !errors.Is(err, ErrStale) {
		t.Fatalf("re-import err = %v, want ErrStale", err)
	}
	if err := dst.ImportSnapshot(Manifest{ID: 2}, model); !errors.Is(err, ErrStale) {
		t.Fatalf("older import err = %v, want ErrStale", err)
	}
	if err := dst.ImportSnapshot(Manifest{ID: 0}, model); err == nil || errors.Is(err, ErrStale) {
		t.Fatalf("bad id err = %v, want validation error", err)
	}
	// And the local SaveSnapshot path honours imported ids the same way.
	if err := dst.SaveSnapshot(Manifest{ID: 3}, pr); !errors.Is(err, ErrStale) {
		t.Fatalf("local save at imported id err = %v, want ErrStale", err)
	}

	st := dst.Stats()
	if st.Snapshots != 1 {
		t.Fatalf("follower stats: %+v", st)
	}
}

// TestExportSnapshotMissing covers the owner-side error path: exporting a
// version that was never snapshotted fails cleanly.
func TestExportSnapshotMissing(t *testing.T) {
	ts := testTenantState(t)
	if _, _, err := ts.ExportSnapshot(7); err == nil {
		t.Fatal("exporting a missing snapshot must fail")
	}
}
