package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"cleo/internal/learned"
	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

func mkRecords(start, n int) []telemetry.Record {
	out := make([]telemetry.Record, n)
	for i := range out {
		out[i] = telemetry.Record{
			JobID:         "job",
			Op:            plan.PHashJoin,
			InCard:        float64(start + i),
			ActualLatency: 1.5,
			Param:         2,
		}
	}
	return out
}

func openJournalT(t *testing.T, path string) (*Journal, *JournalRecovery) {
	t.Helper()
	j, rec, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	return j, rec
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	j, rec := openJournalT(t, path)
	if len(rec.Records) != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("fresh journal recovery: %+v", rec)
	}
	if err := j.Append(mkRecords(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(mkRecords(3, 2)); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 5 {
		t.Fatalf("records = %d", j.Records())
	}
	j.Close()

	j2, rec2 := openJournalT(t, path)
	defer j2.Close()
	if len(rec2.Records) != 5 || rec2.DroppedBytes != 0 {
		t.Fatalf("reopen recovery: %d records, %d dropped", len(rec2.Records), rec2.DroppedBytes)
	}
	for i, r := range rec2.Records {
		if r.InCard != float64(i) {
			t.Fatalf("record %d out of order: %v", i, r.InCard)
		}
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	j, _ := openJournalT(t, path)
	if err := j.Append(mkRecords(0, 4)); err != nil {
		t.Fatal(err)
	}
	goodSize := j.SizeBytes()
	if err := j.Append(mkRecords(4, 4)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Cut the second frame mid-payload — the crash window.
	if err := os.Truncate(path, goodSize+11); err != nil {
		t.Fatal(err)
	}
	j2, rec := openJournalT(t, path)
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records, want the 4 before the torn frame", len(rec.Records))
	}
	if rec.DroppedBytes != 11 || rec.Reason == "" {
		t.Fatalf("recovery = %+v", rec)
	}
	// The torn tail is gone from disk and appends work again.
	if j2.SizeBytes() != goodSize {
		t.Fatalf("size after recovery = %d, want %d", j2.SizeBytes(), goodSize)
	}
	if err := j2.Append(mkRecords(100, 1)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rec3 := openJournalT(t, path)
	if len(rec3.Records) != 5 || rec3.DroppedBytes != 0 {
		t.Fatalf("post-recovery reopen: %d records, %d dropped", len(rec3.Records), rec3.DroppedBytes)
	}
}

func TestJournalChecksumCorruptionDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	j, _ := openJournalT(t, path)
	if err := j.Append(mkRecords(0, 2)); err != nil {
		t.Fatal(err)
	}
	firstFrame := j.SizeBytes()
	if err := j.Append(mkRecords(2, 2)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip a payload byte in the second frame.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[firstFrame+frameHeaderBytes+3] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, rec := openJournalT(t, path)
	defer j2.Close()
	if len(rec.Records) != 2 || rec.DroppedBytes == 0 {
		t.Fatalf("checksum corruption: %d records, %d dropped", len(rec.Records), rec.DroppedBytes)
	}
}

func TestJournalMarkTrained(t *testing.T) {
	path := filepath.Join(t.TempDir(), journalName)
	j, _ := openJournalT(t, path)
	for i := 0; i < 4; i++ {
		if err := j.Append(mkRecords(i*3, 3)); err != nil {
			t.Fatal(err)
		}
	}
	// Train on the first 6 records (two whole frames).
	if err := j.MarkTrained(6); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 6 {
		t.Fatalf("after cut: %d records", j.Records())
	}
	j.Close()
	j2, rec := openJournalT(t, path)
	if len(rec.Records) != 6 || rec.Records[0].InCard != 6 {
		t.Fatalf("reopen after cut: %d records, first InCard %v", len(rec.Records), rec.Records[0].InCard)
	}
	// A cut inside a frame keeps the whole frame (frames never straddle
	// the barrier in serving; over-retention is the safe direction).
	// Post-reopen the journal is rebased: records 6.. are now log 0..5.
	if err := j2.MarkTrained(4); err != nil {
		t.Fatal(err)
	}
	if j2.Records() != 3 {
		t.Fatalf("mid-frame cut: %d records, want the intact second frame", j2.Records())
	}
	// Train everything: journal empties in place.
	if err := j2.MarkTrained(6); err != nil {
		t.Fatal(err)
	}
	if j2.Records() != 0 || j2.SizeBytes() != 0 {
		t.Fatalf("full cut left %d records, %d bytes", j2.Records(), j2.SizeBytes())
	}
	if err := j2.Append(mkRecords(50, 2)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rec3 := openJournalT(t, path)
	if len(rec3.Records) != 2 {
		t.Fatalf("append after full cut lost records: %d", len(rec3.Records))
	}
}

func TestJournalSkippedAppendKeepsAlignment(t *testing.T) {
	// A failed append leaves records in the caller's in-memory log but not
	// in the journal. NoteSkipped records the gap so MarkTrained — which
	// speaks log indices — can never cut a frame holding untrained records.
	path := filepath.Join(t.TempDir(), journalName)
	j, _ := openJournalT(t, path)
	defer j.Close()
	if err := j.Append(mkRecords(0, 3)); err != nil { // log [0,3)
		t.Fatal(err)
	}
	j.NoteSkipped(2)                                  // log [3,5) reached memory only
	if err := j.Append(mkRecords(5, 3)); err != nil { // log [5,8)
		t.Fatal(err)
	}
	// Training covered log [0,5): only the first frame may be cut — the
	// second frame's records [5,8) were NOT trained, despite the journal
	// holding just 6 records.
	if err := j.MarkTrained(5); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 3 {
		t.Fatalf("after gap-aware cut: %d records, want the untrained frame intact", j.Records())
	}
	if err := j.MarkTrained(8); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 0 {
		t.Fatalf("full cut across a gap left %d records", j.Records())
	}
}

func TestJournalOversizedBatchSplits(t *testing.T) {
	// A merged batch whose payload would exceed the frame cap must land
	// as several frames — scan() rejects oversized frames as corruption,
	// so a single big write reporting success would poison recovery.
	saved := maxFrameBytes
	maxFrameBytes = 512
	defer func() { maxFrameBytes = saved }()

	path := filepath.Join(t.TempDir(), journalName)
	j, _ := openJournalT(t, path)
	if err := j.Append(mkRecords(0, 40)); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 40 {
		t.Fatalf("records = %d", j.Records())
	}
	j.Close()
	j2, rec := openJournalT(t, path)
	defer j2.Close()
	if len(rec.Records) != 40 || rec.DroppedBytes != 0 {
		t.Fatalf("reopen after split: %d records, %d dropped (%s)", len(rec.Records), rec.DroppedBytes, rec.Reason)
	}
	for i, r := range rec.Records {
		if r.InCard != float64(i) {
			t.Fatalf("record %d out of order after split: %v", i, r.InCard)
		}
	}
	// Split frames cut independently: train half, keep the rest.
	if err := j2.MarkTrained(20); err != nil {
		t.Fatal(err)
	}
	if left := j2.Records(); left >= 40 || left < 20 {
		t.Fatalf("after cutting 20 of 40 split records: %d left", left)
	}
}

func trainedPredictor(t *testing.T) *learned.Predictor {
	t.Helper()
	recs := make([]telemetry.Record, 0, 120)
	for i := 0; i < 120; i++ {
		r := telemetry.Record{
			JobID:         "t",
			Op:            plan.PHashJoin,
			Sigs:          plan.Signatures{Subgraph: 1, Approx: 2, Input: 3, Operator: 4},
			InCard:        float64(1000 + i*10),
			BaseCard:      float64(2000 + i*10),
			OutCard:       float64(500 + i*5),
			RowLength:     100,
			Partitions:    1 + i%8,
			Param:         float64(i%4) + 1,
			ActualLatency: 0.5 + float64(i%7)*0.1,
		}
		recs = append(recs, r)
	}
	pr, err := learned.TrainSplit(recs, learned.DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestSnapshotLatestAndCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	pr := trainedPredictor(t)
	warn := func(string, ...any) {}
	for id := int64(1); id <= 3; id++ {
		if err := writeSnapshot(dir, Manifest{ID: id, TrainRecords: int(id) * 10, NumModels: pr.NumModels()}, pr); err != nil {
			t.Fatal(err)
		}
	}
	man, _, ok := loadLatest(dir, warn)
	if !ok || man.ID != 3 {
		t.Fatalf("latest = %+v, ok=%v", man, ok)
	}
	// Corrupt v3's model: recovery must fall back to v2.
	if err := os.WriteFile(modelPath(dir, 3), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	man, p2, ok := loadLatest(dir, warn)
	if !ok || man.ID != 2 || p2 == nil {
		t.Fatalf("fallback = %+v, ok=%v", man, ok)
	}
	// Corrupt every manifest: cold start (ok=false), never an error.
	for id := int64(1); id <= 3; id++ {
		if err := os.WriteFile(manifestPath(dir, id), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, ok := loadLatest(dir, warn); ok {
		t.Fatal("corrupt manifests should cold start")
	}
}

func TestSnapshotPruneRetention(t *testing.T) {
	dir := t.TempDir()
	pr := trainedPredictor(t)
	warn := func(string, ...any) {}
	for id := int64(1); id <= 5; id++ {
		if err := writeSnapshot(dir, Manifest{ID: id}, pr); err != nil {
			t.Fatal(err)
		}
	}
	pruneSnapshots(dir, 2, warn)
	mans := listManifests(dir, warn)
	if len(mans) != 2 || mans[0].ID != 4 || mans[1].ID != 5 {
		t.Fatalf("after prune: %+v", mans)
	}
	if _, err := os.Stat(modelPath(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("pruned model still on disk")
	}
}

func TestManagerTenantLifecycleAndStaleSnapshots(t *testing.T) {
	mgr, err := NewManager(Config{Dir: t.TempDir(), Retain: 0, Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := mgr.Tenant("ads")
	if err != nil {
		t.Fatal(err)
	}
	pr := trainedPredictor(t)
	if err := ts.SaveSnapshot(Manifest{ID: 2, TrainRecords: 20}, pr); err != nil {
		t.Fatal(err)
	}
	if err := ts.SaveSnapshot(Manifest{ID: 1, TrainRecords: 10}, pr); !errors.Is(err, ErrStale) {
		t.Fatalf("stale snapshot err = %v", err)
	}
	if err := ts.AppendJournal(mkRecords(0, 5)); err != nil {
		t.Fatal(err)
	}
	st := ts.Stats()
	if st.Snapshots != 1 || st.JournalAppends != 1 || st.JournalRecords != 5 {
		t.Fatalf("stats = %+v", st)
	}
	ts.Close()

	names, err := mgr.TenantNames()
	if err != nil || len(names) != 1 || names[0] != "ads" {
		t.Fatalf("tenant names = %v, %v", names, err)
	}
	ts2, err := mgr.Tenant("ads")
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close()
	man, _, ok := ts2.LoadLatest()
	if !ok || man.ID != 2 {
		t.Fatalf("reloaded latest = %+v, ok=%v", man, ok)
	}
	if recs := ts2.Replay(); len(recs) != 5 {
		t.Fatalf("replayed %d records", len(recs))
	}
	if recs := ts2.Replay(); recs != nil {
		t.Fatal("replay must hand records over exactly once")
	}
}

func TestTenantDirNameEncoding(t *testing.T) {
	cases := []string{"ads", "search-01", "a/b", "../evil", "enc-41", ".hidden", "ünïcode", ""}
	seen := map[string]bool{}
	for _, name := range cases {
		dir := tenantDirName(name)
		if filepath.Base(dir) != dir || dir == "." || dir == ".." {
			t.Fatalf("%q: unsafe directory name %q", name, dir)
		}
		if seen[dir] {
			t.Fatalf("%q: directory collision on %q", name, dir)
		}
		seen[dir] = true
		back, ok := tenantNameFromDir(dir)
		if !ok || back != name {
			t.Fatalf("%q: round trip via %q gave %q (%v)", name, dir, back, ok)
		}
	}
}
