// Package persist is the serving layer's durable-state subsystem: a
// versioned model snapshot store plus an append-only telemetry journal
// per tenant, under one state directory. The serving layer writes
// snapshots on every model publish and journals every ingested telemetry
// batch before it reaches the in-memory log; on restart it reloads each
// tenant's latest snapshot (preserving version ids) and replays the
// journal, so a restarted server plans with its learned models on the
// first request instead of retraining from scratch.
//
// Layout under the state directory:
//
//	<state-dir>/
//	  <tenant>/                    one directory per tenant (encoded name)
//	    journal.wal                not-yet-trained telemetry (framed WAL)
//	    v00000001.model.json       serialized predictor of version 1
//	    v00000001.manifest.json    its metadata (commit marker)
//	    v00000002.model.json       ...
//
// All corruption degrades, never crashes: a torn journal tail is
// truncated to the last complete frame, an unreadable snapshot falls back
// to the next older one, and a tenant with nothing readable simply cold
// starts. Every skip is reported through the configured warn logger.
package persist

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cleo/internal/learned"
	"cleo/internal/obs"
	"cleo/internal/telemetry"
)

// ErrStale is returned by TenantState.SaveSnapshot when a newer version
// has already been snapshotted — the caller must not truncate the journal
// for the stale version.
var ErrStale = errors.New("persist: snapshot superseded by a newer version")

// Config configures a Manager.
type Config struct {
	// Dir is the state directory root (created if absent).
	Dir string
	// Fsync syncs the journal on every append. Off, durability of the
	// journal tail is left to the OS page cache (snapshots always sync).
	Fsync bool
	// Retain caps the number of snapshots kept per tenant (0 = keep all).
	Retain int
	// Logf receives corruption warnings and recovery notices
	// (default log.Printf).
	Logf func(format string, args ...any)
	// Metrics, when non-nil, records snapshot-write, journal-append and
	// fsync latencies into instruments registered here.
	Metrics *obs.Registry
}

// Manager owns one state directory and hands out per-tenant states.
type Manager struct {
	cfg     Config
	logf    func(format string, args ...any)
	metrics *metrics // nil without Config.Metrics
}

// NewManager creates the state directory (if needed) and returns a
// Manager rooted there.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: empty state directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	return &Manager{cfg: cfg, logf: logf, metrics: newMetrics(cfg.Metrics)}, nil
}

// tenantDirName encodes a tenant name as a safe directory name. Names in
// the conservative charset pass through unchanged; anything else (path
// separators, dots-only names, the encoding prefix itself) is hex-encoded
// behind an "enc-" marker so it round-trips without ever escaping the
// state directory.
func tenantDirName(name string) string {
	safe := name != "" && !strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "enc-")
	if safe {
		for i := 0; i < len(name); i++ {
			c := name[i]
			if !('a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9' ||
				c == '-' || c == '_' || c == '.') {
				safe = false
				break
			}
		}
	}
	if safe {
		return name
	}
	return "enc-" + hex.EncodeToString([]byte(name))
}

// tenantNameFromDir reverses tenantDirName.
func tenantNameFromDir(dir string) (string, bool) {
	if enc, ok := strings.CutPrefix(dir, "enc-"); ok {
		b, err := hex.DecodeString(enc)
		if err != nil {
			return "", false
		}
		return string(b), true
	}
	return dir, true
}

// TenantNames lists the tenants with state on disk, sorted.
func (m *Manager) TenantNames() ([]string, error) {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name, ok := tenantNameFromDir(e.Name())
		if !ok {
			m.logf("persist: skipping unrecognized state directory %q", e.Name())
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Tenant opens (creating if absent) the named tenant's durable state,
// running journal torn-tail recovery as part of the open.
func (m *Manager) Tenant(name string) (*TenantState, error) {
	dir := filepath.Join(m.cfg.Dir, tenantDirName(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j, rec, err := OpenJournal(filepath.Join(dir, journalName), m.cfg.Fsync)
	if err != nil {
		return nil, err
	}
	if rec.DroppedBytes > 0 {
		m.logf("persist: tenant %q: journal recovery dropped %d-byte torn tail (%s); kept %d records",
			name, rec.DroppedBytes, rec.Reason, len(rec.Records))
	}
	ts := &TenantState{
		name:    name,
		dir:     dir,
		retain:  m.cfg.Retain,
		logf:    m.logf,
		journal: j,
		replay:  rec.Records,
		metrics: m.metrics,
	}
	if m.metrics != nil {
		j.fsyncSeconds = m.metrics.fsyncSeconds
	}
	ts.droppedBytes.Store(rec.DroppedBytes)
	return ts, nil
}

// TenantState is one tenant's durable state: its snapshot directory and
// telemetry journal, plus persistence counters for /v1/stats.
type TenantState struct {
	name    string
	dir     string
	retain  int
	logf    func(format string, args ...any)
	journal *Journal
	metrics *metrics // nil without observability

	mu       sync.Mutex // serializes snapshot writes; guards lastSnap
	lastSnap int64

	tablesMu sync.Mutex // serializes tables.json writes

	replayMu sync.Mutex
	replay   []telemetry.Record

	snapshots        atomic.Uint64
	snapshotErrors   atomic.Uint64
	journalAppends   atomic.Uint64
	journalErrors    atomic.Uint64
	tableSaves       atomic.Uint64
	tableErrors      atomic.Uint64
	droppedBytes     atomic.Int64
	recoveredVersion atomic.Int64
	recoveredRecords atomic.Int64
}

// Replay hands over the journal records recovered at open (once).
func (ts *TenantState) Replay() []telemetry.Record {
	ts.replayMu.Lock()
	defer ts.replayMu.Unlock()
	recs := ts.replay
	ts.replay = nil
	ts.recoveredRecords.Store(int64(len(recs)))
	return recs
}

// AppendJournal durably records one ingested batch. On failure Append
// itself counts the un-journaled records as a gap (the serving flusher
// still appends them to the in-memory log), so later frames keep
// truthful log-index ranges and MarkTrained can never cut records the
// training snapshot did not cover.
func (ts *TenantState) AppendJournal(recs []telemetry.Record) error {
	var t0 time.Time
	if ts.metrics != nil {
		t0 = time.Now()
	}
	if err := ts.journal.Append(recs); err != nil {
		ts.journalErrors.Add(1)
		return err
	}
	if !t0.IsZero() {
		ts.metrics.appendSeconds.Record(time.Since(t0))
	}
	ts.journalAppends.Add(1)
	return nil
}

// MarkTrained cuts journal frames fully covered by the first trained
// records of the tenant's in-process telemetry log.
func (ts *TenantState) MarkTrained(trained int) error {
	return ts.journal.MarkTrained(int64(trained))
}

// SaveSnapshot persists one published version. Writes are serialized and
// monotonic: saving a version at or below the newest already-saved id
// returns ErrStale untouched (the caller skips its journal truncation).
func (ts *TenantState) SaveSnapshot(man Manifest, pr *learned.Predictor) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if man.ID <= ts.lastSnap {
		return ErrStale
	}
	man.SavedAt = time.Now().UTC()
	var t0 time.Time
	if ts.metrics != nil {
		t0 = time.Now()
	}
	if err := writeSnapshot(ts.dir, man, pr); err != nil {
		ts.snapshotErrors.Add(1)
		return err
	}
	if !t0.IsZero() {
		ts.metrics.snapshotSeconds.Record(time.Since(t0))
	}
	ts.lastSnap = man.ID
	ts.snapshots.Add(1)
	pruneSnapshots(ts.dir, ts.retain, ts.logf)
	return nil
}

// ExportSnapshot reads one snapshot's raw artifacts — manifest plus the
// serialized model exactly as it sits on disk — for shipping to a replica.
// The bytes round-trip bit-identically through ImportSnapshot on the
// receiving node.
func (ts *TenantState) ExportSnapshot(id int64) (Manifest, []byte, error) {
	man, err := readManifest(manifestPath(ts.dir, id))
	if err != nil {
		return Manifest{}, nil, err
	}
	model, err := os.ReadFile(modelPath(ts.dir, id))
	if err != nil {
		return Manifest{}, nil, err
	}
	return man, model, nil
}

// ImportSnapshot installs a snapshot received from another node, writing
// the model bytes verbatim (replicas hold bit-identical artifacts) through
// the same atomic temp+fsync+rename path as local snapshots. Monotonicity
// matches SaveSnapshot: importing a version at or below the newest already
// on disk returns ErrStale untouched.
func (ts *TenantState) ImportSnapshot(man Manifest, model []byte) error {
	if man.ID <= 0 {
		return fmt.Errorf("persist: import snapshot: bad id %d", man.ID)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if man.ID <= ts.lastSnap {
		return ErrStale
	}
	if man.SavedAt.IsZero() {
		man.SavedAt = time.Now().UTC()
	}
	var t0 time.Time
	if ts.metrics != nil {
		t0 = time.Now()
	}
	if err := writeFileAtomic(modelPath(ts.dir, man.ID), func(w io.Writer) error {
		_, err := w.Write(model)
		return err
	}); err != nil {
		ts.snapshotErrors.Add(1)
		return fmt.Errorf("persist: import model v%d: %w", man.ID, err)
	}
	if err := writeFileAtomic(manifestPath(ts.dir, man.ID), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&man)
	}); err != nil {
		ts.snapshotErrors.Add(1)
		return fmt.Errorf("persist: import manifest v%d: %w", man.ID, err)
	}
	if !t0.IsZero() {
		ts.metrics.snapshotSeconds.Record(time.Since(t0))
	}
	ts.lastSnap = man.ID
	ts.snapshots.Add(1)
	pruneSnapshots(ts.dir, ts.retain, ts.logf)
	return nil
}

// LoadLatest returns the newest loadable snapshot, skipping corrupt ones.
func (ts *TenantState) LoadLatest() (Manifest, *learned.Predictor, bool) {
	man, pr, ok := loadLatest(ts.dir, ts.logf)
	if ok {
		ts.noteLoaded(man.ID)
	}
	return man, pr, ok
}

// LoadModel loads one snapshot's predictor by id — for callers that have
// already enumerated Manifests and want to walk them without re-listing.
func (ts *TenantState) LoadModel(id int64) (*learned.Predictor, error) {
	pr, err := learned.LoadFile(modelPath(ts.dir, id))
	if err != nil {
		return nil, err
	}
	ts.noteLoaded(id)
	return pr, nil
}

// noteLoaded keeps the stale-write cursor at or above a restored id, so
// a post-recovery snapshot can never regress what is already on disk.
func (ts *TenantState) noteLoaded(id int64) {
	ts.mu.Lock()
	if id > ts.lastSnap {
		ts.lastSnap = id
	}
	ts.mu.Unlock()
}

// Manifests lists every readable snapshot manifest, oldest first.
func (ts *TenantState) Manifests() []Manifest {
	return listManifests(ts.dir, ts.logf)
}

// NoteRecoveredVersion records the version id restored at startup for the
// stats counters.
func (ts *TenantState) NoteRecoveredVersion(id int64) {
	ts.recoveredVersion.Store(id)
}

// Stats snapshots one tenant's persistence counters.
type Stats struct {
	// Snapshots / SnapshotErrors count model snapshot writes this process.
	Snapshots      uint64 `json:"snapshots"`
	SnapshotErrors uint64 `json:"snapshot_errors,omitempty"`
	// JournalAppends / JournalErrors count journaled telemetry batches.
	JournalAppends uint64 `json:"journal_appends"`
	JournalErrors  uint64 `json:"journal_errors,omitempty"`
	// TableSaves / TableErrors count table-statistics catalog writes
	// (tables.json) this process.
	TableSaves  uint64 `json:"table_saves,omitempty"`
	TableErrors uint64 `json:"table_errors,omitempty"`
	// JournalRecords / JournalBytes describe the journal's current
	// (not-yet-trained) contents.
	JournalRecords int64 `json:"journal_records"`
	JournalBytes   int64 `json:"journal_bytes"`
	// RecoveredVersion / RecoveredRecords describe what startup recovery
	// restored; DroppedBytes is the torn journal tail it discarded.
	RecoveredVersion int64 `json:"recovered_version,omitempty"`
	RecoveredRecords int64 `json:"recovered_records,omitempty"`
	DroppedBytes     int64 `json:"dropped_bytes,omitempty"`
}

// Stats reports the tenant's persistence counters.
func (ts *TenantState) Stats() Stats {
	return Stats{
		Snapshots:        ts.snapshots.Load(),
		SnapshotErrors:   ts.snapshotErrors.Load(),
		JournalAppends:   ts.journalAppends.Load(),
		JournalErrors:    ts.journalErrors.Load(),
		TableSaves:       ts.tableSaves.Load(),
		TableErrors:      ts.tableErrors.Load(),
		JournalRecords:   ts.journal.Records(),
		JournalBytes:     ts.journal.SizeBytes(),
		RecoveredVersion: ts.recoveredVersion.Load(),
		RecoveredRecords: ts.recoveredRecords.Load(),
		DroppedBytes:     ts.droppedBytes.Load(),
	}
}

// Close closes the tenant's journal.
func (ts *TenantState) Close() error {
	return ts.journal.Close()
}
