package persist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cleo/internal/learned"
	"cleo/internal/ml"
)

// The snapshot store persists each published model version as a pair of
// files inside the tenant's state directory:
//
//	v00000003.model.json     the serialized predictor (learned.Predictor.Save)
//	v00000003.manifest.json  Manifest — metadata, written last as the commit marker
//
// Both are written to a temp file, fsynced and atomically renamed, and
// the manifest only lands after the model: a snapshot without a readable
// manifest+model pair is simply skipped at recovery, so a crash mid-write
// can cost at most the newest snapshot, never correctness.

// Manifest is one snapshot's metadata — the durable form of the serving
// registry's ModelVersionInfo.
type Manifest struct {
	// ID is the registry version id; recovery resumes the id sequence here.
	ID int64 `json:"id"`
	// TrainedAt is the version's publish wall-clock time.
	TrainedAt time.Time `json:"trained_at"`
	// TrainRecords is the telemetry log size the version was trained on.
	TrainRecords int `json:"train_records"`
	// NumModels counts the individual learned models in the version.
	NumModels int `json:"num_models"`
	// Accuracy snapshots prediction quality at training time.
	Accuracy ml.Accuracy `json:"accuracy"`
	// SavedAt is when the snapshot reached disk.
	SavedAt time.Time `json:"saved_at"`
}

func manifestPath(dir string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("v%08d.manifest.json", id))
}

func modelPath(dir string, id int64) string {
	return filepath.Join(dir, fmt.Sprintf("v%08d.model.json", id))
}

// writeFileAtomic writes via a temp file, fsyncs, and renames into place.
func writeFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename itself must survive power loss before callers may act on
	// the write (the serving layer truncates the telemetry journal as soon
	// as a snapshot reports success).
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory, making preceding renames in it durable —
// the completion step of the write-temp-then-rename pattern.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSnapshot persists one version: model first, manifest last (commit).
func writeSnapshot(dir string, man Manifest, pr *learned.Predictor) error {
	if err := writeFileAtomic(modelPath(dir, man.ID), pr.Save); err != nil {
		return fmt.Errorf("persist: write model v%d: %w", man.ID, err)
	}
	err := writeFileAtomic(manifestPath(dir, man.ID), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&man)
	})
	if err != nil {
		return fmt.Errorf("persist: write manifest v%d: %w", man.ID, err)
	}
	return nil
}

// readManifest loads and validates one manifest file.
func readManifest(path string) (Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var man Manifest
	if err := json.Unmarshal(b, &man); err != nil {
		return Manifest{}, fmt.Errorf("persist: decode manifest %s: %w", filepath.Base(path), err)
	}
	if man.ID <= 0 {
		return Manifest{}, fmt.Errorf("persist: manifest %s: bad id %d", filepath.Base(path), man.ID)
	}
	return man, nil
}

// listManifests returns every readable manifest in dir, ascending by id.
// Unreadable or malformed manifests are reported to warn and skipped.
func listManifests(dir string, warn func(format string, args ...any)) []Manifest {
	paths, _ := filepath.Glob(filepath.Join(dir, "v*.manifest.json"))
	sort.Strings(paths)
	out := make([]Manifest, 0, len(paths))
	for _, p := range paths {
		man, err := readManifest(p)
		if err != nil {
			warn("persist: skipping snapshot manifest %s: %v", p, err)
			continue
		}
		out = append(out, man)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// loadLatest walks the manifests newest-first and returns the first
// snapshot whose model also loads; corrupt snapshots degrade to the next
// older one (and ultimately to a cold start), never to an error.
func loadLatest(dir string, warn func(format string, args ...any)) (Manifest, *learned.Predictor, bool) {
	mans := listManifests(dir, warn)
	for i := len(mans) - 1; i >= 0; i-- {
		man := mans[i]
		pr, err := learned.LoadFile(modelPath(dir, man.ID))
		if err != nil {
			warn("persist: skipping snapshot v%d in %s: %v", man.ID, dir, err)
			continue
		}
		return man, pr, true
	}
	return Manifest{}, nil, false
}

// pruneSnapshots removes the oldest snapshots beyond retain (0 keeps all).
func pruneSnapshots(dir string, retain int, warn func(format string, args ...any)) {
	if retain <= 0 {
		return
	}
	mans := listManifests(dir, func(string, ...any) {})
	for len(mans) > retain {
		man := mans[0]
		mans = mans[1:]
		// Manifest first: a model without a manifest is invisible to
		// recovery, so the pair disappears atomically from its view.
		if err := os.Remove(manifestPath(dir, man.ID)); err != nil {
			warn("persist: prune manifest v%d: %v", man.ID, err)
			continue
		}
		if err := os.Remove(modelPath(dir, man.ID)); err != nil {
			warn("persist: prune model v%d: %v", man.ID, err)
		}
	}
}
