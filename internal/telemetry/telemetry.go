// Package telemetry implements the instrumentation-and-logging leg of the
// paper's feedback loop (Section 5.1): it runs workload jobs through the
// optimizer and the execution simulator and emits one record per operator
// instance, carrying the compile-time statistics (the learned models'
// features) together with the observed actual exclusive latency (the
// training target) and actual cardinalities (for the cardinality
// experiments).
package telemetry

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"cleo/internal/cascades"
	"cleo/internal/exec"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/workload"
)

// Record is one operator observation from one job run.
type Record struct {
	JobID     string
	Cluster   int
	Day       int
	Recurring bool

	// Sigs keys the four learned model families.
	Sigs plan.Signatures
	Op   plan.PhysicalOp

	// Compile-time statistics (estimated, as the optimizer saw them).
	InCard     float64 // I: total input cardinality from children
	BaseCard   float64 // B: total input cardinality at the leaves
	OutCard    float64 // C: output cardinality
	RowLength  float64 // L
	Partitions int     // P
	Inputs     string  // IN: normalized input templates, joined
	Param      float64 // PM: job parameter
	NumLogical int     // CL: logical operators in the subgraph
	Depth      int     // D: operator depth in the subgraph

	// Actual (runtime) observations.
	ActualLatency float64 // exclusive latency, seconds — the target
	ActInCard     float64
	ActBaseCard   float64
	ActOutCard    float64

	// DefaultCost is the planner cost model's prediction, kept for
	// baseline comparisons.
	DefaultCost float64
}

// JobResult is the job-level outcome.
type JobResult struct {
	JobID               string
	Cluster             int
	Day                 int
	Recurring           bool
	Latency             float64
	TotalProcessingTime float64
	Containers          int
	PlanOps             int
	Plan                *plan.Physical
}

// Runner executes a trace and collects telemetry.
type Runner struct {
	// Trace is the workload to run.
	Trace *workload.Trace
	// Clusters supplies one simulator per trace cluster; built from
	// DefaultClusterSeed if nil.
	Clusters []*exec.Cluster
	// Cost is the cost model used for planning (stock SCOPE: the default
	// model). Required.
	Cost cascades.Coster
	// Mode selects estimated or perfect cardinalities.
	Mode stats.CardinalityMode
	// ResourceAware and Chooser configure the optimizer's partition
	// exploration.
	ResourceAware bool
	Chooser       cascades.PartitionChooser
	// MaxPartitions caps stage parallelism.
	MaxPartitions int
	// Parallelism bounds worker goroutines; 0 means GOMAXPROCS.
	Parallelism int
	// Jitter perturbs the final plan's partition counts per stage so the
	// collected telemetry covers a range of counts per template (see
	// cascades.JitterPlanPartitions). Enable for training-data collection.
	Jitter bool
	// Corrector, when set, rewrites the plan's estimated cardinalities
	// after planning and before logging — the hook the CardLearner
	// comparison (Figure 15) uses. Costs are re-derived afterwards.
	Corrector func(root *plan.Physical)
}

// Collected bundles a run's outputs.
type Collected struct {
	Records []Record
	Jobs    []JobResult
}

// RunAll executes every job in the trace and returns per-operator records
// and per-job results, in trace order.
func (r *Runner) RunAll() (*Collected, error) {
	clusters := r.Clusters
	if clusters == nil {
		for i := range r.Trace.Catalogs {
			clusters = append(clusters, exec.NewCluster(exec.DefaultConfig(uint64(i)+77)))
		}
	}
	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	jobs := r.Trace.Jobs
	recs := make([][]Record, len(jobs))
	results := make([]JobResult, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for i := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			recs[i], results[i], errs[i] = r.runJob(&jobs[i], clusters[jobs[i].Cluster])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &Collected{}
	for i := range jobs {
		out.Records = append(out.Records, recs[i]...)
		out.Jobs = append(out.Jobs, results[i])
	}
	return out, nil
}

// runJob optimizes, annotates and executes one job, then extracts records.
func (r *Runner) runJob(job *workload.Job, cluster *exec.Cluster) ([]Record, JobResult, error) {
	maxP := r.MaxPartitions
	if maxP <= 0 {
		maxP = cluster.MaxPartitions()
	}
	opt := &cascades.Optimizer{
		Catalog:       r.Trace.Catalogs[job.Cluster],
		Cost:          r.Cost,
		MaxPartitions: maxP,
		ResourceAware: r.ResourceAware,
		Chooser:       r.Chooser,
		JobSeed:       job.Seed,
	}
	res, err := opt.Optimize(job.Query)
	if err != nil {
		return nil, JobResult{}, err
	}
	p := res.Plan
	if r.Jitter {
		cascades.JitterPlanPartitions(p, job.Seed, maxP, r.Cost)
	}
	if r.Mode == stats.Perfect {
		// Feed actual cardinalities back as estimates before logging.
		p.Walk(func(n *plan.Physical) { n.Stats.EstCard = n.Stats.ActCard })
	}
	if r.Corrector != nil {
		r.Corrector(p)
	}
	if r.Mode == stats.Perfect || r.Corrector != nil {
		// Estimates changed after planning; refresh per-operator costs.
		p.Walk(func(n *plan.Physical) { n.ExclusiveCostEst = r.Cost.OperatorCost(n) })
	}
	runRes, err := cluster.Run(p, rand.New(rand.NewSource(job.Seed)))
	if err != nil {
		return nil, JobResult{}, err
	}
	records := Extract(job, p)
	jr := JobResult{
		JobID:               job.ID,
		Cluster:             job.Cluster,
		Day:                 job.Day,
		Recurring:           job.Recurring,
		Latency:             runRes.Latency,
		TotalProcessingTime: runRes.TotalProcessingTime,
		Containers:          runRes.Containers,
		PlanOps:             p.Count(),
		Plan:                p,
	}
	return records, jr, nil
}

// Extract converts an executed plan into per-operator records.
func Extract(job *workload.Job, root *plan.Physical) []Record {
	var out []Record
	actBase := actualBase(root)
	estBase := root.BaseCardinality()
	root.Walk(func(n *plan.Physical) {
		counts := n.LogicalOpCounts()
		numLogical := 0
		for _, c := range counts {
			numLogical += c
		}
		out = append(out, Record{
			JobID:         job.ID,
			Cluster:       job.Cluster,
			Day:           job.Day,
			Recurring:     job.Recurring,
			Sigs:          plan.ComputeSignatures(n),
			Op:            n.Op,
			InCard:        inCard(n, true),
			BaseCard:      estBase,
			OutCard:       n.Stats.EstCard,
			RowLength:     n.Stats.RowLength,
			Partitions:    n.Partitions,
			Inputs:        strings.Join(n.InputTemplates(), "+"),
			Param:         job.Param,
			NumLogical:    numLogical,
			Depth:         n.Depth(),
			ActualLatency: n.ExclusiveActual,
			ActInCard:     inCard(n, false),
			ActBaseCard:   actBase,
			ActOutCard:    n.Stats.ActCard,
			DefaultCost:   n.ExclusiveCostEst,
		})
	})
	return out
}

// inCard returns input cardinality; leaves use their own output (the data
// they read).
func inCard(n *plan.Physical, est bool) float64 {
	if len(n.Children) == 0 {
		if est {
			return n.Stats.EstCard
		}
		return n.Stats.ActCard
	}
	return n.InputCardinality(est)
}

func actualBase(root *plan.Physical) float64 {
	var sum float64
	for _, leaf := range root.Leaves() {
		sum += leaf.Stats.ActCard
	}
	return sum
}
