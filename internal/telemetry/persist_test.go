package telemetry

import (
	"bytes"
	"path/filepath"
	"testing"

	"cleo/internal/costmodel"
)

func TestRecordsRoundTrip(t *testing.T) {
	tr := smallTrace()
	r := &Runner{Trace: tr, Cost: costmodel.Default{}}
	col, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, col.Records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(col.Records) {
		t.Fatalf("records: %d vs %d", len(back), len(col.Records))
	}
	for i := range back {
		if back[i] != col.Records[i] {
			t.Fatalf("record %d differs after round trip:\n%+v\n%+v", i, back[i], col.Records[i])
		}
	}
}

func TestRecordsFileRoundTrip(t *testing.T) {
	tr := smallTrace()
	r := &Runner{Trace: tr, Cost: costmodel.Default{}}
	col, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "telemetry.jsonl")
	if err := WriteRecordsFile(path, col.Records[:100]); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecordsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 100 {
		t.Fatalf("read %d records", len(back))
	}
}

func TestReadRecordsRejectsGarbage(t *testing.T) {
	if _, err := ReadRecords(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestReadRecordsEmpty(t *testing.T) {
	recs, err := ReadRecords(bytes.NewBuffer(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty input gave %d records", len(recs))
	}
}

func TestReadRecordsFileMissing(t *testing.T) {
	if _, err := ReadRecordsFile("/nonexistent/file.jsonl"); err == nil {
		t.Fatal("expected error")
	}
}
