package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteRecords streams records as JSON lines — the on-disk form of the
// query logs the paper's trainer consumes.
func WriteRecords(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("telemetry: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadRecords parses a JSON-lines record stream.
func ReadRecords(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: decode record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// WriteRecordsFile writes records to path.
func WriteRecordsFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteRecords(f, recs); err != nil {
		return err
	}
	return f.Close()
}

// ReadRecordsFile reads records from path.
func ReadRecordsFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRecords(f)
}
