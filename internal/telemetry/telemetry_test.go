package telemetry

import (
	"testing"

	"cleo/internal/costmodel"
	"cleo/internal/stats"
	"cleo/internal/workload"
)

func smallTrace() *workload.Trace {
	return workload.Generate(workload.Config{
		Clusters:                   1,
		Days:                       2,
		TemplatesPerCluster:        5,
		InstancesPerTemplatePerDay: 2,
		AdHocFraction:              0.1,
		Seed:                       7,
	})
}

func TestRunAllProducesRecords(t *testing.T) {
	tr := smallTrace()
	r := &Runner{Trace: tr, Cost: costmodel.Default{}, Mode: stats.Estimated}
	col, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Jobs) != len(tr.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(col.Jobs), len(tr.Jobs))
	}
	if len(col.Records) == 0 {
		t.Fatal("no records")
	}
	for _, rec := range col.Records[:50] {
		if rec.ActualLatency <= 0 {
			t.Fatalf("record %s/%v latency = %v", rec.JobID, rec.Op, rec.ActualLatency)
		}
		if rec.Partitions < 1 {
			t.Fatalf("record partitions = %d", rec.Partitions)
		}
		if rec.OutCard <= 0 || rec.BaseCard <= 0 {
			t.Fatalf("record cards: out=%v base=%v", rec.OutCard, rec.BaseCard)
		}
	}
	for _, jr := range col.Jobs {
		if jr.Latency <= 0 || jr.TotalProcessingTime <= 0 || jr.PlanOps < 2 {
			t.Fatalf("job result %+v", jr)
		}
	}
}

func TestRecurringInstancesShareSignatures(t *testing.T) {
	tr := smallTrace()
	r := &Runner{Trace: tr, Cost: costmodel.Default{}}
	col, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	// Group subgraph signatures by (template, op position count); records
	// of the same recurring template across days must reuse signatures.
	sigCount := map[uint64]int{}
	for _, rec := range col.Records {
		if rec.Recurring {
			sigCount[uint64(rec.Sigs.Subgraph)]++
		}
	}
	repeated := 0
	for _, c := range sigCount {
		if c >= 4 { // 2 days × 2 instances
			repeated++
		}
	}
	if repeated == 0 {
		t.Fatal("no subgraph signatures repeat across recurring instances")
	}
}

func TestPerfectModeEqualizesCards(t *testing.T) {
	tr := smallTrace()
	r := &Runner{Trace: tr, Cost: costmodel.Default{}, Mode: stats.Perfect}
	col, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range col.Records {
		if rec.OutCard != rec.ActOutCard {
			t.Fatalf("perfect mode: est %v != act %v", rec.OutCard, rec.ActOutCard)
		}
	}
}

func TestRunAllDeterministic(t *testing.T) {
	run := func() *Collected {
		r := &Runner{Trace: smallTrace(), Cost: costmodel.Default{}, Parallelism: 4}
		col, err := r.RunAll()
		if err != nil {
			t.Fatal(err)
		}
		return col
	}
	a, b := run(), run()
	if len(a.Records) != len(b.Records) {
		t.Fatal("record counts differ")
	}
	for i := range a.Records {
		if a.Records[i].ActualLatency != b.Records[i].ActualLatency {
			t.Fatalf("record %d latency differs", i)
		}
	}
}
