package learned

import (
	"cleo/internal/plan"
)

// Coster adapts a Predictor to the optimizer's costing interface — the
// paper's step 10 in Figure 8a: the Optimize Inputs task calls the learned
// models instead of the default cost model. One Coster is created per job
// so the job's parameter (PM feature) is available.
type Coster struct {
	// Predictor is the trained CLEO model set.
	Predictor *Predictor
	// Param is the current job's parameter.
	Param float64
	// Fallback, when non-nil, prices operators if the predictor somehow
	// returns a non-positive cost (the combined model always covers, so
	// this is a guard rail, mirroring Section 6.7's discussion of
	// disabling learned models per operator).
	Fallback interface {
		OperatorCost(n *plan.Physical) float64
	}
	// Cache, when non-nil, memoizes OperatorCost by operator signature and
	// statistics — the serving layer's recurring-job hot path. The cache
	// must have been filled by this same Predictor (pair one cache with
	// each published model version).
	Cache *PredictionCache
	// Metrics, when non-nil, records batched-costing throughput and
	// latency (see NewCosterMetrics).
	Metrics *CosterMetrics
}

// Name implements cascades.Coster.
func (c *Coster) Name() string { return "CLEO" }

// TemplateIdentity implements cascades.TemplateIdentifier: the recurring-job
// template cache keys on the predictor pointer, so a model hot-swap (which
// installs a new *Predictor) can never hit a template cached under the old
// version, even though Costers themselves are rebuilt per optimization.
func (c *Coster) TemplateIdentity() any { return c.Predictor }

// OperatorCost implements cascades.Coster.
func (c *Coster) OperatorCost(n *plan.Physical) float64 {
	if c.Cache == nil {
		return c.predictCost(n)
	}
	k := c.Cache.keyFor(n, c.Param)
	if v, ok := c.Cache.lookup(k); ok {
		return v
	}
	v := c.predictCost(n)
	c.Cache.store(k, v)
	return v
}

// predictCost prices the operator with the combined model, falling back to
// the default cost model on non-positive predictions.
func (c *Coster) predictCost(n *plan.Physical) float64 {
	pred := c.Predictor.PredictNode(n, c.Param)
	if pred.Cost > 0 {
		return pred.Cost
	}
	if c.Fallback != nil {
		return c.Fallback.OperatorCost(n)
	}
	return 0
}

// IndividualCost prices the operator with the most specialized covered
// individual model instead of the combined ensemble. Partition exploration
// probes this (Section 5.3: "we reuse the individual learned models to
// directly model the relationship between the partition count and the
// cost") — the elastic nets' explicit 1/P and P terms give the smooth
// curves the analytical fit needs, where tree ensembles step.
func (c *Coster) IndividualCost(n *plan.Physical) float64 {
	sigs := plan.ComputeSignatures(n)
	f := FromNode(n, c.Param)
	for fam := 0; fam < NumFamilies; fam++ {
		fm := c.Predictor.Families[fam]
		if fm == nil {
			continue
		}
		if v, ok := fm.PredictFeatures(sigs, f); ok && v > 0 {
			return v
		}
	}
	if c.Fallback != nil {
		return c.Fallback.OperatorCost(n)
	}
	return 0
}
