package learned

import (
	"math"
	"testing"

	"cleo/internal/plan"
)

// quadraticCoster prices operators with a known cost(P) = A/P + B*P + C
// curve so the analytical fit can be verified exactly.
type quadraticCoster struct{ A, B, C float64 }

func (q quadraticCoster) OperatorCost(n *plan.Physical) float64 {
	p := float64(n.Partitions)
	if p < 1 {
		p = 1
	}
	return q.A/p + q.B*p + q.C
}

func mkOp(partitions int) *plan.Physical {
	n := plan.NewPhysical(plan.PExchange)
	n.Partitions = partitions
	n.Stats = plan.NodeStats{EstCard: 1e6, ActCard: 1e6, RowLength: 100}
	return n
}

func TestAnalyticalChooserRecoversOptimum(t *testing.T) {
	// cost = 1000/P + 0.1*P: optimum at sqrt(1000/0.1) = 100.
	c := &AnalyticalChooser{Cost: quadraticCoster{A: 1000, B: 0.1}}
	ops := []*plan.Physical{mkOp(10)}
	p, lookups := c.ChooseStagePartitions(ops, 3000)
	if lookups != numProbes {
		t.Fatalf("lookups = %d, want %d", lookups, numProbes)
	}
	if p < 80 || p > 125 {
		t.Fatalf("chosen %d, want ~100", p)
	}
	// Partitions restored.
	if ops[0].Partitions != 10 {
		t.Fatal("chooser mutated operator")
	}
}

func TestAnalyticalChooserSumsAcrossOps(t *testing.T) {
	// Two ops: 1000/P+0.1P and 4000/P+0.3P → optimum sqrt(5000/0.4)≈112.
	c := &AnalyticalChooser{Cost: quadraticCoster{A: 1000, B: 0.1}}
	c2 := quadraticCoster{A: 4000, B: 0.3}
	// Use a multi-coster wrapper: price by op identity.
	ops := []*plan.Physical{mkOp(10), mkOp(10)}
	mc := multiCoster{ops[0]: quadraticCoster{A: 1000, B: 0.1}, ops[1]: c2}
	chooser := &AnalyticalChooser{Cost: mc}
	p, _ := chooser.ChooseStagePartitions(ops, 3000)
	want := math.Sqrt(5000 / 0.4)
	if math.Abs(float64(p)-want) > want*0.25 {
		t.Fatalf("chosen %d, want ~%.0f", p, want)
	}
	_ = c
}

type multiCoster map[*plan.Physical]quadraticCoster

func (m multiCoster) OperatorCost(n *plan.Physical) float64 { return m[n].OperatorCost(n) }

func TestAnalyticalChooserMonotoneDecreasing(t *testing.T) {
	// Pure parallelism benefit (B=0): paper case (i) — maximum count.
	c := &AnalyticalChooser{Cost: quadraticCoster{A: 1000, B: 0}}
	p, _ := c.ChooseStagePartitions([]*plan.Physical{mkOp(5)}, 500)
	if p != 500 {
		t.Fatalf("chosen %d, want max 500", p)
	}
}

func TestAnalyticalChooserMonotoneIncreasing(t *testing.T) {
	// Pure overhead (A=0): paper case (ii) — minimum count.
	c := &AnalyticalChooser{Cost: quadraticCoster{A: 0, B: 1}}
	p, _ := c.ChooseStagePartitions([]*plan.Physical{mkOp(5)}, 500)
	if p != 1 {
		t.Fatalf("chosen %d, want 1", p)
	}
}

func TestAnalyticalChooserConstantCost(t *testing.T) {
	// Flat curve: keep the current count (degenerate case).
	c := &AnalyticalChooser{Cost: quadraticCoster{C: 7}}
	p, _ := c.ChooseStagePartitions([]*plan.Physical{mkOp(42)}, 500)
	if p != 42 {
		t.Fatalf("chosen %d, want current 42", p)
	}
}

func TestAnalyticalChooserFitMemo(t *testing.T) {
	cache := NewPredictionCache()
	c := &AnalyticalChooser{Cost: quadraticCoster{A: 1000, B: 0.1}, Param: 2, Fits: cache}
	ops := []*plan.Physical{mkOp(10)}
	p1, l1 := c.ChooseStagePartitions(ops, 3000)
	if l1 != numProbes {
		t.Fatalf("first call lookups = %d, want %d", l1, numProbes)
	}
	// The recurring stage answers from the memo: same choice, zero probes.
	p2, l2 := c.ChooseStagePartitions(ops, 3000)
	if l2 != 0 {
		t.Fatalf("memoized call spent %d lookups", l2)
	}
	if p1 != p2 {
		t.Fatalf("memoized choice %d != fresh choice %d", p2, p1)
	}
	if st := cache.Stats(); st.FitHits != 1 || st.FitMisses != 1 {
		t.Fatalf("fit counters = %d hits / %d misses", st.FitHits, st.FitMisses)
	}
	// Any cost input in the key forces a recompute: statistics...
	ops[0].Stats.EstCard *= 2
	if _, l := c.ChooseStagePartitions(ops, 3000); l != numProbes {
		t.Fatalf("changed stats answered from memo (%d lookups)", l)
	}
	// ...and the partition cap (probe points derive from it).
	if _, l := c.ChooseStagePartitions(ops, 500); l != numProbes {
		t.Fatalf("changed cap answered from memo (%d lookups)", l)
	}
	// A model hot-swap publishes a fresh cache: the memo starts empty.
	c.Fits = NewPredictionCache()
	if _, l := c.ChooseStagePartitions(ops, 500); l != numProbes {
		t.Fatalf("fresh cache answered from memo (%d lookups)", l)
	}
}

func TestAnalyticalChooserFitMemoDegenerateKeepsCurrent(t *testing.T) {
	// The flat-curve branch keeps the operator's CURRENT count, which is
	// deliberately outside the memo key: a memo hit must still honor it.
	cache := NewPredictionCache()
	c := &AnalyticalChooser{Cost: quadraticCoster{C: 7}, Fits: cache}
	op := mkOp(42)
	if p, _ := c.ChooseStagePartitions([]*plan.Physical{op}, 500); p != 42 {
		t.Fatalf("fresh degenerate choice = %d, want 42", p)
	}
	op.Partitions = 7
	p, lookups := c.ChooseStagePartitions([]*plan.Physical{op}, 500)
	if lookups != 0 {
		t.Fatalf("expected memo hit, spent %d lookups", lookups)
	}
	if p != 7 {
		t.Fatalf("memoized degenerate choice = %d, want the live count 7", p)
	}
}

func TestAnalyticalChooserEmptyStage(t *testing.T) {
	c := &AnalyticalChooser{Cost: quadraticCoster{}}
	p, lookups := c.ChooseStagePartitions(nil, 500)
	if p != 1 || lookups != 0 {
		t.Fatalf("empty stage: %d, %d", p, lookups)
	}
}

func TestProbePointsSpanRange(t *testing.T) {
	pts := probePoints(3000)
	if pts[0] != 1 {
		t.Fatalf("first probe = %v", pts[0])
	}
	if pts[numProbes-1] != 3000 {
		t.Fatalf("last probe = %v", pts[numProbes-1])
	}
	for i := 1; i < numProbes; i++ {
		if pts[i] <= pts[i-1] {
			t.Fatalf("probes not increasing: %v", pts)
		}
	}
}

func TestSolve3(t *testing.T) {
	// x + y + z = 6; 2x + y = 5; x - z = -1 → x=1.25? Solve a known system:
	// 2x + y + z = 9; x + 3y + 2z = 17; x + y + 4z = 15 → x=1?, verify by
	// residual instead of hand-solving.
	m := [3][3]float64{{2, 1, 1}, {1, 3, 2}, {1, 1, 4}}
	b := [3]float64{9, 17, 15}
	x, ok := solve3(m, b)
	if !ok {
		t.Fatal("singular?")
	}
	for i := 0; i < 3; i++ {
		got := m[i][0]*x[0] + m[i][1]*x[1] + m[i][2]*x[2]
		if math.Abs(got-b[i]) > 1e-9 {
			t.Fatalf("row %d residual: %v vs %v", i, got, b[i])
		}
	}
}

func TestSolve3Singular(t *testing.T) {
	m := [3][3]float64{{1, 2, 3}, {2, 4, 6}, {1, 1, 1}} // rows 1,2 dependent
	if _, ok := solve3(m, [3]float64{1, 2, 3}); ok {
		t.Fatal("singular system should fail")
	}
}

func TestClampInt(t *testing.T) {
	if clampInt(5, 1, 10) != 5 || clampInt(-1, 1, 10) != 1 || clampInt(99, 1, 10) != 10 {
		t.Fatal("clampInt wrong")
	}
}
