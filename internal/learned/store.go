package learned

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"cleo/internal/ml"
	"cleo/internal/ml/dtree"
	"cleo/internal/ml/elasticnet"
	"cleo/internal/ml/fasttree"
	"cleo/internal/plan"
)

// The serialized model format (Section 5.1: models are serialized and fed
// back to the optimizer, served from a file or a model service).

type storedNet struct {
	Weights   []float64 `json:"w"`
	Intercept float64   `json:"b"`
	Loss      int       `json:"loss"`
	ClampLo   float64   `json:"lo,omitempty"`
	ClampHi   float64   `json:"hi,omitempty"`
}

type storedFamily struct {
	Family int                           `json:"family"`
	Models map[plan.Signature]*storedNet `json:"models"`
}

type storedCombined struct {
	Base         float64            `json:"base"`
	LearningRate float64            `json:"lr"`
	Loss         int                `json:"loss"`
	Trees        [][]dtree.NodeSpec `json:"trees"`
}

type storedPredictor struct {
	Version  int             `json:"version"`
	Families []*storedFamily `json:"families"`
	Combined *storedCombined `json:"combined,omitempty"`
}

// Save serializes the predictor as JSON to w.
func (pr *Predictor) Save(w io.Writer) error {
	sp := &storedPredictor{Version: 1}
	for fam := 0; fam < NumFamilies; fam++ {
		fm := pr.Families[fam]
		if fm == nil {
			sp.Families = append(sp.Families, nil)
			continue
		}
		sf := &storedFamily{Family: fam, Models: map[plan.Signature]*storedNet{}}
		for sig, m := range fm.Models {
			sf.Models[sig] = &storedNet{Weights: m.Weights, Intercept: m.Intercept, Loss: int(m.Loss), ClampLo: m.ClampLo, ClampHi: m.ClampHi}
		}
		sp.Families = append(sp.Families, sf)
	}
	if pr.Combined != nil {
		sc := &storedCombined{
			Base:         pr.Combined.Base,
			LearningRate: pr.Combined.LearningRate,
			Loss:         int(pr.Combined.Loss),
		}
		for _, t := range pr.Combined.Trees {
			sc.Trees = append(sc.Trees, t.Export())
		}
		sp.Combined = sc
	}
	return json.NewEncoder(w).Encode(sp)
}

// Load deserializes a predictor previously written by Save.
func Load(r io.Reader) (*Predictor, error) {
	var sp storedPredictor
	if err := json.NewDecoder(r).Decode(&sp); err != nil {
		return nil, fmt.Errorf("learned: decode model store: %w", err)
	}
	if sp.Version != 1 {
		return nil, fmt.Errorf("learned: unsupported model store version %d", sp.Version)
	}
	pr := &Predictor{}
	for _, sf := range sp.Families {
		if sf == nil {
			continue
		}
		if sf.Family < 0 || sf.Family >= NumFamilies {
			return nil, fmt.Errorf("learned: bad family id %d", sf.Family)
		}
		fm := &FamilyModels{Family: Family(sf.Family), Models: map[plan.Signature]*elasticnet.Model{}}
		for sig, sn := range sf.Models {
			fm.Models[sig] = &elasticnet.Model{Weights: sn.Weights, Intercept: sn.Intercept, Loss: ml.Loss(sn.Loss), ClampLo: sn.ClampLo, ClampHi: sn.ClampHi}
		}
		pr.Families[sf.Family] = fm
	}
	if sp.Combined != nil {
		m := &fasttree.Model{
			Base:         sp.Combined.Base,
			LearningRate: sp.Combined.LearningRate,
			Loss:         ml.Loss(sp.Combined.Loss),
		}
		for _, t := range sp.Combined.Trees {
			m.Trees = append(m.Trees, dtree.FromSpec(t, m.Loss))
		}
		pr.Combined = m
	}
	return pr, nil
}

// SaveFile writes the model store to path.
func (pr *Predictor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pr.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model store from path.
func LoadFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
