package learned

import (
	"sync"
	"testing"

	"cleo/internal/plan"
)

// TestCacheCostsIdentical verifies the core cache contract: a cached
// coster returns exactly the costs an uncached one computes, node for
// node, across params.
func TestCacheCostsIdentical(t *testing.T) {
	c, _ := trainedCosterNode(t)
	col := collect(t, 2)
	cache := NewPredictionCache()
	for _, param := range []float64{1, 2, 3, 5} {
		plain := &Coster{Predictor: c.Predictor, Param: param}
		cached := &Coster{Predictor: c.Predictor, Param: param, Cache: cache}
		for pass := 0; pass < 2; pass++ { // pass 1 hits pass 0's entries
			for _, job := range col.Jobs {
				job.Plan.Walk(func(n *plan.Physical) {
					want := plain.OperatorCost(n)
					got := cached.OperatorCost(n)
					if got != want {
						t.Fatalf("param %v pass %d: cached %v != uncached %v for %s",
							param, pass, got, want, n.Op)
					}
				})
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cache stats = %+v, want activity", st)
	}
	// Every second-pass lookup must hit: misses == distinct entries-ish,
	// and hits at least equal misses (4 params × 2 passes).
	if st.Hits < st.Misses {
		t.Fatalf("hits %d < misses %d; repeated pricing should hit", st.Hits, st.Misses)
	}
	if r := st.HitRatio(); r <= 0 || r >= 1 {
		t.Fatalf("hit ratio = %v", r)
	}
}

// TestCacheKeySensitivity verifies that cost inputs outside the subgraph
// signature — partitions, statistics, param bucket — key distinct entries.
func TestCacheKeySensitivity(t *testing.T) {
	cache := NewPredictionCache()
	n := plan.NewPhysical(plan.PFilter, plan.NewPhysical(plan.PExtract))
	n.Pred = "p"
	n.Partitions = 8
	n.Stats = plan.NodeStats{EstCard: 100, RowLength: 10}

	base := cache.keyFor(n, 1)
	if k := cache.keyFor(n, 1); k != base {
		t.Fatal("key not deterministic")
	}
	if k := cache.keyFor(n, 2); k == base {
		t.Fatal("param change did not change key")
	}
	n.Partitions = 16
	if k := cache.keyFor(n, 1); k == base {
		t.Fatal("partition change did not change key")
	}
	n.Partitions = 8
	n.Stats.EstCard = 200
	if k := cache.keyFor(n, 1); k == base {
		t.Fatal("cardinality change did not change key")
	}
	n.Stats.EstCard = 100
	n.Pred = "q" // changes the subgraph signature
	if k := cache.keyFor(n, 1); k == base {
		t.Fatal("predicate change did not change key")
	}
}

func TestParamBucket(t *testing.T) {
	if ParamBucket(1) == ParamBucket(2) {
		t.Fatal("integral params must bucket apart")
	}
	if ParamBucket(1) != ParamBucket(1.01) {
		t.Fatal("near-identical params should share a bucket")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines (run under
// -race).
func TestCacheConcurrent(t *testing.T) {
	c, n := trainedCosterNode(t)
	cache := NewPredictionCache()
	want := c.OperatorCost(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc := &Coster{Predictor: c.Predictor, Param: c.Param, Cache: cache}
			for i := 0; i < 200; i++ {
				if got := cc.OperatorCost(n); got != want {
					t.Errorf("concurrent cached cost %v != %v", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheShardReset verifies the shard entry budget triggers a reset
// instead of unbounded growth.
func TestCacheShardReset(t *testing.T) {
	cache := NewPredictionCache()
	n := plan.NewPhysical(plan.PFilter)
	n.Partitions = 1
	for i := 0; i < cacheShardCount*cacheShardLimit*2; i++ {
		n.Stats.EstCard = float64(i)
		cache.store(cache.keyFor(n, 1), 1)
	}
	if got := cache.Stats().Entries; got > cacheShardCount*cacheShardLimit {
		t.Fatalf("entries = %d, want ≤ %d", got, cacheShardCount*cacheShardLimit)
	}
}
