package learned

import (
	"math"

	"cleo/internal/plan"
)

// AnalyticalChooser implements the paper's analytical partition-exploration
// strategy (Section 5.3). Instead of probing the cost model at many
// candidate partition counts, it models each operator's cost as
//
//	cost(P) ≈ θP/P + θC·P + θ0
//
// — the only terms through which P enters the feature set — recovers the
// coefficients from a handful of model probes per operator (5, matching
// the paper's 5·m look-up bound), sums them across the stage's operators,
// and solves for the optimum in closed form:
//
//	ΣθP > 0, ΣθC < 0 → use the maximum partition count,
//	ΣθP < 0, ΣθC > 0 → use the minimum,
//	otherwise        → P* = sqrt(ΣθP / ΣθC).
type AnalyticalChooser struct {
	// Cost prices one operator (typically the CLEO Coster).
	Cost interface {
		OperatorCost(n *plan.Physical) float64
	}
	// Param is the job parameter the coster prices with; it is part of
	// the stage-fit memo key (costs depend on it through the PM feature).
	Param float64
	// Fits, when non-nil, memoizes the per-stage probe-fit coefficient
	// sums by stage signature, so recurring stages answer partition
	// exploration without re-extracting features or touching the models.
	// Pair it with the predictor that prices Cost — the serving layer
	// passes each model version's own PredictionCache, which makes a
	// version hot-swap invalidate the memo automatically.
	Fits *PredictionCache
}

// numProbes is the per-operator probe budget (5, matching the paper's
// 5·m look-up bound for the analytical strategy).
const numProbes = 5

// probePoints spreads the probes geometrically from 1 to the partition cap
// so the fit sees both the parallelism and the overhead regime.
func probePoints(maxPartitions int) [numProbes]float64 {
	if maxPartitions < numProbes {
		maxPartitions = numProbes
	}
	var out [numProbes]float64
	for i := 0; i < numProbes; i++ {
		out[i] = math.Round(math.Pow(float64(maxPartitions), float64(i)/(numProbes-1)))
	}
	return out
}

// ChooseStagePartitions implements cascades.PartitionChooser.
func (a *AnalyticalChooser) ChooseStagePartitions(ops []*plan.Physical, maxPartitions int) (int, int) {
	if len(ops) == 0 {
		return 1, 0
	}
	// Recurring stages answer from the memoized fit: zero probes, zero
	// feature extraction. The key pins everything the fit below reads, so
	// the cached sums are bit-identical to recomputing them.
	var fitKey uint64
	if a.Fits != nil {
		fitKey = a.Fits.stageFitKey(ops, a.Param, maxPartitions)
		if sums, ok := a.Fits.fitLookup(fitKey); ok {
			return a.reduce(ops, sums, maxPartitions, 0)
		}
	}
	var sumP, sumC, scale, lookups float64
	if buf, ok := a.probeBatch(ops, maxPartitions); ok {
		points := probePoints(maxPartitions)
		for i := range ops {
			tp, tc, mean := fitProbes(points, buf.costs[i*numProbes:(i+1)*numProbes], maxPartitions)
			sumP += tp
			sumC += tc
			scale += mean
			lookups += numProbes
		}
		variantPool.Put(buf)
	} else {
		for _, op := range ops {
			tp, tc, mean := a.fitOperator(op, maxPartitions)
			sumP += tp
			sumC += tc
			scale += mean
			lookups += numProbes
		}
	}
	sums := fitSums{thetaP: sumP, thetaC: sumC, scale: scale}
	if a.Fits != nil {
		a.Fits.fitStore(fitKey, sums)
	}
	return a.reduce(ops, sums, maxPartitions, int(lookups))
}

// reduce turns the (possibly memoized) stage coefficient sums into the
// chosen partition count — identical arithmetic whether the sums were
// just fitted or answered from the memo.
func (a *AnalyticalChooser) reduce(ops []*plan.Physical, sums fitSums, maxPartitions, lookups int) (int, int) {
	sumP, sumC, scale := sums.thetaP, sums.thetaC, sums.scale
	// Coefficients whose contribution is negligible at a mid-range count
	// are noise from the least-squares fit; zero them so flat curves hit
	// the degenerate branch instead of an arbitrary extreme.
	mid := math.Sqrt(float64(maxPartitions))
	eps := 1e-6 * (scale + 1e-12)
	if math.Abs(sumP)/mid < eps {
		sumP = 0
	}
	if math.Abs(sumC)*mid < eps {
		sumC = 0
	}

	var best float64
	switch {
	case sumP > 0 && sumC <= 0:
		best = float64(maxPartitions)
	case sumP <= 0 && sumC > 0:
		best = 1
	case sumP <= 0 && sumC <= 0:
		// Degenerate: cost insensitive to P; keep the current count.
		return clampInt(ops[0].Partitions, 1, maxPartitions), lookups
	default:
		best = math.Sqrt(sumP / sumC)
	}
	return clampInt(int(math.Round(best)), 1, maxPartitions), lookups
}

// individualCoster is implemented by cost models that can price an
// operator from the individual (per-signature) models; partition
// exploration prefers those smooth curves over the combined ensemble.
type individualCoster interface {
	IndividualCost(n *plan.Physical) float64
}

// batchPricer and individualBatchPricer are the batch upgrades of the two
// pricing interfaces (structurally matched by the learned Coster's
// CostBatch / IndividualCostBatch methods).
type batchPricer interface {
	CostBatch(ops []*plan.Physical, out []float64)
}

type individualBatchPricer interface {
	IndividualCostBatch(ops []*plan.Physical, out []float64)
}

// probeBatch materializes every operator's probe-point variants (op-major,
// so consecutive variants of one operator share subtree work inside the
// batch coster) into a pooled buffer and prices all ops × numProbes of
// them in one call. The caller returns the buffer to variantPool. It
// returns false when the coster offers no batch path for the pricing mode
// the scalar path would use, so behaviour never silently changes.
func (a *AnalyticalChooser) probeBatch(ops []*plan.Physical, maxPartitions int) (*variantBuf, bool) {
	var price func(ops []*plan.Physical, out []float64)
	if _, isIndividual := a.Cost.(individualCoster); isIndividual {
		ib, ok := a.Cost.(individualBatchPricer)
		if !ok {
			return nil, false
		}
		price = ib.IndividualCostBatch
	} else if b, ok := a.Cost.(batchPricer); ok {
		price = b.CostBatch
	} else {
		return nil, false
	}
	points := probePoints(maxPartitions)
	buf := variantPool.Get().(*variantBuf)
	buf.resize(len(ops) * numProbes)
	idx := 0
	for _, op := range ops {
		for _, p := range points {
			if int(p) > maxPartitions {
				p = float64(maxPartitions)
			}
			buf.variants[idx] = *op
			buf.variants[idx].Partitions = int(p)
			buf.refs[idx] = &buf.variants[idx]
			idx++
		}
	}
	price(buf.refs, buf.costs)
	return buf, true
}

// fitOperator least-squares fits cost(P) = θP/P + θC·P + θ0 through the
// probe points for one operator, also reporting the mean probed cost for
// noise thresholds.
func (a *AnalyticalChooser) fitOperator(op *plan.Physical, maxPartitions int) (thetaP, thetaC, meanCost float64) {
	saved := op.Partitions
	defer func() { op.Partitions = saved }()
	price := a.Cost.OperatorCost
	if ic, ok := a.Cost.(individualCoster); ok {
		price = ic.IndividualCost
	}
	points := probePoints(maxPartitions)
	var costs [numProbes]float64
	for k, p := range points {
		if int(p) > maxPartitions {
			p = float64(maxPartitions)
		}
		op.Partitions = int(p)
		costs[k] = price(op)
	}
	return fitProbes(points, costs[:], maxPartitions)
}

// fitProbes solves the 3x3 normal equations of the 1/P, P, 1 design
// through the probe points and their costs.
func fitProbes(points [numProbes]float64, costs []float64, maxPartitions int) (thetaP, thetaC, meanCost float64) {
	var m [3][3]float64
	var rhs [3]float64
	for k, p := range points {
		if int(p) > maxPartitions {
			p = float64(maxPartitions)
		}
		cost := costs[k]
		meanCost += cost / numProbes
		row := [3]float64{1 / p, p, 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += row[i] * row[j]
			}
			rhs[i] += row[i] * cost
		}
	}
	sol, ok := solve3(m, rhs)
	if !ok {
		return 0, 0, meanCost
	}
	return sol[0], sol[1], meanCost
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, b [3]float64) ([3]float64, bool) {
	a := m
	x := b
	for col := 0; col < 3; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return [3]float64{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		x[col], x[piv] = x[piv], x[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	var out [3]float64
	for r := 2; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < 3; c++ {
			s -= a[r][c] * out[c]
		}
		out[r] = s / a[r][r]
	}
	return out, true
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
