// Package learned implements CLEO's learned cost models — the paper's
// primary contribution: feature extraction over compile-time statistics
// (Tables 2 and 3), four mutually-enhancing model families keyed by
// operator signatures (operator-subgraph, operator-subgraphApprox,
// operator-input and operator; Sections 3–4), a FastTree meta-ensemble
// combining them (Section 4.3), a parallel trainer and model store
// (Section 5.1), and the analytical partition-exploration strategy
// (Section 5.3).
package learned

import (
	"hash/fnv"
	"math"

	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

// OpFeatures is the raw per-operator statistics vectorized for the models:
// the paper's Table 2 basic features.
type OpFeatures struct {
	I      float64 // input cardinality from children
	B      float64 // base cardinality at the leaves
	C      float64 // output cardinality
	L      float64 // average row length (bytes)
	P      float64 // partition count
	Inputs string  // normalized input templates (IN)
	Param  float64 // job parameters (PM)
	CL     float64 // number of logical operators in the subgraph
	D      float64 // depth of the operator in the subgraph
}

// FromRecord extracts features from a telemetry record.
func FromRecord(r *telemetry.Record) OpFeatures {
	return OpFeatures{
		I:      r.InCard,
		B:      r.BaseCard,
		C:      r.OutCard,
		L:      r.RowLength,
		P:      float64(r.Partitions),
		Inputs: r.Inputs,
		Param:  r.Param,
		CL:     float64(r.NumLogical),
		D:      float64(r.Depth),
	}
}

// FromNode extracts features from a plan node during optimization; param is
// the job's parameter (the paper's PM), supplied by the caller.
func FromNode(n *plan.Physical, param float64) OpFeatures {
	in := n.Stats.EstCard
	if len(n.Children) > 0 {
		in = n.InputCardinality(true)
	}
	counts := n.LogicalOpCounts()
	cl := 0
	for _, c := range counts {
		cl += c
	}
	templates := ""
	for i, t := range n.InputTemplates() {
		if i > 0 {
			templates += "+"
		}
		templates += t
	}
	return OpFeatures{
		I:      in,
		B:      n.BaseCardinality(),
		C:      n.Stats.EstCard,
		L:      n.Stats.RowLength,
		P:      float64(n.Partitions),
		Inputs: templates,
		Param:  param,
		CL:     float64(cl),
		D:      float64(n.Depth()),
	}
}

// baseFeatureNames lists the paper's selected basic + derived features in
// Figure 5's order.
var baseFeatureNames = []string{
	"C", "sqrt(C)", "log(B)*C", "B*log(C)", "B", "I*C", "I*log(C)", "I/P",
	"sqrt(I)", "L*log(B)", "B*C", "C/P", "sqrt(I)/P", "L", "L*log(I)",
	"L*log(C)", "I*L/P", "L*B", "C*L/P", "L*I", "sqrt(C)/P", "P",
	"log(I)/P", "I", "IN", "log(B)*log(C)", "log(I)*log(C)", "PM",
}

// extendedFeatureNames appends the two context features used by the more
// general models (Section 4.2): logical-operator count and depth.
var extendedFeatureNames = append(append([]string(nil), baseFeatureNames...), "CL", "D")

// FeatureNames returns the feature labels. Extended adds CL and D.
func FeatureNames(extended bool) []string {
	if extended {
		return extendedFeatureNames
	}
	return baseFeatureNames
}

// NumFeatures returns the vector length.
func NumFeatures(extended bool) int { return len(FeatureNames(extended)) }

// hashIN maps the normalized-inputs string to a stable numeric encoding in
// [0, 1).
func hashIN(s string) float64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return float64(h.Sum64()%1_000_000_007) / 1_000_000_007.0
}

// Vector renders the features as the model input vector. Cardinality
// magnitudes span many decades, so raw values, square roots, logarithms and
// products all appear — the transformations the paper found impossible to
// hand-tune into the default model (Section 6.4).
func (f OpFeatures) Vector(extended bool) []float64 {
	p := f.P
	if p < 1 {
		p = 1
	}
	logI := math.Log1p(f.I)
	logB := math.Log1p(f.B)
	logC := math.Log1p(f.C)
	v := []float64{
		f.C,
		math.Sqrt(f.C),
		logB * f.C,
		f.B * logC,
		f.B,
		f.I * f.C,
		f.I * logC,
		f.I / p,
		math.Sqrt(f.I),
		f.L * logB,
		f.B * f.C,
		f.C / p,
		math.Sqrt(f.I) / p,
		f.L,
		f.L * logI,
		f.L * logC,
		f.I * f.L / p,
		f.L * f.B,
		f.C * f.L / p,
		f.L * f.I,
		math.Sqrt(f.C) / p,
		p,
		logI / p,
		f.I,
		hashIN(f.Inputs),
		logB * logC,
		logI * logC,
		f.Param,
	}
	if extended {
		v = append(v, f.CL, f.D)
	}
	return v
}
