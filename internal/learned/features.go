// Package learned implements CLEO's learned cost models — the paper's
// primary contribution: feature extraction over compile-time statistics
// (Tables 2 and 3), four mutually-enhancing model families keyed by
// operator signatures (operator-subgraph, operator-subgraphApprox,
// operator-input and operator; Sections 3–4), a FastTree meta-ensemble
// combining them (Section 4.3), a parallel trainer and model store
// (Section 5.1), and the analytical partition-exploration strategy
// (Section 5.3).
package learned

import (
	"hash/fnv"
	"math"

	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

// OpFeatures is the raw per-operator statistics vectorized for the models:
// the paper's Table 2 basic features.
type OpFeatures struct {
	I      float64 // input cardinality from children
	B      float64 // base cardinality at the leaves
	C      float64 // output cardinality
	L      float64 // average row length (bytes)
	P      float64 // partition count
	Inputs string  // normalized input templates (IN)
	Param  float64 // job parameters (PM)
	CL     float64 // number of logical operators in the subgraph
	D      float64 // depth of the operator in the subgraph
}

// FromRecord extracts features from a telemetry record.
func FromRecord(r *telemetry.Record) OpFeatures {
	return OpFeatures{
		I:      r.InCard,
		B:      r.BaseCard,
		C:      r.OutCard,
		L:      r.RowLength,
		P:      float64(r.Partitions),
		Inputs: r.Inputs,
		Param:  r.Param,
		CL:     float64(r.NumLogical),
		D:      float64(r.Depth),
	}
}

// FromNode extracts features from a plan node during optimization; param is
// the job's parameter (the paper's PM), supplied by the caller.
func FromNode(n *plan.Physical, param float64) OpFeatures {
	in := n.Stats.EstCard
	if len(n.Children) > 0 {
		in = n.InputCardinality(true)
	}
	counts := n.LogicalOpCounts()
	cl := 0
	for _, c := range counts {
		cl += c
	}
	templates := ""
	for i, t := range n.InputTemplates() {
		if i > 0 {
			templates += "+"
		}
		templates += t
	}
	return OpFeatures{
		I:      in,
		B:      n.BaseCardinality(),
		C:      n.Stats.EstCard,
		L:      n.Stats.RowLength,
		P:      float64(n.Partitions),
		Inputs: templates,
		Param:  param,
		CL:     float64(cl),
		D:      float64(n.Depth()),
	}
}

// baseFeatureNames lists the paper's selected basic + derived features in
// Figure 5's order.
var baseFeatureNames = []string{
	"C", "sqrt(C)", "log(B)*C", "B*log(C)", "B", "I*C", "I*log(C)", "I/P",
	"sqrt(I)", "L*log(B)", "B*C", "C/P", "sqrt(I)/P", "L", "L*log(I)",
	"L*log(C)", "I*L/P", "L*B", "C*L/P", "L*I", "sqrt(C)/P", "P",
	"log(I)/P", "I", "IN", "log(B)*log(C)", "log(I)*log(C)", "PM",
}

// extendedFeatureNames appends the two context features used by the more
// general models (Section 4.2): logical-operator count and depth.
var extendedFeatureNames = append(append([]string(nil), baseFeatureNames...), "CL", "D")

// FeatureNames returns the feature labels. Extended adds CL and D.
func FeatureNames(extended bool) []string {
	if extended {
		return extendedFeatureNames
	}
	return baseFeatureNames
}

// NumFeatures returns the vector length.
func NumFeatures(extended bool) int { return len(FeatureNames(extended)) }

// hashIN maps the normalized-inputs string to a stable numeric encoding in
// [0, 1).
func hashIN(s string) float64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return float64(h.Sum64()%1_000_000_007) / 1_000_000_007.0
}

// Vector renders the features as the model input vector. Cardinality
// magnitudes span many decades, so raw values, square roots, logarithms and
// products all appear — the transformations the paper found impossible to
// hand-tune into the default model (Section 6.4).
func (f OpFeatures) Vector(extended bool) []float64 {
	v := make([]float64, NumFeatures(extended))
	f.Fill(v, extended)
	return v
}

// Fill writes the feature vector into dst without allocating; dst must
// have length NumFeatures(extended). Vector is a thin wrapper over it; the
// batch costing path fills whole feature-matrix rows through it instead.
//
// The base features are a prefix of the extended ones, so one extended row
// truncates to the base vector — the batch path fills every row extended
// and hands family models the prefix they expect.
func (f *OpFeatures) Fill(dst []float64, extended bool) {
	p := f.P
	if p < 1 {
		p = 1
	}
	logI := math.Log1p(f.I)
	logB := math.Log1p(f.B)
	logC := math.Log1p(f.C)
	dst[0] = f.C
	dst[1] = math.Sqrt(f.C)
	dst[2] = logB * f.C
	dst[3] = f.B * logC
	dst[4] = f.B
	dst[5] = f.I * f.C
	dst[6] = f.I * logC
	dst[7] = f.I / p
	dst[8] = math.Sqrt(f.I)
	dst[9] = f.L * logB
	dst[10] = f.B * f.C
	dst[11] = f.C / p
	dst[12] = math.Sqrt(f.I) / p
	dst[13] = f.L
	dst[14] = f.L * logI
	dst[15] = f.L * logC
	dst[16] = f.I * f.L / p
	dst[17] = f.L * f.B
	dst[18] = f.C * f.L / p
	dst[19] = f.L * f.I
	dst[20] = math.Sqrt(f.C) / p
	dst[21] = p
	dst[22] = logI / p
	dst[23] = f.I
	dst[24] = hashIN(f.Inputs)
	dst[25] = logB * logC
	dst[26] = logI * logC
	dst[27] = f.Param
	if extended {
		dst[28] = f.CL
		dst[29] = f.D
	}
}
