package learned

import (
	"bytes"
	"testing"

	"cleo/internal/costmodel"
	"cleo/internal/ml"
	"cleo/internal/plan"
	"cleo/internal/stats"
	"cleo/internal/telemetry"
	"cleo/internal/workload"
)

// collect runs a small trace and returns its telemetry.
func collect(t *testing.T, days int) *telemetry.Collected {
	t.Helper()
	tr := workload.Generate(workload.Config{
		Clusters:                   1,
		Days:                       days,
		TemplatesPerCluster:        10,
		InstancesPerTemplatePerDay: 3,
		AdHocFraction:              0.1,
		Seed:                       99,
	})
	r := &telemetry.Runner{Trace: tr, Cost: costmodel.Default{}, Mode: stats.Estimated, Jitter: true}
	col, err := r.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func splitByDay(recs []telemetry.Record, trainDays int) (train, test []telemetry.Record) {
	for _, r := range recs {
		if r.Day < trainDays {
			train = append(train, r)
		} else {
			test = append(test, r)
		}
	}
	return train, test
}

func TestFeatureVectorShapes(t *testing.T) {
	f := OpFeatures{I: 100, B: 1000, C: 10, L: 50, P: 4, Inputs: "a+b", Param: 3, CL: 5, D: 2}
	if got := len(f.Vector(false)); got != NumFeatures(false) {
		t.Fatalf("base vector len = %d, want %d", got, NumFeatures(false))
	}
	if got := len(f.Vector(true)); got != NumFeatures(true) {
		t.Fatalf("extended vector len = %d, want %d", got, NumFeatures(true))
	}
	if NumFeatures(true) != NumFeatures(false)+2 {
		t.Fatal("extended should add CL and D")
	}
	if len(FeatureNames(false)) != NumFeatures(false) {
		t.Fatal("names/vector mismatch")
	}
	// Zero partitions must not divide by zero.
	f.P = 0
	for _, v := range f.Vector(true) {
		if v != v { // NaN check
			t.Fatal("NaN in feature vector")
		}
	}
}

func TestTrainFamilyCoverageOrdering(t *testing.T) {
	col := collect(t, 3)
	train, test := splitByDay(col.Records, 2)

	cfg := DefaultFamilyConfig()
	sub := TrainFamily(FamilySubgraph, train, cfg)
	op := TrainFamily(FamilyOperator, train, cfg)
	inp := TrainFamily(FamilyInput, train, cfg)

	cSub := sub.Coverage(test)
	cInp := inp.Coverage(test)
	cOp := op.Coverage(test)
	// The paper's coverage ladder: subgraph <= input <= operator ≈ 1
	// (an operator kind never executed in training stays uncovered).
	if cOp < 0.95 {
		t.Fatalf("operator coverage = %v, want ~1", cOp)
	}
	if cInp > cOp+1e-9 {
		t.Fatalf("input coverage %v should not exceed operator coverage %v", cInp, cOp)
	}
	if cSub > cInp+1e-9 {
		t.Fatalf("subgraph coverage %v should not exceed input coverage %v", cSub, cInp)
	}
	if cSub <= 0.2 {
		t.Fatalf("subgraph coverage = %v, too low for a recurring workload", cSub)
	}
}

// TestOperatorFamilyTrainsRareGroups pins the coverage-fallback exception
// in TrainFamily: the operator family fits groups as small as two records
// (it exists to guarantee coverage when the specialized families abstain),
// while those specialized families keep the paper's MinSamples threshold
// and leave rare groups uncovered.
func TestOperatorFamilyTrainsRareGroups(t *testing.T) {
	mk := func(sig plan.Signature, n int) []telemetry.Record {
		recs := make([]telemetry.Record, n)
		for i := range recs {
			recs[i] = telemetry.Record{
				Sigs:          plan.Signatures{Subgraph: sig, Approx: sig, Input: sig, Operator: sig},
				InCard:        float64(100 * (i + 1)),
				BaseCard:      float64(200 * (i + 1)),
				OutCard:       float64(50 * (i + 1)),
				RowLength:     8,
				Partitions:    1 + i,
				ActualLatency: 0.01 * float64(i+1),
			}
		}
		return recs
	}
	common, rare := plan.Signature(1), plan.Signature(2)
	recs := append(mk(common, 6), mk(rare, 3)...)

	cfg := DefaultFamilyConfig() // MinSamples 5
	op := TrainFamily(FamilyOperator, recs, cfg)
	if _, ok := op.Models[rare]; !ok {
		t.Fatal("operator family skipped a 3-record group; the coverage fallback must fit any group of >= 2")
	}
	sub := TrainFamily(FamilySubgraph, recs, cfg)
	if _, ok := sub.Models[rare]; ok {
		t.Fatalf("subgraph family fit a group below MinSamples=%d", cfg.MinSamples)
	}
	if _, ok := sub.Models[common]; !ok {
		t.Fatal("subgraph family skipped a group above MinSamples")
	}
}

func TestLearnedBeatsDefaultModel(t *testing.T) {
	col := collect(t, 4)
	train, test := splitByDay(col.Records, 3)

	pr, err := TrainByDay(train, 2, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	learnedAcc := pr.Evaluate(test)

	var defPred, act []float64
	for _, r := range test {
		defPred = append(defPred, r.DefaultCost)
		act = append(act, r.ActualLatency)
	}
	defAcc := ml.Evaluate(defPred, act)

	if learnedAcc.MedianErr >= defAcc.MedianErr {
		t.Fatalf("learned median err %v should beat default %v", learnedAcc.MedianErr, defAcc.MedianErr)
	}
	if learnedAcc.Pearson <= defAcc.Pearson {
		t.Fatalf("learned pearson %v should beat default %v", learnedAcc.Pearson, defAcc.Pearson)
	}
	if learnedAcc.Pearson < 0.5 {
		t.Fatalf("learned pearson %v too low", learnedAcc.Pearson)
	}
}

func TestSubgraphMoreAccurateThanOperator(t *testing.T) {
	col := collect(t, 3)
	train, test := splitByDay(col.Records, 2)
	cfg := DefaultFamilyConfig()
	sub := TrainFamily(FamilySubgraph, train, cfg)
	op := TrainFamily(FamilyOperator, train, cfg)
	subAcc := sub.Evaluate(test)
	opAcc := op.Evaluate(test)
	if subAcc.MedianErr >= opAcc.MedianErr {
		t.Fatalf("subgraph median err %v should beat operator %v (accuracy-coverage tradeoff)",
			subAcc.MedianErr, opAcc.MedianErr)
	}
}

func TestCombinedCoversEverything(t *testing.T) {
	col := collect(t, 3)
	train, test := splitByDay(col.Records, 2)
	pr, err := TrainSplit(train, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	uncovered := 0
	for i := range test {
		p := pr.PredictRecord(&test[i])
		if p.Covered[FamilyOperator] && p.Cost <= 0 {
			t.Fatalf("combined model returned %v for covered %v", p.Cost, test[i].Op)
		}
		if !p.Covered[FamilyOperator] {
			uncovered++
		}
	}
	if frac := float64(uncovered) / float64(len(test)); frac > 0.05 {
		t.Fatalf("operator family left %.1f%% uncovered", 100*frac)
	}
}

func TestStrawmanPredict(t *testing.T) {
	col := collect(t, 2)
	pr, err := TrainSplit(col.Records, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := pr.StrawmanPredict(&col.Records[0])
	if !ok || got < 0 {
		t.Fatalf("strawman = %v, %v", got, ok)
	}
}

func TestAggregateWeightsNormalized(t *testing.T) {
	col := collect(t, 2)
	fm := TrainFamily(FamilySubgraph, col.Records, DefaultFamilyConfig())
	w := fm.AggregateWeights()
	if len(w) != NumFeatures(false) {
		t.Fatalf("weights len = %d", len(w))
	}
	var sum float64
	for _, v := range w {
		if v < 0 {
			t.Fatal("normalized weights must be non-negative")
		}
		sum += v
	}
	if sum > 1.0001 || sum < 0.99 {
		t.Fatalf("weights sum = %v, want 1", sum)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	col := collect(t, 2)
	pr, err := TrainSplit(col.Records, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumModels() != pr.NumModels() {
		t.Fatalf("model counts: %d vs %d", back.NumModels(), pr.NumModels())
	}
	for i := range col.Records[:50] {
		a := pr.PredictRecord(&col.Records[i]).Cost
		b := back.PredictRecord(&col.Records[i]).Cost
		if a != b {
			t.Fatalf("record %d: %v != %v after round trip", i, a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("{")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, err := Load(bytes.NewBufferString(`{"version":9}`)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultTrainConfig()); err == nil {
		t.Fatal("expected error for empty training data")
	}
}
