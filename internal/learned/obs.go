package learned

import (
	"cleo/internal/obs"
)

// batchTimingMinRows gates batch-latency stamping: batches below this size
// finish in well under a microsecond, where two clock reads would be a
// measurable tax and the histogram's lowest bucket would say nothing.
// Small batches still count toward the batch/row counters (atomic adds),
// so throughput totals stay exact — only the latency sample is gated.
const batchTimingMinRows = 8

// CosterMetrics holds the learned costing layer's instruments. One value
// is shared across every Coster a System builds (Costers themselves are
// rebuilt per optimization).
type CosterMetrics struct {
	// BatchSeconds times CostBatch calls of batchTimingMinRows+ operators
	// (combined-model inference incl. prediction-cache probes).
	BatchSeconds *obs.Histogram
	// ExploreSeconds times IndividualCostBatch calls of the same size —
	// the partition-exploration probe batches.
	ExploreSeconds *obs.Histogram
	// Batches and BatchRows count every batched costing call and the
	// operators priced through them, all sizes.
	Batches   *obs.Counter
	BatchRows *obs.Counter
}

// NewCosterMetrics registers the costing instruments on r (nil r → nil
// metrics, which disables recording).
func NewCosterMetrics(r *obs.Registry) *CosterMetrics {
	if r == nil {
		return nil
	}
	return &CosterMetrics{
		BatchSeconds: r.Histogram("cleo_costing_batch_seconds",
			"Batched combined-model costing latency (batches of 8+ operators; smaller batches are counted, not timed)."),
		ExploreSeconds: r.Histogram("cleo_costing_explore_batch_seconds",
			"Batched individual-model partition-exploration probe latency (batches of 8+ probes)."),
		Batches: r.Counter("cleo_costing_batches_total",
			"Batched costing calls, all batch sizes."),
		BatchRows: r.Counter("cleo_costing_batch_rows_total",
			"Operators priced through batched costing."),
	}
}
