package learned

import (
	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/fasttree"
	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

// MetaFeatureNames labels the combined model's inputs: the individual
// models' predictions (meta-features), their coverage indicators, and the
// extra statistics of Section 4.3 (cardinalities, per-partition
// cardinalities, partition count).
var MetaFeatureNames = []string{
	"pred(Op-Subgraph)", "pred(Op-SubgraphApprox)", "pred(Op-Input)", "pred(Operator)",
	"has(Op-Subgraph)", "has(Op-SubgraphApprox)", "has(Op-Input)",
	"I", "B", "C", "I/P", "B/P", "C/P", "P",
}

// Predictor bundles the four trained families with the combined
// meta-ensemble: the full CLEO model set for one cluster.
type Predictor struct {
	Families [NumFamilies]*FamilyModels
	Combined *fasttree.Model
}

// Prediction is one cost estimate with the per-model breakdown.
type Prediction struct {
	// Cost is the final (combined) prediction, seconds.
	Cost float64
	// ByFamily holds each family's prediction; Covered marks presence.
	ByFamily [NumFamilies]float64
	Covered  [NumFamilies]bool
}

// metaVector builds the combined model's input from family predictions and
// features.
func metaVector(byFamily [NumFamilies]float64, covered [NumFamilies]bool, f OpFeatures) []float64 {
	out := make([]float64, len(MetaFeatureNames))
	fillMetaVector(out, byFamily, covered, &f)
	return out
}

// fillMetaVector writes the combined model's input into dst (length
// len(MetaFeatureNames)) without allocating; the batch path fills whole
// meta-matrix rows through it.
func fillMetaVector(dst []float64, byFamily [NumFamilies]float64, covered [NumFamilies]bool, f *OpFeatures) {
	p := f.P
	if p < 1 {
		p = 1
	}
	ind := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	dst[0] = byFamily[FamilySubgraph]
	dst[1] = byFamily[FamilyApprox]
	dst[2] = byFamily[FamilyInput]
	dst[3] = byFamily[FamilyOperator]
	dst[4] = ind(covered[FamilySubgraph])
	dst[5] = ind(covered[FamilyApprox])
	dst[6] = ind(covered[FamilyInput])
	dst[7] = f.I
	dst[8] = f.B
	dst[9] = f.C
	dst[10] = f.I / p
	dst[11] = f.B / p
	dst[12] = f.C / p
	dst[13] = p
}

// predictFamilies runs the four individual models.
func (pr *Predictor) predictFamilies(sigs plan.Signatures, f OpFeatures) ([NumFamilies]float64, [NumFamilies]bool) {
	var by [NumFamilies]float64
	var cov [NumFamilies]bool
	for fam := 0; fam < NumFamilies; fam++ {
		if pr.Families[fam] == nil {
			continue
		}
		by[fam], cov[fam] = pr.Families[fam].PredictFeatures(sigs, f)
	}
	return by, cov
}

// PredictRecord produces the full prediction for one telemetry record.
func (pr *Predictor) PredictRecord(rec *telemetry.Record) Prediction {
	return pr.predict(rec.Sigs, FromRecord(rec))
}

// PredictNode produces the prediction for a plan node during optimization.
func (pr *Predictor) PredictNode(n *plan.Physical, param float64) Prediction {
	return pr.predict(plan.ComputeSignatures(n), FromNode(n, param))
}

// predict is the scalar prediction: a thin wrapper over the batched
// pipeline with a pooled one-row scratch, so scalar and batched paths
// share one implementation (and scalar calls stop allocating feature and
// meta vectors).
func (pr *Predictor) predict(sigs plan.Signatures, f OpFeatures) Prediction {
	s := scratchPool.Get().(*batchScratch)
	s.resize(1)
	s.sigs[0] = sigs
	s.feats[0] = f
	pr.predictInto(s, s.vals[:1])
	out := Prediction{Cost: s.vals[0], ByFamily: s.by[0], Covered: s.cov[0]}
	scratchPool.Put(s)
	return out
}

// StrawmanPredict implements the paper's strawman baseline (Section 4.3):
// pick the most specialized covered model, ignoring the meta-ensemble.
// Returns false only if no family covers the record.
func (pr *Predictor) StrawmanPredict(rec *telemetry.Record) (float64, bool) {
	by, cov := pr.predictFamilies(rec.Sigs, FromRecord(rec))
	for fam := 0; fam < NumFamilies; fam++ {
		if cov[fam] {
			return by[fam], true
		}
	}
	return 0, false
}

// CombinedConfig controls meta-ensemble training.
type CombinedConfig struct {
	// FastTree is the boosted-tree configuration (paper: 20 trees, depth
	// 5, subsample 0.9, MSLE).
	FastTree fasttree.Config
}

// DefaultCombinedConfig returns the paper's settings.
func DefaultCombinedConfig() CombinedConfig {
	return CombinedConfig{FastTree: fasttree.DefaultConfig()}
}

// TrainCombined fits the meta-ensemble on records *not* used to train the
// individual models (the paper trains individual models on two days and the
// combiner on the next day's predictions).
func (pr *Predictor) TrainCombined(records []telemetry.Record, cfg CombinedConfig) error {
	x := linalg.NewMatrix(len(records), len(MetaFeatureNames))
	y := make([]float64, len(records))
	for i := range records {
		f := FromRecord(&records[i])
		by, cov := pr.predictFamilies(records[i].Sigs, f)
		fillMetaVector(x.Row(i), by, cov, &f)
		y[i] = records[i].ActualLatency
	}
	m, err := fasttree.New(cfg.FastTree).FitModel(x, y)
	if err != nil {
		return err
	}
	pr.Combined = m
	return nil
}

// TrainCombinedWith uses an arbitrary meta-learner instead of FastTree —
// the Table 6 comparison.
func (pr *Predictor) TrainCombinedWith(records []telemetry.Record, trainer ml.Trainer) (ml.Regressor, error) {
	x := linalg.NewMatrix(len(records), len(MetaFeatureNames))
	y := make([]float64, len(records))
	for i := range records {
		f := FromRecord(&records[i])
		by, cov := pr.predictFamilies(records[i].Sigs, f)
		fillMetaVector(x.Row(i), by, cov, &f)
		y[i] = records[i].ActualLatency
	}
	return trainer.Fit(x, y)
}

// EvaluateMeta evaluates an arbitrary meta-learner on records.
func (pr *Predictor) EvaluateMeta(records []telemetry.Record, model ml.Regressor) ml.Accuracy {
	p := make([]float64, len(records))
	a := make([]float64, len(records))
	for i := range records {
		f := FromRecord(&records[i])
		by, cov := pr.predictFamilies(records[i].Sigs, f)
		p[i] = model.Predict(metaVector(by, cov, f))
		a[i] = records[i].ActualLatency
	}
	return ml.Evaluate(p, a)
}

// Evaluate computes combined-model accuracy over records (full coverage)
// through the batched prediction path.
func (pr *Predictor) Evaluate(records []telemetry.Record) ml.Accuracy {
	p := pr.PredictRecords(records)
	a := make([]float64, len(records))
	for i := range records {
		a[i] = records[i].ActualLatency
	}
	return ml.Evaluate(p, a)
}
