package learned

import (
	"sync"
	"time"

	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

// This file is the batched costing hot path: the optimizer's partition
// exploration prices counts × operators candidate variants per stage, and
// pricing them row-at-a-time re-does the expensive per-operator work —
// four signature subtree walks, feature extraction, per-family vector
// allocation — for every variant. The batch path instead extracts features
// into one pooled matrix, computes subtree-dependent work once per
// distinct operator (variants that differ only in partition count reuse
// it), and runs the combined FastTree ensemble tree-major over the whole
// matrix in a single pass.

// The whole pipeline is safe for concurrent callers — the parallel memo
// search prices candidates from many worker goroutines through one shared
// Coster: scratches and variant buffers are pooled (never shared between
// in-flight calls), the prediction cache is sharded, feature fill writes
// only into the caller's scratch rows, and the trained Predictor is
// immutable after construction.

// batchScratch is the reusable working set of one batched pricing call.
// A sync.Pool recycles them so steady-state batches allocate nothing.
type batchScratch struct {
	sigs  []plan.Signatures
	feats []OpFeatures
	x     []float64   // extended feature matrix backing, row-major
	rows  [][]float64 // row views into x
	meta  []float64   // combined-model input matrix backing
	mrows [][]float64 // row views into meta
	by    [][NumFamilies]float64
	cov   [][NumFamilies]bool
	keys  []cacheKey
	subs  []plan.Signature // subgraph signatures of the cache-probe pass
	base  []float64        // base cardinalities of the cache-probe pass
	miss  []int
	vals  []float64
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// variantBuf recycles the probe-variant materialization of one partition
// exploration (the chooser prices ops × probes shallow copies per stage).
type variantBuf struct {
	variants []plan.Physical
	refs     []*plan.Physical
	costs    []float64
}

var variantPool = sync.Pool{New: func() any { return new(variantBuf) }}

func (v *variantBuf) resize(n int) {
	if cap(v.variants) < n {
		v.variants = make([]plan.Physical, n)
		v.refs = make([]*plan.Physical, n)
		v.costs = make([]float64, n)
	}
	v.variants = v.variants[:n]
	v.refs = v.refs[:n]
	v.costs = v.costs[:n]
}

// resize readies the scratch for an n-row batch, growing buffers only when
// a bigger batch than ever before arrives.
func (s *batchScratch) resize(n int) {
	if cap(s.sigs) < n {
		s.sigs = make([]plan.Signatures, n)
		s.feats = make([]OpFeatures, n)
		s.by = make([][NumFamilies]float64, n)
		s.cov = make([][NumFamilies]bool, n)
		s.keys = make([]cacheKey, n)
		s.subs = make([]plan.Signature, n)
		s.base = make([]float64, n)
		s.vals = make([]float64, n)
		s.x = make([]float64, n*NumFeatures(true))
		s.rows = make([][]float64, n)
		s.meta = make([]float64, n*len(MetaFeatureNames))
		s.mrows = make([][]float64, n)
	}
	s.sigs = s.sigs[:n]
	s.feats = s.feats[:n]
	s.by = s.by[:n]
	s.cov = s.cov[:n]
	s.keys = s.keys[:n]
	s.subs = s.subs[:n]
	s.base = s.base[:n]
	s.vals = s.vals[:n]
	s.rows = s.rows[:n]
	s.mrows = s.mrows[:n]
	fw, mw := NumFeatures(true), len(MetaFeatureNames)
	for i := 0; i < n; i++ {
		s.rows[i] = s.x[i*fw : (i+1)*fw]
		s.mrows[i] = s.meta[i*mw : (i+1)*mw]
	}
	s.miss = s.miss[:0]
}

// sameShape reports whether two plan nodes are identical in everything the
// cost features and signatures depend on — i.e. they may differ only in
// partition count (and cost annotations). The partition chooser lays out
// candidate variants of one operator contiguously, so comparing each row
// against its predecessor catches the runs; a matching row reuses the
// predecessor's signatures and subtree-derived features instead of walking
// the subtree again.
func sameShape(a, b *plan.Physical) bool {
	if a.Op != b.Op || a.Stats != b.Stats || a.Table != b.Table ||
		a.InputTemplate != b.InputTemplate || a.Pred != b.Pred ||
		a.UDF != b.UDF || a.N != b.N ||
		len(a.Keys) != len(b.Keys) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	for i := range a.Children {
		if a.Children[i] != b.Children[i] {
			return false
		}
	}
	return true
}

// extract fills sigs and feats for every node, reusing the previous row's
// subtree work across runs of partition-count variants.
func (s *batchScratch) extract(nodes []*plan.Physical, param float64) {
	for i, n := range nodes {
		if i > 0 && sameShape(nodes[i-1], n) {
			s.sigs[i] = s.sigs[i-1]
			s.feats[i] = s.feats[i-1]
			s.feats[i].P = float64(n.Partitions)
			continue
		}
		s.sigs[i] = plan.ComputeSignatures(n)
		s.feats[i] = FromNode(n, param)
	}
}

// predictInto runs the full prediction pipeline over the scratch's first
// len(out) rows: feature matrix fill, per-family individual models, and
// one tree-major pass of the combined ensemble.
func (pr *Predictor) predictInto(s *batchScratch, out []float64) {
	n := len(out)
	rows := s.rows[:n]
	for i := 0; i < n; i++ {
		s.feats[i].Fill(rows[i], true)
	}
	// Individual families: model choice is a per-signature map lookup, but
	// the feature row is shared — the base features are a prefix of the
	// extended row, and the elastic nets only read as many features as
	// they have weights.
	for i := 0; i < n; i++ {
		s.by[i] = [NumFamilies]float64{}
		s.cov[i] = [NumFamilies]bool{}
		for fam := 0; fam < NumFamilies; fam++ {
			fm := pr.Families[fam]
			if fm == nil {
				continue
			}
			m, ok := fm.Models[fm.Family.SignatureOf(s.sigs[i])]
			if !ok {
				continue
			}
			s.by[i][fam] = m.Predict(rows[i])
			s.cov[i][fam] = true
		}
	}
	switch {
	case pr.Combined != nil:
		for i := 0; i < n; i++ {
			fillMetaVector(s.mrows[i], s.by[i], s.cov[i], &s.feats[i])
		}
		pr.Combined.PredictBatch(s.mrows[:n], out)
	default:
		for i := 0; i < n; i++ {
			out[i] = 0
			for fam := 0; fam < NumFamilies; fam++ {
				if s.cov[i][fam] {
					out[i] = s.by[i][fam]
					break
				}
			}
		}
	}
	for i := range out {
		if out[i] < 0 || out[i] != out[i] { // negative or NaN
			out[i] = 0
		}
	}
}

// PredictNodes prices a slice of plan nodes in one batched pass and
// returns the combined-model cost per node. Predictions are identical to
// calling PredictNode per node; the batch path just does the work as
// matrix passes instead of repeated scalar walks.
func (pr *Predictor) PredictNodes(nodes []*plan.Physical, param float64) []float64 {
	out := make([]float64, len(nodes))
	pr.PredictNodesInto(nodes, param, out)
	return out
}

// PredictNodesInto is PredictNodes writing into a caller buffer (len(out)
// must equal len(nodes)).
func (pr *Predictor) PredictNodesInto(nodes []*plan.Physical, param float64, out []float64) {
	if len(nodes) == 0 {
		return
	}
	s := scratchPool.Get().(*batchScratch)
	s.resize(len(nodes))
	s.extract(nodes, param)
	pr.predictInto(s, out[:len(nodes)])
	scratchPool.Put(s)
}

// PredictRecords prices telemetry records in one batched pass — the
// serving layer's per-publish accuracy snapshot goes through here instead
// of record-at-a-time scalar walks.
func (pr *Predictor) PredictRecords(records []telemetry.Record) []float64 {
	out := make([]float64, len(records))
	if len(records) == 0 {
		return out
	}
	s := scratchPool.Get().(*batchScratch)
	s.resize(len(records))
	for i := range records {
		s.sigs[i] = records[i].Sigs
		s.feats[i] = FromRecord(&records[i])
	}
	pr.predictInto(s, out)
	scratchPool.Put(s)
	return out
}

// CostBatch implements the optimizer's batch-costing upgrade
// (cascades.BatchCoster): it prices a whole slice of operators in one
// call, consulting the prediction cache per row and filling every miss
// from a single batched model inference. Costs are identical to calling
// OperatorCost per operator.
//
// With a cache, the probe pass extracts only what cache keys need — the
// subgraph signature and base cardinality, run-shared across partition
// variants — so a fully warm batch (the recurring-job serving hot path)
// never pays for the remaining signatures or features; those are
// extracted only for the miss rows.
func (c *Coster) CostBatch(ops []*plan.Physical, out []float64) {
	if len(ops) == 0 {
		return
	}
	n := len(ops)
	if m := c.Metrics; m != nil {
		m.Batches.Inc()
		m.BatchRows.Add(uint64(n))
		if n >= batchTimingMinRows {
			t0 := time.Now()
			defer func() { m.BatchSeconds.Record(time.Since(t0)) }()
		}
	}
	out = out[:n]
	s := scratchPool.Get().(*batchScratch)
	defer scratchPool.Put(s)
	s.resize(n)

	miss := s.miss
	if c.Cache == nil {
		s.extract(ops, c.Param)
		for i := range ops {
			miss = append(miss, i)
		}
	} else {
		for i, op := range ops {
			if i > 0 && sameShape(ops[i-1], op) {
				s.subs[i] = s.subs[i-1]
				s.base[i] = s.base[i-1]
			} else {
				s.subs[i] = plan.SubgraphSignature(op)
				s.base[i] = op.BaseCardinality()
			}
			s.keys[i] = c.Cache.keyForSig(s.subs[i], op, c.Param, s.base[i])
			if v, ok := c.Cache.lookup(s.keys[i]); ok {
				out[i] = v
			} else {
				miss = append(miss, i)
			}
		}
		// Full extraction for the miss rows only, compacted to the front
		// of the scratch, still sharing subtree work across runs of
		// partition-count variants (miss order preserves adjacency).
		for k, i := range miss {
			if k > 0 && sameShape(ops[miss[k-1]], ops[i]) {
				s.sigs[k] = s.sigs[k-1]
				s.feats[k] = s.feats[k-1]
				s.feats[k].P = float64(ops[i].Partitions)
				continue
			}
			s.sigs[k] = plan.SignaturesWithSubgraph(ops[i], s.subs[i])
			s.feats[k] = FromNode(ops[i], c.Param)
		}
	}
	s.miss = miss // keep the grown capacity with the pooled scratch
	if len(miss) == 0 {
		return
	}
	vals := s.vals[:len(miss)]
	c.Predictor.predictInto(s, vals)
	for k, i := range miss {
		v := vals[k]
		if v <= 0 && c.Fallback != nil {
			v = c.Fallback.OperatorCost(ops[i])
		}
		out[i] = v
		if c.Cache != nil {
			c.Cache.store(s.keys[i], v)
		}
	}
	if c.Cache != nil {
		c.Cache.batchFills.Add(uint64(len(miss)))
	}
}

// IndividualCostBatch is the batched IndividualCost: partition exploration
// probes every stage operator at several candidate counts, and the probes
// of one operator share signatures and all features but the count. Costs
// are identical to calling IndividualCost per operator.
func (c *Coster) IndividualCostBatch(ops []*plan.Physical, out []float64) {
	if len(ops) == 0 {
		return
	}
	n := len(ops)
	if m := c.Metrics; m != nil {
		m.Batches.Inc()
		m.BatchRows.Add(uint64(n))
		if n >= batchTimingMinRows {
			t0 := time.Now()
			defer func() { m.ExploreSeconds.Record(time.Since(t0)) }()
		}
	}
	out = out[:n]
	s := scratchPool.Get().(*batchScratch)
	defer scratchPool.Put(s)
	s.resize(n)
	s.extract(ops, c.Param)
	rows := s.rows[:n]
	for i := 0; i < n; i++ {
		s.feats[i].Fill(rows[i], true)
	}
	for i, op := range ops {
		out[i] = 0
		covered := false
		for fam := 0; fam < NumFamilies; fam++ {
			fm := c.Predictor.Families[fam]
			if fm == nil {
				continue
			}
			m, ok := fm.Models[fm.Family.SignatureOf(s.sigs[i])]
			if !ok {
				continue
			}
			if v := m.Predict(rows[i]); v > 0 {
				out[i] = v
				covered = true
				break
			}
		}
		if !covered && c.Fallback != nil {
			out[i] = c.Fallback.OperatorCost(op)
		}
	}
}
