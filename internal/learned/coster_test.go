package learned

import (
	"testing"

	"cleo/internal/plan"
)

// fixedFallback prices every operator at a constant.
type fixedFallback struct{ v float64 }

func (f fixedFallback) OperatorCost(*plan.Physical) float64 { return f.v }

func trainedCosterNode(t *testing.T) (*Coster, *plan.Physical) {
	t.Helper()
	col := collect(t, 2)
	pr, err := TrainSplit(col.Records, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A plan node resembling the trained distribution.
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.InputTemplate = "c0in1_"
	leaf.Partitions = 8
	leaf.Stats = plan.NodeStats{EstCard: 1e6, ActCard: 1e6, RowLength: 100}
	f := plan.NewPhysical(plan.PFilter, leaf)
	f.Pred = "p"
	f.Partitions = 8
	f.Stats = plan.NodeStats{EstCard: 5e5, ActCard: 5e5, RowLength: 100}
	return &Coster{Predictor: pr, Param: 3}, f
}

func TestCosterPositiveCost(t *testing.T) {
	c, n := trainedCosterNode(t)
	if got := c.OperatorCost(n); got <= 0 {
		t.Fatalf("cost = %v", got)
	}
	if c.Name() != "CLEO" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestCosterFallback(t *testing.T) {
	// An untrained (empty) predictor must defer to the fallback.
	c := &Coster{Predictor: &Predictor{}, Fallback: fixedFallback{v: 7}}
	n := plan.NewPhysical(plan.PFilter)
	n.Partitions = 1
	if got := c.OperatorCost(n); got != 7 {
		t.Fatalf("fallback cost = %v, want 7", got)
	}
	if got := c.IndividualCost(n); got != 7 {
		t.Fatalf("individual fallback = %v, want 7", got)
	}
}

func TestIndividualCostUsesMostSpecialized(t *testing.T) {
	c, n := trainedCosterNode(t)
	got := c.IndividualCost(n)
	if got <= 0 {
		t.Fatalf("individual cost = %v", got)
	}
	// The individual cost should equal the prediction of the most
	// specialized covered family for this node.
	pred := c.Predictor.PredictNode(n, c.Param)
	for fam := 0; fam < NumFamilies; fam++ {
		if pred.Covered[fam] {
			if got != pred.ByFamily[fam] {
				t.Fatalf("individual %v != most specialized family %v (%v)",
					got, Family(fam), pred.ByFamily[fam])
			}
			return
		}
	}
	t.Fatal("no family covered the node")
}
