package learned

import (
	"fmt"
	"sync"

	"cleo/internal/telemetry"
)

// TrainConfig controls the full feedback-loop training pass.
type TrainConfig struct {
	// Family configures the individual elastic-net models.
	Family FamilyConfig
	// Combined configures the meta-ensemble.
	Combined CombinedConfig
	// MetaFraction is the tail fraction of the training records held out
	// to fit the combiner (the paper trains individual models on earlier
	// days and the combiner on the following day). When the caller has an
	// explicit split, use Train with two slices instead.
	MetaFraction float64
}

// DefaultTrainConfig returns the paper's settings.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Family:       DefaultFamilyConfig(),
		Combined:     DefaultCombinedConfig(),
		MetaFraction: 0.3,
	}
}

// Train fits all four families on base records (in parallel, one goroutine
// per family on top of per-signature parallelism) and the combined model on
// meta records.
func Train(base, meta []telemetry.Record, cfg TrainConfig) (*Predictor, error) {
	if len(base) == 0 {
		return nil, fmt.Errorf("learned: no training records")
	}
	pr := &Predictor{}
	var wg sync.WaitGroup
	for fam := 0; fam < NumFamilies; fam++ {
		wg.Add(1)
		go func(fam int) {
			defer wg.Done()
			pr.Families[fam] = TrainFamily(Family(fam), base, cfg.Family)
		}(fam)
	}
	wg.Wait()
	if len(meta) > 0 {
		if err := pr.TrainCombined(meta, cfg.Combined); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// TrainSplit splits records chronologically per MetaFraction and trains.
func TrainSplit(records []telemetry.Record, cfg TrainConfig) (*Predictor, error) {
	if cfg.MetaFraction <= 0 || cfg.MetaFraction >= 1 {
		cfg.MetaFraction = 0.3
	}
	cut := int(float64(len(records)) * (1 - cfg.MetaFraction))
	if cut < 1 {
		cut = len(records)
	}
	return Train(records[:cut], records[cut:], cfg)
}

// TrainByDay trains the individual families on records from days strictly
// before metaDay and the combined model on day metaDay — the paper's
// feedback-loop schedule (individual models on a two-day window, the
// combiner on the following day's predictions).
func TrainByDay(records []telemetry.Record, metaDay int, cfg TrainConfig) (*Predictor, error) {
	var base, meta []telemetry.Record
	for _, r := range records {
		switch {
		case r.Day < metaDay:
			base = append(base, r)
		case r.Day == metaDay:
			meta = append(meta, r)
		}
	}
	return Train(base, meta, cfg)
}

// NumModels reports the total individual-model count.
func (pr *Predictor) NumModels() int {
	n := 0
	for _, f := range pr.Families {
		if f != nil {
			n += f.NumModels()
		}
	}
	return n
}
