package learned

import (
	"runtime"
	"sync"

	"cleo/internal/linalg"
	"cleo/internal/ml"
	"cleo/internal/ml/elasticnet"
	"cleo/internal/plan"
	"cleo/internal/telemetry"
)

// Family identifies one of the four individual model families on the
// accuracy–coverage spectrum (Section 4): Subgraph is the most specialized
// and accurate, Operator the most general.
type Family int

// The four families.
const (
	FamilySubgraph Family = iota
	FamilyApprox
	FamilyInput
	FamilyOperator
	numFamilies
)

// NumFamilies is the family count.
const NumFamilies = int(numFamilies)

// String names the family as the paper does.
func (f Family) String() string {
	switch f {
	case FamilySubgraph:
		return "Op-Subgraph"
	case FamilyApprox:
		return "Op-SubgraphApprox"
	case FamilyInput:
		return "Op-Input"
	case FamilyOperator:
		return "Operator"
	default:
		return "Unknown"
	}
}

// Extended reports whether the family uses the CL/D context features
// (everything except the strict subgraph model).
func (f Family) Extended() bool { return f != FamilySubgraph }

// SignatureOf returns the signature keying this family for a record.
func (f Family) SignatureOf(s plan.Signatures) plan.Signature {
	switch f {
	case FamilySubgraph:
		return s.Subgraph
	case FamilyApprox:
		return s.Approx
	case FamilyInput:
		return s.Input
	default:
		return s.Operator
	}
}

// FamilyConfig controls training of one family.
type FamilyConfig struct {
	// MinSamples is the occurrence threshold below which a template gets
	// no model (paper: 5).
	MinSamples int
	// Net is the elastic-net configuration (paper: alpha 1.0, l1 0.5,
	// MSLE).
	Net elasticnet.Config
	// Parallelism bounds training goroutines; 0 means GOMAXPROCS.
	Parallelism int
}

// DefaultFamilyConfig returns the paper's settings.
func DefaultFamilyConfig() FamilyConfig {
	return FamilyConfig{MinSamples: 5, Net: elasticnet.DefaultConfig()}
}

// FamilyModels is a trained family: one elastic net per signature.
type FamilyModels struct {
	Family Family
	Models map[plan.Signature]*elasticnet.Model
}

// TrainFamily fits one model per signature over the records, in parallel.
// Signatures with fewer than MinSamples records are skipped (they stay
// uncovered, which is the coverage side of the accuracy–coverage
// trade-off). The operator family is the exception: it sits at the coarse
// end of the spectrum precisely so that every record has *some* model when
// the specialized families abstain, so it trains on any group with at
// least two observations — a heavily regularized fit from a rare operator
// beats a coverage hole.
func TrainFamily(family Family, records []telemetry.Record, cfg FamilyConfig) *FamilyModels {
	if cfg.MinSamples < 2 || family == FamilyOperator {
		cfg.MinSamples = 2
	}
	groups := map[plan.Signature][]int{}
	for i := range records {
		sig := family.SignatureOf(records[i].Sigs)
		groups[sig] = append(groups[sig], i)
	}

	type job struct {
		sig  plan.Signature
		rows []int
	}
	var jobs []job
	for sig, rows := range groups {
		if len(rows) >= cfg.MinSamples {
			jobs = append(jobs, job{sig, rows})
		}
	}

	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	out := &FamilyModels{Family: family, Models: make(map[plan.Signature]*elasticnet.Model, len(jobs))}
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	extended := family.Extended()
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			x := linalg.NewMatrix(len(j.rows), NumFeatures(extended))
			y := make([]float64, len(j.rows))
			for i, r := range j.rows {
				f := FromRecord(&records[r])
				f.Fill(x.Row(i), extended)
				y[i] = records[r].ActualLatency
			}
			m, err := elasticnet.New(cfg.Net).FitModel(x, y)
			if err != nil {
				return // skip degenerate groups
			}
			mu.Lock()
			out.Models[j.sig] = m
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	return out
}

// Predict returns the family's prediction for the record and whether the
// record's signature is covered.
func (fm *FamilyModels) Predict(rec *telemetry.Record) (float64, bool) {
	m, ok := fm.Models[fm.Family.SignatureOf(rec.Sigs)]
	if !ok {
		return 0, false
	}
	return m.Predict(FromRecord(rec).Vector(fm.Family.Extended())), true
}

// PredictFeatures predicts from pre-extracted features and signatures.
func (fm *FamilyModels) PredictFeatures(sigs plan.Signatures, f OpFeatures) (float64, bool) {
	m, ok := fm.Models[fm.Family.SignatureOf(sigs)]
	if !ok {
		return 0, false
	}
	return m.Predict(f.Vector(fm.Family.Extended())), true
}

// Coverage returns the fraction of records whose signature has a model.
func (fm *FamilyModels) Coverage(records []telemetry.Record) float64 {
	if len(records) == 0 {
		return 0
	}
	n := 0
	for i := range records {
		if _, ok := fm.Models[fm.Family.SignatureOf(records[i].Sigs)]; ok {
			n++
		}
	}
	return float64(n) / float64(len(records))
}

// NumModels reports the trained model count.
func (fm *FamilyModels) NumModels() int { return len(fm.Models) }

// AggregateWeights returns the normalized per-feature influence across all
// models of the family: nw_i = Σ_n |w_in| / Σ_k Σ_n |w_kn| (Figure 5's
// metric).
func (fm *FamilyModels) AggregateWeights() []float64 {
	n := NumFeatures(fm.Family.Extended())
	sums := make([]float64, n)
	var total float64
	for _, m := range fm.Models {
		for i, w := range m.Weights {
			if i >= n {
				break
			}
			a := w
			if a < 0 {
				a = -a
			}
			sums[i] += a
			total += a
		}
	}
	if total > 0 {
		for i := range sums {
			sums[i] /= total
		}
	}
	return sums
}

// Evaluate computes accuracy over the covered subset of records.
func (fm *FamilyModels) Evaluate(records []telemetry.Record) ml.Accuracy {
	var p, a []float64
	for i := range records {
		if pred, ok := fm.Predict(&records[i]); ok {
			p = append(p, pred)
			a = append(a, records[i].ActualLatency)
		}
	}
	return ml.Evaluate(p, a)
}
