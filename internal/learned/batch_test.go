package learned

import (
	"math"
	"testing"

	"cleo/internal/plan"
)

// buildStage assembles a small extract→filter→aggregate chain resembling
// the trained distribution, returning its operators bottom-up.
func buildStage(partitions int) []*plan.Physical {
	leaf := plan.NewPhysical(plan.PExtract)
	leaf.InputTemplate = "c0in1_"
	leaf.Partitions = partitions
	leaf.Stats = plan.NodeStats{EstCard: 1e6, ActCard: 1e6, RowLength: 100}
	f := plan.NewPhysical(plan.PFilter, leaf)
	f.Pred = "p"
	f.Partitions = partitions
	f.Stats = plan.NodeStats{EstCard: 5e5, ActCard: 5e5, RowLength: 100}
	agg := plan.NewPhysical(plan.PHashAggregate, f)
	agg.Keys = []plan.Column{"k"}
	agg.Partitions = partitions
	agg.Stats = plan.NodeStats{EstCard: 1e4, ActCard: 1e4, RowLength: 60}
	return []*plan.Physical{leaf, f, agg}
}

// variantsOf materializes per-count shallow copies of each op, op-major —
// the same layout the partition chooser prices.
func variantsOf(ops []*plan.Physical, counts []int) []*plan.Physical {
	var out []*plan.Physical
	for _, op := range ops {
		for _, p := range counts {
			v := *op
			v.Partitions = p
			out = append(out, &v)
		}
	}
	return out
}

func trainedBatchCoster(t *testing.T, cache *PredictionCache) *Coster {
	t.Helper()
	col := collect(t, 2)
	pr, err := TrainSplit(col.Records, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return &Coster{Predictor: pr, Param: 3, Fallback: fixedFallback{v: 7}, Cache: cache}
}

func TestCostBatchMatchesScalar(t *testing.T) {
	c := trainedBatchCoster(t, nil)
	ops := variantsOf(buildStage(8), []int{1, 2, 4, 8, 16, 64, 256})
	got := make([]float64, len(ops))
	c.CostBatch(ops, got)
	for i, op := range ops {
		want := c.OperatorCost(op)
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("row %d (%v p=%d): batch %v != scalar %v", i, op.Op, op.Partitions, got[i], want)
		}
	}
}

func TestCostBatchWithCacheMatchesScalarAndCounts(t *testing.T) {
	cache := NewPredictionCache()
	c := trainedBatchCoster(t, cache)
	ops := variantsOf(buildStage(8), []int{1, 4, 16})

	got := make([]float64, len(ops))
	c.CostBatch(ops, got) // all misses → one batch fill
	st := cache.Stats()
	if st.Misses != uint64(len(ops)) || st.BatchFills != uint64(len(ops)) {
		t.Fatalf("after cold batch: misses=%d batch_fills=%d, want %d each", st.Misses, st.BatchFills, len(ops))
	}

	again := make([]float64, len(ops))
	c.CostBatch(ops, again) // all hits
	st = cache.Stats()
	if st.Hits != uint64(len(ops)) {
		t.Fatalf("after warm batch: hits=%d, want %d", st.Hits, len(ops))
	}
	if st.Lookups != st.Hits+st.Misses {
		t.Fatalf("lookups=%d, want hits+misses=%d", st.Lookups, st.Hits+st.Misses)
	}
	for i := range ops {
		if again[i] != got[i] {
			t.Fatalf("row %d: warm %v != cold %v", i, again[i], got[i])
		}
	}

	// The scalar path must observe the same cached values.
	for i, op := range ops {
		if v := c.OperatorCost(op); v != got[i] {
			t.Fatalf("row %d: scalar-on-warm %v != batch %v", i, v, got[i])
		}
	}
}

func TestPredictNodesMatchesPredictNode(t *testing.T) {
	c := trainedBatchCoster(t, nil)
	nodes := variantsOf(buildStage(8), []int{1, 3, 9, 27})
	got := c.Predictor.PredictNodes(nodes, c.Param)
	for i, n := range nodes {
		want := c.Predictor.PredictNode(n, c.Param).Cost
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("node %d: batch %v != scalar %v", i, got[i], want)
		}
	}
}

func TestIndividualCostBatchMatchesScalar(t *testing.T) {
	c := trainedBatchCoster(t, nil)
	ops := variantsOf(buildStage(8), []int{1, 5, 25, 125})
	got := make([]float64, len(ops))
	c.IndividualCostBatch(ops, got)
	for i, op := range ops {
		want := c.IndividualCost(op)
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("row %d: batch individual %v != scalar %v", i, got[i], want)
		}
	}
}

func TestPredictRecordsMatchesPredictRecord(t *testing.T) {
	col := collect(t, 2)
	pr, err := TrainSplit(col.Records, DefaultTrainConfig())
	if err != nil {
		t.Fatal(err)
	}
	recs := col.Records
	if len(recs) > 200 {
		recs = recs[:200]
	}
	got := pr.PredictRecords(recs)
	for i := range recs {
		want := pr.PredictRecord(&recs[i]).Cost
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("record %d: batch %v != scalar %v", i, got[i], want)
		}
	}
}

func TestSameShapeDetectsPartitionOnlyVariants(t *testing.T) {
	ops := buildStage(8)
	a := *ops[2]
	b := *ops[2]
	b.Partitions = 99
	if !sameShape(&a, &b) {
		t.Fatal("partition-only variants should share shape")
	}
	c := b
	c.Stats.EstCard++
	if sameShape(&a, &c) {
		t.Fatal("stats change must break shape sharing")
	}
	d := b
	d.Children = []*plan.Physical{plan.NewPhysical(plan.PFilter)}
	if sameShape(&a, &d) {
		t.Fatal("different children must break shape sharing")
	}
}
