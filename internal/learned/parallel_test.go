package learned

// Concurrency audit of the batched costing pipeline (run under -race):
// the parallel memo search prices candidates from many goroutines through
// one shared Coster, so the pooled batch scratch (scratchPool/variantPool),
// the sharded prediction cache and the per-row feature fill must all be
// safe — and value-identical — under concurrent callers.

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentCostBatchMatchesScalar drives CostBatch, OperatorCost and
// IndividualCostBatch from many goroutines against one Coster with a
// shared prediction cache, each checking its batch against scalar results
// computed on a cache-free twin of the same predictor.
func TestConcurrentCostBatchMatchesScalar(t *testing.T) {
	cached := trainedBatchCoster(t, NewPredictionCache())
	plain := &Coster{Predictor: cached.Predictor, Param: cached.Param, Fallback: cached.Fallback}

	counts := []int{1, 2, 4, 8, 16, 64, 256}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for w := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Per-goroutine operators: candidate nodes are private to one
			// search task in the real optimizer too.
			ops := variantsOf(buildStage(8+w%3), counts)
			got := make([]float64, len(ops))
			ind := make([]float64, len(ops))
			for iter := 0; iter < 10; iter++ {
				cached.CostBatch(ops, got)
				cached.IndividualCostBatch(ops, ind)
				for i, op := range ops {
					if want := plain.OperatorCost(op); math.Abs(got[i]-want) > 1e-9 {
						t.Errorf("worker %d row %d: concurrent batch %v != scalar %v", w, i, got[i], want)
						return
					}
					if want := plain.IndividualCost(op); math.Abs(ind[i]-want) > 1e-9 {
						t.Errorf("worker %d row %d: concurrent individual %v != scalar %v", w, i, ind[i], want)
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	st := cached.Cache.Stats()
	if st.Lookups == 0 || st.Hits == 0 {
		t.Fatalf("concurrent batches never exercised the shared cache: %+v", st)
	}
}
