package learned

import (
	"encoding/binary"
	"hash/maphash"
	"math"
	"sync"
	"sync/atomic"

	"cleo/internal/plan"
)

// PredictionCache memoizes learned-coster operator costs on the serving
// hot path. Recurring jobs re-optimize structurally identical plans over
// and over (Section 2.2: most cluster hours come from recurring
// templates), so the optimizer keeps asking the predictor the same
// questions; the cache answers them with one signature hash instead of
// four signature computations plus family lookups plus a FastTree pass.
//
// Keys combine the operator-subgraph signature (which pins the physical
// operator tree, predicates, keys and input templates below the node)
// with a hash of every remaining cost input: the compile-time statistics
// (I, B, C, L), the partition count and the job-parameter bucket. Two
// lookups disagree on a cost input only if they disagree on the key, so a
// hit always returns exactly what the predictor would have computed —
// with one deliberate exception: the job parameter is quantized to
// 1/16-unit buckets, so params inside one bucket share a prediction
// (params in practice are small integers, which bucket exactly).
//
// A cache is only valid for the predictor it was filled by. Publish a
// fresh cache with every new model version (internal/serve's registry
// does this) instead of invalidating in place.
//
// The cache is sharded to keep concurrent optimizations from serializing
// on one mutex, and each shard resets wholesale when it outgrows its
// entry budget — recurring workloads refill it within one optimization.
type PredictionCache struct {
	shards [cacheShardCount]cacheShard
	seed   maphash.Seed

	hits       atomic.Uint64
	misses     atomic.Uint64
	batchFills atomic.Uint64

	// The stage-fit memo rides in the same per-version cache: the
	// analytical partition chooser's 5-point probe fit re-extracts
	// features and prices numProbes variants for every operator of every
	// stage, but recurring stages ask for the same fit over and over. The
	// fitted per-stage coefficient sums are memoized here, keyed by the
	// stage signature (every operator's subgraph signature and statistics,
	// the param bucket, and the partition cap). Living inside the
	// per-version PredictionCache gives the memo the same lifecycle as the
	// cost cache: a model hot-swap publishes a fresh cache, so stale fits
	// can never outlive their predictor.
	fitMu     sync.RWMutex
	fits      map[uint64]fitSums
	fitHits   atomic.Uint64
	fitMisses atomic.Uint64
}

// fitSums is one memoized stage fit: the summed θP/θC coefficients and
// the mean probed cost that scales the chooser's noise threshold.
type fitSums struct {
	thetaP, thetaC, scale float64
}

const (
	cacheShardCount = 32
	// cacheShardLimit bounds per-shard entries (~128k entries total);
	// beyond it the shard resets.
	cacheShardLimit = 4096
	// fitCacheLimit bounds the stage-fit memo; beyond it the memo resets
	// wholesale (recurring workloads refill it within one optimization).
	fitCacheLimit = 4096
)

type cacheKey struct {
	sig plan.Signature // subgraph signature of the node
	fh  uint64         // hash of stats, partitions and param bucket
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]float64
}

// NewPredictionCache builds an empty cache.
func NewPredictionCache() *PredictionCache {
	c := &PredictionCache{seed: maphash.MakeSeed(), fits: make(map[uint64]fitSums)}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]float64)
	}
	return c
}

// ParamBucket quantizes a job parameter to its cache bucket (1/16-unit
// resolution; integral params map to distinct buckets exactly).
func ParamBucket(param float64) int64 {
	return int64(math.Round(param * 16))
}

// keyFor derives the cache key for pricing node n at param. It hashes
// every per-instance statistic either cost model reads: the learned
// features' B/C/L/P (I is the sum of the hashed child cardinalities) and
// the per-child cardinalities the default fallback model's probe/build
// split depends on. CL, D and the input templates are functions of the
// subtree and so already pinned by the subgraph signature.
func (c *PredictionCache) keyFor(n *plan.Physical, param float64) cacheKey {
	return c.keyForSig(plan.SubgraphSignature(n), n, param, n.BaseCardinality())
}

// keyForSig is keyFor with the subgraph signature and base cardinality
// already in hand — the batch path computes both once per operator and
// reuses them across every partition-count variant, so it must not redo
// the subtree walks per cache probe.
func (c *PredictionCache) keyForSig(sig plan.Signature, n *plan.Physical, param, baseCard float64) cacheKey {
	var h maphash.Hash
	h.SetSeed(c.seed)
	write := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	write(math.Float64bits(baseCard))
	write(math.Float64bits(n.Stats.EstCard))
	write(math.Float64bits(n.Stats.RowLength))
	write(uint64(n.Partitions))
	write(uint64(ParamBucket(param)))
	for _, ch := range n.Children {
		write(math.Float64bits(ch.Stats.EstCard))
	}
	return cacheKey{sig: sig, fh: h.Sum64()}
}

func (c *PredictionCache) shard(k cacheKey) *cacheShard {
	return &c.shards[(uint64(k.sig)^k.fh)%cacheShardCount]
}

func (c *PredictionCache) lookup(k cacheKey) (float64, bool) {
	sh := c.shard(k)
	sh.mu.RLock()
	v, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

func (c *PredictionCache) store(k cacheKey, v float64) {
	sh := c.shard(k)
	sh.mu.Lock()
	if len(sh.m) >= cacheShardLimit {
		sh.m = make(map[cacheKey]float64, cacheShardLimit)
	}
	sh.m[k] = v
	sh.mu.Unlock()
}

// stageFitKey hashes everything the analytical chooser's probe fit reads:
// per operator the subgraph signature (pinning the physical operator tree
// and its subtree-derived features) plus the same per-instance statistics
// keyForSig hashes — except the live partition count, which the fit
// sweeps over the probe grid — and stage-wide the param bucket and the
// partition cap the probe points derive from.
func (c *PredictionCache) stageFitKey(ops []*plan.Physical, param float64, maxPartitions int) uint64 {
	var h maphash.Hash
	h.SetSeed(c.seed)
	write := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	write(uint64(maxPartitions))
	write(uint64(ParamBucket(param)))
	write(uint64(len(ops)))
	for _, n := range ops {
		write(uint64(plan.SubgraphSignature(n)))
		write(math.Float64bits(n.BaseCardinality()))
		write(math.Float64bits(n.Stats.EstCard))
		write(math.Float64bits(n.Stats.RowLength))
		write(uint64(len(n.Children)))
		for _, ch := range n.Children {
			write(math.Float64bits(ch.Stats.EstCard))
		}
	}
	return h.Sum64()
}

func (c *PredictionCache) fitLookup(k uint64) (fitSums, bool) {
	c.fitMu.RLock()
	v, ok := c.fits[k]
	c.fitMu.RUnlock()
	if ok {
		c.fitHits.Add(1)
	} else {
		c.fitMisses.Add(1)
	}
	return v, ok
}

func (c *PredictionCache) fitStore(k uint64, v fitSums) {
	c.fitMu.Lock()
	if len(c.fits) >= fitCacheLimit {
		c.fits = make(map[uint64]fitSums, fitCacheLimit)
	}
	c.fits[k] = v
	c.fitMu.Unlock()
}

// CacheStats snapshots the cache counters.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Lookups is the total number of cost look-ups that went through the
	// cache (hits + misses) — the serving-side view of Figure 8c's metric.
	Lookups uint64 `json:"lookups"`
	// BatchFills counts misses that were priced through the batched
	// prediction path (one matrix inference shared by the whole batch)
	// rather than a scalar model walk.
	BatchFills uint64 `json:"batch_fills"`
	Entries    int    `json:"entries"`
	// FitHits / FitMisses count the analytical chooser's stage-fit memo:
	// a hit answers a whole stage's partition exploration from the
	// memoized coefficient sums with zero model look-ups.
	FitHits   uint64 `json:"fit_hits"`
	FitMisses uint64 `json:"fit_misses"`
}

// Stats reports hit/miss counters and the current entry count.
func (c *PredictionCache) Stats() CacheStats {
	s := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), BatchFills: c.batchFills.Load(),
		FitHits: c.fitHits.Load(), FitMisses: c.fitMisses.Load()}
	s.Lookups = s.Hits + s.Misses
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		s.Entries += len(sh.m)
		sh.mu.RUnlock()
	}
	return s
}

// HitRatio reports hits/(hits+misses), 0 before any lookup.
func (s CacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
