package plan

import (
	"fmt"
	"strings"
)

// Column names a column. Columns are plain strings; schema tracking beyond
// names is not needed for cost modeling.
type Column string

// Logical is a node of a logical plan tree.
type Logical struct {
	Op       LogicalOp
	Children []*Logical

	// Table is the stored-input name for LGet leaves (raw name including
	// dates/numbers, e.g. "clicks_2026_06_11").
	Table string
	// InputTemplate is the normalized input name with dates and numbers
	// stripped (e.g. "clicks_"), shared across recurring instances.
	InputTemplate string
	// Pred identifies the predicate for LSelect/LJoin so the statistics
	// catalog can look up selectivities consistently across instances.
	Pred string
	// Keys are the join/group-by/sort columns.
	Keys []Column
	// UDF names the user-defined processor for LProcess nodes.
	UDF string
	// N is the limit for LTopN.
	N int
}

// NewGet builds a scan leaf.
func NewGet(table, template string) *Logical {
	return &Logical{Op: LGet, Table: table, InputTemplate: template}
}

// NewSelect builds a filter over child.
func NewSelect(child *Logical, pred string) *Logical {
	return &Logical{Op: LSelect, Children: []*Logical{child}, Pred: pred}
}

// NewProject builds a projection over child.
func NewProject(child *Logical, keys ...Column) *Logical {
	return &Logical{Op: LProject, Children: []*Logical{child}, Keys: keys}
}

// NewJoin builds an inner equi-join of left and right on keys.
func NewJoin(left, right *Logical, pred string, keys ...Column) *Logical {
	return &Logical{Op: LJoin, Children: []*Logical{left, right}, Pred: pred, Keys: keys}
}

// NewAggregate builds a group-by aggregation over child.
func NewAggregate(child *Logical, keys ...Column) *Logical {
	return &Logical{Op: LAggregate, Children: []*Logical{child}, Keys: keys}
}

// NewSort builds an order-by over child.
func NewSort(child *Logical, keys ...Column) *Logical {
	return &Logical{Op: LSort, Children: []*Logical{child}, Keys: keys}
}

// NewTopN builds a top-n over child.
func NewTopN(child *Logical, n int, keys ...Column) *Logical {
	return &Logical{Op: LTopN, Children: []*Logical{child}, Keys: keys, N: n}
}

// NewUnion builds a union-all of the children.
func NewUnion(children ...*Logical) *Logical {
	return &Logical{Op: LUnion, Children: children}
}

// NewProcess builds a UDF processor over child.
func NewProcess(child *Logical, udf string) *Logical {
	return &Logical{Op: LProcess, Children: []*Logical{child}, UDF: udf}
}

// NewOutput builds the sink above child.
func NewOutput(child *Logical) *Logical {
	return &Logical{Op: LOutput, Children: []*Logical{child}}
}

// Walk visits the subtree rooted at l in post-order.
func (l *Logical) Walk(fn func(*Logical)) {
	for _, c := range l.Children {
		c.Walk(fn)
	}
	fn(l)
}

// Count returns the number of nodes in the subtree.
func (l *Logical) Count() int {
	n := 0
	l.Walk(func(*Logical) { n++ })
	return n
}

// Leaves returns the LGet leaves in left-to-right order.
func (l *Logical) Leaves() []*Logical {
	var out []*Logical
	l.Walk(func(n *Logical) {
		if n.Op == LGet {
			out = append(out, n)
		}
	})
	return out
}

// InputTemplates returns the sorted, de-duplicated normalized input names
// under the subtree. These group recurring jobs that run on the same input
// schema over different sessions (Section 4.2).
func (l *Logical) InputTemplates() []string {
	seen := map[string]bool{}
	var out []string
	for _, leaf := range l.Leaves() {
		if !seen[leaf.InputTemplate] {
			seen[leaf.InputTemplate] = true
			out = append(out, leaf.InputTemplate)
		}
	}
	sortStrings(out)
	return out
}

// String renders a compact one-line form, for debugging and tests.
func (l *Logical) String() string {
	var b strings.Builder
	l.format(&b)
	return b.String()
}

func (l *Logical) format(b *strings.Builder) {
	b.WriteString(l.Op.String())
	switch {
	case l.Op == LGet:
		fmt.Fprintf(b, "(%s)", l.Table)
	case l.Pred != "":
		fmt.Fprintf(b, "[%s]", l.Pred)
	case l.UDF != "":
		fmt.Fprintf(b, "[%s]", l.UDF)
	case len(l.Keys) > 0:
		fmt.Fprintf(b, "[%v]", l.Keys)
	}
	if len(l.Children) > 0 {
		b.WriteString("(")
		for i, c := range l.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.format(b)
		}
		b.WriteString(")")
	}
}

// Equal reports structural equality of two logical plans: same operators,
// operator identity (table, template, predicate, keys in order, UDF,
// limit) and children throughout. The template cache verifies a candidate
// snapshot against the query with this — a 64-bit signature match alone
// must never be trusted to serve another plan's search state.
func (l *Logical) Equal(o *Logical) bool {
	if l == o {
		return true
	}
	if l == nil || o == nil {
		return false
	}
	if l.Op != o.Op || l.Table != o.Table || l.InputTemplate != o.InputTemplate ||
		l.Pred != o.Pred || l.UDF != o.UDF || l.N != o.N ||
		len(l.Keys) != len(o.Keys) || len(l.Children) != len(o.Children) {
		return false
	}
	for i := range l.Keys {
		if l.Keys[i] != o.Keys[i] {
			return false
		}
	}
	for i := range l.Children {
		if !l.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the subtree.
func (l *Logical) Clone() *Logical {
	out := *l
	out.Keys = append([]Column(nil), l.Keys...)
	out.Children = make([]*Logical, len(l.Children))
	for i, c := range l.Children {
		out.Children[i] = c.Clone()
	}
	return &out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
