package plan

// Stage is a maximal set of physical operators that run over the same set
// of partitions on the same containers (Section 2.1). A stage starts at a
// partitioning operator — Extract for leaf stages, Exchange elsewhere — and
// extends upward until the next stage boundary.
type Stage struct {
	// Ops lists the stage's operators bottom-up; Ops[0] is the
	// partitioning operator that sets the stage's partition count.
	Ops []*Physical
	// Partitions is the stage-wide partition count.
	Partitions int
}

// PartitioningOp returns the operator that decides the stage's partition
// count (its first, bottom-most operator).
func (s *Stage) PartitioningOp() *Physical {
	if len(s.Ops) == 0 {
		return nil
	}
	return s.Ops[0]
}

// isStageBoundary reports whether op starts a new stage.
func isStageBoundary(op PhysicalOp) bool {
	return op == PExchange || op == PExtract
}

// Stages decomposes the plan into stages, bottom-up. Operators between two
// Exchange operators (exclusive of the upper one) share a stage with the
// lower Exchange; Extract leaves start leaf stages. Binary operators (joins,
// unions) join the stage of their left-most non-boundary child unless all
// children end in boundaries, in which case they join the stage of the
// first child.
func Stages(root *Physical) []*Stage {
	var stages []*Stage
	stageOf := map[*Physical]*Stage{}

	var visit func(n *Physical)
	visit = func(n *Physical) {
		for _, c := range n.Children {
			visit(c)
		}
		if isStageBoundary(n.Op) || len(n.Children) == 0 {
			st := &Stage{Ops: []*Physical{n}}
			stages = append(stages, st)
			stageOf[n] = st
			return
		}
		// Continue the stage of the first child (SCOPE pipelines an
		// operator with the input whose partitioning it consumes).
		st := stageOf[n.Children[0]]
		st.Ops = append(st.Ops, n)
		stageOf[n] = st
	}
	visit(root)

	for _, st := range stages {
		st.Partitions = st.Ops[0].Partitions
	}
	return stages
}

// StageOf returns the stage containing each operator of the plan.
func StageOf(root *Physical) map[*Physical]*Stage {
	out := map[*Physical]*Stage{}
	for _, st := range Stages(root) {
		for _, op := range st.Ops {
			out[op] = st
		}
	}
	return out
}

// Width is the stage's effective pipeline width: its partition count
// clamped to [1, max]. The optimizer picks partition counts for
// production-scale clusters (hundreds of containers); a single-process
// executor folds them onto at most max concurrent pipeline instances.
func (s *Stage) Width(max int) int {
	return clampWidth(s.Partitions, max)
}

// PipelineWidths maps every operator of the plan to the pipeline width of
// its stage, clamped to [1, max] — the degree of parallelism the streaming
// executor instantiates for it. Operators whose stage carries no positive
// partition count (hand-built plans) map to 1.
func PipelineWidths(root *Physical, max int) map[*Physical]int {
	out := map[*Physical]int{}
	for _, st := range Stages(root) {
		w := st.Width(max)
		for _, op := range st.Ops {
			out[op] = w
		}
	}
	return out
}

// clampWidth folds a partition count into [1, max]; max <= 0 means no cap.
func clampWidth(p, max int) int {
	if p < 1 {
		p = 1
	}
	if max > 0 && p > max {
		p = max
	}
	return p
}

// SetStagePartitions assigns the partition count of every operator to its
// stage's partitioning operator's count, mirroring SCOPE's partition-count
// derivation (Section 5.2).
func SetStagePartitions(root *Physical) {
	for _, st := range Stages(root) {
		p := st.Ops[0].Partitions
		if p <= 0 {
			p = 1
			st.Ops[0].Partitions = 1
		}
		for _, op := range st.Ops[1:] {
			op.Partitions = p
		}
		st.Partitions = p
	}
}
