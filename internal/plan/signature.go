package plan

import (
	"encoding/binary"
	"hash/fnv"
)

// Signature is the 64-bit hash query optimizers annotate operators with
// (Section 5.1). Four signature flavours key the four learned cost models:
//
//   - Subgraph: root operator + the exact operator tree beneath it
//     (operator-subgraph model).
//   - Approx: root operator + leaf input templates + the *frequency* of
//     logical operators beneath, ignoring order and physical choices
//     (operator-subgraphApprox model).
//   - Input: root operator + leaf input templates
//     (operator-input model).
//   - Operator: the root physical operator alone (operator model).
type Signature uint64

// Signatures bundles all four flavours for one operator instance. All four
// are computed in one bottom-up recursion, mirroring how SCOPE computes
// them simultaneously to keep overhead minimal.
type Signatures struct {
	Subgraph Signature
	Approx   Signature
	Input    Signature
	Operator Signature
}

// hasher is an allocation-free streaming FNV-1a accumulator. It produces
// exactly the hashes hash/fnv would with the chunk-separator convention
// (each chunk followed by one zero byte) — signatures key persisted models,
// so the byte stream must stay stable. Signature computation sits on the
// batched costing hot path (every cost prediction needs four of them), so
// it must not allocate hash objects or chunk slices.
type hasher uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func newHasher() hasher { return fnvOffset64 }

// chunkString hashes one string chunk plus the separator byte.
func (h *hasher) chunkString(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x = (x ^ uint64(s[i])) * fnvPrime64
	}
	x = (x ^ 0) * fnvPrime64 // chunk separator
	*h = hasher(x)
}

// chunkU64 hashes one little-endian uint64 chunk plus the separator byte.
func (h *hasher) chunkU64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x = (x ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	x = (x ^ 0) * fnvPrime64 // chunk separator
	*h = hasher(x)
}

// hash64 hashes a list of byte-chunks with FNV-1a. Kept as the reference
// implementation the streaming hasher is tested against.
func hash64(chunks ...[]byte) Signature {
	h := fnv.New64a()
	for _, c := range chunks {
		h.Write(c)
		h.Write([]byte{0}) // chunk separator
	}
	return Signature(h.Sum64())
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// LogicalSignature hashes a logical plan tree bottom-up with the streaming
// FNV-1a hasher: operator kind, every piece of operator identity (table,
// input template, predicate, keys, UDF, limit) and the child signatures in
// order, with explicit list lengths so adjacent variable-length fields
// cannot alias. Two logical plans collide only if they are structurally
// identical — the property the recurring-job template cache keys on: every
// instance of a recurring template submits the same logical tree (only its
// statistics, parameters and model version differ), so one signature names
// one memo template.
func LogicalSignature(l *Logical) Signature {
	h := newHasher()
	h.chunkString("log")
	h.chunkString(l.Op.String())
	h.chunkString(l.Table)
	h.chunkString(l.InputTemplate)
	h.chunkString(l.Pred)
	h.chunkString(l.UDF)
	h.chunkU64(uint64(l.N))
	h.chunkU64(uint64(len(l.Keys)))
	for _, k := range l.Keys {
		h.chunkString(string(k))
	}
	h.chunkU64(uint64(len(l.Children)))
	for _, c := range l.Children {
		h.chunkU64(uint64(LogicalSignature(c)))
	}
	return Signature(h)
}

// OperatorSignature returns the signature of the bare physical operator.
func OperatorSignature(op PhysicalOp) Signature {
	h := newHasher()
	h.chunkString("op")
	h.chunkString(op.String())
	return Signature(h)
}

// ComputeSignatures computes all four signatures for node p. The leaf
// input templates are gathered once and shared by the Input and Approx
// flavours.
func ComputeSignatures(p *Physical) Signatures {
	return SignaturesWithSubgraph(p, SubgraphSignature(p))
}

// SignaturesWithSubgraph fills the remaining signature flavours around an
// already-computed subgraph signature — the batched costing path derives
// cache keys from the subgraph signature alone and only needs the other
// three for cache misses.
func SignaturesWithSubgraph(p *Physical, sub Signature) Signatures {
	templates := p.InputTemplates()
	return Signatures{
		Subgraph: sub,
		Approx:   approxSignature(p, templates),
		Input:    inputSignature(p, templates),
		Operator: OperatorSignature(p.Op),
	}
}

// SubgraphSignature recursively hashes the root physical operator, its
// logical properties (predicate, keys, UDF, input template for leaves) and
// the subgraph signatures of its children, in order.
func SubgraphSignature(p *Physical) Signature {
	h := newHasher()
	h.chunkString("sub")
	h.chunkString(p.Op.String())
	h.chunkString(p.Pred)
	h.chunkString(p.UDF)
	h.chunkString(p.InputTemplate)
	for _, k := range p.Keys {
		h.chunkString(string(k))
	}
	for _, c := range p.Children {
		h.chunkU64(uint64(SubgraphSignature(c)))
	}
	return Signature(h)
}

// InputSignature hashes the root operator together with the sorted leaf
// input templates: one model per operator × input-template combination.
func InputSignature(p *Physical) Signature {
	return inputSignature(p, p.InputTemplates())
}

func inputSignature(p *Physical, templates []string) Signature {
	h := newHasher()
	h.chunkString("in")
	h.chunkString(p.Op.String())
	for _, t := range templates {
		h.chunkString(t)
	}
	return Signature(h)
}

// ApproxSignature hashes the root operator, sorted leaf input templates,
// and the frequency vector of logical operators in the subtree — the
// paper's two relaxations (logical instead of physical operators, order
// ignored).
func ApproxSignature(p *Physical) Signature {
	return approxSignature(p, p.InputTemplates())
}

func approxSignature(p *Physical, templates []string) Signature {
	h := newHasher()
	h.chunkString("apx")
	h.chunkString(p.Op.String())
	for _, t := range templates {
		h.chunkString(t)
	}
	counts := p.LogicalOpCounts()
	for _, c := range counts {
		h.chunkU64(uint64(c))
	}
	return Signature(h)
}
