package plan

import (
	"encoding/binary"
	"hash/fnv"
)

// Signature is the 64-bit hash query optimizers annotate operators with
// (Section 5.1). Four signature flavours key the four learned cost models:
//
//   - Subgraph: root operator + the exact operator tree beneath it
//     (operator-subgraph model).
//   - Approx: root operator + leaf input templates + the *frequency* of
//     logical operators beneath, ignoring order and physical choices
//     (operator-subgraphApprox model).
//   - Input: root operator + leaf input templates
//     (operator-input model).
//   - Operator: the root physical operator alone (operator model).
type Signature uint64

// Signatures bundles all four flavours for one operator instance. All four
// are computed in one bottom-up recursion, mirroring how SCOPE computes
// them simultaneously to keep overhead minimal.
type Signatures struct {
	Subgraph Signature
	Approx   Signature
	Input    Signature
	Operator Signature
}

// hash64 hashes a list of byte-chunks with FNV-1a.
func hash64(chunks ...[]byte) Signature {
	h := fnv.New64a()
	for _, c := range chunks {
		h.Write(c)
		h.Write([]byte{0}) // chunk separator
	}
	return Signature(h.Sum64())
}

func u64bytes(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

// OperatorSignature returns the signature of the bare physical operator.
func OperatorSignature(op PhysicalOp) Signature {
	return hash64([]byte("op"), []byte(op.String()))
}

// ComputeSignatures computes all four signatures for node p.
func ComputeSignatures(p *Physical) Signatures {
	return Signatures{
		Subgraph: SubgraphSignature(p),
		Approx:   ApproxSignature(p),
		Input:    InputSignature(p),
		Operator: OperatorSignature(p.Op),
	}
}

// SubgraphSignature recursively hashes the root physical operator, its
// logical properties (predicate, keys, UDF, input template for leaves) and
// the subgraph signatures of its children, in order.
func SubgraphSignature(p *Physical) Signature {
	chunks := [][]byte{
		[]byte("sub"),
		[]byte(p.Op.String()),
		[]byte(p.Pred),
		[]byte(p.UDF),
		[]byte(p.InputTemplate),
	}
	for _, k := range p.Keys {
		chunks = append(chunks, []byte(k))
	}
	for _, c := range p.Children {
		chunks = append(chunks, u64bytes(uint64(SubgraphSignature(c))))
	}
	return hash64(chunks...)
}

// InputSignature hashes the root operator together with the sorted leaf
// input templates: one model per operator × input-template combination.
func InputSignature(p *Physical) Signature {
	chunks := [][]byte{[]byte("in"), []byte(p.Op.String())}
	for _, t := range p.InputTemplates() {
		chunks = append(chunks, []byte(t))
	}
	return hash64(chunks...)
}

// ApproxSignature hashes the root operator, sorted leaf input templates,
// and the frequency vector of logical operators in the subtree — the
// paper's two relaxations (logical instead of physical operators, order
// ignored).
func ApproxSignature(p *Physical) Signature {
	chunks := [][]byte{[]byte("apx"), []byte(p.Op.String())}
	for _, t := range p.InputTemplates() {
		chunks = append(chunks, []byte(t))
	}
	counts := p.LogicalOpCounts()
	for _, c := range counts {
		chunks = append(chunks, u64bytes(uint64(c)))
	}
	return hash64(chunks...)
}
