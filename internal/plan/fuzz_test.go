package plan

import (
	"encoding/json"
	"testing"
)

// FuzzLogicalCodecRoundTrip feeds arbitrary bytes to the logical-plan JSON
// decoder. Invalid input must be rejected with an error (never a panic, and
// never a silently half-decoded plan); every accepted input must survive a
// full round-trip: the decoded plan re-validates, re-encodes, decodes back
// to the same structure, and the second encoding is byte-identical to the
// first (the codec is its own canonical form).
func FuzzLogicalCodecRoundTrip(f *testing.F) {
	// Seed from the codec test corpus: the all-operators plan, minimal
	// plans per operator, and near-miss invalid shapes.
	if data, err := json.Marshal(allOpsPlan()); err == nil {
		f.Add(data)
	}
	for _, seed := range []string{
		`{"op":"Get","table":"clicks_2026_06_12","template":"clicks_"}`,
		`{"op":"Output","children":[{"op":"Aggregate","keys":["user"],"children":[{"op":"Select","pred":"market=us","children":[{"op":"Get","table":"t","template":"t_"}]}]}]}`,
		`{"op":"TopN","n":10,"keys":["score"],"children":[{"op":"Get","table":"t"}]}`,
		`{"op":"Join","pred":"p","keys":["k"],"children":[{"op":"Get","table":"a"},{"op":"Get","table":"b"}]}`,
		`{"op":"Union","children":[{"op":"Get","table":"a"}]}`,
		`{"op":"Process","udf":"u","children":[{"op":"Get","table":"a"}]}`,
		`{"op":"Get"}`,                      // missing table
		`{"op":"TopN","n":0,"children":[]}`, // bad arity and limit
		`{"op":"Join","children":[{"op":"Get","table":"a"}]}`,
		`{"op":"Join","pred":"a.k=b.k","children":[{"op":"Get","table":"a"},{"op":"Get","table":"b"}]}`, // keyless

		`{"op":"Nope"}`,
		`{"op":"Select","children":[null]}`,
		`{"op":"Select","pred":"p","extra":1,"children":[{"op":"Get","table":"a"}]}`,
		`[]`, `{}`, `nul`, "\x00", `{"op":"Output","children":`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var l Logical
		if err := json.Unmarshal(data, &l); err != nil {
			return // rejected input is fine; panics are what we hunt
		}
		// Accepted plans must be structurally valid...
		if err := l.Validate(); err != nil {
			t.Fatalf("decoder accepted a plan that fails Validate: %v\ninput: %q", err, data)
		}
		// ...and round-trip through the canonical encoding.
		enc1, err := json.Marshal(&l)
		if err != nil {
			t.Fatalf("re-encode failed: %v\ninput: %q", err, data)
		}
		var back Logical
		if err := json.Unmarshal(enc1, &back); err != nil {
			t.Fatalf("decode of own encoding failed: %v\nencoding: %s", err, enc1)
		}
		if back.String() != l.String() {
			t.Fatalf("round-trip changed the plan:\nbefore: %s\nafter:  %s", l.String(), back.String())
		}
		if LogicalSignature(&back) != LogicalSignature(&l) {
			t.Fatalf("round-trip changed the logical signature for %s", l.String())
		}
		enc2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc1) != string(enc2) {
			t.Fatalf("encoding is not canonical:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
	})
}
