package plan

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPlan builds a random physical tree from a seed, for property tests.
func randomPlan(rng *rand.Rand, depth int) *Physical {
	if depth <= 0 || rng.Float64() < 0.3 {
		leaf := NewPhysical(PExtract)
		leaf.Table = string(rune('a' + rng.Intn(5)))
		leaf.InputTemplate = leaf.Table + "_"
		leaf.Partitions = 1 + rng.Intn(64)
		leaf.Stats = NodeStats{EstCard: float64(1 + rng.Intn(1e6)), ActCard: float64(1 + rng.Intn(1e6)), RowLength: 50}
		return leaf
	}
	ops := []PhysicalOp{PFilter, PProject, PSort, PExchange, PHashAggregate, PTopN, PProcess}
	if rng.Float64() < 0.3 {
		l := randomPlan(rng, depth-1)
		r := randomPlan(rng, depth-1)
		j := NewPhysical(PHashJoin, l, r)
		j.Pred = "p" + string(rune('0'+rng.Intn(8)))
		j.Keys = []Column{"k"}
		j.Partitions = l.Partitions
		j.Stats = NodeStats{EstCard: 100, ActCard: 100, RowLength: 80}
		return j
	}
	child := randomPlan(rng, depth-1)
	n := NewPhysical(ops[rng.Intn(len(ops))], child)
	n.Partitions = child.Partitions
	if n.Op == PFilter {
		n.Pred = "f" + string(rune('0'+rng.Intn(8)))
	}
	if n.Op == PProcess {
		n.UDF = "u" + string(rune('0'+rng.Intn(4)))
	}
	n.Keys = []Column{"k"}
	n.Stats = NodeStats{EstCard: 50, ActCard: 60, RowLength: 40}
	return n
}

// Property: signatures are deterministic and Clone preserves them.
func TestSignatureCloneInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng, 4)
		s1 := ComputeSignatures(p)
		s2 := ComputeSignatures(p.Clone())
		return s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: every operator belongs to exactly one stage and stage ops are
// connected bottom-up (ops[0] is a boundary).
func TestStagePartitionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng, 5)
		stages := Stages(p)
		seen := map[*Physical]int{}
		for _, st := range stages {
			if len(st.Ops) == 0 {
				return false
			}
			if !isStageBoundary(st.Ops[0].Op) && len(st.Ops[0].Children) > 0 {
				return false
			}
			for _, op := range st.Ops {
				seen[op]++
			}
		}
		count := 0
		p.Walk(func(n *Physical) { count++ })
		if len(seen) != count {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: SetStagePartitions makes every stage internally uniform.
func TestSetStagePartitionsUniform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng, 5)
		SetStagePartitions(p)
		for _, st := range Stages(p) {
			for _, op := range st.Ops {
				if op.Partitions != st.Ops[0].Partitions {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: subgraph signature changes when any descendant predicate
// changes, but operator signature never does.
func TestSignatureSensitivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng, 4)
		before := ComputeSignatures(p)
		// Mutate the left-most leaf's template.
		leaf := p.Leaves()[0]
		leaf.InputTemplate += "x"
		after := ComputeSignatures(p)
		if before.Operator != after.Operator {
			return false
		}
		// Subgraph and input signatures must both change (leaf template
		// feeds both).
		return before.Subgraph != after.Subgraph && before.Input != after.Input
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals number of Walk visits; Depth <= Count.
func TestTraversalConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPlan(rng, 5)
		visits := 0
		p.Walk(func(*Physical) { visits++ })
		return visits == p.Count() && p.Depth() <= p.Count() && p.Depth() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
