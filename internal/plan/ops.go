// Package plan defines the logical and physical query-plan algebra used
// throughout the repository: operator kinds, plan trees, partitioning and
// sorting properties, stage decomposition, and the 64-bit recursive operator
// signatures (Section 5.1 of the paper) that key the learned cost models.
package plan

// LogicalOp enumerates logical operators. They mirror the relational
// operators in SCOPE scripts: extract/scan, filter, project, join,
// aggregation, sort, top-k, union and user-defined processors.
type LogicalOp int

// Logical operator kinds.
const (
	LGet LogicalOp = iota // scan of a stored input
	LSelect
	LProject
	LJoin
	LAggregate
	LSort
	LTopN
	LUnion
	LProcess // user-defined processor (black-box UDF)
	LOutput
	numLogicalOps
)

// String returns the operator name.
func (op LogicalOp) String() string {
	switch op {
	case LGet:
		return "Get"
	case LSelect:
		return "Select"
	case LProject:
		return "Project"
	case LJoin:
		return "Join"
	case LAggregate:
		return "Aggregate"
	case LSort:
		return "Sort"
	case LTopN:
		return "TopN"
	case LUnion:
		return "Union"
	case LProcess:
		return "Process"
	case LOutput:
		return "Output"
	default:
		return "UnknownLogical"
	}
}

// NumLogicalOps is the count of logical operator kinds, used when building
// frequency vectors for the approximate subgraph signature.
const NumLogicalOps = int(numLogicalOps)

// PhysicalOp enumerates physical operators (the paper's Extract, Filter,
// Exchange a.k.a. Shuffle, hash/merge joins, hash/stream aggregates, etc.).
type PhysicalOp int

// Physical operator kinds.
const (
	PExtract PhysicalOp = iota
	PFilter
	PProject
	PHashJoin
	PMergeJoin
	PHashAggregate
	PStreamAggregate
	PPartialAggregate // local (per-partition) pre-aggregation
	PSort
	PExchange // shuffle / repartition
	PTopN
	PUnionAll
	PProcess // UDF executor
	POutput
	numPhysicalOps
)

// NumPhysicalOps is the count of physical operator kinds.
const NumPhysicalOps = int(numPhysicalOps)

// String returns the operator name.
func (op PhysicalOp) String() string {
	switch op {
	case PExtract:
		return "Extract"
	case PFilter:
		return "Filter"
	case PProject:
		return "Project"
	case PHashJoin:
		return "HashJoin"
	case PMergeJoin:
		return "MergeJoin"
	case PHashAggregate:
		return "HashAggregate"
	case PStreamAggregate:
		return "StreamAggregate"
	case PPartialAggregate:
		return "PartialAggregate"
	case PSort:
		return "Sort"
	case PExchange:
		return "Exchange"
	case PTopN:
		return "TopN"
	case PUnionAll:
		return "UnionAll"
	case PProcess:
		return "Process"
	case POutput:
		return "Output"
	default:
		return "UnknownPhysical"
	}
}

// Logical returns the logical operator a physical operator implements.
func (op PhysicalOp) Logical() LogicalOp {
	switch op {
	case PExtract:
		return LGet
	case PFilter:
		return LSelect
	case PProject:
		return LProject
	case PHashJoin, PMergeJoin:
		return LJoin
	case PHashAggregate, PStreamAggregate, PPartialAggregate:
		return LAggregate
	case PSort:
		return LSort
	case PExchange:
		return LProject // exchanges are physical-only; counted as data movement
	case PTopN:
		return LTopN
	case PUnionAll:
		return LUnion
	case PProcess:
		return LProcess
	case POutput:
		return LOutput
	default:
		return LProject
	}
}

// Blocking reports whether the operator must consume all input before
// producing output (blocks pipelining). This drives the context-sensitive
// latency behaviour the paper highlights: a hash operator over a filter is
// cheaper than over a sort (Section 3.1).
func (op PhysicalOp) Blocking() bool {
	switch op {
	case PSort, PHashAggregate, PTopN, PHashJoin: // hash join blocks on build side
		return true
	default:
		return false
	}
}

// AllPhysicalOps lists every physical operator kind, for iteration.
func AllPhysicalOps() []PhysicalOp {
	ops := make([]PhysicalOp, NumPhysicalOps)
	for i := range ops {
		ops[i] = PhysicalOp(i)
	}
	return ops
}
