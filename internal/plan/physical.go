package plan

import (
	"fmt"
	"strings"
)

// NodeStats carries the per-operator statistics the cost models consume
// (Table 2 of the paper) plus the actuals observed after execution.
type NodeStats struct {
	// EstCard is the optimizer-estimated output cardinality.
	EstCard float64
	// ActCard is the actual output cardinality observed at runtime (0
	// before execution).
	ActCard float64
	// RowLength is the average output row length in bytes.
	RowLength float64
}

// Physical is a node of a physical plan tree produced by the optimizer.
type Physical struct {
	Op       PhysicalOp
	Children []*Physical

	// Identity carried over from the logical plan.
	Table         string
	InputTemplate string
	Pred          string
	Keys          []Column
	UDF           string
	N             int

	// Partitions is the partition count (degree of parallelism) this
	// operator runs with. Operators in one stage share a count.
	Partitions int
	// FixedPartitions marks operators whose partition count is imposed by
	// storage layout or semantics (pre-partitioned inputs, singleton
	// exchanges) and must not be changed by partition optimization.
	FixedPartitions bool

	Stats NodeStats

	// ExclusiveCostEst is the optimizer's predicted exclusive latency
	// (seconds) for this operator, filled during costing.
	ExclusiveCostEst float64
	// ExclusiveActual is the measured exclusive latency (seconds), filled
	// by the execution simulator.
	ExclusiveActual float64
}

// NewPhysical builds a node with the given operator and children.
func NewPhysical(op PhysicalOp, children ...*Physical) *Physical {
	return &Physical{Op: op, Children: children}
}

// Walk visits the subtree in post-order.
func (p *Physical) Walk(fn func(*Physical)) {
	for _, c := range p.Children {
		c.Walk(fn)
	}
	fn(p)
}

// Count returns the node count of the subtree.
func (p *Physical) Count() int {
	n := 0
	p.Walk(func(*Physical) { n++ })
	return n
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (p *Physical) Depth() int {
	max := 0
	for _, c := range p.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Leaves returns the PExtract leaves in left-to-right order.
func (p *Physical) Leaves() []*Physical {
	var out []*Physical
	p.Walk(func(n *Physical) {
		if len(n.Children) == 0 {
			out = append(out, n)
		}
	})
	return out
}

// BaseCardinality returns the summed actual (or, if unset, estimated)
// cardinality of the leaf inputs — the paper's feature B. It recurses
// directly rather than materializing the leaf list: the costing hot path
// extracts this feature for every priced operator variant.
func (p *Physical) BaseCardinality() float64 {
	if len(p.Children) == 0 {
		c := p.Stats.ActCard
		if c == 0 {
			c = p.Stats.EstCard
		}
		return c
	}
	var sum float64
	for _, c := range p.Children {
		sum += c.BaseCardinality()
	}
	return sum
}

// InputCardinality returns the summed output cardinality of the children —
// the paper's feature I. Estimated when est is true, actual otherwise.
func (p *Physical) InputCardinality(est bool) float64 {
	var sum float64
	for _, c := range p.Children {
		if est {
			sum += c.Stats.EstCard
		} else {
			sum += c.Stats.ActCard
		}
	}
	return sum
}

// InputTemplates returns sorted, de-duplicated leaf input templates.
// Plans have a handful of distinct templates, so de-duplication scans the
// output slice instead of allocating a set.
func (p *Physical) InputTemplates() []string {
	var out []string
	p.collectTemplates(&out)
	sortStrings(out)
	return out
}

func (p *Physical) collectTemplates(out *[]string) {
	if len(p.Children) == 0 {
		if p.InputTemplate == "" {
			return
		}
		for _, t := range *out {
			if t == p.InputTemplate {
				return
			}
		}
		*out = append(*out, p.InputTemplate)
		return
	}
	for _, c := range p.Children {
		c.collectTemplates(out)
	}
}

// LogicalOpCounts returns the multiset of logical operator kinds in the
// subtree (including this node), as a fixed-size frequency vector. The
// approximate subgraph signature hashes this vector (Section 4.2).
func (p *Physical) LogicalOpCounts() [NumLogicalOps]int {
	var counts [NumLogicalOps]int
	p.addOpCounts(&counts)
	return counts
}

func (p *Physical) addOpCounts(counts *[NumLogicalOps]int) {
	for _, c := range p.Children {
		c.addOpCounts(counts)
	}
	if p.Op == PExchange {
		return // physical-only; excluded from logical frequency
	}
	counts[p.Op.Logical()]++
}

// TotalCostEst sums predicted exclusive costs over the subtree.
func (p *Physical) TotalCostEst() float64 {
	var sum float64
	p.Walk(func(n *Physical) { sum += n.ExclusiveCostEst })
	return sum
}

// TotalActual sums measured exclusive latencies over the subtree.
func (p *Physical) TotalActual() float64 {
	var sum float64
	p.Walk(func(n *Physical) { sum += n.ExclusiveActual })
	return sum
}

// Clone deep-copies the subtree.
func (p *Physical) Clone() *Physical {
	out := *p
	out.Keys = append([]Column(nil), p.Keys...)
	out.Children = make([]*Physical, len(p.Children))
	for i, c := range p.Children {
		out.Children[i] = c.Clone()
	}
	return &out
}

// String renders a compact one-line form.
func (p *Physical) String() string {
	var b strings.Builder
	p.format(&b)
	return b.String()
}

func (p *Physical) format(b *strings.Builder) {
	b.WriteString(p.Op.String())
	fmt.Fprintf(b, "{p=%d}", p.Partitions)
	if p.Table != "" {
		fmt.Fprintf(b, "(%s)", p.Table)
	}
	if len(p.Children) > 0 {
		b.WriteString("(")
		for i, c := range p.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			c.format(b)
		}
		b.WriteString(")")
	}
}

// PlanSummary describes a physical plan at a glance; used when diffing the
// default and learned optimizer outputs (Section 6.6).
type PlanSummary struct {
	Operators      map[string]int
	TotalPartition int
	NumStages      int
	NumOps         int
}

// Summarize computes a PlanSummary.
func Summarize(root *Physical) PlanSummary {
	s := PlanSummary{Operators: map[string]int{}}
	root.Walk(func(n *Physical) {
		s.Operators[n.Op.String()]++
		s.NumOps++
	})
	stages := Stages(root)
	s.NumStages = len(stages)
	for _, st := range stages {
		s.TotalPartition += st.Partitions
	}
	return s
}
