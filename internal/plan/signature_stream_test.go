package plan

import "testing"

// The streaming hasher must reproduce hash/fnv's chunked hashes exactly:
// signatures key persisted models, so the refactor to allocation-free
// hashing must not move a single bit.
func TestStreamingHasherMatchesReference(t *testing.T) {
	cases := [][]string{
		{},
		{""},
		{"sub"},
		{"sub", "HashJoin", "a=b", "", "tpl"},
		{"in", "Extract", "clicks_", "orders_"},
	}
	for _, chunks := range cases {
		var bs [][]byte
		h := newHasher()
		for _, c := range chunks {
			bs = append(bs, []byte(c))
			h.chunkString(c)
		}
		if want := hash64(bs...); Signature(h) != want {
			t.Fatalf("chunks %q: streaming %x != reference %x", chunks, uint64(h), uint64(want))
		}
	}
	for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		h := newHasher()
		h.chunkString("x")
		h.chunkU64(v)
		if want := hash64([]byte("x"), u64bytes(v)); Signature(h) != want {
			t.Fatalf("u64 %x: streaming %x != reference %x", v, uint64(h), uint64(want))
		}
	}
}

// The node-level signature functions must agree with a reference
// recomputation through hash64 on a representative tree.
func TestNodeSignaturesMatchReference(t *testing.T) {
	leaf1 := NewPhysical(PExtract)
	leaf1.InputTemplate = "clicks_"
	leaf2 := NewPhysical(PExtract)
	leaf2.InputTemplate = "users_"
	j := NewPhysical(PHashJoin, leaf1, leaf2)
	j.Pred = "a=b"
	j.Keys = []Column{"a", "b"}
	root := NewPhysical(POutput, j)

	for _, n := range []*Physical{leaf1, leaf2, j, root} {
		sigs := ComputeSignatures(n)
		if sigs.Subgraph != refSubgraph(n) {
			t.Fatalf("%v: subgraph mismatch", n.Op)
		}
		if sigs.Input != refInput(n) {
			t.Fatalf("%v: input mismatch", n.Op)
		}
		if sigs.Approx != refApprox(n) {
			t.Fatalf("%v: approx mismatch", n.Op)
		}
		if sigs.Operator != hash64([]byte("op"), []byte(n.Op.String())) {
			t.Fatalf("%v: operator mismatch", n.Op)
		}
	}
}

func refSubgraph(p *Physical) Signature {
	chunks := [][]byte{
		[]byte("sub"), []byte(p.Op.String()), []byte(p.Pred), []byte(p.UDF), []byte(p.InputTemplate),
	}
	for _, k := range p.Keys {
		chunks = append(chunks, []byte(k))
	}
	for _, c := range p.Children {
		chunks = append(chunks, u64bytes(uint64(refSubgraph(c))))
	}
	return hash64(chunks...)
}

func refInput(p *Physical) Signature {
	chunks := [][]byte{[]byte("in"), []byte(p.Op.String())}
	for _, t := range p.InputTemplates() {
		chunks = append(chunks, []byte(t))
	}
	return hash64(chunks...)
}

func refApprox(p *Physical) Signature {
	chunks := [][]byte{[]byte("apx"), []byte(p.Op.String())}
	for _, t := range p.InputTemplates() {
		chunks = append(chunks, []byte(t))
	}
	counts := p.LogicalOpCounts()
	for _, c := range counts {
		chunks = append(chunks, u64bytes(uint64(c)))
	}
	return hash64(chunks...)
}

// TestLogicalSignatureIdentity pins the template-cache key's contract:
// structurally identical logical plans (clones, re-decoded copies) share a
// signature, and every structural difference — operator, table, template,
// predicate, keys, key order, limit, shape — separates them.
func TestLogicalSignatureIdentity(t *testing.T) {
	base := func() *Logical {
		return NewOutput(NewAggregate(NewSelect(
			NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "user"))
	}
	sig := LogicalSignature(base())
	if got := LogicalSignature(base().Clone()); got != sig {
		t.Fatalf("clone signature differs: %x vs %x", got, sig)
	}
	variants := map[string]*Logical{
		"table":    NewOutput(NewAggregate(NewSelect(NewGet("clicks_2026_06_13", "clicks_"), "market=us"), "user")),
		"template": NewOutput(NewAggregate(NewSelect(NewGet("clicks_2026_06_12", "views_"), "market=us"), "user")),
		"pred":     NewOutput(NewAggregate(NewSelect(NewGet("clicks_2026_06_12", "clicks_"), "market=eu"), "user")),
		"keys":     NewOutput(NewAggregate(NewSelect(NewGet("clicks_2026_06_12", "clicks_"), "market=us"), "region")),
		"shape":    NewOutput(NewSelect(NewGet("clicks_2026_06_12", "clicks_"), "market=us")),
	}
	seen := map[Signature]string{sig: "base"}
	for name, v := range variants {
		s := LogicalSignature(v)
		if prev, dup := seen[s]; dup {
			t.Fatalf("variant %q collides with %q", name, prev)
		}
		seen[s] = name
	}
	// Key order matters (sort/group-by semantics), and adjacent
	// variable-length fields must not alias.
	a := NewSort(NewGet("t", "t_"), "x", "y")
	b := NewSort(NewGet("t", "t_"), "y", "x")
	if LogicalSignature(a) == LogicalSignature(b) {
		t.Fatal("key order ignored")
	}
}
