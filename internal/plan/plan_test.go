package plan

import (
	"testing"
)

// buildLogical returns Output(Aggregate(Select(Get))).
func buildLogical() *Logical {
	g := NewGet("clicks_2026_06_11", "clicks_")
	f := NewSelect(g, "market=us")
	a := NewAggregate(f, "user")
	return NewOutput(a)
}

func TestLogicalBuildersAndWalk(t *testing.T) {
	l := buildLogical()
	if l.Count() != 4 {
		t.Fatalf("Count = %d, want 4", l.Count())
	}
	leaves := l.Leaves()
	if len(leaves) != 1 || leaves[0].Table != "clicks_2026_06_11" {
		t.Fatalf("leaves = %v", leaves)
	}
	if got := l.InputTemplates(); len(got) != 1 || got[0] != "clicks_" {
		t.Fatalf("templates = %v", got)
	}
}

func TestLogicalClone(t *testing.T) {
	l := buildLogical()
	c := l.Clone()
	c.Children[0].Keys = append(c.Children[0].Keys, "extra")
	if len(l.Children[0].Keys) == len(c.Children[0].Keys) {
		t.Fatal("Clone aliases keys")
	}
	if l.String() == "" || c.String() == "" {
		t.Fatal("String should render")
	}
}

func TestLogicalString(t *testing.T) {
	l := NewJoin(NewGet("a", "a"), NewGet("b", "b"), "a.k=b.k", "k")
	s := l.String()
	if s != "Join[a.k=b.k](Get(a), Get(b))" {
		t.Fatalf("String = %q", s)
	}
}

// buildPhysical returns Output <- Reduce(HashAgg) <- Exchange <- Filter <- Extract.
func buildPhysical() *Physical {
	ex := NewPhysical(PExtract)
	ex.Table = "clicks_2026_06_11"
	ex.InputTemplate = "clicks_"
	ex.Partitions = 8
	ex.Stats = NodeStats{EstCard: 1e6, ActCard: 1.2e6, RowLength: 100}

	f := NewPhysical(PFilter, ex)
	f.Pred = "market=us"
	f.Stats = NodeStats{EstCard: 5e5, ActCard: 6e5, RowLength: 100}

	xc := NewPhysical(PExchange, f)
	xc.Keys = []Column{"user"}
	xc.Partitions = 16
	xc.Stats = f.Stats

	agg := NewPhysical(PHashAggregate, xc)
	agg.Keys = []Column{"user"}
	agg.Stats = NodeStats{EstCard: 1e4, ActCard: 1.5e4, RowLength: 40}

	out := NewPhysical(POutput, agg)
	out.Stats = agg.Stats
	return out
}

func TestPhysicalTraversals(t *testing.T) {
	p := buildPhysical()
	if p.Count() != 5 {
		t.Fatalf("Count = %d, want 5", p.Count())
	}
	if p.Depth() != 5 {
		t.Fatalf("Depth = %d, want 5", p.Depth())
	}
	if got := p.BaseCardinality(); got != 1.2e6 {
		t.Fatalf("BaseCardinality = %v", got)
	}
	if got := p.InputCardinality(true); got != 1e4 {
		t.Fatalf("InputCardinality(est) = %v", got)
	}
	if got := p.InputCardinality(false); got != 1.5e4 {
		t.Fatalf("InputCardinality(act) = %v", got)
	}
	if got := p.InputTemplates(); len(got) != 1 || got[0] != "clicks_" {
		t.Fatalf("templates = %v", got)
	}
}

func TestStages(t *testing.T) {
	p := buildPhysical()
	stages := Stages(p)
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
	// Leaf stage: Extract, Filter.
	if stages[0].PartitioningOp().Op != PExtract || len(stages[0].Ops) != 2 {
		t.Fatalf("stage0 = %v", stages[0].Ops)
	}
	// Upper stage: Exchange, HashAgg, Output.
	if stages[1].PartitioningOp().Op != PExchange || len(stages[1].Ops) != 3 {
		t.Fatalf("stage1 = %v", stages[1].Ops)
	}
}

func TestSetStagePartitions(t *testing.T) {
	p := buildPhysical()
	SetStagePartitions(p)
	// Filter inherits Extract's 8; HashAgg and Output inherit Exchange's 16.
	var filter, agg, out *Physical
	p.Walk(func(n *Physical) {
		switch n.Op {
		case PFilter:
			filter = n
		case PHashAggregate:
			agg = n
		case POutput:
			out = n
		}
	})
	if filter.Partitions != 8 {
		t.Fatalf("filter partitions = %d, want 8", filter.Partitions)
	}
	if agg.Partitions != 16 || out.Partitions != 16 {
		t.Fatalf("agg/out partitions = %d/%d, want 16", agg.Partitions, out.Partitions)
	}
}

func TestPipelineWidths(t *testing.T) {
	p := buildPhysical()
	widths := PipelineWidths(p, 4)
	p.Walk(func(n *Physical) {
		want := 4 // Extract stage has 8 partitions, Exchange stage 16: both clamp to 4
		if got := widths[n]; got != want {
			t.Fatalf("width(%v) = %d, want %d", n.Op, got, want)
		}
	})
	// Uncapped (max <= 0) widths are the raw stage partition counts.
	raw := PipelineWidths(p, 0)
	p.Walk(func(n *Physical) {
		st := StageOf(p)[n]
		if got := raw[n]; got != st.Partitions {
			t.Fatalf("uncapped width(%v) = %d, want %d", n.Op, got, st.Partitions)
		}
	})
}

func TestStageWidthClamps(t *testing.T) {
	cases := []struct {
		partitions, max, want int
	}{
		{16, 4, 4},
		{2, 4, 2},
		{0, 4, 1},  // hand-built plans without partition counts run sequentially
		{-3, 8, 1}, // negative counts are treated as unset
		{16, 0, 16},
		{1, 1, 1},
	}
	for _, c := range cases {
		st := &Stage{Partitions: c.partitions}
		if got := st.Width(c.max); got != c.want {
			t.Fatalf("Width(p=%d, max=%d) = %d, want %d", c.partitions, c.max, got, c.want)
		}
	}
}

func TestStagesOfJoinPlan(t *testing.T) {
	l := NewPhysical(PExtract)
	l.Partitions = 4
	r := NewPhysical(PExtract)
	r.Partitions = 4
	xl := NewPhysical(PExchange, l)
	xl.Partitions = 8
	xr := NewPhysical(PExchange, r)
	xr.Partitions = 8
	j := NewPhysical(PMergeJoin, xl, xr)
	root := NewPhysical(POutput, j)
	stages := Stages(root)
	// Stages: leaf-l, leaf-r, xl(+join+output), xr.
	if len(stages) != 4 {
		t.Fatalf("stages = %d, want 4", len(stages))
	}
	som := StageOf(root)
	if som[j] != som[xl] {
		t.Fatal("join should share the left exchange's stage")
	}
	if som[root] != som[j] {
		t.Fatal("output should share the join's stage")
	}
}

func TestSignaturesDistinguishSubgraphs(t *testing.T) {
	p1 := buildPhysical()
	p2 := buildPhysical()
	s1 := ComputeSignatures(p1)
	s2 := ComputeSignatures(p2)
	if s1 != s2 {
		t.Fatal("identical plans must share signatures")
	}

	// Change a descendant's predicate: subgraph changes, input unchanged.
	p2.Children[0].Children[0].Children[0].Pred = "market=eu"
	s2 = ComputeSignatures(p2)
	if s1.Subgraph == s2.Subgraph {
		t.Fatal("subgraph signature should change with predicate")
	}
	if s1.Input != s2.Input {
		t.Fatal("input signature should not depend on predicates")
	}
	if s1.Operator != s2.Operator {
		t.Fatal("operator signature should not change")
	}
}

func TestApproxSignatureIgnoresOrder(t *testing.T) {
	// Filter(Project(Get)) vs Project(Filter(Get)) with the same root op
	// above them must share the approx signature but not the subgraph one.
	mk := func(inner, outer PhysicalOp) *Physical {
		leaf := NewPhysical(PExtract)
		leaf.InputTemplate = "t_"
		a := NewPhysical(inner, leaf)
		b := NewPhysical(outer, a)
		return NewPhysical(PHashAggregate, b)
	}
	x := mk(PFilter, PProject)
	y := mk(PProject, PFilter)
	if ApproxSignature(x) != ApproxSignature(y) {
		t.Fatal("approx signature should ignore operator order")
	}
	if SubgraphSignature(x) == SubgraphSignature(y) {
		t.Fatal("subgraph signature should depend on operator order")
	}
}

func TestApproxSignatureUsesLogicalOps(t *testing.T) {
	// HashJoin vs MergeJoin below the root map to the same logical Join,
	// so approx signatures match while subgraph signatures differ.
	mk := func(join PhysicalOp) *Physical {
		l := NewPhysical(PExtract)
		l.InputTemplate = "a_"
		r := NewPhysical(PExtract)
		r.InputTemplate = "b_"
		j := NewPhysical(join, l, r)
		j.Keys = []Column{"k"}
		return NewPhysical(POutput, j)
	}
	x, y := mk(PHashJoin), mk(PMergeJoin)
	if ApproxSignature(x) != ApproxSignature(y) {
		t.Fatal("approx signature should treat physical join variants alike")
	}
	if SubgraphSignature(x) == SubgraphSignature(y) {
		t.Fatal("subgraph signature should distinguish physical join variants")
	}
}

func TestOperatorProperties(t *testing.T) {
	if !PSort.Blocking() || PFilter.Blocking() {
		t.Fatal("blocking classification wrong")
	}
	if PHashJoin.Logical() != LJoin || PExtract.Logical() != LGet {
		t.Fatal("logical mapping wrong")
	}
	if len(AllPhysicalOps()) != NumPhysicalOps {
		t.Fatal("AllPhysicalOps length")
	}
	for _, op := range AllPhysicalOps() {
		if op.String() == "UnknownPhysical" {
			t.Fatalf("missing String for %d", op)
		}
	}
	for i := 0; i < NumLogicalOps; i++ {
		if LogicalOp(i).String() == "UnknownLogical" {
			t.Fatalf("missing String for logical %d", i)
		}
	}
}

func TestPhysicalCloneAndSummary(t *testing.T) {
	p := buildPhysical()
	c := p.Clone()
	c.Children[0].Partitions = 999
	if p.Children[0].Partitions == 999 {
		t.Fatal("Clone aliases children")
	}
	s := Summarize(p)
	if s.NumOps != 5 || s.NumStages != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Operators["Extract"] != 1 {
		t.Fatalf("operators = %v", s.Operators)
	}
}

func TestTotalCosts(t *testing.T) {
	p := buildPhysical()
	p.Walk(func(n *Physical) {
		n.ExclusiveCostEst = 2
		n.ExclusiveActual = 3
	})
	if p.TotalCostEst() != 10 {
		t.Fatalf("TotalCostEst = %v", p.TotalCostEst())
	}
	if p.TotalActual() != 15 {
		t.Fatalf("TotalActual = %v", p.TotalActual())
	}
}
