package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// JSON wire format for logical plans — the serving API's query
// representation (cmd/cleoserve's POST /v1/query body carries one). A node
// is an object with an "op" name and operator-specific fields:
//
//	{"op": "Output", "children": [
//	  {"op": "Aggregate", "keys": ["user"], "children": [
//	    {"op": "Select", "pred": "market=us", "children": [
//	      {"op": "Get", "table": "clicks_2026_06_12", "template": "clicks_"}]}]}]}
//
// Unmarshalling validates operator names and arity, so a decoded plan is
// safe to hand straight to the optimizer.

// logicalWire is the JSON shape of one Logical node.
type logicalWire struct {
	Op       string     `json:"op"`
	Table    string     `json:"table,omitempty"`
	Template string     `json:"template,omitempty"`
	Pred     string     `json:"pred,omitempty"`
	Keys     []Column   `json:"keys,omitempty"`
	UDF      string     `json:"udf,omitempty"`
	N        int        `json:"n,omitempty"`
	Children []*Logical `json:"children,omitempty"`
}

// ParseLogicalOp is the inverse of LogicalOp.String.
func ParseLogicalOp(s string) (LogicalOp, error) {
	for op := LogicalOp(0); op < numLogicalOps; op++ {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("plan: unknown logical operator %q", s)
}

// MarshalJSON encodes the subtree in the wire format.
func (l *Logical) MarshalJSON() ([]byte, error) {
	return json.Marshal(logicalWire{
		Op:       l.Op.String(),
		Table:    l.Table,
		Template: l.InputTemplate,
		Pred:     l.Pred,
		Keys:     l.Keys,
		UDF:      l.UDF,
		N:        l.N,
		Children: l.Children,
	})
}

// UnmarshalJSON decodes the wire format and validates the node. Unknown
// fields are rejected — a misspelled "pred" must not silently plan a
// different query. (An enclosing decoder's DisallowUnknownFields does not
// propagate into custom unmarshallers, so strictness lives here.)
func (l *Logical) UnmarshalJSON(data []byte) error {
	var w logicalWire
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return err
	}
	op, err := ParseLogicalOp(w.Op)
	if err != nil {
		return err
	}
	*l = Logical{
		Op:            op,
		Children:      w.Children,
		Table:         w.Table,
		InputTemplate: w.Template,
		Pred:          w.Pred,
		Keys:          w.Keys,
		UDF:           w.UDF,
		N:             w.N,
	}
	return l.validateNode()
}

// validateNode checks this node's arity and required fields (children are
// validated by their own UnmarshalJSON calls).
func (l *Logical) validateNode() error {
	arityErr := func(want string) error {
		return fmt.Errorf("plan: %s wants %s children, got %d", l.Op, want, len(l.Children))
	}
	switch l.Op {
	case LGet:
		if len(l.Children) != 0 {
			return arityErr("no")
		}
		if l.Table == "" {
			return fmt.Errorf("plan: Get needs a table name")
		}
	case LJoin:
		if len(l.Children) != 2 {
			return arityErr("2")
		}
		if len(l.Keys) == 0 {
			// A keyless equi-join hashes every row into one bucket and
			// degenerates to an O(n²) cross join — silently, since the
			// key hash of zero columns is the seed constant.
			return fmt.Errorf("plan: Join needs at least one equi-join key column")
		}
	case LUnion:
		if len(l.Children) < 1 {
			return arityErr("≥1")
		}
	case LTopN:
		if len(l.Children) != 1 {
			return arityErr("1")
		}
		if l.N <= 0 {
			return fmt.Errorf("plan: TopN needs n > 0, got %d", l.N)
		}
	default: // Select, Project, Aggregate, Sort, Process, Output
		if len(l.Children) != 1 {
			return arityErr("1")
		}
	}
	for _, c := range l.Children {
		if c == nil {
			return fmt.Errorf("plan: %s has a null child", l.Op)
		}
	}
	return nil
}

// Validate re-checks arity and required fields over the whole subtree —
// for plans built programmatically rather than decoded from JSON. It
// validates pre-order so a nil child is reported, not recursed into.
func (l *Logical) Validate() error {
	if err := l.validateNode(); err != nil {
		return err
	}
	for _, c := range l.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}
