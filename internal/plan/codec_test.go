package plan

import (
	"encoding/json"
	"strings"
	"testing"
)

// allOpsPlan builds one plan containing every logical operator.
func allOpsPlan() *Logical {
	join := NewJoin(
		NewSelect(NewGet("clicks_2026_06_12", "clicks_"), "market=us"),
		NewGet("users_2026_06_12", "users_"),
		"clicks.user=users.id", "user")
	union := NewUnion(join, NewGet("clicks_2026_06_11", "clicks_"))
	return NewOutput(NewTopN(NewSort(NewAggregate(NewProcess(NewProject(
		union, "user", "market"), "udf1"), "user"), "user"), 10, "user"))
}

// TestJSONRoundTripAllOperators round-trips a plan containing all ten
// logical operators and checks structural identity.
func TestJSONRoundTripAllOperators(t *testing.T) {
	q := allOpsPlan()
	// Confirm every operator kind is present.
	var present [NumLogicalOps]bool
	q.Walk(func(n *Logical) { present[n.Op] = true })
	for op := LogicalOp(0); op < numLogicalOps; op++ {
		if !present[op] {
			t.Fatalf("test plan misses operator %s", op)
		}
	}

	data, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	var got Logical
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != q.String() {
		t.Fatalf("round trip changed plan:\n got %s\nwant %s", got.String(), q.String())
	}
	// Field-level spot checks beyond String coverage.
	if got.Count() != q.Count() {
		t.Fatalf("count %d != %d", got.Count(), q.Count())
	}
	var topn *Logical
	got.Walk(func(n *Logical) {
		if n.Op == LTopN {
			topn = n
		}
	})
	if topn == nil || topn.N != 10 {
		t.Fatalf("TopN.N lost: %+v", topn)
	}
	if tmpl := got.InputTemplates(); len(tmpl) != 2 {
		t.Fatalf("templates = %v", tmpl)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	// A second marshal must be byte-stable (deterministic encoder).
	data2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("re-marshal not stable")
	}
}

// TestJSONRoundTripEachOperator round-trips a minimal plan per operator so
// a codec regression names the operator it broke.
func TestJSONRoundTripEachOperator(t *testing.T) {
	leaf := func() *Logical { return NewGet("t_2026_06_12", "t_") }
	cases := map[string]*Logical{
		"Get":       leaf(),
		"Select":    NewSelect(leaf(), "a=1"),
		"Project":   NewProject(leaf(), "a", "b"),
		"Join":      NewJoin(leaf(), leaf(), "l.a=r.a", "a"),
		"Aggregate": NewAggregate(leaf(), "a"),
		"Sort":      NewSort(leaf(), "a"),
		"TopN":      NewTopN(leaf(), 7, "a"),
		"Union":     NewUnion(leaf(), leaf(), leaf()),
		"Process":   NewProcess(leaf(), "udf"),
		"Output":    NewOutput(leaf()),
	}
	for name, q := range cases {
		data, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), `"op":"`+name+`"`) {
			t.Fatalf("%s: wire %s misses op name", name, data)
		}
		var got Logical
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.String() != q.String() {
			t.Fatalf("%s: got %s want %s", name, got.String(), q.String())
		}
	}
}

func TestJSONDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"unknown op":       `{"op":"Scan"}`,
		"get with child":   `{"op":"Get","table":"t","children":[{"op":"Get","table":"u"}]}`,
		"get sans table":   `{"op":"Get"}`,
		"join arity":       `{"op":"Join","children":[{"op":"Get","table":"t"}]}`,
		"join keyless":     `{"op":"Join","pred":"a.k=b.k","children":[{"op":"Get","table":"a"},{"op":"Get","table":"b"}]}`,
		"select arity":     `{"op":"Select"}`,
		"union empty":      `{"op":"Union"}`,
		"topn zero":        `{"op":"TopN","children":[{"op":"Get","table":"t"}]}`,
		"topn child count": `{"op":"TopN","n":3}`,
		"null child":       `{"op":"Output","children":[null]}`,
		"not json":         `{"op":`,
		"misspelled field": `{"op":"Select","predicate":"market=us","children":[{"op":"Get","table":"t"}]}`,
		"nested unknown":   `{"op":"Output","children":[{"op":"Get","table":"t","tmplate":"t_"}]}`,
	}
	for name, in := range cases {
		var got Logical
		if err := json.Unmarshal([]byte(in), &got); err == nil {
			t.Fatalf("%s: decode of %s succeeded, want error", name, in)
		}
	}
}

func TestParseLogicalOp(t *testing.T) {
	for op := LogicalOp(0); op < numLogicalOps; op++ {
		got, err := ParseLogicalOp(op.String())
		if err != nil || got != op {
			t.Fatalf("ParseLogicalOp(%s) = %v, %v", op, got, err)
		}
	}
	if _, err := ParseLogicalOp("UnknownLogical"); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateProgrammaticPlan(t *testing.T) {
	if err := allOpsPlan().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewOutput(nil)
	bad.Children = []*Logical{nil}
	if err := bad.Validate(); err == nil {
		t.Fatal("nil child must fail validation")
	}
	if err := (&Logical{Op: LJoin, Children: []*Logical{NewGet("t", "t_")}}).Validate(); err == nil {
		t.Fatal("join arity must fail validation")
	}
	// A keyless equi-join degenerates to a silent O(n²) cross join (the
	// zero-column key hash is the seed constant for every row), so it must
	// be rejected at validation, not discovered at execution.
	keyless := &Logical{Op: LJoin, Pred: "a.k=b.k",
		Children: []*Logical{NewGet("a", "a_"), NewGet("b", "b_")}}
	if err := keyless.Validate(); err == nil {
		t.Fatal("keyless join must fail validation")
	}
}
