package cascades

import (
	"math"
	"math/rand"

	"cleo/internal/plan"
)

// SamplingStrategy enumerates the partition-exploration sampling strategies
// the paper compares (Section 5.3, Figure 17).
type SamplingStrategy int

const (
	// Geometric samples partition counts in a geometrically increasing
	// sequence x_{i+1} = ceil(x_i + x_i/s): dense where costs change fast.
	Geometric SamplingStrategy = iota
	// Uniform samples evenly spaced counts.
	Uniform
	// Random samples uniformly at random.
	Random
	// Exhaustive probes every count from 1 to the cap.
	Exhaustive
)

// String names the strategy.
func (s SamplingStrategy) String() string {
	switch s {
	case Geometric:
		return "Geometric"
	case Uniform:
		return "Uniform"
	case Random:
		return "Random"
	case Exhaustive:
		return "Exhaustive"
	default:
		return "Unknown"
	}
}

// SamplingChooser performs partition optimization by probing the cost model
// at sampled partition counts and keeping the count with the lowest total
// stage cost.
type SamplingChooser struct {
	// Cost is the model probed per (operator, count).
	Cost Coster
	// Strategy selects the candidate grid.
	Strategy SamplingStrategy
	// Samples bounds the number of candidates for Uniform/Random.
	Samples int
	// SkipCoefficient is the geometric strategy's s (paper: sample x_{i+1}
	// = ceil(x_i + x_i/s); larger s → denser grid).
	SkipCoefficient float64
	// Seed drives the Random strategy.
	Seed int64
}

// Candidates returns the partition counts the strategy would probe for the
// given cap.
func (c *SamplingChooser) Candidates(maxPartitions int) []int {
	if maxPartitions < 1 {
		maxPartitions = 1
	}
	switch c.Strategy {
	case Exhaustive:
		out := make([]int, maxPartitions)
		for i := range out {
			out[i] = i + 1
		}
		return out
	case Uniform:
		n := c.Samples
		if n < 2 {
			n = 2
		}
		var out []int
		last := 0
		for i := 0; i < n; i++ {
			p := 1 + int(float64(i)*float64(maxPartitions-1)/float64(n-1))
			if p != last {
				out = append(out, p)
				last = p
			}
		}
		return out
	case Random:
		n := c.Samples
		if n < 1 {
			n = 1
		}
		rng := rand.New(rand.NewSource(c.Seed))
		seen := map[int]bool{}
		var out []int
		for len(out) < n {
			p := 1 + rng.Intn(maxPartitions)
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
			if len(seen) >= maxPartitions {
				break
			}
		}
		return out
	default: // Geometric
		s := c.SkipCoefficient
		if s <= 0 {
			s = 2
		}
		var out []int
		x := 1
		out = append(out, 1)
		if maxPartitions >= 2 {
			x = 2
			out = append(out, 2)
		}
		for x < maxPartitions {
			next := int(math.Ceil(float64(x) + float64(x)/s))
			if next <= x {
				next = x + 1
			}
			if next > maxPartitions {
				break
			}
			out = append(out, next)
			x = next
		}
		return out
	}
}

// ChooseStagePartitions implements PartitionChooser: it evaluates the total
// stage cost at every candidate count and returns the best, along with the
// number of cost-model look-ups spent.
func (c *SamplingChooser) ChooseStagePartitions(ops []*plan.Physical, maxPartitions int) (int, int) {
	if len(ops) == 0 {
		return 1, 0
	}
	saved := make([]int, len(ops))
	for i, op := range ops {
		saved[i] = op.Partitions
	}
	defer func() {
		for i, op := range ops {
			op.Partitions = saved[i]
		}
	}()

	bestP, bestCost, lookups := saved[0], math.Inf(1), 0
	for _, p := range c.Candidates(maxPartitions) {
		for _, op := range ops {
			op.Partitions = p
		}
		var total float64
		for _, op := range ops {
			total += c.Cost.OperatorCost(op)
			lookups++
		}
		if total < bestCost {
			bestCost = total
			bestP = p
		}
	}
	return bestP, lookups
}

// StageCostAt evaluates the total cost of a stage's operators at a given
// partition count without permanently modifying them. Exposed for the
// partition-exploration experiments (Figure 17).
func StageCostAt(cost Coster, ops []*plan.Physical, p int) float64 {
	saved := make([]int, len(ops))
	for i, op := range ops {
		saved[i] = op.Partitions
		op.Partitions = p
	}
	var total float64
	for _, op := range ops {
		total += cost.OperatorCost(op)
	}
	for i, op := range ops {
		op.Partitions = saved[i]
	}
	return total
}
