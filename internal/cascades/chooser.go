package cascades

import (
	"math"
	"math/rand"
	"sync"

	"cleo/internal/plan"
)

// gridBuf recycles one candidate grid: the (operator, count) variant
// nodes, their pointers, and the costs written by the batch coster.
type gridBuf struct {
	variants []plan.Physical
	refs     []*plan.Physical
	costs    []float64
}

var gridPool = sync.Pool{New: func() any { return new(gridBuf) }}

// materialize builds shallow per-count copies of every operator (children
// shared — no cost input reads a child's partition count, so a variant
// prices exactly like the mutated-in-place original). Layout is op-major:
// refs[oi*len(counts)+ci] is operator oi at counts[ci], so one operator's
// variants are contiguous and a batch coster can reuse subtree work across
// them.
func (g *gridBuf) materialize(ops []*plan.Physical, counts []int) {
	n := len(ops) * len(counts)
	if cap(g.variants) < n {
		g.variants = make([]plan.Physical, n)
		g.refs = make([]*plan.Physical, n)
		g.costs = make([]float64, n)
	}
	g.variants = g.variants[:n]
	g.refs = g.refs[:n]
	g.costs = g.costs[:n]
	idx := 0
	for _, op := range ops {
		for _, p := range counts {
			g.variants[idx] = *op
			g.variants[idx].Partitions = p
			g.refs[idx] = &g.variants[idx]
			idx++
		}
	}
}

// SamplingStrategy enumerates the partition-exploration sampling strategies
// the paper compares (Section 5.3, Figure 17).
type SamplingStrategy int

const (
	// Geometric samples partition counts in a geometrically increasing
	// sequence x_{i+1} = ceil(x_i + x_i/s): dense where costs change fast.
	Geometric SamplingStrategy = iota
	// Uniform samples evenly spaced counts.
	Uniform
	// Random samples uniformly at random.
	Random
	// Exhaustive probes every count from 1 to the cap.
	Exhaustive
)

// String names the strategy.
func (s SamplingStrategy) String() string {
	switch s {
	case Geometric:
		return "Geometric"
	case Uniform:
		return "Uniform"
	case Random:
		return "Random"
	case Exhaustive:
		return "Exhaustive"
	default:
		return "Unknown"
	}
}

// SamplingChooser performs partition optimization by probing the cost model
// at sampled partition counts and keeping the count with the lowest total
// stage cost.
type SamplingChooser struct {
	// Cost is the model probed per (operator, count).
	Cost Coster
	// Strategy selects the candidate grid.
	Strategy SamplingStrategy
	// Samples bounds the number of candidates for Uniform/Random.
	Samples int
	// SkipCoefficient is the geometric strategy's s (paper: sample x_{i+1}
	// = ceil(x_i + x_i/s); larger s → denser grid).
	SkipCoefficient float64
	// Seed drives the Random strategy.
	Seed int64
}

// Candidates returns the partition counts the strategy would probe for the
// given cap.
func (c *SamplingChooser) Candidates(maxPartitions int) []int {
	if maxPartitions < 1 {
		maxPartitions = 1
	}
	switch c.Strategy {
	case Exhaustive:
		out := make([]int, maxPartitions)
		for i := range out {
			out[i] = i + 1
		}
		return out
	case Uniform:
		n := c.Samples
		if n < 2 {
			n = 2
		}
		var out []int
		last := 0
		for i := 0; i < n; i++ {
			p := 1 + int(float64(i)*float64(maxPartitions-1)/float64(n-1))
			if p != last {
				out = append(out, p)
				last = p
			}
		}
		return out
	case Random:
		n := c.Samples
		if n < 1 {
			n = 1
		}
		rng := rand.New(rand.NewSource(c.Seed))
		seen := map[int]bool{}
		var out []int
		for len(out) < n {
			p := 1 + rng.Intn(maxPartitions)
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
			if len(seen) >= maxPartitions {
				break
			}
		}
		return out
	default: // Geometric
		s := c.SkipCoefficient
		if s <= 0 {
			s = 2
		}
		var out []int
		x := 1
		out = append(out, 1)
		if maxPartitions >= 2 {
			x = 2
			out = append(out, 2)
		}
		for x < maxPartitions {
			next := int(math.Ceil(float64(x) + float64(x)/s))
			if next <= x {
				next = x + 1
			}
			if next > maxPartitions {
				break
			}
			out = append(out, next)
			x = next
		}
		return out
	}
}

// ChooseStagePartitions implements PartitionChooser: it evaluates the total
// stage cost at every candidate count and returns the best, along with the
// number of cost-model look-ups spent.
//
// With a batch-capable coster, the whole candidate grid — every (operator,
// count) variant — is materialized and priced in ONE CostBatch call; the
// scalar loop below only remains for costers without a batch path.
func (c *SamplingChooser) ChooseStagePartitions(ops []*plan.Physical, maxPartitions int) (int, int) {
	if len(ops) == 0 {
		return 1, 0
	}
	counts := c.Candidates(maxPartitions)
	if _, ok := c.Cost.(BatchCoster); ok {
		return c.chooseBatch(ops, counts)
	}
	saved := make([]int, len(ops))
	for i, op := range ops {
		saved[i] = op.Partitions
	}
	defer func() {
		for i, op := range ops {
			op.Partitions = saved[i]
		}
	}()

	bestP, bestCost, lookups := saved[0], math.Inf(1), 0
	for _, p := range counts {
		for _, op := range ops {
			op.Partitions = p
		}
		var total float64
		for _, op := range ops {
			total += c.Cost.OperatorCost(op)
			lookups++
		}
		if total < bestCost {
			bestCost = total
			bestP = p
		}
	}
	return bestP, lookups
}

// chooseBatch materializes every (operator, candidate count) variant into
// a pooled grid, prices the whole grid in one CostBatch call, and reduces
// per-count totals. The source operators are never mutated. Results match
// the scalar loop exactly: counts are scanned in the same order with the
// same per-count summation order, so ties break identically.
func (c *SamplingChooser) chooseBatch(ops []*plan.Physical, counts []int) (int, int) {
	g := gridPool.Get().(*gridBuf)
	g.materialize(ops, counts)
	costBatch(c.Cost, g.refs, g.costs)

	bestP, bestCost := ops[0].Partitions, math.Inf(1)
	for ci, p := range counts {
		var total float64
		for oi := range ops {
			total += g.costs[oi*len(counts)+ci]
		}
		if total < bestCost {
			bestCost = total
			bestP = p
		}
	}
	lookups := len(g.refs)
	gridPool.Put(g)
	return bestP, lookups
}

// StageCostAt evaluates the total cost of a stage's operators at a given
// partition count without permanently modifying them. Exposed for the
// partition-exploration experiments (Figure 17).
func StageCostAt(cost Coster, ops []*plan.Physical, p int) float64 {
	counts := [1]int{p}
	var totals [1]float64
	stageCostsInto(cost, ops, counts[:], totals[:])
	return totals[0]
}

// StageCostsAt evaluates the total stage cost at each candidate count with
// one batched pricing call (falling back to scalar calls for costers
// without a batch path). The operators are never mutated.
func StageCostsAt(cost Coster, ops []*plan.Physical, counts []int) []float64 {
	totals := make([]float64, len(counts))
	stageCostsInto(cost, ops, counts, totals)
	return totals
}

func stageCostsInto(cost Coster, ops []*plan.Physical, counts []int, totals []float64) {
	g := gridPool.Get().(*gridBuf)
	g.materialize(ops, counts)
	costBatch(cost, g.refs, g.costs)
	for ci := range counts {
		for oi := range ops {
			totals[ci] += g.costs[oi*len(counts)+ci]
		}
	}
	gridPool.Put(g)
}
