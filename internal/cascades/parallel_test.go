package cascades

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cleo/internal/costmodel"
	"cleo/internal/plan"
)

// multiJoinQuery builds a three-way join with aggregation — enough
// independent subtrees (join sides × hash/merge requirements) to exercise
// real fan-out in the parallel search.
func multiJoinQuery() *plan.Logical {
	clicks := plan.NewSelect(plan.NewGet("clicks_d1", "clicks_"), "recent")
	users := plan.NewGet("users_d1", "users_")
	parts := plan.NewGet("parts_d1", "parts_")
	j1 := plan.NewJoin(clicks, users, "c.user=u.id", "user")
	j2 := plan.NewJoin(j1, parts, "c.pkey=p.pkey", "pkey")
	a := plan.NewAggregate(j2, "region")
	return plan.NewOutput(plan.NewSort(a, "region"))
}

func unionQuery() *plan.Logical {
	a := plan.NewAggregate(plan.NewGet("clicks_d1", "clicks_"), "user")
	b := plan.NewAggregate(plan.NewGet("users_d1", "users_"), "user")
	u := plan.NewUnion(a, b)
	return plan.NewOutput(plan.NewTopN(u, 10, "score"))
}

func parallelTestQueries() map[string]*plan.Logical {
	return map[string]*plan.Logical{
		"simple":    simpleQuery(),
		"join":      joinQuery(),
		"multijoin": multiJoinQuery(),
		"union":     unionQuery(),
	}
}

// TestParallelMatchesSequential pins the tentpole invariant: a parallel
// search returns plans bit-identical (string, cost, look-ups, memo size)
// to the sequential search, for both the plain and the resource-aware
// optimizer.
func TestParallelMatchesSequential(t *testing.T) {
	for name, q := range parallelTestQueries() {
		for _, ra := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/ra=%v", name, ra), func(t *testing.T) {
				mk := func(par int) *Optimizer {
					var o *Optimizer
					if ra {
						o = resourceAwareOptimizer(testCatalog())
					} else {
						o = defaultOptimizer(testCatalog())
					}
					o.Parallelism = par
					return o
				}
				seq, err := mk(1).Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				par, err := mk(8).Optimize(q)
				if err != nil {
					t.Fatal(err)
				}
				if seq.Plan.String() != par.Plan.String() {
					t.Fatalf("plans differ:\nseq: %s\npar: %s", seq.Plan, par.Plan)
				}
				if seq.Cost != par.Cost {
					t.Fatalf("costs differ: seq %v, par %v", seq.Cost, par.Cost)
				}
				if seq.ModelLookups != par.ModelLookups {
					t.Fatalf("lookups differ: seq %d, par %d", seq.ModelLookups, par.ModelLookups)
				}
				if seq.MemoGroups != par.MemoGroups {
					t.Fatalf("memo groups differ: seq %d, par %d", seq.MemoGroups, par.MemoGroups)
				}
			})
		}
	}
}

// TestSharedOptimizerConcurrentUse drives many concurrent Optimize calls
// through ONE shared Optimizer value with unresolved defaults, pinning the
// receiver-mutation fix: defaults resolve into per-run locals, so the
// shared config is never written and all runs agree.
func TestSharedOptimizerConcurrentUse(t *testing.T) {
	o := &Optimizer{
		Catalog:       testCatalog(),
		Cost:          costmodel.Tuned{},
		ResourceAware: true,
		Chooser:       &SamplingChooser{Cost: costmodel.Tuned{}, Strategy: Geometric, SkipCoefficient: 2},
		JobSeed:       1,
		Parallelism:   4,
		// MaxPartitions deliberately 0: the default must resolve per run
		// without being written back.
	}
	want, err := o.Optimize(multiJoinQuery())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := o.Optimize(multiJoinQuery())
			if err != nil {
				errs[i] = err
				return
			}
			if res.Plan.String() != want.Plan.String() || res.Cost != want.Cost {
				errs[i] = fmt.Errorf("concurrent run diverged: %s", res.Plan)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if o.MaxPartitions != 0 {
		t.Fatalf("Optimize wrote MaxPartitions=%d back into the shared config", o.MaxPartitions)
	}
}

// TestOptimizeAllMatchesOptimize pins that the shared-pool batch API
// returns exactly what per-query Optimize calls return, in order.
func TestOptimizeAllMatchesOptimize(t *testing.T) {
	queries := []*plan.Logical{simpleQuery(), joinQuery(), multiJoinQuery(), unionQuery()}
	o := resourceAwareOptimizer(testCatalog())
	o.Parallelism = 4
	batch, err := o.OptimizeAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("got %d results, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		single, err := o.Optimize(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Plan.String() != single.Plan.String() || batch[i].Cost != single.Cost {
			t.Fatalf("query %d: batch plan diverges from standalone optimize", i)
		}
	}
}

// TestOptimizeAllPropagatesError pins the error contract: a failing query
// (unknown table) fails the batch.
func TestOptimizeAllPropagatesError(t *testing.T) {
	bad := plan.NewOutput(plan.NewGet("no_such_table", "none_"))
	o := defaultOptimizer(testCatalog())
	o.Parallelism = 4
	if _, err := o.OptimizeAll([]*plan.Logical{simpleQuery(), bad}); err == nil {
		t.Fatal("expected error for unknown table in batch")
	}
}

// panickyCoster panics when pricing filters — a stand-in for an invariant
// violation inside a cost model (e.g. a malformed feature row).
type panickyCoster struct{ inner Coster }

func (p panickyCoster) Name() string { return "panicky" }
func (p panickyCoster) OperatorCost(n *plan.Physical) float64 {
	if n.Op == plan.PFilter {
		panic("cost model invariant violated")
	}
	return p.inner.OperatorCost(n)
}

// TestParallelSearchContainsPanics pins the failure mode of a panicking
// cost model under the parallel search: the panic surfaces on the caller's
// goroutine (where a per-request recover can contain it) instead of
// crashing the process from a bare worker goroutine or deadlocking
// siblings waiting on the dead task's future.
func TestParallelSearchContainsPanics(t *testing.T) {
	for _, par := range []int{1, 8} {
		o := &Optimizer{
			Catalog:     testCatalog(),
			Cost:        panickyCoster{inner: costmodel.Tuned{}},
			JobSeed:     1,
			Parallelism: par,
		}
		done := make(chan any, 1)
		go func() {
			defer func() { done <- recover() }()
			_, _ = o.Optimize(multiJoinQuery())
			done <- nil
		}()
		select {
		case r := <-done:
			if r == nil {
				t.Fatalf("par=%d: expected the cost-model panic to reach the caller", par)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("par=%d: optimize deadlocked after a worker panic", par)
		}
	}
}

// TestMemoExploreIdempotent verifies ExploreAll is a run-once pre-pass:
// the first call grows the memo, every later call (including concurrent
// ones, as template snapshots are shared across searches) is a no-op that
// leaves the expression sets untouched.
func TestMemoExploreIdempotent(t *testing.T) {
	m := NewMemo(multiJoinQuery())
	fires := m.ExploreAll(DefaultRules(), 0)
	if len(fires) == 0 {
		t.Fatal("first ExploreAll fired no rules on a two-join plan")
	}
	groups := m.NumGroups()
	counts := make([]int, groups)
	for i := 0; i < groups; i++ {
		counts[i] = len(m.Group(GroupID(i)).Exprs)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if again := m.ExploreAll(DefaultRules(), 0); again != nil {
				t.Error("repeat ExploreAll reported rule fires")
			}
		}()
	}
	wg.Wait()
	if m.NumGroups() != groups {
		t.Fatalf("repeat ExploreAll grew the memo: %d -> %d groups", groups, m.NumGroups())
	}
	for i := 0; i < groups; i++ {
		if got := len(m.Group(GroupID(i)).Exprs); got != counts[i] {
			t.Fatalf("group %d expr count changed: %d -> %d", i, counts[i], got)
		}
	}
}
