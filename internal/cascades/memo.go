package cascades

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"cleo/internal/plan"
)

// GroupID identifies a memo group.
type GroupID int

// Expr is one logical expression in a group: an operator with child groups.
type Expr struct {
	Op    plan.LogicalOp
	Child []GroupID

	// Operator metadata carried from the logical plan.
	Table         string
	InputTemplate string
	Pred          string
	Keys          []plan.Column
	UDF           string
	N             int
}

// fingerprint renders the expression for duplicate detection within a
// group. It builds the string in one strings.Builder pass — the previous
// += concatenation re-copied the prefix per key and per child, going
// quadratic on wide expressions.
func (e *Expr) fingerprint() string {
	var b strings.Builder
	b.Grow(32 + 8*len(e.Keys) + 4*len(e.Child))
	fmt.Fprintf(&b, "%v|%s|%s|%s|%s|%d|", e.Op, e.Table, e.InputTemplate, e.Pred, e.UDF, e.N)
	for _, k := range e.Keys {
		b.WriteString(string(k))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, c := range e.Child {
		fmt.Fprintf(&b, "%d.", c)
	}
	return b.String()
}

// Group is a set of logically equivalent expressions. Exprs and seen are
// written only during copy-in and the sequential ExploreAll pre-pass, both
// of which complete before the parallel search starts, so concurrent
// group-optimization tasks read Exprs freely.
type Group struct {
	ID    GroupID
	Exprs []*Expr

	seen map[string]bool
}

// Memo is the Cascades search space: groups of equivalent expressions.
// Group registration is guarded so diagnostics may read group counts while
// exploration grows the memo.
type Memo struct {
	mu     sync.RWMutex
	groups []*Group
	root   GroupID

	// explored flips when ExploreAll completes (or is skipped); it makes
	// exploration idempotent, so template snapshots — shared read-only
	// across searches — can never be re-explored.
	explored atomic.Bool
}

// NewMemo builds a memo from a logical plan tree: one group per node
// (Cascades' "copy-in").
func NewMemo(l *plan.Logical) *Memo {
	m := &Memo{}
	m.root = m.copyIn(l)
	return m
}

// Root returns the root group's ID.
func (m *Memo) Root() GroupID { return m.root }

// Group returns the group with the given ID.
func (m *Memo) Group(id GroupID) *Group {
	m.mu.RLock()
	g := m.groups[id]
	m.mu.RUnlock()
	return g
}

// NumGroups reports the group count.
func (m *Memo) NumGroups() int {
	m.mu.RLock()
	n := len(m.groups)
	m.mu.RUnlock()
	return n
}

func (m *Memo) newGroup() *Group {
	m.mu.Lock()
	g := &Group{ID: GroupID(len(m.groups)), seen: map[string]bool{}}
	m.groups = append(m.groups, g)
	m.mu.Unlock()
	return g
}

// addExpr inserts e into group g unless an identical expression exists.
// Callers serialize per group (copy-in, or the group's explore Once).
func (m *Memo) addExpr(g *Group, e *Expr) bool {
	fp := e.fingerprint()
	if g.seen[fp] {
		return false
	}
	g.seen[fp] = true
	g.Exprs = append(g.Exprs, e)
	return true
}

func (m *Memo) copyIn(l *plan.Logical) GroupID {
	g := m.newGroup()
	e := &Expr{
		Op:            l.Op,
		Table:         l.Table,
		InputTemplate: l.InputTemplate,
		Pred:          l.Pred,
		Keys:          append([]plan.Column(nil), l.Keys...),
		UDF:           l.UDF,
		N:             l.N,
	}
	for _, c := range l.Children {
		e.Child = append(e.Child, m.copyIn(c))
	}
	m.addExpr(g, e)
	return g.ID
}

// Exploration lives in rules.go: Memo.ExploreAll runs the transformation
// rule set to fixpoint in one sequential pre-pass before the search fans
// out.
