package cascades

import (
	"fmt"
	"strings"

	"cleo/internal/plan"
)

// GroupID identifies a memo group.
type GroupID int

// Expr is one logical expression in a group: an operator with child groups.
type Expr struct {
	Op    plan.LogicalOp
	Child []GroupID

	// Operator metadata carried from the logical plan.
	Table         string
	InputTemplate string
	Pred          string
	Keys          []plan.Column
	UDF           string
	N             int
}

// fingerprint renders the expression for duplicate detection within a
// group. It builds the string in one strings.Builder pass — the previous
// += concatenation re-copied the prefix per key and per child, going
// quadratic on wide expressions.
func (e *Expr) fingerprint() string {
	var b strings.Builder
	b.Grow(32 + 8*len(e.Keys) + 4*len(e.Child))
	fmt.Fprintf(&b, "%v|%s|%s|%s|%s|%d|", e.Op, e.Table, e.InputTemplate, e.Pred, e.UDF, e.N)
	for _, k := range e.Keys {
		b.WriteString(string(k))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, c := range e.Child {
		fmt.Fprintf(&b, "%d.", c)
	}
	return b.String()
}

// Group is a set of logically equivalent expressions.
type Group struct {
	ID    GroupID
	Exprs []*Expr

	seen map[string]bool
	// explored marks that exploration rules have fired for this group.
	explored bool
}

// Memo is the Cascades search space: groups of equivalent expressions.
type Memo struct {
	groups []*Group
	root   GroupID
}

// NewMemo builds a memo from a logical plan tree: one group per node
// (Cascades' "copy-in").
func NewMemo(l *plan.Logical) *Memo {
	m := &Memo{}
	m.root = m.copyIn(l)
	return m
}

// Root returns the root group's ID.
func (m *Memo) Root() GroupID { return m.root }

// Group returns the group with the given ID.
func (m *Memo) Group(id GroupID) *Group { return m.groups[id] }

// NumGroups reports the group count.
func (m *Memo) NumGroups() int { return len(m.groups) }

func (m *Memo) newGroup() *Group {
	g := &Group{ID: GroupID(len(m.groups)), seen: map[string]bool{}}
	m.groups = append(m.groups, g)
	return g
}

// addExpr inserts e into group g unless an identical expression exists.
func (m *Memo) addExpr(g *Group, e *Expr) bool {
	fp := e.fingerprint()
	if g.seen[fp] {
		return false
	}
	g.seen[fp] = true
	g.Exprs = append(g.Exprs, e)
	return true
}

func (m *Memo) copyIn(l *plan.Logical) GroupID {
	g := m.newGroup()
	e := &Expr{
		Op:            l.Op,
		Table:         l.Table,
		InputTemplate: l.InputTemplate,
		Pred:          l.Pred,
		Keys:          append([]plan.Column(nil), l.Keys...),
		UDF:           l.UDF,
		N:             l.N,
	}
	for _, c := range l.Children {
		e.Child = append(e.Child, m.copyIn(c))
	}
	m.addExpr(g, e)
	return g.ID
}

// Explore applies transformation rules to the group until fixpoint. The
// rule set mirrors the paper's setting: physical choices dominate, so
// exploration is limited to join commutativity (SCOPE scripts pin join
// order; the paper's plan changes are operator implementations, exchanges
// and partition counts).
func (m *Memo) Explore(id GroupID) {
	g := m.Group(id)
	if g.explored {
		return
	}
	g.explored = true
	for i := 0; i < len(g.Exprs); i++ { // Exprs may grow while iterating
		e := g.Exprs[i]
		for _, c := range e.Child {
			m.Explore(c)
		}
		if e.Op == plan.LJoin && len(e.Child) == 2 {
			swapped := &Expr{
				Op:    plan.LJoin,
				Child: []GroupID{e.Child[1], e.Child[0]},
				Pred:  e.Pred,
				Keys:  e.Keys,
			}
			m.addExpr(g, swapped)
		}
	}
}
