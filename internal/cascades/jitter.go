package cascades

import (
	"math"

	"cleo/internal/plan"
)

// JitterPlanPartitions perturbs the partition counts of a finished plan's
// stages by deterministic per-stage factors in [1/3, 3], respecting fixed
// boundaries and co-partitioned-join coupling, and re-prices affected
// operators with the given cost model.
//
// Telemetry collection applies this after planning: production heuristics
// vary with drifting statistics, so real training data covers a range of
// partition counts per template. Jittering after plan selection (rather
// than during costing) keeps operator choices — and hence subgraph
// signatures — stable across recurring instances.
func JitterPlanPartitions(root *plan.Physical, seed int64, maxPartitions int, cost Coster) {
	if maxPartitions <= 0 {
		maxPartitions = 3000
	}
	stageOf := plan.StageOf(root)
	done := map[*plan.Stage]bool{}
	seq := 0
	for _, st := range plan.Stages(root) {
		if done[st] {
			continue
		}
		coupled, fixed := coupledStages(st, stageOf)
		for _, cs := range coupled {
			done[cs] = true
		}
		seq++
		if fixed > 0 || st.Ops[0].FixedPartitions {
			continue
		}
		f := jitterFactor(seed, seq)
		p := int(float64(st.Partitions)*f + 0.5)
		if p < 1 {
			p = 1
		}
		if p > maxPartitions {
			p = maxPartitions
		}
		for _, cs := range coupled {
			if cs.Ops[0].FixedPartitions {
				continue
			}
			setStagePartitions(cs, p)
			for _, op := range cs.Ops {
				if cost != nil {
					op.ExclusiveCostEst = cost.OperatorCost(op)
				}
			}
		}
	}
}

// jitterFactor maps (seed, seq) to a deterministic factor in [1/3, 3].
func jitterFactor(seed int64, seq int) float64 {
	h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(seq)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 29
	u := float64(h%1_000_003) / 1_000_003.0
	return math.Exp2((u - 0.5) * 3.17)
}
